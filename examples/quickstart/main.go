// Quickstart reproduces the paper's running example (§2, §4): the 3-node
// network with links (a,b), (a,c), (b,c), the reachable query in both
// NDlog and SeNDlog, the Figure 1 derivation tree, and the Figure 2
// condensed provenance annotations including the <a + a*b> → <a>
// condensation.
package main

import (
	"fmt"
	"log"

	"provnet"
)

func paperGraph() *provnet.Graph {
	return provnet.CustomGraph([]provnet.GraphLink{
		{From: "a", To: "b", Cost: 1},
		{From: "a", To: "c", Cost: 1},
		{From: "b", To: "c", Cost: 1},
	})
}

func main() {
	fmt.Println("== Provenance-aware Secure Networks: quickstart ==")
	fmt.Println("Topology: link(a,b), link(a,c), link(b,c)")

	figure1()
	figure2()
}

// figure1 runs the NDlog reachable query with local (tree) provenance and
// prints the derivation tree of reachable(a,c) — Figure 1 of the paper.
func figure1() {
	n, err := provnet.NewNetwork(provnet.Config{
		Source:     provnet.ReachableNDlog,
		Graph:      paperGraph(),
		LinkNoCost: true,
		Prov:       provnet.ProvLocal,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- NDlog run: %d messages, %d bytes --\n", rep.Messages, rep.Bytes)
	for _, node := range n.Nodes() {
		for _, tu := range n.Tuples(node, "reachable") {
			fmt.Printf("  %s holds %s\n", node, tu)
		}
	}

	target := provnet.NewTuple("reachable", provnet.Str("a"), provnet.Str("c"))
	tree, _, err := n.DerivationTree("a", target, provnet.ProvQueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 1 — derivation tree for reachable(a,c):")
	fmt.Print(tree.Render(nil))
	fmt.Println("base tuples at the leaves:")
	for _, l := range tree.Leaves() {
		fmt.Printf("  %s\n", l)
	}
}

// figure2 runs the SeNDlog variant with RSA-authenticated communication
// and condensed provenance, printing the Figure 2 annotations.
func figure2() {
	n, err := provnet.NewNetwork(provnet.Config{
		Source:     provnet.ReachableSeNDlog,
		Graph:      paperGraph(),
		LinkNoCost: true,
		Auth:       provnet.AuthRSA,
		Prov:       provnet.ProvCondensed,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- SeNDlog run: %d messages, %d bytes, %d signatures --\n",
		rep.Messages, rep.Bytes, rep.Signed)

	fmt.Println("\nFigure 2 — condensed provenance annotations at node a:")
	for _, tu := range n.Tuples("a", "reachable") {
		fmt.Printf("  %-32s %s\n", tu, n.CondensedExpr("a", tu))
	}

	// The paper's §4.4 condensation: unioning both assertions of
	// reachable(a,c) gives a + a*b, which the BDD condenses to a.
	fact := provnet.NewTuple("reachable", provnet.Str("a"), provnet.Str("c"))
	poly := n.FactPoly("a", fact)
	fmt.Printf("\nuncondensed provenance of reachable(a,c): <%s>\n", poly)
	gate := provnet.NewTrustGate(provnet.MinLevelPolicy{Threshold: 2},
		provnet.TrustLevelMap(map[string]int64{"a": 2, "b": 1}), 8)
	d := gate.Consider("reachable(a,c)", poly)
	fmt.Printf("quantifiable trust (level(a)=2, level(b)=1): %d — max(2, min(2,1)) as in §4.5\n", d.Trust)
	fmt.Printf("trust decision at threshold 2: accept=%v (%s)\n", d.Accept, d.Reason)
}
