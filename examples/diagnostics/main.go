// Diagnostics demonstrates the paper's real-time diagnostics use case
// (§3): a continuous SeNDlog-style query counts routing-table changes
// over a sliding window and raises an alarm tuple when the rate exceeds a
// threshold — indicating possible route divergence — after which the
// operator inspects the online provenance of the offending events. The
// alarm itself is soft state: when the flapping stops, it expires.
package main

import (
	"fmt"
	"log"

	"provnet"
)

// change(@S,E) records one routing change event E at node S, kept for a
// 10-second window; an alarm fires when more than 3 changes are in the
// window.
const monitorProgram = `
materialize(change, 10, infinity, keys(1,2)).
materialize(changes, infinity, infinity, keys(1)).
materialize(alarm, 15, infinity, keys(1)).

c1 changes(@S,count<*>) :- change(@S,E).
c2 alarm(@S,N) :- changes(@S,N), N > 3.
`

func main() {
	n, err := provnet.NewNetwork(provnet.Config{
		Source:     monitorProgram,
		ExtraNodes: []string{"router1"},
		Prov:       provnet.ProvDistributed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Real-time diagnostics: route-flap alarm ==")
	fmt.Println("window 10s, threshold > 3 changes")

	insertChange := func(id int) {
		ev := provnet.NewTuple("change", provnet.Str("router1"), provnet.Int(int64(id)))
		if err := n.InsertFact("router1", ev); err != nil {
			log.Fatal(err)
		}
		if _, err := n.Run(0); err != nil {
			log.Fatal(err)
		}
	}
	status := func(label string) {
		count := "-"
		for _, tu := range n.Tuples("router1", "changes") {
			count = tu.Args[1].String()
		}
		alarms := n.Tuples("router1", "alarm")
		fmt.Printf("  t=%4.0fs %-26s window count=%-3s alarms=%d\n",
			n.Clock(), label, count, len(alarms))
	}

	// A flapping link: 5 rapid changes.
	for i := 1; i <= 5; i++ {
		insertChange(i)
		n.Advance(1)
	}
	status("after 5 changes in 5s")

	alarms := n.Tuples("router1", "alarm")
	if len(alarms) == 0 {
		log.Fatal("expected an alarm")
	}
	fmt.Printf("\nALARM raised: %s\n", alarms[0])

	// On alarm, the system queries the provenance of the window events —
	// "a distributed recursive query over the network provenance to
	// detect the source" (§3).
	fmt.Println("provenance of the offending change events:")
	for _, ev := range n.Tuples("router1", "change") {
		tree, _, err := n.DerivationTree("router1", ev, provnet.ProvQueryOpts{})
		if err != nil {
			continue
		}
		fmt.Printf("  %s (base event, recorded at t<=%g)\n", tree.Tuple, n.Clock())
	}

	// The flapping stops; the window empties and the alarm soft-state
	// expires on its own.
	fmt.Println("\nflapping stops; advancing time...")
	n.Advance(8)
	if _, err := n.Run(0); err != nil {
		log.Fatal(err)
	}
	status("t+8s: old events expiring")
	n.Advance(10)
	if _, err := n.Run(0); err != nil {
		log.Fatal(err)
	}
	status("t+18s: window empty")
	if len(n.Tuples("router1", "alarm")) == 0 {
		fmt.Println("\nalarm expired with its soft state — the network self-recovered.")
	}
}
