// Command multiprocess demonstrates the TCP transport: the Best-Path
// query of §6 runs as three separate OS processes, each hosting one node
// of a 3-ring, connected over loopback TCP with the session security
// stack (one RSA handshake per link, HMAC-sealed envelopes after).
//
// Run with no arguments, it forks three copies of itself — one per node
// — waits for them to converge, and relays their output. Each child is
// an ordinary provnet process: a nettcp transport, a Config hosting one
// LocalNodes entry, and the lifecycle driver run to idle quiescence.
// The printed bestPath tables are exactly the single-process netsim
// run's (see cmd/provnet's TestMultiprocessMatchesSingleProcess).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"provnet"
	"provnet/internal/cliflags"
)

func main() {
	self := flag.String("self", "", "child mode: the node this process hosts")
	listen := flag.String("listen", "", "child mode: TCP listen address")
	peers := flag.String("peers", "", "child mode: name=addr,... peer map")
	flag.Parse()
	if *self == "" {
		parent()
		return
	}
	child(*self, *listen, *peers)
}

// parent reserves three loopback ports, forks one child per node, and
// relays their output line by line.
func parent() {
	exe, err := os.Executable()
	check(err)
	nodes := []string{"n0", "n1", "n2"}
	addrs := make([]string, len(nodes))
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i, self := range nodes {
		var peers []string
		for j, other := range nodes {
			if j != i {
				peers = append(peers, other+"="+addrs[j])
			}
		}
		cmd := exec.CommandContext(ctx, exe,
			"-self", self, "-listen", addrs[i], "-peers", strings.Join(peers, ","))
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		check(err)
		check(cmd.Start())
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				fmt.Printf("[%s] %s\n", name, sc.Text())
			}
			if err := cmd.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}(self)
	}
	wg.Wait()
}

// child hosts one node: same program, topology, and seed as its siblings
// (the deterministic principal directory is derived from the seed, so
// handshakes verify across processes), with only LocalNodes differing.
func child(self, listen, peers string) {
	f := &cliflags.Flags{Listen: listen, Self: self, Peers: peers, Idle: time.Second}
	cfg := provnet.Config{
		Source:  provnet.BestPath,
		Graph:   provnet.RingGraph(3),
		Auth:    provnet.AuthSession,
		Prov:    provnet.ProvCondensed,
		KeyBits: 1024, // the paper's 2008 setup; fine for a demo
	}
	ctx := context.Background()
	_, err := f.SetupTransport(ctx, &cfg)
	check(err)
	n, err := provnet.NewNetwork(cfg)
	check(err)
	rep, err := f.RunDistributed(ctx, n)
	check(err)
	check(n.Close())
	fmt.Printf("converged: %d rounds, %d messages, %d handshakes\n",
		rep.Rounds, rep.Messages, rep.Handshakes)
	for _, tu := range n.Tuples(self, "bestPath") {
		fmt.Printf("%s  %s\n", tu, n.CondensedExpr(self, tu))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiprocess:", err)
		os.Exit(1)
	}
}
