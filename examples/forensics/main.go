// Forensics demonstrates the paper's forensics use case (§3, §4.2): a
// worm-style attack spreads through the network as soft-state tuples;
// after the attack traffic has long expired, the victim reconstructs the
// infection path from OFFLINE distributed provenance — and, as the
// cheaper lossy alternative, from ForNet-style Bloom-filter router
// digests.
package main

import (
	"fmt"
	"log"

	"provnet"
)

// The worm propagates along connections; infections are soft state with a
// 30-second lifetime.
const wormProgram = `
materialize(conn, infinity, infinity, keys(1,2)).
materialize(infected, 30, infinity, keys(1,2)).

w1 infected(@D,W) :- infected(@S,W), conn(@S,D).
`

func main() {
	// patient0 -> r1 -> r2 -> victim, with a clean side branch.
	g := provnet.CustomGraph([]provnet.GraphLink{
		{From: "patient0", To: "r1", Cost: 1},
		{From: "r1", To: "r2", Cost: 1},
		{From: "r2", To: "victim", Cost: 1},
		{From: "clean", To: "r2", Cost: 1},
	})
	offline := -1.0 // keep forensic provenance forever
	n, err := provnet.NewNetwork(provnet.Config{
		Source:  wormProgram,
		Prov:    provnet.ProvDistributed,
		Offline: &offline,
		Graph:   g,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Topology facts use pred "link"; the program wants "conn": insert
	// conn facts explicitly.
	for _, l := range g.Links {
		if err := n.InsertFact(l.From, provnet.NewTuple("conn", provnet.Str(l.From), provnet.Str(l.To))); err != nil {
			log.Fatal(err)
		}
	}
	// Patient zero is infected with worm "slammer".
	if err := n.InsertFact("patient0", provnet.NewTuple("infected", provnet.Str("patient0"), provnet.Str("slammer"))); err != nil {
		log.Fatal(err)
	}
	if _, err := n.Run(0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Forensic traceback over offline provenance ==")
	fmt.Println("\nphase 1 — the worm spreads (soft state, TTL 30s):")
	for _, node := range n.Nodes() {
		for _, tu := range n.Tuples(node, "infected") {
			fmt.Printf("  %s: %s\n", node, tu)
		}
	}

	victimTuple := provnet.NewTuple("infected", provnet.Str("victim"), provnet.Str("slammer"))

	fmt.Println("\nphase 2 — 60 seconds pass; all infection state expires:")
	n.Advance(60)
	live := 0
	for _, node := range n.Nodes() {
		live += len(n.Tuples(node, "infected"))
	}
	fmt.Printf("  live infected tuples anywhere: %d\n", live)

	// Online provenance is gone with the tuples; the offline store
	// still answers.
	fmt.Println("\nphase 3 — offline distributed traceback from the victim:")
	tree, stats, err := n.DerivationTree("victim", victimTuple,
		provnet.ProvQueryOpts{Offline: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree.Render(nil))
	fmt.Printf("query cost: %d inter-node messages, %d nodes visited, %d entries read\n",
		stats.Messages, stats.NodesVisited, stats.Entries)
	fmt.Println("\nroot causes (base tuples):")
	for _, l := range tree.Leaves() {
		fmt.Printf("  %s\n", l)
	}
	fmt.Println("\n→ patient0 is identified as the origin, from state that expired long ago.")
}
