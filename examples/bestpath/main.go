// Bestpath runs the paper's §6 evaluation workload — the all-pairs
// Best-Path recursive query — on a random graph with average out-degree 3,
// in the SeNDlogProv configuration (RSA-signed tuples plus condensed BDD
// provenance), and shows per-route provenance annotations.
package main

import (
	"flag"
	"fmt"
	"log"

	"provnet"
)

func main() {
	nNodes := flag.Int("n", 12, "number of nodes")
	seed := flag.Int64("seed", 1, "topology and key seed")
	flag.Parse()

	g := provnet.RandomGraph(provnet.TopoOptions{
		N: *nNodes, AvgOutDegree: 3, MaxCost: 10, Seed: *seed,
	})
	fmt.Printf("== Best-Path on %d nodes, %d links (avg out-degree %.1f) ==\n",
		len(g.Nodes), len(g.Links), g.AvgOutDegree())

	cfg := provnet.VariantConfig(provnet.VariantSeNDlogProv, provnet.BestPath)
	cfg.Graph = g
	cfg.Seed = *seed
	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed fixpoint: %v, %d rounds\n", rep.CompletionTime, rep.Rounds)
	fmt.Printf("traffic: %d messages, %.2f KB; signatures: %d signed / %d verified\n",
		rep.Messages, float64(rep.Bytes)/1024, rep.Signed, rep.Verified)

	src := g.Nodes[0]
	fmt.Printf("\nbest paths from %s (with condensed provenance over origin nodes):\n", src)
	for _, bp := range n.Tuples(src, "bestPath") {
		fmt.Printf("  -> %-4s cost %-3v via %-28s %s\n",
			bp.Args[1].Str, bp.Args[3], bp.Args[2], n.CondensedExpr(src, bp))
	}

	// Verify one route against Dijkstra.
	oracle := g.Dijkstra(src)
	ok := true
	for _, bp := range n.Tuples(src, "bestPath") {
		if oracle[bp.Args[1].Str] != bp.Args[3].AsInt() {
			ok = false
			fmt.Printf("MISMATCH %s: engine %v, dijkstra %d\n", bp.Args[1].Str, bp.Args[3], oracle[bp.Args[1].Str])
		}
	}
	if ok {
		fmt.Println("\nall route costs match the Dijkstra oracle ✓")
	}
}
