// Livechurn demonstrates the lifecycle API on the paper's §6 Best-Path
// workload: start a network as a long-running driver, subscribe to one
// node's best-path table, and watch a link cut withdraw routes and
// re-converge incrementally — no restart, only the affected region pays.
package main

import (
	"context"
	"fmt"
	"log"

	"provnet"
)

func main() {
	fmt.Println("== Live-network lifecycle: Best-Path under link churn ==")

	g := provnet.RandomGraph(provnet.TopoOptions{N: 12, AvgOutDegree: 3, MaxCost: 10, Seed: 9})
	cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
	cfg.Graph = g
	cfg.SessionAuth = true // wire v3: handshake once, MAC per envelope
	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := n.Driver()

	// Stream n0's best-path changes while the network runs.
	sub, err := d.Subscribe("n0", "bestPath")
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	if err := d.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	rep, err := d.AwaitQuiescence(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d rounds: %d best paths at n0, %d bytes on the wire\n",
		rep.Rounds, len(n.Tuples("n0", "bestPath")), n.Transport().Stats().Bytes)
	drainUpdates(sub, "  [initial convergence]")

	// Cut a link an installed best path routes over and re-converge.
	cut := loadedLink(n, g)
	before := n.Transport().Stats()
	fmt.Printf("\ncutting link %s->%s ...\n", cut.From, cut.To)
	if err := d.CutLink(cut.From, cut.To); err != nil {
		log.Fatal(err)
	}
	rep, err = d.AwaitQuiescence(ctx)
	if err != nil {
		log.Fatal(err)
	}
	after := n.Transport().Stats()
	fmt.Printf("re-converged in %d rounds, %d bytes, %d tuples withdrawn network-wide\n",
		rep.Rounds, after.Bytes-before.Bytes, rep.Retracted)
	drainUpdates(sub, "  [after cut]")

	// Runtime injection: a brand-new cheap link improves routes live.
	fmt.Printf("\ninstalling new link n5->n0 at cost 1 ...\n")
	if err := d.SetLink("n5", "n0", 1); err != nil {
		log.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pending messages for n0 after quiescence: %d (fabric total %d)\n",
		n.Transport().PendingFor("n0"), n.Transport().PendingCount())
	drainUpdates(sub, "  [after new link]")
	if dropped := sub.Dropped(); dropped > 0 {
		fmt.Printf("(%d updates dropped by the slow subscriber)\n", dropped)
	}
}

// loadedLink returns a link some installed best path routes over, so
// cutting it visibly withdraws routes.
func loadedLink(n *provnet.Network, g *provnet.Graph) provnet.GraphLink {
	for _, l := range g.Links {
		for _, name := range n.Nodes() {
			for _, bp := range n.Tuples(name, "bestPath") {
				p := bp.Args[2]
				for i := 0; i+1 < len(p.List); i++ {
					if p.List[i].Str == l.From && p.List[i+1].Str == l.To {
						return l
					}
				}
			}
		}
	}
	return g.Links[0]
}

// drainUpdates prints whatever the subscription has buffered.
func drainUpdates(sub *provnet.Subscription, label string) {
	adds, cuts := 0, 0
	for len(sub.Updates()) > 0 {
		u := <-sub.Updates()
		if u.Added {
			adds++
		} else {
			cuts++
		}
	}
	fmt.Printf("%s subscription saw %d additions, %d withdrawals\n", label, adds, cuts)
}
