// Trustmgmt demonstrates the paper's trust-management use case (§3, §4.5):
// an Orchestra-style node examines the provenance of incoming routing
// updates and accepts or rejects them by policy — security-level
// thresholds, K-votes, and blacklists — enforced locally from condensed
// provenance.
package main

import (
	"fmt"
	"log"

	"provnet"
)

func main() {
	// Four ASes; "mallory" is distrusted (level 0).
	levels := map[string]int64{"a": 3, "b": 2, "c": 2, "mallory": 0}
	// d is reachable via b, c, or mallory; e is reachable ONLY through
	// mallory.
	g := provnet.CustomGraph([]provnet.GraphLink{
		{From: "a", To: "b", Cost: 1},
		{From: "b", To: "d", Cost: 1},
		{From: "a", To: "c", Cost: 1},
		{From: "c", To: "d", Cost: 1},
		{From: "mallory", To: "d", Cost: 1},
		{From: "a", To: "mallory", Cost: 1},
		{From: "mallory", To: "e", Cost: 1},
	})

	cfg := provnet.VariantConfig(provnet.VariantSeNDlogProv, provnet.ReachableSeNDlog)
	cfg.Graph = g
	cfg.LinkNoCost = true
	cfg.Levels = levels
	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := n.Run(0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Trust management over condensed provenance ==")
	fmt.Println("levels:", levels)
	fmt.Println("\nroutes known at node a, with provenance:")

	lv := provnet.TrustLevelMap(levels)
	policies := []provnet.TrustPolicy{
		provnet.MinLevelPolicy{Threshold: 2},
		provnet.KVotesPolicy{K: 2},
		provnet.BlacklistPolicy{Banned: map[string]bool{"mallory": true}},
	}

	seen := map[string]bool{}
	for _, tu := range n.Tuples("a", "reachable") {
		fact := tu.WithoutAsserter()
		if seen[fact.String()] {
			continue // the same fact may be asserted by several principals
		}
		seen[fact.String()] = true
		poly := n.FactPoly("a", fact)
		fmt.Printf("\n  %-24s provenance <%s>\n", fact, poly)
		for _, p := range policies {
			gate := provnet.NewTrustGate(p, lv, 4)
			d := gate.Consider(fact.String(), poly)
			verdict := "REJECT"
			if d.Accept {
				verdict = "accept"
			}
			fmt.Printf("    %-28s %-7s %s\n", p.Name(), verdict, d.Reason)
		}
	}

	fmt.Println("\nreachable(a,e) derives only through mallory: it fails the level")
	fmt.Println("threshold and the blacklist, while reachable(a,d) — independently")
	fmt.Println("witnessed via b, c AND mallory — passes every policy.")
}
