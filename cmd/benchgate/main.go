// Command benchgate is the hot-path performance regression gate. It
// runs the two allocation-sensitive workloads — the wide fan-in join
// (sharded-fanin, the BENCH_pr4 workload at engineshards=1) and the
// Best-Path refresh churn (bestpath-churn) — under a GOMAXPROCS sweep,
// measuring wall-clock and allocations over exactly the evaluation
// window: the staged benchwork entry points exclude topology
// construction and principal key generation, so the numbers track the
// engine/import/seal path this gate protects.
//
// Record a baseline (checked in as BENCH_pr7.json):
//
//	go run ./cmd/benchgate -record -out BENCH_pr7.json
//
// Gate against it (CI, `make benchgate`):
//
//	go run ./cmd/benchgate -baseline BENCH_pr7.json
//
// The gate compares each (workload, gomaxprocs) cell and exits 1 when
// ns/op or allocs/op regress past the tolerance. Allocation counts are
// near-deterministic and survive machine changes, so -allocs-tol is
// tight; wall-clock moves with hardware and CI-runner load, so -ns-tol
// is deliberately generous — the allocation bound is the real tripwire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"provnet"
	"provnet/internal/benchwork"
)

// cell is one measured (workload, gomaxprocs) point.
type cell struct {
	Workload    string `json:"workload"`
	Procs       int    `json:"gomaxprocs"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// Derivations/TuplesStored/Rounds pin the work done: they must be
	// identical between baseline and gate runs, or the comparison is
	// meaningless (the workload itself changed).
	Derivations  int64 `json:"derivations"`
	TuplesStored int64 `json:"tuples_stored"`
	Rounds       int   `json:"rounds"`
}

type output struct {
	Workload string `json:"workload"`
	Runs     int    `json:"runs"`
	Note     string `json:"note,omitempty"`
	Cells    []cell `json:"results"`
}

func main() {
	record := flag.Bool("record", false, "write a fresh baseline instead of gating")
	out := flag.String("out", "BENCH_pr7.json", "output path for -record")
	baseline := flag.String("baseline", "BENCH_pr7.json", "baseline to gate against")
	runs := flag.Int("runs", 3, "averaging runs per cell")
	cpus := flag.String("cpus", "1,2,4", "comma-separated GOMAXPROCS sweep")
	nsTol := flag.Float64("ns-tol", 2.0, "allowed ns/op ratio vs baseline (wall-clock is machine-dependent)")
	allocsTol := flag.Float64("allocs-tol", 1.20, "allowed allocs/op ratio vs baseline")
	note := flag.String("note", "", "free-form note stored in the recorded baseline")
	metrics := flag.Bool("metrics", false, "attach a fresh obs registry to every run — measures the enabled-instrumentation overhead")
	flag.Parse()

	var procsList []int
	for _, s := range strings.Split(*cpus, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			fatal(fmt.Errorf("bad -cpus entry %q", s))
		}
		procsList = append(procsList, p)
	}

	// With -metrics each run gets its own fresh registry (mirroring how a
	// deployment would wire one network to one registry); without it the
	// Config.Metrics field stays nil, which is what the checked-in
	// baselines measure — the disabled path must stay allocation-free.
	withMetrics := func(cfg provnet.Config) provnet.Config {
		if *metrics {
			cfg.Metrics = provnet.NewMetrics()
		}
		return cfg
	}
	o := output{Workload: "hotpath-gate", Runs: *runs, Note: *note}
	for _, procs := range procsList {
		o.Cells = append(o.Cells,
			measure("sharded-fanin", procs, *runs, func(i int) func() *provnet.Report {
				cfg := withMetrics(provnet.Config{EngineShards: 1})
				return benchwork.ShardedFanInStaged(fatal, cfg, 8, 64, 6, int64(4000+i))
			}),
			measure("bestpath-churn", procs, *runs, func(i int) func() *provnet.Report {
				cfg := withMetrics(provnet.Config{Source: provnet.BestPath})
				return benchwork.BestPathChurnStaged(fatal, cfg, 12, 4, 512, int64(5000+i))
			}),
		)
	}

	if *record {
		b, err := json.MarshalIndent(o, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	base := readBaseline(*baseline)
	if gate(base, o, *nsTol, *allocsTol) {
		fmt.Println("benchgate: PASS")
		return
	}
	fmt.Fprintln(os.Stderr, "benchgate: FAIL — hot-path regression vs", *baseline)
	os.Exit(1)
}

// measure runs one workload *runs* times at the given GOMAXPROCS,
// timing and allocation-counting only the staged closure. Setup (and
// its garbage) stays outside the window: a GC runs between setup and
// measurement, and Mallocs/TotalAlloc deltas bracket the closure the
// way testing.B's -benchmem does.
func measure(name string, procs, runs int, stage func(i int) func() *provnet.Report) cell {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	c := cell{Workload: name, Procs: procs}
	var m0, m1 runtime.MemStats
	for i := 0; i < runs; i++ {
		run := stage(i)
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rep := run()
		c.NsPerOp += time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&m1)
		c.AllocsPerOp += int64(m1.Mallocs - m0.Mallocs)
		c.BytesPerOp += int64(m1.TotalAlloc - m0.TotalAlloc)
		c.Derivations += rep.Derivations
		c.TuplesStored += rep.TuplesStored
		c.Rounds += rep.Rounds
	}
	k := int64(runs)
	c.NsPerOp /= k
	c.AllocsPerOp /= k
	c.BytesPerOp /= k
	c.Derivations /= k
	c.TuplesStored /= k
	c.Rounds /= runs
	fmt.Printf("%-16s procs=%d %12d ns/op %9d allocs/op %10d B/op %7d derivations\n",
		c.Workload, c.Procs, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp, c.Derivations)
	return c
}

// gate compares every freshly measured cell against its baseline twin
// and reports whether all of them hold. Cells absent from the baseline
// pass with a warning (a new sweep point has no history yet); a
// derivation-count mismatch fails outright because it means the two
// runs did different work.
func gate(base, now output, nsTol, allocsTol float64) bool {
	idx := make(map[string]cell, len(base.Cells))
	for _, c := range base.Cells {
		idx[c.Workload+"/"+strconv.Itoa(c.Procs)] = c
	}
	ok := true
	for _, c := range now.Cells {
		key := c.Workload + "/" + strconv.Itoa(c.Procs)
		b, found := idx[key]
		if !found {
			fmt.Printf("%-24s SKIP (no baseline cell)\n", key)
			continue
		}
		if c.Derivations != b.Derivations || c.TuplesStored != b.TuplesStored {
			fmt.Printf("%-24s FAIL workload drift: derivations %d→%d tuples %d→%d\n",
				key, b.Derivations, c.Derivations, b.TuplesStored, c.TuplesStored)
			ok = false
			continue
		}
		nsRatio := ratio(c.NsPerOp, b.NsPerOp)
		alRatio := ratio(c.AllocsPerOp, b.AllocsPerOp)
		cellOK := nsRatio <= nsTol && alRatio <= allocsTol
		verdict := "ok"
		if !cellOK {
			verdict = "FAIL"
			ok = false
		}
		// Absolute baseline→current values on every cell, pass or fail:
		// a passing 1.18x allocs drift is invisible in ratios alone but
		// obvious as 52310→61726, and it is next PR's failure.
		fmt.Printf("%-24s %-4s ns/op %.2fx (tol %.2fx, %d→%d)  allocs/op %.2fx (tol %.2fx, %d→%d)\n",
			key, verdict, nsRatio, nsTol, b.NsPerOp, c.NsPerOp, alRatio, allocsTol, b.AllocsPerOp, c.AllocsPerOp)
	}
	return ok
}

func ratio(now, base int64) float64 {
	if base <= 0 {
		return 1
	}
	return float64(now) / float64(base)
}

func readBaseline(path string) output {
	b, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var o output
	if err := json.Unmarshal(b, &o); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	return o
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"benchgate:"}, args...)...)
	os.Exit(1)
}
