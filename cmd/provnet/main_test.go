package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"provnet"
)

// mainArgsEnv carries the provnet argv into a re-executed test binary:
// TestMain dispatches to main() when it is set, which lets the test
// spawn real provnet OS processes without building the command first.
const mainArgsEnv = "PROVNET_MAIN_ARGS"

const argSep = "\x1f"

func TestMain(m *testing.M) {
	os.Setenv("GODEBUG", "rsa1024min=0") // 512-bit test keys, like the package TestMains
	if args := os.Getenv(mainArgsEnv); args != "" {
		os.Args = append([]string{"provnet"}, strings.Split(args, argSep)...)
		flag.CommandLine = flag.NewFlagSet("provnet", flag.ExitOnError)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runProvnet runs one provnet process (the re-executed test binary) and
// returns its stdout.
func runProvnet(ctx context.Context, args ...string) (string, error) {
	cmd := exec.CommandContext(ctx, os.Args[0])
	cmd.Env = append(os.Environ(), mainArgsEnv+"="+strings.Join(args, argSep))
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return string(out), fmt.Errorf("provnet %v: %w\nstderr: %s", args, err, ee.Stderr)
		}
		return string(out), fmt.Errorf("provnet %v: %w", args, err)
	}
	return string(out), nil
}

// tableLines extracts the printed table rows (they are the only
// tab-separated lines), sorted for set comparison across processes.
func tableLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "\t") {
			lines = append(lines, l)
		}
	}
	sort.Strings(lines)
	return lines
}

// freeLoopbackAddrs reserves n distinct loopback TCP addresses.
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestHTTPTracebackGolden is the api-smoke pin, mirrored by the CI job of
// the same name: a provnet process serving -http must answer the
// /v1/traceback query with exactly the committed golden JSON. The fixture
// pins the schema (v1), the derivation tree, and the query-cost stats;
// regenerate it with the command from .github/workflows/ci.yml if the
// provenance encoding deliberately changes.
func TestHTTPTracebackGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns an OS process")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "traceback_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0])
	args := []string{
		"-program", filepath.Join("testdata", "reachable.ndl"),
		"-topo", "line:3", "-nocost", "-prov", "distributed",
		"-sequential", "-http", "127.0.0.1:0",
	}
	cmd.Env = append(os.Environ(), mainArgsEnv+"="+strings.Join(args, argSep))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Scrape the readiness line for the bound address.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if after, ok := strings.CutPrefix(sc.Text(), "serving query API on "); ok {
			base = strings.TrimSuffix(after, "/v1")
			break
		}
	}
	if base == "" {
		t.Fatalf("no readiness line: %v", sc.Err())
	}

	resp, err := http.Get(base + "/v1/traceback?node=n0&tuple=" + url.QueryEscape("reachable(n0, n2)"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if string(body) != string(golden) {
		t.Errorf("traceback diverges from golden fixture\n--- got ---\n%s\n--- want ---\n%s", body, golden)
	}
}

// TestStoreFlagPersists runs provnet with -store and then recovers the
// log offline: the replayed live state must list exactly the tables the
// process printed.
func TestStoreFlagPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns an OS process")
	}
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, err := runProvnet(ctx,
		"-program", filepath.Join("testdata", "reachable.ndl"),
		"-topo", "line:3", "-nocost", "-prov", "distributed",
		"-sequential", "-store", dir)
	if err != nil {
		t.Fatal(err)
	}
	want := tableLines(out)
	state, stats, err := provnet.RecoverStoreLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.TornBytes != 0 {
		t.Fatalf("unexpected recovery stats: %+v", stats)
	}
	var got []string
	for _, l := range strings.Split(strings.TrimSuffix(state.LiveDump(), "\n"), "\n") {
		got = append(got, strings.TrimSuffix(l, "\t"))
	}
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("recovered store diverges from printed tables\n--- store (%d) ---\n%s\n--- tables (%d) ---\n%s",
			len(got), strings.Join(got, "\n"), len(want), strings.Join(want, "\n"))
	}
}

// TestCrashRestartReconverges is the fault-tolerance pin for the
// distributed runtime, driven across three fault seeds: three provnet
// processes run the bestPath workload over loopback TCP under a seeded
// fault schedule (delays and duplicates on every link), one non-root
// process is SIGKILLed mid-run and restarted cold on the same address.
// The reliability layer reconnects, the restart notification makes the
// survivors re-announce their soft state (export-log resupply), and the
// credit termination detector — whose ring root survives the crash —
// must still declare only the true fixpoint: the union of the final
// tables, condensed provenance annotations included, equals the
// single-process reference bit for bit.
func TestCrashRestartReconverges(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	dir := t.TempDir()
	prog := filepath.Join(dir, "bestpath.ndl")
	if err := os.WriteFile(prog, []byte(provnet.BestPath), 0o644); err != nil {
		t.Fatal(err)
	}
	// A unidirectional ring has a unique path between every pair, so the
	// full tables (not just costs) are reproducible under frame
	// reordering and duplication.
	nodes := []string{"n0", "n1", "n2"}
	common := []string{
		"-program", prog, "-topo", "ring:3",
		"-auth", "rsa", "-keybits", "512",
		"-prov", "condensed", "-annotate",
	}

	refCtx, refCancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer refCancel()
	refOut, err := runProvnet(refCtx, common...)
	if err != nil {
		t.Fatal(err)
	}
	want := tableLines(refOut)
	if len(want) == 0 {
		t.Fatalf("reference run printed no tables:\n%s", refOut)
	}

	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
			defer cancel()
			addrs := freeLoopbackAddrs(t, len(nodes))
			procArgs := func(i int) []string {
				var peers []string
				for j, other := range nodes {
					if j != i {
						peers = append(peers, other+"="+addrs[j])
					}
				}
				// Delay and duplicate but never drop: the fault schedule
				// wraps the transport above the retransmit layer, so a
				// dropped frame there would be a genuine application loss.
				return append(append([]string{}, common...),
					"-listen", addrs[i], "-self", nodes[i],
					"-peers", strings.Join(peers, ","), "-idle", "1s",
					"-fault", "delay=0.4,dup=0.05,delayops=200",
					"-faultseed", strconv.FormatInt(seed, 10))
			}

			outs := make([]string, len(nodes))
			errs := make([]error, len(nodes))
			var wg sync.WaitGroup
			for _, i := range []int{0, 2} {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					outs[i], errs[i] = runProvnet(ctx, procArgs(i)...)
				}(i)
			}

			// The victim is n1, not n0: the ring root must survive so the
			// wave protocol keeps a root to relaunch timed-out waves. Kill
			// it mid-run — 512-bit keygen, RSA handshakes, and the fault
			// delays keep the run alive well past the kill point.
			victim := exec.CommandContext(ctx, os.Args[0])
			victim.Env = append(os.Environ(), mainArgsEnv+"="+strings.Join(procArgs(1), argSep))
			if err := victim.Start(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(400 * time.Millisecond)
			victim.Process.Kill()
			victim.Wait()

			// Cold restart on the same address: no state survives in the
			// process, everything must come back through base facts and
			// the survivors' resupply.
			outs[1], errs[1] = runProvnet(ctx, procArgs(1)...)
			wg.Wait()

			var got []string
			for i := range nodes {
				if errs[i] != nil {
					t.Fatal(errs[i])
				}
				got = append(got, tableLines(outs[i])...)
			}
			sort.Strings(got)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("tables after crash+restart differ\n--- reference (%d rows) ---\n%s\n--- survivors+restart (%d rows) ---\n%s",
					len(want), strings.Join(want, "\n"), len(got), strings.Join(got, "\n"))
			}
		})
	}
}

// TestMultiprocessMatchesSingleProcess is the acceptance pin for the TCP
// transport: three OS processes, one node each, over loopback TCP must
// produce exactly the tables — condensed provenance annotations
// included — of the single-process netsim run on the same topology,
// under both per-envelope RSA and the session handshake transport.
func TestMultiprocessMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	dir := t.TempDir()
	prog := filepath.Join(dir, "bestpath.ndl")
	if err := os.WriteFile(prog, []byte(provnet.BestPath), 0o644); err != nil {
		t.Fatal(err)
	}
	nodes := []string{"n0", "n1", "n2"}
	common := []string{
		"-program", prog, "-topo", "ring:3",
		"-prov", "condensed", "-annotate", "-keybits", "512",
	}
	for _, scheme := range []string{"rsa", "session"} {
		t.Run(scheme, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			args := append(append([]string{}, common...), "-auth", scheme)

			refOut, err := runProvnet(ctx, args...)
			if err != nil {
				t.Fatal(err)
			}
			want := tableLines(refOut)
			if len(want) == 0 {
				t.Fatalf("reference run printed no tables:\n%s", refOut)
			}

			addrs := freeLoopbackAddrs(t, len(nodes))
			outs := make([]string, len(nodes))
			errs := make([]error, len(nodes))
			var wg sync.WaitGroup
			for i, self := range nodes {
				var peers []string
				for j, other := range nodes {
					if j != i {
						peers = append(peers, other+"="+addrs[j])
					}
				}
				procArgs := append(append([]string{}, args...),
					"-listen", addrs[i], "-self", self,
					"-peers", strings.Join(peers, ","), "-idle", "1s")
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					outs[i], errs[i] = runProvnet(ctx, procArgs...)
				}(i)
			}
			wg.Wait()
			var got []string
			for i := range nodes {
				if errs[i] != nil {
					t.Fatal(errs[i])
				}
				got = append(got, tableLines(outs[i])...)
			}
			sort.Strings(got)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("tables differ\n--- single-process (%d rows) ---\n%s\n--- 3 processes (%d rows) ---\n%s",
					len(want), strings.Join(want, "\n"), len(got), strings.Join(got, "\n"))
			}
		})
	}
}
