// Command provnet runs an NDlog/SeNDlog program on a simulated network
// and prints the resulting tables, with configurable authentication and
// provenance modes:
//
//	provnet -program routing.ndl -topo random:20:3:10:1 -auth rsa -prov condensed
//	provnet -program reachable.snd -topo ring:5 -show reachable
//	provnet -program routing.ndl -topo random:20:3:10:1 -churn 2
//
// Topology specs: random:N[:deg[:maxcost[:seed]]], line:N, ring:N,
// star:N, or none (the program's own facts place the nodes). With
// -churn N, the converged network cuts N random links through the live
// driver and re-converges incrementally before printing tables; the
// scheduler/transport knobs (-auth, -session, -sequential, -unbatched,
// -workers, -rekey, -pipelined, -engineshards) are shared with the
// other commands via internal/cliflags. -engineshards k shards each
// node's delta queue across k intra-node eval workers; results are
// bit-identical to serial evaluation at any setting.
//
// With -http the converged process stays up and serves the /v1 query
// API (traceback, tables, bestpath, SSE subscriptions; see docs/API.md)
// until interrupted; with -store DIR every table change is appended to a
// durable store log in DIR, recoverable after a crash (docs/ARCHITECTURE.md,
// "Durable storage"):
//
//	provnet -program routing.ndl -topo line:4 -prov distributed -http 127.0.0.1:8080
//	provnet -program routing.ndl -topo ring:5 -store /var/lib/provnet
//
// With -metrics the network records scheduler/engine/crypto/transport/
// store series and a flight recorder of recent rounds; the -http server
// then also serves GET /metrics (Prometheus text) and GET
// /v1/debug/rounds, and -pprof additionally mounts net/http/pprof under
// /debug/pprof/ (see docs/OBSERVABILITY.md). Without -http, -metrics
// dumps the exposition to stderr at exit:
//
//	provnet -program routing.ndl -topo line:4 -prov distributed \
//	    -metrics -pprof -http 127.0.0.1:8080
//
// With -listen, the process becomes one member of a multi-process
// deployment over real TCP: it hosts the -self node(s) (comma-separated),
// reaches the others through the -peers map over acked, retransmitted,
// deduplicated frames, and prints its own nodes' tables once the
// distributed termination detector declares the fixpoint (-term credit,
// the default; -term idle opts back into the wall-clock heuristic
// sampled over the -idle window). A -fault drop=P,dup=P,delay=P spec
// wraps the transport in a seeded fault schedule for chaos runs. Every
// process must be given the same program, topology, and -seed (the
// principal directory is derived from it). See docs/ARCHITECTURE.md and
// examples/multiprocess:
//
//	provnet -program routing.ndl -topo ring:3 -auth session \
//	    -listen 127.0.0.1:7001 -self n1 \
//	    -peers n0=127.0.0.1:7000,n2=127.0.0.1:7002
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"provnet"
	"provnet/internal/cliflags"
	"provnet/internal/queryapi"
)

func main() {
	programPath := flag.String("program", "", "path to the .ndl/.snd program (required)")
	topoSpec := flag.String("topo", "none", "topology: random:N[:deg[:maxcost[:seed]]], line:N, ring:N, star:N, none")
	provMode := flag.String("prov", "none", "provenance: none, local, distributed, condensed")
	noCost := flag.Bool("nocost", false, "generate link facts without a cost column")
	show := flag.String("show", "", "comma-separated predicates to print (default: all)")
	annotate := flag.Bool("annotate", false, "print condensed provenance annotations")
	extraNodes := flag.String("extranodes", "", "comma-separated node names not mentioned in any fact placement")
	shared := cliflags.Register(nil)
	flag.Parse()

	if *programPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	cfg := provnet.Config{
		Source:     string(src),
		LinkNoCost: *noCost,
	}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}
	if cfg.Graph, err = cliflags.ParseTopo(*topoSpec); err != nil {
		fatal(err)
	}
	if cfg.Prov, err = cliflags.ParseProv(*provMode); err != nil {
		fatal(err)
	}
	if *extraNodes != "" {
		for _, nm := range strings.Split(*extraNodes, ",") {
			cfg.ExtraNodes = append(cfg.ExtraNodes, strings.TrimSpace(nm))
		}
	}

	ctx := context.Background()
	if _, err := shared.SetupTransport(ctx, &cfg); err != nil {
		fatal(err)
	}
	if shared.Distributed() && shared.Churn > 0 {
		fatal(fmt.Errorf("-churn needs the whole topology in one process; it does not compose with -listen"))
	}
	if shared.Distributed() && shared.HTTP != "" {
		fatal(fmt.Errorf("-http serves tables after the run; it does not compose with -listen (which closes the network on idle)"))
	}
	if shared.PProf && shared.HTTP == "" {
		fatal(fmt.Errorf("-pprof mounts under the -http server; give -http too"))
	}
	if err := shared.SetupStore(&cfg); err != nil {
		fatal(err)
	}

	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	var rep *provnet.Report
	if shared.Distributed() {
		rep, err = shared.RunDistributed(ctx, n)
		// Stop the pump and release the sockets before reading tables,
		// so a straggler frame cannot mutate state mid-print.
		if cerr := n.Close(); err == nil {
			err = cerr
		}
	} else {
		rep, err = n.Run(0)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fixpoint in %v (%d rounds): %d messages, %d bytes", rep.CompletionTime, rep.Rounds, rep.Messages, rep.Bytes)
	if rep.Signed > 0 {
		fmt.Printf(", %d signatures", rep.Signed)
	}
	if rep.Handshakes > 0 {
		fmt.Printf(", %d handshakes (%d bytes), %d session MACs", rep.Handshakes, rep.HandshakeBytes, rep.SealedMAC)
	}
	if rep.Reconnects > 0 || rep.Requeues > 0 || rep.Parked > 0 {
		fmt.Printf(", %d reconnects (%d frames requeued, %d parked)", rep.Reconnects, rep.Requeues, rep.Parked)
	}
	if rep.Acks > 0 || rep.Retransmits > 0 || rep.DupDropped > 0 {
		fmt.Printf(", %d acks (%d retransmits, %d dups dropped)", rep.Acks, rep.Retransmits, rep.DupDropped)
	}
	fmt.Println()

	if churn, err := shared.RunChurn(ctx, n, cfg.Graph); err != nil {
		fatal(err)
	} else if churn != nil {
		fmt.Println(churn)
	}

	var filter map[string]bool
	if *show != "" {
		filter = map[string]bool{}
		for _, p := range strings.Split(*show, ",") {
			filter[strings.TrimSpace(p)] = true
		}
	}
	for _, node := range n.Nodes() {
		eng := n.Node(node).Engine
		for _, pred := range eng.Predicates() {
			if filter != nil && !filter[pred] {
				continue
			}
			for _, tu := range n.Tuples(node, pred) {
				fmt.Printf("%s\t%s", node, tu)
				if *annotate && cfg.Prov == provnet.ProvCondensed {
					fmt.Printf("\t%s", n.CondensedExpr(node, tu))
				}
				fmt.Println()
			}
		}
	}

	if shared.HTTP != "" {
		ln, err := net.Listen("tcp", shared.HTTP)
		if err != nil {
			fatal(err)
		}
		mux := http.NewServeMux()
		// The query server also mounts /metrics and /v1/debug/rounds when
		// the network carries a registry (-metrics).
		mux.Handle("/", queryapi.NewServer(n).Handler())
		if shared.PProf {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		// The readiness line carries the bound address (":0" picks a free
		// port) so scripts can scrape it before querying.
		fmt.Printf("serving query API on http://%s/v1\n", ln.Addr())
		if err := http.Serve(ln, mux); err != nil {
			fatal(err)
		}
	} else if shared.Metrics {
		// No server to scrape: dump the exposition once at exit.
		if err := cliflags.DumpMetrics(os.Stderr, n); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "provnet:", err)
	os.Exit(1)
}
