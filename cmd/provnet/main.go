// Command provnet runs an NDlog/SeNDlog program on a simulated network
// and prints the resulting tables, with configurable authentication and
// provenance modes:
//
//	provnet -program routing.ndl -topo random:20:3:10:1 -auth rsa -prov condensed
//	provnet -program reachable.snd -topo ring:5 -show reachable
//
// Topology specs: random:N[:deg[:maxcost[:seed]]], line:N, ring:N,
// star:N, or none (the program's own facts place the nodes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"provnet"
	"provnet/internal/auth"
	"provnet/internal/provenance"
)

func main() {
	programPath := flag.String("program", "", "path to the .ndl/.snd program (required)")
	topoSpec := flag.String("topo", "none", "topology: random:N[:deg[:maxcost[:seed]]], line:N, ring:N, star:N, none")
	authMode := flag.String("auth", "none", "says implementation: none, hmac, rsa, session (= rsa + -session)")
	provMode := flag.String("prov", "none", "provenance: none, local, distributed, condensed")
	noCost := flag.Bool("nocost", false, "generate link facts without a cost column")
	show := flag.String("show", "", "comma-separated predicates to print (default: all)")
	keyBits := flag.Int("keybits", 1024, "RSA modulus size")
	annotate := flag.Bool("annotate", false, "print condensed provenance annotations")
	extraNodes := flag.String("extranodes", "", "comma-separated node names not mentioned in any fact placement")
	sequential := flag.Bool("sequential", false, "run nodes sequentially within each round (A/B baseline)")
	unbatched := flag.Bool("unbatched", false, "ship one signed envelope per tuple instead of per-round batches")
	workers := flag.Int("workers", 0, "scheduler worker goroutines per phase (0 = GOMAXPROCS)")
	session := flag.Bool("session", false, "session transport: one RSA handshake per link, then HMAC session MACs (wire v3)")
	rekey := flag.Int("rekey", 0, "rotate session keys every N rounds (0 = never; needs -session)")
	pipelined := flag.Bool("pipelined", false, "seal/verify on a crypto stage overlapping rule evaluation")
	flag.Parse()

	if *programPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	cfg := provnet.Config{
		Source:          string(src),
		LinkNoCost:      *noCost,
		KeyBits:         *keyBits,
		Sequential:      *sequential,
		Unbatched:       *unbatched,
		Workers:         *workers,
		SessionAuth:     *session,
		RekeyRounds:     *rekey,
		PipelinedCrypto: *pipelined,
	}
	if cfg.Graph, err = parseTopo(*topoSpec); err != nil {
		fatal(err)
	}
	if cfg.Auth, err = parseAuth(*authMode); err != nil {
		fatal(err)
	}
	if cfg.Prov, err = parseProv(*provMode); err != nil {
		fatal(err)
	}
	if *extraNodes != "" {
		for _, nm := range strings.Split(*extraNodes, ",") {
			cfg.ExtraNodes = append(cfg.ExtraNodes, strings.TrimSpace(nm))
		}
	}

	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fixpoint in %v (%d rounds): %d messages, %d bytes", rep.CompletionTime, rep.Rounds, rep.Messages, rep.Bytes)
	if rep.Signed > 0 {
		fmt.Printf(", %d signatures", rep.Signed)
	}
	if rep.Handshakes > 0 {
		fmt.Printf(", %d handshakes (%d bytes), %d session MACs", rep.Handshakes, rep.HandshakeBytes, rep.SealedMAC)
	}
	fmt.Println()

	var filter map[string]bool
	if *show != "" {
		filter = map[string]bool{}
		for _, p := range strings.Split(*show, ",") {
			filter[strings.TrimSpace(p)] = true
		}
	}
	for _, node := range n.Nodes() {
		eng := n.Node(node).Engine
		for _, pred := range eng.Predicates() {
			if filter != nil && !filter[pred] {
				continue
			}
			for _, tu := range n.Tuples(node, pred) {
				fmt.Printf("%s\t%s", node, tu)
				if *annotate && cfg.Prov == provenance.ModeCondensed {
					fmt.Printf("\t%s", n.CondensedExpr(node, tu))
				}
				fmt.Println()
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "provnet:", err)
	os.Exit(1)
}

func parseTopo(spec string) (*provnet.Graph, error) {
	if spec == "none" || spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	kind := parts[0]
	num := func(i, def int) int {
		if i < len(parts) {
			if v, err := strconv.Atoi(parts[i]); err == nil {
				return v
			}
		}
		return def
	}
	switch kind {
	case "random":
		return provnet.RandomGraph(provnet.TopoOptions{
			N:            num(1, 10),
			AvgOutDegree: num(2, 3),
			MaxCost:      int64(num(3, 1)),
			Seed:         int64(num(4, 1)),
		}), nil
	case "line":
		return provnet.LineGraph(num(1, 4)), nil
	case "ring":
		return provnet.RingGraph(num(1, 4)), nil
	case "star":
		return provnet.StarGraph(num(1, 4)), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", spec)
	}
}

func parseAuth(s string) (provnet.AuthScheme, error) {
	switch s {
	case "none":
		return auth.SchemeNone, nil
	case "hmac":
		return auth.SchemeHMAC, nil
	case "rsa":
		return auth.SchemeRSA, nil
	case "session":
		return auth.SchemeSession, nil
	default:
		return 0, fmt.Errorf("unknown auth scheme %q", s)
	}
}

func parseProv(s string) (provnet.ProvMode, error) {
	switch s {
	case "none":
		return provenance.ModeNone, nil
	case "local":
		return provenance.ModeLocal, nil
	case "distributed":
		return provenance.ModeDistributed, nil
	case "condensed":
		return provenance.ModeCondensed, nil
	default:
		return 0, fmt.Errorf("unknown provenance mode %q", s)
	}
}
