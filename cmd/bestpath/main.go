// Command bestpath regenerates the paper's evaluation (§6, Figures 3 and
// 4): it runs the all-pairs Best-Path recursive query on random graphs
// with average out-degree 3, sweeping the node count, under the three
// system variants —
//
//	NDlog        no authentication, no provenance
//	SeNDlog      per-tuple RSA signatures
//	SeNDlogProv  RSA signatures + condensed BDD provenance
//
// — and reports query completion time (Figure 3) and total bandwidth
// (Figure 4), averaged over the requested number of runs, together with
// the overhead percentages the paper quotes in the text.
//
// Absolute numbers differ from the paper's (their substrate was 100 C++
// P2 processes in 2008; ours is an in-process simulator), but the shape —
// ordering of the three variants and overheads shrinking as N grows — is
// the reproduction target. See EXPERIMENTS.md.
//
// Scheduler/transport knobs come from internal/cliflags, including
// -engineshards (intra-node delta-queue sharding; bit-identical results
// at any setting).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"provnet"
	"provnet/internal/cliflags"
)

var variants = []provnet.Variant{provnet.VariantNDlog, provnet.VariantSeNDlog, provnet.VariantSeNDlogProv}

type cell struct {
	seconds float64
	mb      float64
}

func main() {
	ns := flag.String("n", "10,20,40,60,80,100", "comma-separated node counts")
	runs := flag.Int("runs", 3, "runs per point (paper: 10)")
	maxCost := flag.Int64("maxcost", 10, "max link cost")
	csvPath := flag.String("csv", "", "also write results as CSV")
	tupleCost := flag.Float64("tuplecost", 0,
		"calibration: simulated per-derivation processing cost in microseconds, "+
			"added to completion time. 0 reports pure measurements; ~1000 approximates "+
			"the per-tuple cost of the paper's 2008 P2 substrate (see EXPERIMENTS.md)")
	shared := cliflags.Register(nil)
	flag.Parse()
	if shared.TransportFlagsSet() {
		fmt.Fprintln(os.Stderr, "bestpath: -listen/-self/-peers (the multi-process TCP transport) are only supported by cmd/provnet")
		os.Exit(2)
	}
	if shared.ServiceFlagsSet() {
		fmt.Fprintln(os.Stderr, "bestpath: -store/-http (the durable store log and query API) are only supported by cmd/provnet")
		os.Exit(2)
	}
	// The three paper variants fix the says scheme per column; a -auth
	// override would be silently discarded, so reject it instead.
	if shared.Auth != "none" {
		fmt.Fprintln(os.Stderr, "bestpath: the variants fix the says scheme; -auth is not applicable")
		os.Exit(2)
	}

	var sizes []int
	for _, s := range strings.Split(*ns, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 2 {
			fmt.Fprintf(os.Stderr, "bad node count %q\n", s)
			os.Exit(1)
		}
		sizes = append(sizes, v)
	}

	fmt.Printf("Best-Path evaluation: N in %v, %d run(s) per point, RSA-%d\n",
		sizes, *runs, shared.KeyBits)
	if shared.Churn > 0 {
		fmt.Printf("with live churn: %d link cut(s) per run, measured as incremental re-convergence\n", shared.Churn)
	}
	fmt.Printf("%-6s", "N")
	for _, v := range variants {
		fmt.Printf(" | %-12s %-10s", v.String()+" s", "MB")
	}
	fmt.Println()

	results := map[int]map[provnet.Variant]cell{}
	for _, n := range sizes {
		results[n] = map[provnet.Variant]cell{}
		fmt.Printf("%-6d", n)
		for _, v := range variants {
			c := runPoint(v, n, *runs, *maxCost, *tupleCost, shared)
			results[n][v] = c
			fmt.Printf(" | %-12.3f %-10.3f", c.seconds, c.mb)
		}
		fmt.Println()
	}

	printOverheads(sizes, results)

	if *csvPath != "" {
		if err := writeCSV(*csvPath, sizes, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func runPoint(v provnet.Variant, n, runs int, maxCost int64, tupleCostMicros float64, shared *cliflags.Flags) cell {
	var totalSec, totalMB float64
	for r := 0; r < runs; r++ {
		seed := int64(n*1000 + r)
		g := provnet.RandomGraph(provnet.TopoOptions{
			N: n, AvgOutDegree: 3, MaxCost: maxCost, Seed: seed,
		})
		cfg := provnet.VariantConfig(v, provnet.BestPath)
		auth := cfg.Auth // the variant decides the says scheme, not -auth
		if err := shared.Apply(&cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Auth = auth
		cfg.Graph = g
		cfg.Seed = seed
		net, err := provnet.NewNetwork(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		rep, err := net.Run(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The -churn scenario folds the cost of live link cuts and their
		// incremental re-convergence into the point's time and bandwidth.
		if _, err := shared.RunChurn(context.Background(), net, g); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sec := time.Since(start).Seconds()
		// Calibration model: charge every rule firing the configured
		// substrate cost, approximating the paper's P2 processing time.
		sec += float64(rep.Derivations) * tupleCostMicros / 1e6
		totalSec += sec
		totalMB += float64(net.Transport().Stats().Bytes) / (1 << 20)
	}
	return cell{seconds: totalSec / float64(runs), mb: totalMB / float64(runs)}
}

// printOverheads reports the percentages the paper quotes: SeNDlog vs
// NDlog, and SeNDlogProv vs SeNDlog, per point and averaged.
func printOverheads(sizes []int, results map[int]map[provnet.Variant]cell) {
	fmt.Println("\nOverheads (paper §6 reports: SeNDlog vs NDlog avg +53% time / +36% bw,")
	fmt.Println("falling to +44%/+17% at N=100; SeNDlogProv vs SeNDlog avg +41% time /")
	fmt.Println("+54% bw, falling to +6%/+10% at N=100):")
	fmt.Printf("%-6s | %-22s | %-22s\n", "N", "SeNDlog vs NDlog", "SeNDlogProv vs SeNDlog")
	fmt.Printf("%-6s | %-10s %-11s | %-10s %-11s\n", "", "time%", "bw%", "time%", "bw%")
	var sumT1, sumB1, sumT2, sumB2 float64
	for _, n := range sizes {
		nd := results[n][provnet.VariantNDlog]
		se := results[n][provnet.VariantSeNDlog]
		pr := results[n][provnet.VariantSeNDlogProv]
		t1 := pct(se.seconds, nd.seconds)
		b1 := pct(se.mb, nd.mb)
		t2 := pct(pr.seconds, se.seconds)
		b2 := pct(pr.mb, se.mb)
		sumT1 += t1
		sumB1 += b1
		sumT2 += t2
		sumB2 += b2
		fmt.Printf("%-6d | %+9.1f%% %+10.1f%% | %+9.1f%% %+10.1f%%\n", n, t1, b1, t2, b2)
	}
	k := float64(len(sizes))
	fmt.Printf("%-6s | %+9.1f%% %+10.1f%% | %+9.1f%% %+10.1f%%\n", "avg",
		sumT1/k, sumB1/k, sumT2/k, sumB2/k)
}

func pct(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (x/base - 1) * 100
}

func writeCSV(path string, sizes []int, results map[int]map[provnet.Variant]cell) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "n,variant,seconds,mb")
	for _, n := range sizes {
		for _, v := range variants {
			c := results[n][v]
			fmt.Fprintf(f, "%d,%s,%.6f,%.6f\n", n, v, c.seconds, c.mb)
		}
	}
	return nil
}
