// Command traceq runs a program to fixpoint and then executes provenance
// traceback queries against it: full distributed reconstruction, random
// moonwalks, and offline (post-expiry) forensics.
//
//	traceq -program worm.ndl -topo line:4 -node victim -tuple 'infected(victim, slammer)'
//	traceq ... -advance 60 -offline       # forensic query after expiry
//	traceq ... -moonwalk -walks 5         # sampled backward walks
//
// The scheduler and transport-security knobs of cmd/provnet are also
// available: -auth, -keybits, -sequential, -unbatched, -workers,
// -session, -rekey, -pipelined.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"provnet"
	"provnet/internal/core"
)

func main() {
	programPath := flag.String("program", "", "path to the program (required)")
	topoSpec := flag.String("topo", "none", "topology spec (see cmd/provnet)")
	noCost := flag.Bool("nocost", false, "link facts without cost column")
	node := flag.String("node", "", "node to start the traceback at (required)")
	tupleText := flag.String("tuple", "", "tuple to trace, e.g. 'reachable(a, c)' (required)")
	advance := flag.Float64("advance", 0, "advance logical time by this many seconds before querying")
	offline := flag.Bool("offline", false, "consult offline provenance stores")
	moonwalk := flag.Bool("moonwalk", false, "random moonwalk instead of full reconstruction")
	walks := flag.Int("walks", 3, "number of moonwalks")
	seed := flag.Int64("seed", 1, "moonwalk rng seed")
	extraNodes := flag.String("extranodes", "", "comma-separated node names not mentioned in any fact placement")
	authMode := flag.String("auth", "none", "says implementation: none, hmac, rsa, session (= rsa + -session)")
	keyBits := flag.Int("keybits", 1024, "RSA modulus size")
	sequential := flag.Bool("sequential", false, "run nodes sequentially within each round (A/B baseline)")
	unbatched := flag.Bool("unbatched", false, "ship one signed envelope per tuple instead of per-round batches")
	workers := flag.Int("workers", 0, "scheduler worker goroutines per phase (0 = GOMAXPROCS)")
	session := flag.Bool("session", false, "session transport: one RSA handshake per link, then HMAC session MACs (wire v3)")
	rekey := flag.Int("rekey", 0, "rotate session keys every N rounds (0 = never; needs -session)")
	pipelined := flag.Bool("pipelined", false, "seal/verify on a crypto stage overlapping rule evaluation")
	flag.Parse()

	if *programPath == "" || *node == "" || *tupleText == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	target, err := core.ParseTuple(*tupleText)
	if err != nil {
		fatal(err)
	}

	off := -1.0
	cfg := provnet.Config{
		Source:          string(src),
		LinkNoCost:      *noCost,
		Prov:            provnet.ProvDistributed,
		Offline:         &off,
		KeyBits:         *keyBits,
		Sequential:      *sequential,
		Unbatched:       *unbatched,
		Workers:         *workers,
		SessionAuth:     *session,
		RekeyRounds:     *rekey,
		PipelinedCrypto: *pipelined,
	}
	if cfg.Graph, err = parseTopo(*topoSpec); err != nil {
		fatal(err)
	}
	if cfg.Auth, err = parseAuth(*authMode); err != nil {
		fatal(err)
	}
	if *extraNodes != "" {
		for _, nm := range strings.Split(*extraNodes, ",") {
			cfg.ExtraNodes = append(cfg.ExtraNodes, strings.TrimSpace(nm))
		}
	}
	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	if _, err := n.Run(0); err != nil {
		fatal(err)
	}
	if *advance > 0 {
		n.Advance(*advance)
		fmt.Printf("advanced logical time to %gs; soft state expired\n", n.Clock())
	}

	if *moonwalk {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *walks; i++ {
			tree, stats, err := n.DerivationTree(*node, target, provnet.ProvQueryOpts{
				Moonwalk: true, Rng: rng, Offline: *offline,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nmoonwalk %d (%d hops, %d entries):\n", i+1, stats.Messages, stats.Entries)
			fmt.Print(tree.Render(nil))
		}
		return
	}

	tree, stats, err := n.DerivationTree(*node, target, provnet.ProvQueryOpts{Offline: *offline})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("derivation tree of %s at %s:\n", target, *node)
	fmt.Print(tree.Render(nil))
	fmt.Printf("\nquery cost: %d inter-node messages, ~%d bytes, %d nodes visited, %d entries\n",
		stats.Messages, stats.Bytes, stats.NodesVisited, stats.Entries)
	fmt.Println("base tuples:")
	for _, l := range tree.Leaves() {
		fmt.Printf("  %s\n", l)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceq:", err)
	os.Exit(1)
}

func parseAuth(s string) (provnet.AuthScheme, error) {
	switch s {
	case "none":
		return provnet.AuthNone, nil
	case "hmac":
		return provnet.AuthHMAC, nil
	case "rsa":
		return provnet.AuthRSA, nil
	case "session":
		return provnet.AuthSession, nil
	default:
		return 0, fmt.Errorf("unknown auth scheme %q", s)
	}
}

func parseTopo(spec string) (*provnet.Graph, error) {
	if spec == "none" || spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	num := func(i, def int) int {
		if i < len(parts) {
			if v, err := strconv.Atoi(parts[i]); err == nil {
				return v
			}
		}
		return def
	}
	switch parts[0] {
	case "random":
		return provnet.RandomGraph(provnet.TopoOptions{
			N: num(1, 10), AvgOutDegree: num(2, 3), MaxCost: int64(num(3, 1)), Seed: int64(num(4, 1)),
		}), nil
	case "line":
		return provnet.LineGraph(num(1, 4)), nil
	case "ring":
		return provnet.RingGraph(num(1, 4)), nil
	case "star":
		return provnet.StarGraph(num(1, 4)), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", spec)
	}
}
