// Command traceq runs a program to fixpoint and then executes provenance
// traceback queries against it: full distributed reconstruction, random
// moonwalks, and offline (post-expiry) forensics.
//
//	traceq -program worm.ndl -topo line:4 -node victim -tuple 'infected(victim, slammer)'
//	traceq ... -advance 60 -offline       # forensic query after expiry
//	traceq ... -moonwalk -walks 5         # sampled backward walks
//	traceq ... -churn 1                   # cut a link first: stale provenance
//	traceq ... -format json               # machine-readable (queryapi schema v1)
//
// -format json emits the same versioned QueryResult JSON the HTTP API's
// /v1/traceback endpoint serves (internal/queryapi, docs/API.md), so
// scripts can consume either source interchangeably.
//
// The scheduler, transport-security, and churn knobs are shared with the
// other commands via internal/cliflags: -auth, -keybits, -sequential,
// -unbatched, -workers, -session, -rekey, -pipelined, -engineshards,
// -churn, -churnseed.
// With -churn N the traceback runs against the re-converged network, so
// withdrawn tuples show up as stale provenance history.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"provnet"
	"provnet/internal/cliflags"
	"provnet/internal/core"
	"provnet/internal/queryapi"
)

func main() {
	programPath := flag.String("program", "", "path to the program (required)")
	topoSpec := flag.String("topo", "none", "topology spec (see cmd/provnet)")
	noCost := flag.Bool("nocost", false, "link facts without cost column")
	node := flag.String("node", "", "node to start the traceback at (required)")
	tupleText := flag.String("tuple", "", "tuple to trace, e.g. 'reachable(a, c)' (required)")
	advance := flag.Float64("advance", 0, "advance logical time by this many seconds before querying")
	offline := flag.Bool("offline", false, "consult offline provenance stores")
	moonwalk := flag.Bool("moonwalk", false, "random moonwalk instead of full reconstruction")
	walks := flag.Int("walks", 3, "number of moonwalks")
	seed := flag.Int64("seed", 1, "moonwalk rng seed")
	extraNodes := flag.String("extranodes", "", "comma-separated node names not mentioned in any fact placement")
	format := flag.String("format", "text", "output format: text or json (queryapi schema)")
	shared := cliflags.Register(nil)
	flag.Parse()
	if shared.TransportFlagsSet() {
		fatal(fmt.Errorf("-listen/-self/-peers (the multi-process TCP transport) are only supported by cmd/provnet"))
	}
	if shared.ServiceFlagsSet() {
		fatal(fmt.Errorf("-store/-http (the durable store log and query API) are only supported by cmd/provnet"))
	}

	if *programPath == "" || *node == "" || *tupleText == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fatal(fmt.Errorf("unknown -format %q (want text or json)", *format))
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	target, err := core.ParseTuple(*tupleText)
	if err != nil {
		fatal(err)
	}

	off := -1.0
	cfg := provnet.Config{
		Source:     string(src),
		LinkNoCost: *noCost,
		Prov:       provnet.ProvDistributed,
		Offline:    &off,
	}
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}
	if cfg.Graph, err = cliflags.ParseTopo(*topoSpec); err != nil {
		fatal(err)
	}
	if *extraNodes != "" {
		for _, nm := range strings.Split(*extraNodes, ",") {
			cfg.ExtraNodes = append(cfg.ExtraNodes, strings.TrimSpace(nm))
		}
	}
	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	if _, err := n.Run(0); err != nil {
		fatal(err)
	}
	if churn, err := shared.RunChurn(context.Background(), n, cfg.Graph); err != nil {
		fatal(err)
	} else if churn != nil {
		fmt.Println(churn)
	}
	if *advance > 0 {
		n.Advance(*advance)
		fmt.Printf("advanced logical time to %gs; soft state expired\n", n.Clock())
	}

	if *moonwalk {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *walks; i++ {
			tree, stats, err := n.DerivationTree(*node, target, provnet.ProvQueryOpts{
				Moonwalk: true, Rng: rng, Offline: *offline,
			})
			if err != nil {
				fatal(err)
			}
			if *format == "json" {
				emitJSON(queryapi.TracebackResult(*node, target.String(), tree, stats))
				continue
			}
			fmt.Printf("\nmoonwalk %d (%d hops, %d entries):\n", i+1, stats.Messages, stats.Entries)
			fmt.Print(tree.Render(nil))
		}
		return
	}

	tree, stats, err := n.DerivationTree(*node, target, provnet.ProvQueryOpts{Offline: *offline})
	if err != nil {
		fatal(err)
	}
	if *format == "json" {
		emitJSON(queryapi.TracebackResult(*node, target.String(), tree, stats))
		return
	}
	fmt.Printf("derivation tree of %s at %s:\n", target, *node)
	fmt.Print(tree.Render(nil))
	fmt.Printf("\nquery cost: %d inter-node messages, ~%d bytes, %d nodes visited, %d entries\n",
		stats.Messages, stats.Bytes, stats.NodesVisited, stats.Entries)
	fmt.Println("base tuples:")
	for _, l := range tree.Leaves() {
		fmt.Printf("  %s\n", l)
	}
	// With -metrics, the exit-time exposition goes to stderr so it never
	// mixes with the tree/JSON output above.
	if err := cliflags.DumpMetrics(os.Stderr, n); err != nil {
		fatal(err)
	}
}

// emitJSON writes one QueryResult document to stdout (one per moonwalk
// when -moonwalk is set).
func emitJSON(res *queryapi.QueryResult) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceq:", err)
	os.Exit(1)
}
