// Command provlint runs the repo's invariant analyzers (internal/lint)
// over the module and exits nonzero on any finding. It is the
// mechanical form of the standing guardrails: determinism of the
// order-pinned paths (mapiter, detpath), the Key() wire/provenance
// contract (keystring), the architecture map's import boundaries
// (layering), and the obs nil-safety contract (nilmetrics). See
// docs/LINTING.md.
//
// Usage:
//
//	provlint [-checks mapiter,layering] [-list] [dir ...]
//
// With no arguments every package in the module is analyzed (like
// ./...; testdata directories are skipped, as the go tool does).
// Directory arguments analyze ad-hoc packages — lint's own testdata,
// or a scratch reproduction. Suppress a single finding with
// //provlint:allow <check> <reason> on the flagged line or the line
// above; unused directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"provnet/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *checksFlag != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "provlint: unknown check %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "provlint: %v\n", err)
		os.Exit(2)
	}

	var pkgs []*lint.Package
	if args := flag.Args(); len(args) > 0 {
		for _, dir := range args {
			pkg, err := loader.LoadDir(dir, adHocPath(loader, dir))
			if err != nil {
				fmt.Fprintf(os.Stderr, "provlint: %v\n", err)
				os.Exit(2)
			}
			pkgs = append(pkgs, pkg)
		}
	} else {
		pkgs, err = loader.LoadModulePackages()
		if err != nil {
			fmt.Fprintf(os.Stderr, "provlint: %v\n", err)
			os.Exit(2)
		}
	}

	diags := lint.Run(loader.Fset, pkgs, analyzers, lint.DefaultConfig())
	for _, d := range diags {
		fmt.Println(rel(d.String()))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "provlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// adHocPath derives a stable import path for a directory argument: a
// module-relative path when the directory is inside the module (so
// package-scoped rules can still match it), a synthetic one otherwise.
func adHocPath(l *lint.Loader, dir string) string {
	abs, err := filepath.Abs(dir)
	if err == nil {
		if r, err := filepath.Rel(l.Root, abs); err == nil && !strings.HasPrefix(r, "..") {
			return l.Module + "/" + filepath.ToSlash(r)
		}
	}
	return l.Module + "/adhoc/" + filepath.Base(dir)
}

// rel trims the working directory from diagnostic positions so output
// matches the file:line style of go vet.
func rel(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	return strings.TrimPrefix(s, wd+string(filepath.Separator))
}
