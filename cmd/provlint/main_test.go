package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildProvlint compiles the linter binary once per test run.
func buildProvlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "provlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building provlint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestDeliberateViolation mirrors benchgate's deliberate-regression
// check: seed a file that breaks the keystring and nilmetrics
// contracts, run the real binary over it, and require a nonzero exit
// naming both findings. This is what proves `make lint` can actually
// fail.
func TestDeliberateViolation(t *testing.T) {
	bin := buildProvlint(t)
	dir := t.TempDir()
	src := `package seeded

import (
	"provnet/internal/data"
	"provnet/internal/obs"
)

func leakKey(t data.Tuple) string { return t.Key() }

func derefInstrument(c *obs.Counter) obs.Counter { return *c }
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, dir)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("provlint exited zero on a seeded violation; output:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit code 1, got %v; output:\n%s", err, out)
	}
	for _, needle := range []string{"[keystring]", "[nilmetrics]", "seeded.go"} {
		if !strings.Contains(string(out), needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

// TestCleanTreeExitsZero runs the binary the way make lint does: the
// whole module must pass, and the exit code must be zero.
func TestCleanTreeExitsZero(t *testing.T) {
	bin := buildProvlint(t)
	cmd := exec.Command(bin)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("provlint failed on the tree: %v\n%s", err, out)
	}
}

// TestListAndChecksFlags smoke-tests the CLI surface.
func TestListAndChecksFlags(t *testing.T) {
	bin := buildProvlint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, name := range []string{"mapiter", "detpath", "keystring", "layering", "nilmetrics"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
	cmd := exec.Command(bin, "-checks", "layering,nilmetrics")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("-checks subset on clean tree: %v\n%s", err, out)
	}
	if out, err := exec.Command(bin, "-checks", "nosuch").CombinedOutput(); err == nil {
		t.Fatalf("-checks nosuch should fail, output:\n%s", out)
	}
}
