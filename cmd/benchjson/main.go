// Command benchjson runs the transport-security benchmark matrix (the
// BenchmarkSessionAuth workload: §6 Best-Path on a 20-node random
// topology under churn, defined once in internal/benchwork) and records
// the results as JSON — ns per run, bytes on wire, and signature/MAC
// counts for the per-tuple RSA, per-batch RSA, and session-MAC
// transports. CI runs it on every build and uploads the file as an
// artifact, so the perf trajectory across PRs is tracked:
//
//	go run ./cmd/benchjson -out BENCH_pr2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"provnet"
	"provnet/internal/benchwork"
)

// result is one benchmark matrix cell.
type result struct {
	Mode           string  `json:"mode"`
	NsPerOp        int64   `json:"ns_per_op"`
	WireBytes      int64   `json:"wire_bytes"`
	HandshakeBytes int64   `json:"handshake_bytes"`
	Messages       int64   `json:"messages"`
	Signatures     int64   `json:"signatures"`
	Handshakes     int64   `json:"handshakes"`
	MACs           int64   `json:"macs"`
	WireMB         float64 `json:"wire_mb"`
}

type output struct {
	Workload string   `json:"workload"`
	Nodes    int      `json:"nodes"`
	Cycles   int      `json:"cycles"`
	Runs     int      `json:"runs"`
	KeyBits  int      `json:"key_bits"`
	Results  []result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_pr2.json", "output path")
	nodes := flag.Int("n", 20, "topology size")
	cycles := flag.Int("cycles", benchwork.DefaultCycles, "route-refresh cycles after initial convergence")
	runs := flag.Int("runs", 1, "averaging runs per mode")
	keyBits := flag.Int("keybits", 1024, "RSA modulus size")
	flag.Parse()

	o := output{
		Workload: "bestpath-churn",
		Nodes:    *nodes,
		Cycles:   *cycles,
		Runs:     *runs,
		KeyBits:  *keyBits,
	}
	for _, m := range benchwork.Modes() {
		var r result
		r.Mode = m.Name
		for i := 0; i < *runs; i++ {
			cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
			m.Mut(&cfg)
			start := time.Now()
			rep := benchwork.BestPathChurn(fatal, cfg, *nodes, *cycles, *keyBits, int64(2000+i))
			r.NsPerOp += time.Since(start).Nanoseconds()
			r.WireBytes += rep.Bytes
			r.HandshakeBytes += rep.HandshakeBytes
			r.Messages += rep.Messages
			r.Signatures += rep.Signed
			r.Handshakes += rep.Handshakes
			r.MACs += rep.SealedMAC
		}
		k := int64(*runs)
		r.NsPerOp /= k
		r.WireBytes /= k
		r.HandshakeBytes /= k
		r.Messages /= k
		r.Signatures /= k
		r.Handshakes /= k
		r.MACs /= k
		r.WireMB = float64(r.WireBytes) / (1 << 20)
		o.Results = append(o.Results, r)
		fmt.Printf("%-22s %12dns %10d bytes %6d signatures %6d macs\n",
			m.Name, r.NsPerOp, r.WireBytes, r.Signatures, r.MACs)
	}

	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"benchjson:"}, args...)...)
	os.Exit(1)
}
