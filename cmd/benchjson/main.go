// Command benchjson records the benchmark workloads as JSON artifacts CI
// uploads on every build, so the perf trajectory across PRs is tracked.
//
// The default mode runs the transport-security matrix (the
// BenchmarkSessionAuth workload: §6 Best-Path on a 20-node random
// topology under churn, defined once in internal/benchwork):
//
//	go run ./cmd/benchjson -out BENCH_pr2.json
//
// With -live it records the live-churn workload instead: for each
// transport mode, converge, cut one best-path-carrying link through the
// lifecycle driver, and compare the incremental re-convergence (rounds,
// bytes, withdrawn tuples) against a full restart on the cut topology:
//
//	go run ./cmd/benchjson -live -out BENCH_pr3.json
//
// With -chaos it records the distributed-termination workload: N
// one-node networks over reliable loopback TCP under a seeded fault
// schedule (-fault/-faultseed; delays, duplicates, and post-kernel
// write loss), terminated by the credit/clean-wave detector and by the
// idle-window heuristic across three seeds each — the artifact compares
// their termination latency, reliability wire overhead (acks,
// retransmits, suppressed duplicates), and table correctness:
//
//	go run ./cmd/benchjson -chaos -out BENCH_pr10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"provnet"
	"provnet/internal/benchwork"
	"provnet/internal/cliflags"
)

// result is one transport-matrix cell (BENCH_pr2).
type result struct {
	Mode           string  `json:"mode"`
	NsPerOp        int64   `json:"ns_per_op"`
	WireBytes      int64   `json:"wire_bytes"`
	HandshakeBytes int64   `json:"handshake_bytes"`
	Messages       int64   `json:"messages"`
	Signatures     int64   `json:"signatures"`
	Handshakes     int64   `json:"handshakes"`
	MACs           int64   `json:"macs"`
	WireMB         float64 `json:"wire_mb"`
}

// shardResult is one intra-node sharding cell (BENCH_pr4): the wide
// fan-in workload at one Config.EngineShards setting. Tables and stats
// are bit-identical across shard counts; only wall-clock may differ
// (and only on multicore hardware).
type shardResult struct {
	EngineShards int   `json:"engine_shards"`
	NsPerOp      int64 `json:"ns_per_op"`
	Derivations  int64 `json:"derivations"`
	TuplesStored int64 `json:"tuples_stored"`
	Rounds       int   `json:"rounds"`
}

// queryLoadResult is the BENCH_pr6 concurrent-query record: HTTP
// traceback/table queries against a churning network served from
// snapshot-isolated ReadViews; torn must be zero.
type queryLoadResult struct {
	Workers    int     `json:"workers"`
	Churns     int     `json:"churns"`
	Snapshots  int     `json:"snapshots"`
	Queries    int     `json:"queries"`
	Tracebacks int     `json:"tracebacks"`
	TraceMiss  int     `json:"trace_miss"`
	Torn       int     `json:"torn_reads"`
	NsPerOp    int64   `json:"ns_per_op"`
	QPS        float64 `json:"queries_per_sec"`
}

// liveResult is one live-churn cell (BENCH_pr3): a single CutLink's
// incremental re-convergence vs a full restart, averaged over runs.
// CutLinks records every run's cut (each run uses a fresh seeded
// topology, so the cuts differ).
type liveResult struct {
	Mode          string   `json:"mode"`
	CutLinks      []string `json:"cut_links"`
	LiveRounds    int      `json:"live_rounds"`
	LiveBytes     int64    `json:"live_bytes"`
	Retracted     int64    `json:"retracted_tuples"`
	RestartRounds int      `json:"restart_rounds"`
	RestartBytes  int64    `json:"restart_bytes"`
	BytesRatio    float64  `json:"restart_over_live_bytes"`
}

// chaosResult is one chaos termination cell (BENCH_pr10): the credit
// detector or the idle heuristic ending a faulted distributed run.
// AckBytes+retransmits are the reliability overhead; TablesMatch is the
// correctness column the credit protocol wins.
type chaosResult struct {
	Term        string `json:"term"`
	Seed        int64  `json:"seed"`
	NsToTerm    int64  `json:"ns_to_terminate"`
	Waves       uint64 `json:"waves,omitempty"`
	Messages    int64  `json:"messages"`
	WireBytes   int64  `json:"wire_bytes"`
	AckMessages int64  `json:"ack_messages"`
	AckBytes    int64  `json:"ack_bytes"`
	Retransmits int64  `json:"retransmits"`
	DupDropped  int64  `json:"dup_dropped"`
	Delayed     int64  `json:"delayed_frames"`
	Duplicated  int64  `json:"duplicated_frames"`
	WriteLost   int64  `json:"write_lost_frames"`
	TablesMatch bool   `json:"tables_match"`
}

type output struct {
	Workload string           `json:"workload"`
	Nodes    int              `json:"nodes"`
	Cycles   int              `json:"cycles,omitempty"`
	Runs     int              `json:"runs"`
	KeyBits  int              `json:"key_bits"`
	Results  []result         `json:"results,omitempty"`
	Live     []liveResult     `json:"live_results,omitempty"`
	Shard    []shardResult    `json:"shard_results,omitempty"`
	Query    *queryLoadResult `json:"query_results,omitempty"`
	Chaos    []chaosResult    `json:"chaos_results,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_pr2.json", "output path")
	nodes := flag.Int("n", 20, "topology size")
	cycles := flag.Int("cycles", benchwork.DefaultCycles, "route-refresh cycles after initial convergence")
	runs := flag.Int("runs", 1, "averaging runs per mode")
	live := flag.Bool("live", false, "record the live-churn workload (CutLink re-convergence vs restart)")
	chaos := flag.Bool("chaos", false, "record the chaos termination workload (credit detector vs idle heuristic under -fault)")
	shard := flag.Bool("shard", false, "record the intra-node sharding workload (wide fan-in, engineshards sweep)")
	queryload := flag.Bool("queryload", false, "record the concurrent HTTP query workload (tracebacks vs churn, torn-read check)")
	qworkers := flag.Int("qworkers", 8, "query goroutines for -queryload")
	minQueries := flag.Int("queries", 1000, "traceback quota for -queryload")
	shared := cliflags.Register(nil)
	flag.Parse()
	if shared.TransportFlagsSet() {
		fatal(fmt.Errorf("-listen/-self/-peers (the multi-process TCP transport) are only supported by cmd/provnet"))
	}
	if shared.ServiceFlagsSet() {
		fatal(fmt.Errorf("-store/-http (the durable store log and query API) are only supported by cmd/provnet"))
	}
	// The recorded matrix IS the transport dimension: knobs that would
	// change it silently must be rejected, not ignored (the artifact is
	// compared across PRs).
	if shared.Auth != "none" || shared.Session || shared.Unbatched || shared.Pipelined || shared.Churn > 0 || shared.Rekey != 0 {
		fatal("benchjson fixes the transport matrix; -auth/-session/-unbatched/-pipelined/-churn/-rekey are not applicable")
	}

	if *chaos {
		recordChaos(*out, *nodes, shared)
		return
	}
	if shared.Fault != "" {
		fatal("-fault/-faultseed configure the -chaos workload; the other cells run fault-free")
	}
	if *queryload {
		recordQueryLoad(*out, *nodes, *qworkers, *minQueries, shared)
		return
	}
	if *shard {
		// The shard sweep IS the engineshards dimension.
		if shared.EngineShards != 0 {
			fatal("-shard sweeps engineshards itself; -engineshards is not applicable")
		}
		recordShard(*out, *nodes, *runs, shared)
		return
	}
	if *live {
		recordLive(*out, *nodes, *runs, shared)
		return
	}

	o := output{
		Workload: "bestpath-churn",
		Nodes:    *nodes,
		Cycles:   *cycles,
		Runs:     *runs,
		KeyBits:  shared.KeyBits,
	}
	for _, m := range benchwork.Modes() {
		var r result
		r.Mode = m.Name
		for i := 0; i < *runs; i++ {
			cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
			cfg.Sequential = shared.Sequential
			cfg.Workers = shared.Workers
			cfg.EngineShards = shared.EngineShards
			m.Mut(&cfg)
			start := time.Now()
			rep := benchwork.BestPathChurn(fatal, cfg, *nodes, *cycles, shared.KeyBits, int64(2000+i))
			r.NsPerOp += time.Since(start).Nanoseconds()
			r.WireBytes += rep.Bytes
			r.HandshakeBytes += rep.HandshakeBytes
			r.Messages += rep.Messages
			r.Signatures += rep.Signed
			r.Handshakes += rep.Handshakes
			r.MACs += rep.SealedMAC
		}
		k := int64(*runs)
		r.NsPerOp /= k
		r.WireBytes /= k
		r.HandshakeBytes /= k
		r.Messages /= k
		r.Signatures /= k
		r.Handshakes /= k
		r.MACs /= k
		r.WireMB = float64(r.WireBytes) / (1 << 20)
		o.Results = append(o.Results, r)
		fmt.Printf("%-22s %12dns %10d bytes %6d signatures %6d macs\n",
			m.Name, r.NsPerOp, r.WireBytes, r.Signatures, r.MACs)
	}
	write(*out, o)
}

// recordShard runs the BENCH_pr4 intra-node sharding workload: the
// wide fan-in join at Config.EngineShards 1, 2, 4, and 8, where the
// hub's rule evaluation — not transport — dominates. nodes is the
// spoke count. Derivations/tuples/rounds are recorded alongside ns/op
// precisely because they must NOT move across shard counts: the sweep
// doubles as a determinism record.
func recordShard(out string, nodes, runs int, shared *cliflags.Flags) {
	o := output{
		Workload: "sharded-fanin",
		Nodes:    nodes + 1, // spokes + hub
		Runs:     runs,
		KeyBits:  shared.KeyBits,
	}
	for _, shards := range []int{1, 2, 4, 8} {
		var agg shardResult
		agg.EngineShards = shards
		for i := 0; i < runs; i++ {
			cfg := provnet.Config{
				Sequential:   shared.Sequential,
				Workers:      shared.Workers,
				EngineShards: shards,
			}
			rep := benchwork.ShardedFanIn(fatal, cfg, nodes, 64, 6, int64(4000+i))
			// CompletionTime covers only the run to fixpoint, excluding
			// network construction (principal key generation).
			agg.NsPerOp += rep.CompletionTime.Nanoseconds()
			agg.Derivations += rep.Derivations
			agg.TuplesStored += rep.TuplesStored
			agg.Rounds += rep.Rounds
		}
		k := int64(runs)
		agg.NsPerOp /= k
		agg.Derivations /= k
		agg.TuplesStored /= k
		agg.Rounds /= runs
		o.Shard = append(o.Shard, agg)
		fmt.Printf("engineshards=%d %12dns %8d derivations %8d tuples %3d rounds\n",
			agg.EngineShards, agg.NsPerOp, agg.Derivations, agg.TuplesStored, agg.Rounds)
	}
	write(out, o)
}

// recordQueryLoad runs the BENCH_pr6 concurrent-query workload:
// workers goroutines issue HTTP traceback and table queries against a
// live churning network until the traceback quota is met, and every
// table response is checked against the set of published snapshots.
func recordQueryLoad(out string, nodes, workers, minQueries int, shared *cliflags.Flags) {
	cfg := provnet.Config{
		Source:       provnet.BestPath,
		Prov:         provnet.ProvDistributed,
		Sequential:   shared.Sequential,
		Workers:      shared.Workers,
		EngineShards: shared.EngineShards,
	}
	r := benchwork.ConcurrentQueryLoad(fatal, cfg, nodes, workers, minQueries, 11)
	if r.Torn != 0 {
		fatal(fmt.Errorf("%d torn reads — snapshot isolation is broken", r.Torn))
	}
	o := output{
		Workload: "concurrent-query-load",
		Nodes:    r.Nodes,
		Runs:     1,
		KeyBits:  shared.KeyBits,
		Query: &queryLoadResult{
			Workers:    r.Workers,
			Churns:     r.Churns,
			Snapshots:  r.Snapshots,
			Queries:    r.Queries,
			Tracebacks: r.Tracebacks,
			TraceMiss:  r.TraceMiss,
			Torn:       r.Torn,
			NsPerOp:    r.Elapsed.Nanoseconds(),
			QPS:        r.QPS,
		},
	}
	fmt.Printf("queryload n=%d workers=%d: %d queries (%d tracebacks, %d misses) over %d churns, %d snapshots, %.0f q/s, torn=%d\n",
		r.Nodes, r.Workers, r.Queries, r.Tracebacks, r.TraceMiss, r.Churns, r.Snapshots, r.QPS, r.Torn)
	write(out, o)
}

// recordChaos runs the BENCH_pr10 chaos termination workload: both
// termination modes across three fault seeds, same topology and fault
// spec, so adjacent cells isolate the detector's cost. The default
// schedule delays 30% of frames, duplicates 5%, and loses 5% of writes
// post-kernel; -fault/-faultseed override it.
func recordChaos(out string, nodes int, shared *cliflags.Flags) {
	spec := shared.Fault
	if spec == "" {
		spec = "delay=0.3,dup=0.05,delayops=200"
	}
	fc, err := cliflags.ParseFault(spec)
	if err != nil {
		fatal(err)
	}
	o := output{
		Workload: "chaos-termination",
		Nodes:    nodes,
		Runs:     3,
		KeyBits:  shared.KeyBits,
	}
	for _, term := range []string{"credit", "idle"} {
		for s := int64(0); s < 3; s++ {
			cfg := provnet.Config{
				Sequential:   shared.Sequential,
				Workers:      shared.Workers,
				EngineShards: shared.EngineShards,
			}
			r := benchwork.ChaosTermination(fatal, cfg, benchwork.ChaosSpec{
				Nodes:     nodes,
				Seed:      shared.FaultSeed + s,
				Term:      term,
				Fault:     fc,
				WriteLoss: 0.05,
			})
			o.Chaos = append(o.Chaos, chaosResult{
				Term:        r.Term,
				Seed:        r.Seed,
				NsToTerm:    r.Latency.Nanoseconds(),
				Waves:       r.Waves,
				Messages:    r.Messages,
				WireBytes:   r.Bytes,
				AckMessages: r.AckMessages,
				AckBytes:    r.AckBytes,
				Retransmits: r.Retransmits,
				DupDropped:  r.DupDropped,
				Delayed:     r.Delayed,
				Duplicated:  r.Duplicated,
				WriteLost:   r.WriteLost,
				TablesMatch: r.TablesMatch,
			})
			fmt.Printf("%-6s seed=%d %12dns %8d bytes (%d acks, %d retransmits, %d dups dropped) tables_match=%v\n",
				term, r.Seed, r.Latency.Nanoseconds(), r.Bytes, r.AckMessages, r.Retransmits, r.DupDropped, r.TablesMatch)
		}
	}
	write(out, o)
}

// recordLive runs the BENCH_pr3 live-churn workload: one CutLink per
// transport mode, incremental re-convergence vs restart.
func recordLive(out string, nodes, runs int, shared *cliflags.Flags) {
	o := output{
		Workload: "bestpath-livechurn",
		Nodes:    nodes,
		Runs:     runs,
		KeyBits:  shared.KeyBits,
	}
	for _, m := range benchwork.Modes() {
		var agg liveResult
		agg.Mode = m.Name
		for i := 0; i < runs; i++ {
			cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
			cfg.Sequential = shared.Sequential
			cfg.Workers = shared.Workers
			cfg.EngineShards = shared.EngineShards
			m.Mut(&cfg)
			r := benchwork.LiveCutLink(fatal, cfg, nodes, shared.KeyBits, int64(3000+i))
			agg.CutLinks = append(agg.CutLinks, r.CutFrom+"->"+r.CutTo)
			agg.LiveRounds += r.LiveRounds
			agg.LiveBytes += r.LiveBytes
			agg.Retracted += r.Retracted
			agg.RestartRounds += r.RestartRounds
			agg.RestartBytes += r.RestartBytes
		}
		k := int64(runs)
		agg.LiveRounds /= runs
		agg.LiveBytes /= k
		agg.Retracted /= k
		agg.RestartRounds /= runs
		agg.RestartBytes /= k
		if agg.LiveBytes > 0 {
			agg.BytesRatio = float64(agg.RestartBytes) / float64(agg.LiveBytes)
		}
		o.Live = append(o.Live, agg)
		fmt.Printf("%-22s cut %-18s live %2d rounds %8d bytes | restart %2d rounds %8d bytes (%.1fx)\n",
			agg.Mode, strings.Join(agg.CutLinks, ","), agg.LiveRounds, agg.LiveBytes, agg.RestartRounds, agg.RestartBytes, agg.BytesRatio)
	}
	write(out, o)
}

func write(path string, o output) {
	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"benchjson:"}, args...)...)
	os.Exit(1)
}
