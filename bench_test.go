// Benchmarks regenerating the paper's evaluation artifacts (§6):
//
//   - BenchmarkFig3* — query completion time for the Best-Path query under
//     the three variants (Figure 3); ns/op is the completion time, and
//     derivations/op shows the work performed.
//   - BenchmarkFig4* — the same runs reporting bandwidth (Figure 4) as
//     wire_MB/op and messages/op.
//   - BenchmarkAblation* — the design-space ablations called out in
//     DESIGN.md: the says-implementation spectrum (§2.2), the provenance
//     modes (§4.1/§4.4), store sampling (§5).
//   - BenchmarkProvQuery* / BenchmarkMoonwalk — querying cost: local vs
//     distributed provenance, full traceback vs random moonwalk (§5).
//
// The full-scale sweep (N to 100, 10-run averages) is cmd/bestpath; these
// benches use smaller N so `go test -bench=.` stays minutes-scale.
package provnet_test

import (
	"fmt"
	"math/rand"
	"testing"

	"provnet"
	"provnet/internal/auth"
	"provnet/internal/benchwork"
	"provnet/internal/core"
	"provnet/internal/data"
	"provnet/internal/provenance"
	"provnet/internal/topo"
)

var benchSizes = []int{10, 20}

func buildNet(b *testing.B, cfg provnet.Config, n int, seed int64) *provnet.Network {
	b.Helper()
	g := provnet.RandomGraph(provnet.TopoOptions{N: n, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
	cfg.Graph = g
	cfg.Seed = seed
	if cfg.KeyBits == 0 {
		// 1024-bit keys match the paper's 2008 OpenSSL setup and keep
		// deterministic key generation benchmark-friendly.
		cfg.KeyBits = 1024
	}
	net, err := provnet.NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// benchVariant runs Best-Path to fixpoint once per iteration, with
// network construction (including key generation) excluded from the
// timing, mirroring the paper's measurement of query completion time.
func benchVariant(b *testing.B, v provnet.Variant, n int, reportBandwidth bool) {
	b.Helper()
	var totalBytes, totalMsgs, totalDerivs int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := buildNet(b, provnet.VariantConfig(v, provnet.BestPath), n, int64(n*100+i))
		b.StartTimer()
		rep, err := net.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		totalBytes += rep.Bytes
		totalMsgs += rep.Messages
		totalDerivs += rep.Derivations
	}
	if reportBandwidth {
		b.ReportMetric(float64(totalBytes)/float64(b.N)/(1<<20), "wire_MB/op")
		b.ReportMetric(float64(totalMsgs)/float64(b.N), "messages/op")
	} else {
		b.ReportMetric(float64(totalDerivs)/float64(b.N), "derivations/op")
	}
}

// BenchmarkFig3 regenerates Figure 3: query completion time vs N for the
// three variants.
func BenchmarkFig3(b *testing.B) {
	for _, v := range []provnet.Variant{provnet.VariantNDlog, provnet.VariantSeNDlog, provnet.VariantSeNDlogProv} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", v, n), func(b *testing.B) {
				benchVariant(b, v, n, false)
			})
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: bandwidth vs N for the three
// variants (read wire_MB/op).
func BenchmarkFig4(b *testing.B) {
	for _, v := range []provnet.Variant{provnet.VariantNDlog, provnet.VariantSeNDlog, provnet.VariantSeNDlogProv} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", v, n), func(b *testing.B) {
				benchVariant(b, v, n, true)
			})
		}
	}
}

// BenchmarkParallelRounds measures the worker-pool round scheduler
// against the sequential baseline on the signature-heavy SeNDlogProv
// configuration, where per-round RSA signing and verification dominate
// and parallelizing across nodes pays off. Both schedules produce
// identical tables, rounds, and transport stats (see
// internal/core.TestParallelMatchesSequential); only wall-clock differs.
func BenchmarkParallelRounds(b *testing.B) {
	schedules := []struct {
		name       string
		sequential bool
	}{
		{"sequential", true},
		{"parallel", false},
	}
	for _, s := range schedules {
		for _, n := range []int{10, 20} {
			b.Run(fmt.Sprintf("%s/N=%d", s.name, n), func(b *testing.B) {
				var totalDerivs int64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := provnet.VariantConfig(provnet.VariantSeNDlogProv, provnet.BestPath)
					cfg.Sequential = s.sequential
					net := buildNet(b, cfg, n, int64(n*100+i))
					b.StartTimer()
					rep, err := net.Run(0)
					if err != nil {
						b.Fatal(err)
					}
					totalDerivs += rep.Derivations
				}
				b.ReportMetric(float64(totalDerivs)/float64(b.N), "derivations/op")
			})
		}
	}
}

// BenchmarkFig4Batching compares the two wire formats on the Figure 4
// bandwidth metric: batched envelopes (one signature and one framing
// charge per (src,dst) pair per round) vs the seed's one-envelope-per-
// tuple format. Read wire_MB/op and messages/op.
func BenchmarkFig4Batching(b *testing.B) {
	formats := []struct {
		name      string
		unbatched bool
	}{
		{"batched", false},
		{"unbatched", true},
	}
	for _, f := range formats {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", f.name, n), func(b *testing.B) {
				var totalBytes, totalMsgs int64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := provnet.VariantConfig(provnet.VariantSeNDlogProv, provnet.BestPath)
					cfg.Unbatched = f.unbatched
					net := buildNet(b, cfg, n, int64(n*100+i))
					b.StartTimer()
					rep, err := net.Run(0)
					if err != nil {
						b.Fatal(err)
					}
					totalBytes += rep.Bytes
					totalMsgs += rep.Messages
				}
				b.ReportMetric(float64(totalBytes)/float64(b.N)/(1<<20), "wire_MB/op")
				b.ReportMetric(float64(totalMsgs)/float64(b.N), "messages/op")
			})
		}
	}
}

// BenchmarkSessionAuth compares the transport-security stack's cost
// models on the §6 Best-Path workload under churn (20-node topology,
// initial convergence + route-refresh cycles re-converging over the
// established sessions; see internal/benchwork): per-tuple RSA (the
// paper's scheme), per-batch RSA (PR 1's amortization), and the session
// transport (one RSA handshake per link, HMAC per envelope) with and
// without pipelined crypto. Read signatures/op — the session stack pays
// RSA only at handshake time, so over the link lifetime it does ≥10×
// fewer signature operations than even per-batch RSA — plus macs/op and
// wire_MB/op.
func BenchmarkSessionAuth(b *testing.B) {
	for _, m := range benchwork.Modes() {
		b.Run(m.Name, func(b *testing.B) {
			var totalSigs, totalMACs, totalBytes, totalHS int64
			for i := 0; i < b.N; i++ {
				cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
				m.Mut(&cfg)
				rep := benchwork.BestPathChurn(b.Fatal, cfg, 20, benchwork.DefaultCycles, 1024, int64(2000+i))
				totalSigs += rep.Signed
				totalMACs += rep.SealedMAC
				totalBytes += rep.Bytes
				totalHS += rep.HandshakeBytes
			}
			b.ReportMetric(float64(totalSigs)/float64(b.N), "signatures/op")
			b.ReportMetric(float64(totalMACs)/float64(b.N), "macs/op")
			b.ReportMetric(float64(totalBytes)/float64(b.N)/(1<<20), "wire_MB/op")
			b.ReportMetric(float64(totalHS)/float64(b.N)/(1<<10), "handshake_KB/op")
		})
	}
}

// BenchmarkLiveCutLink measures the live-network lifecycle under link
// churn: one CutLink through the driver, incremental re-convergence vs
// a full restart on the cut topology (the BENCH_pr3.json workload).
func BenchmarkLiveCutLink(b *testing.B) {
	for _, m := range benchwork.Modes() {
		b.Run(m.Name, func(b *testing.B) {
			var liveBytes, restartBytes int64
			var liveRounds, restartRounds int
			for i := 0; i < b.N; i++ {
				cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
				m.Mut(&cfg)
				r := benchwork.LiveCutLink(b.Fatal, cfg, 16, 1024, int64(3000+i))
				liveBytes += r.LiveBytes
				restartBytes += r.RestartBytes
				liveRounds += r.LiveRounds
				restartRounds += r.RestartRounds
			}
			b.ReportMetric(float64(liveBytes)/float64(b.N)/(1<<10), "live_KB/op")
			b.ReportMetric(float64(restartBytes)/float64(b.N)/(1<<10), "restart_KB/op")
			b.ReportMetric(float64(liveRounds)/float64(b.N), "live_rounds/op")
			b.ReportMetric(float64(restartRounds)/float64(b.N), "restart_rounds/op")
		})
	}
}

// BenchmarkLiveBestPathChurn drives the BestPathChurn refresh schedule
// through the live driver (SetLink deltas absorbed incrementally)
// instead of refresh-and-rerun — the lifecycle API's continuous-update
// shape on the same workload BenchmarkSessionAuth measures.
func BenchmarkLiveBestPathChurn(b *testing.B) {
	var retracted, bytes int64
	for i := 0; i < b.N; i++ {
		cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
		cfg.SessionAuth = true
		rep := benchwork.LiveBestPathChurn(b.Fatal, cfg, 12, 4, 1024, int64(4000+i))
		retracted += rep.Retracted
		bytes += rep.Bytes
	}
	b.ReportMetric(float64(retracted)/float64(b.N), "retracted/op")
	b.ReportMetric(float64(bytes)/float64(b.N)/(1<<20), "wire_MB/op")
}

// BenchmarkAblationSays compares the says-implementation spectrum of
// §2.2: cleartext header, HMAC, RSA.
func BenchmarkAblationSays(b *testing.B) {
	schemes := []struct {
		name   string
		scheme provnet.AuthScheme
	}{
		{"none", auth.SchemeNone},
		{"hmac", auth.SchemeHMAC},
		{"rsa", auth.SchemeRSA},
	}
	for _, s := range schemes {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := provnet.Config{Source: provnet.BestPath, Auth: s.scheme}
				net := buildNet(b, cfg, 15, int64(i))
				b.StartTimer()
				if _, err := net.Run(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProvMode compares the provenance taxonomy modes
// (§4.1/§4.4) with authentication off, isolating provenance cost.
func BenchmarkAblationProvMode(b *testing.B) {
	modes := []provnet.ProvMode{provenance.ModeNone, provenance.ModeLocal, provenance.ModeDistributed, provenance.ModeCondensed}
	for _, m := range modes {
		b.Run(m.String(), func(b *testing.B) {
			var totalBytes int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := provnet.Config{Source: provnet.BestPath, Prov: m}
				net := buildNet(b, cfg, 15, int64(i))
				b.StartTimer()
				rep, err := net.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				totalBytes += rep.Bytes
			}
			b.ReportMetric(float64(totalBytes)/float64(b.N)/(1<<20), "wire_MB/op")
		})
	}
}

// BenchmarkAblationSampling measures how store sampling (§5) cuts
// distributed-provenance storage.
func BenchmarkAblationSampling(b *testing.B) {
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("every=%d", k), func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := provnet.Config{Source: provnet.BestPath, Prov: provenance.ModeDistributed, SampleEvery: k}
				net := buildNet(b, cfg, 15, int64(i))
				b.StartTimer()
				if _, err := net.Run(0); err != nil {
					b.Fatal(err)
				}
				for _, name := range net.Nodes() {
					entries += int64(net.Node(name).Store.OnlineCount())
				}
			}
			b.ReportMetric(float64(entries)/float64(b.N), "store_entries/op")
		})
	}
}

// queryFixture builds one network with the given provenance mode and
// returns a stored reachable tuple to query.
func queryFixture(b *testing.B, mode provnet.ProvMode) (*provnet.Network, provnet.Tuple) {
	b.Helper()
	g := topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, Seed: 5})
	net, err := provnet.NewNetwork(provnet.Config{
		Source: core.ReachableNDlog, Graph: g, LinkNoCost: true, Prov: mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Run(0); err != nil {
		b.Fatal(err)
	}
	src := g.Nodes[0]
	ts := net.Tuples(src, "reachable")
	if len(ts) == 0 {
		b.Fatal("no reachable tuples")
	}
	// Pick the last (typically deepest) tuple.
	return net, ts[len(ts)-1]
}

// BenchmarkProvQueryLocal reads provenance shipped with the tuple (§4.1:
// "provenance querying is cheap").
func BenchmarkProvQueryLocal(b *testing.B) {
	net, target := queryFixture(b, provenance.ModeLocal)
	src := net.Nodes()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.DerivationTree(src, target, provnet.ProvQueryOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvQueryDistributed reconstructs provenance with the
// distributed traceback (§4.1: "expensive cost of querying").
func BenchmarkProvQueryDistributed(b *testing.B) {
	net, target := queryFixture(b, provenance.ModeDistributed)
	src := net.Nodes()[0]
	var msgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := net.DerivationTree(src, target, provnet.ProvQueryOpts{})
		if err != nil {
			b.Fatal(err)
		}
		msgs += int64(stats.Messages)
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "query_messages/op")
}

// BenchmarkMoonwalk samples a single backward path (§5) instead of the
// full reconstruction.
func BenchmarkMoonwalk(b *testing.B) {
	net, target := queryFixture(b, provenance.ModeDistributed)
	src := net.Nodes()[0]
	rng := rand.New(rand.NewSource(1))
	var msgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := net.DerivationTree(src, target, provnet.ProvQueryOpts{Moonwalk: true, Rng: rng})
		if err != nil {
			b.Fatal(err)
		}
		msgs += int64(stats.Messages)
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "query_messages/op")
}

// BenchmarkEnvelopeEncode measures the wire layer with RSA signing (the
// per-tuple cost the paper attributes to authenticated communication).
func BenchmarkEnvelopeEncode(b *testing.B) {
	dir := auth.NewDeterministicDirectory(1)
	dir.SetKeyBits(1024) // the paper's key size
	if err := dir.AddPrincipal("a", 1); err != nil {
		b.Fatal(err)
	}
	sealer := auth.SignerSealer{S: auth.NewRSASigner(dir)}
	tu := data.NewTuple("path", data.Str("a"), data.Str("c"), data.Strings("a", "b", "c"), data.Int(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := &core.Envelope{From: "a", Tuple: tu, Scheme: auth.SchemeRSA}
		if _, err := env.Encode(sealer, "b"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedEval measures intra-node delta-queue sharding
// (Config.EngineShards) on the wide fan-in workload, where one hub
// node's rule evaluation — a large delta wave self-joined against
// itself — dominates and the transport layer is negligible. Tables,
// stats, and export order are bit-identical across shard counts (see
// internal/core.TestShardedMatchesSerial); eval_ms/op is the run-to-
// fixpoint time excluding network construction. The wall-clock win
// needs multicore hardware, like the node-level scheduler's.
func BenchmarkShardedEval(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("engineshards=%d", shards), func(b *testing.B) {
			var evalNs, derivs int64
			for i := 0; i < b.N; i++ {
				cfg := provnet.Config{EngineShards: shards}
				rep := benchwork.ShardedFanIn(b.Fatal, cfg, 8, 64, 6, int64(5000+i))
				evalNs += rep.CompletionTime.Nanoseconds()
				derivs += rep.Derivations
			}
			b.ReportMetric(float64(evalNs)/float64(b.N)/1e6, "eval_ms/op")
			b.ReportMetric(float64(derivs)/float64(b.N), "derivations/op")
		})
	}
}
