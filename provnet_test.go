package provnet_test

import (
	"testing"

	"provnet"
	"provnet/internal/benchwork"
)

// TestPublicAPIQuickstart exercises the re-exported surface end to end,
// mirroring the README quickstart.
func TestPublicAPIQuickstart(t *testing.T) {
	g := provnet.CustomGraph([]provnet.GraphLink{
		{From: "a", To: "b", Cost: 1},
		{From: "a", To: "c", Cost: 1},
		{From: "b", To: "c", Cost: 1},
	})
	cfg := provnet.Config{
		Source:     provnet.ReachableNDlog,
		Graph:      g,
		LinkNoCost: true,
		Prov:       provnet.ProvLocal,
	}
	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages == 0 {
		t.Error("expected traffic")
	}
	reach := n.Tuples("a", "reachable")
	if len(reach) != 2 {
		t.Fatalf("reachable = %v", reach)
	}
	target := provnet.NewTuple("reachable", provnet.Str("a"), provnet.Str("c"))
	tree, _, err := n.DerivationTree("a", target, provnet.ProvQueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() < 3 {
		t.Errorf("tree too small:\n%s", tree.Render(nil))
	}
}

func TestPublicAPIVariantPreset(t *testing.T) {
	g := provnet.RandomGraph(provnet.TopoOptions{N: 6, AvgOutDegree: 3, MaxCost: 5, Seed: 2})
	cfg := provnet.VariantConfig(provnet.VariantSeNDlogProv, provnet.BestPath)
	cfg.Graph = g
	cfg.KeyBits = 512
	n, err := provnet.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Signed == 0 {
		t.Error("SeNDlogProv signs every message")
	}
	best := n.Tuples(g.Nodes[0], "bestPath")
	if len(best) == 0 {
		t.Fatal("no best paths")
	}
	if expr := n.CondensedExpr(g.Nodes[0], best[0]); expr == "" {
		t.Error("condensed provenance missing")
	}
}

func TestPublicAPITrustGate(t *testing.T) {
	levels := provnet.TrustLevelMap(map[string]int64{"a": 2, "b": 1})
	gate := provnet.NewTrustGate(provnet.MinLevelPolicy{Threshold: 2}, levels, 10)
	p, err := provnet.ParseProgram(provnet.ReachableSeNDlog)
	if err != nil || len(p.Rules) != 3 {
		t.Fatalf("parse: %v", err)
	}
	_ = gate
}

// TestSessionAuthAmortizesSignatures pins the PR's acceptance bar on the
// benchmark workload: on the 20-node Best-Path churn run, the session
// transport performs at least 10x fewer signature operations than
// per-batch RSA (and therefore vastly fewer than the paper's per-tuple
// scheme), while shipping the same fixpoint traffic.
func TestSessionAuthAmortizesSignatures(t *testing.T) {
	rsa := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
	repRSA := benchwork.BestPathChurn(t.Fatal, rsa, 20, benchwork.DefaultCycles, 1024, 2000)

	session := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
	session.SessionAuth = true
	repS := benchwork.BestPathChurn(t.Fatal, session, 20, benchwork.DefaultCycles, 1024, 2000)

	if repS.Signed == 0 || repRSA.Signed < 10*repS.Signed {
		t.Errorf("signature ops: session %d vs per-batch RSA %d, want >= 10x reduction",
			repS.Signed, repRSA.Signed)
	}
	if repS.SealedMAC != repRSA.Signed {
		t.Errorf("session MACs = %d, want one per former batch signature (%d)",
			repS.SealedMAC, repRSA.Signed)
	}
}

// TestLiveChurnBeatsRestart pins the BENCH_pr3.json claim on the shared
// benchwork workload: after a single CutLink, incremental re-convergence
// through the live driver costs strictly fewer transport bytes than a
// full restart on every seed, and fewer scheduler rounds in aggregate
// (CI records the same workload, n=16 over seeds 3000..3002, as the
// BENCH_pr3.json artifact).
func TestLiveChurnBeatsRestart(t *testing.T) {
	totalLive, totalRestart := 0, 0
	for seed := int64(3000); seed < 3003; seed++ {
		cfg := provnet.VariantConfig(provnet.VariantSeNDlog, provnet.BestPath)
		r := benchwork.LiveCutLink(t.Fatal, cfg, 16, 512, seed)
		t.Logf("seed %d: cut %s->%s live %d rounds / %d bytes, restart %d rounds / %d bytes",
			seed, r.CutFrom, r.CutTo, r.LiveRounds, r.LiveBytes, r.RestartRounds, r.RestartBytes)
		if r.LiveBytes >= r.RestartBytes {
			t.Errorf("seed %d: live bytes %d not below restart bytes %d", seed, r.LiveBytes, r.RestartBytes)
		}
		if r.Retracted == 0 {
			t.Errorf("seed %d: cut retracted nothing", seed)
		}
		totalLive += r.LiveRounds
		totalRestart += r.RestartRounds
	}
	if totalLive >= totalRestart {
		t.Errorf("live rounds %d not below restart rounds %d in aggregate", totalLive, totalRestart)
	}
}
