# Targets mirror .github/workflows/ci.yml: `make ci` is exactly what CI runs.

GO ?= go

.PHONY: all build fmt fmt-check vet test race bench bench-smoke bench-json fuzz examples ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (minutes-scale); see bench_test.go for the figure map.
bench:
	$(GO) test -run '^$$' -bench . ./...

# One iteration per benchmark: checks the harness wiring, not the numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Transport-security benchmark matrix plus the live-churn workload,
# recorded as CI artifacts.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr2.json
	$(GO) run ./cmd/benchjson -live -n 16 -runs 3 -out BENCH_pr3.json

# Wire-decoder fuzzing (v1-v4 + handshake frames), same budget as CI.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeEnvelope -fuzztime 30s ./internal/core

# Format/vet gate over examples/ plus the documented quickstart as a
# smoke test, so the entry point can't silently rot.
examples:
	@out=$$(gofmt -l examples); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./examples/...
	$(GO) run ./examples/quickstart

ci: fmt-check vet build race fuzz examples bench-smoke bench-json
