# Targets mirror .github/workflows/ci.yml: `make ci` is exactly what CI runs.

GO ?= go

.PHONY: all build fmt fmt-check vet staticcheck lint test race bench bench-smoke bench-json benchgate benchgate-record benchgate-record-metrics api-smoke fuzz examples docs chaos ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck needs network access on first run (module download); CI
# pins the same version. STATICCHECK overrides the binary, e.g. a
# pre-installed one on an offline box.
STATICCHECK ?= $(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1

staticcheck:
	$(STATICCHECK) ./...

# provlint: the repo's own analyzer suite (cmd/provlint). Enforces the
# determinism, layering, and hot-path invariants documented in
# docs/LINTING.md; suppress a finding at a contract site with
# `//provlint:allow <check> <reason>`.
lint:
	$(GO) run ./cmd/provlint

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# Full benchmark run (minutes-scale); see bench_test.go for the figure map.
bench:
	$(GO) test -run '^$$' -bench . ./...

# One iteration per benchmark: checks the harness wiring, not the numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Transport-security benchmark matrix, the live-churn workload, the
# intra-node sharding sweep, and the concurrent-query load, recorded as
# CI artifacts.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr2.json
	$(GO) run ./cmd/benchjson -live -n 16 -runs 3 -out BENCH_pr3.json
	$(GO) run ./cmd/benchjson -shard -n 8 -runs 3 -out BENCH_pr4.json
	$(GO) run ./cmd/benchjson -queryload -out BENCH_pr6.json

# Hot-path perf regression gate: rerun the fan-in and churn windows
# and compare against the checked-in BENCH_pr7.json baseline. The
# allocation bound is tight (allocs/op is near-deterministic); the
# wall-clock bound is generous (hardware varies). benchgate-record
# refreshes the baseline on the current machine.
benchgate:
	$(GO) run ./cmd/benchgate -baseline BENCH_pr7.json

benchgate-record:
	$(GO) run ./cmd/benchgate -record -out BENCH_pr7.json

# Same workload with -metrics: BENCH_pr8.json is the enabled-
# instrumentation reference next to the metrics-off baseline.
benchgate-record-metrics:
	$(GO) run ./cmd/benchgate -metrics -record -out BENCH_pr8.json

# The CI api-smoke job: serve the query API from cmd/provnet (with
# -metrics and a store), query a traceback over HTTP, diff against the
# committed golden fixture, then scrape /metrics and /v1/debug/rounds.
api-smoke:
	$(GO) build -o /tmp/provnet-smoke ./cmd/provnet
	@rm -rf /tmp/provnet-smoke-store; \
	/tmp/provnet-smoke -program cmd/provnet/testdata/reachable.ndl \
		-topo line:3 -nocost -prov distributed -sequential \
		-metrics -store /tmp/provnet-smoke-store \
		-http 127.0.0.1:18080 > /tmp/provnet-smoke.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18080/v1/bestpath > /dev/null && break; sleep 0.2; \
	done; \
	curl -sf 'http://127.0.0.1:18080/v1/traceback?node=n0&tuple=reachable%28n0%2C%20n2%29' > /tmp/provnet-smoke-got.json; \
	status=$$?; \
	if [ $$status -eq 0 ]; then \
		curl -sf http://127.0.0.1:18080/metrics > /tmp/provnet-smoke-metrics.txt && \
		for series in provnet_scheduler_rounds_total provnet_engine_firings_total \
			provnet_transport_messages_total provnet_store_flush_seconds_count \
			provnet_http_requests_total; do \
			grep -q "^$$series" /tmp/provnet-smoke-metrics.txt || { echo "missing series $$series" >&2; status=1; break; }; \
		done; \
		curl -sf http://127.0.0.1:18080/v1/debug/rounds | grep -q '"v": 1' || status=1; \
	fi; \
	kill $$pid 2>/dev/null; \
	[ $$status -eq 0 ] && diff cmd/provnet/testdata/traceback_golden.json /tmp/provnet-smoke-got.json

# The CI chaos job: the fault-injection convergence suite under the
# race detector (faultnet schedules, ack/retransmit reliability,
# termination soundness, the SIGKILL/cold-restart reconvergence pin —
# each sweeping faultnet seeds 1-3), an ack-path fuzz burst, and the
# chaos benchmark cell comparing the credit detector against the idle
# heuristic under seeded frame loss (BENCH_pr10.json).
chaos:
	$(GO) test -race -shuffle=on ./internal/faultnet ./internal/nettcp
	$(GO) test -race -shuffle=on -run 'TestTermination|TestIdleHeuristicFalseFixpoint|TestResupplyReplaysExports' ./internal/core
	$(GO) test -race -timeout 15m -run 'TestCrashRestartReconverges|TestMultiprocessMatchesSingleProcess' ./cmd/provnet
	$(GO) test -run '^$$' -fuzz FuzzAckRetransmit -fuzztime 30s ./internal/nettcp
	$(GO) run ./cmd/benchjson -chaos -n 10 -out BENCH_pr10.json

# Wire-decoder fuzzing (v1-v4 + handshake frames), same budget as CI.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeEnvelope -fuzztime 30s ./internal/core

# Format/vet gate over examples/ plus the documented quickstart as a
# smoke test, so the entry point can't silently rot.
examples:
	@out=$$(gofmt -l examples); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./examples/...
	$(GO) run ./examples/quickstart

# The CI docs job: markdown link check over README/ROADMAP/docs, build
# of every example (multiprocess included), and the multiprocess smoke.
docs:
	$(GO) test -run TestDocLinks .
	$(GO) build ./examples/...
	$(GO) run ./examples/multiprocess

ci: fmt-check vet staticcheck lint build race fuzz examples docs bench-smoke bench-json chaos benchgate api-smoke
