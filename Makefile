# Targets mirror .github/workflows/ci.yml: `make ci` is exactly what CI runs.

GO ?= go

.PHONY: all build fmt fmt-check vet test race bench bench-smoke bench-json examples ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (minutes-scale); see bench_test.go for the figure map.
bench:
	$(GO) test -run '^$$' -bench . ./...

# One iteration per benchmark: checks the harness wiring, not the numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Transport-security benchmark matrix, recorded as a CI artifact.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pr2.json

# Format/vet gate over examples/ plus the documented quickstart as a
# smoke test, so the entry point can't silently rot.
examples:
	@out=$$(gofmt -l examples); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./examples/...
	$(GO) run ./examples/quickstart

ci: fmt-check vet build race examples bench-smoke bench-json
