package provnet_test

import (
	"os"
	"testing"
)

// TestMain lifts crypto/rsa's 1024-bit minimum for the integration tests
// and benchmarks in this package, which use 512- and 1024-bit keys: small
// deterministic keys keep test runs fast, and 1024-bit keys match the
// paper's 2008 evaluation setup.
func TestMain(m *testing.M) {
	os.Setenv("GODEBUG", "rsa1024min=0")
	os.Exit(m.Run())
}
