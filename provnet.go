// Package provnet is a Go implementation of "Provenance-aware Secure
// Networks" (Zhou, Cronin, Loo — ICDE 2008 workshops): a declarative
// networking system (NDlog / SeNDlog) with authenticated communication and
// network provenance.
//
// A network is assembled from an NDlog or SeNDlog program, a topology, an
// authentication scheme for the "says" operator (none, HMAC, or per-tuple
// RSA signatures), and a provenance mode from the paper's taxonomy (none,
// local derivation trees, distributed pointers, or condensed BDD-encoded
// semiring provenance). Config.SessionAuth additionally switches the
// transport to session authentication: one RSA handshake per (src,dst)
// link establishes a session key and every subsequent envelope is sealed
// with a cheap per-link HMAC (rotating every Config.RekeyRounds rounds),
// amortizing the hostile-world signature cost; Config.PipelinedCrypto
// overlaps that sealing/verification work with rule evaluation, and
// Config.EngineShards shards each node's delta queue across intra-node
// eval workers (bit-identical results at any shard count). Running
// the network executes the program as a distributed stream computation to
// a fixpoint, after which results and provenance can be queried:
//
//	g := provnet.RandomGraph(provnet.TopoOptions{N: 20, AvgOutDegree: 3, MaxCost: 10, Seed: 1})
//	cfg := provnet.VariantConfig(provnet.VariantSeNDlogProv, provnet.BestPath)
//	cfg.Graph = g
//	n, err := provnet.NewNetwork(cfg)
//	...
//	report, err := n.Run(0)
//	best := n.Tuples("n0", "bestPath")
//	expr := n.CondensedExpr("n0", best[0]) // e.g. "<n0*n3>"
//
// Run is the one-shot batch surface. Long-running deployments use the
// lifecycle Driver instead: Start launches a background pump, runtime
// mutations (Inject, SetLink, CutLink, Retract) feed the running engines
// and re-converge incrementally — a cut link withdraws every best path
// derived from it, across nodes, without a restart — and Subscribe
// streams table updates as they happen. All blocking calls honor context
// cancellation mid-round:
//
//	d := n.Driver()
//	if err := d.Start(ctx); err != nil { ... }
//	sub, _ := d.Subscribe("n0", "bestPath")
//	go func() {
//		for u := range sub.Updates() {
//			fmt.Println(u.Node, u.Tuple, u.Added) // Added=false: withdrawn
//		}
//	}()
//	_, _ = d.AwaitQuiescence(ctx)            // initial convergence
//	_ = d.CutLink("n3", "n7")                // live churn
//	rep, _ := d.AwaitQuiescence(ctx)         // incremental re-convergence
//	_ = d.Close()
//
// Run(maxRounds) is a thin synchronous wrapper over the same driver, so
// batch results are bit-identical to the pre-driver behavior under every
// scheduler and transport knob.
//
// Everything above runs in one process over the in-memory transport by
// default. Setting Config.Transport to an internal/nettcp transport and
// Config.LocalNodes to the node(s) this process hosts turns the same
// program into one member of a multi-process deployment over real TCP
// (every process needs the same program, topology, and Seed); see
// docs/ARCHITECTURE.md, the -listen/-self/-peers flags on cmd/provnet,
// and examples/multiprocess.
//
// The package re-exports the supported surface of the internal packages;
// see README.md and docs/ for an architectural overview (including the
// byte-level wire specification in docs/WIRE.md) and the examples
// directory for complete programs.
package provnet

import (
	"provnet/internal/auth"
	"provnet/internal/core"
	"provnet/internal/data"
	"provnet/internal/datalog"
	"provnet/internal/provenance"
	"provnet/internal/semiring"
	"provnet/internal/topo"
	"provnet/internal/trust"
)

// Core network assembly and execution.
type (
	// Config assembles a network; see core.Config.
	Config = core.Config
	// Network is a running provenance-aware secure network.
	Network = core.Network
	// Node bundles one node's engine, tracker and store.
	Node = core.Node
	// Report summarizes one run (completion time, bandwidth, signatures).
	Report = core.Report
	// Variant names the paper's three evaluated configurations.
	Variant = core.Variant
	// Envelope is the signed wire unit.
	Envelope = core.Envelope

	// Driver is the live-network lifecycle surface: Start/Step/
	// AwaitQuiescence/Close, runtime mutation (Inject, Retract, SetLink,
	// CutLink), and Subscribe. Obtain one with Network.Driver().
	Driver = core.Driver
	// Update is one table change streamed to a subscription.
	Update = core.Update
	// Subscription streams table updates for a (node, predicate) filter.
	Subscription = core.Subscription

	// Transport is the message substrate the scheduler runs over. The
	// default is the in-memory internal/netsim fabric; Config.Transport
	// plus Config.LocalNodes swap in internal/nettcp's TCP backend so N
	// OS processes each host one node of the same network (see
	// docs/ARCHITECTURE.md and the -listen/-self/-peers CLI flags).
	Transport = core.Transport

	// TermConfig configures the distributed termination detector; zero
	// values pick production defaults.
	TermConfig = core.TermConfig
	// TermDetector runs the credit/clean-wave termination protocol over
	// the network's node ring: obtain one with Network.StartTermination,
	// wait on Done. See docs/ARCHITECTURE.md (termination detection).
	TermDetector = core.TermDetector
)

// Lifecycle errors.
var (
	// ErrNoFixpoint is returned by Run when the round budget is exceeded.
	ErrNoFixpoint = core.ErrNoFixpoint
	// ErrDriverClosed is returned by driver operations after Close.
	ErrDriverClosed = core.ErrClosed
	// ErrDriverLive is returned by synchronous stepping while Start's
	// background pump owns the round loop.
	ErrDriverLive = core.ErrLive
)

// The paper's §6 variants.
const (
	// VariantNDlog: no authentication, no provenance.
	VariantNDlog = core.VariantNDlog
	// VariantSeNDlog: RSA-authenticated communication, no provenance.
	VariantSeNDlog = core.VariantSeNDlog
	// VariantSeNDlogProv: RSA authentication plus condensed provenance
	// shipped with every tuple.
	VariantSeNDlogProv = core.VariantSeNDlogProv
)

// Canonical programs from the paper.
const (
	// ReachableNDlog is the all-pairs reachability query of §2.1.
	ReachableNDlog = core.ReachableNDlog
	// ReachableSeNDlog is the secure variant of §2.2.
	ReachableSeNDlog = core.ReachableSeNDlog
	// BestPath is the evaluation workload of §6.
	BestPath = core.BestPath
)

// NewNetwork builds and initializes a network.
func NewNetwork(cfg Config) (*Network, error) { return core.NewNetwork(cfg) }

// VariantConfig returns the experiment configuration for a paper variant.
func VariantConfig(v Variant, source string) Config { return core.VariantConfig(v, source) }

// Data model.
type (
	// Tuple is a fact; Value a typed constant.
	Tuple = data.Tuple
	Value = data.Value
)

// Value constructors.
var (
	// Int, Str, Float, Bool wrap a Go constant as a typed Value.
	Int   = data.Int
	Str   = data.Str
	Float = data.Float
	Bool  = data.Bool
	// List builds a list value from elements; Strings from Go strings.
	List    = data.List
	Strings = data.Strings
	// NewTuple builds a tuple from a predicate and values.
	NewTuple = data.NewTuple
)

// Language.
type (
	// Program is a parsed NDlog/SeNDlog program.
	Program = datalog.Program
)

// ParseProgram parses NDlog/SeNDlog source.
func ParseProgram(src string) (*Program, error) { return datalog.Parse(src) }

// Authentication (the says operator and the transport sealers).
type (
	// AuthScheme selects the says implementation.
	AuthScheme = auth.Scheme
	// Directory holds principals, levels, and keys.
	Directory = auth.Directory
	// Sealer seals/opens envelopes on directed links (transport layer).
	Sealer = auth.Sealer
	// SessionSealer is the handshake-then-HMAC transport behind
	// Config.SessionAuth.
	SessionSealer = auth.SessionSealer
)

// Says implementations, from benign-world to hostile-world. AuthSession
// identifies the session transport (wire v3): per-link RSA handshakes
// amortized over HMAC-sealed envelopes. Config{Auth: AuthSession} is
// shorthand for Config{Auth: AuthRSA, SessionAuth: true}.
const (
	// AuthNone appends a cleartext principal header (benign world).
	AuthNone = auth.SchemeNone
	// AuthHMAC seals envelopes with shared-secret MACs.
	AuthHMAC = auth.SchemeHMAC
	// AuthRSA signs every envelope (hostile world, the paper's setup).
	AuthRSA = auth.SchemeRSA
	// AuthSession amortizes AuthRSA: one handshake per link, then HMACs.
	AuthSession = auth.SchemeSession
)

// Provenance.
type (
	// ProvMode selects the taxonomy mode.
	ProvMode = provenance.Mode
	// DerivationTree is the tree representation of Figures 1–2.
	DerivationTree = provenance.Tree
	// ProvQueryOpts configures traceback queries.
	ProvQueryOpts = provenance.QueryOpts
	// ProvQueryStats meters traceback cost.
	ProvQueryStats = provenance.QueryStats
	// ProvStore is a node's online/offline provenance store.
	ProvStore = provenance.Store
	// Poly is a provenance polynomial (N[X]) over principals.
	Poly = semiring.Poly
)

// Provenance modes (§4).
const (
	// ProvNone records nothing (the NDlog / SeNDlog baselines).
	ProvNone = provenance.ModeNone
	// ProvLocal ships the full derivation tree with every tuple.
	ProvLocal = provenance.ModeLocal
	// ProvDistributed stores per-node pointers; queries trace on demand.
	ProvDistributed = provenance.ModeDistributed
	// ProvCondensed ships BDD-condensed provenance polynomials.
	ProvCondensed = provenance.ModeCondensed
)

// Topologies.
type (
	// Graph is a directed topology with link costs.
	Graph = topo.Graph
	// GraphLink is one directed edge.
	GraphLink = topo.Link
	// TopoOptions configures random generation.
	TopoOptions = topo.Options
)

// Topology constructors.
var (
	// RandomGraph generates the paper's workload topology: strongly
	// connected, average out-degree as configured.
	RandomGraph = topo.RandomConnected
	// LineGraph chains n nodes with bidirectional unit-cost links.
	LineGraph = topo.Line
	// RingGraph is a unidirectional n-ring with unit costs.
	RingGraph = topo.Ring
	// StarGraph is hub-and-spoke with n0 as the hub.
	StarGraph = topo.Star
	// CustomGraph builds a graph from explicit links.
	CustomGraph = topo.Custom
)

// Trust management.
type (
	// TrustPolicy decides on updates from their provenance.
	TrustPolicy = trust.Policy
	// TrustDecision is a policy outcome.
	TrustDecision = trust.Decision
	// TrustGate audits an update stream against a policy.
	TrustGate = trust.Gate
	// TrustLevels maps principals to security levels.
	TrustLevels = trust.Levels
)

// Trust policies (§3, §4.5).
type (
	// MinLevelPolicy accepts updates whose provenance clears a security
	// level; KVotesPolicy needs k independent derivations.
	MinLevelPolicy = trust.MinLevel
	KVotesPolicy   = trust.KVotes
	// WhitelistPolicy / BlacklistPolicy filter by deriving principals.
	WhitelistPolicy = trust.Whitelist
	BlacklistPolicy = trust.Blacklist
	// AllPolicies / AnyPolicy combine policies conjunctively /
	// disjunctively.
	AllPolicies = trust.All
	AnyPolicy   = trust.Any
)

// NewTrustGate builds a policy gate with an audit log.
func NewTrustGate(p TrustPolicy, levels TrustLevels, limit int) *TrustGate {
	return trust.NewGate(p, levels, limit)
}

// TrustLevelMap adapts a map to TrustLevels.
var TrustLevelMap = trust.LevelMap
