package provnet

import (
	"provnet/internal/core"
	"provnet/internal/obs"
	"provnet/internal/storelog"
)

// Option configures a network built by New. Every option corresponds to
// one Config field; New(src, opts...) and NewNetwork(Config{...}) build
// identical networks, so the two surfaces are interchangeable and the
// struct remains the wire format for tools that unmarshal configs.
type Option func(*Config)

// New builds a network from NDlog/SeNDlog source and options:
//
//	n, err := provnet.New(provnet.BestPath,
//		provnet.WithGraph(g),
//		provnet.WithProv(provnet.ProvDistributed),
//		provnet.WithShards(4),
//		provnet.WithStore(store))
//
// NewNetwork is the equivalent legacy constructor taking a literal
// Config; prefer New for new code.
func New(source string, opts ...Option) (*Network, error) {
	cfg := Config{Source: source}
	for _, o := range opts {
		o(&cfg)
	}
	return core.NewNetwork(cfg)
}

// WithProgram supplies a pre-parsed program instead of source text.
func WithProgram(p *Program) Option { return func(c *Config) { c.Program = p } }

// WithGraph supplies the topology; its links become link facts.
func WithGraph(g *Graph) Option { return func(c *Config) { c.Graph = g } }

// WithLinkNoCost drops the cost column from generated link facts (for
// 2-ary link programs such as ReachableNDlog).
func WithLinkNoCost() Option { return func(c *Config) { c.LinkNoCost = true } }

// WithExtraNodes registers nodes that appear in no link or fact.
func WithExtraNodes(names ...string) Option {
	return func(c *Config) { c.ExtraNodes = append(c.ExtraNodes, names...) }
}

// WithAuth selects the says implementation for inter-node messages.
func WithAuth(s AuthScheme) Option { return func(c *Config) { c.Auth = s } }

// WithKeyBits sizes RSA keys (tests shrink this for speed).
func WithKeyBits(n int) Option { return func(c *Config) { c.KeyBits = n } }

// WithProv selects the provenance mode.
func WithProv(m ProvMode) Option { return func(c *Config) { c.Prov = m } }

// WithAuthProv signs every provenance tree node (ModeLocal only).
func WithAuthProv() Option { return func(c *Config) { c.AuthProv = true } }

// WithOffline enables the offline provenance store, keeping expired
// state up to maxAge (<0 keeps forever).
func WithOffline(maxAge float64) Option {
	return func(c *Config) { c.Offline = &maxAge }
}

// WithSampleEvery records only every k-th derivation into stores (§5).
func WithSampleEvery(k int) Option { return func(c *Config) { c.SampleEvery = k } }

// WithLevels assigns security levels to principals.
func WithLevels(levels map[string]int64) Option {
	return func(c *Config) { c.Levels = levels }
}

// WithSeed drives deterministic key generation.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithSequential runs nodes one after another within each round.
func WithSequential() Option { return func(c *Config) { c.Sequential = true } }

// WithWorkers caps the scheduler's worker goroutines per phase.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithUnbatched ships one signed envelope per exported tuple.
func WithUnbatched() Option { return func(c *Config) { c.Unbatched = true } }

// WithSessionAuth switches the transport to session security: one RSA
// handshake per link, then cheap per-envelope HMACs.
func WithSessionAuth() Option { return func(c *Config) { c.SessionAuth = true } }

// WithRekeyRounds rotates session keys every n scheduler rounds.
func WithRekeyRounds(n int) Option { return func(c *Config) { c.RekeyRounds = n } }

// WithPipelinedCrypto overlaps sealing/verification with evaluation.
func WithPipelinedCrypto() Option { return func(c *Config) { c.PipelinedCrypto = true } }

// WithShards shards each node's delta queue across n intra-node eval
// workers (Config.EngineShards); results are bit-identical at any count.
func WithShards(n int) Option { return func(c *Config) { c.EngineShards = n } }

// WithTransport overrides the message substrate, and optionally names
// the node(s) this process hosts (Config.LocalNodes) for multi-process
// deployments.
func WithTransport(t Transport, localNodes ...string) Option {
	return func(c *Config) {
		c.Transport = t
		c.LocalNodes = append(c.LocalNodes, localNodes...)
	}
}

// WithStore attaches a durability sink: every table change streams into
// s as an ordered event log, sealed and flushed at quiescence points.
// The network closes s on Network.Close.
func WithStore(s Store) Option { return func(c *Config) { c.Store = s } }

// WithMetrics attaches an observability registry (Config.Metrics): the
// network records scheduler, engine, crypto, transport, and store
// series into it, plus a bounded flight recorder of recent rounds. Nil
// (the default) disables instrumentation entirely; evaluation order and
// wire bytes are identical either way. See docs/OBSERVABILITY.md.
func WithMetrics(m *Metrics) Option { return func(c *Config) { c.Metrics = m } }

// Observability (the Config.Metrics / WithMetrics seam).
type (
	// Metrics is the dependency-free metrics registry: atomic counters,
	// gauges, and fixed-bucket histograms with a Prometheus text
	// exposition (Metrics.WritePrometheus) and a flight recorder
	// (Metrics.Flight). All instruments are nil-safe, so code holding a
	// nil registry can still chain Counter(...).Inc() as a no-op.
	Metrics = obs.Metrics
	// FlightRecord is one flight-recorder entry: per-round deltas,
	// timings, and queue depths (served as /v1/debug/rounds by the query
	// API).
	FlightRecord = obs.RoundRecord
)

// NewMetrics returns an empty metrics registry to pass to WithMetrics
// (or Config.Metrics) and scrape via Metrics.WritePrometheus — the
// query API additionally serves it at GET /metrics when present.
func NewMetrics() *Metrics { return obs.New() }

// Durable storage (the Store seam of Config.Store / WithStore).
type (
	// Store receives every table change as an ordered event stream; see
	// core.Store. MemStore is the in-memory reference implementation,
	// StoreLog the durable append-only log.
	Store = core.Store
	// StoreEvent is one table change (insert/retract/expire/annotation).
	StoreEvent = core.StoreEvent
	// StoreEventKind discriminates StoreEvent.
	StoreEventKind = core.EventKind
	// StoreState is the replayed materialization of an event stream.
	StoreState = core.StoreState
	// MemStore applies events to an in-memory StoreState (testing and
	// introspection).
	MemStore = core.MemStore
	// StoreLog is the durable append-only record log with periodic
	// snapshots and crash recovery; open one with OpenStoreLog.
	StoreLog = storelog.Log
	// StoreLogOptions tunes snapshot cadence and fsync behavior.
	StoreLogOptions = storelog.Options
	// StoreLogStats reports what crash recovery found in a log dir.
	StoreLogStats = storelog.RecoverStats
)

// Store event kinds.
const (
	// StoreInsert: a tuple entered a table (or re-entered after expiry).
	StoreInsert = core.EvInsert
	// StoreRetract: a tuple was deleted or cascaded away; the replayed
	// state moves it to the stale set (the paper's retraction-aware
	// provenance keeps tombstones queryable).
	StoreRetract = core.EvRetract
	// StoreExpire: soft-state TTL expiry removed the tuple.
	StoreExpire = core.EvExpire
	// StoreProv: a duplicate derivation changed a tuple's provenance
	// annotation without changing the table.
	StoreProv = core.EvProv
)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return core.NewMemStore() }

// OpenStoreLog opens (or creates) the durable store log in dir,
// recovering state from any existing log first.
func OpenStoreLog(dir string, opts StoreLogOptions) (*StoreLog, error) {
	return storelog.Open(dir, opts)
}

// RecoverStoreLog replays the log in dir without opening it for writing:
// the forensics/read-only path. It returns the materialized state and
// recovery statistics (snapshot use, torn bytes truncated).
func RecoverStoreLog(dir string) (*StoreState, StoreLogStats, error) {
	return storelog.Recover(dir)
}

// Snapshot-isolated reads (the HTTP query API's data plane).
type (
	// ReadView is an immutable copy-on-write snapshot of every hosted
	// node's tables, published by the Driver at quiescence points; read
	// it with Driver.ReadView. Concurrent queries against one view are
	// lock-free and can never observe a torn mix of two states.
	ReadView = core.ReadView
	// ViewRow is one tuple in a ReadView, with its condensed provenance
	// expression when the network runs ProvCondensed.
	ViewRow = core.ViewRow
)

// ParseTuple parses tuple text like "bestPath(n0, n2, [n0,n1,n2], 2)"
// or "b says path(a, b)" — the textual inverse of Tuple.String.
func ParseTuple(s string) (Tuple, error) { return core.ParseTuple(s) }
