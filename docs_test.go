package provnet

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown files whose links the docs CI job keeps
// honest: a moved or renamed target breaks the build, not the reader.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md"}
	more, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// githubAnchor approximates GitHub's heading-anchor slugs: lowercase,
// punctuation stripped, spaces to hyphens.
func githubAnchor(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf collects the heading anchors of one markdown file.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		anchors[githubAnchor(strings.TrimLeft(line, "# "))] = true
	}
	return anchors
}

// TestDocLinks is the markdown link checker the CI docs job runs: every
// relative link in README/ROADMAP/docs must point at an existing file
// (and, when it carries a #fragment, at an existing heading).
func TestDocLinks(t *testing.T) {
	for _, src := range docFiles(t) {
		raw, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			link := m[1]
			if strings.Contains(link, "://") || strings.HasPrefix(link, "mailto:") {
				continue // external; checking the web is not this test's job
			}
			target, frag, _ := strings.Cut(link, "#")
			path := src // pure-fragment links point into the same file
			if target != "" {
				path = filepath.Join(filepath.Dir(src), target)
				if _, err := os.Stat(path); err != nil {
					t.Errorf("%s: broken link %q: %v", src, link, err)
					continue
				}
			}
			if frag != "" && strings.HasSuffix(path, ".md") {
				if !anchorsOf(t, path)[frag] {
					t.Errorf("%s: link %q: no heading with anchor %q in %s", src, link, frag, path)
				}
			}
		}
	}
}
