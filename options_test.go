package provnet

import (
	"testing"

	"provnet/internal/auth"
)

// TestNewMatchesNewNetwork pins the functional-options constructor to
// the legacy Config surface: the same knobs through either door build
// networks with identical converged tables.
func TestNewMatchesNewNetwork(t *testing.T) {
	g := LineGraph(4)
	store := NewMemStore()

	cfg := Config{
		Source:       BestPath,
		Graph:        g,
		Auth:         AuthNone,
		Prov:         ProvDistributed,
		Seed:         5,
		Sequential:   true,
		EngineShards: 2,
	}
	legacy, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()

	opt, err := New(BestPath,
		WithGraph(g),
		WithAuth(AuthNone),
		WithProv(ProvDistributed),
		WithSeed(5),
		WithSequential(),
		WithShards(2),
		WithStore(store),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer opt.Close()

	if _, err := legacy.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(0); err != nil {
		t.Fatal(err)
	}
	want := legacy.Driver().ReadView().Dump()
	got := opt.Driver().ReadView().Dump()
	if want == "" || got != want {
		t.Fatalf("options-built network diverges from Config-built:\n--- legacy ---\n%s\n--- options ---\n%s", want, got)
	}
	// The attached store replayed to the same live state.
	if dump := store.State().LiveDump(); dump != want {
		t.Fatalf("WithStore replay diverges from tables:\n%s\nwant:\n%s", dump, want)
	}
}

// TestOptionsCoverConfig spot-checks that each option sets exactly its
// Config field.
func TestOptionsCoverConfig(t *testing.T) {
	var c Config
	for _, o := range []Option{
		WithLinkNoCost(), WithExtraNodes("x9"), WithKeyBits(512),
		WithAuthProv(), WithOffline(3.5), WithSampleEvery(2),
		WithLevels(map[string]int64{"a": 2}), WithWorkers(3),
		WithUnbatched(), WithSessionAuth(), WithRekeyRounds(7),
		WithPipelinedCrypto(), WithAuth(AuthHMAC),
	} {
		o(&c)
	}
	switch {
	case !c.LinkNoCost, len(c.ExtraNodes) != 1, c.KeyBits != 512,
		!c.AuthProv, c.Offline == nil || *c.Offline != 3.5, c.SampleEvery != 2,
		c.Levels["a"] != 2, c.Workers != 3, !c.Unbatched, !c.SessionAuth,
		c.RekeyRounds != 7, !c.PipelinedCrypto, c.Auth != auth.SchemeHMAC:
		t.Fatalf("option failed to set its field: %+v", c)
	}
}
