module provnet

go 1.24
