package obs

import "sync"

// DefFlightCap is the default flight-recorder capacity. 256 rounds of
// history covers several full convergences plus churn repair waves
// while keeping the ring under ~100KB.
const DefFlightCap = 256

// A RoundRecord is one scheduler step as the flight recorder saw it:
// what came in, what went out, what the engines did, and where time
// went. Counts are per-round (diffs of the cumulative counters), not
// totals. The JSON field names are the versioned wire schema served
// by /v1/debug/rounds — additive changes only.
type RoundRecord struct {
	// Seq is assigned by the recorder, strictly increasing across the
	// process lifetime (not reset by ring wraparound).
	Seq int64 `json:"seq"`
	// Kind is "round" (a forward delta round), "retract" (a DRed
	// drain/repair phase round), or "quiesce" (a quiescence decision:
	// view publish + store seal).
	Kind      string `json:"kind"`
	StartNs   int64  `json:"start_unix_ns"`
	WallNs    int64  `json:"wall_ns"`
	Waves     int64  `json:"waves"`
	DeltasIn  int64  `json:"deltas_in"`
	DeltasOut int64  `json:"deltas_out"`
	Firings   int64  `json:"firings"`
	Retracted int64  `json:"retracted"`
	SealNs    int64  `json:"seal_ns"`
	VerifyNs  int64  `json:"verify_ns"`
	// TransportPending is the transport's undelivered-message count at
	// the end of the step; PeerQueues breaks it down per peer when the
	// transport can (nettcp outbound queues).
	TransportPending int            `json:"transport_pending"`
	PeerQueues       map[string]int `json:"peer_queues,omitempty"`
	// StoreLag is the store log's queued+in-flight event count — how
	// far the durable writer trails the engines.
	StoreLag int `json:"store_lag"`
}

// Flight is a bounded ring of RoundRecords. Record is
// mutex-guarded but round-granular (called once per scheduler step,
// never per tuple), so the lock is uncontended in practice; Snapshot
// copies out under the same lock.
type Flight struct {
	mu   sync.Mutex
	buf  []RoundRecord
	next int   // index of the slot Record writes next
	n    int   // occupied slots, ≤ len(buf)
	seq  int64 // total records ever, drives RoundRecord.Seq
}

// NewFlight returns a recorder holding the last capacity records.
func NewFlight(capacity int) *Flight {
	if capacity < 1 {
		capacity = 1
	}
	return &Flight{buf: make([]RoundRecord, capacity)}
}

// Record appends r, overwriting the oldest record when full, and
// assigns r.Seq. Nil-safe.
func (f *Flight) Record(r RoundRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	r.Seq = f.seq
	f.buf[f.next] = r
	f.next = (f.next + 1) % len(f.buf)
	if f.n < len(f.buf) {
		f.n++
	}
	f.mu.Unlock()
}

// Snapshot returns the retained records oldest-first. The slice is a
// copy; callers own it. Nil-safe (returns nil).
func (f *Flight) Snapshot() []RoundRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RoundRecord, 0, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.buf)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(start+i)%len(f.buf)])
	}
	return out
}
