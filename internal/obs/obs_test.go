package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp pins the disabled-metrics contract: a nil
// registry hands out nil instruments, and every method on them is a
// safe no-op. Instrumented code relies on this instead of branching.
func TestNilRegistryIsNoOp(t *testing.T) {
	var m *Metrics
	c := m.Counter("x_total", "h")
	g := m.Gauge("x", "h")
	h := m.Histogram("x_seconds", "h", DefLatencyNanos, 1e-9)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must return nil instruments, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	g.Add(-1)
	h.Observe(42)
	m.CounterFunc("f_total", "h", func() int64 { return 1 })
	m.GaugeFunc("f", "h", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := m.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var f *Flight
	f.Record(RoundRecord{})
	if f.Snapshot() != nil {
		t.Fatal("nil flight must snapshot nil")
	}
}

// TestGetOrCreate pins that repeated lookups return the same
// instrument, so call sites may re-resolve by name instead of
// threading pointers.
func TestGetOrCreate(t *testing.T) {
	m := New()
	a := m.Counter("c_total", "h")
	b := m.Counter("c_total", "h")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared counter: got %d, want 2", b.Value())
	}
	h1 := m.LabeledHistogram("lat_seconds", "h", "endpoint", "tables", DefLatencyNanos, 1e-9)
	h2 := m.LabeledHistogram("lat_seconds", "h", "endpoint", "tables", DefLatencyNanos, 1e-9)
	h3 := m.LabeledHistogram("lat_seconds", "h", "endpoint", "bestpath", DefLatencyNanos, 1e-9)
	if h1 != h2 || h1 == h3 {
		t.Fatal("label pairs must distinguish series")
	}
}

// TestPrometheusRendering checks the exposition text: HELP/TYPE once
// per family, sorted series, cumulative histogram buckets ending in
// +Inf, and correct _sum scaling.
func TestPrometheusRendering(t *testing.T) {
	m := New()
	m.Counter("provnet_rounds_total", "rounds run").Add(3)
	m.Gauge("provnet_dep_index_size", "deps").Set(17)
	m.GaugeFunc("provnet_pending", "pending", func() int64 { return 5 })
	h := m.Histogram("provnet_round_seconds", "round wall time", []int64{1_000_000, 10_000_000}, 1e-9)
	h.Observe(500_000)    // ≤ 1ms bucket
	h.Observe(5_000_000)  // ≤ 10ms bucket
	h.Observe(50_000_000) // +Inf bucket
	for _, ep := range []string{"tables", "bestpath"} {
		m.LabeledCounter("provnet_http_requests_total", "reqs", "endpoint", ep).Inc()
	}

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	for _, want := range []string{
		"# HELP provnet_rounds_total rounds run\n# TYPE provnet_rounds_total counter\nprovnet_rounds_total 3\n",
		"# TYPE provnet_dep_index_size gauge\nprovnet_dep_index_size 17\n",
		"provnet_pending 5\n",
		`provnet_round_seconds_bucket{le="0.001"} 1` + "\n",
		`provnet_round_seconds_bucket{le="0.01"} 2` + "\n",
		`provnet_round_seconds_bucket{le="+Inf"} 3` + "\n",
		"provnet_round_seconds_sum 0.0555\n",
		"provnet_round_seconds_count 3\n",
		`provnet_http_requests_total{endpoint="bestpath"} 1` + "\n",
		`provnet_http_requests_total{endpoint="tables"} 1` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	// HELP/TYPE exactly once per family even with two labeled series.
	if n := strings.Count(got, "# TYPE provnet_http_requests_total"); n != 1 {
		t.Errorf("TYPE emitted %d times for labeled family, want 1", n)
	}
	// Labeled series sorted within the family.
	if strings.Index(got, `endpoint="bestpath"`) > strings.Index(got, `endpoint="tables"`) {
		t.Error("series not sorted by label value")
	}
}

// TestGaugeSetMax pins the high-water semantics used for arena sizes.
func TestGaugeSetMax(t *testing.T) {
	m := New()
	g := m.Gauge("hw", "h")
	g.SetMax(10)
	g.SetMax(3)
	if g.Value() != 10 {
		t.Fatalf("SetMax lowered the gauge: %d", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Fatalf("SetMax did not raise the gauge: %d", g.Value())
	}
}

// TestFlightRing pins ring wraparound: capacity bounds retention,
// Seq keeps counting, and Snapshot returns oldest-first.
func TestFlightRing(t *testing.T) {
	f := NewFlight(4)
	for i := int64(0); i < 10; i++ {
		f.Record(RoundRecord{Kind: "round", Firings: i})
	}
	recs := f.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring retained %d records, want 4", len(recs))
	}
	for i, r := range recs {
		wantSeq := int64(7 + i) // records 7..10 survive
		if r.Seq != wantSeq || r.Firings != wantSeq-1 {
			t.Fatalf("record %d: seq=%d firings=%d, want seq=%d", i, r.Seq, r.Firings, wantSeq)
		}
	}
}

// TestConcurrentUse exercises the registry under parallel writers and
// scrapers; run with -race this is the data-race gate for the whole
// package.
func TestConcurrentUse(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.Counter("c_total", "h")
			g := m.Gauge("g", "h")
			h := m.Histogram("h_seconds", "h", DefLatencyNanos, 1e-9)
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(int64(i) * 1000)
				m.Flight.Record(RoundRecord{Kind: "round"})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := m.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			m.Flight.Snapshot()
		}
	}()
	wg.Wait()
	if got := m.Counter("c_total", "h").Value(); got != 4000 {
		t.Fatalf("lost counter increments: %d, want 4000", got)
	}
	if len(m.Flight.Snapshot()) != DefFlightCap {
		t.Fatalf("flight should be full at %d", DefFlightCap)
	}
}
