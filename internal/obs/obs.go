// Package obs is provnet's dependency-free observability kit: an
// atomic metrics registry rendered in the Prometheus text exposition
// format, and a bounded flight recorder of per-round events
// (flight.go).
//
// Two properties shape the design:
//
//   - Zero cost when disabled. Every instrument method is safe on a
//     nil receiver, so instrumented code holds plain *Counter /
//     *Gauge / *Histogram fields and never branches on "is metrics
//     on" — a nil pointer *is* the no-op implementation. With
//     Config.Metrics == nil nothing is ever allocated or touched;
//     the benchgate allocation bound enforces this.
//
//   - Allocation-free on the hot path when enabled. Counter.Add,
//     Gauge.Set/SetMax, and Histogram.Observe are atomic ops on
//     pre-sized arrays; no maps, no interfaces, no boxing. All
//     formatting cost is paid at scrape time in WritePrometheus.
//
// The registry deliberately implements only what provnet needs —
// counters, gauges, scrape-time gauge/counter funcs, and fixed-bucket
// histograms with a single optional label pair — not the full
// Prometheus data model.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing int64. Methods on a nil
// receiver are no-ops, so disabled metrics cost one nil check.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n should be non-negative; the renderer does not check).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a settable int64. Nil-receiver methods are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger — high-water-mark
// semantics (arena sizes, queue peaks).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed cumulative buckets. The
// stored unit is int64 (typically nanoseconds or tuple counts); Scale
// converts to the exposition unit at render time (1e-9 turns
// nanoseconds into the conventional *_seconds). Observe is a linear
// scan over ≤ ~20 bounds plus two atomic adds — no allocation.
type Histogram struct {
	bounds  []int64 // upper bounds, ascending; +Inf implicit
	scale   float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value in the histogram's native unit.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// DefLatencyNanos is the default latency bucket ladder: 50µs to 10s,
// roughly 1-2.5-5 per decade, in nanoseconds (render with Scale 1e-9).
var DefLatencyNanos = []int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
}

// DefSizeBuckets is the default size ladder for tuple/delta counts.
var DefSizeBuckets = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// entry is one registered series: a family name plus an optional
// single label pair (the only label shape provnet needs).
type entry struct {
	family string
	lkey   string
	lval   string
	help   string
	kind   kind
	c      *Counter
	g      *Gauge
	fn     func() int64
	h      *Histogram
}

func (e *entry) sortKey() string { return e.family + "\x00" + e.lkey + "\x00" + e.lval }

// Metrics is the registry. The zero value is not usable; call New.
// A nil *Metrics is the disabled registry: every lookup returns nil,
// which every instrument treats as a no-op.
type Metrics struct {
	mu      sync.Mutex
	entries map[string]*entry

	// Flight is the round/wave flight recorder, always present on a
	// live registry so recording sites need no second nil check
	// beyond the registry itself.
	Flight *Flight
}

// FlightRecorder returns the registry's flight recorder, nil on a nil
// registry — the chained form m.FlightRecorder().Record(...) is a
// no-op when metrics are disabled, like every other instrument path.
func (m *Metrics) FlightRecorder() *Flight {
	if m == nil {
		return nil
	}
	return m.Flight
}

// New returns an empty registry with a flight recorder of the default
// capacity.
func New() *Metrics {
	return &Metrics{
		entries: make(map[string]*entry),
		Flight:  NewFlight(DefFlightCap),
	}
}

// lookup get-or-creates the entry under the registry lock; init runs
// inside the lock on first creation only, so instrument construction
// is race-free against concurrent callers of the same name.
func (m *Metrics) lookup(family, lkey, lval, help string, k kind, init func(*entry)) *entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := family + "\x00" + lkey + "\x00" + lval
	if e, ok := m.entries[key]; ok {
		return e
	}
	e := &entry{family: family, lkey: lkey, lval: lval, help: help, kind: k}
	if init != nil {
		init(e)
	}
	m.entries[key] = e
	return e
}

// Counter returns (creating on first use) the counter named family.
// On a nil registry it returns nil, the no-op counter.
func (m *Metrics) Counter(family, help string) *Counter {
	return m.LabeledCounter(family, help, "", "")
}

// LabeledCounter is Counter with a single label pair.
func (m *Metrics) LabeledCounter(family, help, lkey, lval string) *Counter {
	if m == nil {
		return nil
	}
	return m.lookup(family, lkey, lval, help, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns (creating on first use) the gauge named family.
func (m *Metrics) Gauge(family, help string) *Gauge {
	if m == nil {
		return nil
	}
	return m.lookup(family, "", "", help, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — for monotonic totals already maintained elsewhere (transport
// byte counts). Repeated registration under one name replaces fn.
func (m *Metrics) CounterFunc(family, help string, fn func() int64) {
	if m == nil {
		return
	}
	m.lookup(family, "", "", help, kindCounterFunc, func(e *entry) { e.fn = fn })
}

// GaugeFunc registers a gauge read by fn at scrape time — for
// instantaneous values owned elsewhere (queue depths, pending counts).
func (m *Metrics) GaugeFunc(family, help string, fn func() int64) {
	if m == nil {
		return
	}
	m.lookup(family, "", "", help, kindGaugeFunc, func(e *entry) { e.fn = fn })
}

// LabeledGaugeFunc is GaugeFunc with a single label pair (per-peer
// queue depths).
func (m *Metrics) LabeledGaugeFunc(family, help, lkey, lval string, fn func() int64) {
	if m == nil {
		return
	}
	m.lookup(family, lkey, lval, help, kindGaugeFunc, func(e *entry) { e.fn = fn })
}

// Histogram returns (creating on first use) a histogram with the
// given ascending upper bounds in its native unit; scale converts to
// the exposition unit at render time (use 1e-9 for nanosecond
// observations rendered as seconds, 1 for plain counts).
func (m *Metrics) Histogram(family, help string, bounds []int64, scale float64) *Histogram {
	return m.LabeledHistogram(family, help, "", "", bounds, scale)
}

// LabeledHistogram is Histogram with a single label pair.
func (m *Metrics) LabeledHistogram(family, help, lkey, lval string, bounds []int64, scale float64) *Histogram {
	if m == nil {
		return nil
	}
	return m.lookup(family, lkey, lval, help, kindHistogram, func(e *entry) {
		e.h = &Histogram{
			bounds:  bounds,
			scale:   scale,
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
	}).h
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4), sorted by name so output is
// stable. HELP/TYPE are emitted once per family.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	es := make([]*entry, 0, len(m.entries))
	for _, e := range m.entries {
		es = append(es, e)
	}
	m.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].sortKey() < es[j].sortKey() })

	lastFamily := ""
	for _, e := range es {
		if e.family != lastFamily {
			typ := "counter"
			switch e.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.family, e.help, e.family, typ); err != nil {
				return err
			}
			lastFamily = e.family
		}
		if err := e.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (e *entry) labels(extra string) string {
	switch {
	case e.lkey == "" && extra == "":
		return ""
	case e.lkey == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + e.lkey + "=" + strconv.Quote(e.lval) + "}"
	default:
		return "{" + e.lkey + "=" + strconv.Quote(e.lval) + "," + extra + "}"
	}
}

func (e *entry) write(w io.Writer) error {
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.family, e.labels(""), e.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.family, e.labels(""), e.g.Value())
		return err
	case kindCounterFunc, kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.family, e.labels(""), e.fn())
		return err
	case kindHistogram:
		h := e.h
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(float64(h.bounds[i]) * h.scale)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.family, e.labels(`le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.family, e.labels(""), formatFloat(float64(h.sum.Load())*h.scale)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", e.family, e.labels(""), h.count.Load())
		return err
	}
	return nil
}

// formatFloat renders like Prometheus clients do: shortest
// round-trippable decimal.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
