package benchwork

// The chaos termination workload behind BENCH_pr10.json: N core.Networks
// (one hosted node each, mirroring core.TestTCPMatchesNetsim) run the
// Best-Path query over loopback TCP with the reliability layer on, while
// a seeded fault schedule delays and duplicates application frames
// (internal/faultnet) and a seeded write-loss hook discards frames the
// kernel had already accepted (nettcp.Config.DropWrite — the crash-
// shaped loss the retransmit protocol recovers). The run ends through
// one of the two termination modes cmd/provnet offers, so the recorded
// cells compare the credit/clean-wave detector against the idle-window
// heuristic on latency, wire overhead, and — the column that justifies
// the default — whether the tables at declaration were actually
// complete.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"provnet"
	"provnet/internal/faultnet"
	"provnet/internal/nettcp"
)

// ChaosSpec configures one chaos termination run.
type ChaosSpec struct {
	// Nodes is the random-topology size.
	Nodes int
	// Seed seeds the topology, the per-process fault schedules, and the
	// write-loss RNGs.
	Seed int64
	// Term is the termination mode: "credit" (the clean-wave detector)
	// or "idle" (the wall-clock heuristic).
	Term string
	// IdleWindow is the idle-mode quiet window (default 250ms).
	IdleWindow time.Duration
	// Fault is the per-process application-frame schedule. Drop must be
	// zero: faultnet sits above the retransmit layer, so a drop there is
	// a genuine application loss no protocol recovers.
	Fault faultnet.Config
	// WriteLoss is the probability a written frame is discarded after
	// the kernel accepted it — the loss the retransmit path repairs.
	WriteLoss float64
}

// ChaosResult is one recorded chaos cell.
type ChaosResult struct {
	Term        string
	Seed        int64
	Latency     time.Duration // start of the live run → termination declared everywhere
	Waves       uint64        // completed detection waves (credit mode only)
	Messages    int64         // data frames on the wire, all processes
	Bytes       int64
	AckMessages int64 // reliability overhead: ack frames and bytes,
	AckBytes    int64 // retransmitted frames, suppressed duplicates
	Retransmits int64
	DupDropped  int64
	Delayed     int64 // fault-schedule activity across all processes
	Duplicated  int64
	WriteLost   int64
	TablesMatch bool // union of spCost tables equals the netsim reference
}

// ChaosTermination runs one chaos cell. cfg carries the scheduler knobs
// (Sequential, Workers, EngineShards); topology, auth, transport, and
// termination come from spec. fatal is testing.T.Fatal / benchjson
// compatible.
func ChaosTermination(fatal func(...any), cfg provnet.Config, spec ChaosSpec) ChaosResult {
	if spec.Fault.Drop != 0 {
		fatal("chaos: faultnet drop is above the retransmit layer; use WriteLoss for recoverable loss")
	}
	if spec.IdleWindow <= 0 {
		spec.IdleWindow = 250 * time.Millisecond
	}
	cfg.Source = provnet.BestPath
	cfg.Graph = provnet.RandomGraph(provnet.TopoOptions{N: spec.Nodes, AvgOutDegree: 3, MaxCost: 10, Seed: spec.Seed})
	cfg.Auth = provnet.AuthHMAC
	cfg.Seed = spec.Seed

	ref, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	if _, err := ref.Run(0); err != nil {
		fatal(err)
	}
	names := ref.Nodes()
	want := spCostUnion(ref, names)

	// One transport per simulated process: reliable nettcp on loopback,
	// seeded write loss below it, the faultnet schedule above it.
	tcps := make([]*nettcp.Transport, len(names))
	fns := make([]*faultnet.Net, len(names))
	var writeLost atomic.Int64
	for i := range names {
		rng := rand.New(rand.NewSource(spec.Seed*1000 + int64(i)))
		var mu sync.Mutex
		tcp, err := nettcp.New(nettcp.Config{
			Listen:            "127.0.0.1:0",
			Reliable:          true,
			RetransmitTimeout: 50 * time.Millisecond,
			DropWrite: func(peer string, seq uint64, ack bool) bool {
				if spec.WriteLoss == 0 {
					return false
				}
				mu.Lock()
				drop := rng.Float64() < spec.WriteLoss
				mu.Unlock()
				if drop {
					writeLost.Add(1)
				}
				return drop
			},
		})
		if err != nil {
			fatal(err)
		}
		tcps[i] = tcp
		fc := spec.Fault
		fc.Seed = spec.Seed*100 + int64(i)
		if fc.AutoReleaseEvery <= 0 {
			fc.AutoReleaseEvery = time.Millisecond
		}
		fns[i] = faultnet.New(tcp, fc)
	}
	for i := range names {
		for j := range names {
			if i != j {
				tcps[i].AddPeer(names[j], tcps[j].Addr())
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nets := make([]*provnet.Network, len(names))
	for i, name := range names {
		c := cfg
		c.Transport = fns[i]
		c.LocalNodes = []string{name}
		n, err := provnet.NewNetwork(c)
		if err != nil {
			fatal(err)
		}
		nets[i] = n
		defer n.Close()
		if err := n.Driver().Start(ctx); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res := ChaosResult{Term: spec.Term, Seed: spec.Seed}
	switch spec.Term {
	case "credit":
		tds := make([]*provnet.TermDetector, len(nets))
		for i, n := range nets {
			tds[i] = n.StartTermination(ctx, provnet.TermConfig{WaveTimeout: 500 * time.Millisecond, PollEvery: time.Millisecond})
		}
		for i, td := range tds {
			select {
			case <-td.Done():
			case <-time.After(120 * time.Second):
				fatal(fmt.Sprintf("chaos: %s never saw termination (waves %d, err %v)", names[i], td.Waves(), td.Err()))
			}
			if w := td.Waves(); w > res.Waves {
				res.Waves = w
			}
		}
	case "idle":
		var wg sync.WaitGroup
		for i := range nets {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// The cliflags -term idle loop: local quiescence plus a
				// full quiet window of this process's transport counters.
				d := nets[i].Driver()
				var last int64 = -1
				for {
					if _, err := d.AwaitQuiescence(ctx); err != nil {
						fatal(err)
						return
					}
					cur := fns[i].Stats().Messages
					if cur == last {
						return
					}
					last = cur
					time.Sleep(spec.IdleWindow)
				}
			}(i)
		}
		wg.Wait()
	default:
		fatal(fmt.Sprintf("chaos: unknown termination mode %q", spec.Term))
	}
	res.Latency = time.Since(start)

	// Let frames already released settle before reading tables, then
	// collect the run's wire and fault footprint.
	for _, n := range nets {
		if _, err := n.Driver().AwaitQuiescence(ctx); err != nil {
			fatal(err)
		}
	}
	for i := range names {
		s := tcps[i].Stats()
		res.Messages += s.Messages
		res.Bytes += s.Bytes
		res.AckMessages += s.AckMessages
		res.AckBytes += s.AckBytes
		res.Retransmits += s.Retransmits
		res.DupDropped += s.DupDropped
		fl := fns[i].Faults()
		res.Delayed += fl.Delayed
		res.Duplicated += fl.Duplicated
	}
	res.WriteLost = writeLost.Load()

	// spCost only: min-cost is delivery-order independent, while the
	// bestPath picked between equal-cost ties is keyed last-writer-wins
	// and legitimately differs under reordering.
	var got []string
	for i, name := range names {
		got = append(got, spCostLines(nets[i], name)...)
	}
	sort.Strings(got)
	res.TablesMatch = strings.Join(got, "\n") == want
	return res
}

// spCostUnion snapshots the spCost tables of names on n, sorted.
func spCostUnion(n *provnet.Network, names []string) string {
	var all []string
	for _, name := range names {
		all = append(all, spCostLines(n, name)...)
	}
	sort.Strings(all)
	return strings.Join(all, "\n")
}

func spCostLines(n *provnet.Network, name string) []string {
	var out []string
	for _, tu := range n.Tuples(name, "spCost") {
		out = append(out, name+"\t"+tu.String())
	}
	return out
}
