// Package benchwork defines the transport-security benchmark workload
// shared by BenchmarkSessionAuth, the pinned amortization test, and
// cmd/benchjson — one definition, so the CI-recorded BENCH_pr2.json
// always measures exactly what the test pins.
package benchwork

import (
	"provnet"
)

// DefaultCycles is the number of route-refresh cycles after initial
// convergence: the long-lived-link regime the session handshake
// amortizes over.
const DefaultCycles = 8

// Mode is one cell of the transport benchmark matrix.
type Mode struct {
	Name string
	Mut  func(*provnet.Config)
}

// Modes returns the matrix: the paper's per-tuple RSA, PR 1's per-batch
// RSA, and the session transport with and without pipelined crypto.
func Modes() []Mode {
	return []Mode{
		{"rsa-per-tuple", func(c *provnet.Config) { c.Unbatched = true }},
		{"rsa-per-batch", func(c *provnet.Config) {}},
		{"session-mac", func(c *provnet.Config) { c.SessionAuth = true }},
		{"session-mac-pipelined", func(c *provnet.Config) { c.SessionAuth = true; c.PipelinedCrypto = true }},
	}
}

// BestPathChurn runs the §6 Best-Path workload under churn: initial
// convergence on a random topology, then cycles refresh rounds in which
// every link cost improves below its previous value — the baseline costs
// are pre-inflated by (cycles+1) so each refresh beats the installed
// minimum and repropagates through the aggSelection(min), forcing a full
// re-convergence per cycle. The returned report carries the run's
// cumulative transport and crypto counters. fatal is called on any
// error (testing.T.Fatal / testing.B.Fatal compatible).
func BestPathChurn(fatal func(...any), cfg provnet.Config, nodes, cycles, keyBits int, seed int64) *provnet.Report {
	g := provnet.RandomGraph(provnet.TopoOptions{N: nodes, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
	scale := int64(cycles + 1)
	for i := range g.Links {
		g.Links[i].Cost *= scale
	}
	cfg.Graph = g
	cfg.Seed = seed
	cfg.KeyBits = keyBits
	net, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := net.Run(0)
	if err != nil {
		fatal(err)
	}
	for cycle := 1; cycle <= cycles; cycle++ {
		for _, l := range g.Links {
			cost := l.Cost / scale * int64(cycles+1-cycle)
			tu := provnet.NewTuple("link", provnet.Str(l.From), provnet.Str(l.To), provnet.Int(cost))
			if err := net.InsertFact(l.From, tu); err != nil {
				fatal(err)
			}
		}
		if rep, err = net.Run(0); err != nil {
			fatal(err)
		}
	}
	return rep
}
