// Package benchwork defines the benchmark workloads shared by the
// pinned tests, the Benchmark* harnesses, and cmd/benchjson — one
// definition each, so the CI-recorded BENCH_pr2.json / BENCH_pr3.json
// always measure exactly what the tests pin.
//
// Two churn workloads coexist. BestPathChurn is the PR-2 workload:
// batch-style refresh cycles (keyed link-fact replacement, then a full
// Run to the new fixpoint) — the restart-shaped dynamism the lifecycle
// API replaces. LiveCutLink and LiveBestPathChurn drive the same
// Best-Path computation through the live driver: SetLink/CutLink feed
// deltas into the running engines and the network re-converges
// incrementally, which BENCH_pr3.json compares against a full restart.
package benchwork

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"provnet"
	"provnet/internal/data"
)

// DefaultCycles is the number of route-refresh cycles after initial
// convergence: the long-lived-link regime the session handshake
// amortizes over.
const DefaultCycles = 8

// Mode is one cell of the transport benchmark matrix.
type Mode struct {
	Name string
	Mut  func(*provnet.Config)
}

// Modes returns the matrix: the paper's per-tuple RSA, PR 1's per-batch
// RSA, and the session transport with and without pipelined crypto.
func Modes() []Mode {
	return []Mode{
		{"rsa-per-tuple", func(c *provnet.Config) { c.Unbatched = true }},
		{"rsa-per-batch", func(c *provnet.Config) {}},
		{"session-mac", func(c *provnet.Config) { c.SessionAuth = true }},
		{"session-mac-pipelined", func(c *provnet.Config) { c.SessionAuth = true; c.PipelinedCrypto = true }},
	}
}

// BestPathChurn runs the §6 Best-Path workload under churn: initial
// convergence on a random topology, then cycles refresh rounds in which
// every link cost improves below its previous value — the baseline costs
// are pre-inflated by (cycles+1) so each refresh beats the installed
// minimum and repropagates through the aggSelection(min), forcing a full
// re-convergence per cycle. The returned report carries the run's
// cumulative transport and crypto counters. fatal is called on any
// error (testing.T.Fatal / testing.B.Fatal compatible).
func BestPathChurn(fatal func(...any), cfg provnet.Config, nodes, cycles, keyBits int, seed int64) *provnet.Report {
	return BestPathChurnStaged(fatal, cfg, nodes, cycles, keyBits, seed)()
}

// BestPathChurnStaged splits BestPathChurn into setup and measurement:
// it builds the network (principal key generation) and runs the initial
// convergence, then returns a one-shot closure that drives the refresh
// cycles — the steady-state churn window cmd/benchgate times and
// allocation-counts. The closure is one-shot because each cycle's costs
// undercut the previous fixpoint's.
func BestPathChurnStaged(fatal func(...any), cfg provnet.Config, nodes, cycles, keyBits int, seed int64) func() *provnet.Report {
	g := provnet.RandomGraph(provnet.TopoOptions{N: nodes, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
	scale := int64(cycles + 1)
	for i := range g.Links {
		g.Links[i].Cost *= scale
	}
	cfg.Graph = g
	cfg.Seed = seed
	cfg.KeyBits = keyBits
	net, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := net.Run(0)
	if err != nil {
		fatal(err)
	}
	return func() *provnet.Report {
		for cycle := 1; cycle <= cycles; cycle++ {
			for _, l := range g.Links {
				cost := l.Cost / scale * int64(cycles+1-cycle)
				tu := provnet.NewTuple("link", provnet.Str(l.From), provnet.Str(l.To), provnet.Int(cost))
				if err := net.InsertFact(l.From, tu); err != nil {
					fatal(err)
				}
			}
			if rep, err = net.Run(0); err != nil {
				fatal(err)
			}
		}
		return rep
	}
}

// LiveBestPathChurn is the live-driver equivalent of BestPathChurn: the
// same topology and refresh schedule, but every cost change goes through
// Driver.SetLink against the started network — retract-then-insert
// deltas absorbed incrementally instead of refresh-and-rerun. It returns
// the final cumulative report.
func LiveBestPathChurn(fatal func(...any), cfg provnet.Config, nodes, cycles, keyBits int, seed int64) *provnet.Report {
	g := provnet.RandomGraph(provnet.TopoOptions{N: nodes, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
	scale := int64(cycles + 1)
	for i := range g.Links {
		g.Links[i].Cost *= scale
	}
	cfg.Graph = g
	cfg.Seed = seed
	cfg.KeyBits = keyBits
	net, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	d := net.Driver()
	rep, err := d.AwaitQuiescence(ctx)
	if err != nil {
		fatal(err)
	}
	for cycle := 1; cycle <= cycles; cycle++ {
		for _, l := range g.Links {
			cost := l.Cost / scale * int64(cycles+1-cycle)
			if err := d.SetLink(l.From, l.To, cost); err != nil {
				fatal(err)
			}
		}
		if rep, err = d.AwaitQuiescence(ctx); err != nil {
			fatal(err)
		}
	}
	return rep
}

// ShardedFanInSource is the wide fan-in workload behind
// BenchmarkShardedEval and BENCH_pr4.json: spoke nodes ship edge
// readings to a single hub, which computes the two-hop join and a
// per-source fan-out count. Nearly all work is the hub's intra-node
// rule evaluation — one huge delta wave self-joined against itself —
// so the transport layer is negligible and Config.EngineShards is the
// knob that matters, unlike the Best-Path workloads where per-round
// crypto and inter-node scheduling dominate.
const ShardedFanInSource = `
materialize(item, infinity, infinity, keys(1,2,3,4)).
materialize(feed, infinity, infinity, keys(1,2,3)).
materialize(two, infinity, infinity, keys(1,2,3)).
materialize(fan, infinity, infinity, keys(1,2)).
f1 feed(@H, X, Y) :- item(@S, H, X, Y).
j1 two(@H, X, Z) :- feed(@H, X, Y), feed(@H, Y, Z).
c1 fan(@H, X, count<*>) :- two(@H, X, Z).
`

// FanInHub is the hub node name of the ShardedFanIn workload.
const FanInHub = "hub"

// ShardedFanIn runs the wide fan-in workload: a random directed edge
// set over vertices vertices (out-degree degree), spread as item facts
// across spokes source nodes, all feeding the hub's two-hop join. It
// returns the final report; callers vary cfg.EngineShards to measure
// intra-node sharding (results are bit-identical across shard counts).
func ShardedFanIn(fatal func(...any), cfg provnet.Config, spokes, vertices, degree int, seed int64) *provnet.Report {
	return ShardedFanInStaged(fatal, cfg, spokes, vertices, degree, seed)()
}

// ShardedFanInStaged splits ShardedFanIn into setup and measurement: it
// builds the network and enqueues the full edge set, then returns a
// one-shot closure that runs to the distributed fixpoint — the
// evaluation window cmd/benchgate times and allocation-counts, free of
// topology construction and principal key generation.
func ShardedFanInStaged(fatal func(...any), cfg provnet.Config, spokes, vertices, degree int, seed int64) func() *provnet.Report {
	cfg.Source = ShardedFanInSource
	cfg.Seed = seed
	cfg.ExtraNodes = append([]string{FanInHub}, spokeNames(spokes)...)
	net, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	names := cfg.ExtraNodes[1:]
	i := 0
	for x := 0; x < vertices; x++ {
		for d := 0; d < degree; d++ {
			y := rng.Intn(vertices - 1)
			if y >= x {
				y++
			}
			spoke := names[i%len(names)]
			i++
			tu := provnet.NewTuple("item",
				provnet.Str(spoke), provnet.Str(FanInHub),
				provnet.Str(fmt.Sprintf("v%d", x)), provnet.Str(fmt.Sprintf("v%d", y)))
			if err := net.InsertFact(spoke, tu); err != nil {
				fatal(err)
			}
		}
	}
	return func() *provnet.Report {
		rep, err := net.Run(0)
		if err != nil {
			fatal(err)
		}
		return rep
	}
}

func spokeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i)
	}
	return out
}

// CutLinkResult compares one live CutLink re-convergence against a full
// restart on the cut topology — the BENCH_pr3.json record.
type CutLinkResult struct {
	// Cut is the removed link (one that carried installed best paths).
	CutFrom, CutTo string
	// LiveRounds/LiveBytes are the incremental re-convergence costs;
	// Retracted counts the tuples withdrawn across all nodes.
	LiveRounds int
	LiveBytes  int64
	Retracted  int64
	// RestartRounds/RestartBytes are the full re-run costs on a fresh
	// network built without the link.
	RestartRounds int
	RestartBytes  int64
}

// pathUsesEdge reports whether a bestPath path-list routes over from→to.
func pathUsesEdge(v provnet.Value, from, to string) bool {
	if v.Kind != data.KindList {
		return false
	}
	for i := 0; i+1 < len(v.List); i++ {
		if v.List[i].Str == from && v.List[i+1].Str == to {
			return true
		}
	}
	return false
}

// LiveCutLink converges the §6 Best-Path workload, cuts the first link
// that an installed best path routes over, measures the incremental
// re-convergence, and runs the restart baseline on the cut topology.
func LiveCutLink(fatal func(...any), cfg provnet.Config, nodes, keyBits int, seed int64) CutLinkResult {
	g := provnet.RandomGraph(provnet.TopoOptions{N: nodes, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
	base := cfg
	base.Graph = g
	base.Seed = seed
	base.KeyBits = keyBits
	net, err := provnet.NewNetwork(base)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	d := net.Driver()
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		fatal(err)
	}

	// Cut the median-loaded link among those carrying installed best
	// paths: a representative failure, not the best or worst case.
	type loaded struct {
		link provnet.GraphLink
		uses int
	}
	var candidates []loaded
	for _, l := range g.Links {
		uses := 0
		for _, name := range net.Nodes() {
			for _, bp := range net.Tuples(name, "bestPath") {
				if pathUsesEdge(bp.Args[2], l.From, l.To) {
					uses++
				}
			}
		}
		if uses > 0 {
			candidates = append(candidates, loaded{link: l, uses: uses})
		}
	}
	if len(candidates) == 0 {
		fatal("no link participates in any best path")
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].uses != candidates[j].uses {
			return candidates[i].uses < candidates[j].uses
		}
		if candidates[i].link.From != candidates[j].link.From {
			return candidates[i].link.From < candidates[j].link.From
		}
		return candidates[i].link.To < candidates[j].link.To
	})
	cut := candidates[len(candidates)/2].link

	before := net.Transport().Stats()
	if err := d.CutLink(cut.From, cut.To); err != nil {
		fatal(err)
	}
	rep, err := d.AwaitQuiescence(ctx)
	if err != nil {
		fatal(err)
	}
	after := net.Transport().Stats()

	rest := &provnet.Graph{Nodes: g.Nodes}
	for _, l := range g.Links {
		if l != cut {
			rest.Links = append(rest.Links, l)
		}
	}
	restCfg := cfg
	restCfg.Graph = rest
	restCfg.Seed = seed
	restCfg.KeyBits = keyBits
	netRest, err := provnet.NewNetwork(restCfg)
	if err != nil {
		fatal(err)
	}
	repRest, err := netRest.Run(0)
	if err != nil {
		fatal(err)
	}
	return CutLinkResult{
		CutFrom:       cut.From,
		CutTo:         cut.To,
		LiveRounds:    rep.Rounds,
		LiveBytes:     after.Bytes - before.Bytes,
		Retracted:     rep.Retracted,
		RestartRounds: repRest.Rounds,
		RestartBytes:  netRest.Transport().Stats().Bytes,
	}
}
