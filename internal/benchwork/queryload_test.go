package benchwork

import (
	"testing"

	"provnet"
)

// TestConcurrentQueryLoad is the PR-6 acceptance gate: ≥1000 concurrent
// traceback queries against a churning 20-node network, with zero torn
// table reads. CI runs this under -race, which also exercises the
// snapshot machinery's memory model.
func TestConcurrentQueryLoad(t *testing.T) {
	cfg := provnet.Config{Source: provnet.BestPath, Prov: provnet.ProvDistributed}
	res := ConcurrentQueryLoad(t.Fatal, cfg, 20, 8, 1000, 11)
	t.Logf("queryload: %+v", res)
	if res.Tracebacks < 1000 {
		t.Errorf("tracebacks = %d, want ≥1000", res.Tracebacks)
	}
	if res.Torn != 0 {
		t.Errorf("torn reads = %d, want 0", res.Torn)
	}
	if res.Churns == 0 || res.Snapshots < 2 {
		t.Errorf("network did not churn: churns=%d snapshots=%d", res.Churns, res.Snapshots)
	}
}
