package benchwork

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"provnet"
	"provnet/internal/queryapi"
)

// QueryLoadResult records the PR-6 concurrent-query workload: HTTP
// traceback and table queries hammering the query API while the network
// churns underneath, with every table response checked against the set
// of snapshots the churn loop published. Torn must be zero: the
// copy-on-write ReadView guarantees a query overlapping a CutLink sees
// either the pre-churn or the post-churn snapshot, never a mix.
type QueryLoadResult struct {
	Nodes      int
	Workers    int
	Churns     int
	Snapshots  int // distinct snapshot bodies published by the churn loop
	Queries    int // total HTTP queries issued
	Tracebacks int // traceback queries among them
	TraceMiss  int // tracebacks that raced a withdrawal (404: target gone)
	Torn       int // table responses matching no published snapshot
	Elapsed    time.Duration
	QPS        float64
}

// ConcurrentQueryLoad converges the §6 Best-Path workload on a random
// nodes-node topology, then runs workers query goroutines against the
// HTTP API while the main loop cuts and restores links. The loop churns
// until the workers have issued at least minTracebacks traceback
// queries. Table-response bodies are compared post-hoc against every
// snapshot captured at the loop's quiescence points; mismatches are
// torn reads. fatal is called on setup errors and on any query failure
// that is not an expected churn race.
func ConcurrentQueryLoad(fatal func(...any), cfg provnet.Config, nodes, workers, minTracebacks int, seed int64) QueryLoadResult {
	g := provnet.RandomGraph(provnet.TopoOptions{N: nodes, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
	cfg.Graph = g
	cfg.Seed = seed
	net, err := provnet.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	defer net.Close()
	ctx := context.Background()
	d := net.Driver()
	if err := d.Start(ctx); err != nil {
		fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		fatal(err)
	}
	srv := httptest.NewServer(queryapi.NewServer(net).Handler())
	defer srv.Close()
	client := srv.Client()

	// The snapshot library: every table body the churn loop captured at
	// a quiescence point. Workers record what they observed; the post-hoc
	// diff (observed ⊆ captured) avoids racing the capture itself.
	captured := make(map[string]bool)
	var capMu sync.Mutex
	tablesURL := srv.URL + "/v1/tables/bestPath"
	capture := func() {
		body, status, err := get(client, tablesURL)
		if err != nil || status != http.StatusOK {
			fatal(fmt.Sprintf("snapshot capture: status %d err %v", status, err))
		}
		capMu.Lock()
		captured[body] = true
		capMu.Unlock()
	}
	capture()

	var (
		stop       atomic.Bool
		queries    atomic.Int64
		tracebacks atomic.Int64
		traceMiss  atomic.Int64
		errMu      sync.Mutex
		firstErr   error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	observed := make([]map[string]int, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		obs := make(map[string]int)
		observed[w] = obs
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if i%4 == 0 {
					// Table read: must match a captured snapshot exactly.
					body, status, err := get(client, tablesURL)
					if err != nil || status != http.StatusOK {
						fail(fmt.Errorf("worker %d: tables status %d: %v", w, status, err))
						return
					}
					queries.Add(1)
					obs[body]++
					continue
				}
				// Traceback: pick a live bestPath fact off the current
				// snapshot and reconstruct its derivation over the
				// churning provenance stores.
				view := d.ReadView()
				names := view.Nodes()
				if len(names) == 0 {
					continue
				}
				node := names[(w+i)%len(names)]
				rows := view.Rows(node, "bestPath")
				if len(rows) == 0 {
					continue
				}
				target := rows[(w*7+i)%len(rows)].Tuple
				u := fmt.Sprintf("%s/v1/traceback?node=%s&tuple=%s&maxdepth=12",
					srv.URL, url.QueryEscape(node), url.QueryEscape(target.String()))
				body, status, err := get(client, u)
				if err != nil {
					fail(fmt.Errorf("worker %d: traceback: %v", w, err))
					return
				}
				queries.Add(1)
				tracebacks.Add(1)
				switch status {
				case http.StatusOK:
					var res queryapi.QueryResult
					if err := json.Unmarshal([]byte(body), &res); err != nil || res.V != queryapi.SchemaVersion || res.Traceback == nil {
						fail(fmt.Errorf("worker %d: bad traceback result (err %v): %.200s", w, err, body))
						return
					}
				case http.StatusNotFound:
					// The target was withdrawn between the snapshot read
					// and the store walk: an expected churn race.
					traceMiss.Add(1)
				default:
					fail(fmt.Errorf("worker %d: traceback status %d: %.200s", w, status, body))
					return
				}
			}
		}(w)
	}

	// Churn until the workers hit the traceback quota: cut a link, wait
	// for re-convergence, capture the new snapshot; restore it two
	// cycles later so the graph never thins out.
	churns := 0
	down := make([]provnet.GraphLink, 0, 2)
	for i := 0; tracebacks.Load() < int64(minTracebacks) && !stop.Load(); i++ {
		if len(down) == 2 {
			l := down[0]
			down = down[1:]
			if err := d.SetLink(l.From, l.To, l.Cost); err != nil {
				fail(err)
				break
			}
		} else {
			l := g.Links[(i*13)%len(g.Links)]
			if err := d.CutLink(l.From, l.To); err != nil {
				fail(err)
				break
			}
			down = append(down, l)
		}
		if _, err := d.AwaitQuiescence(ctx); err != nil {
			fail(err)
			break
		}
		churns++
		capture()
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		fatal(err)
	}

	res := QueryLoadResult{
		Nodes:      nodes,
		Workers:    workers,
		Churns:     churns,
		Snapshots:  len(captured),
		Queries:    int(queries.Load()),
		Tracebacks: int(tracebacks.Load()),
		TraceMiss:  int(traceMiss.Load()),
		Elapsed:    elapsed,
		QPS:        float64(queries.Load()) / elapsed.Seconds(),
	}
	for _, obs := range observed {
		for body, count := range obs {
			if !captured[body] {
				res.Torn += count
			}
		}
	}
	return res
}

func get(client *http.Client, url string) (string, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.StatusCode, err
	}
	return string(body), resp.StatusCode, nil
}
