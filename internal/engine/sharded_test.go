package engine

import (
	"fmt"
	"strings"
	"testing"

	"provnet/internal/data"
	"provnet/internal/datalog"
)

// newShardedNode builds an engine with an explicit shard count and
// shadow cap.
func newShardedNode(t testing.TB, self, src string, shards, shadowCap int) *Engine {
	t.Helper()
	prog, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	localized, err := datalog.Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Self: self, Shards: shards, ShadowCap: shadowCap})
	if err := e.LoadProgram(localized); err != nil {
		t.Fatal(err)
	}
	return e
}

// snapshotEngine renders every live tuple of an engine, sorted.
func snapshotEngine(e *Engine) string {
	var b strings.Builder
	for _, pred := range e.Predicates() {
		for _, tu := range e.Tuples(pred) {
			fmt.Fprintf(&b, "%s\n", tu)
		}
	}
	return b.String()
}

// exportSig renders an export slice order-sensitively: the sharded
// ordered-commit stage must reproduce serial export order bit for bit.
func exportSig(exports []Export) string {
	var b strings.Builder
	for _, ex := range exports {
		fmt.Fprintf(&b, "%s<-%s\n", ex.Dest, ex.Tuple)
	}
	return b.String()
}

// mirrorProg derives transitive reachability locally and mirrors it to
// every peer — local recursion for wave depth plus remote heads for
// export-order checking.
const mirrorProg = `
materialize(edge, infinity, infinity, keys(1,2,3)).
materialize(peer, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2,3)).
materialize(mir, infinity, infinity, keys(1,2,3)).
r1 reach(@N,X,Y) :- edge(@N,X,Y).
r2 reach(@N,X,Y) :- edge(@N,X,Z), reach(@N,Z,Y).
r3 mir(@O,X,Y) :- reach(@N,X,Y), peer(@N,O).
`

// TestShardedEngineMatchesSerial drives one engine serially and one with
// eight shards through the same insert/retract/fixpoint script and
// requires identical exports (including order) at every fixpoint,
// identical tables, and identical stats — the engine-level half of the
// TestShardedMatchesSerial pin, with retraction interleaved.
func TestShardedEngineMatchesSerial(t *testing.T) {
	serial := newShardedNode(t, "a", mirrorProg, 1, 0)
	sharded := newShardedNode(t, "a", mirrorProg, 8, 0)
	engines := []*Engine{serial, sharded}

	edge := func(x, y int) data.Tuple {
		return data.NewTuple("edge", data.Str("a"),
			data.Str(fmt.Sprintf("v%d", x)), data.Str(fmt.Sprintf("v%d", y)))
	}
	both := func(f func(e *Engine)) {
		for _, e := range engines {
			f(e)
		}
	}
	fixpoint := func(step string) {
		t.Helper()
		a, b := serial.RunToFixpoint(), sharded.RunToFixpoint()
		if x, y := exportSig(a), exportSig(b); x != y {
			t.Fatalf("%s: export order differs\n--- serial ---\n%s--- sharded ---\n%s", step, x, y)
		}
	}

	both(func(e *Engine) {
		e.InsertFact(data.NewTuple("peer", data.Str("a"), data.Str("b")))
		// A chain plus chords: multi-wave recursion with plenty of deltas
		// per wave to spread across shards.
		for i := 0; i < 12; i++ {
			e.InsertFact(edge(i, i+1))
		}
		e.InsertFact(edge(0, 6))
		e.InsertFact(edge(3, 9))
	})
	fixpoint("initial convergence")

	both(func(e *Engine) { e.RetractFacts(edge(5, 6)) })
	fixpoint("after cutting the chain")

	both(func(e *Engine) { e.InsertFact(edge(5, 6)) })
	fixpoint("after restoring the chain")

	if a, b := snapshotEngine(serial), snapshotEngine(sharded); a != b {
		t.Fatalf("tables differ\n--- serial ---\n%s--- sharded ---\n%s", a, b)
	}
	if serial.Stats != sharded.Stats {
		t.Errorf("stats differ: serial %+v, sharded %+v", serial.Stats, sharded.Stats)
	}
}

const softDepsProg = `
materialize(link, 8, infinity, keys(1,2,3)).
materialize(route, infinity, infinity, keys(1,2,3)).
s1 route(@N,Y,C) :- link(@N,Y,C).
`

// TestExpirePurgesRetractionBookkeeping is the regression test for the
// Expire leak: expired tuples must leave the dependency index, and a
// retraction issued after their expiry must not walk dependents through
// them.
func TestExpirePurgesRetractionBookkeeping(t *testing.T) {
	e := retractEngine(t, "n", softDepsProg)
	link := data.NewTuple("link", data.Str("n"), data.Str("b"), data.Int(2))
	route := data.NewTuple("route", data.Str("n"), data.Str("b"), data.Int(2))
	e.InsertFact(link)
	e.RunToFixpoint()
	if !e.Has(route) {
		t.Fatal("route not derived")
	}
	if e.DepSize() == 0 {
		t.Fatal("dependency index empty after derivation")
	}

	e.Expire(10) // past the link TTL
	if e.Has(link) {
		t.Fatal("link should have expired")
	}
	if got := e.DepSize(); got != 0 {
		t.Fatalf("dependency index holds %d entries after expiry, want 0 (leak)", got)
	}

	// Re-inserting and retracting the same fact must cascade only through
	// the fresh derivation, not resurrect stale pre-expiry bookkeeping.
	e.InsertFact(link)
	e.RunToFixpoint()
	before := e.Stats.Retracted
	e.RetractFacts(link)
	if e.Has(route) {
		t.Fatal("route should be withdrawn with its only support")
	}
	if got := e.Stats.Retracted - before; got != 2 { // link + route
		t.Fatalf("retraction cascade removed %d tuples, want 2", got)
	}
	if got := e.DepSize(); got != 0 {
		t.Fatalf("dependency index holds %d entries after full retraction, want 0", got)
	}
}

const softMinProg = `
materialize(e, 8, infinity, keys(1,2,3)).
materialize(m, infinity, infinity, keys(1,2)).
aggSelection(e, keys(1,2), min, 3).
m1 m(@N,X,min<C>) :- e(@N,X,C).
`

// TestExpireRelaxesPruneGroup: when the installed optimum of an
// aggregate-selection group expires, the group's bar must relax and
// shadowed candidates must compete again — previously the stale best
// stayed installed and every later candidate was measured against a
// vanished tuple.
func TestExpireRelaxesPruneGroup(t *testing.T) {
	e := retractEngine(t, "n", softMinProg)
	ev := func(c int64) data.Tuple {
		return data.NewTuple("e", data.Str("n"), data.Str("x"), data.Int(c))
	}
	e.InsertFact(ev(3))
	e.RunToFixpoint()
	e.SetNow(5)
	e.InsertFact(ev(7)) // shadowed: worse than the installed 3
	e.RunToFixpoint()
	if e.Has(ev(7)) {
		t.Fatal("the 7-candidate should be pruned while 3 is live")
	}

	e.Expire(10) // 3 (created at 0) expires; 7 (created at 5) survives
	e.RunToFixpoint()
	if e.Has(ev(3)) {
		t.Fatal("the 3-candidate should have expired")
	}
	if !e.Has(ev(7)) {
		t.Fatal("the shadowed 7-candidate should be revived once the expired optimum is gone")
	}
	if got := e.Tuples("m"); len(got) != 1 || got[0].Args[2].Int != 7 {
		t.Fatalf("m = %v, want m(n,x,7)", got)
	}
}

// TestShadowCapBoundsAndFallback pins the bounded shadow cache: the
// per-group shadow never exceeds its cap (worst-first eviction), and a
// revival that lost candidates to eviction falls back to restricted
// re-derivation so the next-best tuple is still found.
func TestShadowCapBoundsAndFallback(t *testing.T) {
	const srcMinProg = `
materialize(src, infinity, infinity, keys(1,2,3)).
materialize(e, infinity, infinity, keys(1,2,3)).
materialize(m, infinity, infinity, keys(1,2)).
aggSelection(e, keys(1,2), min, 3).
d1 e(@N,X,C) :- src(@N,X,C).
m1 m(@N,X,min<C>) :- e(@N,X,C).
`
	e := newShardedNode(t, "n", srcMinProg, 1, 2)
	src := func(c int64) data.Tuple {
		return data.NewTuple("src", data.Str("n"), data.Str("x"), data.Int(c))
	}
	m := func(c int64) data.Tuple {
		return data.NewTuple("m", data.Str("n"), data.Str("x"), data.Int(c))
	}
	for c := int64(1); c <= 6; c++ {
		e.InsertFact(src(c))
		e.RunToFixpoint()
		if got := e.ShadowSize(); got > 2 {
			t.Fatalf("shadow size %d exceeds cap 2", got)
		}
	}
	if !e.Has(m(1)) {
		t.Fatalf("m = %v, want m(n,x,1)", e.Tuples("m"))
	}

	// Retract the best repeatedly: each revival must install the true
	// next-best even though candidates beyond the cap were evicted and
	// only exist via the re-derivation fallback.
	for want := int64(2); want <= 6; want++ {
		e.RetractFacts(src(want - 1))
		e.RunToFixpoint()
		if !e.Has(m(want)) {
			t.Fatalf("after retracting %d: m = %v, want m(n,x,%d)", want-1, e.Tuples("m"), want)
		}
		if got := e.ShadowSize(); got > 2 {
			t.Fatalf("shadow size %d exceeds cap 2 during churn", got)
		}
	}
}

// TestShadowStaysBoundedUnderChurn is the long-churn pin: cycles of
// improving candidates from many origins must not grow the shadow past
// its cap, while the installed best stays correct.
func TestShadowStaysBoundedUnderChurn(t *testing.T) {
	e := newShardedNode(t, "n", softMinProg, 4, 8)
	ev := func(c int64) data.Tuple {
		return data.NewTuple("e", data.Str("n"), data.Str("x"), data.Int(c))
	}
	max := 0
	for cycle := int64(0); cycle < 50; cycle++ {
		// A burst of worse candidates from rotating origins, then a new
		// best — the refresh-heavy regime that grew the shadow unboundedly.
		for i := int64(1); i <= 10; i++ {
			if err := e.InsertImportedFrom(fmt.Sprintf("o%d", (cycle+i)%7), ev(1000-cycle+i), nil); err != nil {
				t.Fatal(err)
			}
		}
		e.InsertFact(ev(1000 - cycle - 1))
		e.RunToFixpoint()
		if s := e.ShadowSize(); s > max {
			max = s
		}
	}
	if max > 8 {
		t.Fatalf("shadow grew to %d rows, want ≤ cap 8", max)
	}
	if got := e.Tuples("m"); len(got) != 1 || got[0].Args[2].Int != 1000-49-1 {
		t.Fatalf("m = %v, want min %d", got, 1000-49-1)
	}
}

// FuzzShardedRetract interleaves inserts, retractions, expiry, and
// fixpoints on a serial and an 8-shard engine (with a tiny shadow cap to
// exercise eviction) and requires identical tables, exports, and stats
// at every step — the fuzz seed required for sharded eval with
// retraction interleaved.
func FuzzShardedRetract(f *testing.F) {
	f.Add([]byte{0, 1, 2, 8, 0, 5, 1, 1, 2, 8, 3, 0})
	f.Add([]byte{0, 0, 1, 0, 1, 2, 8, 2, 0, 3, 1, 0, 1, 8, 3, 7, 0, 9, 9})
	f.Add([]byte{0, 1, 1, 0, 2, 1, 0, 1, 1, 8, 0, 3, 3, 3, 2, 2, 0, 4, 4})
	// A 0xFF lead byte squeezes every structural hash to 3 bits, so the
	// whole serial-vs-sharded comparison runs on collision chains — the
	// interned fast path and the equality fallback must agree.
	f.Add([]byte{0xFF, 0, 1, 2, 8, 0, 5, 1, 1, 2, 8, 3, 0, 0, 3, 3, 1, 1, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 0 && ops[0] == 0xFF {
			restore := data.LimitHashBitsForTesting(3)
			defer restore()
			ops = ops[1:]
		}
		const fuzzProg = `
materialize(link, 16, infinity, keys(1,2,3)).
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(m, infinity, infinity, keys(1,2)).
aggSelection(cost, keys(1,2), min, 3).
c1 cost(@N,Y,C) :- link(@N,Y,C).
m1 m(@N,Y,min<C>) :- cost(@N,Y,C).
`
		serial := newShardedNode(t, "n", fuzzProg, 1, 2)
		sharded := newShardedNode(t, "n", fuzzProg, 8, 2)
		now := 0.0
		link := func(y, c byte) data.Tuple {
			return data.NewTuple("link", data.Str("n"),
				data.Str(fmt.Sprintf("y%d", y%3)), data.Int(int64(c%9)))
		}
		for i := 0; i+2 < len(ops); i += 3 {
			op, y, c := ops[i]%4, ops[i+1], ops[i+2]
			switch op {
			case 0:
				serial.InsertFact(link(y, c))
				sharded.InsertFact(link(y, c))
			case 1:
				serial.RetractFacts(link(y, c))
				sharded.RetractFacts(link(y, c))
			case 2:
				a, b := serial.RunToFixpoint(), sharded.RunToFixpoint()
				if x, yy := exportSig(a), exportSig(b); x != yy {
					t.Fatalf("op %d: exports differ\n%s---\n%s", i, x, yy)
				}
			case 3:
				now += float64(c % 8)
				serial.Expire(now)
				sharded.Expire(now)
			}
			if a, b := snapshotEngine(serial), snapshotEngine(sharded); a != b {
				t.Fatalf("op %d: tables differ\n--- serial ---\n%s--- sharded ---\n%s", i, a, b)
			}
		}
		serial.RunToFixpoint()
		sharded.RunToFixpoint()
		if a, b := snapshotEngine(serial), snapshotEngine(sharded); a != b {
			t.Fatalf("final tables differ\n--- serial ---\n%s--- sharded ---\n%s", a, b)
		}
		if serial.Stats != sharded.Stats {
			t.Fatalf("stats differ: serial %+v, sharded %+v", serial.Stats, sharded.Stats)
		}
	})
}
