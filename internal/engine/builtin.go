package engine

import (
	"errors"
	"fmt"

	"provnet/internal/data"
	"provnet/internal/datalog"
)

// Errors produced by expression evaluation. A failing expression kills the
// current rule branch rather than the engine.
var (
	errUnboundVar = errors.New("engine: unbound variable in expression")
	errBadOperand = errors.New("engine: bad operand type")
)

// evalExpr evaluates a datalog expression under the rule's environment.
func evalExpr(ex datalog.Expr, r *compiledRule, env *env) (data.Value, error) {
	switch x := ex.(type) {
	case datalog.ConstExpr:
		return x.Value, nil
	case datalog.VarExpr:
		slot, ok := r.varSlots[x.Name]
		if !ok || !env.bound[slot] {
			return data.Value{}, fmt.Errorf("%w: %s", errUnboundVar, x.Name)
		}
		return env.vals[slot], nil
	case datalog.UnaryExpr:
		v, err := evalExpr(x.X, r, env)
		if err != nil {
			return data.Value{}, err
		}
		switch x.Op {
		case "-":
			switch v.Kind {
			case data.KindInt:
				return data.Int(-v.Int), nil
			case data.KindFloat:
				return data.Float(-v.Float), nil
			default:
				return data.Value{}, errBadOperand
			}
		case "!":
			return data.Bool(!v.IsTrue()), nil
		default:
			return data.Value{}, fmt.Errorf("engine: unknown unary op %q", x.Op)
		}
	case datalog.BinExpr:
		// Short-circuit logical operators.
		switch x.Op {
		case "&&":
			l, err := evalExpr(x.L, r, env)
			if err != nil {
				return data.Value{}, err
			}
			if !l.IsTrue() {
				return data.Bool(false), nil
			}
			rr, err := evalExpr(x.R, r, env)
			if err != nil {
				return data.Value{}, err
			}
			return data.Bool(rr.IsTrue()), nil
		case "||":
			l, err := evalExpr(x.L, r, env)
			if err != nil {
				return data.Value{}, err
			}
			if l.IsTrue() {
				return data.Bool(true), nil
			}
			rr, err := evalExpr(x.R, r, env)
			if err != nil {
				return data.Value{}, err
			}
			return data.Bool(rr.IsTrue()), nil
		}
		l, err := evalExpr(x.L, r, env)
		if err != nil {
			return data.Value{}, err
		}
		rv, err := evalExpr(x.R, r, env)
		if err != nil {
			return data.Value{}, err
		}
		return applyBinOp(x.Op, l, rv)
	case datalog.CallExpr:
		fn, ok := Builtins[x.Name]
		if !ok {
			return data.Value{}, fmt.Errorf("engine: unknown function %q", x.Name)
		}
		args := make([]data.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalExpr(a, r, env)
			if err != nil {
				return data.Value{}, err
			}
			args[i] = v
		}
		return fn(args)
	default:
		return data.Value{}, fmt.Errorf("engine: unknown expression %T", ex)
	}
}

func applyBinOp(op string, l, r data.Value) (data.Value, error) {
	switch op {
	case "==":
		return data.Bool(l.Equal(r)), nil
	case "!=":
		return data.Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		c := l.Compare(r)
		switch op {
		case "<":
			return data.Bool(c < 0), nil
		case "<=":
			return data.Bool(c <= 0), nil
		case ">":
			return data.Bool(c > 0), nil
		default:
			return data.Bool(c >= 0), nil
		}
	case "+":
		if l.Kind == data.KindString && r.Kind == data.KindString {
			return data.Str(l.Str + r.Str), nil
		}
		return numericOp(op, l, r)
	case "-", "*", "/":
		return numericOp(op, l, r)
	default:
		return data.Value{}, fmt.Errorf("engine: unknown operator %q", op)
	}
}

func numericOp(op string, l, r data.Value) (data.Value, error) {
	numeric := func(v data.Value) bool { return v.Kind == data.KindInt || v.Kind == data.KindFloat }
	if !numeric(l) || !numeric(r) {
		return data.Value{}, errBadOperand
	}
	if l.Kind == data.KindInt && r.Kind == data.KindInt {
		a, b := l.Int, r.Int
		switch op {
		case "+":
			return data.Int(a + b), nil
		case "-":
			return data.Int(a - b), nil
		case "*":
			return data.Int(a * b), nil
		case "/":
			if b == 0 {
				return data.Value{}, errors.New("engine: division by zero")
			}
			return data.Int(a / b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return data.Float(a + b), nil
	case "-":
		return data.Float(a - b), nil
	case "*":
		return data.Float(a * b), nil
	case "/":
		if b == 0 {
			return data.Value{}, errors.New("engine: division by zero")
		}
		return data.Float(a / b), nil
	}
	return data.Value{}, fmt.Errorf("engine: unknown operator %q", op)
}

// BuiltinFunc is the signature of NDlog builtin functions (f_*).
type BuiltinFunc func(args []data.Value) (data.Value, error)

// Builtins is the registry of NDlog builtin functions, the list-and-path
// helpers used by declarative routing programs. Additional functions may
// be registered before engines are created.
var Builtins = map[string]BuiltinFunc{
	"f_init":   fInit,
	"f_concat": fConcat,
	"f_append": fAppend,
	"f_member": fMember,
	"f_size":   fSize,
	"f_first":  fFirst,
	"f_last":   fLast,
	"f_min":    fMin2,
	"f_max":    fMax2,
	"f_abs":    fAbs,
	"f_mod":    fMod,
}

func arity(args []data.Value, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("engine: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

// fInit builds the initial path list [S, D].
func fInit(args []data.Value) (data.Value, error) {
	if err := arity(args, 2, "f_init"); err != nil {
		return data.Value{}, err
	}
	return data.List(args[0], args[1]), nil
}

// fConcat prepends an element to a list: f_concat(S, P) = [S | P].
func fConcat(args []data.Value) (data.Value, error) {
	if err := arity(args, 2, "f_concat"); err != nil {
		return data.Value{}, err
	}
	if args[1].Kind != data.KindList {
		return data.Value{}, errBadOperand
	}
	out := make([]data.Value, 0, len(args[1].List)+1)
	out = append(out, args[0])
	out = append(out, args[1].List...)
	return data.List(out...), nil
}

// fAppend appends an element to a list.
func fAppend(args []data.Value) (data.Value, error) {
	if err := arity(args, 2, "f_append"); err != nil {
		return data.Value{}, err
	}
	if args[0].Kind != data.KindList {
		return data.Value{}, errBadOperand
	}
	out := make([]data.Value, 0, len(args[0].List)+1)
	out = append(out, args[0].List...)
	out = append(out, args[1])
	return data.List(out...), nil
}

// fMember returns 1 if the element occurs in the list, else 0.
func fMember(args []data.Value) (data.Value, error) {
	if err := arity(args, 2, "f_member"); err != nil {
		return data.Value{}, err
	}
	if args[0].Kind != data.KindList {
		return data.Value{}, errBadOperand
	}
	for _, e := range args[0].List {
		if e.Equal(args[1]) {
			return data.Int(1), nil
		}
	}
	return data.Int(0), nil
}

// fSize returns the length of a list.
func fSize(args []data.Value) (data.Value, error) {
	if err := arity(args, 1, "f_size"); err != nil {
		return data.Value{}, err
	}
	if args[0].Kind != data.KindList {
		return data.Value{}, errBadOperand
	}
	return data.Int(int64(len(args[0].List))), nil
}

// fFirst returns the first element of a non-empty list.
func fFirst(args []data.Value) (data.Value, error) {
	if err := arity(args, 1, "f_first"); err != nil {
		return data.Value{}, err
	}
	if args[0].Kind != data.KindList || len(args[0].List) == 0 {
		return data.Value{}, errBadOperand
	}
	return args[0].List[0], nil
}

// fLast returns the last element of a non-empty list.
func fLast(args []data.Value) (data.Value, error) {
	if err := arity(args, 1, "f_last"); err != nil {
		return data.Value{}, err
	}
	if args[0].Kind != data.KindList || len(args[0].List) == 0 {
		return data.Value{}, errBadOperand
	}
	return args[0].List[len(args[0].List)-1], nil
}

// fMin2 returns the smaller of two values.
func fMin2(args []data.Value) (data.Value, error) {
	if err := arity(args, 2, "f_min"); err != nil {
		return data.Value{}, err
	}
	if args[0].Compare(args[1]) <= 0 {
		return args[0], nil
	}
	return args[1], nil
}

// fMax2 returns the larger of two values.
func fMax2(args []data.Value) (data.Value, error) {
	if err := arity(args, 2, "f_max"); err != nil {
		return data.Value{}, err
	}
	if args[0].Compare(args[1]) >= 0 {
		return args[0], nil
	}
	return args[1], nil
}

// fAbs returns the absolute value of a number.
func fAbs(args []data.Value) (data.Value, error) {
	if err := arity(args, 1, "f_abs"); err != nil {
		return data.Value{}, err
	}
	switch args[0].Kind {
	case data.KindInt:
		if args[0].Int < 0 {
			return data.Int(-args[0].Int), nil
		}
		return args[0], nil
	case data.KindFloat:
		if args[0].Float < 0 {
			return data.Float(-args[0].Float), nil
		}
		return args[0], nil
	default:
		return data.Value{}, errBadOperand
	}
}

// fMod returns a % b for integers.
func fMod(args []data.Value) (data.Value, error) {
	if err := arity(args, 2, "f_mod"); err != nil {
		return data.Value{}, err
	}
	if args[0].Kind != data.KindInt || args[1].Kind != data.KindInt || args[1].Int == 0 {
		return data.Value{}, errBadOperand
	}
	return data.Int(args[0].Int % args[1].Int), nil
}
