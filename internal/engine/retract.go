package engine

import (
	"sort"
	"sync"

	"provnet/internal/data"
)

// Retraction: the engine half of live link churn. Deleting a base tuple
// (a cut link) must withdraw everything derived from it, across nodes,
// without restarting the computation. The implementation is a
// delete-and-rederive (DRed) variant over the dependency index recorded
// at rule-firing time, split into two phases so the scheduler can drain
// the distributed withdrawal wave before any repair propagates:
//
//   - BeginRetract* (over-delete): walk the cone of influence of the
//     retracted tuples through the dependency index, deleting local
//     heads and collecting Withdrawals for exported ones. The touched
//     state (deleted keys, dirty aggregates, relaxed prune groups,
//     shipped withdrawals) accumulates on the engine.
//   - CompleteRetract (repair): once no withdrawal is in flight,
//     aggregate-selection groups re-admit the shadow candidates the
//     prune had rejected, every non-aggregate rule re-evaluates
//     restricted to the deleted set (alternate derivations re-establish
//     survivors locally and re-ship previously withdrawn exports), and
//     touched aggregates recompute from live state — heads whose groups
//     vanished cascade back through over-deletion.
//
// The phase split matters in a network: completing a node's repair while
// a neighbor's withdrawal is still in flight briefly revives routes the
// neighbor is about to withdraw (zombie routes), amplifying churn
// traffic. The scheduler (internal/core) ships Begin's withdrawals hop
// by hop until the wave quiesces, then completes every node. The
// single-call forms (RetractFacts, RetractImported, RetractInbound)
// compose both phases for single-engine use.
//
// Cross-node alternate derivations are handled by per-entry support
// tracking (Entry.localSupport / Entry.origins): a tuple shipped by two
// senders survives the retraction of one.

// Withdrawal is a retraction addressed to another node: a previously
// exported derivation that no longer holds and that the destination must
// now withdraw (losing this node's support for it).
type Withdrawal struct {
	Dest  string
	Tuple data.Tuple
}

// depTarget is one derived head recorded as reachable from a body tuple.
type depTarget struct {
	head data.Tuple
	dest string
}

// depList is an insertion-ordered, deduplicated set of depTargets.
// Insertion order keeps retraction cascades deterministic.
type depList struct {
	order []depTarget
	seen  map[string]bool
}

// recordDep notes the dependency edge body → (head, dest) of a rule
// firing, the raw material of retraction cascades.
func (e *Engine) recordDep(body, head data.Tuple, dest string) {
	key := body.Key()
	dl := e.deps[key]
	if dl == nil {
		dl = &depList{seen: make(map[string]bool)}
		e.deps[key] = dl
	}
	sig := dest + "\x00" + head.Key()
	if dl.seen[sig] {
		return
	}
	dl.seen[sig] = true
	dl.order = append(dl.order, depTarget{head: head, dest: dest})
}

// withdrawalQueue accumulates outbound retractions in deterministic
// order, deduplicated by (destination, tuple).
type withdrawalQueue struct {
	order []Withdrawal
	seen  map[string]bool
}

func newWithdrawalQueue() *withdrawalQueue {
	return &withdrawalQueue{seen: make(map[string]bool)}
}

func wqSig(dest string, t data.Tuple) string { return dest + "\x00" + t.Key() }

func (wq *withdrawalQueue) add(dest string, t data.Tuple) {
	sig := wqSig(dest, t)
	if wq.seen[sig] {
		return
	}
	wq.seen[sig] = true
	wq.order = append(wq.order, Withdrawal{Dest: dest, Tuple: t})
}

// retractPending is the over-deletion state accumulated between
// BeginRetract* calls and the CompleteRetract that repairs it.
type retractPending struct {
	// deleted keys of tuples removed from this node's tables.
	deleted map[string]bool
	// dirty aggregate rule labels needing recomputation.
	dirty map[string]bool
	// groups are the aggregate-selection groups whose installed optimum
	// may have relaxed.
	groups map[string]pruneGroup
	// shipped tracks (dest, tuple) withdrawals handed to the scheduler;
	// a re-derivation during repair re-ships those exports.
	shipped map[string]bool
}

func newRetractPending() *retractPending {
	return &retractPending{
		deleted: make(map[string]bool),
		dirty:   make(map[string]bool),
		groups:  make(map[string]pruneGroup),
		shipped: make(map[string]bool),
	}
}

func (p *retractPending) empty() bool {
	return len(p.deleted) == 0 && len(p.dirty) == 0 && len(p.groups) == 0
}

// rederiveState restricts emit while the DRed repair pass runs.
type rederiveState struct {
	deleted map[string]bool
	shipped map[string]bool
}

// restrictState restricts emit to local heads of one aggregate-selection
// group while the shadow-eviction revival fallback re-derives the
// candidates a bounded shadow dropped. Mutually exclusive with
// rederiveState: revival runs before the DRed re-derivation phase.
type restrictState struct {
	pred    string
	gk      string
	keyCols []int
}

// retractMode distinguishes which support a retraction removes.
type retractMode uint8

const (
	// retractForce deletes the row outright (explicit fact retraction:
	// CutLink, SetLink, Driver.Retract).
	retractForce retractMode = iota
	// retractDeriv removes the row's local-derivation support (a cascade
	// step); the row survives while remote origins remain.
	retractDeriv
	// retractOrigin removes one remote sender's support (an inbound
	// retraction frame); the row survives while other support remains.
	retractOrigin
)

type retractItem struct {
	t      data.Tuple
	mode   retractMode
	origin string
}

// retractRounds caps the repair's delete/revive/rederive/recompute
// iteration. Real programs converge in a handful of rounds; the cap cuts
// pathological cycles short, leaving an over-deleted state that normal
// re-propagation heals.
const retractRounds = 100

// InboundRetraction is one (sender, tuple) withdrawal received off the
// wire.
type InboundRetraction struct {
	From  string
	Tuple data.Tuple
}

// RetractFacts removes tuples from this node outright — the engine half
// of CutLink/SetLink — cascading through everything derived from them.
// Both phases run back to back; the returned withdrawals must be shipped
// to their destination nodes, which apply them via RetractInbound.
func (e *Engine) RetractFacts(tuples ...data.Tuple) []Withdrawal {
	ws := e.BeginRetractFacts(tuples...)
	return append(ws, e.CompleteRetract()...)
}

// RetractImported applies an inbound retraction from a remote sender,
// running both phases back to back: each tuple loses that sender's
// support and is deleted (with cascade) only when no local derivation or
// other origin still supports it.
func (e *Engine) RetractImported(from string, tuples []data.Tuple) []Withdrawal {
	items := make([]InboundRetraction, len(tuples))
	for i, t := range tuples {
		items[i] = InboundRetraction{From: from, Tuple: t}
	}
	return e.RetractInbound(items)
}

// RetractInbound applies a batch of inbound retractions (possibly from
// several senders), running both phases back to back.
func (e *Engine) RetractInbound(items []InboundRetraction) []Withdrawal {
	ws := e.BeginRetractInbound(items)
	return append(ws, e.CompleteRetract()...)
}

// BeginRetractFacts is the over-delete phase for explicit fact
// retraction.
func (e *Engine) BeginRetractFacts(tuples ...data.Tuple) []Withdrawal {
	items := make([]retractItem, len(tuples))
	for i, t := range tuples {
		items[i] = retractItem{t: t, mode: retractForce}
	}
	return e.beginRetract(items)
}

// BeginRetractInbound is the over-delete phase for inbound withdrawals.
func (e *Engine) BeginRetractInbound(items []InboundRetraction) []Withdrawal {
	ri := make([]retractItem, len(items))
	for i, it := range items {
		ri[i] = retractItem{t: it.Tuple, mode: retractOrigin, origin: it.From}
	}
	return e.beginRetract(ri)
}

// HasPendingRetract reports whether over-deleted state awaits
// CompleteRetract.
func (e *Engine) HasPendingRetract() bool {
	return e.pend != nil && !e.pend.empty()
}

func (e *Engine) beginRetract(items []retractItem) []Withdrawal {
	if e.pend == nil {
		e.pend = newRetractPending()
	}
	wq := newWithdrawalQueue()
	e.overdelete(items, wq)
	for _, w := range wq.order {
		e.pend.shipped[wqSig(w.Dest, w.Tuple)] = true
	}
	return wq.order
}

// CompleteRetract runs the repair phase over the accumulated
// over-deletion state: shadow revival, restricted re-derivation, and
// aggregate recomputation, iterating while aggregate heads keep
// vanishing. It returns the additional withdrawals those cascades
// produced (to be shipped like Begin's).
func (e *Engine) CompleteRetract() []Withdrawal {
	if e.pend == nil || e.pend.empty() {
		e.pend = nil
		return nil
	}
	wq := newWithdrawalQueue()
	for round := 0; round < retractRounds; round++ {
		p := e.pend
		e.pend = nil
		if p == nil || p.empty() {
			break
		}
		e.reviveShadows(p.groups)
		if len(p.deleted) > 0 {
			e.rederiveDeleted(p)
		}
		var vanished []retractItem
		if len(p.dirty) > 0 {
			e.recomputeAggRules(p.dirty, func(dead data.Tuple) {
				vanished = append(vanished, retractItem{t: dead, mode: retractDeriv})
			})
		}
		if len(vanished) > 0 {
			// Cascade the vanished aggregate heads; this may repopulate
			// e.pend for the next repair round.
			e.overdelete(vanished, wq)
			if e.pend != nil {
				for _, w := range wq.order {
					e.pend.shipped[wqSig(w.Dest, w.Tuple)] = true
				}
			}
		}
	}
	// A later repair round's cascade can withdraw a head an earlier
	// round's re-derivation already buffered in e.exports. The buffered
	// export would ship after the withdrawal and resurrect the tuple at
	// the destination with no future withdrawal to remove it — drop any
	// export this repair also decided to withdraw.
	if len(wq.order) > 0 && len(e.exports) > 0 {
		drop := make(map[string]bool, len(wq.order))
		for _, w := range wq.order {
			drop[wqSig(w.Dest, w.Tuple)] = true
		}
		kept := e.exports[:0]
		for _, ex := range e.exports {
			if !drop[wqSig(ex.Dest, ex.Tuple)] {
				kept = append(kept, ex)
			}
		}
		e.exports = kept
	}
	return wq.order
}

// pruneGroup identifies one aggregate-selection group touched by a
// deletion, carrying the group-column values needed to recompute its
// best.
type pruneGroup struct {
	ps   *pruneSpec
	pred string
	gk   string
	vals []data.Value
}

// overdelete walks the cone of influence of the retraction items,
// deleting unsupported rows and accumulating onto e.pend: the deleted
// tuple keys, the aggregate rules needing recomputation, and the prune
// groups needing a best reset. Withdrawals for exported heads go to wq.
func (e *Engine) overdelete(items []retractItem, wq *withdrawalQueue) {
	if e.pend == nil {
		e.pend = newRetractPending()
	}
	pend := e.pend
	work := append([]retractItem(nil), items...)
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		t := it.t
		key := t.Key()
		if pend.deleted[key] {
			continue
		}
		ps := e.prunes[t.Pred]
		tbl, ok := e.tables[t.Pred]
		var en *Entry
		if ok {
			en = tbl.Get(t)
		}
		if en == nil {
			// Not stored: possibly a prune-shadowed candidate; remove the
			// retracted support from the shadow row.
			if ps != nil {
				e.retractShadow(ps, t, it)
			}
			continue
		}
		switch it.mode {
		case retractForce:
			en.localSupport = false
			en.origins = nil
		case retractDeriv:
			en.localSupport = false
		case retractOrigin:
			delete(en.origins, it.origin)
		}
		if en.supported() {
			continue // other support keeps the row alive
		}
		tbl.Delete(t)
		pend.deleted[key] = true
		e.Stats.Retracted++
		e.notify(t, UpdateRetracted)
		if ps != nil {
			// ValueKey embeds the predicate (and asserter), so group keys
			// never collide across pruned predicates.
			gk := t.ValueKey(ps.keyCols)
			if _, seen := pend.groups[gk]; !seen {
				vals := make([]data.Value, len(ps.keyCols))
				for i, c := range ps.keyCols {
					vals[i] = t.Args[c]
				}
				pend.groups[gk] = pruneGroup{ps: ps, pred: t.Pred, gk: gk, vals: vals}
			}
		}
		for _, ref := range e.byPred[t.Pred] {
			if ref.rule.agg != nil {
				pend.dirty[ref.rule.label] = true
			}
		}
		if dl, ok := e.deps[key]; ok {
			for _, tgt := range dl.order {
				if tgt.dest == e.self {
					work = append(work, retractItem{t: tgt.head, mode: retractDeriv})
				} else {
					wq.add(tgt.dest, tgt.head)
				}
			}
			delete(e.deps, key)
		}
	}
}

// retractShadow removes one support source from a prune-shadowed
// candidate, dropping the row when none remains.
func (e *Engine) retractShadow(ps *pruneSpec, t data.Tuple, it retractItem) {
	gk := t.ValueKey(ps.keyCols)
	rows, ok := ps.shadow[gk]
	if !ok {
		return
	}
	key := t.Key()
	row, ok := rows[key]
	if !ok {
		return
	}
	switch it.mode {
	case retractForce:
		row.localSupport = false
		row.origins = nil
	case retractDeriv:
		row.localSupport = false
	case retractOrigin:
		delete(row.origins, it.origin)
	}
	if !row.localSupport && len(row.origins) == 0 {
		delete(rows, key)
		if len(rows) == 0 {
			delete(ps.shadow, gk)
		}
		return
	}
	rows[key] = row
}

// reviveShadows resets the installed best of every touched prune group
// from the surviving rows and re-admits the group's shadow candidates,
// which re-enter the normal insert path (and the evaluation queue) now
// that the bar they failed against is gone.
func (e *Engine) reviveShadows(groups map[string]pruneGroup) {
	keys := make([]string, 0, len(groups))
	for gk := range groups {
		keys = append(keys, gk)
	}
	sort.Strings(keys)
	for _, gk := range keys {
		g := groups[gk]
		ps := g.ps
		// Recompute the group's best over surviving live rows. Lookup
		// matches on the group columns only; filter to the exact group
		// (ValueKey also covers the asserter, as insert's grouping does).
		delete(ps.best, gk)
		if tbl, ok := e.tables[g.pred]; ok {
			for _, en := range tbl.Lookup(ps.keyCols, g.vals, e.now) {
				if en.Tuple.ValueKey(ps.keyCols) != gk {
					continue
				}
				val := en.Tuple.Args[ps.col]
				best, has := ps.best[gk]
				if !has || (ps.min && val.Compare(best) < 0) || (!ps.min && val.Compare(best) > 0) {
					ps.best[gk] = val
				}
			}
		}
		rows := ps.shadow[gk]
		if len(rows) > 0 {
			revived := make([]shadowRow, 0, len(rows))
			for _, row := range rows {
				revived = append(revived, row)
			}
			// Revive best-first (by the pruned column, then key for
			// determinism): the winning candidate installs immediately and
			// re-shadows the rest, instead of storing and re-propagating a
			// whole improving sequence.
			sort.Slice(revived, func(i, j int) bool {
				ci := revived[i].tuple.Args[ps.col].Compare(revived[j].tuple.Args[ps.col])
				if ci != 0 {
					if ps.min {
						return ci < 0
					}
					return ci > 0
				}
				return revived[i].tuple.Key() < revived[j].tuple.Key()
			})
			delete(ps.shadow, gk)
			for _, row := range revived {
				e.insertWithSupport(row.tuple, row.ann, row.localSupport, row.origins)
			}
		}
		if ps.lossy[gk] {
			// The bounded shadow evicted candidates from this group: what
			// survives in the shadow is not the full alternative set, so
			// re-derive the group's candidates from live state (restricted
			// to this group) and let the prune re-rank them.
			delete(ps.lossy, gk)
			e.rederiveGroup(g)
		}
	}
}

// rederiveGroup is the shadow-eviction revival fallback: every
// non-aggregate rule producing the pruned predicate re-evaluates with
// emit restricted to local heads of group g, re-entering the insert
// path where each candidate installs or re-shadows. It runs serially —
// eviction-miss revivals are rare — and deterministically.
func (e *Engine) rederiveGroup(g pruneGroup) {
	e.restrict = &restrictState{pred: g.pred, gk: g.gk, keyCols: g.ps.keyCols}
	for _, r := range e.rules {
		if r.agg == nil && r.headPred == g.pred {
			e.evalFull(r, nil)
		}
	}
	e.restrict = nil
}

// insertWithSupport stores a tuple carrying explicit support bookkeeping
// (shadow revival). It runs the same prune + storage + queue path as
// insertFrom, including the stored-live bypass (see insertFrom).
func (e *Engine) insertWithSupport(t data.Tuple, ann Annotation, localSupport bool, origins map[string]bool) {
	if ps, ok := e.prunes[t.Pred]; ok && !e.storedLive(t) {
		gk := t.ValueKey(ps.keyCols)
		val := t.Args[ps.col]
		if best, ok := ps.best[gk]; ok {
			c := val.Compare(best)
			if (ps.min && c >= 0) || (!ps.min && c <= 0) {
				e.Stats.TuplesDropped++
				ps.addShadowRow(gk, shadowRow{tuple: t, ann: ann, localSupport: localSupport, origins: origins})
				return
			}
		}
		ps.best[gk] = val
		ps.dropShadow(gk, t)
	}
	tbl := e.table(t.Pred)
	entry, replaced, status := tbl.InsertFull(t, ann, e.now)
	if localSupport {
		entry.localSupport = true
	}
	for o := range origins {
		entry.addSupport(o)
	}
	switch status {
	case InsertNew, InsertReplaced:
		e.Stats.TuplesStored++
		e.queue = append(e.queue, entry)
		if replaced != nil {
			e.notify(replaced.Tuple, UpdateRetracted)
		}
		e.notify(t, UpdateAdded)
	case InsertDuplicate:
		merged, changed := e.hook.Merge(entry.Ann, ann)
		entry.Ann = merged
		if changed {
			e.Stats.Merges++
			e.queue = append(e.queue, entry)
			e.notify(t, UpdateAnnotation)
		}
	}
}

// addShadowRow merges a full shadow row (revival path) into the group's
// shadow.
func (ps *pruneSpec) addShadowRow(gk string, row shadowRow) {
	rows, ok := ps.shadow[gk]
	if !ok {
		rows = make(map[string]shadowRow)
		ps.shadow[gk] = rows
	}
	key := row.tuple.Key()
	if old, ok := rows[key]; ok {
		old.localSupport = old.localSupport || row.localSupport
		for o := range row.origins {
			if old.origins == nil {
				old.origins = make(map[string]bool)
			}
			old.origins[o] = true
		}
		rows[key] = old
		return
	}
	rows[key] = row
	ps.enforceCap(gk, rows)
}

// rederiveDeleted is DRed's re-derivation phase: every non-aggregate
// rule is re-evaluated with emit restricted to the deleted set. Tuples
// with an alternate derivation are re-established (and queued, so
// downstream consequences re-propagate); previously withdrawn exports
// that are still derivable are re-shipped to their destinations.
//
// The phase shards like RunToFixpoint's waves: rules are evaluated
// read-only on up to Config.Shards workers (the shard unit here is the
// rule — each rule's full evaluation is one independent read-only
// pass), then the collected firings commit in rule order under the
// rederive filter, so the repair is bit-identical for every shard
// count. The over-delete walk itself stays serial: its per-entry
// support arithmetic (localSupport / origins mutation) is
// order-dependent, and the walk is index lookups, not rule evaluation —
// there is nothing expensive to parallelize.
func (e *Engine) rederiveDeleted(p *retractPending) {
	var rules []*compiledRule
	for _, r := range e.rules {
		if r.agg == nil {
			rules = append(rules, r)
		}
	}
	fired := make([][]pending, len(rules))
	if e.shards > 1 && len(rules) > 1 {
		workers := e.shards
		if workers > len(rules) {
			workers = len(rules)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(rules); i += workers {
					e.evalFull(rules[i], &fired[i])
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i, r := range rules {
			e.evalFull(r, &fired[i])
		}
	}
	e.rederive = &rederiveState{deleted: p.deleted, shipped: p.shipped}
	for i := range fired {
		for _, pd := range fired[i] {
			e.emit(pd.r, pd.head, pd.dest, pd.body)
		}
	}
	e.rederive = nil
}
