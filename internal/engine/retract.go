package engine

import (
	"sort"
	"sync"

	"provnet/internal/data"
)

// Retraction: the engine half of live link churn. Deleting a base tuple
// (a cut link) must withdraw everything derived from it, across nodes,
// without restarting the computation. The implementation is a
// delete-and-rederive (DRed) variant over the dependency index recorded
// at rule-firing time, split into two phases so the scheduler can drain
// the distributed withdrawal wave before any repair propagates:
//
//   - BeginRetract* (over-delete): walk the cone of influence of the
//     retracted tuples through the dependency index, deleting local
//     heads and collecting Withdrawals for exported ones. The touched
//     state (deleted keys, dirty aggregates, relaxed prune groups,
//     shipped withdrawals) accumulates on the engine.
//   - CompleteRetract (repair): once no withdrawal is in flight,
//     aggregate-selection groups re-admit the shadow candidates the
//     prune had rejected, every non-aggregate rule re-evaluates
//     restricted to the deleted set (alternate derivations re-establish
//     survivors locally and re-ship previously withdrawn exports), and
//     touched aggregates recompute from live state — heads whose groups
//     vanished cascade back through over-deletion.
//
// The phase split matters in a network: completing a node's repair while
// a neighbor's withdrawal is still in flight briefly revives routes the
// neighbor is about to withdraw (zombie routes), amplifying churn
// traffic. The scheduler (internal/core) ships Begin's withdrawals hop
// by hop until the wave quiesces, then completes every node. The
// single-call forms (RetractFacts, RetractImported, RetractInbound)
// compose both phases for single-engine use.
//
// Cross-node alternate derivations are handled by per-entry support
// tracking (Entry.localSupport / the origin set): a tuple shipped by two
// senders survives the retraction of one.
//
// All bookkeeping sets key on structural hashes (plus interned
// destination ids) with equality chains — see hashsets.go — never on
// materialized Key() strings.

// Withdrawal is a retraction addressed to another node: a previously
// exported derivation that no longer holds and that the destination must
// now withdraw (losing this node's support for it).
type Withdrawal struct {
	Dest  string
	Tuple data.Tuple
}

// depTarget is one derived head recorded as reachable from a body tuple.
// sig caches the (interned dest id, head hash) pair used for dedup.
type depTarget struct {
	head data.Tuple
	dest string
	sig  destTupleKey
}

// depEntry is the dependency list of one body tuple: an
// insertion-ordered, deduplicated set of depTargets. Insertion order
// keeps retraction cascades deterministic. Short lists (the common case)
// dedup by a linear sig scan; past depSeenLinear targets a seen map
// ((dest id, head hash) → indices into order) takes over. Either way the
// sig match falls back to head equality.
type depEntry struct {
	body  data.Tuple
	order []depTarget
	seen  map[destTupleKey][]int32
}

// depSeenLinear is the order length beyond which a depEntry builds its
// seen map instead of scanning linearly.
const depSeenLinear = 8

// recordDep notes the dependency edge body → (head, dest) of a rule
// firing, the raw material of retraction cascades. The caller hoists the
// head hash and interned destination id out of the per-body-atom loop;
// the body AnnTuple usually carries its entry's cached hash.
func (e *Engine) recordDep(b AnnTuple, head data.Tuple, dest string, sig destTupleKey) {
	body := b.Tuple
	h := b.hash
	if h == 0 {
		h = body.Hash()
	}
	var de *depEntry
	for _, c := range e.deps[h] {
		if c.body.Equal(body) {
			de = c
			break
		}
	}
	if de == nil {
		// Entries come from a chunked arena: one malloc per 256 entries
		// instead of one each. Dropped entries keep their chunk alive until
		// every entry in it is unreferenced — the same tradeoff the table's
		// Entry arena makes.
		if len(e.depEntryArena) == 0 {
			e.depEntryArena = make([]depEntry, 256)
		}
		de = &e.depEntryArena[0]
		e.depEntryArena = e.depEntryArena[1:]
		de.body = body
		e.deps[h] = append(e.deps[h], de)
		e.ndeps++
	}
	if de.seen == nil {
		for i := range de.order {
			if de.order[i].sig == sig && de.order[i].head.Equal(head) {
				return
			}
		}
	} else {
		for _, i := range de.seen[sig] {
			if de.order[i].head.Equal(head) {
				return
			}
		}
	}
	de.order = append(de.order, depTarget{head: head, dest: dest, sig: sig})
	if de.seen != nil {
		de.seen[sig] = append(de.seen[sig], int32(len(de.order)-1))
	} else if len(de.order) > depSeenLinear {
		de.seen = make(map[destTupleKey][]int32, len(de.order))
		for i := range de.order {
			s := de.order[i].sig
			de.seen[s] = append(de.seen[s], int32(i))
		}
	}
}

// dropDeps removes and returns body tuple t's dependency entry (nil when
// absent).
func (e *Engine) dropDeps(t data.Tuple) *depEntry {
	h := t.Hash()
	bucket := e.deps[h]
	for i, c := range bucket {
		if c.body.Equal(t) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(e.deps, h)
			} else {
				e.deps[h] = bucket
			}
			e.ndeps--
			return c
		}
	}
	return nil
}

// withdrawalQueue accumulates outbound retractions in deterministic
// order, deduplicated by (destination, tuple).
type withdrawalQueue struct {
	order []Withdrawal
	seen  *destTupleSet
}

func newWithdrawalQueue() *withdrawalQueue {
	return &withdrawalQueue{seen: newDestTupleSet()}
}

func (wq *withdrawalQueue) add(e *Engine, dest string, t data.Tuple) {
	if !wq.seen.add(e, dest, t) {
		return
	}
	wq.order = append(wq.order, Withdrawal{Dest: dest, Tuple: t})
}

// retractPending is the over-deletion state accumulated between
// BeginRetract* calls and the CompleteRetract that repairs it.
type retractPending struct {
	// deleted tuples removed from this node's tables.
	deleted *tupleSet
	// dirty aggregate rule labels needing recomputation.
	dirty map[string]bool
	// groups are the aggregate-selection groups whose installed optimum
	// may have relaxed, in first-touched order (groupSeen dedups).
	groups    []pruneGroup
	groupSeen map[*pruneGroupState]bool
	// shipped tracks (dest, tuple) withdrawals handed to the scheduler;
	// a re-derivation during repair re-ships those exports.
	shipped *destTupleSet
}

func newRetractPending() *retractPending {
	return &retractPending{
		deleted:   newTupleSet(),
		dirty:     make(map[string]bool),
		groupSeen: make(map[*pruneGroupState]bool),
		shipped:   newDestTupleSet(),
	}
}

func (p *retractPending) empty() bool {
	return p.deleted.len() == 0 && len(p.dirty) == 0 && len(p.groups) == 0
}

// touchGroup records an aggregate-selection group as relaxed.
func (p *retractPending) touchGroup(ps *pruneSpec, g *pruneGroupState) {
	if p.groupSeen[g] {
		return
	}
	p.groupSeen[g] = true
	p.groups = append(p.groups, pruneGroup{ps: ps, g: g})
}

// rederiveState restricts emit while the DRed repair pass runs.
type rederiveState struct {
	deleted *tupleSet
	shipped *destTupleSet
}

// restrictState restricts emit to local heads of one aggregate-selection
// group while the shadow-eviction revival fallback re-derives the
// candidates a bounded shadow dropped. Mutually exclusive with
// rederiveState: revival runs before the DRed re-derivation phase.
type restrictState struct {
	ps *pruneSpec
	g  *pruneGroupState
}

// retractMode distinguishes which support a retraction removes.
type retractMode uint8

const (
	// retractForce deletes the row outright (explicit fact retraction:
	// CutLink, SetLink, Driver.Retract).
	retractForce retractMode = iota
	// retractDeriv removes the row's local-derivation support (a cascade
	// step); the row survives while remote origins remain.
	retractDeriv
	// retractOrigin removes one remote sender's support (an inbound
	// retraction frame); the row survives while other support remains.
	retractOrigin
)

type retractItem struct {
	t      data.Tuple
	mode   retractMode
	origin string
}

// retractRounds caps the repair's delete/revive/rederive/recompute
// iteration. Real programs converge in a handful of rounds; the cap cuts
// pathological cycles short, leaving an over-deleted state that normal
// re-propagation heals.
const retractRounds = 100

// InboundRetraction is one (sender, tuple) withdrawal received off the
// wire.
type InboundRetraction struct {
	From  string
	Tuple data.Tuple
}

// RetractFacts removes tuples from this node outright — the engine half
// of CutLink/SetLink — cascading through everything derived from them.
// Both phases run back to back; the returned withdrawals must be shipped
// to their destination nodes, which apply them via RetractInbound.
func (e *Engine) RetractFacts(tuples ...data.Tuple) []Withdrawal {
	ws := e.BeginRetractFacts(tuples...)
	return append(ws, e.CompleteRetract()...)
}

// RetractImported applies an inbound retraction from a remote sender,
// running both phases back to back: each tuple loses that sender's
// support and is deleted (with cascade) only when no local derivation or
// other origin still supports it.
func (e *Engine) RetractImported(from string, tuples []data.Tuple) []Withdrawal {
	items := make([]InboundRetraction, len(tuples))
	for i, t := range tuples {
		items[i] = InboundRetraction{From: from, Tuple: t}
	}
	return e.RetractInbound(items)
}

// RetractInbound applies a batch of inbound retractions (possibly from
// several senders), running both phases back to back.
func (e *Engine) RetractInbound(items []InboundRetraction) []Withdrawal {
	ws := e.BeginRetractInbound(items)
	return append(ws, e.CompleteRetract()...)
}

// BeginRetractFacts is the over-delete phase for explicit fact
// retraction.
func (e *Engine) BeginRetractFacts(tuples ...data.Tuple) []Withdrawal {
	items := make([]retractItem, len(tuples))
	for i, t := range tuples {
		items[i] = retractItem{t: t, mode: retractForce}
	}
	return e.beginRetract(items)
}

// BeginRetractInbound is the over-delete phase for inbound withdrawals.
func (e *Engine) BeginRetractInbound(items []InboundRetraction) []Withdrawal {
	ri := make([]retractItem, len(items))
	for i, it := range items {
		ri[i] = retractItem{t: it.Tuple, mode: retractOrigin, origin: it.From}
	}
	return e.beginRetract(ri)
}

// HasPendingRetract reports whether over-deleted state awaits
// CompleteRetract.
func (e *Engine) HasPendingRetract() bool {
	return e.pend != nil && !e.pend.empty()
}

func (e *Engine) beginRetract(items []retractItem) []Withdrawal {
	if e.pend == nil {
		e.pend = newRetractPending()
	}
	wq := newWithdrawalQueue()
	e.overdelete(items, wq)
	for _, w := range wq.order {
		e.pend.shipped.add(e, w.Dest, w.Tuple)
	}
	return wq.order
}

// CompleteRetract runs the repair phase over the accumulated
// over-deletion state: shadow revival, restricted re-derivation, and
// aggregate recomputation, iterating while aggregate heads keep
// vanishing. It returns the additional withdrawals those cascades
// produced (to be shipped like Begin's).
func (e *Engine) CompleteRetract() []Withdrawal {
	if e.pend == nil || e.pend.empty() {
		e.pend = nil
		return nil
	}
	wq := newWithdrawalQueue()
	for round := 0; round < retractRounds; round++ {
		p := e.pend
		e.pend = nil
		if p == nil || p.empty() {
			break
		}
		e.reviveShadows(p.groups)
		if p.deleted.len() > 0 {
			e.rederiveDeleted(p)
		}
		var vanished []retractItem
		if len(p.dirty) > 0 {
			e.recomputeAggRules(p.dirty, func(dead data.Tuple) {
				vanished = append(vanished, retractItem{t: dead, mode: retractDeriv})
			})
		}
		if len(vanished) > 0 {
			// Cascade the vanished aggregate heads; this may repopulate
			// e.pend for the next repair round.
			e.overdelete(vanished, wq)
			if e.pend != nil {
				for _, w := range wq.order {
					e.pend.shipped.add(e, w.Dest, w.Tuple)
				}
			}
		}
	}
	// A later repair round's cascade can withdraw a head an earlier
	// round's re-derivation already buffered in e.exports. The buffered
	// export would ship after the withdrawal and resurrect the tuple at
	// the destination with no future withdrawal to remove it — drop any
	// export this repair also decided to withdraw.
	if len(wq.order) > 0 && len(e.exports) > 0 {
		kept := e.exports[:0]
		for _, ex := range e.exports {
			if !wq.seen.has(e, ex.Dest, ex.Tuple) {
				kept = append(kept, ex)
			}
		}
		e.exports = kept
	}
	return wq.order
}

// pruneGroup pairs an aggregate-selection spec with one of its touched
// groups during a deletion or expiry sweep.
type pruneGroup struct {
	ps *pruneSpec
	g  *pruneGroupState
}

// overdelete walks the cone of influence of the retraction items,
// deleting unsupported rows and accumulating onto e.pend: the deleted
// tuples, the aggregate rules needing recomputation, and the prune
// groups needing a best reset. Withdrawals for exported heads go to wq.
func (e *Engine) overdelete(items []retractItem, wq *withdrawalQueue) {
	if e.pend == nil {
		e.pend = newRetractPending()
	}
	pend := e.pend
	work := append([]retractItem(nil), items...)
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		t := it.t
		if pend.deleted.has(t) {
			continue
		}
		ps := e.prunes[t.Pred]
		tbl, ok := e.tables[t.Pred]
		var en *Entry
		if ok {
			en = tbl.Get(t)
		}
		if en == nil {
			// Not stored: possibly a prune-shadowed candidate; remove the
			// retracted support from the shadow row.
			if ps != nil {
				e.retractShadow(ps, t, it)
			}
			continue
		}
		switch it.mode {
		case retractForce:
			en.localSupport = false
			en.clearOrigins()
		case retractDeriv:
			en.localSupport = false
		case retractOrigin:
			en.dropOrigin(it.origin)
		}
		if en.supported() {
			continue // other support keeps the row alive
		}
		tbl.Delete(t)
		pend.deleted.add(t)
		e.Stats.Retracted++
		e.notify(t, UpdateRetracted)
		if ps != nil {
			// The group hash embeds the predicate (and asserter), so
			// groups never collide across pruned predicates.
			pend.touchGroup(ps, ps.group(t))
		}
		for _, ref := range e.byPred[t.Pred] {
			if ref.rule.agg != nil {
				pend.dirty[ref.rule.label] = true
			}
		}
		if de := e.dropDeps(t); de != nil {
			for _, tgt := range de.order {
				if tgt.dest == e.self {
					work = append(work, retractItem{t: tgt.head, mode: retractDeriv})
				} else {
					wq.add(e, tgt.dest, tgt.head)
				}
			}
		}
	}
}

// retractShadow removes one support source from a prune-shadowed
// candidate, dropping the row when none remains.
func (e *Engine) retractShadow(ps *pruneSpec, t data.Tuple, it retractItem) {
	g := ps.findGroup(t)
	if g == nil {
		return
	}
	h, i, ok := g.findShadow(t)
	if !ok {
		return
	}
	row := g.shadow[h][i]
	switch it.mode {
	case retractForce:
		row.localSupport = false
		row.origins = nil
	case retractDeriv:
		row.localSupport = false
	case retractOrigin:
		delete(row.origins, it.origin)
	}
	if !row.localSupport && len(row.origins) == 0 {
		g.removeShadowAt(h, i)
		ps.maybeDrop(g)
		return
	}
	g.shadow[h][i] = row
}

// reviveShadows resets the installed best of every touched prune group
// from the surviving rows and re-admits the group's shadow candidates,
// which re-enter the normal insert path (and the evaluation queue) now
// that the bar they failed against is gone. Groups process in a
// deterministic order (predicate, asserter, group values).
func (e *Engine) reviveShadows(groups []pruneGroup) {
	sorted := append([]pruneGroup(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.ps.pred != b.ps.pred {
			return a.ps.pred < b.ps.pred
		}
		if a.g.asserter != b.g.asserter {
			return a.g.asserter < b.g.asserter
		}
		n := len(a.g.vals)
		if len(b.g.vals) < n {
			n = len(b.g.vals)
		}
		for k := 0; k < n; k++ {
			if c := a.g.vals[k].Compare(b.g.vals[k]); c != 0 {
				return c < 0
			}
		}
		return len(a.g.vals) < len(b.g.vals)
	})
	for _, pg := range sorted {
		ps, g := pg.ps, pg.g
		// Recompute the group's best over surviving live rows. Lookup
		// matches on the group columns only; filter to the exact group
		// (the group identity also covers the asserter, as insert's
		// grouping does).
		g.hasBest = false
		g.best = data.Value{}
		if tbl, ok := e.tables[ps.pred]; ok {
			for _, en := range tbl.Lookup(ps.keyCols, g.vals, e.now) {
				if !g.matches(en.Tuple, ps.keyCols) {
					continue
				}
				val := en.Tuple.Args[ps.col]
				if !g.hasBest || (ps.min && val.Compare(g.best) < 0) || (!ps.min && val.Compare(g.best) > 0) {
					g.best = val
					g.hasBest = true
				}
			}
		}
		if g.nshadow > 0 {
			revived := make([]shadowRow, 0, g.nshadow)
			for _, rows := range g.shadow {
				revived = append(revived, rows...)
			}
			// Revive best-first (by the pruned column, then tuple order
			// for determinism): the winning candidate installs immediately
			// and re-shadows the rest, instead of storing and
			// re-propagating a whole improving sequence.
			sort.Slice(revived, func(i, j int) bool {
				ci := revived[i].tuple.Args[ps.col].Compare(revived[j].tuple.Args[ps.col])
				if ci != 0 {
					if ps.min {
						return ci < 0
					}
					return ci > 0
				}
				return tupleLess(revived[i].tuple, revived[j].tuple)
			})
			g.shadow = nil
			g.nshadow = 0
			for _, row := range revived {
				e.insertWithSupport(row.tuple, row.ann, row.localSupport, row.origins)
			}
		}
		if g.lossy {
			// The bounded shadow evicted candidates from this group: what
			// survives in the shadow is not the full alternative set, so
			// re-derive the group's candidates from live state (restricted
			// to this group) and let the prune re-rank them.
			g.lossy = false
			e.rederiveGroup(pg)
		}
		ps.maybeDrop(g)
	}
}

// rederiveGroup is the shadow-eviction revival fallback: every
// non-aggregate rule producing the pruned predicate re-evaluates with
// emit restricted to local heads of group g, re-entering the insert
// path where each candidate installs or re-shadows. It runs serially —
// eviction-miss revivals are rare — and deterministically.
func (e *Engine) rederiveGroup(pg pruneGroup) {
	e.restrict = &restrictState{ps: pg.ps, g: pg.g}
	for _, r := range e.rules {
		if r.agg == nil && r.headPred == pg.ps.pred {
			e.evalFull(r, nil)
		}
	}
	e.restrict = nil
}

// insertWithSupport stores a tuple carrying explicit support bookkeeping
// (shadow revival). It runs the same prune + storage + queue path as
// insertFrom, including the stored-live bypass (see insertFrom).
func (e *Engine) insertWithSupport(t data.Tuple, ann Annotation, localSupport bool, origins map[string]bool) {
	if ps, ok := e.prunes[t.Pred]; ok && !e.storedLive(t) {
		g := ps.group(t)
		val := t.Args[ps.col]
		if g.hasBest {
			c := val.Compare(g.best)
			if (ps.min && c >= 0) || (!ps.min && c <= 0) {
				e.Stats.TuplesDropped++
				ps.addShadowRow(g, shadowRow{tuple: t, ann: ann, localSupport: localSupport, origins: origins})
				return
			}
		}
		g.best = val
		g.hasBest = true
		ps.dropShadow(g, t)
	}
	tbl := e.table(t.Pred)
	entry, replaced, status := tbl.InsertFull(t, ann, e.now)
	if localSupport {
		entry.localSupport = true
	}
	for o := range origins { //provlint:allow mapiter set union into entry supports; order cannot escape
		entry.addSupport(o)
	}
	switch status {
	case InsertNew, InsertReplaced:
		e.Stats.TuplesStored++
		e.queue = append(e.queue, entry)
		if replaced != nil {
			e.notify(replaced.Tuple, UpdateRetracted)
		}
		e.notify(t, UpdateAdded)
	case InsertDuplicate:
		merged, changed := e.hook.Merge(entry.Ann, ann)
		entry.Ann = merged
		if changed {
			e.Stats.Merges++
			e.queue = append(e.queue, entry)
			e.notify(t, UpdateAnnotation)
		}
	}
}

// addShadowRow merges a full shadow row (revival path) into the group's
// shadow.
func (ps *pruneSpec) addShadowRow(g *pruneGroupState, row shadowRow) {
	if g.shadow == nil {
		g.shadow = make(map[uint64][]shadowRow)
	}
	h := row.tuple.Hash()
	rows := g.shadow[h]
	for i, old := range rows {
		if old.tuple.Equal(row.tuple) {
			old.localSupport = old.localSupport || row.localSupport
			for o := range row.origins { //provlint:allow mapiter set union into the stored row; order cannot escape
				if old.origins == nil {
					old.origins = make(map[string]bool)
				}
				old.origins[o] = true
			}
			rows[i] = old
			return
		}
	}
	g.shadow[h] = append(rows, row)
	g.nshadow++
	ps.enforceCap(g)
}

// rederiveDeleted is DRed's re-derivation phase: every non-aggregate
// rule is re-evaluated with emit restricted to the deleted set. Tuples
// with an alternate derivation are re-established (and queued, so
// downstream consequences re-propagate); previously withdrawn exports
// that are still derivable are re-shipped to their destinations.
//
// The phase shards like RunToFixpoint's waves: rules are evaluated
// read-only on up to Config.Shards workers (the shard unit here is the
// rule — each rule's full evaluation is one independent read-only
// pass), then the collected firings commit in rule order under the
// rederive filter, so the repair is bit-identical for every shard
// count. The over-delete walk itself stays serial: its per-entry
// support arithmetic (localSupport / origin mutation) is
// order-dependent, and the walk is index lookups, not rule evaluation —
// there is nothing expensive to parallelize.
func (e *Engine) rederiveDeleted(p *retractPending) {
	var rules []*compiledRule
	for _, r := range e.rules {
		if r.agg == nil {
			rules = append(rules, r)
		}
	}
	fired := make([][]pending, len(rules))
	if e.shards > 1 && len(rules) > 1 {
		workers := e.shards
		if workers > len(rules) {
			workers = len(rules)
		}
		// Materialize worker scratches before spawning (single-threaded
		// mutation of the scratch list).
		for w := 0; w < workers; w++ {
			e.scratchFor(w)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc := e.scratches[w]
				for i := w; i < len(rules); i += workers {
					e.evalFullScratch(rules[i], &fired[i], sc)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i, r := range rules {
			e.evalFull(r, &fired[i])
		}
	}
	e.rederive = &rederiveState{deleted: p.deleted, shipped: p.shipped}
	for i := range fired {
		for _, pd := range fired[i] {
			e.emit(pd.r, pd.head, pd.headHash, pd.dest, pd.body)
		}
	}
	e.rederive = nil
}
