package engine

import (
	"testing"

	"provnet/internal/data"
	"provnet/internal/datalog"
)

// newNode builds an engine for node self with the given program source,
// localizing it first.
func newNode(t *testing.T, self, src string, authenticated bool) *Engine {
	t.Helper()
	prog, err := datalog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	loc, err := datalog.Localize(prog)
	if err != nil {
		t.Fatalf("localize: %v", err)
	}
	e := New(Config{Self: self, Authenticated: authenticated})
	if err := e.LoadProgram(loc); err != nil {
		t.Fatalf("load: %v", err)
	}
	return e
}

// runCluster drives a set of engines to a distributed fixpoint, delivering
// exports between them directly. It returns the number of messages
// exchanged.
func runCluster(t *testing.T, nodes map[string]*Engine) int {
	t.Helper()
	msgs := 0
	for round := 0; ; round++ {
		if round > 10000 {
			t.Fatal("cluster did not reach fixpoint")
		}
		progress := false
		for _, e := range nodes {
			for _, ex := range e.RunToFixpoint() {
				dst, ok := nodes[ex.Dest]
				if !ok {
					t.Fatalf("export to unknown node %q", ex.Dest)
				}
				if err := dst.InsertImported(ex.Tuple, nil); err != nil {
					t.Fatalf("import: %v", err)
				}
				msgs++
				progress = true
			}
		}
		if !progress {
			pending := false
			for _, e := range nodes {
				if e.Pending() {
					pending = true
				}
			}
			if !pending {
				return msgs
			}
		}
	}
}

func tupleStrings(ts []data.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

func wantTuples(t *testing.T, got []data.Tuple, want ...string) {
	t.Helper()
	gs := tupleStrings(got)
	if len(gs) != len(want) {
		t.Fatalf("got %d tuples %v, want %d %v", len(gs), gs, len(want), want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("tuple[%d] = %s, want %s", i, gs[i], want[i])
		}
	}
}

func TestSingleRuleLocalDerivation(t *testing.T) {
	e := newNode(t, "a", `r1 reachable(@S,D) :- link(@S,D).`, false)
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	exports := e.RunToFixpoint()
	if len(exports) != 0 {
		t.Fatalf("unexpected exports: %v", exports)
	}
	wantTuples(t, e.Tuples("reachable"), "reachable(a, b)")
}

func TestRuleIgnoresOtherLocations(t *testing.T) {
	e := newNode(t, "a", `r1 reachable(@S,D) :- link(@S,D).`, false)
	// A tuple located at b does not fire rules at a (it would never be
	// stored at a in a real run, but the engine must still not fire).
	e.InsertFact(data.NewTuple("link", data.Str("b"), data.Str("c")))
	e.RunToFixpoint()
	if n := e.Count("reachable"); n != 0 {
		t.Fatalf("reachable count = %d, want 0", n)
	}
}

func TestRemoteHeadBecomesExport(t *testing.T) {
	e := newNode(t, "a", `s linkD(@D,S) :- link(@S,D).`, false)
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	exports := e.RunToFixpoint()
	if len(exports) != 1 {
		t.Fatalf("exports = %v", exports)
	}
	if exports[0].Dest != "b" || exports[0].Tuple.String() != "linkD(b, a)" {
		t.Errorf("export = %+v", exports[0])
	}
	// The exported tuple is not stored locally.
	if e.Count("linkD") != 0 {
		t.Error("remote head must not be stored locally")
	}
}

func TestTransitiveClosureCluster(t *testing.T) {
	src := `
r1 reachable(@S,D) :- link(@S,D).
r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
`
	nodes := map[string]*Engine{}
	for _, n := range []string{"a", "b", "c"} {
		nodes[n] = newNode(t, n, src, false)
	}
	// The paper's example topology: link(a,b), link(a,c), link(b,c).
	nodes["a"].InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	nodes["a"].InsertFact(data.NewTuple("link", data.Str("a"), data.Str("c")))
	nodes["b"].InsertFact(data.NewTuple("link", data.Str("b"), data.Str("c")))
	runCluster(t, nodes)

	wantTuples(t, nodes["a"].Tuples("reachable"), "reachable(a, b)", "reachable(a, c)")
	wantTuples(t, nodes["b"].Tuples("reachable"), "reachable(b, c)")
	if nodes["c"].Count("reachable") != 0 {
		t.Error("c reaches nothing")
	}
}

func TestCyclicReachabilityTerminates(t *testing.T) {
	src := `
r1 reachable(@S,D) :- link(@S,D).
r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
`
	nodes := map[string]*Engine{}
	for _, n := range []string{"a", "b", "c"} {
		nodes[n] = newNode(t, n, src, false)
	}
	// A 3-cycle: a->b->c->a.
	nodes["a"].InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	nodes["b"].InsertFact(data.NewTuple("link", data.Str("b"), data.Str("c")))
	nodes["c"].InsertFact(data.NewTuple("link", data.Str("c"), data.Str("a")))
	runCluster(t, nodes)
	// Everyone reaches everyone (including themselves via the cycle).
	for _, n := range []string{"a", "b", "c"} {
		if got := nodes[n].Count("reachable"); got != 3 {
			t.Errorf("node %s reachable count = %d, want 3", n, got)
		}
	}
}

func TestAssignmentAndCondition(t *testing.T) {
	e := newNode(t, "a", `
r cost(@S,D,C2) :- link(@S,D,C), C2 = C * 2 + 1, C2 < 10.
`, false)
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b"), data.Int(3)))
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("c"), data.Int(7)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("cost"), "cost(a, b, 7)")
}

func TestBuiltinListFunctions(t *testing.T) {
	e := newNode(t, "a", `
r p(@S,D,P,N) :- link(@S,D), P = f_concat(S, f_init(D, D)), N = f_size(P), f_member(P, S) == 1.
`, false)
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("p"), "p(a, b, [a,b,b], 3)")
}

func TestJoinTwoAtoms(t *testing.T) {
	e := newNode(t, "a", `r tri(@S,B,C) :- edge(@S,B), edge2(@S,C), B != C.`, false)
	e.InsertFact(data.NewTuple("edge", data.Str("a"), data.Str("x")))
	e.InsertFact(data.NewTuple("edge2", data.Str("a"), data.Str("x")))
	e.InsertFact(data.NewTuple("edge2", data.Str("a"), data.Str("y")))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("tri"), "tri(a, x, y)")
}

func TestSelfJoinSamePredicate(t *testing.T) {
	e := newNode(t, "a", `r two(@S,X,Y) :- p(@S,X), p(@S,Y), X < Y.`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(1)))
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(2)))
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(3)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("two"), "two(a, 1, 2)", "two(a, 1, 3)", "two(a, 2, 3)")
}

func TestMinAggregate(t *testing.T) {
	e := newNode(t, "a", `sp spCost(@S,D,min<C>) :- path(@S,D,C).`, false)
	e.InsertFact(data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(5)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("spCost"), "spCost(a, b, 5)")
	// A better path replaces the aggregate row.
	e.InsertFact(data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(2)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("spCost"), "spCost(a, b, 2)")
	// A worse path changes nothing.
	e.InsertFact(data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(9)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("spCost"), "spCost(a, b, 2)")
	// Different group aggregates separately.
	e.InsertFact(data.NewTuple("path", data.Str("a"), data.Str("c"), data.Int(7)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("spCost"), "spCost(a, b, 2)", "spCost(a, c, 7)")
}

func TestCountAggregateDedup(t *testing.T) {
	e := newNode(t, "a", `c total(@S,count<*>) :- p(@S,X).`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(1)))
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(2)))
	// Duplicate insert must not double count.
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(2)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("total"), "total(a, 2)")
}

func TestSumAndMaxAggregates(t *testing.T) {
	e := newNode(t, "a", `
s1 totalCost(@S,sum<C>) :- q(@S,D,C).
s2 maxCost(@S,max<C>) :- q(@S,D,C).
`, false)
	e.InsertFact(data.NewTuple("q", data.Str("a"), data.Str("x"), data.Int(3)))
	e.InsertFact(data.NewTuple("q", data.Str("a"), data.Str("y"), data.Int(5)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("totalCost"), "totalCost(a, 8)")
	wantTuples(t, e.Tuples("maxCost"), "maxCost(a, 5)")
}

func TestAggregateSelectionPrunes(t *testing.T) {
	e := newNode(t, "a", `
aggSelection(path, keys(1,2), min, 3).
r p2(@S,D,C) :- path(@S,D,C).
`, false)
	e.InsertFact(data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(5)))
	e.RunToFixpoint()
	// Worse tuple dropped entirely.
	e.InsertFact(data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(9)))
	e.RunToFixpoint()
	if e.Stats.TuplesDropped != 1 {
		t.Errorf("dropped = %d, want 1", e.Stats.TuplesDropped)
	}
	if got := len(e.Tuples("path")); got != 1 {
		t.Errorf("path count = %d, want 1", got)
	}
	// Better tuple accepted.
	e.InsertFact(data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(2)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("p2"), "p2(a, b, 2)", "p2(a, b, 5)")
}

func TestKeyedTableReplacement(t *testing.T) {
	e := newNode(t, "a", `
materialize(route, infinity, infinity, keys(1,2)).
`, false)
	e.InsertFact(data.NewTuple("route", data.Str("a"), data.Str("b"), data.Int(1)))
	e.RunToFixpoint()
	e.InsertFact(data.NewTuple("route", data.Str("a"), data.Str("b"), data.Int(2)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("route"), "route(a, b, 2)")
}

func TestSoftStateExpiry(t *testing.T) {
	e := newNode(t, "a", `
materialize(event, 10, infinity, keys(1,2)).
`, false)
	e.SetNow(0)
	e.InsertFact(data.NewTuple("event", data.Str("a"), data.Int(1)))
	e.SetNow(5)
	e.InsertFact(data.NewTuple("event", data.Str("a"), data.Int(2)))
	e.RunToFixpoint()
	if e.Count("event") != 2 {
		t.Fatal("both events live at t=5")
	}
	e.Expire(12) // first event (created 0, ttl 10) dies
	if got := len(e.Tuples("event")); got != 1 {
		t.Fatalf("event count after expiry = %d, want 1", got)
	}
	e.Expire(20)
	if e.Count("event") != 0 {
		t.Fatal("all events expired")
	}
}

func TestSlidingWindowCount(t *testing.T) {
	// The diagnostics pattern of §3: count route changes over the past T
	// seconds; the count shrinks as events age out.
	e := newNode(t, "a", `
materialize(change, 10, infinity, keys(1,2)).
c changes(@S,count<*>) :- change(@S,X).
`, false)
	e.SetNow(0)
	e.InsertFact(data.NewTuple("change", data.Str("a"), data.Int(1)))
	e.InsertFact(data.NewTuple("change", data.Str("a"), data.Int(2)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("changes"), "changes(a, 2)")
	e.SetNow(5)
	e.InsertFact(data.NewTuple("change", data.Str("a"), data.Int(3)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("changes"), "changes(a, 3)")
	// At t=12 the first two changes expired; the window count drops to 1.
	e.Expire(12)
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("changes"), "changes(a, 1)")
	// At t=20 everything expired: the aggregate row disappears.
	e.Expire(20)
	e.RunToFixpoint()
	if e.Count("changes") != 0 {
		t.Fatalf("changes = %v", tupleStrings(e.Tuples("changes")))
	}
}

func TestTTLRefreshOnReinsert(t *testing.T) {
	e := newNode(t, "a", `materialize(hb, 10, infinity, keys(1)).`, false)
	e.SetNow(0)
	e.InsertFact(data.NewTuple("hb", data.Str("a")))
	e.SetNow(8)
	e.InsertFact(data.NewTuple("hb", data.Str("a"))) // refresh
	e.Expire(15)                                     // would expire original, not refreshed
	if e.Count("hb") != 1 {
		t.Fatal("refreshed soft state must survive")
	}
	e.Expire(19)
	if e.Count("hb") != 0 {
		t.Fatal("refreshed soft state expires at 18")
	}
}

func TestMaxSizeEviction(t *testing.T) {
	e := newNode(t, "a", `materialize(log, infinity, 2, keys(1,2)).`, false)
	for i := 0; i < 4; i++ {
		e.InsertFact(data.NewTuple("log", data.Str("a"), data.Int(int64(i))))
	}
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("log"), "log(a, 2)", "log(a, 3)")
}

func TestSeNDlogSaysMatching(t *testing.T) {
	src := `
At S:
  s1 reachable(S,D) :- link(S,D).
  s2 linkD(D,S)@D :- link(S,D).
  s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
`
	nodes := map[string]*Engine{}
	for _, n := range []string{"a", "b", "c"} {
		nodes[n] = newNode(t, n, src, true)
	}
	nodes["a"].InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	nodes["a"].InsertFact(data.NewTuple("link", data.Str("a"), data.Str("c")))
	nodes["b"].InsertFact(data.NewTuple("link", data.Str("b"), data.Str("c")))
	runCluster(t, nodes)

	// Node a derives reachable(a,b) and reachable(a,c) itself (rule s1),
	// and additionally imports reachable(a,c) derived at b via rule s3 and
	// asserted ("says") by b — the same fact under a different principal.
	wantTuples(t, nodes["a"].Tuples("reachable"),
		"a says reachable(a, b)", "a says reachable(a, c)", "b says reachable(a, c)")
	wantTuples(t, nodes["b"].Tuples("reachable"), "b says reachable(b, c)")
}

func TestSaysAtomRejectsLocalTuples(t *testing.T) {
	// An atom "W says p(...)" must not match unattributed tuples.
	e := newNode(t, "a", `At S: r q(S,W) :- W says p(S).`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"))) // no asserter
	e.RunToFixpoint()
	if e.Count("q") != 0 {
		t.Fatal("says atom matched an unattributed tuple")
	}
	// An attributed tuple matches and binds W.
	e.InsertFact(data.NewTuple("p", data.Str("a")).Says("mallory"))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("q"), "q(a, mallory)")
}

func TestLocalAtomRejectsForeignAssertions(t *testing.T) {
	e := newNode(t, "a", `At S: r q(S) :- p(S).`, true)
	e.InsertFact(data.NewTuple("p", data.Str("a")).Says("mallory"))
	e.RunToFixpoint()
	if e.Count("q") != 0 {
		t.Fatal("local atom matched a foreign assertion")
	}
	e.InsertFact(data.NewTuple("p", data.Str("a"))) // asserted by self
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("q"), "a says q(a)")
}

func TestConstantContextRestrictsRule(t *testing.T) {
	src := `At alice: r q(D)@D :- p(D).`
	a := newNode(t, "alice", src, true)
	b := newNode(t, "bob", src, true)
	a.InsertFact(data.NewTuple("p", data.Str("bob")))
	b.InsertFact(data.NewTuple("p", data.Str("alice")))
	ea := a.RunToFixpoint()
	eb := b.RunToFixpoint()
	if len(ea) != 1 || ea[0].Dest != "bob" {
		t.Errorf("alice exports = %v", ea)
	}
	if len(eb) != 0 {
		t.Errorf("bob must not run alice's rule: %v", eb)
	}
}

func TestBestPathProgram(t *testing.T) {
	src := `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3,4)).
materialize(bestPath, infinity, infinity, keys(1,2)).
aggSelection(path, keys(1,2), min, 5).

sp1 path(@S,D,D,P,C) :- link(@S,D,C), P = f_init(S,D).
sp2 path(@S,D,Z,P,C) :- link(@S,Z,C1), path(@Z,D,W,P2,C2), C = C1 + C2,
    f_member(P2,S) == 0, P = f_concat(S,P2).
sp3 spCost(@S,D,min<C>) :- path(@S,D,Z,P,C).
sp4 bestPath(@S,D,P,C) :- spCost(@S,D,C), path(@S,D,Z,P,C).
`
	nodes := map[string]*Engine{}
	for _, n := range []string{"a", "b", "c"} {
		nodes[n] = newNode(t, n, src, false)
	}
	// a->b cost 1, b->c cost 1, a->c cost 5: best a->c goes via b.
	nodes["a"].InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b"), data.Int(1)))
	nodes["b"].InsertFact(data.NewTuple("link", data.Str("b"), data.Str("c"), data.Int(1)))
	nodes["a"].InsertFact(data.NewTuple("link", data.Str("a"), data.Str("c"), data.Int(5)))
	runCluster(t, nodes)

	got := nodes["a"].Tuples("bestPath")
	found := false
	for _, bp := range got {
		if bp.Args[1].Str == "c" {
			found = true
			if bp.Args[3].AsInt() != 2 {
				t.Errorf("best a->c cost = %v, want 2 (%v)", bp.Args[3], bp)
			}
			if !bp.Args[2].Equal(data.Strings("a", "b", "c")) {
				t.Errorf("best a->c path = %v, want [a,b,c]", bp.Args[2])
			}
		}
	}
	if !found {
		t.Fatalf("no bestPath(a,c): %v", tupleStrings(got))
	}
}

// aggProvHook records Derive calls so aggregate provenance semantics can
// be asserted: min/max heads derive from the witnessing contribution,
// count/sum heads from every contribution.
type aggProvHook struct {
	NoProv
	derives map[string][]string // head string -> body tuple strings
}

func (h *aggProvHook) Derive(rule, node string, head data.Tuple, body []AnnTuple) Annotation {
	var bs []string
	for _, b := range body {
		bs = append(bs, b.Tuple.String())
	}
	h.derives[head.String()] = bs
	return nil
}

func TestAggregateProvenanceSemantics(t *testing.T) {
	hook := &aggProvHook{derives: map[string][]string{}}
	prog := datalog.MustParse(`
m minCost(@S,min<C>) :- q(@S,D,C).
c total(@S,count<*>) :- q(@S,D,C).
`)
	e := New(Config{Self: "a", Hook: hook})
	if err := e.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	e.InsertFact(data.NewTuple("q", data.Str("a"), data.Str("x"), data.Int(5)))
	e.InsertFact(data.NewTuple("q", data.Str("a"), data.Str("y"), data.Int(3)))
	e.RunToFixpoint()
	// min head derives from the single witnessing tuple (cost 3).
	mb := hook.derives["minCost(a, 3)"]
	if len(mb) != 1 || mb[0] != "q(a, y, 3)" {
		t.Errorf("min provenance = %v, want the witness q(a,y,3)", mb)
	}
	// count head derives from every contribution.
	cb := hook.derives["total(a, 2)"]
	if len(cb) != 2 {
		t.Errorf("count provenance = %v, want both contributions", cb)
	}
}

func TestLoadRejectsNonLocalizedProgram(t *testing.T) {
	prog := datalog.MustParse(`r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).`)
	e := New(Config{Self: "a"})
	if err := e.LoadProgram(prog); err == nil {
		t.Fatal("expected rejection of non-localized rule")
	}
}

func TestDuplicateInsertNoRequeue(t *testing.T) {
	e := newNode(t, "a", `r1 reachable(@S,D) :- link(@S,D).`, false)
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	e.RunToFixpoint()
	d1 := e.Stats.Derivations
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	e.RunToFixpoint()
	if e.Stats.Derivations != d1 {
		t.Errorf("duplicate insert re-fired rules: %d -> %d", d1, e.Stats.Derivations)
	}
}

func TestAnnotationOfAndPredicates(t *testing.T) {
	e := newNode(t, "a", `r1 reachable(@S,D) :- link(@S,D).`, false)
	tu := data.NewTuple("link", data.Str("a"), data.Str("b"))
	e.InsertFact(tu)
	e.RunToFixpoint()
	if e.AnnotationOf(tu) != nil {
		t.Error("NoProv annotation should be nil")
	}
	preds := e.Predicates()
	if len(preds) != 2 || preds[0] != "link" || preds[1] != "reachable" {
		t.Errorf("Predicates = %v", preds)
	}
}

func TestExpressionDivisionByZeroKillsBranch(t *testing.T) {
	e := newNode(t, "a", `r q(@S,C) :- p(@S,X), C = 10 / X.`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(0)))
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(2)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("q"), "q(a, 5)")
}

// TestInsertImportedBatch checks the batched import path: the whole delta
// is queued before the next semi-naive pass and derives exactly what
// per-tuple imports would.
func TestInsertImportedBatch(t *testing.T) {
	e := newNode(t, "a", `r1 reachable(@S,D) :- link(@S,D).`, false)
	batch := []Imported{
		{Tuple: data.NewTuple("link", data.Str("a"), data.Str("b"))},
		{Tuple: data.NewTuple("link", data.Str("a"), data.Str("c"))},
		{Tuple: data.NewTuple("link", data.Str("a"), data.Str("b"))}, // duplicate
	}
	if err := e.InsertImportedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if !e.Pending() {
		t.Fatal("batch must queue work")
	}
	if exports := e.RunToFixpoint(); len(exports) != 0 {
		t.Fatalf("unexpected exports %v", exports)
	}
	wantTuples(t, e.Tuples("reachable"),
		"reachable(a, b)", "reachable(a, c)")
	if err := e.InsertImportedBatch(nil); err != nil {
		t.Fatal("empty batch must be a no-op, got error")
	}
}
