package engine

import (
	"strconv"
	"strings"
	"sync"

	"provnet/internal/data"
)

// Entry is one stored tuple with its soft-state metadata and provenance
// annotation.
type Entry struct {
	Tuple   data.Tuple
	Ann     Annotation
	Created float64
	// TTL is the lifetime in seconds; <0 means infinite (hard state).
	TTL float64
	// Dead marks entries that were replaced or expired; indexes are
	// cleaned lazily.
	Dead bool

	// Support bookkeeping for retraction (live-network churn). A tuple
	// stays stored while any support remains: localSupport records that a
	// base insert or a local rule derivation produced it; origins records
	// the remote senders that shipped it. Retracting one support removes
	// only that support; the row is deleted when none is left.
	localSupport bool
	origins      map[string]bool
}

// addSupport records one support source: origin "" is local (base fact or
// rule derivation), anything else names the remote sender.
func (en *Entry) addSupport(origin string) {
	if origin == "" {
		en.localSupport = true
		return
	}
	if en.origins == nil {
		en.origins = make(map[string]bool)
	}
	en.origins[origin] = true
}

// supported reports whether any support remains.
func (en *Entry) supported() bool {
	return en.localSupport || len(en.origins) > 0
}

// ExpiresAt returns the expiry time, or +inf-like behaviour via ok=false
// for hard state.
func (en *Entry) ExpiresAt() (float64, bool) {
	if en.TTL < 0 {
		return 0, false
	}
	return en.Created + en.TTL, true
}

// InsertStatus describes the outcome of a Table.Insert.
type InsertStatus uint8

// Insert outcomes.
const (
	// InsertNew: the tuple was not present; stored.
	InsertNew InsertStatus = iota
	// InsertDuplicate: an identical tuple exists; the caller merges
	// annotations.
	InsertDuplicate
	// InsertReplaced: a different tuple shared the primary key and was
	// replaced (update semantics of keyed tables).
	InsertReplaced
)

// Table is a materialized soft-state relation: rows keyed by a primary key
// (a subset of columns, default all columns plus the asserter), with lazy
// secondary hash indexes for join lookups, per-row TTLs, and an optional
// size bound evicting the oldest rows (P2's materialize maxSize).
type Table struct {
	name    string
	keyCols []int // nil = whole tuple (including asserter)
	ttl     float64
	maxSize int

	rows map[string]*Entry
	// order tracks insertion order, for maxSize eviction and for
	// deterministic scan/index order (join results must not depend on
	// map iteration).
	order []*Entry
	// indexes: signature ("2,4") → value key → entries. With concurrent
	// set (the owning engine shards its waves), the lazy build happens
	// under mu: sharded evaluation probes tables from several read-only
	// workers at once, and the build is the one mutation that can happen
	// during a probe. All other writes occur in the serial commit and
	// maintenance phases, separated from eval by the wave barrier. A
	// serial engine leaves concurrent unset and skips the lock on the
	// probe hot path.
	concurrent bool
	mu         sync.Mutex
	indexes    map[string]map[string][]*Entry
}

// NewTable creates a table. keyCols are 0-based primary key columns (nil
// means identity key); ttl<0 means hard state; maxSize<0 means unbounded.
func NewTable(name string, keyCols []int, ttl float64, maxSize int) *Table {
	return &Table{
		name:    name,
		keyCols: keyCols,
		ttl:     ttl,
		maxSize: maxSize,
		rows:    make(map[string]*Entry),
		indexes: make(map[string]map[string][]*Entry),
	}
}

// Name returns the predicate name.
func (t *Table) Name() string { return t.name }

// TTL returns the declared soft-state lifetime (<0 = infinite).
func (t *Table) TTL() float64 { return t.ttl }

func (t *Table) pkey(tu data.Tuple) string {
	if t.keyCols == nil {
		return tu.Key()
	}
	return tu.ValueKey(t.keyCols)
}

// Insert stores tu. If an identical tuple exists, it returns the existing
// entry with InsertDuplicate. If a different tuple shares the primary key,
// the old row is replaced (InsertReplaced).
func (t *Table) Insert(tu data.Tuple, ann Annotation, now float64) (*Entry, InsertStatus) {
	en, _, status := t.InsertFull(tu, ann, now)
	return en, status
}

// InsertFull is Insert, additionally returning the row displaced by a
// primary-key replacement (nil otherwise), so callers can report the
// removal to table-update observers.
func (t *Table) InsertFull(tu data.Tuple, ann Annotation, now float64) (*Entry, *Entry, InsertStatus) {
	pk := t.pkey(tu)
	if old, ok := t.rows[pk]; ok && !old.Dead {
		if old.Tuple.Equal(tu) {
			// Refresh soft state: a re-inserted tuple restarts its TTL.
			old.Created = now
			return old, nil, InsertDuplicate
		}
		old.Dead = true
		entry := &Entry{Tuple: tu, Ann: ann, Created: now, TTL: t.ttl}
		t.rows[pk] = entry
		t.order = append(t.order, entry)
		t.indexInsert(entry)
		return entry, old, InsertReplaced
	}
	entry := &Entry{Tuple: tu, Ann: ann, Created: now, TTL: t.ttl}
	t.rows[pk] = entry
	t.order = append(t.order, entry)
	t.indexInsert(entry)
	t.evict()
	return entry, nil, InsertNew
}

// evict enforces maxSize by killing the oldest live rows.
func (t *Table) evict() {
	if t.maxSize < 0 {
		return
	}
	live := 0
	for _, en := range t.order {
		if !en.Dead {
			live++
		}
	}
	for i := 0; live > t.maxSize && i < len(t.order); i++ {
		en := t.order[i]
		if en.Dead {
			continue
		}
		en.Dead = true
		delete(t.rows, t.pkey(en.Tuple))
		live--
	}
}

// Get returns the entry identical to tu, or nil.
func (t *Table) Get(tu data.Tuple) *Entry {
	if en, ok := t.rows[t.pkey(tu)]; ok && !en.Dead && en.Tuple.Equal(tu) {
		return en
	}
	return nil
}

// Delete removes the row identical to tu, reporting whether it existed.
func (t *Table) Delete(tu data.Tuple) bool {
	pk := t.pkey(tu)
	if en, ok := t.rows[pk]; ok && !en.Dead && en.Tuple.Equal(tu) {
		en.Dead = true
		delete(t.rows, pk)
		return true
	}
	return false
}

// Live returns copies of all live, unexpired tuples, in insertion order.
func (t *Table) Live(now float64) []data.Tuple {
	var out []data.Tuple
	for _, en := range t.order {
		if en.Dead || en.expired(now) {
			continue
		}
		out = append(out, en.Tuple)
	}
	return out
}

// Entries returns the live entries in insertion order, so full-table
// scans (and the joins built on them) are deterministic.
func (t *Table) Entries(now float64) []*Entry {
	var out []*Entry
	for _, en := range t.order {
		if en.Dead || en.expired(now) {
			continue
		}
		out = append(out, en)
	}
	return out
}

func (en *Entry) expired(now float64) bool {
	exp, ok := en.ExpiresAt()
	return ok && now >= exp
}

// Expire kills expired rows, returning how many.
func (t *Table) Expire(now float64) int {
	return len(t.ExpireTuples(now))
}

// ExpireTuples kills expired rows and returns their tuples (nil when
// nothing expired), so callers can stream the removals to subscribers.
func (t *Table) ExpireTuples(now float64) []data.Tuple {
	var out []data.Tuple
	for pk, en := range t.rows {
		if en.Dead {
			continue
		}
		if en.expired(now) {
			en.Dead = true
			delete(t.rows, pk)
			out = append(out, en.Tuple)
		}
	}
	if len(out) > 0 {
		t.compact()
	}
	return out
}

// compact rebuilds indexes and the order slice, dropping dead entries.
// Called after expiry sweeps to keep lookups tight.
func (t *Table) compact() {
	liveOrder := t.order[:0]
	for _, en := range t.order {
		if !en.Dead {
			liveOrder = append(liveOrder, en)
		}
	}
	t.order = liveOrder
	if t.concurrent {
		t.mu.Lock()
	}
	for sig := range t.indexes {
		delete(t.indexes, sig)
	}
	if t.concurrent {
		t.mu.Unlock()
	}
}

// Lookup returns the live entries whose columns cols equal vals, using a
// lazily built hash index. An empty cols scans the whole table. Buckets
// hold entries in insertion order, so join order — and therefore
// emission and export order — is deterministic. Safe for concurrent
// probes (the sharded eval phase); mutations stay single-threaded.
func (t *Table) Lookup(cols []int, vals []data.Value, now float64) []*Entry {
	if len(cols) == 0 {
		return t.Entries(now)
	}
	sig := colSig(cols)
	if t.concurrent {
		t.mu.Lock()
	}
	idx, ok := t.indexes[sig]
	if !ok {
		idx = make(map[string][]*Entry)
		for _, en := range t.order {
			if en.Dead {
				continue
			}
			idx[valKey(en.Tuple, cols)] = append(idx[valKey(en.Tuple, cols)], en)
		}
		t.indexes[sig] = idx
	}
	if t.concurrent {
		t.mu.Unlock()
	}
	probe := probeKey(vals)
	bucket := idx[probe]
	out := make([]*Entry, 0, len(bucket))
	for _, en := range bucket {
		if en.Dead || en.expired(now) {
			continue
		}
		out = append(out, en)
	}
	return out
}

// indexInsert adds a new entry to every existing index.
func (t *Table) indexInsert(en *Entry) {
	if t.concurrent {
		t.mu.Lock()
	}
	for sig, idx := range t.indexes {
		cols := parseSig(sig)
		k := valKey(en.Tuple, cols)
		idx[k] = append(idx[k], en)
	}
	if t.concurrent {
		t.mu.Unlock()
	}
}

// Size returns the number of live rows.
func (t *Table) Size() int {
	n := 0
	for _, en := range t.rows {
		if !en.Dead {
			n++
		}
	}
	return n
}

func colSig(cols []int) string {
	var sb strings.Builder
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

func parseSig(sig string) []int {
	parts := strings.Split(sig, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i], _ = strconv.Atoi(p)
	}
	return out
}

// valKey builds the index key from specific columns of a stored tuple.
func valKey(tu data.Tuple, cols []int) string {
	var b []byte
	for _, c := range cols {
		b = appendValueKey(b, tu.Args[c])
	}
	return string(b)
}

// probeKey builds the index key from probe values.
func probeKey(vals []data.Value) string {
	var b []byte
	for _, v := range vals {
		b = appendValueKey(b, v)
	}
	return string(b)
}

func appendValueKey(b []byte, v data.Value) []byte {
	b = append(b, v.Key()...)
	b = append(b, 0)
	return b
}
