package engine

import (
	"strconv"
	"strings"
	"sync"

	"provnet/internal/data"
)

// Entry is one stored tuple with its soft-state metadata and provenance
// annotation.
type Entry struct {
	Tuple   data.Tuple
	Ann     Annotation
	Created float64
	// TTL is the lifetime in seconds; <0 means infinite (hard state).
	TTL float64
	// Dead marks entries that were replaced or expired; indexes are
	// cleaned lazily.
	Dead bool

	// hash caches the full structural hash of Tuple; pkHash caches the
	// primary-key projection hash. Both are filled on insert so the hot
	// path never rehashes a stored row.
	hash   uint64
	pkHash uint64

	// Support bookkeeping for retraction (live-network churn). A tuple
	// stays stored while any support remains: localSupport records that a
	// base insert or a local rule derivation produced it; the origin set
	// records the remote senders that shipped it. The overwhelmingly
	// common case is a single remote origin, inlined in origin0; a second
	// distinct origin spills to the origins map.
	localSupport bool
	origin0      string
	hasOrigin0   bool
	origins      map[string]bool
}

// addSupport records one support source: origin "" is local (base fact or
// rule derivation), anything else names the remote sender.
func (en *Entry) addSupport(origin string) {
	if origin == "" {
		en.localSupport = true
		return
	}
	if en.origins != nil {
		en.origins[origin] = true
		return
	}
	if !en.hasOrigin0 || en.origin0 == origin {
		en.origin0 = origin
		en.hasOrigin0 = true
		return
	}
	// Second distinct origin: spill to the map.
	en.origins = map[string]bool{en.origin0: true, origin: true}
	en.origin0 = ""
	en.hasOrigin0 = false
}

// dropOrigin removes one remote support, reporting whether it was present.
func (en *Entry) dropOrigin(origin string) bool {
	if en.origins != nil {
		if !en.origins[origin] {
			return false
		}
		delete(en.origins, origin)
		return true
	}
	if en.hasOrigin0 && en.origin0 == origin {
		en.origin0 = ""
		en.hasOrigin0 = false
		return true
	}
	return false
}

// hasOrigin reports whether origin currently supports the row.
func (en *Entry) hasOrigin(origin string) bool {
	if en.origins != nil {
		return en.origins[origin]
	}
	return en.hasOrigin0 && en.origin0 == origin
}

// originCount returns the number of distinct remote supports.
func (en *Entry) originCount() int {
	if en.origins != nil {
		return len(en.origins)
	}
	if en.hasOrigin0 {
		return 1
	}
	return 0
}

// clearOrigins drops all remote supports.
func (en *Entry) clearOrigins() {
	en.origins = nil
	en.origin0 = ""
	en.hasOrigin0 = false
}

// supported reports whether any support remains.
func (en *Entry) supported() bool {
	return en.localSupport || en.originCount() > 0
}

// ExpiresAt returns the expiry time, or +inf-like behaviour via ok=false
// for hard state.
func (en *Entry) ExpiresAt() (float64, bool) {
	if en.TTL < 0 {
		return 0, false
	}
	return en.Created + en.TTL, true
}

// InsertStatus describes the outcome of a Table.Insert.
type InsertStatus uint8

// Insert outcomes.
const (
	// InsertNew: the tuple was not present; stored.
	InsertNew InsertStatus = iota
	// InsertDuplicate: an identical tuple exists; the caller merges
	// annotations.
	InsertDuplicate
	// InsertReplaced: a different tuple shared the primary key and was
	// replaced (update semantics of keyed tables).
	InsertReplaced
)

// colIndex is one lazily built secondary index: buckets keyed by the
// structural hash of the indexed columns, entries in insertion order
// within a bucket. Collisions are resolved by comparing the indexed
// columns against the probe values (hash + equality check).
type colIndex struct {
	cols    []int
	buckets map[uint64][]*Entry
}

// Table is a materialized soft-state relation: rows keyed by a primary key
// (a subset of columns, default all columns plus the asserter), with lazy
// secondary hash indexes for join lookups, per-row TTLs, and an optional
// size bound evicting the oldest rows (P2's materialize maxSize).
//
// All row and index maps key on 64-bit structural hashes with an equality
// check inside the bucket, never on materialized Key() strings: probes
// and inserts are allocation-free.
type Table struct {
	name    string
	keyCols []int // nil = whole tuple (including asserter)
	ttl     float64
	maxSize int

	// rows buckets live entries by primary-key hash. At most one live
	// entry per distinct primary key; hash collisions chain within the
	// bucket slice.
	rows  map[uint64][]*Entry
	nlive int
	// order tracks insertion order, for maxSize eviction and for
	// deterministic scan/index order (join results must not depend on
	// map iteration).
	order []*Entry
	// dirty counts dead entries still parked in order, so scans know
	// whether the fast no-filter path applies.
	dirty int
	// indexes: signature ("2,4") → column index. With concurrent set (the
	// owning engine shards its waves), the lazy build happens under mu:
	// sharded evaluation probes tables from several read-only workers at
	// once, and the build is the one mutation that can happen during a
	// probe. All other writes occur in the serial commit and maintenance
	// phases, separated from eval by the wave barrier. A serial engine
	// leaves concurrent unset and skips the lock on the probe hot path.
	concurrent bool
	mu         sync.Mutex
	indexes    map[string]*colIndex

	// arena is the current Entry slab: entries are carved out of chunks
	// (one malloc per chunk, not per row). Chunks are never reused or
	// moved, so *Entry pointers into them stay valid for the table's
	// lifetime.
	arena []Entry
}

// NewTable creates a table. keyCols are 0-based primary key columns (nil
// means identity key); ttl<0 means hard state; maxSize<0 means unbounded.
func NewTable(name string, keyCols []int, ttl float64, maxSize int) *Table {
	return &Table{
		name:    name,
		keyCols: keyCols,
		ttl:     ttl,
		maxSize: maxSize,
		rows:    make(map[uint64][]*Entry),
		indexes: make(map[string]*colIndex),
	}
}

// Name returns the predicate name.
func (t *Table) Name() string { return t.name }

// TTL returns the declared soft-state lifetime (<0 = infinite).
func (t *Table) TTL() float64 { return t.ttl }

// newEntry allocates a row out of the entry arena. Chunk sizes scale
// with the table so small relations stay small.
func (t *Table) newEntry(tu data.Tuple, ann Annotation, now float64, pk, hash uint64) *Entry {
	if len(t.arena) == cap(t.arena) {
		sz := t.nlive
		if sz < 8 {
			sz = 8
		} else if sz > 512 {
			sz = 512
		}
		t.arena = make([]Entry, 0, sz)
	}
	t.arena = t.arena[:len(t.arena)+1]
	en := &t.arena[len(t.arena)-1]
	*en = Entry{Tuple: tu, Ann: ann, Created: now, TTL: t.ttl, hash: hash, pkHash: pk}
	return en
}

func (t *Table) pkHash(tu data.Tuple) uint64 {
	if t.keyCols == nil {
		return tu.Hash()
	}
	return tu.HashCols(t.keyCols)
}

// samePK reports whether two tuples share a primary key — the equality
// fallback inside a rows bucket. Mirrors Key()/ValueKey() equality.
func (t *Table) samePK(a, b data.Tuple) bool {
	if t.keyCols == nil {
		return a.Equal(b)
	}
	if a.Pred != b.Pred || a.Asserter != b.Asserter {
		return false
	}
	for _, c := range t.keyCols {
		if !a.Args[c].Equal(b.Args[c]) {
			return false
		}
	}
	return true
}

// findRow locates the live entry sharing tu's primary key in the bucket
// for pk, or nil.
func (t *Table) findRow(pk uint64, tu data.Tuple) *Entry {
	for _, en := range t.rows[pk] {
		if !en.Dead && t.samePK(en.Tuple, tu) {
			return en
		}
	}
	return nil
}

// removeRow unlinks en from its rows bucket.
func (t *Table) removeRow(en *Entry) {
	bucket := t.rows[en.pkHash]
	for i, b := range bucket {
		if b == en {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(t.rows, en.pkHash)
			} else {
				t.rows[en.pkHash] = bucket
			}
			return
		}
	}
}

// kill marks an entry dead and removes it from the row map.
func (t *Table) kill(en *Entry) {
	en.Dead = true
	t.removeRow(en)
	t.nlive--
	t.dirty++
}

// Insert stores tu. If an identical tuple exists, it returns the existing
// entry with InsertDuplicate. If a different tuple shares the primary key,
// the old row is replaced (InsertReplaced).
func (t *Table) Insert(tu data.Tuple, ann Annotation, now float64) (*Entry, InsertStatus) {
	en, _, status := t.InsertFull(tu, ann, now)
	return en, status
}

// InsertFull is Insert, additionally returning the row displaced by a
// primary-key replacement (nil otherwise), so callers can report the
// removal to table-update observers.
func (t *Table) InsertFull(tu data.Tuple, ann Annotation, now float64) (*Entry, *Entry, InsertStatus) {
	return t.insertHashed(tu, ann, now, 0)
}

// insertHashed is InsertFull with tu's structural hash supplied when the
// caller already knows it (0 = compute here), so a hot-path insert
// hashes the tuple at most once.
func (t *Table) insertHashed(tu data.Tuple, ann Annotation, now float64, hash uint64) (*Entry, *Entry, InsertStatus) {
	if hash == 0 {
		hash = tu.Hash()
	}
	pk := hash
	if t.keyCols != nil {
		pk = tu.HashCols(t.keyCols)
	}
	if old := t.findRow(pk, tu); old != nil {
		if old.Tuple.Equal(tu) {
			// Refresh soft state: a re-inserted tuple restarts its TTL.
			old.Created = now
			return old, nil, InsertDuplicate
		}
		t.kill(old)
		entry := t.newEntry(tu, ann, now, pk, hash)
		t.rows[pk] = append(t.rows[pk], entry)
		t.nlive++
		t.order = append(t.order, entry)
		t.indexInsert(entry)
		return entry, old, InsertReplaced
	}
	entry := t.newEntry(tu, ann, now, pk, hash)
	t.rows[pk] = append(t.rows[pk], entry)
	t.nlive++
	t.order = append(t.order, entry)
	t.indexInsert(entry)
	t.evict()
	return entry, nil, InsertNew
}

// evict enforces maxSize by killing the oldest live rows.
func (t *Table) evict() {
	if t.maxSize < 0 {
		return
	}
	for i := 0; t.nlive > t.maxSize && i < len(t.order); i++ {
		en := t.order[i]
		if en.Dead {
			continue
		}
		t.kill(en)
	}
}

// Get returns the entry identical to tu, or nil.
func (t *Table) Get(tu data.Tuple) *Entry {
	if en := t.findRow(t.pkHash(tu), tu); en != nil && en.Tuple.Equal(tu) {
		return en
	}
	return nil
}

// Delete removes the row identical to tu, reporting whether it existed.
func (t *Table) Delete(tu data.Tuple) bool {
	if en := t.findRow(t.pkHash(tu), tu); en != nil && en.Tuple.Equal(tu) {
		t.kill(en)
		return true
	}
	return false
}

// Live returns copies of all live, unexpired tuples, in insertion order.
func (t *Table) Live(now float64) []data.Tuple {
	var out []data.Tuple
	for _, en := range t.order {
		if en.Dead || en.expired(now) {
			continue
		}
		out = append(out, en.Tuple)
	}
	return out
}

// Entries returns the live entries in insertion order, so full-table
// scans (and the joins built on them) are deterministic. When every
// stored entry is live and unexpired the internal order slice is returned
// directly — callers must treat the result as read-only.
func (t *Table) Entries(now float64) []*Entry {
	if t.dirty == 0 {
		clean := true
		for _, en := range t.order {
			if en.expired(now) {
				clean = false
				break
			}
		}
		if clean {
			return t.order
		}
	}
	var out []*Entry
	for _, en := range t.order {
		if en.Dead || en.expired(now) {
			continue
		}
		out = append(out, en)
	}
	return out
}

func (en *Entry) expired(now float64) bool {
	exp, ok := en.ExpiresAt()
	return ok && now >= exp
}

// Expire kills expired rows, returning how many.
func (t *Table) Expire(now float64) int {
	return len(t.ExpireTuples(now))
}

// ExpireTuples kills expired rows and returns their tuples (nil when
// nothing expired), in insertion order, so callers can stream the
// removals to subscribers deterministically.
func (t *Table) ExpireTuples(now float64) []data.Tuple {
	var out []data.Tuple
	for _, en := range t.order {
		if en.Dead || !en.expired(now) {
			continue
		}
		t.kill(en)
		out = append(out, en.Tuple)
	}
	if len(out) > 0 {
		t.compact()
	}
	return out
}

// compact rebuilds indexes and the order slice, dropping dead entries.
// Called after expiry sweeps to keep lookups tight.
func (t *Table) compact() {
	liveOrder := t.order[:0]
	for _, en := range t.order {
		if !en.Dead {
			liveOrder = append(liveOrder, en)
		}
	}
	t.order = liveOrder
	t.dirty = 0
	if t.concurrent {
		t.mu.Lock()
	}
	for sig := range t.indexes { //provlint:allow mapiter clearing every index; order cannot escape
		delete(t.indexes, sig)
	}
	if t.concurrent {
		t.mu.Unlock()
	}
}

// Lookup returns the live entries whose columns cols equal vals, using a
// lazily built hash index. An empty cols scans the whole table. Buckets
// hold entries in insertion order, so join order — and therefore
// emission and export order — is deterministic. Safe for concurrent
// probes (the sharded eval phase); mutations stay single-threaded.
func (t *Table) Lookup(cols []int, vals []data.Value, now float64) []*Entry {
	if len(cols) == 0 {
		return t.Entries(now)
	}
	return t.LookupSig(colSig(cols), cols, vals, data.HashValues(vals), now)
}

// LookupSig is Lookup with the column signature and probe hash supplied
// by the caller (precompiled join plans), so the probe itself performs no
// allocation. The returned slice may alias internal index storage when no
// filtering was required — callers must treat it as read-only and not
// retain it across table mutations.
func (t *Table) LookupSig(sig string, cols []int, vals []data.Value, probe uint64, now float64) []*Entry {
	idx := t.index(sig, cols)
	bucket := idx.buckets[probe]
	// Fast path: the whole bucket matches — no dead, expired, or
	// hash-colliding rows — so it can be returned as-is.
	for i, en := range bucket {
		if en.Dead || en.expired(now) || !matchCols(en.Tuple, cols, vals) {
			out := make([]*Entry, i, len(bucket))
			copy(out, bucket[:i])
			for _, en := range bucket[i+1:] {
				if en.Dead || en.expired(now) || !matchCols(en.Tuple, cols, vals) {
					continue
				}
				out = append(out, en)
			}
			return out
		}
	}
	return bucket
}

// index returns the lazily built column index for sig, building it on
// first use.
func (t *Table) index(sig string, cols []int) *colIndex {
	if t.concurrent {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	idx, ok := t.indexes[sig]
	if !ok {
		idx = &colIndex{cols: append([]int(nil), cols...), buckets: make(map[uint64][]*Entry)}
		for _, en := range t.order {
			if en.Dead {
				continue
			}
			h := en.Tuple.HashArgs(cols)
			idx.buckets[h] = append(idx.buckets[h], en)
		}
		t.indexes[sig] = idx
	}
	return idx
}

// matchCols is the collision fallback: the indexed columns must equal the
// probe values.
func matchCols(tu data.Tuple, cols []int, vals []data.Value) bool {
	for i, c := range cols {
		if !tu.Args[c].Equal(vals[i]) {
			return false
		}
	}
	return true
}

// indexInsert adds a new entry to every existing index.
func (t *Table) indexInsert(en *Entry) {
	if t.concurrent {
		t.mu.Lock()
	}
	for _, idx := range t.indexes { //provlint:allow mapiter independent per-index inserts; order cannot escape
		h := en.Tuple.HashArgs(idx.cols)
		idx.buckets[h] = append(idx.buckets[h], en)
	}
	if t.concurrent {
		t.mu.Unlock()
	}
}

// Size returns the number of live rows.
func (t *Table) Size() int { return t.nlive }

func colSig(cols []int) string {
	var sb strings.Builder
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}
