package engine

import (
	"fmt"
	"testing"

	"provnet/internal/data"
)

func tup(pred string, args ...any) data.Tuple {
	vs := make([]data.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case int:
			vs[i] = data.Int(int64(x))
		case string:
			vs[i] = data.Str(x)
		default:
			panic("unsupported")
		}
	}
	return data.NewTuple(pred, vs...)
}

func TestTableInsertStatuses(t *testing.T) {
	tbl := NewTable("p", nil, -1, -1)
	e1, st := tbl.Insert(tup("p", 1, "x"), nil, 0)
	if st != InsertNew || e1 == nil {
		t.Fatalf("first insert: %v", st)
	}
	e2, st := tbl.Insert(tup("p", 1, "x"), nil, 5)
	if st != InsertDuplicate || e2 != e1 {
		t.Fatalf("duplicate insert: %v", st)
	}
	if e2.Created != 5 {
		t.Error("duplicate insert must refresh soft state")
	}
	// Identity-keyed table: different tuple is a new row, not replacement.
	_, st = tbl.Insert(tup("p", 1, "y"), nil, 0)
	if st != InsertNew {
		t.Fatalf("distinct tuple: %v", st)
	}
	if tbl.Size() != 2 {
		t.Errorf("size = %d", tbl.Size())
	}
}

func TestTableKeyedReplacement(t *testing.T) {
	tbl := NewTable("route", []int{0}, -1, -1)
	tbl.Insert(tup("route", 7, "old"), nil, 0)
	en, st := tbl.Insert(tup("route", 7, "new"), nil, 1)
	if st != InsertReplaced {
		t.Fatalf("status = %v", st)
	}
	if tbl.Size() != 1 {
		t.Errorf("size = %d", tbl.Size())
	}
	if got := tbl.Get(tup("route", 7, "new")); got != en {
		t.Error("new row must be retrievable")
	}
	if tbl.Get(tup("route", 7, "old")) != nil {
		t.Error("old row must be gone")
	}
}

func TestTableDelete(t *testing.T) {
	tbl := NewTable("p", nil, -1, -1)
	tbl.Insert(tup("p", 1), nil, 0)
	if !tbl.Delete(tup("p", 1)) {
		t.Fatal("delete existing")
	}
	if tbl.Delete(tup("p", 1)) {
		t.Fatal("double delete")
	}
	if tbl.Size() != 0 {
		t.Error("size after delete")
	}
}

func TestTableExpiry(t *testing.T) {
	tbl := NewTable("ev", nil, 10, -1)
	tbl.Insert(tup("ev", 1), nil, 0)
	tbl.Insert(tup("ev", 2), nil, 5)
	if n := tbl.Expire(9); n != 0 {
		t.Fatalf("premature expiry: %d", n)
	}
	if n := tbl.Expire(12); n != 1 {
		t.Fatalf("expired = %d", n)
	}
	live := tbl.Live(12)
	if len(live) != 1 || live[0].Args[0].Int != 2 {
		t.Fatalf("live = %v", live)
	}
	// ExpiresAt on entries.
	en := tbl.Get(tup("ev", 2))
	exp, ok := en.ExpiresAt()
	if !ok || exp != 15 {
		t.Errorf("ExpiresAt = %v, %v", exp, ok)
	}
	hard := NewTable("h", nil, -1, -1)
	hEn, _ := hard.Insert(tup("h", 1), nil, 0)
	if _, ok := hEn.ExpiresAt(); ok {
		t.Error("hard state never expires")
	}
}

func TestTableLookupIndex(t *testing.T) {
	tbl := NewTable("edge", nil, -1, -1)
	for i := 0; i < 100; i++ {
		tbl.Insert(tup("edge", fmt.Sprintf("n%d", i%10), i), nil, 0)
	}
	// Index on column 0.
	hits := tbl.Lookup([]int{0}, []data.Value{data.Str("n3")}, 0)
	if len(hits) != 10 {
		t.Fatalf("lookup hits = %d", len(hits))
	}
	for _, en := range hits {
		if en.Tuple.Args[0].Str != "n3" {
			t.Fatalf("wrong hit %v", en.Tuple)
		}
	}
	// Index maintained across subsequent inserts.
	tbl.Insert(tup("edge", "n3", 999), nil, 0)
	if got := len(tbl.Lookup([]int{0}, []data.Value{data.Str("n3")}, 0)); got != 11 {
		t.Fatalf("after insert: %d", got)
	}
	// Composite index.
	two := tbl.Lookup([]int{0, 1}, []data.Value{data.Str("n3"), data.Int(3)}, 0)
	if len(two) != 1 {
		t.Fatalf("composite lookup = %d", len(two))
	}
	// Empty columns scans everything.
	if got := len(tbl.Lookup(nil, nil, 0)); got != 101 {
		t.Fatalf("scan = %d", got)
	}
}

func TestTableLookupSkipsExpiredAndDead(t *testing.T) {
	tbl := NewTable("p", nil, 10, -1)
	tbl.Insert(tup("p", "k", 1), nil, 0)
	tbl.Insert(tup("p", "k", 2), nil, 5)
	// Build index before expiry.
	if got := len(tbl.Lookup([]int{0}, []data.Value{data.Str("k")}, 0)); got != 2 {
		t.Fatalf("pre-expiry hits = %d", got)
	}
	tbl.Expire(12)
	if got := len(tbl.Lookup([]int{0}, []data.Value{data.Str("k")}, 12)); got != 1 {
		t.Fatalf("post-expiry hits = %d", got)
	}
}

func TestTableMaxSizeEvictsOldest(t *testing.T) {
	tbl := NewTable("log", nil, -1, 3)
	for i := 0; i < 6; i++ {
		tbl.Insert(tup("log", i), nil, float64(i))
	}
	if tbl.Size() != 3 {
		t.Fatalf("size = %d", tbl.Size())
	}
	for i := 0; i < 3; i++ {
		if tbl.Get(tup("log", i)) != nil {
			t.Errorf("old row %d must be evicted", i)
		}
	}
	for i := 3; i < 6; i++ {
		if tbl.Get(tup("log", i)) == nil {
			t.Errorf("recent row %d must survive", i)
		}
	}
}

func TestColSigDistinct(t *testing.T) {
	sets := [][]int{{0}, {1}, {1, 3}, {3, 1}, {2, 0, 5}, {13}, {1, 3 + 10}}
	seen := map[string][]int{}
	for _, cols := range sets {
		sig := colSig(cols)
		if prev, dup := seen[sig]; dup {
			t.Fatalf("colSig collision: %v and %v both map to %q", prev, cols, sig)
		}
		seen[sig] = cols
	}
}
