package engine

import (
	"fmt"

	"provnet/internal/data"
)

// pending is one rule firing captured during read-only evaluation,
// awaiting the ordered-commit stage. Capturing firings instead of
// committing them inline is what lets a wave of deltas evaluate on
// several shard workers at once while tables, aggregates, provenance
// annotations, and export order stay bit-identical for every shard
// count: evaluation never writes, and the commit replay happens in
// deterministic wave order on the driving goroutine.
type pending struct {
	r    *compiledRule
	head data.Tuple
	// headHash is head's cached structural hash when the firing reused a
	// stored canonical tuple (0 = unknown).
	headHash uint64
	dest     string
	body     []AnnTuple
}

// evalScratch is the reusable per-worker evaluation state: one variable
// environment and trail sized for the largest rule, a probe-value buffer
// sized for the widest precompiled probe, a body buffer for the longest
// rule, and the pending arena a wave's firings append into. One scratch
// exists per eval worker (serial engines use worker 0) and lives for the
// engine's lifetime, so steady-state evaluation performs no per-delta
// allocation beyond the firings themselves.
type evalScratch struct {
	env   env
	trail []int
	probe []data.Value
	body  []AnnTuple
	pend  []pending

	// valArena / annArena are slab allocators for the head-argument and
	// body-copy slices a firing hands to the commit stage. Those slices
	// escape (into tables, aggregate state, provenance), so the slabs are
	// never reset — slabbing only amortizes the allocation count: one
	// malloc per slab instead of two per firing.
	valArena []data.Value
	annArena []AnnTuple

	// waveVals / waveAnns are resettable arenas for slices that die once
	// the wave's commit stage consumes them: aggregate-rule head
	// arguments (aggContribute copies what it keeps) and, under the null
	// provenance hook, non-aggregate body copies (the dependency index
	// reads them by value and nothing else retains them). resetWave
	// reclaims the space wholesale at each wave boundary; the used
	// counters upsize the slab when a wave overflowed it, so steady state
	// is one slab reused forever. Mid-wave overflow slabs are simply
	// abandoned — spans already handed out keep their backing array alive
	// until the commit stage finishes with them.
	waveVals     []data.Value
	waveValsUsed int
	waveAnns     []AnnTuple
	waveAnnsUsed int

	// headBuf is the scratch head-argument buffer a firing constructs
	// into before deciding whether a stored canonical tuple can be reused
	// (grown on demand; sized by the widest head seen).
	headBuf []data.Value
}

const arenaSlab = 1024

// arenaSlabMax bounds geometric slab growth so a huge fixpoint cannot
// strand arbitrarily large part-used slabs.
const arenaSlabMax = 64 * 1024

// nextSlabSize doubles the slab on each refill (bounded), so a busy
// scratch converges to a handful of mallocs instead of one per
// arenaSlab-worth of firings.
func nextSlabSize(cur, n int) int {
	sz := cur * 2
	if sz < arenaSlab {
		sz = arenaSlab
	}
	if sz > arenaSlabMax {
		sz = arenaSlabMax
	}
	if n > sz {
		sz = n
	}
	return sz
}

// allocVals carves an owned n-element value slice out of the slab.
func (sc *evalScratch) allocVals(n int) []data.Value {
	if n == 0 {
		return nil
	}
	if len(sc.valArena)+n > cap(sc.valArena) {
		sc.valArena = make([]data.Value, 0, nextSlabSize(cap(sc.valArena), n))
	}
	m := len(sc.valArena)
	sc.valArena = sc.valArena[:m+n]
	return sc.valArena[m : m+n : m+n]
}

// allocAnns carves an owned n-element AnnTuple slice out of the slab.
func (sc *evalScratch) allocAnns(n int) []AnnTuple {
	if n == 0 {
		return nil
	}
	if len(sc.annArena)+n > cap(sc.annArena) {
		sc.annArena = make([]AnnTuple, 0, nextSlabSize(cap(sc.annArena), n))
	}
	m := len(sc.annArena)
	sc.annArena = sc.annArena[:m+n]
	return sc.annArena[m : m+n : m+n]
}

// allocWaveVals / allocWaveAnns carve transient slices out of the wave
// arenas (see the field comment for the lifetime contract).
func (sc *evalScratch) allocWaveVals(n int) []data.Value {
	if n == 0 {
		return nil
	}
	sc.waveValsUsed += n
	if len(sc.waveVals)+n > cap(sc.waveVals) {
		sc.waveVals = make([]data.Value, 0, nextSlabSize(cap(sc.waveVals), n))
	}
	m := len(sc.waveVals)
	sc.waveVals = sc.waveVals[:m+n]
	return sc.waveVals[m : m+n : m+n]
}

func (sc *evalScratch) allocWaveAnns(n int) []AnnTuple {
	if n == 0 {
		return nil
	}
	sc.waveAnnsUsed += n
	if len(sc.waveAnns)+n > cap(sc.waveAnns) {
		sc.waveAnns = make([]AnnTuple, 0, nextSlabSize(cap(sc.waveAnns), n))
	}
	m := len(sc.waveAnns)
	sc.waveAnns = sc.waveAnns[:m+n]
	return sc.waveAnns[m : m+n : m+n]
}

// resetWave reclaims the wave arenas at a wave boundary, upsizing a slab
// whose last wave overflowed it so the next wave fits in one.
func (sc *evalScratch) resetWave() {
	if sc.waveValsUsed > cap(sc.waveVals) {
		sz := cap(sc.waveVals) * 2
		if sz < arenaSlab {
			sz = arenaSlab
		}
		for sz < sc.waveValsUsed {
			sz *= 2
		}
		sc.waveVals = make([]data.Value, 0, sz)
	}
	sc.waveVals = sc.waveVals[:0]
	sc.waveValsUsed = 0
	if sc.waveAnnsUsed > cap(sc.waveAnns) {
		sz := cap(sc.waveAnns) * 2
		if sz < arenaSlab {
			sz = arenaSlab
		}
		for sz < sc.waveAnnsUsed {
			sz *= 2
		}
		sc.waveAnns = make([]AnnTuple, 0, sz)
	}
	sc.waveAnns = sc.waveAnns[:0]
	sc.waveAnnsUsed = 0
}

// scratchFor returns worker i's scratch, (re)creating it when a program
// load grew the required sizes.
func (e *Engine) scratchFor(i int) *evalScratch {
	for len(e.scratches) <= i {
		e.scratches = append(e.scratches, nil)
	}
	sc := e.scratches[i]
	if sc == nil || len(sc.env.vals) < e.maxVars || len(sc.probe) < e.maxProbe || len(sc.body) < e.maxAtoms {
		sc = &evalScratch{
			env:   env{vals: make([]data.Value, e.maxVars), bound: make([]bool, e.maxVars)},
			probe: make([]data.Value, e.maxProbe),
			body:  make([]AnnTuple, e.maxAtoms),
		}
		e.scratches[i] = sc
	}
	return sc
}

// evalDelta runs rule r with the delta entry bound at body atom atomIdx,
// joining the remaining atoms against the stored tables (semi-naive
// evaluation). With a non-nil sink, firings are collected instead of
// committed (the sharded wave path); a nil sink commits through emit.
// The scratch's environment is restored (all slots unbound) on return.
func (e *Engine) evalDelta(r *compiledRule, atomIdx int, delta *Entry, sink *[]pending, sc *evalScratch) {
	if !e.ruleActive(r) {
		return
	}
	env := &sc.env
	if (r.ctxSlot < 0 || env.bindOrCheck(r.ctxSlot, data.Str(e.self), &sc.trail)) &&
		(r.locSlot < 0 || env.bindOrCheck(r.locSlot, data.Str(e.self), &sc.trail)) &&
		e.matchAtom(&r.atoms[atomIdx], delta, env, &sc.trail) {
		body := sc.body[:len(r.atoms)]
		for i := range body {
			body[i] = AnnTuple{}
		}
		body[atomIdx] = AnnTuple{Tuple: delta.Tuple, Ann: delta.Ann, hash: delta.hash}
		e.evalSteps(r, 0, atomIdx, env, body, &sc.trail, sink, sc)
	}
	env.undo(&sc.trail, 0)
}

// evalFull evaluates rule r from scratch over the stored tables (used for
// aggregate recomputation and DRed re-derivation). sink as in evalDelta.
func (e *Engine) evalFull(r *compiledRule, sink *[]pending) {
	e.evalFullScratch(r, sink, e.scratchFor(0))
}

func (e *Engine) evalFullScratch(r *compiledRule, sink *[]pending, sc *evalScratch) {
	if !e.ruleActive(r) {
		return
	}
	env := &sc.env
	if (r.ctxSlot < 0 || env.bindOrCheck(r.ctxSlot, data.Str(e.self), &sc.trail)) &&
		(r.locSlot < 0 || env.bindOrCheck(r.locSlot, data.Str(e.self), &sc.trail)) {
		body := sc.body[:len(r.atoms)]
		for i := range body {
			body[i] = AnnTuple{}
		}
		e.evalSteps(r, 0, -1, env, body, &sc.trail, sink, sc)
	}
	env.undo(&sc.trail, 0)
}

// ruleActive reports whether the rule applies at this node at all.
func (e *Engine) ruleActive(r *compiledRule) bool {
	if r.ctxConst != "" && r.ctxConst != e.self {
		return false
	}
	if r.locConst != "" && r.locConst != e.self {
		return false
	}
	return true
}

// evalSteps walks the rule plan from step si; atom skipAtom is already
// bound (the delta), -1 for full evaluation. It only reads engine state
// (tables are probed, never created), so shard workers may run it
// concurrently between commit stages. Probes follow the rule's
// precompiled plan: the bound columns and their value sources were
// resolved at compile time, so a probe fills a reused value buffer and
// hashes it — no per-probe allocation.
func (e *Engine) evalSteps(r *compiledRule, si, skipAtom int, env *env, body []AnnTuple, trail *[]int, sink *[]pending, sc *evalScratch) {
	if si == len(r.steps) {
		e.fire(r, env, body, sink, sc)
		return
	}
	st := r.steps[si]
	switch st.kind {
	case stepAtom:
		if st.atom == skipAtom {
			e.evalSteps(r, si+1, skipAtom, env, body, trail, sink, sc)
			return
		}
		spec := &r.atoms[st.atom]
		tbl := e.tables[spec.pred]
		if tbl == nil {
			return // no table yet: the atom cannot match
		}
		plan := &r.plans[si][skipAtom+1]
		var entries []*Entry
		if len(plan.cols) == 0 {
			entries = tbl.Entries(e.now)
		} else {
			vals := sc.probe[:len(plan.cols)]
			for i, src := range plan.srcs {
				if src.isConst {
					vals[i] = src.constVal
				} else {
					vals[i] = env.vals[src.slot]
				}
			}
			entries = tbl.LookupSig(plan.sig, plan.cols, vals, data.HashValues(vals), e.now)
		}
		for _, en := range entries {
			mark := len(*trail)
			if e.matchAtom(spec, en, env, trail) {
				body[st.atom] = AnnTuple{Tuple: en.Tuple, Ann: en.Ann, hash: en.hash}
				e.evalSteps(r, si+1, skipAtom, env, body, trail, sink, sc)
			}
			env.undo(trail, mark)
		}
	case stepAssign:
		v, err := evalExpr(st.expr, r, env)
		if err != nil {
			return // expression failure kills this branch
		}
		mark := len(*trail)
		if env.bindOrCheck(st.assignSlot, v, trail) {
			e.evalSteps(r, si+1, skipAtom, env, body, trail, sink, sc)
		}
		env.undo(trail, mark)
	case stepCond:
		v, err := evalExpr(st.expr, r, env)
		if err != nil || !v.IsTrue() {
			return
		}
		e.evalSteps(r, si+1, skipAtom, env, body, trail, sink, sc)
	}
}

// matchAtom matches a stored entry against an atom spec, binding
// variables. The asserter is matched against the says pattern; atoms
// without says accept only tuples asserted locally (or unattributed).
func (e *Engine) matchAtom(spec *atomSpec, en *Entry, env *env, trail *[]int) bool {
	tu := en.Tuple
	if tu.Pred != spec.pred || len(tu.Args) != len(spec.args) {
		return false
	}
	if spec.says == nil {
		if tu.Asserter != "" && tu.Asserter != e.self {
			return false
		}
	} else {
		if tu.Asserter == "" {
			return false
		}
		if !env.matchPattern(*spec.says, data.Str(tu.Asserter), trail) {
			return false
		}
	}
	for i, p := range spec.args {
		if !env.matchPattern(p, tu.Args[i], trail) {
			return false
		}
	}
	return true
}

// fire constructs the head tuple from the environment and routes it:
// straight into emit (serial contexts), or onto the sink for the wave's
// ordered-commit stage. The head-argument and body-copy slices come from
// the scratch's slab arenas (they escape; the slab amortizes the
// mallocs).
func (e *Engine) fire(r *compiledRule, env *env, body []AnnTuple, sink *[]pending, sc *evalScratch) {
	n := len(r.headArgs)
	if cap(sc.headBuf) < n {
		sc.headBuf = make([]data.Value, n)
	}
	hb := sc.headBuf[:n]
	for i, p := range r.headArgs {
		switch {
		case p.isConst:
			hb[i] = p.constVal
		case p.slot >= 0 && env.bound[p.slot]:
			hb[i] = env.vals[p.slot]
		default:
			return // unbound head variable; Validate prevents this
		}
	}
	head := data.Tuple{Pred: r.headPred, Args: hb}
	if e.authenticated {
		head.Asserter = e.self
	}
	// Re-derivations of an already-stored row — the common case in a
	// recursive fixpoint — reuse the stored canonical tuple and its
	// cached hash instead of materializing a fresh argument slice. The
	// lookup is a pure read, safe from concurrent shard workers.
	// Aggregate heads skip it: their aggregate argument holds the
	// per-contribution value, which almost never matches the stored
	// aggregated row, and aggContribute copies what it keeps — so their
	// argument slices can come from the transient wave arena.
	var headHash uint64
	reused := false
	if r.agg == nil {
		if tbl := e.tables[r.headPred]; tbl != nil {
			if en := tbl.Get(head); en != nil {
				head = en.Tuple
				headHash = en.hash
				reused = true
			}
		}
	}
	if !reused {
		var args []data.Value
		if r.agg != nil {
			args = sc.allocWaveVals(n)
		} else {
			args = sc.allocVals(n)
		}
		copy(args, hb)
		head.Args = args
	}

	dest := e.self
	switch {
	case r.headLocIdx >= 0:
		if head.Args[r.headLocIdx].Kind != data.KindString {
			return
		}
		dest = head.Args[r.headLocIdx].Str
	case r.headDestSet:
		var v data.Value
		if r.headDest.isConst {
			v = r.headDest.constVal
		} else if r.headDest.slot >= 0 && env.bound[r.headDest.slot] {
			v = env.vals[r.headDest.slot]
		} else {
			return
		}
		if v.Kind != data.KindString {
			return
		}
		dest = v.Str
	}

	// Copy the body annotation slice: it is reused across branches.
	nb := 0
	for i := range body {
		if body[i].Tuple.Pred != "" {
			nb++
		}
	}
	// Aggregate contributions are retained by the group's dedup state, so
	// they need the persistent slab; under the null provenance hook,
	// non-aggregate bodies die at commit (the dependency index reads them
	// by value) and come from the wave arena instead.
	var bodyCopy []AnnTuple
	if r.agg == nil && e.noProv {
		bodyCopy = sc.allocWaveAnns(nb)
	} else {
		bodyCopy = sc.allocAnns(nb)
	}
	nb = 0
	for i := range body {
		if body[i].Tuple.Pred != "" {
			bodyCopy[nb] = body[i]
			nb++
		}
	}
	if sink != nil {
		*sink = append(*sink, pending{r: r, head: head, headHash: headHash, dest: dest, body: bodyCopy})
		return
	}
	e.emit(r, head, headHash, dest, bodyCopy)
}

// String renders a compiled rule briefly (for debugging and error text).
func (r *compiledRule) String() string {
	return fmt.Sprintf("rule %s => %s/%d", r.label, r.headPred, len(r.headArgs))
}
