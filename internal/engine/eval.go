package engine

import (
	"fmt"

	"provnet/internal/data"
)

// pending is one rule firing captured during read-only evaluation,
// awaiting the ordered-commit stage. Capturing firings instead of
// committing them inline is what lets a wave of deltas evaluate on
// several shard workers at once while tables, aggregates, provenance
// annotations, and export order stay bit-identical for every shard
// count: evaluation never writes, and the commit replay happens in
// deterministic wave order on the driving goroutine.
type pending struct {
	r    *compiledRule
	head data.Tuple
	dest string
	body []AnnTuple
}

// evalDelta runs rule r with the delta entry bound at body atom atomIdx,
// joining the remaining atoms against the stored tables (semi-naive
// evaluation). With a non-nil sink, firings are collected instead of
// committed (the sharded wave path); a nil sink commits through emit.
func (e *Engine) evalDelta(r *compiledRule, atomIdx int, delta *Entry, sink *[]pending) {
	if !e.ruleActive(r) {
		return
	}
	env := newEnv(r.nvars)
	var trail []int
	if r.ctxSlot >= 0 && !env.bindOrCheck(r.ctxSlot, data.Str(e.self), &trail) {
		return
	}
	if r.locSlot >= 0 && !env.bindOrCheck(r.locSlot, data.Str(e.self), &trail) {
		return
	}
	if !e.matchAtom(&r.atoms[atomIdx], delta, env, &trail) {
		return
	}
	body := make([]AnnTuple, len(r.atoms))
	body[atomIdx] = AnnTuple{Tuple: delta.Tuple, Ann: delta.Ann}
	e.evalSteps(r, 0, atomIdx, env, body, &trail, sink)
}

// evalFull evaluates rule r from scratch over the stored tables (used for
// aggregate recomputation and DRed re-derivation). sink as in evalDelta.
func (e *Engine) evalFull(r *compiledRule, sink *[]pending) {
	if !e.ruleActive(r) {
		return
	}
	env := newEnv(r.nvars)
	var trail []int
	if r.ctxSlot >= 0 && !env.bindOrCheck(r.ctxSlot, data.Str(e.self), &trail) {
		return
	}
	if r.locSlot >= 0 && !env.bindOrCheck(r.locSlot, data.Str(e.self), &trail) {
		return
	}
	body := make([]AnnTuple, len(r.atoms))
	e.evalSteps(r, 0, -1, env, body, &trail, sink)
}

// ruleActive reports whether the rule applies at this node at all.
func (e *Engine) ruleActive(r *compiledRule) bool {
	if r.ctxConst != "" && r.ctxConst != e.self {
		return false
	}
	if r.locConst != "" && r.locConst != e.self {
		return false
	}
	return true
}

// evalSteps walks the rule plan from step si; atom skipAtom is already
// bound (the delta), -1 for full evaluation. It only reads engine state
// (tables are probed, never created), so shard workers may run it
// concurrently between commit stages.
func (e *Engine) evalSteps(r *compiledRule, si, skipAtom int, env *env, body []AnnTuple, trail *[]int, sink *[]pending) {
	if si == len(r.steps) {
		e.fire(r, env, body, sink)
		return
	}
	st := r.steps[si]
	switch st.kind {
	case stepAtom:
		if st.atom == skipAtom {
			e.evalSteps(r, si+1, skipAtom, env, body, trail, sink)
			return
		}
		spec := &r.atoms[st.atom]
		tbl := e.tables[spec.pred]
		if tbl == nil {
			return // no table yet: the atom cannot match
		}
		// Probe the index on the columns already bound.
		var cols []int
		var vals []data.Value
		for i, p := range spec.args {
			switch {
			case p.isConst:
				cols = append(cols, i)
				vals = append(vals, p.constVal)
			case p.slot >= 0 && env.bound[p.slot]:
				cols = append(cols, i)
				vals = append(vals, env.vals[p.slot])
			}
		}
		for _, en := range tbl.Lookup(cols, vals, e.now) {
			mark := len(*trail)
			if e.matchAtom(spec, en, env, trail) {
				body[st.atom] = AnnTuple{Tuple: en.Tuple, Ann: en.Ann}
				e.evalSteps(r, si+1, skipAtom, env, body, trail, sink)
			}
			env.undo(trail, mark)
		}
	case stepAssign:
		v, err := evalExpr(st.expr, r, env)
		if err != nil {
			return // expression failure kills this branch
		}
		mark := len(*trail)
		if env.bindOrCheck(st.assignSlot, v, trail) {
			e.evalSteps(r, si+1, skipAtom, env, body, trail, sink)
		}
		env.undo(trail, mark)
	case stepCond:
		v, err := evalExpr(st.expr, r, env)
		if err != nil || !v.IsTrue() {
			return
		}
		e.evalSteps(r, si+1, skipAtom, env, body, trail, sink)
	}
}

// matchAtom matches a stored entry against an atom spec, binding
// variables. The asserter is matched against the says pattern; atoms
// without says accept only tuples asserted locally (or unattributed).
func (e *Engine) matchAtom(spec *atomSpec, en *Entry, env *env, trail *[]int) bool {
	tu := en.Tuple
	if tu.Pred != spec.pred || len(tu.Args) != len(spec.args) {
		return false
	}
	if spec.says == nil {
		if tu.Asserter != "" && tu.Asserter != e.self {
			return false
		}
	} else {
		if tu.Asserter == "" {
			return false
		}
		if !env.matchPattern(*spec.says, data.Str(tu.Asserter), trail) {
			return false
		}
	}
	for i, p := range spec.args {
		if !env.matchPattern(p, tu.Args[i], trail) {
			return false
		}
	}
	return true
}

// fire constructs the head tuple from the environment and routes it:
// straight into emit (serial contexts), or onto the sink for the wave's
// ordered-commit stage.
func (e *Engine) fire(r *compiledRule, env *env, body []AnnTuple, sink *[]pending) {
	args := make([]data.Value, len(r.headArgs))
	for i, p := range r.headArgs {
		switch {
		case p.isConst:
			args[i] = p.constVal
		case p.slot >= 0 && env.bound[p.slot]:
			args[i] = env.vals[p.slot]
		default:
			return // unbound head variable; Validate prevents this
		}
	}
	head := data.Tuple{Pred: r.headPred, Args: args}

	dest := e.self
	switch {
	case r.headLocIdx >= 0:
		if args[r.headLocIdx].Kind != data.KindString {
			return
		}
		dest = args[r.headLocIdx].Str
	case r.headDestSet:
		var v data.Value
		if r.headDest.isConst {
			v = r.headDest.constVal
		} else if r.headDest.slot >= 0 && env.bound[r.headDest.slot] {
			v = env.vals[r.headDest.slot]
		} else {
			return
		}
		if v.Kind != data.KindString {
			return
		}
		dest = v.Str
	}

	// Copy the body annotation slice: it is reused across branches.
	bodyCopy := make([]AnnTuple, 0, len(body))
	for _, b := range body {
		if b.Tuple.Pred != "" {
			bodyCopy = append(bodyCopy, b)
		}
	}
	if sink != nil {
		*sink = append(*sink, pending{r: r, head: head, dest: dest, body: bodyCopy})
		return
	}
	e.emit(r, head, dest, bodyCopy)
}

// String renders a compiled rule briefly (for debugging and error text).
func (r *compiledRule) String() string {
	return fmt.Sprintf("rule %s => %s/%d", r.label, r.headPred, len(r.headArgs))
}
