package engine

import "provnet/internal/data"

// Hash-keyed set primitives for the retraction machinery. Every set that
// used to key on materialized Key() strings — the deleted set, the
// shipped-withdrawal set, the withdrawal dedup, the dependency index —
// keys on the tuple's 64-bit structural hash (plus an interned
// destination id where a destination participates), with tuple equality
// as the collision fallback inside a bucket.

// tupleSet is a set of tuples keyed by structural hash with equality
// chains.
type tupleSet struct {
	m map[uint64][]data.Tuple
	n int
}

func newTupleSet() *tupleSet { return &tupleSet{m: make(map[uint64][]data.Tuple)} }

func (s *tupleSet) has(t data.Tuple) bool {
	for _, c := range s.m[t.Hash()] {
		if c.Equal(t) {
			return true
		}
	}
	return false
}

// add inserts t, reporting whether it was newly added.
func (s *tupleSet) add(t data.Tuple) bool {
	h := t.Hash()
	for _, c := range s.m[h] {
		if c.Equal(t) {
			return false
		}
	}
	s.m[h] = append(s.m[h], t)
	s.n++
	return true
}

func (s *tupleSet) len() int { return s.n }

// destTupleKey keys a (destination, tuple) pair: the destination as an
// interned symbol id, the tuple as its structural hash.
type destTupleKey struct {
	dest uint32
	hash uint64
}

// destTupleSet is a set of (destination, tuple) pairs. The interned dest
// id is exact; tuple-hash collisions chain and fall back to equality.
type destTupleSet struct {
	m map[destTupleKey][]data.Tuple
	n int
}

func newDestTupleSet() *destTupleSet { return &destTupleSet{m: make(map[destTupleKey][]data.Tuple)} }

func (s *destTupleSet) key(e *Engine, dest string, t data.Tuple) destTupleKey {
	return destTupleKey{dest: e.destID(dest), hash: t.Hash()}
}

func (s *destTupleSet) has(e *Engine, dest string, t data.Tuple) bool {
	for _, c := range s.m[s.key(e, dest, t)] {
		if c.Equal(t) {
			return true
		}
	}
	return false
}

// add inserts the pair, reporting whether it was newly added.
func (s *destTupleSet) add(e *Engine, dest string, t data.Tuple) bool {
	k := s.key(e, dest, t)
	for _, c := range s.m[k] {
		if c.Equal(t) {
			return false
		}
	}
	s.m[k] = append(s.m[k], t)
	s.n++
	return true
}

// remove deletes the pair, reporting whether it was present.
func (s *destTupleSet) remove(e *Engine, dest string, t data.Tuple) bool {
	k := s.key(e, dest, t)
	bucket := s.m[k]
	for i, c := range bucket {
		if c.Equal(t) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(s.m, k)
			} else {
				s.m[k] = bucket
			}
			s.n--
			return true
		}
	}
	return false
}

func (s *destTupleSet) len() int { return s.n }

// destID returns the interned id for a destination symbol, cached locally
// so the hot path never takes the global interner's lock. Only called
// from the engine's single driving goroutine (commit and maintenance
// phases).
func (e *Engine) destID(dest string) uint32 {
	if id, ok := e.destIDs[dest]; ok {
		return id
	}
	id := data.InternID(dest)
	if e.destIDs == nil {
		e.destIDs = make(map[string]uint32, 8)
	}
	e.destIDs[dest] = id
	return id
}

// tupleLess is the deterministic tuple order used for tie-breaking where
// the old string-keyed maps compared Key() encodings: predicate,
// asserter, then argument-wise Compare.
func tupleLess(a, b data.Tuple) bool {
	if a.Pred != b.Pred {
		return a.Pred < b.Pred
	}
	if a.Asserter != b.Asserter {
		return a.Asserter < b.Asserter
	}
	n := len(a.Args)
	if len(b.Args) < n {
		n = len(b.Args)
	}
	for i := 0; i < n; i++ {
		if c := a.Args[i].Compare(b.Args[i]); c != 0 {
			return c < 0
		}
	}
	return len(a.Args) < len(b.Args)
}
