package engine

import (
	"testing"

	"provnet/internal/data"
)

func call(t *testing.T, name string, args ...data.Value) (data.Value, error) {
	t.Helper()
	fn, ok := Builtins[name]
	if !ok {
		t.Fatalf("unknown builtin %s", name)
	}
	return fn(args)
}

func wantVal(t *testing.T, got data.Value, err error, want data.Value) {
	t.Helper()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestBuiltinListOps(t *testing.T) {
	a, b, c := data.Str("a"), data.Str("b"), data.Str("c")

	v, err := call(t, "f_init", a, b)
	wantVal(t, v, err, data.List(a, b))

	v, err = call(t, "f_concat", c, data.List(a, b))
	wantVal(t, v, err, data.List(c, a, b))

	v, err = call(t, "f_append", data.List(a), b)
	wantVal(t, v, err, data.List(a, b))

	v, err = call(t, "f_member", data.List(a, b), a)
	wantVal(t, v, err, data.Int(1))
	v, err = call(t, "f_member", data.List(a, b), c)
	wantVal(t, v, err, data.Int(0))

	v, err = call(t, "f_size", data.List(a, b, c))
	wantVal(t, v, err, data.Int(3))

	v, err = call(t, "f_first", data.List(a, b))
	wantVal(t, v, err, a)
	v, err = call(t, "f_last", data.List(a, b))
	wantVal(t, v, err, b)
}

func TestBuiltinNumericOps(t *testing.T) {
	v, err := call(t, "f_min", data.Int(3), data.Int(5))
	wantVal(t, v, err, data.Int(3))
	v, err = call(t, "f_max", data.Int(3), data.Int(5))
	wantVal(t, v, err, data.Int(5))
	v, err = call(t, "f_abs", data.Int(-7))
	wantVal(t, v, err, data.Int(7))
	v, err = call(t, "f_abs", data.Float(-2.5))
	wantVal(t, v, err, data.Float(2.5))
	v, err = call(t, "f_mod", data.Int(17), data.Int(5))
	wantVal(t, v, err, data.Int(2))
}

func TestBuiltinErrors(t *testing.T) {
	cases := []struct {
		name string
		args []data.Value
	}{
		{"f_init", []data.Value{data.Str("a")}},                  // arity
		{"f_concat", []data.Value{data.Str("a"), data.Str("b")}}, // not a list
		{"f_append", []data.Value{data.Str("a"), data.Str("b")}}, // not a list
		{"f_member", []data.Value{data.Str("a"), data.Str("b")}}, // not a list
		{"f_size", []data.Value{data.Int(1)}},                    // not a list
		{"f_first", []data.Value{data.List()}},                   // empty
		{"f_last", []data.Value{data.List()}},                    // empty
		{"f_abs", []data.Value{data.Str("x")}},                   // not numeric
		{"f_mod", []data.Value{data.Int(1), data.Int(0)}},        // div by zero
		{"f_mod", []data.Value{data.Float(1.5), data.Int(2)}},    // not ints
	}
	for _, c := range cases {
		if _, err := Builtins[c.name](c.args); err == nil {
			t.Errorf("%s(%v) should fail", c.name, c.args)
		}
	}
}

func TestExprEvaluationInRules(t *testing.T) {
	// String concatenation and logical operators through the evaluator.
	e := newNode(t, "a", `
r1 s(@S,R) :- p(@S,A,B), R = A + B.
r2 t(@S) :- p(@S,A,B), (A == "x" && B != "y") || f_size(f_init(A,B)) == 2.
`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Str("x"), data.Str("z")))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("s"), `s(a, xz)`)
	wantTuples(t, e.Tuples("t"), "t(a)")
}

func TestUnaryOperators(t *testing.T) {
	e := newNode(t, "a", `
r1 q(@S,N) :- p(@S,X), N = -X.
r2 w(@S) :- p(@S,X), !(X > 100).
`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(5)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("q"), "q(a, -5)")
	wantTuples(t, e.Tuples("w"), "w(a)")
}

func TestComparisonOperatorsAll(t *testing.T) {
	e := newNode(t, "a", `
r1 lt(@S) :- p(@S,X), X < 10.
r2 le(@S) :- p(@S,X), X <= 5.
r3 gt(@S) :- p(@S,X), X > 1.
r4 ge(@S) :- p(@S,X), X >= 5.
r5 eq(@S) :- p(@S,X), X == 5.
r6 ne(@S) :- p(@S,X), X != 6.
`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(5)))
	e.RunToFixpoint()
	for _, pred := range []string{"lt", "le", "gt", "ge", "eq", "ne"} {
		if e.Count(pred) != 1 {
			t.Errorf("%s did not fire", pred)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	e := newNode(t, "a", `r q(@S,Y) :- p(@S,X), Y = X / 2 + 0.25.`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Float(1.5)))
	e.RunToFixpoint()
	wantTuples(t, e.Tuples("q"), "q(a, 1)")
}

func TestUnknownFunctionKillsBranch(t *testing.T) {
	e := newNode(t, "a", `r q(@S,Y) :- p(@S,X), Y = f_nosuch(X).`, false)
	e.InsertFact(data.NewTuple("p", data.Str("a"), data.Int(1)))
	e.RunToFixpoint()
	if e.Count("q") != 0 {
		t.Fatal("unknown function must not derive")
	}
}
