package engine

import (
	"testing"

	"provnet/internal/data"
	"provnet/internal/datalog"
)

func retractEngine(t *testing.T, self, src string) *Engine {
	t.Helper()
	prog, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	localized, err := datalog.Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Self: self})
	if err := e.LoadProgram(localized); err != nil {
		t.Fatal(err)
	}
	return e
}

const reachProg = `
materialize(edge, infinity, infinity, keys(1,2,3)).
materialize(reach, infinity, infinity, keys(1,2,3)).
r1 reach(@N,X,Y) :- edge(@N,X,Y).
r2 reach(@N,X,Y) :- edge(@N,X,Z), reach(@N,Z,Y).
`

func TestRetractCascadesAndRederives(t *testing.T) {
	e := retractEngine(t, "n", reachProg)
	edge := func(x, y string) data.Tuple {
		return data.NewTuple("edge", data.Str("n"), data.Str(x), data.Str(y))
	}
	for _, ed := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		e.InsertFact(edge(ed[0], ed[1]))
	}
	e.RunToFixpoint()
	if got := e.Count("reach"); got != 3 {
		t.Fatalf("reach count = %d, want 3", got)
	}

	// Cutting a→b withdraws reach(a,b); reach(a,c) survives via the
	// direct edge (DRed re-derivation finds the alternate support).
	ws := e.RetractFacts(edge("a", "b"))
	if len(ws) != 0 {
		t.Fatalf("unexpected withdrawals on single-node retraction: %v", ws)
	}
	e.RunToFixpoint()
	reach := func(x, y string) data.Tuple {
		return data.NewTuple("reach", data.Str("n"), data.Str(x), data.Str(y))
	}
	if e.Has(reach("a", "b")) {
		t.Fatal("reach(a,b) should be withdrawn after cutting edge(a,b)")
	}
	if !e.Has(reach("a", "c")) {
		t.Fatal("reach(a,c) should survive: the direct edge still derives it")
	}
	if !e.Has(reach("b", "c")) {
		t.Fatal("reach(b,c) should be untouched")
	}

	// Cutting a→c now removes the last derivation of reach(a,c).
	e.RetractFacts(edge("a", "c"))
	e.RunToFixpoint()
	if e.Has(reach("a", "c")) {
		t.Fatal("reach(a,c) should be withdrawn after both supports are cut")
	}
	if e.Stats.Retracted == 0 {
		t.Fatal("Stats.Retracted not counted")
	}
}

const minProg = `
materialize(e, infinity, infinity, keys(1,2,3)).
materialize(m, infinity, infinity, keys(1,2)).
aggSelection(e, keys(1,2), min, 3).
m1 m(@N,X,min<C>) :- e(@N,X,C).
`

func TestRetractRevivesPrunedCandidatesAndRecomputesAggregates(t *testing.T) {
	e := retractEngine(t, "n", minProg)
	ev := func(c int64) data.Tuple {
		return data.NewTuple("e", data.Str("n"), data.Str("x"), data.Int(c))
	}
	m := func(c int64) data.Tuple {
		return data.NewTuple("m", data.Str("n"), data.Str("x"), data.Int(c))
	}
	e.InsertFact(ev(5))
	e.InsertFact(ev(3))
	e.InsertFact(ev(7)) // pruned: worse than the installed min 3
	e.RunToFixpoint()
	if !e.Has(m(3)) {
		t.Fatalf("m = %v, want m(n,x,3)", e.Tuples("m"))
	}
	if e.Stats.TuplesDropped == 0 {
		t.Fatal("expected the 7-candidate to be pruned")
	}

	// Retracting the installed min relaxes the group: the surviving row 5
	// wins; the shadowed 7 stays shadowed (still worse than 5).
	e.RetractFacts(ev(3))
	e.RunToFixpoint()
	if !e.Has(m(5)) {
		t.Fatalf("after retracting 3: m = %v, want m(n,x,5)", e.Tuples("m"))
	}

	// Retracting 5 leaves only the shadow candidate, which must revive.
	e.RetractFacts(ev(5))
	e.RunToFixpoint()
	if !e.Has(m(7)) {
		t.Fatalf("after retracting 5: m = %v, want m(n,x,7) revived from shadow", e.Tuples("m"))
	}

	// Retracting the last support deletes the aggregate head entirely.
	e.RetractFacts(ev(7))
	e.RunToFixpoint()
	if got := e.Count("m"); got != 0 {
		t.Fatalf("after retracting all: m = %v, want empty", e.Tuples("m"))
	}
}

const exportProg = `
materialize(src, infinity, infinity, keys(1,2,3)).
materialize(out, infinity, infinity, keys(1,2)).
x1 out(@D,X) :- src(@S,D,X).
`

func TestRetractCollectsWithdrawalsForExports(t *testing.T) {
	e := retractEngine(t, "a", exportProg)
	src := data.NewTuple("src", data.Str("a"), data.Str("b"), data.Int(1))
	e.InsertFact(src)
	exports := e.RunToFixpoint()
	if len(exports) != 1 || exports[0].Dest != "b" {
		t.Fatalf("exports = %v, want one export to b", exports)
	}
	ws := e.RetractFacts(src)
	if len(ws) != 1 || ws[0].Dest != "b" || ws[0].Tuple.Pred != "out" {
		t.Fatalf("withdrawals = %v, want out(b,1) → b", ws)
	}
}

func TestRetractImportedRespectsMultipleOrigins(t *testing.T) {
	e := retractEngine(t, "b", exportProg)
	tu := data.NewTuple("out", data.Str("b"), data.Int(1))
	if err := e.InsertImportedFrom("a", tu, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.InsertImportedFrom("c", tu, nil); err != nil {
		t.Fatal(err)
	}
	e.RunToFixpoint()
	e.RetractImported("a", []data.Tuple{tu})
	if !e.Has(tu) {
		t.Fatal("tuple should survive: sender c still supports it")
	}
	e.RetractImported("c", []data.Tuple{tu})
	if e.Has(tu) {
		t.Fatal("tuple should be withdrawn once every origin retracted it")
	}
}

func TestRetractObserverSeesWithdrawals(t *testing.T) {
	e := retractEngine(t, "n", reachProg)
	var added, removed int
	e.SetOnUpdate(func(tu data.Tuple, kind UpdateKind) {
		switch {
		case kind.Entered():
			added++
		case kind.Left():
			removed++
		}
	})
	edge := data.NewTuple("edge", data.Str("n"), data.Str("a"), data.Str("b"))
	e.InsertFact(edge)
	e.RunToFixpoint()
	if added != 2 { // edge + reach
		t.Fatalf("added = %d, want 2", added)
	}
	e.RetractFacts(edge)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2 (edge + reach)", removed)
	}
}
