package engine

import (
	"fmt"

	"provnet/internal/data"
	"provnet/internal/datalog"
)

// pattern is a compiled term: a constant to check or a variable slot to
// bind. slot -1 is the wildcard (blank variable).
type pattern struct {
	isConst  bool
	constVal data.Value
	slot     int
}

// atomSpec is a compiled body atom.
type atomSpec struct {
	pred string
	args []pattern
	// says is the asserter pattern of "P says pred(...)"; nil restricts
	// matches to locally asserted tuples.
	says *pattern
}

// stepKind discriminates plan steps.
type stepKind uint8

const (
	stepAtom stepKind = iota
	stepAssign
	stepCond
)

// step is one element of the rule's evaluation plan, in body order.
type step struct {
	kind       stepKind
	atom       int // for stepAtom: index into atoms
	assignSlot int // for stepAssign
	expr       datalog.Expr
}

// aggSpec describes an aggregate head.
type aggSpec struct {
	fn        datalog.AggFunc
	argIdx    int   // head arg holding the aggregate result
	groupIdx  []int // head arg positions forming the group
	countStar bool
}

// compiledRule is an executable rule.
type compiledRule struct {
	label string

	// ctxConst restricts the rule to one principal; ctxSlot pre-binds the
	// context variable to the local principal (-1 if unused).
	ctxConst string
	ctxSlot  int
	// locConst / locSlot handle the single body location of localized
	// NDlog rules the same way.
	locConst string
	locSlot  int

	headPred    string
	headArgs    []pattern
	headLocIdx  int // NDlog destination argument (-1 for SeNDlog rules)
	headDest    pattern
	headDestSet bool
	agg         *aggSpec

	atoms []atomSpec
	steps []step

	// plans[si][skip+1] is the precompiled index probe for evaluating
	// step si when body atom skip is the delta (-1 = full evaluation):
	// which columns are bound at that point and where each probe value
	// comes from (a constant or an environment slot). Computed once at
	// compile time instead of re-derived per wave; the boundness analysis
	// is exact because reaching a step implies every earlier step bound
	// all of its slots.
	plans [][]probePlan
	// maxProbe is the widest probe across plans, sizing scratch buffers.
	maxProbe int

	nvars    int
	varNames []string
	varSlots map[string]int
}

// probeSrc names where one probe column's value comes from at runtime.
type probeSrc struct {
	isConst  bool
	constVal data.Value
	slot     int
}

// probePlan is one precompiled index probe: the bound columns, their
// value sources, and the index signature (so the probe allocates
// nothing). Empty cols means a full table scan.
type probePlan struct {
	sig  string
	cols []int
	srcs []probeSrc
}

// buildProbePlans computes cr.plans for every (step, delta-atom)
// combination by static boundness simulation.
func buildProbePlans(cr *compiledRule) {
	cr.plans = make([][]probePlan, len(cr.steps))
	for si := range cr.steps {
		cr.plans[si] = make([]probePlan, len(cr.atoms)+1)
	}
	for skip := -1; skip < len(cr.atoms); skip++ {
		bound := make([]bool, cr.nvars)
		mark := func(slot int) {
			if slot >= 0 {
				bound[slot] = true
			}
		}
		markAtom := func(spec *atomSpec) {
			if spec.says != nil && !spec.says.isConst {
				mark(spec.says.slot)
			}
			for _, p := range spec.args {
				if !p.isConst {
					mark(p.slot)
				}
			}
		}
		mark(cr.ctxSlot)
		mark(cr.locSlot)
		if skip >= 0 {
			markAtom(&cr.atoms[skip])
		}
		for si, st := range cr.steps {
			switch st.kind {
			case stepAtom:
				if st.atom == skip {
					continue
				}
				spec := &cr.atoms[st.atom]
				var plan probePlan
				for i, p := range spec.args {
					switch {
					case p.isConst:
						plan.cols = append(plan.cols, i)
						plan.srcs = append(plan.srcs, probeSrc{isConst: true, constVal: p.constVal})
					case p.slot >= 0 && bound[p.slot]:
						plan.cols = append(plan.cols, i)
						plan.srcs = append(plan.srcs, probeSrc{slot: p.slot})
					}
				}
				plan.sig = colSig(plan.cols)
				cr.plans[si][skip+1] = plan
				if len(plan.cols) > cr.maxProbe {
					cr.maxProbe = len(plan.cols)
				}
				markAtom(spec)
			case stepAssign:
				mark(st.assignSlot)
			}
		}
	}
}

// compileRule translates a validated, localized rule into executable form.
func compileRule(r *datalog.Rule) (*compiledRule, error) {
	cr := &compiledRule{
		label:      r.Label,
		ctxSlot:    -1,
		locSlot:    -1,
		headLocIdx: -1,
		varSlots:   map[string]int{},
	}
	if cr.label == "" {
		cr.label = r.Head.Pred
	}

	slotOf := func(name string) int {
		if s, ok := cr.varSlots[name]; ok {
			return s
		}
		s := cr.nvars
		cr.nvars++
		cr.varSlots[name] = s
		cr.varNames = append(cr.varNames, name)
		return s
	}
	pat := func(t datalog.Term) pattern {
		switch x := t.(type) {
		case datalog.Variable:
			if x.Blank() {
				return pattern{slot: -1}
			}
			return pattern{slot: slotOf(x.Name)}
		case datalog.Constant:
			return pattern{isConst: true, constVal: x.Value}
		default:
			return pattern{slot: -1}
		}
	}

	// Context (SeNDlog).
	if r.Context != nil {
		switch x := r.Context.(type) {
		case datalog.Variable:
			cr.ctxSlot = slotOf(x.Name)
		case datalog.Constant:
			cr.ctxConst = x.Value.Str
		}
	}

	// Body.
	locSeen := false
	for _, l := range r.Body {
		switch l.Kind {
		case datalog.LitAtom:
			a := l.Atom
			spec := atomSpec{pred: a.Pred}
			for _, t := range a.Args {
				spec.args = append(spec.args, pat(t))
			}
			if a.LocIdx >= 0 {
				// Localized NDlog: record the (single) body location.
				switch x := a.Args[a.LocIdx].(type) {
				case datalog.Variable:
					s := slotOf(x.Name)
					if locSeen && cr.locSlot != s {
						return nil, fmt.Errorf("engine: rule %s: multiple body locations", cr.label)
					}
					cr.locSlot = s
				case datalog.Constant:
					if locSeen && cr.locConst != x.Value.Str {
						return nil, fmt.Errorf("engine: rule %s: multiple body locations", cr.label)
					}
					cr.locConst = x.Value.Str
				}
				locSeen = true
			}
			if a.Says != nil {
				p := pat(a.Says)
				spec.says = &p
			}
			cr.steps = append(cr.steps, step{kind: stepAtom, atom: len(cr.atoms)})
			cr.atoms = append(cr.atoms, spec)
		case datalog.LitAssign:
			cr.steps = append(cr.steps, step{
				kind:       stepAssign,
				assignSlot: slotOf(l.AssignVar),
				expr:       l.Expr,
			})
		case datalog.LitCond:
			cr.steps = append(cr.steps, step{kind: stepCond, expr: l.Expr})
		}
	}

	// Head.
	h := &r.Head
	cr.headPred = h.Pred
	cr.headLocIdx = h.LocIdx
	for i, t := range h.Args {
		if i == h.AggIdx {
			if v, ok := t.(datalog.Variable); ok && v.Name == "*" {
				cr.headArgs = append(cr.headArgs, pattern{isConst: true, constVal: data.Int(1)})
				continue
			}
		}
		cr.headArgs = append(cr.headArgs, pat(t))
	}
	if h.Dest != nil {
		cr.headDest = pat(h.Dest)
		cr.headDestSet = true
	}
	if h.HasAgg() {
		spec := &aggSpec{fn: h.AggFunc, argIdx: h.AggIdx}
		if v, ok := h.Args[h.AggIdx].(datalog.Variable); ok && v.Name == "*" {
			spec.countStar = true
		}
		for i := range h.Args {
			if i != h.AggIdx {
				spec.groupIdx = append(spec.groupIdx, i)
			}
		}
		cr.agg = spec
	}
	buildProbePlans(cr)
	return cr, nil
}

// env is a variable binding frame during evaluation.
type env struct {
	vals  []data.Value
	bound []bool
}

func newEnv(n int) *env {
	return &env{vals: make([]data.Value, n), bound: make([]bool, n)}
}

// bindOrCheck binds an unbound slot or verifies equality for a bound one;
// it records new bindings on the trail.
func (e *env) bindOrCheck(slot int, v data.Value, trail *[]int) bool {
	if slot < 0 {
		return true
	}
	if e.bound[slot] {
		return e.vals[slot].Equal(v)
	}
	e.vals[slot] = v
	e.bound[slot] = true
	*trail = append(*trail, slot)
	return true
}

// undo unbinds slots recorded after mark.
func (e *env) undo(trail *[]int, mark int) {
	for i := len(*trail) - 1; i >= mark; i-- {
		e.bound[(*trail)[i]] = false
	}
	*trail = (*trail)[:mark]
}

// matchPattern matches one pattern against a value.
func (e *env) matchPattern(p pattern, v data.Value, trail *[]int) bool {
	if p.isConst {
		return p.constVal.Equal(v)
	}
	return e.bindOrCheck(p.slot, v, trail)
}
