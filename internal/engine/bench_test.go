package engine

import (
	"fmt"
	"testing"

	"provnet/internal/data"
)

// BenchmarkTableInsertLookup measures the hashed table hot path: insert
// of distinct rows (identity- and keyed-table variants) and Get hits
// against a warm table.
func BenchmarkTableInsertLookup(b *testing.B) {
	const rows = 1024
	tuples := make([]data.Tuple, rows)
	for i := range tuples {
		tuples[i] = data.NewTuple("edge",
			data.Str(fmt.Sprintf("n%d", i%32)), data.Int(int64(i)), data.Int(int64(i*7)))
	}

	b.Run("insert-identity", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += rows {
			tbl := NewTable("edge", nil, -1, -1)
			for _, tu := range tuples {
				tbl.InsertFull(tu, nil, 0)
			}
		}
	})
	b.Run("insert-keyed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += rows {
			tbl := NewTable("edge", []int{0, 1}, -1, -1)
			for _, tu := range tuples {
				tbl.InsertFull(tu, nil, 0)
			}
		}
	})

	warm := NewTable("edge", nil, -1, -1)
	for _, tu := range tuples {
		warm.InsertFull(tu, nil, 0)
	}
	b.Run("get-hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if warm.Get(tuples[i%rows]) == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("get-miss", func(b *testing.B) {
		miss := data.NewTuple("edge", data.Str("absent"), data.Int(-1), data.Int(-1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if warm.Get(miss) != nil {
				b.Fatal("hit")
			}
		}
	})
}

// BenchmarkJoinProbe measures an indexed join probe: hash the bound
// columns, hit the lazily built column index, and walk the matching
// bucket — the inner loop of every rule join.
func BenchmarkJoinProbe(b *testing.B) {
	tbl := NewTable("feed", nil, -1, -1)
	const keys = 64
	for k := 0; k < keys; k++ {
		for j := 0; j < 8; j++ {
			tbl.InsertFull(data.NewTuple("feed",
				data.Str("hub"), data.Int(int64(k)), data.Int(int64(k*100+j))), nil, 0)
		}
	}
	cols := []int{0, 1}
	vals := make([]data.Value, 2)
	// Build the index outside the timed loop.
	vals[0], vals[1] = data.Str("hub"), data.Int(0)
	if got := len(tbl.Lookup(cols, vals, 0)); got != 8 {
		b.Fatalf("bucket size = %d, want 8", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = data.Str("hub")
		vals[1] = data.Int(int64(i % keys))
		if got := len(tbl.Lookup(cols, vals, 0)); got != 8 {
			b.Fatal("probe miss")
		}
	}
}
