package engine

import (
	"fmt"
	"testing"

	"provnet/internal/data"
)

// The hash-keyed table, dependency index, and retraction sets all rely on
// the same invariant: a 64-bit structural hash narrows the search, and an
// equality check settles it. These tests squeeze every hash into a
// handful of bits so collision chains are the norm, then require the
// results to match the unmasked run bit for bit.

func TestTableForcedCollisions(t *testing.T) {
	restore := data.LimitHashBitsForTesting(2)
	defer restore()

	tbl := NewTable("p", nil, -1, -1)
	const rows = 64
	for i := 0; i < rows; i++ {
		tbl.InsertFull(tup("p", i, fmt.Sprintf("v%d", i)), nil, 0)
	}
	if tbl.Size() != rows {
		t.Fatalf("size = %d, want %d (collisions must not merge distinct rows)", tbl.Size(), rows)
	}
	for i := 0; i < rows; i++ {
		if tbl.Get(tup("p", i, fmt.Sprintf("v%d", i))) == nil {
			t.Fatalf("row %d lost in collision chain", i)
		}
	}
	if tbl.Get(tup("p", 0, "absent")) != nil {
		t.Fatal("collision chain returned a non-equal tuple")
	}
	for i := 0; i < rows; i += 2 {
		if !tbl.Delete(tup("p", i, fmt.Sprintf("v%d", i))) {
			t.Fatalf("delete %d failed under collisions", i)
		}
	}
	if tbl.Size() != rows/2 {
		t.Fatalf("size after deletes = %d, want %d", tbl.Size(), rows/2)
	}
	for i := 1; i < rows; i += 2 {
		if tbl.Get(tup("p", i, fmt.Sprintf("v%d", i))) == nil {
			t.Fatalf("surviving row %d lost by a colliding delete", i)
		}
	}
}

func TestTableKeyedForcedCollisions(t *testing.T) {
	restore := data.LimitHashBitsForTesting(1)
	defer restore()

	tbl := NewTable("route", []int{0}, -1, -1)
	const rows = 16
	for i := 0; i < rows; i++ {
		tbl.InsertFull(tup("route", i, "old"), nil, 0)
	}
	// Replace every row through the primary key; chains must replace the
	// matching row only.
	for i := 0; i < rows; i++ {
		_, _, st := tbl.InsertFull(tup("route", i, "new"), nil, 1)
		if st != InsertReplaced {
			t.Fatalf("row %d: status %v, want replacement", i, st)
		}
	}
	if tbl.Size() != rows {
		t.Fatalf("size = %d, want %d", tbl.Size(), rows)
	}
	for i := 0; i < rows; i++ {
		if tbl.Get(tup("route", i, "new")) == nil {
			t.Fatalf("replaced row %d missing", i)
		}
		if tbl.Get(tup("route", i, "old")) != nil {
			t.Fatalf("stale row %d still present", i)
		}
	}
}

// TestRetractForcedCollisionsMatchesUnmasked replays an insert/retract
// script twice — once with full hashes, once with 2-bit hashes — and
// requires identical tables and stats. The masked run drives every
// hash-keyed structure (dependency index, withdrawal sets, rederive
// sets, aggregate groups) through its equality fallback.
func TestRetractForcedCollisionsMatchesUnmasked(t *testing.T) {
	const prog = `
materialize(link, infinity, infinity, keys(1,2,3)).
materialize(cost, infinity, infinity, keys(1,2,3)).
materialize(best, infinity, infinity, keys(1,2)).
c1 cost(@N,Y,C) :- link(@N,Y,C).
b1 best(@N,Y,min<C>) :- cost(@N,Y,C).
`
	type op struct {
		retract bool
		y, c    int
	}
	script := []op{
		{false, 1, 5}, {false, 1, 3}, {false, 2, 7}, {false, 2, 2},
		{true, 1, 3}, {false, 3, 9}, {true, 2, 2}, {false, 1, 1},
		{true, 1, 5}, {true, 3, 9},
	}
	run := func() (string, Stats) {
		e := newShardedNode(t, "n", prog, 1, 4)
		for _, o := range script {
			tu := data.NewTuple("link", data.Str("n"),
				data.Str(fmt.Sprintf("y%d", o.y)), data.Int(int64(o.c)))
			if o.retract {
				e.RetractFacts(tu)
			} else {
				e.InsertFact(tu)
			}
			e.RunToFixpoint()
		}
		return snapshotEngine(e), e.Stats
	}

	wantSnap, wantStats := run()
	restore := data.LimitHashBitsForTesting(2)
	defer restore()
	gotSnap, gotStats := run()
	if gotSnap != wantSnap {
		t.Fatalf("masked run diverged\n--- unmasked ---\n%s--- masked ---\n%s", wantSnap, gotSnap)
	}
	if gotStats != wantStats {
		t.Fatalf("stats diverged: unmasked %+v, masked %+v", wantStats, gotStats)
	}
}
