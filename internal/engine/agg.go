package engine

import (
	"strings"

	"provnet/internal/data"
	"provnet/internal/datalog"
)

// Aggregate evaluation. A rule with an aggregate head such as
//
//	sp3 spCost(@S,D,min<C>) :- path(@S,D,Z,P,C).
//
// is evaluated incrementally: each body firing contributes the aggregated
// value to its group (deduplicated by the body-tuple combination), and
// whenever a group's result changes the head tuple is (re)emitted with
// primary-key replacement on the group columns. Aggregates over soft-state
// tables behave as sliding windows: Expire triggers a full recomputation so
// counts shrink as contributing tuples age out (paper §2.1).

// aggGroupState holds one aggregate rule's groups.
type aggGroupState struct {
	rule   *compiledRule
	groups map[string]*aggGroup
}

type aggGroup struct {
	groupArgs []data.Value
	seen      map[string]bool
	count     int64
	sum       float64
	sumIsInt  bool
	sumInt    int64
	min, max  data.Value
	hasMinMax bool
	// Aggregate provenance: min/max heads derive from the bodies that
	// witness the current extremum; count/sum heads derive from every
	// contribution. The emitted head's annotation is computed from these
	// when the aggregate changes.
	witnessBodies []AnnTuple
	allBodies     []AnnTuple
	emitted       bool
	current       data.Value
}

func (e *Engine) aggStateFor(r *compiledRule) *aggGroupState {
	st, ok := e.aggState[r.label]
	if !ok {
		st = &aggGroupState{rule: r, groups: make(map[string]*aggGroup)}
		e.aggState[r.label] = st
		// Head tables of aggregate rules are keyed by the group columns
		// so a changed aggregate replaces the old row.
		e.SetTableKeys(r.headPred, append([]int{}, r.agg.groupIdx...))
	}
	return st
}

// aggContribute processes one firing of an aggregate rule.
func (e *Engine) aggContribute(r *compiledRule, head data.Tuple, body []AnnTuple) {
	st := e.aggStateFor(r)
	spec := r.agg

	gk := head.ValueKey(spec.groupIdx)
	g, ok := st.groups[gk]
	if !ok {
		groupArgs := make([]data.Value, len(head.Args))
		copy(groupArgs, head.Args)
		g = &aggGroup{groupArgs: groupArgs, seen: make(map[string]bool)}
		st.groups[gk] = g
	}

	// Deduplicate by the contributing body combination.
	var sb strings.Builder
	for _, b := range body {
		sb.WriteString(b.Tuple.Key())
		sb.WriteByte('\x00')
	}
	comboKey := sb.String()
	if g.seen[comboKey] {
		return
	}
	g.seen[comboKey] = true

	val := head.Args[spec.argIdx]
	switch spec.fn {
	case datalog.AggCount:
		g.count++
		g.allBodies = append(g.allBodies, body...)
	case datalog.AggSum:
		if val.Kind == data.KindInt {
			g.sumInt += val.Int
			g.sumIsInt = true
		} else {
			g.sum += val.AsFloat()
		}
		g.allBodies = append(g.allBodies, body...)
	case datalog.AggMin:
		if !g.hasMinMax || val.Compare(g.min) < 0 {
			g.min = val
			g.hasMinMax = true
			g.witnessBodies = append([]AnnTuple{}, body...)
		}
	case datalog.AggMax:
		if !g.hasMinMax || val.Compare(g.max) > 0 {
			g.max = val
			g.hasMinMax = true
			g.witnessBodies = append([]AnnTuple{}, body...)
		}
	}
	if !e.suppressAggEmit {
		e.maybeEmitAgg(st, g)
	}
}

// aggResult returns the group's current aggregate value.
func (st *aggGroupState) aggResult(g *aggGroup) data.Value {
	switch st.rule.agg.fn {
	case datalog.AggCount:
		return data.Int(g.count)
	case datalog.AggSum:
		if g.sumIsInt && g.sum == 0 {
			return data.Int(g.sumInt)
		}
		return data.Float(g.sum + float64(g.sumInt))
	case datalog.AggMin:
		return g.min
	case datalog.AggMax:
		return g.max
	default:
		return data.Value{}
	}
}

// maybeEmitAgg emits the head tuple when the group's aggregate changed.
// The head's provenance derives from the witnessing bodies (min/max) or
// all contributions (count/sum).
func (e *Engine) maybeEmitAgg(st *aggGroupState, g *aggGroup) {
	val := st.aggResult(g)
	if g.emitted && g.current.Equal(val) {
		return
	}
	g.emitted = true
	g.current = val
	args := make([]data.Value, len(g.groupArgs))
	copy(args, g.groupArgs)
	args[st.rule.agg.argIdx] = val
	head := data.Tuple{Pred: st.rule.headPred, Args: args}
	if e.authenticated {
		head.Asserter = e.self
	}
	bodies := g.witnessBodies
	if st.rule.agg.fn == datalog.AggCount || st.rule.agg.fn == datalog.AggSum {
		bodies = g.allBodies
	}
	ann := e.hook.Derive(st.rule.label, e.self, head, bodies)
	e.insert(head, ann)
}

// recomputeAggregates rebuilds every aggregate from the live tables after
// soft-state expiry: groups whose support vanished are deleted, counts and
// sums shrink, and changed heads are re-emitted.
func (e *Engine) recomputeAggregates() {
	e.recomputeAggRules(nil, nil)
}

// recomputeAggRules rebuilds aggregates from the live tables. only
// restricts the pass to the named rules (nil = all). Heads whose groups
// vanished are handed to sink when set — the retraction path, which must
// cascade their deletion through the dependency index — and deleted
// directly otherwise (the expiry path).
func (e *Engine) recomputeAggRules(only map[string]bool, sink func(dead data.Tuple)) {
	for _, r := range e.rules {
		if r.agg == nil || (only != nil && !only[r.label]) {
			continue
		}
		st := e.aggStateFor(r)
		old := st.groups
		st.groups = make(map[string]*aggGroup)

		// Re-derive all contributions from live state. Contributions feed
		// the fresh group map; emission is deferred until the diff below.
		saved := e.suppressAggEmit
		e.suppressAggEmit = true
		e.evalFull(r, nil)
		e.suppressAggEmit = saved

		tbl := e.table(r.headPred)
		// Delete heads for groups that vanished.
		for gk, g := range old {
			if _, still := st.groups[gk]; !still && g.emitted {
				args := make([]data.Value, len(g.groupArgs))
				copy(args, g.groupArgs)
				args[r.agg.argIdx] = g.current
				dead := data.Tuple{Pred: r.headPred, Args: args}
				if e.authenticated {
					dead.Asserter = e.self
				}
				if sink != nil {
					sink(dead)
				} else if tbl.Delete(dead) {
					e.notify(dead, UpdateRetracted)
				}
			}
		}
		// Emit fresh or changed groups.
		for gk, g := range st.groups {
			val := st.aggResult(g)
			if prev, ok := old[gk]; ok && prev.emitted && prev.current.Equal(val) {
				g.emitted = true
				g.current = val
				continue
			}
			e.maybeEmitAgg(st, g)
		}
	}
}
