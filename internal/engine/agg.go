package engine

import (
	"provnet/internal/data"
	"provnet/internal/datalog"
)

// Aggregate evaluation. A rule with an aggregate head such as
//
//	sp3 spCost(@S,D,min<C>) :- path(@S,D,Z,P,C).
//
// is evaluated incrementally: each body firing contributes the aggregated
// value to its group (deduplicated by the body-tuple combination), and
// whenever a group's result changes the head tuple is (re)emitted with
// primary-key replacement on the group columns. Aggregates over soft-state
// tables behave as sliding windows: Expire triggers a full recomputation so
// counts shrink as contributing tuples age out (paper §2.1).
//
// Groups key on the head's structural hash over the group columns
// (equality-checked within a bucket); contribution dedup keys on a fold
// of the body tuples' hashes with tuple-wise equality as the fallback.
// An insertion-ordered group list keeps recomputation diffs
// deterministic.

// aggGroupState holds one aggregate rule's groups.
type aggGroupState struct {
	rule   *compiledRule
	groups map[uint64][]*aggGroup
	order  []*aggGroup
}

type aggGroup struct {
	hash      uint64
	asserter  string
	groupArgs []data.Value
	seen      map[uint64][][]AnnTuple
	count     int64
	sum       float64
	sumIsInt  bool
	sumInt    int64
	min, max  data.Value
	hasMinMax bool
	// Aggregate provenance: min/max heads derive from the bodies that
	// witness the current extremum; count/sum heads derive from every
	// contribution. The emitted head's annotation is computed from these
	// when the aggregate changes.
	witnessBodies []AnnTuple
	allBodies     []AnnTuple
	emitted       bool
	current       data.Value
}

func (e *Engine) aggStateFor(r *compiledRule) *aggGroupState {
	st, ok := e.aggState[r.label]
	if !ok {
		st = &aggGroupState{rule: r, groups: make(map[uint64][]*aggGroup)}
		e.aggState[r.label] = st
		// Head tables of aggregate rules are keyed by the group columns
		// so a changed aggregate replaces the old row.
		e.SetTableKeys(r.headPred, append([]int{}, r.agg.groupIdx...))
	}
	return st
}

// findAggGroup locates the group matching the head's group columns in a
// group map (nil when absent).
func findAggGroup(m map[uint64][]*aggGroup, hash uint64, asserter string, args []data.Value, groupIdx []int) *aggGroup {
	for _, g := range m[hash] {
		if g.asserter != asserter {
			continue
		}
		ok := true
		for _, i := range groupIdx {
			if !g.groupArgs[i].Equal(args[i]) {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
	return nil
}

// comboHash folds the body tuples' structural hashes (order-sensitively)
// into one dedup key for a rule firing's contribution.
func comboHash(body []AnnTuple) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range body {
		h ^= b.Tuple.Hash()
		h *= 1099511628211
	}
	return h
}

func comboEqual(a []AnnTuple, b []AnnTuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Tuple.Equal(b[i].Tuple) {
			return false
		}
	}
	return true
}

// aggContribute processes one firing of an aggregate rule.
func (e *Engine) aggContribute(r *compiledRule, head data.Tuple, body []AnnTuple) {
	st := e.aggStateFor(r)
	spec := r.agg

	h := head.HashCols(spec.groupIdx)
	g := findAggGroup(st.groups, h, head.Asserter, head.Args, spec.groupIdx)
	if g == nil {
		groupArgs := make([]data.Value, len(head.Args))
		copy(groupArgs, head.Args)
		g = &aggGroup{
			hash:      h,
			asserter:  head.Asserter,
			groupArgs: groupArgs,
			seen:      make(map[uint64][][]AnnTuple),
		}
		st.groups[h] = append(st.groups[h], g)
		st.order = append(st.order, g)
	}

	// Deduplicate by the contributing body combination. The body slice is
	// this firing's own copy (see fire), so retaining it is safe.
	ch := comboHash(body)
	for _, prev := range g.seen[ch] {
		if comboEqual(prev, body) {
			return
		}
	}
	g.seen[ch] = append(g.seen[ch], body)

	val := head.Args[spec.argIdx]
	switch spec.fn {
	case datalog.AggCount:
		g.count++
		if !e.noProv {
			g.allBodies = append(g.allBodies, body...)
		}
	case datalog.AggSum:
		if val.Kind == data.KindInt {
			g.sumInt += val.Int
			g.sumIsInt = true
		} else {
			g.sum += val.AsFloat()
		}
		if !e.noProv {
			g.allBodies = append(g.allBodies, body...)
		}
	case datalog.AggMin:
		if !g.hasMinMax || val.Compare(g.min) < 0 {
			g.min = val
			g.hasMinMax = true
			if !e.noProv {
				g.witnessBodies = append([]AnnTuple{}, body...)
			}
		}
	case datalog.AggMax:
		if !g.hasMinMax || val.Compare(g.max) > 0 {
			g.max = val
			g.hasMinMax = true
			if !e.noProv {
				g.witnessBodies = append([]AnnTuple{}, body...)
			}
		}
	}
	if !e.suppressAggEmit {
		e.maybeEmitAgg(st, g)
	}
}

// aggResult returns the group's current aggregate value.
func (st *aggGroupState) aggResult(g *aggGroup) data.Value {
	switch st.rule.agg.fn {
	case datalog.AggCount:
		return data.Int(g.count)
	case datalog.AggSum:
		if g.sumIsInt && g.sum == 0 {
			return data.Int(g.sumInt)
		}
		return data.Float(g.sum + float64(g.sumInt))
	case datalog.AggMin:
		return g.min
	case datalog.AggMax:
		return g.max
	default:
		return data.Value{}
	}
}

// maybeEmitAgg emits the head tuple when the group's aggregate changed.
// The head's provenance derives from the witnessing bodies (min/max) or
// all contributions (count/sum).
func (e *Engine) maybeEmitAgg(st *aggGroupState, g *aggGroup) {
	val := st.aggResult(g)
	if g.emitted && g.current.Equal(val) {
		return
	}
	g.emitted = true
	g.current = val
	// The emitted head's argument slice escapes into the stored table, so
	// it comes from the persistent slab of the commit-stage scratch
	// (emission always runs on the driving goroutine).
	args := e.scratchFor(0).allocVals(len(g.groupArgs))
	copy(args, g.groupArgs)
	args[st.rule.agg.argIdx] = val
	head := data.Tuple{Pred: st.rule.headPred, Args: args}
	if e.authenticated {
		head.Asserter = e.self
	}
	bodies := g.witnessBodies
	if st.rule.agg.fn == datalog.AggCount || st.rule.agg.fn == datalog.AggSum {
		bodies = g.allBodies
	}
	ann := e.hook.Derive(st.rule.label, e.self, head, bodies)
	e.insert(head, ann)
}

// recomputeAggregates rebuilds every aggregate from the live tables after
// soft-state expiry: groups whose support vanished are deleted, counts and
// sums shrink, and changed heads are re-emitted.
func (e *Engine) recomputeAggregates() {
	e.recomputeAggRules(nil, nil)
}

// recomputeAggRules rebuilds aggregates from the live tables. only
// restricts the pass to the named rules (nil = all). Heads whose groups
// vanished are handed to sink when set — the retraction path, which must
// cascade their deletion through the dependency index — and deleted
// directly otherwise (the expiry path). Both diffs walk the groups in
// first-contribution order, so the pass is deterministic.
func (e *Engine) recomputeAggRules(only map[string]bool, sink func(dead data.Tuple)) {
	for _, r := range e.rules {
		if r.agg == nil || (only != nil && !only[r.label]) {
			continue
		}
		st := e.aggStateFor(r)
		oldGroups := st.groups
		oldOrder := st.order
		st.groups = make(map[uint64][]*aggGroup)
		st.order = nil

		// Re-derive all contributions from live state. Contributions feed
		// the fresh group map; emission is deferred until the diff below.
		saved := e.suppressAggEmit
		e.suppressAggEmit = true
		e.evalFull(r, nil)
		e.suppressAggEmit = saved

		tbl := e.table(r.headPred)
		// Delete heads for groups that vanished.
		for _, g := range oldOrder {
			if findAggGroup(st.groups, g.hash, g.asserter, g.groupArgs, r.agg.groupIdx) != nil || !g.emitted {
				continue
			}
			args := make([]data.Value, len(g.groupArgs))
			copy(args, g.groupArgs)
			args[r.agg.argIdx] = g.current
			dead := data.Tuple{Pred: r.headPred, Args: args}
			if e.authenticated {
				dead.Asserter = e.self
			}
			if sink != nil {
				sink(dead)
			} else if tbl.Delete(dead) {
				e.notify(dead, UpdateRetracted)
			}
		}
		// Emit fresh or changed groups.
		for _, g := range st.order {
			val := st.aggResult(g)
			if prev := findAggGroup(oldGroups, g.hash, g.asserter, g.groupArgs, r.agg.groupIdx); prev != nil && prev.emitted && prev.current.Equal(val) {
				g.emitted = true
				g.current = val
				continue
			}
			e.maybeEmitAgg(st, g)
		}
	}
}
