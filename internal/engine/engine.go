// Package engine implements the per-node distributed query processor: the
// P2-style dataflow runtime that executes localized NDlog/SeNDlog rules
// over soft-state tables (paper §2, §6).
//
// Each node of the simulated network runs one Engine. The engine holds the
// node's materialized tables (with TTLs and primary keys), evaluates rules
// semi-naively as tuples arrive, maintains head aggregates (min/max/
// count/sum), applies the aggregate-selection optimization, and produces
// Export records for derived tuples whose head location is another node.
// Provenance is captured through a pluggable ProvHook so the same engine
// serves every provenance mode in the paper's taxonomy (§4).
package engine

import (
	"fmt"
	"sort"
	"sync"

	"provnet/internal/data"
	"provnet/internal/datalog"
)

// Annotation is an opaque per-tuple provenance annotation managed by the
// configured ProvHook. The engine never inspects it.
type Annotation any

// AnnTuple pairs a tuple with its annotation, as presented to ProvHook
// callbacks for rule derivations.
type AnnTuple struct {
	Tuple data.Tuple
	Ann   Annotation

	// hash carries the tuple's cached structural hash when the AnnTuple
	// was built from a stored entry (0 = unknown, recompute on demand).
	hash uint64
}

// ProvHook is the provenance capture interface (paper §4). The engine
// calls it at every point where provenance is created, combined, or
// serialized. Implementations for the taxonomy's modes live in
// internal/provenance.
type ProvHook interface {
	// Base annotates a locally inserted base tuple.
	Base(t data.Tuple) Annotation
	// Import reconstructs the annotation of a tuple received from the
	// network together with its provenance payload (may be nil).
	Import(t data.Tuple, payload []byte) (Annotation, error)
	// Derive combines body annotations when rule fires at this node
	// producing head.
	Derive(rule, node string, head data.Tuple, body []AnnTuple) Annotation
	// Merge combines an alternative derivation into an existing
	// annotation; it returns the merged annotation and whether it changed
	// (a change re-propagates the tuple).
	Merge(existing, incoming Annotation) (Annotation, bool)
	// Export serializes the annotation for shipment with the tuple (nil
	// for modes that ship nothing).
	Export(t data.Tuple, ann Annotation) []byte
}

// NoProv is the null provenance hook: no annotations, no payloads, no
// re-propagation. It is the NDlog/SeNDlog (non-Prov) configuration of the
// paper's evaluation.
type NoProv struct{}

// Base returns nil.
func (NoProv) Base(data.Tuple) Annotation { return nil }

// Import returns nil.
func (NoProv) Import(data.Tuple, []byte) (Annotation, error) { return nil, nil }

// Derive returns nil.
func (NoProv) Derive(string, string, data.Tuple, []AnnTuple) Annotation { return nil }

// Merge reports no change.
func (NoProv) Merge(existing, incoming Annotation) (Annotation, bool) { return existing, false }

// Export ships nothing.
func (NoProv) Export(data.Tuple, Annotation) []byte { return nil }

// Export is a derived tuple addressed to another node, produced by
// RunToFixpoint. The core layer signs and serializes it onto the simulated
// network.
type Export struct {
	Dest  string
	Tuple data.Tuple
	Ann   Annotation
}

// Config configures an Engine.
type Config struct {
	// Self is this node's identifier, doubling as its security principal
	// name in SeNDlog mode.
	Self string
	// Authenticated marks derived tuples with Self as asserter, modelling
	// the SeNDlog world where every exported tuple is said by its
	// deriving principal.
	Authenticated bool
	// Hook captures provenance; nil means NoProv.
	Hook ProvHook
	// OnUpdate, when set, observes every table change, classified by
	// UpdateKind (insertion, retraction, soft-state expiry, or an
	// annotation-only merge of an alternative derivation). It is called
	// synchronously from the engine's (single) driving goroutine;
	// implementations must not call back into the engine.
	OnUpdate func(t data.Tuple, kind UpdateKind)
	// Shards partitions each evaluation wave's deltas by hash of
	// (predicate, join-key columns) across this many read-only eval
	// workers inside RunToFixpoint (0 or 1 = serial). Emissions always
	// commit through a deterministic ordered stage, so tables,
	// aggregates, provenance annotations, and export order are
	// bit-identical for every shard count.
	Shards int
	// ShadowCap bounds the aggregate-selection prune shadow per group
	// (0 = DefaultShadowCap, <0 = unbounded). Overflow evicts the
	// least-competitive candidate; a revival that may have lost
	// candidates to eviction falls back to restricted re-derivation.
	ShadowCap int
}

// DefaultShadowCap is the per-group prune-shadow bound applied when
// Config.ShadowCap is zero: enough to keep every realistic alternate
// route revivable without letting long-churning runs grow the shadow
// without bound.
const DefaultShadowCap = 64

// Engine is a single node's query processor. It is not safe for concurrent
// use; the network simulator drives all nodes from one goroutine, which
// keeps runs deterministic.
type Engine struct {
	self          string
	authenticated bool
	hook          ProvHook
	// noProv marks the null provenance hook: annotation bookkeeping that
	// exists only to feed Derive (aggregate witness bodies, body-copy
	// retention) is skipped on the hot path.
	noProv   bool
	onUpdate func(t data.Tuple, kind UpdateKind)

	tables map[string]*Table
	decls  map[string]*datalog.MaterializeDecl
	prunes map[string]*pruneSpec

	rules    []*compiledRule
	byPred   map[string][]atomRef
	aggState map[string]*aggGroupState // keyed by rule label + group key

	// shards is the intra-node eval parallelism (>=1); shardCols maps
	// each body predicate to the argument positions that participate in
	// joins, the hash basis for partitioning waves across shards.
	// shadowCap is Config.ShadowCap, resolved per pruneSpec at load.
	shards    int
	shardCols map[string][]int
	shadowCap int

	queue   []*Entry
	exports []Export

	// deps is the derivation dependency index driving retraction: for
	// every non-aggregate rule firing it maps each body tuple (keyed by
	// structural hash, equality-chained) to the derived heads (with their
	// destinations), so a deleted tuple's cone of influence can be walked
	// without re-running rules.
	deps  map[uint64][]*depEntry
	ndeps int

	// depEntryArena amortizes dependency-index allocation: entries come
	// from a chunked arena instead of one malloc each.
	depEntryArena []depEntry

	// destIDs caches interned destination-symbol ids (see destID).
	destIDs map[string]uint32

	// scratches holds one reusable evalScratch per eval worker; firedBuf
	// is the reused per-wave firing table. maxVars/maxAtoms/maxProbe are
	// the scratch sizes required by the loaded rules.
	scratches []*evalScratch
	firedBuf  [][]pending
	maxVars   int
	maxAtoms  int
	maxProbe  int

	// pend accumulates over-deletion state between BeginRetract* and the
	// CompleteRetract that repairs it (see retract.go).
	pend *retractPending
	// rederive state: while non-nil, emit filters derivations to the
	// tuples deleted by the current retraction batch (DRed's re-derivation
	// phase) instead of inserting/exporting everything.
	rederive *rederiveState
	// restrict, while non-nil, filters emit to local heads of a single
	// aggregate-selection group: the shadow-eviction revival fallback,
	// which re-derives only the candidates the bounded shadow dropped.
	restrict *restrictState

	// suppressAggEmit defers aggregate head emission during full
	// recomputation, so the diff against the previous groups decides what
	// to emit.
	suppressAggEmit bool

	now float64

	// Stats counts engine activity for the metrics report.
	Stats Stats
}

// Stats counts engine activity.
type Stats struct {
	Derivations   int64 // rule firings
	TuplesStored  int64
	TuplesDropped int64 // rejected by aggregate selection
	Merges        int64 // alternative derivations merged into existing tuples
	Expired       int64
	Retracted     int64 // tuples withdrawn by retraction cascades
	Waves         int64 // non-empty delta waves evaluated
}

// atomRef locates a body atom within a compiled rule.
type atomRef struct {
	rule *compiledRule
	atom int // index into rule.atoms
}

// pruneSpec is one aggregate-selection declaration. Groups are keyed by
// the structural hash of the group columns (pruneGroupState chains hold
// the identity for the equality fallback); each group carries its
// installed best, its shadow of rejected candidates, and its lossy flag
// in one place instead of three parallel string-keyed maps.
type pruneSpec struct {
	pred    string
	keyCols []int
	col     int
	min     bool
	// cap bounds each group's shadow (<0 = unbounded): overflow evicts
	// the least-competitive row and marks the group lossy, so a later
	// revival knows candidates may be missing and falls back to
	// restricted re-derivation instead of trusting the shadow alone.
	cap    int
	groups map[uint64][]*pruneGroupState
	// evictions counts rows enforceCap dropped, summed across specs by
	// Engine.ShadowEvictions (pruneSpec methods have no engine pointer,
	// so the count lives here rather than in Stats).
	evictions int64
}

// pruneGroupState is one aggregate-selection group: identity (asserter +
// group-column values; the predicate is the spec's), installed best, and
// the shadow of prune-rejected candidates retained for possible revival.
// Without the shadow, pruned alternatives would be unrecoverable after a
// link cut (they were dropped before storage and their senders will not
// re-ship them).
type pruneGroupState struct {
	hash     uint64
	asserter string
	vals     []data.Value
	hasBest  bool
	best     data.Value
	// shadow chains rows by full-tuple hash; nshadow counts them.
	shadow  map[uint64][]shadowRow
	nshadow int
	lossy   bool
}

// matches reports whether t belongs to this group (the equality fallback
// behind the group-hash key). The predicate is implied by the spec.
func (g *pruneGroupState) matches(t data.Tuple, keyCols []int) bool {
	if t.Asserter != g.asserter {
		return false
	}
	for i, c := range keyCols {
		if !t.Args[c].Equal(g.vals[i]) {
			return false
		}
	}
	return true
}

// group finds or creates the group state for tuple t.
func (ps *pruneSpec) group(t data.Tuple) *pruneGroupState {
	h := t.HashCols(ps.keyCols)
	for _, g := range ps.groups[h] {
		if g.matches(t, ps.keyCols) {
			return g
		}
	}
	vals := make([]data.Value, len(ps.keyCols))
	for i, c := range ps.keyCols {
		vals[i] = t.Args[c]
	}
	g := &pruneGroupState{hash: h, asserter: t.Asserter, vals: vals}
	ps.groups[h] = append(ps.groups[h], g)
	return g
}

// findGroup returns the existing group for t, or nil.
func (ps *pruneSpec) findGroup(t data.Tuple) *pruneGroupState {
	for _, g := range ps.groups[t.HashCols(ps.keyCols)] {
		if g.matches(t, ps.keyCols) {
			return g
		}
	}
	return nil
}

// maybeDrop removes an emptied group (no best, no shadow, not lossy) from
// the spec so long-churning runs do not accumulate dead group states.
func (ps *pruneSpec) maybeDrop(g *pruneGroupState) {
	if g.hasBest || g.nshadow > 0 || g.lossy {
		return
	}
	bucket := ps.groups[g.hash]
	for i, c := range bucket {
		if c == g {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(ps.groups, g.hash)
			} else {
				ps.groups[g.hash] = bucket
			}
			return
		}
	}
}

// shadowRow is one prune-rejected candidate kept for possible revival,
// with the support bookkeeping it would have carried as a stored entry.
type shadowRow struct {
	tuple        data.Tuple
	ann          Annotation
	localSupport bool
	origins      map[string]bool
}

// New creates an engine for node self.
func New(cfg Config) *Engine {
	hook := cfg.Hook
	if hook == nil {
		hook = NoProv{}
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	_, noProv := hook.(NoProv)
	return &Engine{
		self:          cfg.Self,
		authenticated: cfg.Authenticated,
		hook:          hook,
		noProv:        noProv,
		onUpdate:      cfg.OnUpdate,
		shards:        shards,
		shadowCap:     cfg.ShadowCap,
		tables:        make(map[string]*Table),
		decls:         make(map[string]*datalog.MaterializeDecl),
		prunes:        make(map[string]*pruneSpec),
		byPred:        make(map[string][]atomRef),
		aggState:      make(map[string]*aggGroupState),
		deps:          make(map[uint64][]*depEntry),
		destIDs:       make(map[string]uint32),
		shardCols:     make(map[string][]int),
	}
}

// UpdateKind classifies a table change reported through Config.OnUpdate.
type UpdateKind uint8

const (
	// UpdateAdded: the tuple entered the table.
	UpdateAdded UpdateKind = iota
	// UpdateRetracted: the tuple left the table via a retraction cascade
	// (or was displaced by an aggregate-selection replacement).
	UpdateRetracted
	// UpdateExpired: the tuple's soft-state TTL lapsed.
	UpdateExpired
	// UpdateAnnotation: the tuple stayed put but its provenance
	// annotation absorbed an alternative derivation (hook merge).
	UpdateAnnotation
)

// Entered reports whether the kind adds a tuple to the table (the other
// kinds either remove it or leave membership unchanged).
func (k UpdateKind) Entered() bool { return k == UpdateAdded }

// Left reports whether the kind removes a tuple from the table.
func (k UpdateKind) Left() bool { return k == UpdateRetracted || k == UpdateExpired }

// String names the kind for logs and wire-adjacent encodings.
func (k UpdateKind) String() string {
	switch k {
	case UpdateAdded:
		return "added"
	case UpdateRetracted:
		return "retracted"
	case UpdateExpired:
		return "expired"
	case UpdateAnnotation:
		return "annotation"
	default:
		return fmt.Sprintf("UpdateKind(%d)", uint8(k))
	}
}

// SetOnUpdate installs (or clears) the table-change observer. It must not
// be called while the engine is evaluating.
func (e *Engine) SetOnUpdate(f func(t data.Tuple, kind UpdateKind)) { e.onUpdate = f }

// notify reports a table change to the observer, if any.
func (e *Engine) notify(t data.Tuple, kind UpdateKind) {
	if e.onUpdate != nil {
		e.onUpdate(t, kind)
	}
}

// Self returns the node identifier.
func (e *Engine) Self() string { return e.self }

// SetNow advances the engine's logical clock (seconds).
func (e *Engine) SetNow(now float64) { e.now = now }

// Now returns the logical clock.
func (e *Engine) Now() float64 { return e.now }

// LoadProgram compiles a localized, validated program into the engine.
// Rules spanning multiple locations are rejected; run datalog.Localize
// first.
func (e *Engine) LoadProgram(prog *datalog.Program) error {
	if err := datalog.Validate(prog); err != nil {
		return err
	}
	for pred, d := range prog.Materialize { //provlint:allow mapiter map-to-map copy of declarations; order cannot escape
		e.decls[pred] = d
	}
	for _, pr := range prog.Prunes {
		cols := make([]int, len(pr.KeyCols))
		for i, c := range pr.KeyCols {
			cols[i] = c - 1
		}
		shadowCap := e.shadowCap
		if shadowCap == 0 {
			shadowCap = DefaultShadowCap
		}
		e.prunes[pr.Pred] = &pruneSpec{
			pred:    pr.Pred,
			keyCols: cols,
			col:     pr.Col - 1,
			min:     pr.Func == datalog.AggMin,
			cap:     shadowCap,
			groups:  make(map[uint64][]*pruneGroupState),
		}
	}
	for _, r := range prog.Rules {
		if locs := datalog.BodyLocations(r); len(locs) > 1 {
			return fmt.Errorf("engine: rule %s spans locations %v; localize the program first", r.Label, locs)
		}
		cr, err := compileRule(r)
		if err != nil {
			return err
		}
		e.rules = append(e.rules, cr)
		for i, a := range cr.atoms {
			e.byPred[a.pred] = append(e.byPred[a.pred], atomRef{rule: cr, atom: i})
		}
		e.recordShardCols(cr)
		if cr.nvars > e.maxVars {
			e.maxVars = cr.nvars
		}
		if len(cr.atoms) > e.maxAtoms {
			e.maxAtoms = len(cr.atoms)
		}
		if cr.maxProbe > e.maxProbe {
			e.maxProbe = cr.maxProbe
		}
	}
	return nil
}

// recordShardCols folds rule cr's join structure into the per-predicate
// shard-key columns: for every body atom, the argument positions whose
// variable occurs in more than one place within the rule's atoms (a join
// key). Deltas hash on (predicate, those columns) when waves are
// partitioned across shards, keeping tuples that join with each other on
// the same worker. The choice only affects locality — evaluation is
// read-only and commits are ordered, so any partition is correct.
func (e *Engine) recordShardCols(cr *compiledRule) {
	occ := make(map[int]int)
	for _, a := range cr.atoms {
		if a.says != nil && !a.says.isConst && a.says.slot >= 0 {
			occ[a.says.slot]++
		}
		for _, p := range a.args {
			if !p.isConst && p.slot >= 0 {
				occ[p.slot]++
			}
		}
	}
	for _, a := range cr.atoms {
		cols := e.shardCols[a.pred]
		for i, p := range a.args {
			if p.isConst || p.slot < 0 || occ[p.slot] < 2 {
				continue
			}
			seen := false
			for _, c := range cols {
				if c == i {
					seen = true
					break
				}
			}
			if !seen {
				cols = append(cols, i)
			}
		}
		sort.Ints(cols)
		e.shardCols[a.pred] = cols
	}
}

// shardOf maps a delta tuple to its evaluation shard: the structural
// hash of the join-key columns (the whole tuple when the predicate has
// none recorded). The choice only affects locality — evaluation is
// read-only and commits are ordered, so any partition is correct.
func (e *Engine) shardOf(t data.Tuple) int {
	cols := e.shardCols[t.Pred]
	h := t.Hash()
	if len(cols) > 0 {
		ok := true
		for _, c := range cols {
			if c >= len(t.Args) {
				ok = false
				break
			}
		}
		if ok {
			h = t.HashCols(cols)
		}
	}
	return int(h % uint64(e.shards))
}

// table returns (creating if needed) the table for pred, configured from
// its materialize declaration.
func (e *Engine) table(pred string) *Table {
	t, ok := e.tables[pred]
	if ok {
		return t
	}
	var keyCols []int
	ttl := -1.0
	maxSize := -1
	if d, ok := e.decls[pred]; ok {
		for _, c := range d.KeyCols {
			keyCols = append(keyCols, c-1)
		}
		ttl = d.TTLSeconds
		maxSize = d.MaxSize
	}
	t = NewTable(pred, keyCols, ttl, maxSize)
	t.concurrent = e.shards > 1
	e.tables[pred] = t
	return t
}

// SetTableKeys overrides the primary key columns of a predicate's table
// (0-based). It must be called before tuples are inserted.
func (e *Engine) SetTableKeys(pred string, cols []int) {
	t := e.table(pred)
	t.keyCols = cols
}

// InsertFact inserts a base tuple at this node with its declared TTL. In
// authenticated mode the fact is asserted by this node unless it already
// carries an asserter.
func (e *Engine) InsertFact(t data.Tuple) {
	if e.authenticated && t.Asserter == "" {
		t.Asserter = e.self
	}
	e.insert(t, e.hook.Base(t))
}

// InsertImported inserts a tuple received from the network together with
// its provenance payload. Signature verification happens in the transport
// layer before this call.
func (e *Engine) InsertImported(t data.Tuple, provPayload []byte) error {
	return e.InsertImportedFrom("", t, provPayload)
}

// InsertImportedFrom is InsertImported with the sending node recorded as
// the tuple's support origin, so a later retraction by that sender removes
// exactly the support it contributed. An empty from is treated as local
// support (the pre-churn behavior).
func (e *Engine) InsertImportedFrom(from string, t data.Tuple, provPayload []byte) error {
	ann, err := e.hook.Import(t, provPayload)
	if err != nil {
		return err
	}
	e.insertFrom(t, ann, from, 0)
	return nil
}

// InsertImportedAnn inserts a received tuple whose annotation was already
// reconstructed by the provenance hook — the trust-gating path, which
// needs the annotation before admission and should not pay a second
// payload deserialization.
func (e *Engine) InsertImportedAnn(t data.Tuple, ann Annotation) {
	e.insert(t, ann)
}

// InsertImportedAnnFrom is InsertImportedAnn with the sender recorded as
// support origin.
func (e *Engine) InsertImportedAnnFrom(from string, t data.Tuple, ann Annotation) {
	e.insertFrom(t, ann, from, 0)
}

// Imported pairs a received tuple with its provenance payload, for batch
// insertion.
type Imported struct {
	Tuple data.Tuple
	Prov  []byte
}

// InsertImportedBatch inserts a batch of received tuples, the unit the
// transport layer hands over per verified batch envelope. The whole delta
// is queued before the next RunToFixpoint processes it.
func (e *Engine) InsertImportedBatch(items []Imported) error {
	return e.InsertImportedBatchFrom("", items)
}

// InsertImportedBatchFrom is InsertImportedBatch with the sender recorded
// as support origin for every item.
func (e *Engine) InsertImportedBatchFrom(from string, items []Imported) error {
	for _, it := range items {
		if err := e.InsertImportedFrom(from, it.Tuple, it.Prov); err != nil {
			return err
		}
	}
	return nil
}

// insert stores a locally supported tuple (base fact or rule derivation)
// and queues it for semi-naive processing.
func (e *Engine) insert(t data.Tuple, ann Annotation) {
	e.insertFrom(t, ann, "", 0)
}

// insertFrom stores a tuple and queues it for semi-naive processing. It
// applies the aggregate-selection prune and primary-key replacement.
// origin names the remote sender supporting the tuple ("" = local); hash
// is t's cached structural hash when known (0 = compute on demand).
func (e *Engine) insertFrom(t data.Tuple, ann Annotation, origin string, hash uint64) {
	// Aggregate selection: drop tuples that do not improve their group.
	// A tuple identical to a stored live row bypasses the prune and takes
	// the duplicate path below instead: shadowing a stored tuple would
	// leave a copy of it in the shadow, and a later retraction of the row
	// would resurrect it from its own shadow entry (and the re-insert
	// must refresh the row's TTL and merge its support, which the shadow
	// never did).
	if ps, ok := e.prunes[t.Pred]; ok && !e.storedLive(t) {
		g := ps.group(t)
		val := t.Args[ps.col]
		if g.hasBest {
			c := val.Compare(g.best)
			if (ps.min && c >= 0) || (!ps.min && c <= 0) {
				e.Stats.TuplesDropped++
				ps.addShadow(g, t, ann, origin)
				return
			}
		}
		g.best = val
		g.hasBest = true
		ps.dropShadow(g, t)
	}

	tbl := e.table(t.Pred)
	entry, replaced, status := tbl.insertHashed(t, ann, e.now, hash)
	entry.addSupport(origin)
	switch status {
	case InsertNew, InsertReplaced:
		e.Stats.TuplesStored++
		e.queue = append(e.queue, entry)
		if replaced != nil {
			e.notify(replaced.Tuple, UpdateRetracted)
		}
		e.notify(t, UpdateAdded)
	case InsertDuplicate:
		merged, changed := e.hook.Merge(entry.Ann, ann)
		entry.Ann = merged
		if changed {
			e.Stats.Merges++
			e.queue = append(e.queue, entry)
			e.notify(t, UpdateAnnotation)
		}
	}
}

// addShadow records a prune-rejected candidate for possible revival,
// merging support when the same tuple is rejected repeatedly.
func (ps *pruneSpec) addShadow(g *pruneGroupState, t data.Tuple, ann Annotation, origin string) {
	row := shadowRow{tuple: t, ann: ann}
	if origin == "" {
		row.localSupport = true
	} else {
		row.origins = map[string]bool{origin: true}
	}
	ps.addShadowRow(g, row)
}

// enforceCap bounds one group's shadow: when the cap is exceeded, one
// row is dropped and the group is marked lossy so a later revival knows
// to fall back to restricted re-derivation. Victim selection: rows with
// local support go first — the fallback can re-derive those from this
// node's own rules, while a remote-only row (shipped by a sender that
// believes we still hold it) is unrecoverable once dropped. Within a
// class, worst-first (farthest from the optimum; ties broken by tuple
// order) keeps the rows most likely to become the next best.
func (ps *pruneSpec) enforceCap(g *pruneGroupState) {
	if ps.cap < 0 || g.nshadow <= ps.cap {
		return
	}
	var worstHash uint64
	var worstIdx int
	var worstRow shadowRow
	found := false
	for h, rows := range g.shadow { //provlint:allow mapiter extremum of a total order (ties broken by tupleLess); any iteration order picks the same victim
		for i, row := range rows {
			betterVictim := false
			switch {
			case !found:
				betterVictim = true
			case row.localSupport != worstRow.localSupport:
				betterVictim = row.localSupport
			default:
				c := row.tuple.Args[ps.col].Compare(worstRow.tuple.Args[ps.col])
				if c == 0 {
					betterVictim = tupleLess(worstRow.tuple, row.tuple)
				} else if ps.min {
					betterVictim = c > 0
				} else {
					betterVictim = c < 0
				}
			}
			if betterVictim {
				worstHash, worstIdx, worstRow, found = h, i, row, true
			}
		}
	}
	if found {
		g.removeShadowAt(worstHash, worstIdx)
		g.lossy = true
		ps.evictions++
	}
}

// removeShadowAt unlinks one shadow row from its bucket.
func (g *pruneGroupState) removeShadowAt(h uint64, i int) {
	rows := g.shadow[h]
	rows = append(rows[:i], rows[i+1:]...)
	if len(rows) == 0 {
		delete(g.shadow, h)
	} else {
		g.shadow[h] = rows
	}
	g.nshadow--
}

// findShadow locates t's shadow row in group g, returning its bucket
// hash and index (ok=false when absent).
func (g *pruneGroupState) findShadow(t data.Tuple) (uint64, int, bool) {
	h := t.Hash()
	for i, row := range g.shadow[h] {
		if row.tuple.Equal(t) {
			return h, i, true
		}
	}
	return h, 0, false
}

// dropShadow removes a tuple from its group's shadow (it is being stored
// for real).
func (ps *pruneSpec) dropShadow(g *pruneGroupState, t data.Tuple) {
	if h, i, ok := g.findShadow(t); ok {
		g.removeShadowAt(h, i)
	}
}

// RunToFixpoint processes queued tuples until this node has no more local
// work, returning (and clearing) the exports destined to other nodes.
//
// The queue drains in waves: each wave takes the current delta batch,
// evaluates every live entry read-only against the stored tables —
// partitioned by shardOf across Config.Shards workers when sharding is
// on — and then commits the collected firings through emit in batch
// order. Because evaluation never writes and the commit stage replays
// emissions in the deterministic wave order, tables, aggregates,
// provenance annotations, export order, and stats are bit-identical for
// every shard count; the FIFO queue the waves replace processed entries
// in this same breadth-first order. Two visibility edges are pinned
// down deterministically where the FIFO left them to arrival order: a
// tuple derived mid-wave becomes joinable only from the next wave (the
// FIFO exposed it to the remainder of the current batch), and an entry
// primary-key-replaced by an earlier commit of its own wave still
// commits its collected firings (the FIFO fired or skipped it depending
// on queue position). Both orderings are legal semi-naive schedules;
// the waves always pick the same one.
func (e *Engine) RunToFixpoint() []Export {
	// Ping-pong two queue arrays: the batch being drained and the queue
	// the wave's commits fill. A fully-consumed batch array becomes the
	// next wave's queue storage instead of garbage.
	var spare []*Entry
	for len(e.queue) > 0 {
		batch := e.queue
		e.queue = spare
		e.runWave(batch)
		spare = batch[:0]
	}
	out := e.exports
	e.exports = nil
	return out
}

// runWave evaluates one delta batch and commits its firings in order.
// Firings accumulate in per-worker pending arenas (reused across waves);
// the fired table maps each live entry to its arena span so the commit
// replay runs in deterministic wave order.
func (e *Engine) runWave(batch []*Entry) {
	live := batch[:0]
	for _, en := range batch {
		if !en.Dead {
			live = append(live, en)
		}
	}
	if len(live) == 0 {
		return
	}
	e.Stats.Waves++
	fired := e.firedBuf
	if cap(fired) < len(live) {
		fired = make([][]pending, len(live))
	} else {
		fired = fired[:len(live)]
	}
	if e.shards > 1 && len(live) > 1 {
		e.evalWaveSharded(live, fired)
	} else {
		sc := e.scratchFor(0)
		sc.pend = sc.pend[:0]
		sc.resetWave()
		for i, en := range live {
			s, t := e.evalEntry(en, sc)
			fired[i] = sc.pend[s:t:t]
		}
	}
	for i := range fired {
		for _, p := range fired[i] {
			e.emit(p.r, p.head, p.headHash, p.dest, p.body)
		}
		fired[i] = nil
	}
	e.firedBuf = fired[:0]
}

// evalEntry collects the firings of one delta entry (read-only) into the
// scratch's pending arena, returning the appended span.
func (e *Engine) evalEntry(en *Entry, sc *evalScratch) (int, int) {
	start := len(sc.pend)
	for _, ref := range e.byPred[en.Tuple.Pred] {
		e.evalDelta(ref.rule, ref.atom, en, &sc.pend, sc)
	}
	return start, len(sc.pend)
}

// evalWaveSharded partitions the wave by shardOf and evaluates each
// shard on its own worker. Workers only read engine state (tables,
// compiled rules, the clock) and write disjoint fired slots, so the
// only synchronization needed is the tables' lazy-index lock and the
// final barrier. Each worker appends into its own scratch arena; an
// arena regrowth leaves earlier spans pointing at the old backing array,
// whose contents are final — the spans stay valid.
func (e *Engine) evalWaveSharded(live []*Entry, fired [][]pending) {
	shards := make([][]int, e.shards)
	for i, en := range live {
		s := e.shardOf(en.Tuple)
		shards[s] = append(shards[s], i)
	}
	// Materialize every worker's scratch before spawning: scratchFor
	// mutates the engine's scratch list and must stay single-threaded.
	for w := range shards {
		e.scratchFor(w)
	}
	var wg sync.WaitGroup
	for w, idxs := range shards {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, idxs []int) {
			defer wg.Done()
			sc := e.scratches[w]
			sc.pend = sc.pend[:0]
			sc.resetWave()
			for _, i := range idxs {
				s, t := e.evalEntry(live[i], sc)
				fired[i] = sc.pend[s:t:t]
			}
		}(w, idxs)
	}
	wg.Wait()
}

// Pending reports whether the engine has queued work.
func (e *Engine) Pending() bool { return len(e.queue) > 0 }

// emit routes a derived head tuple: local heads are inserted, remote heads
// become exports. Aggregate heads go through contribution accounting
// (their provenance is derived when the aggregate value is emitted, not
// per contribution).
// headHash is head's cached structural hash when known (0 = compute on
// demand).
func (e *Engine) emit(r *compiledRule, head data.Tuple, headHash uint64, dest string, body []AnnTuple) {
	e.Stats.Derivations++
	if e.authenticated {
		head.Asserter = e.self
	}
	if r.agg != nil {
		// Aggregates are computed where the tuples live; a remote
		// aggregate head would need re-aggregation at the destination,
		// which the paper's programs never use. Retraction recomputes them
		// wholesale, so the rederive pass skips them, and the restricted
		// shadow-revival pass only re-derives prune candidates.
		if e.rederive == nil && e.restrict == nil {
			e.aggContribute(r, head, body)
		}
		return
	}
	if e.restrict != nil {
		// Shadow-eviction fallback: only local heads of the lossy prune
		// group re-enter the insert path (and its prune), where they
		// either install or re-shadow. Everything else is still stored
		// or already shipped and must not re-propagate.
		rs := e.restrict
		if dest != e.self || head.Pred != rs.ps.pred || !rs.g.matches(head, rs.ps.keyCols) {
			return
		}
	}
	// Record the dependency edges body → head for retraction cascades.
	// The head hash and interned destination id are shared by every edge.
	if len(body) > 0 {
		if headHash == 0 {
			headHash = head.Hash()
		}
		sig := destTupleKey{dest: e.destID(dest), hash: headHash}
		for i := range body {
			e.recordDep(body[i], head, dest, sig)
		}
	}
	if e.rederive != nil {
		// DRed re-derivation: only tuples deleted by the current
		// retraction batch are re-established, and only exports whose
		// withdrawal already shipped are re-sent; everything else is
		// still stored (locally or at dest) and must not re-propagate.
		// Membership checks run on (interned dest id, structural hash)
		// with tuple-equality fallback — no signature strings.
		if dest == e.self {
			if !e.rederive.deleted.has(head) {
				return
			}
		} else {
			if !e.rederive.shipped.remove(e, dest, head) {
				return
			}
			// Fall through: the export re-establishes the tuple at dest.
		}
	}
	ann := e.hook.Derive(r.label, e.self, head, body)
	if dest == e.self {
		e.insertFrom(head, ann, "", headHash)
		return
	}
	e.exports = append(e.exports, Export{Dest: dest, Tuple: head, Ann: ann})
}

// Tuples returns the live tuples of a predicate, sorted for determinism.
func (e *Engine) Tuples(pred string) []data.Tuple {
	tbl, ok := e.tables[pred]
	if !ok {
		return nil
	}
	out := tbl.Live(e.now)
	data.SortTuples(out)
	return out
}

// Count returns the number of live tuples of a predicate.
func (e *Engine) Count(pred string) int {
	tbl, ok := e.tables[pred]
	if !ok {
		return 0
	}
	return len(tbl.Live(e.now))
}

// Has reports whether the exact tuple is currently stored and live.
func (e *Engine) Has(t data.Tuple) bool { return e.storedLive(t) }

// storedLive reports whether the exact tuple is stored and unexpired.
func (e *Engine) storedLive(t data.Tuple) bool {
	tbl, ok := e.tables[t.Pred]
	if !ok {
		return false
	}
	en := tbl.Get(t)
	return en != nil && !en.Dead && !en.expired(e.now)
}

// AnnotationOf returns the annotation of a stored tuple, or nil.
func (e *Engine) AnnotationOf(t data.Tuple) Annotation {
	tbl, ok := e.tables[t.Pred]
	if !ok {
		return nil
	}
	if entry := tbl.Get(t); entry != nil && !entry.Dead {
		return entry.Ann
	}
	return nil
}

// ShadowSize reports the total number of prune-shadow rows retained
// across every aggregate-selection group — the quantity the per-group
// cap bounds (see Config.ShadowCap).
func (e *Engine) ShadowSize() int {
	n := 0
	for _, ps := range e.prunes { //provlint:allow mapiter commutative integer sum; order cannot escape
		for _, bucket := range ps.groups { //provlint:allow mapiter commutative integer sum; order cannot escape
			for _, g := range bucket {
				n += g.nshadow
			}
		}
	}
	return n
}

// DepSize reports the number of body tuples in the retraction
// dependency index — the structure Expire must purge alongside tables.
func (e *Engine) DepSize() int { return e.ndeps }

// ShadowEvictions reports the cumulative number of shadow rows dropped
// by the per-group cap (Config.ShadowCap) since the engine started.
func (e *Engine) ShadowEvictions() int64 {
	var n int64
	for _, ps := range e.prunes { //provlint:allow mapiter commutative integer sum; order cannot escape
		n += ps.evictions
	}
	return n
}

// ArenaHighWater reports the total capacity, in elements, of the eval
// scratch arenas (persistent value/annotation slabs, wave arenas, and
// the pending-firing buffers) across all eval workers — the steady-state
// memory the hot path has grown to.
func (e *Engine) ArenaHighWater() int64 {
	var n int64
	for _, sc := range e.scratches {
		if sc == nil {
			continue
		}
		n += int64(cap(sc.valArena) + cap(sc.waveVals))
		n += int64(cap(sc.annArena) + cap(sc.waveAnns) + cap(sc.pend))
	}
	return n
}

// Predicates returns the names of all tables with live tuples.
func (e *Engine) Predicates() []string {
	var out []string
	for name, tbl := range e.tables { //provlint:allow mapiter collected names are sorted before returning
		if len(tbl.Live(e.now)) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Expire advances the clock and removes expired soft-state, then
// recomputes aggregates from scratch (sliding-window semantics for
// aggregates over soft-state tables, §2.1).
//
// Expired tuples run the same bookkeeping cleanup a retraction runs:
// their dependency-index entries are purged (they drove the cascade
// walk; leaving them would leak memory on long soft-state runs and let
// a later BeginRetract walk dependents through tuples that no longer
// exist), and aggregate-selection groups whose installed optimum
// expired are relaxed so shadowed candidates compete again instead of
// being measured against a vanished best. Unlike a retraction, expiry
// does not cascade: derived soft state carries its own TTL.
func (e *Engine) Expire(now float64) {
	e.now = now
	expired := 0
	var groups []pruneGroup
	seen := make(map[*pruneGroupState]bool)
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gone := e.tables[name].ExpireTuples(now)
		expired += len(gone)
		data.SortTuples(gone)
		ps := e.prunes[name]
		for _, t := range gone {
			e.notify(t, UpdateExpired)
			e.dropDeps(t)
			if ps == nil {
				continue
			}
			g := ps.group(t)
			if !seen[g] {
				seen[g] = true
				groups = append(groups, pruneGroup{ps: ps, g: g})
			}
		}
	}
	e.Stats.Expired += int64(expired)
	if len(groups) > 0 {
		e.reviveShadows(groups)
	}
	if expired > 0 {
		e.recomputeAggregates()
	}
}
