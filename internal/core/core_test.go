package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
	"provnet/internal/semiring"
	"provnet/internal/topo"
)

// paperGraph is the 3-node example of §4: link(a,b), link(a,c), link(b,c).
func paperGraph() *topo.Graph {
	return topo.Custom([]topo.Link{
		{From: "a", To: "b", Cost: 1},
		{From: "a", To: "c", Cost: 1},
		{From: "b", To: "c", Cost: 1},
	})
}

func mustRun(t *testing.T, cfg Config) (*Network, *Report) {
	t.Helper()
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 512 // small keys keep unit tests fast
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return n, rep
}

func TestReachableNDlogPaperTopology(t *testing.T) {
	n, rep := mustRun(t, Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true})
	got := n.Tuples("a", "reachable")
	if len(got) != 2 {
		t.Fatalf("a reachable = %v", got)
	}
	if rep.Messages == 0 || rep.Bytes == 0 {
		t.Error("distributed run must exchange messages")
	}
	if n.Tuples("c", "reachable") != nil {
		t.Error("c reaches nothing")
	}
}

func TestReachableMatchesOracleOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, Seed: seed})
		n, _ := mustRun(t, Config{Source: ReachableNDlog, Graph: g, LinkNoCost: true})
		for _, src := range g.Nodes {
			want := g.Reachable(src)
			got := n.Tuples(src, "reachable")
			if len(got) != len(want) {
				t.Fatalf("seed %d node %s: reachable %d tuples, oracle %d", seed, src, len(got), len(want))
			}
			for _, tu := range got {
				if !want[tu.Args[1].Str] {
					t.Fatalf("seed %d: spurious %v", seed, tu)
				}
			}
		}
	}
}

func TestFigure1DerivationTree(t *testing.T) {
	// Figure 1: the NDlog derivation tree for reachable(a,c), with local
	// provenance so node a holds the complete tree.
	n, _ := mustRun(t, Config{
		Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		Prov: provenance.ModeLocal,
	})
	target := data.NewTuple("reachable", data.Str("a"), data.Str("c"))
	tree, _, err := n.DerivationTree("a", target, provenance.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Two alternative derivations: r1 from link(a,c) and (via the
	// localization rewrite of r2) from link(a,b) ⋈ reachable(b,c).
	if len(tree.Derivs) != 2 {
		t.Fatalf("derivations = %d\n%s", len(tree.Derivs), tree.Render(nil))
	}
	leaves := tree.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %v", leaves)
	}
	for _, l := range leaves {
		if l.Pred != "link" {
			t.Errorf("leaf %v should be a base link", l)
		}
	}
	rendered := tree.Render(nil)
	if !strings.Contains(rendered, "union") {
		t.Errorf("figure 1 tree should show a union:\n%s", rendered)
	}
}

func TestFigure2CondensedProvenance(t *testing.T) {
	// Figure 2: the SeNDlog derivation of reachable(a,c) carries the
	// condensed annotation <a+a*b> → <a>.
	n, _ := mustRun(t, Config{
		Source: ReachableSeNDlog, Graph: paperGraph(), LinkNoCost: true,
		Auth: auth.SchemeRSA, Prov: provenance.ModeCondensed,
	})
	target := data.NewTuple("reachable", data.Str("a"), data.Str("c")).Says("a")
	if got := n.CondensedExpr("a", target); got != "<a>" {
		t.Fatalf("condensed provenance = %q, want <a>", got)
	}
	// The same fact as asserted by b (derived at b via s3 from a's linkD
	// and b's own reachable) carries the product <a*b>.
	viaB := data.NewTuple("reachable", data.Str("a"), data.Str("c")).Says("b")
	if got := n.CondensedExpr("a", viaB); got != "<a*b>" {
		t.Fatalf("b-asserted condensed provenance = %q, want <a*b>", got)
	}
	// Unioning both assertions of the fact yields the paper's uncondensed
	// annotation a + a*b, which condenses to a.
	union := n.FactPoly("a", target.WithoutAsserter())
	if got := union.String(); got != "a + a*b" {
		t.Fatalf("fact poly = %q, want a + a*b", got)
	}
	// Quantifiable provenance (§4.5): with level(a)=2 the trust is 2.
	p := n.Poly("a", target)
	levels := map[string]int64{"a": 2, "b": 1}
	trust := semiring.Eval[int64](p, semiring.Trust{}, func(v string) int64 { return levels[v] })
	if trust != 2 {
		t.Errorf("trust = %d, want 2", trust)
	}
}

func TestBestPathMatchesDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := topo.RandomConnected(topo.Options{N: 10, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
		n, _ := mustRun(t, Config{Source: BestPath, Graph: g})
		for _, src := range g.Nodes {
			want := g.Dijkstra(src)
			got := map[string]int64{}
			for _, bp := range n.Tuples(src, "bestPath") {
				got[bp.Args[1].Str] = bp.Args[3].AsInt()
			}
			for dst, cost := range want {
				if dst == src {
					continue
				}
				if got[dst] != cost {
					t.Fatalf("seed %d: bestPath(%s,%s) = %d, oracle %d", seed, src, dst, got[dst], cost)
				}
			}
		}
	}
}

func TestBestPathPathsAreValid(t *testing.T) {
	g := topo.RandomConnected(topo.Options{N: 8, AvgOutDegree: 3, MaxCost: 5, Seed: 9})
	n, _ := mustRun(t, Config{Source: BestPath, Graph: g})
	adj := g.Adjacency()
	for _, src := range g.Nodes {
		for _, bp := range n.Tuples(src, "bestPath") {
			path := bp.Args[2].List
			cost := bp.Args[3].AsInt()
			if path[0].Str != src || path[len(path)-1].Str != bp.Args[1].Str {
				t.Fatalf("path endpoints wrong: %v", bp)
			}
			var sum int64
			for i := 0; i+1 < len(path); i++ {
				c, ok := adj[path[i].Str][path[i+1].Str]
				if !ok {
					t.Fatalf("path uses missing link %s->%s: %v", path[i].Str, path[i+1].Str, bp)
				}
				sum += c
			}
			if sum != cost {
				t.Fatalf("path cost %d != claimed %d: %v", sum, cost, bp)
			}
		}
	}
}

func TestVariantsAgreeOnResults(t *testing.T) {
	g := topo.RandomConnected(topo.Options{N: 8, AvgOutDegree: 3, MaxCost: 10, Seed: 3})
	costs := make([]map[string]int64, 3)
	bytes := make([]int64, 3)
	for i, v := range []Variant{VariantNDlog, VariantSeNDlog, VariantSeNDlogProv} {
		cfg := VariantConfig(v, BestPath)
		cfg.Graph = g
		n, rep := mustRun(t, cfg)
		bytes[i] = rep.Bytes
		costs[i] = map[string]int64{}
		for _, src := range g.Nodes {
			for _, bp := range n.Tuples(src, "bestPath") {
				costs[i][src+">"+bp.Args[1].Str] = bp.Args[3].AsInt()
			}
		}
		if v != VariantNDlog && rep.Signed == 0 {
			t.Errorf("%v must sign messages", v)
		}
		if v == VariantNDlog && rep.Signed != 0 {
			t.Error("NDlog must not sign")
		}
	}
	// All three compute identical best paths.
	for k, c := range costs[0] {
		if costs[1][k] != c || costs[2][k] != c {
			t.Fatalf("variant disagreement on %s: %d/%d/%d", k, c, costs[1][k], costs[2][k])
		}
	}
	// The paper's bandwidth ordering: NDlog < SeNDlog < SeNDlogProv.
	if !(bytes[0] < bytes[1] && bytes[1] < bytes[2]) {
		t.Errorf("bandwidth ordering violated: %v", bytes)
	}
}

func TestTamperedEnvelopeRejected(t *testing.T) {
	cfg := Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		Auth: auth.SchemeRSA, KeyBits: 512}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a message: correct format, wrong signature.
	env := &Envelope{
		From:   "b",
		Tuple:  data.NewTuple("reachable", data.Str("a"), data.Str("zz")),
		Scheme: auth.SchemeRSA,
	}
	forged, err := env.Encode(auth.SignerSealer{S: auth.NoneSigner{}}, "a") // empty signature
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Transport().Send("b", "a", forged); err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedSig != 1 {
		t.Errorf("rejected = %d, want 1", rep.RejectedSig)
	}
	for _, tu := range n.Tuples("a", "reachable") {
		if tu.Args[1].Str == "zz" {
			t.Fatal("forged tuple accepted")
		}
	}
}

func TestDistributedTraceThroughCore(t *testing.T) {
	n, _ := mustRun(t, Config{
		Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		Prov: provenance.ModeDistributed,
	})
	target := data.NewTuple("reachable", data.Str("a"), data.Str("c"))
	tree, stats, err := n.DerivationTree("a", target, provenance.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves()) == 0 {
		t.Fatalf("empty trace:\n%s", tree.Render(nil))
	}
	if stats.Messages == 0 {
		t.Error("distributed trace must cross nodes")
	}
}

func TestImportFilterTrustGate(t *testing.T) {
	// Orchestra-style gating: node a refuses tuples derivable only via
	// the distrusted principal c. The counter is atomic: the parallel
	// scheduler calls the filter from concurrent import workers.
	levels := map[string]int64{"a": 2, "b": 2, "c": 0}
	var rejected atomic.Int64
	cfg := Config{
		Source: ReachableSeNDlog, Graph: paperGraph(), LinkNoCost: true,
		Auth: auth.SchemeRSA, Prov: provenance.ModeCondensed, KeyBits: 512,
		Levels: levels,
		ImportFilter: func(self string, tu data.Tuple, p semiring.Poly) bool {
			trust := semiring.Eval[int64](p, semiring.Trust{}, func(v string) int64 { return levels[v] })
			if trust < 1 {
				rejected.Add(1)
				return false
			}
			return true
		},
	}
	n, rep := mustRun(t, cfg)
	_ = n
	if rep.RejectedFilter != rejected.Load() {
		t.Errorf("filter count mismatch: %d vs %d", rep.RejectedFilter, rejected.Load())
	}
}

func TestSoftStateAcrossNetwork(t *testing.T) {
	src := `
materialize(link, 10, infinity, keys(1,2)).
r1 reachable(@S,D) :- link(@S,D).
`
	n, _ := mustRun(t, Config{Source: src, Graph: paperGraph(), LinkNoCost: true})
	if len(n.Tuples("a", "link")) != 2 {
		t.Fatal("links live")
	}
	n.Advance(20)
	if len(n.Tuples("a", "link")) != 0 {
		t.Fatal("links must expire")
	}
}

func TestInsertFactAndRerun(t *testing.T) {
	n, _ := mustRun(t, Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true})
	// A new link c->a appears at runtime.
	if err := n.InsertFact("c", data.NewTuple("link", data.Str("c"), data.Str("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	// Now the graph is cyclic: c reaches everything.
	if got := len(n.Tuples("c", "reachable")); got != 3 {
		t.Fatalf("c reachable = %d, want 3", got)
	}
	if err := n.InsertFact("ghost", data.NewTuple("link", data.Str("g"), data.Str("h"))); err == nil {
		t.Error("unknown node must fail")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := NewNetwork(Config{Source: "syntax error ..."}); err == nil {
		t.Error("bad program must fail")
	}
	if _, err := NewNetwork(Config{Source: ReachableNDlog}); err == nil {
		t.Error("no nodes must fail")
	}
	if _, err := NewNetwork(Config{Source: ReachableNDlog, ExtraNodes: []string{"a"},
		AuthProv: true, Prov: provenance.ModeCondensed}); err == nil {
		t.Error("AuthProv without ModeLocal must fail")
	}
	bad := Config{Source: `r1 p(@S,X) :- q(@S,D).`, ExtraNodes: []string{"a"}}
	if _, err := NewNetwork(bad); err == nil {
		t.Error("unsafe program must fail")
	}
}

func TestAuthenticatedProvenanceEndToEnd(t *testing.T) {
	// §4.3 through the whole stack: every provenance tree node is signed
	// by its asserting principal and verified on import.
	n, rep := mustRun(t, Config{
		Source: ReachableSeNDlog, Graph: paperGraph(), LinkNoCost: true,
		Auth: auth.SchemeRSA, Prov: provenance.ModeLocal, AuthProv: true,
	})
	if rep.RejectedSig != 0 {
		t.Fatalf("unexpected rejections: %d", rep.RejectedSig)
	}
	// The imported tuple at a ("b says reachable(a,c)") carries a signed
	// tree whose nodes all verified.
	target := data.NewTuple("reachable", data.Str("a"), data.Str("c")).Says("b")
	tree, _, err := n.DerivationTree("a", target, provenance.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var unsigned int
	var walk func(tr *provenance.Tree)
	walk = func(tr *provenance.Tree) {
		if len(tr.Sig) == 0 {
			unsigned++
		}
		for _, d := range tr.Derivs {
			for _, c := range d.Children {
				walk(c)
			}
		}
	}
	walk(tree)
	if unsigned != 0 {
		t.Errorf("%d unsigned provenance nodes:\n%s", unsigned, tree.Render(nil))
	}
	// The tree's polynomial matches the SeNDlog derivation (a*b for the
	// b-asserted copy: a's linkD joined with b's own tuple).
	if got := provenance.TreePoly(tree, "a").String(); got != "a*b" {
		t.Errorf("tree poly = %q, want a*b", got)
	}
}

func TestReportFields(t *testing.T) {
	_, rep := mustRun(t, Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true})
	if rep.Rounds <= 0 || rep.CompletionTime <= 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Derivations == 0 || rep.TuplesStored == 0 {
		t.Errorf("engine stats missing: %+v", rep)
	}
}

func TestVariantStrings(t *testing.T) {
	if VariantNDlog.String() != "NDlog" || VariantSeNDlog.String() != "SeNDlog" ||
		VariantSeNDlogProv.String() != "SeNDlogProv" {
		t.Error("variant names")
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant renders")
	}
}

func TestHMACVariant(t *testing.T) {
	// The cheaper "says" of §2.2: HMAC instead of RSA.
	cfg := Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true, Auth: auth.SchemeHMAC}
	n, rep := mustRun(t, cfg)
	if rep.Signed == 0 || rep.Verified == 0 {
		t.Error("HMAC messages must be authenticated")
	}
	if len(n.Tuples("a", "reachable")) != 2 {
		t.Error("results unchanged under HMAC")
	}
}
