package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"provnet/internal/data"
	"provnet/internal/topo"
)

// TestSubscribeCloseInjectRace races Subscribe/Unsubscribe churn and
// mid-round Inject/SetLink against the live pump and a concurrent
// driver Close: nothing may deadlock (the test completes), every
// subscription channel must close, and the drop accounting must balance
// — two subscriptions registered on the same filter see the same
// publish stream, so delivered+dropped must be equal on both however
// the consumers behave. Run with -race this is the lifecycle-edge
// coverage the PR-3 API promised.
func TestSubscribeCloseInjectRace(t *testing.T) {
	g := topo.Custom([]topo.Link{
		{From: "a", To: "b", Cost: 2},
		{From: "b", To: "c", Cost: 2},
		{From: "c", To: "a", Cost: 2},
	})
	n, err := NewNetwork(Config{Source: BestPath, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Accounting pair, registered before Start so both see every update:
	// one consumer drains eagerly, the other never reads (exercising the
	// drop path once its buffer fills).
	full, err := d.Subscribe("a", "bestPath")
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := d.Subscribe("a", "bestPath")
	if err != nil {
		t.Fatal(err)
	}
	var drained atomic.Int64
	fullDone := make(chan struct{})
	go func() {
		defer close(fullDone)
		for range full.Updates() {
			drained.Add(1)
		}
	}()

	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				sub, err := d.Subscribe("", "")
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Subscribe: %v", err)
					}
					return // Close won the race; that is the point
				}
				if i%2 == 0 {
					select {
					case <-sub.Updates():
					default:
					}
				}
				_ = sub.Dropped()
				sub.Close()
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	injectErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 12; i++ {
			if err := d.SetLink("a", "b", 1+i%4); err != nil {
				injectErrs <- err
				return
			}
			if err := d.Inject("b", data.NewTuple("link", data.Str("b"), data.Str("a"), data.Int(1+i%3))); err != nil {
				injectErrs <- err
				return
			}
		}
		close(injectErrs)
	}()

	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	if err, ok := <-injectErrs; ok && err != nil {
		t.Fatalf("mid-round mutation: %v", err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	<-fullDone // full's channel must close: no deadlock, no leak

	// Drop accounting: both subscriptions observed the same stream.
	buffered := int64(0)
	for range lazy.Updates() {
		buffered++
	}
	gotFull := drained.Load() + full.Dropped()
	gotLazy := buffered + lazy.Dropped()
	if gotFull != gotLazy {
		t.Fatalf("drop accounting lost updates: full delivered+dropped = %d, lazy buffered+dropped = %d",
			gotFull, gotLazy)
	}
	if gotFull == 0 {
		t.Fatal("no updates observed at all; the workload should produce bestPath changes")
	}
}
