package core

import (
	"testing"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
)

func testSigner(t *testing.T) auth.Signer {
	t.Helper()
	dir := auth.NewDeterministicDirectory(11)
	dir.SetKeyBits(512)
	for _, p := range []string{"a", "b"} {
		if err := dir.AddPrincipal(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	return auth.NewRSASigner(dir)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	signer := testSigner(t)
	env := &Envelope{
		From:     "a",
		Tuple:    data.NewTuple("path", data.Str("a"), data.Str("c"), data.Strings("a", "b", "c"), data.Int(2)).Says("a"),
		ProvMode: provenance.ModeCondensed,
		Prov:     []byte{9, 8, 7},
		Scheme:   auth.SchemeRSA,
	}
	b, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || !got.Tuple.Equal(env.Tuple) || got.ProvMode != provenance.ModeCondensed {
		t.Fatalf("decoded = %+v", got)
	}
	if string(got.Prov) != string(env.Prov) {
		t.Error("prov payload mismatch")
	}
	if err := got.Verify(signer); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestEnvelopeNoneSchemeRoundTrip(t *testing.T) {
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeNone}
	b, err := env.Encode(auth.NoneSigner{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sig) != 0 {
		t.Error("none scheme has no signature")
	}
	if err := got.Verify(auth.NoneSigner{}); err != nil {
		t.Error("none verify must pass")
	}
}

func TestEnvelopeTamperDetection(t *testing.T) {
	signer := testSigner(t)
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}
	b, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := DecodeEnvelope(b)

	// Wrong claimed sender.
	got.From = "b"
	if err := got.Verify(signer); err == nil {
		t.Error("sender substitution must fail verification")
	}
	// Tampered tuple.
	got2, _ := DecodeEnvelope(b)
	got2.Tuple = data.NewTuple("p", data.Int(2))
	if err := got2.Verify(signer); err == nil {
		t.Error("tuple tampering must fail verification")
	}
	// Tampered provenance payload.
	got3, _ := DecodeEnvelope(b)
	got3.Prov = []byte{1}
	if err := got3.Verify(signer); err == nil {
		t.Error("provenance tampering must fail verification")
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	if _, err := DecodeEnvelope(nil); err == nil {
		t.Error("nil must fail")
	}
	if _, err := DecodeEnvelope([]byte{99, 0}); err == nil {
		t.Error("bad version must fail")
	}
	signer := testSigner(t)
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}
	b, _ := env.Encode(signer)
	if _, err := DecodeEnvelope(b[:len(b)-1]); err == nil {
		t.Error("truncation must fail")
	}
	if _, err := DecodeEnvelope(append(b, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}
