package core

import (
	"testing"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
)

func testSigner(t *testing.T) auth.Signer {
	t.Helper()
	dir := auth.NewDeterministicDirectory(11)
	dir.SetKeyBits(512)
	for _, p := range []string{"a", "b"} {
		if err := dir.AddPrincipal(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	return auth.NewRSASigner(dir)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	signer := testSigner(t)
	env := &Envelope{
		From:     "a",
		Tuple:    data.NewTuple("path", data.Str("a"), data.Str("c"), data.Strings("a", "b", "c"), data.Int(2)).Says("a"),
		ProvMode: provenance.ModeCondensed,
		Prov:     []byte{9, 8, 7},
		Scheme:   auth.SchemeRSA,
	}
	b, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || !got.Tuple.Equal(env.Tuple) || got.ProvMode != provenance.ModeCondensed {
		t.Fatalf("decoded = %+v", got)
	}
	if string(got.Prov) != string(env.Prov) {
		t.Error("prov payload mismatch")
	}
	if err := got.Verify(signer); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestEnvelopeNoneSchemeRoundTrip(t *testing.T) {
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeNone}
	b, err := env.Encode(auth.NoneSigner{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sig) != 0 {
		t.Error("none scheme has no signature")
	}
	if err := got.Verify(auth.NoneSigner{}); err != nil {
		t.Error("none verify must pass")
	}
}

func TestEnvelopeTamperDetection(t *testing.T) {
	signer := testSigner(t)
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}
	b, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := DecodeEnvelope(b)

	// Wrong claimed sender.
	got.From = "b"
	if err := got.Verify(signer); err == nil {
		t.Error("sender substitution must fail verification")
	}
	// Tampered tuple.
	got2, _ := DecodeEnvelope(b)
	got2.Tuple = data.NewTuple("p", data.Int(2))
	if err := got2.Verify(signer); err == nil {
		t.Error("tuple tampering must fail verification")
	}
	// Tampered provenance payload.
	got3, _ := DecodeEnvelope(b)
	got3.Prov = []byte{1}
	if err := got3.Verify(signer); err == nil {
		t.Error("provenance tampering must fail verification")
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	if _, err := DecodeEnvelope(nil); err == nil {
		t.Error("nil must fail")
	}
	if _, err := DecodeEnvelope([]byte{99, 0}); err == nil {
		t.Error("bad version must fail")
	}
	signer := testSigner(t)
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}
	b, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(b[:len(b)-1]); err == nil {
		t.Error("truncation must fail")
	}
	if _, err := DecodeEnvelope(append(b, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

// TestDecodeNeverPanics truncates valid envelopes of both wire formats at
// every prefix length: every cut must produce an error (or, for the full
// length, a clean decode) — never a panic.
func TestDecodeNeverPanics(t *testing.T) {
	signer := testSigner(t)
	env := &Envelope{
		From:     "a",
		Tuple:    data.NewTuple("path", data.Str("a"), data.Strings("a", "b"), data.Int(2)),
		ProvMode: provenance.ModeCondensed,
		Prov:     []byte{1, 2, 3},
		Scheme:   auth.SchemeRSA,
	}
	single, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	batch := &BatchEnvelope{
		From:     "a",
		ProvMode: provenance.ModeCondensed,
		Scheme:   auth.SchemeRSA,
		Items: []BatchItem{
			{Tuple: data.NewTuple("p", data.Int(1)), Prov: []byte{4}},
			{Tuple: data.NewTuple("q", data.Str("x"))},
		},
	}
	batched, err := batch.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]byte{single, batched} {
		for cut := 0; cut < len(b); cut++ {
			if _, err := DecodeEnvelope(b[:cut]); err == nil {
				t.Fatalf("single decode of %d/%d bytes must fail", cut, len(b))
			}
			if _, err := DecodeBatchEnvelope(b[:cut]); err == nil {
				t.Fatalf("batch decode of %d/%d bytes must fail", cut, len(b))
			}
		}
	}
}

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	signer := testSigner(t)
	env := &BatchEnvelope{
		From:     "a",
		ProvMode: provenance.ModeCondensed,
		Scheme:   auth.SchemeRSA,
		Items: []BatchItem{
			{Tuple: data.NewTuple("path", data.Str("a"), data.Str("c"), data.Int(2)).Says("a"), Prov: []byte{9, 8}},
			{Tuple: data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(1)).Says("a")},
		},
	}
	b, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.ProvMode != provenance.ModeCondensed || got.Scheme != auth.SchemeRSA {
		t.Fatalf("decoded header = %+v", got)
	}
	if len(got.Items) != 2 || !got.Items[0].Tuple.Equal(env.Items[0].Tuple) ||
		!got.Items[1].Tuple.Equal(env.Items[1].Tuple) {
		t.Fatalf("decoded items = %+v", got.Items)
	}
	if string(got.Items[0].Prov) != string(env.Items[0].Prov) || len(got.Items[1].Prov) != 0 {
		t.Error("prov payload mismatch")
	}
	if err := got.Verify(signer); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestBatchEnvelopeTamperDetection(t *testing.T) {
	signer := testSigner(t)
	env := &BatchEnvelope{
		From:   "a",
		Scheme: auth.SchemeRSA,
		Items:  []BatchItem{{Tuple: data.NewTuple("p", data.Int(1))}},
	}
	b, err := env.Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong claimed sender.
	got, _ := DecodeBatchEnvelope(b)
	got.From = "b"
	if err := got.Verify(signer); err == nil {
		t.Error("sender substitution must fail verification")
	}
	// Tampered item.
	got2, _ := DecodeBatchEnvelope(b)
	got2.Items[0].Tuple = data.NewTuple("p", data.Int(2))
	if err := got2.Verify(signer); err == nil {
		t.Error("item tampering must fail verification")
	}
	// Injected item.
	got3, _ := DecodeBatchEnvelope(b)
	got3.Items = append(got3.Items, BatchItem{Tuple: data.NewTuple("p", data.Int(3))})
	if err := got3.Verify(signer); err == nil {
		t.Error("item injection must fail verification")
	}
}

// TestWireFormatsAreDistinct pins down backward compatibility: each
// decoder accepts only its own version byte, so a receiver can dispatch
// on the first byte and still read seed-era single-tuple datagrams.
func TestWireFormatsAreDistinct(t *testing.T) {
	signer := testSigner(t)
	single, err := (&Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}).Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := (&BatchEnvelope{From: "a", Scheme: auth.SchemeRSA,
		Items: []BatchItem{{Tuple: data.NewTuple("p", data.Int(1))}}}).Encode(signer)
	if err != nil {
		t.Fatal(err)
	}
	if single[0] != wireVersion || batched[0] != wireVersionBatch {
		t.Fatalf("version bytes = %d, %d", single[0], batched[0])
	}
	if _, err := DecodeEnvelope(batched); err == nil {
		t.Error("single decoder must reject batch payloads")
	}
	if _, err := DecodeBatchEnvelope(single); err == nil {
		t.Error("batch decoder must reject single payloads")
	}
	if _, err := DecodeEnvelope(single); err != nil {
		t.Errorf("v1 decode: %v", err)
	}
}
