package core

import (
	"testing"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
)

func testDir(t *testing.T) *auth.Directory {
	t.Helper()
	dir := auth.NewDeterministicDirectory(11)
	dir.SetKeyBits(512)
	for _, p := range []string{"a", "b"} {
		if err := dir.AddPrincipal(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func testSealer(t *testing.T) auth.Sealer {
	t.Helper()
	return auth.SignerSealer{S: auth.NewRSASigner(testDir(t))}
}

// testSessionSealer returns a session sealer with the a→b handshake
// already performed on both sides.
func testSessionSealer(t *testing.T) *auth.SessionSealer {
	t.Helper()
	s := auth.NewSessionSealer(testDir(t), 0)
	need, epoch, err := s.EnsureSession("a", "b")
	if err != nil || !need {
		t.Fatalf("EnsureSession: need=%v err=%v", need, err)
	}
	frame, err := s.SealHandshake("a", "b", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcceptHandshake("b", frame); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEnvelopeRoundTrip(t *testing.T) {
	sealer := testSealer(t)
	env := &Envelope{
		From:     "a",
		Tuple:    data.NewTuple("path", data.Str("a"), data.Str("c"), data.Strings("a", "b", "c"), data.Int(2)).Says("a"),
		ProvMode: provenance.ModeCondensed,
		Prov:     []byte{9, 8, 7},
		Scheme:   auth.SchemeRSA,
	}
	b, err := env.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || !got.Tuple.Equal(env.Tuple) || got.ProvMode != provenance.ModeCondensed {
		t.Fatalf("decoded = %+v", got)
	}
	if string(got.Prov) != string(env.Prov) {
		t.Error("prov payload mismatch")
	}
	if err := got.Verify(sealer, "b"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestEnvelopeNoneSchemeRoundTrip(t *testing.T) {
	none := auth.SignerSealer{S: auth.NoneSigner{}}
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeNone}
	b, err := env.Encode(none, "b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sig) != 0 {
		t.Error("none scheme has no signature")
	}
	if err := got.Verify(none, "b"); err != nil {
		t.Error("none verify must pass")
	}
}

func TestEnvelopeTamperDetection(t *testing.T) {
	sealer := testSealer(t)
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}
	b, err := env.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := DecodeEnvelope(b)

	// Wrong claimed sender.
	got.From = "b"
	if err := got.Verify(sealer, "b"); err == nil {
		t.Error("sender substitution must fail verification")
	}
	// Tampered tuple.
	got2, _ := DecodeEnvelope(b)
	got2.Tuple = data.NewTuple("p", data.Int(2))
	if err := got2.Verify(sealer, "b"); err == nil {
		t.Error("tuple tampering must fail verification")
	}
	// Tampered provenance payload.
	got3, _ := DecodeEnvelope(b)
	got3.Prov = []byte{1}
	if err := got3.Verify(sealer, "b"); err == nil {
		t.Error("provenance tampering must fail verification")
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	if _, err := DecodeEnvelope(nil); err == nil {
		t.Error("nil must fail")
	}
	if _, err := DecodeEnvelope([]byte{99, 0}); err == nil {
		t.Error("bad version must fail")
	}
	sealer := testSealer(t)
	env := &Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}
	b, err := env.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(b[:len(b)-1]); err == nil {
		t.Error("truncation must fail")
	}
	if _, err := DecodeEnvelope(append(b, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

// TestDecodeNeverPanics truncates valid datagrams of all three wire
// formats at every prefix length: every cut must produce an error (or,
// for the full length, a clean decode) — never a panic.
func TestDecodeNeverPanics(t *testing.T) {
	sealer := testSealer(t)
	env := &Envelope{
		From:     "a",
		Tuple:    data.NewTuple("path", data.Str("a"), data.Strings("a", "b"), data.Int(2)),
		ProvMode: provenance.ModeCondensed,
		Prov:     []byte{1, 2, 3},
		Scheme:   auth.SchemeRSA,
	}
	single, err := env.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	batch := &BatchEnvelope{
		From:     "a",
		ProvMode: provenance.ModeCondensed,
		Scheme:   auth.SchemeRSA,
		Items: []BatchItem{
			{Tuple: data.NewTuple("p", data.Int(1)), Prov: []byte{4}},
			{Tuple: data.NewTuple("q", data.Str("x"))},
		},
	}
	batched, err := batch.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	session := testSessionSealer(t)
	sess := &SessionEnvelope{
		From:     "a",
		ProvMode: provenance.ModeCondensed,
		Items: []BatchItem{
			{Tuple: data.NewTuple("p", data.Int(1)), Prov: []byte{4}},
			{Tuple: data.NewTuple("q", data.Str("x"))},
		},
	}
	sessioned, err := sess.Encode(session, "b")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]byte{single, batched, sessioned} {
		for cut := 0; cut < len(b); cut++ {
			if _, err := DecodeEnvelope(b[:cut]); err == nil {
				t.Fatalf("single decode of %d/%d bytes must fail", cut, len(b))
			}
			if _, err := DecodeBatchEnvelope(b[:cut]); err == nil {
				t.Fatalf("batch decode of %d/%d bytes must fail", cut, len(b))
			}
			if _, err := DecodeSessionEnvelope(b[:cut]); err == nil {
				t.Fatalf("session decode of %d/%d bytes must fail", cut, len(b))
			}
			// None of these payloads are handshake frames, at any cut.
			if _, err := DecodeHandshakeFrame(b[:cut]); err == nil {
				t.Fatalf("handshake decode of %d/%d bytes must fail", cut, len(b))
			}
		}
	}
}

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	sealer := testSealer(t)
	env := &BatchEnvelope{
		From:     "a",
		ProvMode: provenance.ModeCondensed,
		Scheme:   auth.SchemeRSA,
		Items: []BatchItem{
			{Tuple: data.NewTuple("path", data.Str("a"), data.Str("c"), data.Int(2)).Says("a"), Prov: []byte{9, 8}},
			{Tuple: data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(1)).Says("a")},
		},
	}
	b, err := env.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.ProvMode != provenance.ModeCondensed || got.Scheme != auth.SchemeRSA {
		t.Fatalf("decoded header = %+v", got)
	}
	if len(got.Items) != 2 || !got.Items[0].Tuple.Equal(env.Items[0].Tuple) ||
		!got.Items[1].Tuple.Equal(env.Items[1].Tuple) {
		t.Fatalf("decoded items = %+v", got.Items)
	}
	if string(got.Items[0].Prov) != string(env.Items[0].Prov) || len(got.Items[1].Prov) != 0 {
		t.Error("prov payload mismatch")
	}
	if err := got.Verify(sealer, "b"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestBatchEnvelopeTamperDetection(t *testing.T) {
	sealer := testSealer(t)
	env := &BatchEnvelope{
		From:   "a",
		Scheme: auth.SchemeRSA,
		Items:  []BatchItem{{Tuple: data.NewTuple("p", data.Int(1))}},
	}
	b, err := env.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	// Wrong claimed sender.
	got, _ := DecodeBatchEnvelope(b)
	got.From = "b"
	if err := got.Verify(sealer, "b"); err == nil {
		t.Error("sender substitution must fail verification")
	}
	// Tampered item.
	got2, _ := DecodeBatchEnvelope(b)
	got2.Items[0].Tuple = data.NewTuple("p", data.Int(2))
	if err := got2.Verify(sealer, "b"); err == nil {
		t.Error("item tampering must fail verification")
	}
	// Injected item.
	got3, _ := DecodeBatchEnvelope(b)
	got3.Items = append(got3.Items, BatchItem{Tuple: data.NewTuple("p", data.Int(3))})
	if err := got3.Verify(sealer, "b"); err == nil {
		t.Error("item injection must fail verification")
	}
}

// TestSessionEnvelopeRoundTrip exercises the v3 data frame: sealed with
// the per-link session MAC, opened only on the right link.
func TestSessionEnvelopeRoundTrip(t *testing.T) {
	session := testSessionSealer(t)
	env := &SessionEnvelope{
		From:     "a",
		ProvMode: provenance.ModeCondensed,
		Items: []BatchItem{
			{Tuple: data.NewTuple("path", data.Str("a"), data.Str("c"), data.Int(2)).Says("a"), Prov: []byte{9, 8}},
			{Tuple: data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(1)).Says("a")},
		},
	}
	b, err := env.Encode(session, "b")
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != wireVersionSession || b[1] != frameData {
		t.Fatalf("frame header = %d %d", b[0], b[1])
	}
	got, err := DecodeSessionEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.ProvMode != provenance.ModeCondensed || len(got.Items) != 2 {
		t.Fatalf("decoded = %+v", got)
	}
	if !got.Items[0].Tuple.Equal(env.Items[0].Tuple) || string(got.Items[0].Prov) != string(env.Items[0].Prov) {
		t.Fatalf("decoded items = %+v", got.Items)
	}
	if err := got.Open(session, "b"); err != nil {
		t.Fatalf("open: %v", err)
	}
	// Tampered item must fail the MAC.
	got2, _ := DecodeSessionEnvelope(b)
	got2.Items[0].Tuple = data.NewTuple("p", data.Int(99))
	if err := got2.Open(session, "b"); err == nil {
		t.Error("item tampering must fail the session MAC")
	}
	// Wrong link must fail: no b→a session exists.
	got3, _ := DecodeSessionEnvelope(b)
	got3.From = "b"
	if err := got3.Open(session, "a"); err == nil {
		t.Error("cross-link replay must fail")
	}
}

// TestHandshakeFrameRoundTrip pins the v3 handshake framing.
func TestHandshakeFrameRoundTrip(t *testing.T) {
	blob := []byte{1, 2, 3, 4}
	frame := EncodeHandshakeFrame(blob)
	if frame[0] != wireVersionSession || frame[1] != frameHandshake {
		t.Fatalf("frame header = %d %d", frame[0], frame[1])
	}
	got, err := DecodeHandshakeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatalf("blob = %v", got)
	}
	for _, bad := range [][]byte{nil, {wireVersionSession}, {wireVersionSession, frameHandshake}, {wireVersionSession, frameData, 1}, {wireVersion, frameHandshake, 1}} {
		if _, err := DecodeHandshakeFrame(bad); err == nil {
			t.Errorf("DecodeHandshakeFrame(%v) must fail", bad)
		}
	}
}

// TestWireFormatsAreDistinct pins down backward compatibility: each
// decoder accepts only its own version byte (and v3 frames additionally
// their kind byte), so a receiver can dispatch on the first byte and
// still read seed-era single-tuple datagrams.
func TestWireFormatsAreDistinct(t *testing.T) {
	sealer := testSealer(t)
	single, err := (&Envelope{From: "a", Tuple: data.NewTuple("p", data.Int(1)), Scheme: auth.SchemeRSA}).Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	batched, err := (&BatchEnvelope{From: "a", Scheme: auth.SchemeRSA,
		Items: []BatchItem{{Tuple: data.NewTuple("p", data.Int(1))}}}).Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	session := testSessionSealer(t)
	sessioned, err := (&SessionEnvelope{From: "a",
		Items: []BatchItem{{Tuple: data.NewTuple("p", data.Int(1))}}}).Encode(session, "b")
	if err != nil {
		t.Fatal(err)
	}
	if single[0] != wireVersion || batched[0] != wireVersionBatch || sessioned[0] != wireVersionSession {
		t.Fatalf("version bytes = %d, %d, %d", single[0], batched[0], sessioned[0])
	}
	others := map[string][]byte{"batch": batched, "session": sessioned}
	for name, b := range others {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("single decoder must reject %s payloads", name)
		}
	}
	for name, b := range map[string][]byte{"single": single, "session": sessioned} {
		if _, err := DecodeBatchEnvelope(b); err == nil {
			t.Errorf("batch decoder must reject %s payloads", name)
		}
	}
	for name, b := range map[string][]byte{"single": single, "batch": batched} {
		if _, err := DecodeSessionEnvelope(b); err == nil {
			t.Errorf("session decoder must reject %s payloads", name)
		}
		if _, err := DecodeHandshakeFrame(b); err == nil {
			t.Errorf("handshake decoder must reject %s payloads", name)
		}
	}
	if _, err := DecodeEnvelope(single); err != nil {
		t.Errorf("v1 decode: %v", err)
	}
	if _, err := DecodeBatchEnvelope(batched); err != nil {
		t.Errorf("v2 decode: %v", err)
	}
	if _, err := DecodeSessionEnvelope(sessioned); err != nil {
		t.Errorf("v3 decode: %v", err)
	}
}

func TestRetractEnvelopeRoundTrip(t *testing.T) {
	sealer := testSealer(t)
	env := &RetractEnvelope{
		From:   "a",
		Scheme: auth.SchemeRSA,
		Tuples: []data.Tuple{
			data.NewTuple("bestPath", data.Str("a"), data.Str("c"), data.Strings("a", "b", "c"), data.Int(2)).Says("a"),
			data.NewTuple("path", data.Str("a"), data.Str("b"), data.Int(1)),
		},
	}
	b, err := env.Encode(sealer, "b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRetractEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || len(got.Tuples) != 2 || !got.Tuples[0].Equal(env.Tuples[0]) || !got.Tuples[1].Equal(env.Tuples[1]) {
		t.Fatalf("decoded = %+v", got)
	}
	if err := got.Verify(sealer, "b"); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Tampered withdrawal must not verify: a forged retraction would let
	// an attacker delete another node's state.
	got.Tuples[0] = data.NewTuple("bestPath", data.Str("a"), data.Str("d"))
	if err := got.Verify(sealer, "b"); err == nil {
		t.Error("tampered retract envelope must fail verification")
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeRetractEnvelope(b[:cut]); err == nil {
			t.Fatalf("retract decode of %d/%d bytes must fail", cut, len(b))
		}
	}
}

func TestSessionRetractFrameRoundTrip(t *testing.T) {
	session := testSessionSealer(t)
	env := &SessionEnvelope{
		From:    "a",
		Retract: true,
		Items:   []BatchItem{{Tuple: data.NewTuple("p", data.Int(1))}},
	}
	b, err := env.Encode(session, "b")
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != wireVersionSession || b[1] != frameRetract {
		t.Fatalf("frame header = %v, want v3 retract kind", b[:2])
	}
	got, err := DecodeSessionEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Retract || len(got.Items) != 1 {
		t.Fatalf("decoded = %+v", got)
	}
	if err := got.Open(session, "b"); err != nil {
		t.Fatalf("open: %v", err)
	}
	// A retract frame replayed as a data frame (kind flipped) must fail
	// the MAC: the frame kind is authenticated.
	flipped := append([]byte{}, b...)
	flipped[1] = frameData
	if got, err := DecodeSessionEnvelope(flipped); err == nil {
		if err := got.Open(session, "b"); err == nil {
			t.Error("kind-flipped session frame must fail to open")
		}
	}
}

// FuzzDecodeEnvelope fuzzes every wire decoder (v1 singles, v2 batches,
// v3 session frames, v4 retract envelopes) with one corpus: malformed
// frames must error, never panic. CI runs the fuzzer for a fixed budget
// on every build.
func FuzzDecodeEnvelope(f *testing.F) {
	dir := auth.NewDeterministicDirectory(11)
	dir.SetKeyBits(512)
	for _, p := range []string{"a", "b"} {
		if err := dir.AddPrincipal(p, 1); err != nil {
			f.Fatal(err)
		}
	}
	sealer := auth.SignerSealer{S: auth.NewRSASigner(dir)}
	tu := data.NewTuple("path", data.Str("a"), data.Str("c"), data.Strings("a", "b", "c"), data.Int(2)).Says("a")

	env := &Envelope{From: "a", Tuple: tu, ProvMode: provenance.ModeCondensed, Prov: []byte{9, 8, 7}, Scheme: auth.SchemeRSA}
	if b, err := env.Encode(sealer, "b"); err == nil {
		f.Add(b)
	}
	batch := &BatchEnvelope{From: "a", ProvMode: provenance.ModeLocal, Scheme: auth.SchemeRSA,
		Items: []BatchItem{{Tuple: tu, Prov: []byte{1}}, {Tuple: data.NewTuple("q", data.Str("x"))}}}
	if b, err := batch.Encode(sealer, "b"); err == nil {
		f.Add(b)
	}
	retr := &RetractEnvelope{From: "a", Scheme: auth.SchemeRSA, Tuples: []data.Tuple{tu}}
	if b, err := retr.Encode(sealer, "b"); err == nil {
		f.Add(b)
	}

	session := auth.NewSessionSealer(dir, 0)
	if need, epoch, err := session.EnsureSession("a", "b"); err == nil && need {
		if frame, err := session.SealHandshake("a", "b", epoch); err == nil {
			f.Add(EncodeHandshakeFrame(frame))
			if _, err := session.AcceptHandshake("b", frame); err != nil {
				f.Fatal(err)
			}
		}
	}
	sess := &SessionEnvelope{From: "a", ProvMode: provenance.ModeCondensed,
		Items: []BatchItem{{Tuple: tu, Prov: []byte{4}}}}
	if b, err := sess.Encode(session, "b"); err == nil {
		f.Add(b)
	}
	sessRetr := &SessionEnvelope{From: "a", Retract: true, Items: []BatchItem{{Tuple: tu}}}
	if b, err := sessRetr.Encode(session, "b"); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 0})
	f.Add([]byte{3, 1})
	f.Add([]byte{3, 2, 0})
	f.Add([]byte{4, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		// Every decoder must return a value or an error — never panic —
		// on arbitrary input. Decoded envelopes must also survive
		// re-encoding their authenticated prefix (Verify/Open walk it).
		if env, err := DecodeEnvelope(b); err == nil {
			_ = env.Verify(sealer, "b")
		}
		if env, err := DecodeBatchEnvelope(b); err == nil {
			_ = env.Verify(sealer, "b")
		}
		if env, err := DecodeSessionEnvelope(b); err == nil {
			_ = env.Open(session, "b")
		}
		if env, err := DecodeRetractEnvelope(b); err == nil {
			_ = env.Verify(sealer, "b")
		}
		_, _ = DecodeHandshakeFrame(b)
	})
}
