package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
	"provnet/internal/topo"
)

// snapshotPreds renders the named predicates across all nodes, for
// comparing the semantic outputs of two runs (the path candidate table
// legitimately differs between an incremental re-convergence and a
// restart: aggregate selection stores an order-dependent subset).
func snapshotPreds(n *Network, preds ...string) string {
	var b strings.Builder
	for _, name := range n.Nodes() {
		node := n.Node(name)
		for _, pred := range preds {
			for _, tu := range node.Engine.Tuples(pred) {
				fmt.Fprintf(&b, "%s: %s\n", name, tu)
			}
		}
	}
	return b.String()
}

// TestLiveMatchesBatch pins the compatibility half of the lifecycle API:
// driving the §6 Best-Path workload through Start/AwaitQuiescence yields
// tables, rounds, transport stats, and crypto counters bit-identical to
// the batch Run(0), across all four transport schedules.
func TestLiveMatchesBatch(t *testing.T) {
	schedules := []struct {
		name string
		mut  func(*Config)
	}{
		{"rsa-per-tuple", func(c *Config) { c.Unbatched = true }},
		{"rsa-per-batch", func(c *Config) {}},
		{"session-mac", func(c *Config) { c.SessionAuth = true }},
		{"session-mac-pipelined", func(c *Config) { c.SessionAuth = true; c.PipelinedCrypto = true }},
	}
	for _, s := range schedules {
		t.Run(s.name, func(t *testing.T) {
			cfg := bestPathCfg()
			cfg.KeyBits = 512 // match mustRun's fast test keys
			s.mut(&cfg)
			nBatch, repBatch := mustRun(t, cfg)

			nLive, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			d := nLive.Driver()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if err := d.Start(ctx); err != nil {
				t.Fatal(err)
			}
			repLive, err := d.AwaitQuiescence(ctx)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			if a, b := snapshot(t, nBatch), snapshot(t, nLive); a != b {
				t.Fatalf("tables differ\n--- batch ---\n%s--- live ---\n%s", a, b)
			}
			if repBatch.Rounds != repLive.Rounds {
				t.Errorf("rounds: batch %d, live %d", repBatch.Rounds, repLive.Rounds)
			}
			if a, b := nBatch.Transport().Stats(), nLive.Transport().Stats(); a != b {
				t.Errorf("netsim stats: batch %+v, live %+v", a, b)
			}
			if repBatch.Signed != repLive.Signed || repBatch.Verified != repLive.Verified ||
				repBatch.Handshakes != repLive.Handshakes ||
				repBatch.SealedMAC != repLive.SealedMAC || repBatch.OpenedMAC != repLive.OpenedMAC {
				t.Errorf("crypto ops: batch %+v, live %+v", repBatch, repLive)
			}
			if repBatch.Derivations != repLive.Derivations || repBatch.TuplesStored != repLive.TuplesStored {
				t.Errorf("engine stats: batch %d/%d, live %d/%d",
					repBatch.Derivations, repBatch.TuplesStored, repLive.Derivations, repLive.TuplesStored)
			}
		})
	}
}

// pathUsesEdge reports whether a bestPath path-list value routes over the
// directed edge from→to.
func pathUsesEdge(v data.Value, from, to string) bool {
	if v.Kind != data.KindList {
		return false
	}
	for i := 0; i+1 < len(v.List); i++ {
		if v.List[i].Str == from && v.List[i+1].Str == to {
			return true
		}
	}
	return false
}

// cutCandidate picks a link that some installed best path actually routes
// over, so cutting it forces visible re-convergence.
func cutCandidate(t *testing.T, n *Network, g *topo.Graph) topo.Link {
	t.Helper()
	for _, l := range g.Links {
		for _, name := range n.Nodes() {
			for _, bp := range n.Tuples(name, "bestPath") {
				if pathUsesEdge(bp.Args[2], l.From, l.To) {
					return l
				}
			}
		}
	}
	t.Fatal("no link participates in any best path")
	return topo.Link{}
}

// TestCutLinkReconverges is the tentpole acceptance test: after CutLink,
// every stale bestPath (one routed over the cut edge) is withdrawn on
// every node, the re-converged bestPath/spCost tables equal a fresh
// network built without the link, and the incremental re-convergence
// costs measurably fewer rounds and bytes than that restart.
func TestCutLinkReconverges(t *testing.T) {
	g := topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, MaxCost: 10, Seed: 9})
	cfg := Config{Source: BestPath, Graph: g, Auth: auth.SchemeRSA}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx := context.Background()
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	cut := cutCandidate(t, n, g)
	before := n.Transport().Stats()

	if err := d.CutLink(cut.From, cut.To); err != nil {
		t.Fatal(err)
	}
	rep, err := d.AwaitQuiescence(ctx)
	if err != nil {
		t.Fatal(err)
	}
	after := n.Transport().Stats()
	liveRounds, liveBytes := rep.Rounds, after.Bytes-before.Bytes
	if rep.Retracted == 0 {
		t.Fatal("no tuples retracted by the cut")
	}

	// No surviving bestPath routes over the cut edge, on any node.
	for _, name := range n.Nodes() {
		for _, bp := range n.Tuples(name, "bestPath") {
			if pathUsesEdge(bp.Args[2], cut.From, cut.To) {
				t.Fatalf("stale best path survived at %s: %s (cut %s->%s)", name, bp, cut.From, cut.To)
			}
		}
	}

	// The re-converged routing state equals a restart on the cut topology.
	rest := &topo.Graph{Nodes: g.Nodes}
	for _, l := range g.Links {
		if l != cut {
			rest.Links = append(rest.Links, l)
		}
	}
	cfgRest := cfg
	cfgRest.Graph = rest
	nRest, err := NewNetwork(cfgRest)
	if err != nil {
		t.Fatal(err)
	}
	repRest, err := nRest.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := snapshotPreds(n, "bestPath", "spCost"), snapshotPreds(nRest, "bestPath", "spCost"); a != b {
		t.Fatalf("re-converged tables differ from restart\n--- live ---\n%s--- restart ---\n%s", a, b)
	}

	// Incremental re-convergence beats the restart on both axes.
	restBytes := nRest.Transport().Stats().Bytes
	if liveBytes >= restBytes {
		t.Errorf("re-convergence bytes %d not below restart bytes %d", liveBytes, restBytes)
	}
	if liveRounds >= repRest.Rounds {
		t.Errorf("re-convergence rounds %d not below restart rounds %d", liveRounds, repRest.Rounds)
	}
	t.Logf("cut %s->%s: live %d rounds / %d bytes vs restart %d rounds / %d bytes",
		cut.From, cut.To, liveRounds, liveBytes, repRest.Rounds, restBytes)
}

// TestCutLinkAcrossTransports runs the cut-reconverge-equals-restart
// check under the session and pipelined transports, where retractions
// ride v3 retract frames instead of v4 envelopes.
func TestCutLinkAcrossTransports(t *testing.T) {
	for _, s := range []struct {
		name string
		mut  func(*Config)
	}{
		{"session", func(c *Config) { c.SessionAuth = true }},
		{"session-pipelined", func(c *Config) { c.SessionAuth = true; c.PipelinedCrypto = true }},
		{"sequential-unbatched", func(c *Config) { c.Sequential = true; c.Unbatched = true }},
	} {
		t.Run(s.name, func(t *testing.T) {
			g := topo.RandomConnected(topo.Options{N: 10, AvgOutDegree: 3, MaxCost: 10, Seed: 4})
			cfg := Config{Source: BestPath, Graph: g, Auth: auth.SchemeRSA}
			s.mut(&cfg)
			n, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			d := n.Driver()
			ctx := context.Background()
			if _, err := d.AwaitQuiescence(ctx); err != nil {
				t.Fatal(err)
			}
			cut := cutCandidate(t, n, g)
			if err := d.CutLink(cut.From, cut.To); err != nil {
				t.Fatal(err)
			}
			if _, err := d.AwaitQuiescence(ctx); err != nil {
				t.Fatal(err)
			}
			rest := &topo.Graph{Nodes: g.Nodes}
			for _, l := range g.Links {
				if l != cut {
					rest.Links = append(rest.Links, l)
				}
			}
			cfgRest := cfg
			cfgRest.Graph = rest
			nRest, err := NewNetwork(cfgRest)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := nRest.Run(0); err != nil {
				t.Fatal(err)
			}
			if a, b := snapshotPreds(n, "bestPath", "spCost"), snapshotPreds(nRest, "bestPath", "spCost"); a != b {
				t.Fatalf("re-converged tables differ from restart\n--- live ---\n%s--- restart ---\n%s", a, b)
			}
		})
	}
}

// TestSetLinkHandlesCostIncrease pins the semantics batch churn could not
// express: raising a link's cost retracts the old fact first, so best
// paths priced on the cheaper link are withdrawn and re-priced.
func TestSetLinkHandlesCostIncrease(t *testing.T) {
	g := topo.Custom([]topo.Link{
		{From: "a", To: "b", Cost: 1},
		{From: "b", To: "c", Cost: 1},
		{From: "a", To: "c", Cost: 10},
	})
	n, err := NewNetwork(Config{Source: BestPath, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx := context.Background()
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	want := data.NewTuple("bestPath", data.Str("a"), data.Str("c"),
		data.Strings("a", "b", "c"), data.Int(2))
	foundInitial := false
	for _, tu := range n.Tuples("a", "bestPath") {
		if tu.WithoutAsserter().Equal(want) {
			foundInitial = true
		}
	}
	if !foundInitial {
		t.Fatalf("initial bestPath = %v, want %s", n.Tuples("a", "bestPath"), want)
	}

	// Raising a→b to 20 makes the direct a→c (10) the best path.
	if err := d.SetLink("a", "b", 20); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	want = data.NewTuple("bestPath", data.Str("a"), data.Str("c"),
		data.Strings("a", "c"), data.Int(10))
	found := false
	for _, tu := range n.Tuples("a", "bestPath") {
		if tu.WithoutAsserter().Equal(want) {
			found = true
		}
		if tu.Args[1].Str == "c" && tu.Args[3].Int == 2 {
			t.Fatalf("stale 2-cost best path survived the cost increase: %s", tu)
		}
	}
	if !found {
		t.Fatalf("bestPath after increase = %v, want %s", n.Tuples("a", "bestPath"), want)
	}
}

// TestRunReportsCappedRounds is the regression test for the Rounds
// overcount: a run capped by maxRounds must report exactly maxRounds, not
// maxRounds+1, alongside ErrNoFixpoint.
func TestRunReportsCappedRounds(t *testing.T) {
	cfg := Config{Source: BestPath, Graph: topo.Line(5), Auth: auth.SchemeNone}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(2)
	if !errors.Is(err, ErrNoFixpoint) {
		t.Fatalf("err = %v, want ErrNoFixpoint", err)
	}
	if rep.Rounds != 2 {
		t.Fatalf("Rounds = %d, want exactly the cap 2", rep.Rounds)
	}
}

// TestContextCancellation checks that every blocking entry point honors
// cancellation: a cancelled context aborts Step/AwaitQuiescence mid-round
// with the context's error, and the network is not corrupted — a fresh
// context resumes it to the correct fixpoint.
func TestContextCancellation(t *testing.T) {
	cfg := bestPathCfg()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Step(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Step with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := d.AwaitQuiescence(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("AwaitQuiescence with cancelled ctx: err = %v, want context.Canceled", err)
	}
	deadline, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := d.AwaitQuiescence(deadline); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}

	// Cancellation is not fatal: the run resumes and converges correctly.
	if _, err := d.AwaitQuiescence(context.Background()); err != nil {
		t.Fatal(err)
	}
	nRef, _ := mustRun(t, cfg)
	if a, b := snapshot(t, n), snapshot(t, nRef); a != b {
		t.Fatalf("tables after cancel+resume differ from a clean run\n--- resumed ---\n%s--- clean ---\n%s", a, b)
	}
}

// TestStartContextDeathIsSticky pins the pump's failure mode: when the
// context given to Start dies, the driver must not keep accepting work
// it will never process, and waiters must not mistake the un-converged
// state for quiescence — every entry point reports the context error.
func TestStartContextDeathIsSticky(t *testing.T) {
	n, err := NewNetwork(bestPathCfg())
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(context.Background()); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The pump exits on its own; subsequent operations — even with a
	// healthy context — must surface the death instead of hanging or
	// reporting phantom quiescence.
	deadline := time.After(5 * time.Second)
	for {
		err := d.Inject("n0", data.NewTuple("link", data.Str("n0"), data.Str("n1"), data.Int(1)))
		if errors.Is(err, context.Canceled) {
			break
		}
		if err != nil {
			t.Fatalf("Inject after pump death: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("pump death never became sticky")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := d.AwaitQuiescence(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("AwaitQuiescence after pump death: err = %v, want context.Canceled", err)
	}
	d.Close()
}

// TestSubscribeStreamsUpdates checks the subscription surface: bestPath
// updates stream on a live driver, withdrawals arrive as Added=false
// after a cut, and Close terminates the channel.
func TestSubscribeStreamsUpdates(t *testing.T) {
	g := topo.Custom([]topo.Link{
		{From: "a", To: "b", Cost: 1},
		{From: "b", To: "c", Cost: 1},
	})
	n, err := NewNetwork(Config{Source: BestPath, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	sub, err := d.Subscribe("a", "bestPath")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	var adds int
	for len(sub.Updates()) > 0 {
		u := <-sub.Updates()
		if u.Node != "a" || u.Tuple.Pred != "bestPath" {
			t.Fatalf("filter leak: %+v", u)
		}
		if u.Added {
			adds++
		}
	}
	if adds == 0 {
		t.Fatal("no bestPath additions streamed during convergence")
	}

	if err := d.CutLink("b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	sawWithdraw := false
	for len(sub.Updates()) > 0 {
		if u := <-sub.Updates(); !u.Added && u.Tuple.Args[1].Str == "c" {
			sawWithdraw = true
		}
	}
	if !sawWithdraw {
		t.Fatal("cut link produced no bestPath withdrawal update")
	}
	sub.Close()
	if _, ok := <-sub.Updates(); ok {
		t.Fatal("channel still open after Close")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDriverConcurrentInjectSubscribeStep drives Inject and Subscribe
// from racing goroutines while the main goroutine steps the scheduler —
// the -race coverage the lifecycle API promises.
func TestDriverConcurrentInjectSubscribeStep(t *testing.T) {
	g := topo.Custom([]topo.Link{
		{From: "a", To: "b", Cost: 1},
		{From: "b", To: "c", Cost: 1},
		{From: "c", To: "a", Cost: 1},
	})
	n, err := NewNetwork(Config{Source: BestPath, Graph: g, SessionAuth: true, Auth: auth.SchemeRSA})
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 20; i++ {
			if err := d.Inject("a", data.NewTuple("link", data.Str("a"), data.Str("b"), data.Int(100+i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			sub, err := d.Subscribe("", "bestPath")
			if err != nil {
				t.Error(err)
				return
			}
			for len(sub.Updates()) > 0 {
				<-sub.Updates()
			}
			sub.Close()
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := d.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLiveTracebackSeesStaleProvenance runs a distributed-provenance
// network, cuts a link, and checks that (a) traceback queries work
// against the running driver and (b) the provenance of withdrawn tuples
// is marked stale rather than erased.
func TestLiveTracebackSeesStaleProvenance(t *testing.T) {
	g := topo.Custom([]topo.Link{
		{From: "a", To: "b", Cost: 1},
		{From: "b", To: "c", Cost: 1},
	})
	off := -1.0
	n, err := NewNetwork(Config{Source: BestPath, Graph: g, Prov: provenance.ModeDistributed, Offline: &off})
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	var target data.Tuple
	for _, tu := range n.Tuples("a", "bestPath") {
		if tu.Args[1].Str == "c" {
			target = tu
		}
	}
	if target.Pred == "" {
		t.Fatal("no bestPath(a,c) installed")
	}
	// Traceback against the live driver (stores are concurrency-safe).
	if _, _, err := n.DerivationTree("a", target, provenance.QueryOpts{}); err != nil {
		t.Fatalf("live traceback: %v", err)
	}

	if err := d.CutLink("b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	if n.Node("a").Engine.Has(target) {
		t.Fatal("bestPath(a,c) should be withdrawn after the cut")
	}
	entry := n.Node("a").Store.GetAny(provenance.KeyOf(target))
	if entry == nil {
		t.Fatal("withdrawn tuple's provenance erased; want stale-marked history")
	}
	if !entry.Stale {
		t.Fatal("withdrawn tuple's provenance not marked stale")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
