package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"provnet/internal/auth"
	"provnet/internal/provenance"
	"provnet/internal/topo"
)

// annSnapshot renders the condensed provenance annotation of every live
// tuple, so provenance bit-identity is pinned alongside the tables.
func annSnapshot(n *Network) string {
	var b strings.Builder
	for _, name := range n.Nodes() {
		node := n.Node(name)
		for _, pred := range node.Engine.Predicates() {
			for _, tu := range node.Engine.Tuples(pred) {
				fmt.Fprintf(&b, "%s: %s = %s\n", name, tu, n.CondensedExpr(name, tu))
			}
		}
	}
	return b.String()
}

// compareShardRuns asserts two runs produced bit-identical tables,
// rounds, transport stats, crypto counters, and engine stats.
func compareShardRuns(t *testing.T, nS, nP *Network, roundsS, roundsP int, repS, repP *Report) {
	t.Helper()
	if a, b := snapshot(t, nS), snapshot(t, nP); a != b {
		t.Fatalf("fixpoint tables differ\n--- serial ---\n%s--- sharded ---\n%s", a, b)
	}
	if roundsS != roundsP {
		t.Errorf("rounds: serial %d, sharded %d", roundsS, roundsP)
	}
	if a, b := nS.Transport().Stats(), nP.Transport().Stats(); a != b {
		t.Errorf("netsim stats: serial %+v, sharded %+v", a, b)
	}
	if repS.Signed != repP.Signed || repS.Verified != repP.Verified {
		t.Errorf("signature ops: serial %d/%d, sharded %d/%d",
			repS.Signed, repS.Verified, repP.Signed, repP.Verified)
	}
	if repS.Derivations != repP.Derivations || repS.TuplesStored != repP.TuplesStored ||
		repS.Retracted != repP.Retracted {
		t.Errorf("engine stats: serial %d/%d/%d, sharded %d/%d/%d",
			repS.Derivations, repS.TuplesStored, repS.Retracted,
			repP.Derivations, repP.TuplesStored, repP.Retracted)
	}
}

// driveLifecycle runs the live/churn workload through the synchronous
// driver: initial convergence, then either two SetLink re-costings (one
// improvement, one increase — the insert and retract paths) or two
// CutLinks on best-path-carrying links, each awaited to quiescence. It
// returns the network, the total rounds across epochs, and the final
// cumulative report.
func driveLifecycle(t *testing.T, cfg Config, g *topo.Graph, churn bool) (*Network, int, *Report) {
	t.Helper()
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 512
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx := context.Background()
	rep, err := d.AwaitQuiescence(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Rounds
	if churn {
		cut := cutCandidate(t, n, g)
		if err := d.CutLink(cut.From, cut.To); err != nil {
			t.Fatal(err)
		}
	} else {
		l0, l1 := g.Links[0], g.Links[1]
		if err := d.SetLink(l0.From, l0.To, 1); err != nil {
			t.Fatal(err)
		}
		if err := d.SetLink(l1.From, l1.To, l1.Cost+9); err != nil {
			t.Fatal(err)
		}
	}
	if rep, err = d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	total += rep.Rounds
	if churn {
		cut := cutCandidate(t, n, g)
		if err := d.CutLink(cut.From, cut.To); err != nil {
			t.Fatal(err)
		}
		if rep, err = d.AwaitQuiescence(ctx); err != nil {
			t.Fatal(err)
		}
		total += rep.Rounds
	}
	return n, total, rep
}

// TestShardedMatchesSerial pins the tentpole invariant of intra-node
// sharding: Config.EngineShards > 1 produces exactly the same fixpoint
// tables, provenance annotations, rounds, transport stats, and engine
// stats as serial evaluation — on batch runs, on live SetLink deltas,
// and on CutLink churn (the retraction machinery sharded included).
// Run with -race this also exercises the read-only eval workers and the
// tables' lazy-index lock under concurrency.
func TestShardedMatchesSerial(t *testing.T) {
	batch := []struct {
		name string
		cfg  Config
	}{
		{"reachable-ndlog-paper", Config{
			Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		}},
		{"bestpath-rsa", Config{
			Source: BestPath,
			Graph:  topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, MaxCost: 10, Seed: 4}),
			Auth:   auth.SchemeRSA,
		}},
		{"bestpath-session-pipelined-condensed", Config{
			Source:      BestPath,
			Graph:       topo.RandomConnected(topo.Options{N: 10, AvgOutDegree: 3, MaxCost: 10, Seed: 7}),
			Auth:        auth.SchemeRSA,
			SessionAuth: true, PipelinedCrypto: true,
			Prov: provenance.ModeCondensed,
		}},
		{"distance-vector-local-prov", Config{
			Source: DistanceVector,
			Graph:  topo.RandomConnected(topo.Options{N: 10, AvgOutDegree: 3, MaxCost: 10, Seed: 2}),
			Prov:   provenance.ModeLocal,
		}},
	}
	for _, tc := range batch {
		t.Run("batch/"+tc.name, func(t *testing.T) {
			serial := tc.cfg
			serial.EngineShards = 1
			nS, repS := mustRun(t, serial)

			sharded := tc.cfg
			sharded.EngineShards = 4
			nP, repP := mustRun(t, sharded)

			compareShardRuns(t, nS, nP, repS.Rounds, repP.Rounds, repS, repP)
			if tc.cfg.Prov == provenance.ModeCondensed {
				if a, b := annSnapshot(nS), annSnapshot(nP); a != b {
					t.Errorf("provenance annotations differ\n--- serial ---\n%s--- sharded ---\n%s", a, b)
				}
			}
		})
	}

	for _, churn := range []bool{false, true} {
		name := "live/bestpath-rsa"
		if churn {
			name = "churn/bestpath-rsa"
		}
		t.Run(name, func(t *testing.T) {
			g := topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, MaxCost: 10, Seed: 9})
			base := Config{Source: BestPath, Graph: g, Auth: auth.SchemeRSA}

			serial := base
			serial.EngineShards = 1
			nS, roundsS, repS := driveLifecycle(t, serial, g, churn)

			sharded := base
			sharded.EngineShards = 4
			nP, roundsP, repP := driveLifecycle(t, sharded, g, churn)

			compareShardRuns(t, nS, nP, roundsS, roundsP, repS, repP)
		})
	}
}

// TestEngineShardsKnob pins that every shard count produces the same
// result (the worker-count analogue of TestParallelWorkerKnob).
func TestEngineShardsKnob(t *testing.T) {
	g := topo.RandomConnected(topo.Options{N: 8, AvgOutDegree: 3, MaxCost: 5, Seed: 11})
	var want string
	var wantRounds int
	for i, shards := range []int{0, 1, 2, 3, 8, 64} {
		cfg := Config{Source: BestPath, Graph: g, EngineShards: shards}
		n, rep := mustRun(t, cfg)
		got := snapshot(t, n)
		if i == 0 {
			want, wantRounds = got, rep.Rounds
			continue
		}
		if got != want || rep.Rounds != wantRounds {
			t.Fatalf("engineshards=%d diverged (rounds %d vs %d)", shards, rep.Rounds, wantRounds)
		}
	}
}
