package core

import (
	"sync/atomic"
	"time"

	"provnet/internal/engine"
	"provnet/internal/netsim"
	"provnet/internal/obs"
)

// netMetrics bundles the Network's observability instruments. It is
// nil when Config.Metrics is nil, so every instrumented path pays one
// nil check and nothing else when observability is off — the benchgate
// allocation bound enforces that contract. When on, hot-path updates
// are atomic adds on pre-created instruments; everything that needs a
// map or a sort happens at scrape time or at round granularity.
//
// Layering: engine and the transports do not import obs. Engine
// activity is sampled here from cumulative engine.Stats sums at round
// boundaries (under the driver's run lock, so the reads are race-free),
// and transport counters are surfaced as scrape-time funcs over the
// Transport.Stats() the transports already maintain.
type netMetrics struct {
	m *obs.Metrics

	rounds        *obs.Counter
	retractRounds *obs.Counter
	quiesces      *obs.Counter
	idleTerms     *obs.Counter

	waves         *obs.Counter
	firings       *obs.Counter
	retracted     *obs.Counter
	shadowEvicted *obs.Counter
	deltasIn      *obs.Counter
	deltasOut     *obs.Counter

	roundSec  *obs.Histogram
	sealSec   *obs.Histogram
	verifySec *obs.Histogram
	flushSec  *obs.Histogram

	depSize    *obs.Gauge
	shadowSize *obs.Gauge
	arenaHW    *obs.Gauge

	// sealNanos/verifyNanos accumulate crypto time within the current
	// round. The parallel scheduler's workers add concurrently; the
	// round boundary reads and resets them under the run lock.
	sealNanos   atomic.Int64
	verifyNanos atomic.Int64

	// prev* snapshot the cumulative sums at the previous round boundary;
	// per-round figures are diffs against them. Round boundaries are
	// serialized by the run lock, so plain fields suffice.
	prev          engine.Stats
	prevEvictions int64
	prevIn        int64
	prevOut       int64
}

// queueDepther is the optional per-peer outbound-backlog surface
// (implemented by nettcp; netsim has no per-peer queues).
type queueDepther interface {
	QueueDepths() map[string]int
}

// storePender is the optional writer-lag surface of a Store
// (implemented by storelog.Log: queued + in-flight events).
type storePender interface {
	Pending() int
}

// newNetMetrics creates the Network's instruments in registry m and
// registers the scrape-time funcs that read state owned elsewhere.
func newNetMetrics(m *obs.Metrics, n *Network) *netMetrics {
	nm := &netMetrics{
		m:             m,
		rounds:        m.Counter("provnet_scheduler_rounds_total", "Forward scheduler rounds executed (export+import phases)."),
		retractRounds: m.Counter("provnet_scheduler_retract_rounds_total", "Withdrawal-only rounds executed while draining retraction waves."),
		quiesces:      m.Counter("provnet_scheduler_quiesces_total", "Quiescence decisions: view published and durable store sealed."),
		idleTerms:     m.Counter("provnet_scheduler_idle_terminations_total", "Distributed runs ended by the idle-window heuristic."),
		waves:         m.Counter("provnet_engine_waves_total", "Non-empty evaluation waves across all hosted engines."),
		firings:       m.Counter("provnet_engine_firings_total", "Rule firings (derivations) across all hosted engines."),
		retracted:     m.Counter("provnet_engine_retracted_total", "Tuples withdrawn by retraction cascades."),
		shadowEvicted: m.Counter("provnet_engine_shadow_evictions_total", "Prune-shadow rows evicted by the per-group cap."),
		deltasIn:      m.Counter("provnet_scheduler_deltas_in_total", "Inbound datagrams drained and applied by import phases."),
		deltasOut:     m.Counter("provnet_scheduler_deltas_out_total", "Outbound frames sealed and shipped by export phases."),
		roundSec:      m.Histogram("provnet_scheduler_round_seconds", "Wall time of one scheduler round.", obs.DefLatencyNanos, 1e-9),
		sealSec:       m.Histogram("provnet_crypto_seal_seconds", "Per-round time sealing outbound frames (signatures, MACs, handshakes).", obs.DefLatencyNanos, 1e-9),
		verifySec:     m.Histogram("provnet_crypto_verify_seconds", "Per-round time decoding and authenticating inbound datagrams.", obs.DefLatencyNanos, 1e-9),
		flushSec:      m.Histogram("provnet_store_flush_seconds", "Durable store seal+flush latency at quiescence points.", obs.DefLatencyNanos, 1e-9),
		depSize:       m.Gauge("provnet_engine_dep_index_size", "Body tuples in the retraction dependency index, all engines."),
		shadowSize:    m.Gauge("provnet_engine_shadow_size", "Prune-shadow rows retained, all engines."),
		arenaHW:       m.Gauge("provnet_engine_arena_high_water", "High-water total capacity (elements) of the eval scratch arenas."),
	}

	// Transport counters: the transports maintain these; export them as
	// scrape-time reads so the hot path is untouched.
	stats := func(pick func(s netsim.Stats) int64) func() int64 {
		return func() int64 { return pick(n.net.Stats()) }
	}
	m.CounterFunc("provnet_transport_messages_total", "Datagrams charged by the transport.", stats(func(s netsim.Stats) int64 { return s.Messages }))
	m.CounterFunc("provnet_transport_bytes_total", "Bytes charged by the transport (incl. framing overhead).", stats(func(s netsim.Stats) int64 { return s.Bytes }))
	m.CounterFunc("provnet_transport_dropped_total", "Sends to unknown nodes, dropped.", stats(func(s netsim.Stats) int64 { return s.DroppedMsg }))
	m.CounterFunc("provnet_transport_handshake_messages_total", "Session handshake frames shipped.", stats(func(s netsim.Stats) int64 { return s.HandshakeMessages }))
	m.CounterFunc("provnet_transport_reconnects_total", "Connections re-established after a drop (TCP transport).", stats(func(s netsim.Stats) int64 { return s.Reconnects }))
	m.CounterFunc("provnet_transport_requeues_total", "Frames retained across a dropped connection and re-sent (TCP transport).", stats(func(s netsim.Stats) int64 { return s.Requeues }))
	m.CounterFunc("provnet_transport_parked_frames_total", "Inbound frames parked for not-yet-registered nodes (TCP transport).", stats(func(s netsim.Stats) int64 { return s.Parked }))
	m.CounterFunc("provnet_transport_ack_messages_total", "Ack frames shipped by the reliability layer (TCP transport).", stats(func(s netsim.Stats) int64 { return s.AckMessages }))
	m.CounterFunc("provnet_transport_ack_bytes_total", "Bytes of ack traffic shipped by the reliability layer.", stats(func(s netsim.Stats) int64 { return s.AckBytes }))
	m.CounterFunc("provnet_transport_retransmits_total", "Sequenced frames re-sent after ack timeout or reconnect.", stats(func(s netsim.Stats) int64 { return s.Retransmits }))
	m.CounterFunc("provnet_transport_dup_dropped_total", "Duplicate sequenced frames suppressed by the receive window.", stats(func(s netsim.Stats) int64 { return s.DupDropped }))
	m.CounterFunc("provnet_transport_backpressured_total", "Sends that blocked on a full retransmit window.", stats(func(s netsim.Stats) int64 { return s.Backpressured }))
	m.GaugeFunc("provnet_transport_pending", "Undelivered inbound datagrams queued on the transport.", func() int64 {
		return int64(n.net.PendingCount())
	})
	if qd, ok := n.net.(queueDepther); ok {
		m.GaugeFunc("provnet_transport_queue_depth", "Outbound frames accepted but not yet shipped, summed over peers.", func() int64 {
			total := 0
			for _, d := range qd.QueueDepths() { //provlint:allow mapiter commutative integer sum; order cannot escape
				total += d
			}
			return int64(total)
		})
	}

	// Crypto and admission counters (atomics on the Network).
	m.CounterFunc("provnet_crypto_signed_total", "Asymmetric signature operations performed.", func() int64 { return n.signed.Load() })
	m.CounterFunc("provnet_crypto_verified_total", "Signature verifications performed.", func() int64 { return n.checked.Load() })
	m.CounterFunc("provnet_crypto_rejected_signatures_total", "Envelopes dropped for failed authentication.", func() int64 { return n.rejectedSig.Load() })
	m.CounterFunc("provnet_import_rejected_filter_total", "Imported tuples dropped by the trust filter.", func() int64 { return n.rejectedFilter.Load() })

	// Store writer lag, when the Store exposes it (storelog.Log does).
	if sp, ok := n.store.(storePender); ok {
		m.GaugeFunc("provnet_store_pending", "Store events queued or in flight behind the durable writer.", func() int64 {
			return int64(sp.Pending())
		})
	}
	return nm
}

// roundStart resets the per-round crypto accumulators. Called at the
// top of each round under the run lock.
func (nm *netMetrics) roundStart() {
	if nm == nil {
		return
	}
	nm.sealNanos.Store(0)
	nm.verifyNanos.Store(0)
}

// roundEnd samples the engines, updates counters/histograms, and
// appends one flight record. kind is "round" or "retract". Runs at
// round granularity under the run lock: the map allocations in the
// flight record are deliberate scrape-path cost, not hot-path cost.
func (nm *netMetrics) roundEnd(n *Network, kind string, start time.Time) {
	if nm == nil {
		return
	}
	wall := time.Since(start).Nanoseconds() //provlint:allow detpath metrics round timing, outside the deterministic state
	var sum engine.Stats
	var evictions, depSize, shadowSize, arenaHW int64
	for _, name := range n.order {
		e := n.nodes[name].Engine
		sum.Waves += e.Stats.Waves
		sum.Derivations += e.Stats.Derivations
		sum.Retracted += e.Stats.Retracted
		evictions += e.ShadowEvictions()
		depSize += int64(e.DepSize())
		shadowSize += int64(e.ShadowSize())
		arenaHW += e.ArenaHighWater()
	}
	dWaves := sum.Waves - nm.prev.Waves
	dFirings := sum.Derivations - nm.prev.Derivations
	dRetracted := sum.Retracted - nm.prev.Retracted
	dEvicted := evictions - nm.prevEvictions
	nm.prev, nm.prevEvictions = sum, evictions

	in, out := nm.deltasIn.Value(), nm.deltasOut.Value()
	dIn, dOut := in-nm.prevIn, out-nm.prevOut
	nm.prevIn, nm.prevOut = in, out

	if kind == "retract" {
		nm.retractRounds.Inc()
	} else {
		nm.rounds.Inc()
	}
	nm.waves.Add(dWaves)
	nm.firings.Add(dFirings)
	nm.retracted.Add(dRetracted)
	nm.shadowEvicted.Add(dEvicted)
	nm.roundSec.Observe(wall)
	sealNs := nm.sealNanos.Load()
	verifyNs := nm.verifyNanos.Load()
	nm.sealSec.Observe(sealNs)
	nm.verifySec.Observe(verifyNs)
	nm.depSize.Set(depSize)
	nm.shadowSize.Set(shadowSize)
	nm.arenaHW.SetMax(arenaHW)

	rec := obs.RoundRecord{
		Kind:             kind,
		StartNs:          start.UnixNano(),
		WallNs:           wall,
		Waves:            dWaves,
		DeltasIn:         dIn,
		DeltasOut:        dOut,
		Firings:          dFirings,
		Retracted:        dRetracted,
		SealNs:           sealNs,
		VerifyNs:         verifyNs,
		TransportPending: n.net.PendingCount(),
	}
	if qd, ok := n.net.(queueDepther); ok {
		rec.PeerQueues = qd.QueueDepths()
	}
	if sp, ok := n.store.(storePender); ok {
		rec.StoreLag = sp.Pending()
	}
	nm.m.FlightRecorder().Record(rec)
}

// observeQuiesce records one quiescence decision (view publish + store
// seal) and its wall time.
func (nm *netMetrics) observeQuiesce(n *Network, start time.Time) {
	if nm == nil {
		return
	}
	nm.quiesces.Inc()
	rec := obs.RoundRecord{
		Kind:             "quiesce",
		StartNs:          start.UnixNano(),
		WallNs:           time.Since(start).Nanoseconds(), //provlint:allow detpath metrics quiesce timing, outside the deterministic state
		TransportPending: n.net.PendingCount(),
	}
	if sp, ok := n.store.(storePender); ok {
		rec.StoreLag = sp.Pending()
	}
	nm.m.FlightRecorder().Record(rec)
}

// Metrics returns the registry the network records into, or nil when
// observability is disabled. The nil-safe obs instruments make the
// chain n.Metrics().Counter(...).Inc() a no-op when off, which is how
// call sites outside core (cliflags, queryapi) attach counters without
// their own nil checks.
func (n *Network) Metrics() *obs.Metrics {
	if n.nm == nil {
		return nil
	}
	return n.nm.m
}
