// Package core assembles the full provenance-aware secure network: it
// instantiates one query engine per hosted node over a pluggable
// Transport (the in-memory netsim fabric by default, or nettcp's TCP
// backend for multi-process deployments), wires in the configured says
// implementation and provenance mode, drives the distributed
// computation to a fixpoint — one-shot via Run, or resumably via the
// lifecycle Driver — and exposes the provenance query interface. The
// three configurations evaluated by the paper — NDlog, SeNDlog,
// SeNDlogProv (§6) — are presets over this package; the wire formats
// the scheduler seals are specified byte-for-byte in docs/WIRE.md, and
// docs/ARCHITECTURE.md maps the execution model.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/datalog"
	"provnet/internal/engine"
	"provnet/internal/netsim"
	"provnet/internal/obs"
	"provnet/internal/provenance"
	"provnet/internal/semiring"
	"provnet/internal/topo"
)

// Variant names the paper's three evaluated configurations.
type Variant uint8

// The §6 experiment variants.
const (
	// VariantNDlog: no authentication, no provenance.
	VariantNDlog Variant = iota
	// VariantSeNDlog: RSA-authenticated communication, no provenance.
	VariantSeNDlog
	// VariantSeNDlogProv: RSA authentication plus condensed (BDD)
	// provenance shipped with every tuple.
	VariantSeNDlogProv
)

// String names the variant as the paper does.
func (v Variant) String() string {
	switch v {
	case VariantNDlog:
		return "NDlog"
	case VariantSeNDlog:
		return "SeNDlog"
	case VariantSeNDlogProv:
		return "SeNDlogProv"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// Config assembles a network.
type Config struct {
	// Source is the NDlog/SeNDlog program text; alternatively Program
	// supplies a parsed one.
	Source  string
	Program *datalog.Program
	// Graph optionally supplies the topology; its links are inserted as
	// link(@from, to, cost) facts (or link(@from, to) when LinkNoCost).
	Graph *topo.Graph
	// LinkNoCost drops the cost column from generated link facts.
	LinkNoCost bool
	// ExtraNodes registers nodes that appear in no link or fact.
	ExtraNodes []string

	// Auth selects the says implementation for inter-node messages.
	Auth auth.Scheme
	// KeyBits sizes RSA keys (default auth.DefaultRSABits).
	KeyBits int
	// Prov selects the provenance mode.
	Prov provenance.Mode
	// AuthProv signs every provenance tree node (ModeLocal only): the
	// authenticated provenance of §4.3.
	AuthProv bool
	// Offline enables the offline provenance store with the given
	// maximum age (<0 keeps forever); nil disables it.
	Offline *float64
	// SampleEvery records only every k-th derivation into stores (§5).
	SampleEvery int

	// Levels assigns security levels to principals (default 1 each).
	Levels map[string]int64
	// Seed drives deterministic key generation.
	Seed int64

	// Sequential disables the parallel round scheduler and runs nodes one
	// after another within each round, as the seed implementation did.
	// Results (tables, rounds, transport stats) are identical either way;
	// the knob exists for A/B measurement and debugging.
	Sequential bool
	// Workers caps the scheduler's worker goroutines per phase
	// (0 = GOMAXPROCS). Ignored when Sequential is set.
	Workers int
	// Unbatched ships one signed envelope per exported tuple, as the seed
	// implementation did, instead of one batched envelope per (src,dst)
	// pair per round. A/B knob for the Figure 4 bandwidth experiments.
	Unbatched bool
	// SessionAuth switches the transport to the session-security stack
	// (wire version 3): one RSA handshake per (src,dst) link transports a
	// per-link session key, and every subsequent envelope is sealed with
	// a cheap HMAC under that key instead of a per-envelope signature.
	// A/B knob against the per-envelope says schemes; v1/v2 datagrams
	// are still decoded (and verified under Auth) for compatibility.
	SessionAuth bool
	// RekeyRounds rotates session keys — with a fresh handshake per live
	// link — every N scheduler rounds (0 = one key per link for the whole
	// run). Only meaningful with SessionAuth.
	RekeyRounds int
	// PipelinedCrypto moves sealing and verification into a dedicated
	// crypto worker stage that overlaps rule evaluation, instead of
	// running them inline in the export/import phases. Results are
	// bit-identical either way (see TestTransportSchedulesMatch); the
	// knob exists for A/B measurement.
	PipelinedCrypto bool
	// EngineShards shards each node's delta queue for intra-node
	// parallelism: every engine partitions its evaluation waves by hash
	// of (predicate, join-key columns) across this many read-only eval
	// workers inside RunToFixpoint, merging emissions through a
	// deterministic ordered-commit stage (0 or 1 = serial). Results —
	// tables, aggregates, provenance, export order, stats — are
	// bit-identical for every value (see TestShardedMatchesSerial). It
	// composes with the node-level scheduler knobs: Workers parallelizes
	// across nodes, EngineShards inside each node's fixpoint, and
	// PipelinedCrypto overlaps crypto with both.
	EngineShards int

	// Transport overrides the message substrate (nil = a fresh in-memory
	// netsim.Network). Supplying an internal/nettcp transport — together
	// with LocalNodes naming the node(s) this process hosts — turns the
	// single-process simulation into one member of a multi-process
	// deployment: exports to remote nodes cross real sockets while the
	// scheduler, wire formats, and security stack run unchanged.
	Transport Transport
	// LocalNodes restricts which nodes this process instantiates engines
	// for (nil = all, the single-process default). Remote nodes still
	// contribute their principals (keys are derived deterministically
	// from Seed, so every process agrees on the directory), but their
	// base facts are skipped and traffic to them is routed by the
	// Transport.
	LocalNodes []string

	// Resupply enables soft-state re-announcement: every hosted node
	// keeps a log of its current exports per destination, and when the
	// transport reports a peer process restarting (RestartNotifier), the
	// driver replays the log so the restarted process — which lost its
	// in-memory tables — is re-supplied without waiting for churn.
	// Engines are idempotent (set semantics, per-sender support), so
	// replayed exports are harmless to peers that never crashed. Off by
	// default: the log costs an allocation per export, which the
	// single-process hot path must not pay.
	Resupply bool

	// Store, when set, receives every table change at every hosted node
	// as an ordered event stream (insert/retract/expire/annotation), and
	// is sealed and flushed at quiescence points — the durability seam.
	// nil keeps the seed behavior: state lives only in the engines'
	// in-memory maps. internal/storelog supplies the durable append-only
	// implementation; the network closes the Store on Network.Close.
	Store Store

	// ImportFilter, when set with ModeCondensed, is consulted for every
	// imported tuple with its provenance polynomial; rejected tuples are
	// dropped and counted (Orchestra-style trust gating, §3). The parallel
	// scheduler calls it concurrently from the import workers of different
	// nodes, so stateful filters must synchronize (or set Sequential).
	ImportFilter func(self string, t data.Tuple, p semiring.Poly) bool

	// Metrics, when set, receives runtime observability: scheduler,
	// engine, transport, and store counters/histograms plus the
	// round/wave flight recorder (see internal/obs and
	// docs/OBSERVABILITY.md). nil disables instrumentation entirely —
	// the hot path pays one pointer check and allocates nothing, and
	// evaluation order and wire bytes are identical either way.
	// internal/queryapi serves a configured registry at /metrics and
	// /v1/debug/rounds.
	Metrics *obs.Metrics
}

// Node bundles one simulated node's components.
type Node struct {
	Name    string
	Engine  *engine.Engine
	Tracker *provenance.Tracker
	Store   *provenance.Store

	// pendingRetract holds withdrawals this node owes other nodes after a
	// retraction cascade (link churn). They ship ahead of the node's data
	// frames in the next export phase. Only this node's scheduler task
	// touches it (mutations are applied between rounds), so no lock.
	pendingRetract []engine.Withdrawal

	// exports is the soft-state log (Config.Resupply only): the current
	// exports per destination, replayed when a peer process restarts.
	// Keyed dest → tuple key; owned by this node's scheduler task like
	// pendingRetract, so no lock.
	exports map[string]map[string]BatchItem
}

// takeRetracts drains the node's pending withdrawals.
func (nd *Node) takeRetracts() []engine.Withdrawal {
	ws := nd.pendingRetract
	nd.pendingRetract = nil
	return ws
}

// Network is a fully assembled provenance-aware secure network.
type Network struct {
	cfg   Config
	prog  *datalog.Program
	net   Transport
	nodes map[string]*Node
	order []string
	idx   map[string]int // name → position in order
	dir   *auth.Directory
	// drv is the lazily created lifecycle driver; Run is a synchronous
	// wrapper over it.
	drvOnce sync.Once
	drv     *Driver
	// draining marks the retraction-wave drain (see drainRetractions):
	// inbound withdrawals run only their over-delete phase, repair waits
	// for global quiescence. Written between phases by the drain loop.
	draining bool
	// signer implements the per-principal says operator (used by
	// authenticated provenance and the legacy wire formats).
	signer auth.Signer
	// sealer is the transport sealer for outbound traffic: the legacy
	// adapter over signer, or the session sealer when SessionAuth is on.
	sealer auth.Sealer
	// legacy seals/opens v1/v2 datagrams — kept separate so a session
	// deployment still verifies traffic from pre-session senders.
	legacy auth.Sealer
	// session is non-nil iff SessionAuth is configured.
	session *auth.SessionSealer
	// store is Config.Store (nil = in-memory only). storeErr latches the
	// first append failure so one bad write doesn't spam every event.
	store    Store
	storeErr atomic.Pointer[error]
	// mutGen counts table mutations across all hosted engines; the driver
	// compares it across view builds so content-identical republishes
	// keep their snapshot Seq.
	mutGen atomic.Uint64
	// nm holds the observability instruments (nil = disabled; see
	// metrics.go).
	nm    *netMetrics
	clock float64
	// Signature and rejection counters are atomic: the parallel scheduler
	// signs and verifies from many goroutines at once.
	signed  atomic.Int64
	checked atomic.Int64
	// Rejected counts imports dropped by signature failure or the trust
	// filter.
	rejectedSig    atomic.Int64
	rejectedFilter atomic.Int64
	// allNodes is the sorted full node list — hosted and remote — shared
	// by every process of a deployment (all derive it from the same
	// program and topology). The termination detector's token ring walks
	// it in this order.
	allNodes []string
	// term is the active termination detector, nil unless StartTermination
	// ran. The hot path pays one atomic load per activity mark when a
	// detector is installed, and a nil check otherwise.
	term atomic.Pointer[TermDetector]
}

// ErrNoFixpoint is returned when Run exceeds its round budget.
var ErrNoFixpoint = errors.New("core: no distributed fixpoint within round budget")

// NewNetwork builds and initializes a network: parses and localizes the
// program, provisions principals and keys, instantiates engines and
// provenance trackers, and inserts the base facts (program facts plus
// topology links).
func NewNetwork(cfg Config) (*Network, error) {
	// The session scheme is sugar for RSA says over the session
	// transport: normalize it so Auth: SchemeSession and SessionAuth:
	// true configure the same stack.
	if cfg.Auth == auth.SchemeSession {
		cfg.Auth = auth.SchemeRSA
		cfg.SessionAuth = true
	}
	prog := cfg.Program
	if prog == nil {
		p, err := datalog.Parse(cfg.Source)
		if err != nil {
			return nil, err
		}
		prog = p
	}
	if err := datalog.Validate(prog); err != nil {
		return nil, err
	}
	localized, err := datalog.Localize(prog)
	if err != nil {
		return nil, err
	}

	// Says-semantics is on when the program uses SeNDlog contexts.
	saysSemantics := false
	for _, r := range localized.Rules {
		if r.IsSeNDlog() {
			saysSemantics = true
			break
		}
	}

	transport := cfg.Transport
	if transport == nil {
		transport = netsim.New()
	}
	n := &Network{
		cfg:   cfg,
		prog:  localized,
		net:   transport,
		store: cfg.Store,
		nodes: make(map[string]*Node),
		idx:   make(map[string]int),
		dir:   auth.NewDeterministicDirectory(cfg.Seed),
	}
	bits := cfg.KeyBits
	if bits == 0 {
		bits = auth.DefaultRSABits
	}
	n.dir.SetKeyBits(bits)

	switch cfg.Auth {
	case auth.SchemeNone:
		n.signer = auth.NoneSigner{}
	case auth.SchemeHMAC:
		n.signer = auth.NewHMACSigner([]byte(fmt.Sprintf("provnet-master-%d", cfg.Seed)))
	case auth.SchemeRSA:
		n.signer = auth.NewRSASigner(n.dir)
	default:
		return nil, fmt.Errorf("core: unknown auth scheme %v", cfg.Auth)
	}
	n.legacy = auth.SignerSealer{S: n.signer}
	if cfg.SessionAuth {
		n.session = auth.NewSessionSealer(n.dir, cfg.RekeyRounds)
		n.sealer = n.session
	} else {
		n.sealer = n.legacy
	}

	// Collect the node set: topology nodes, fact placements, extras.
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	if cfg.Graph != nil {
		for _, nm := range cfg.Graph.Nodes {
			add(nm)
		}
	}
	for _, f := range localized.Facts {
		add(f.Node)
	}
	for _, nm := range cfg.ExtraNodes {
		add(nm)
	}
	if len(names) == 0 {
		return nil, errors.New("core: no nodes (no topology, facts, or extra nodes)")
	}
	n.allNodes = append([]string(nil), names...)
	sort.Strings(n.allNodes)

	for _, name := range names {
		level := int64(1)
		if l, ok := cfg.Levels[name]; ok {
			level = l
		}
		if err := n.dir.AddPrincipal(name, level); err != nil {
			return nil, err
		}
	}

	// Multi-process deployments instantiate engines only for the nodes
	// this process hosts; every process still derives the full principal
	// directory above, so cross-process signatures and handshakes verify.
	var local map[string]bool
	if len(cfg.LocalNodes) > 0 {
		local = make(map[string]bool, len(cfg.LocalNodes))
		for _, name := range cfg.LocalNodes {
			if !seen[name] {
				return nil, fmt.Errorf("core: local node %q not in the network (no link, fact, or extra names it)", name)
			}
			local[name] = true
		}
	}
	hosted := func(name string) bool { return local == nil || local[name] }

	for _, name := range names {
		if !hosted(name) {
			continue
		}
		if err := n.addNode(name, saysSemantics); err != nil {
			return nil, err
		}
	}

	// Base facts: program facts, then topology links. Facts placed at
	// remote nodes are that process's responsibility.
	for _, f := range localized.Facts {
		node, ok := n.nodes[f.Node]
		if !ok {
			if !hosted(f.Node) {
				continue
			}
			return nil, fmt.Errorf("core: fact %s placed at unknown node %q", f.Tuple, f.Node)
		}
		node.Engine.InsertFact(f.Tuple)
	}
	if cfg.Graph != nil {
		for _, l := range cfg.Graph.Links {
			node, ok := n.nodes[l.From]
			if !ok {
				continue // a remote process owns this link fact
			}
			tu := data.NewTuple("link", data.Str(l.From), data.Str(l.To), data.Int(l.Cost))
			if cfg.LinkNoCost {
				tu = data.NewTuple("link", data.Str(l.From), data.Str(l.To))
			}
			node.Engine.InsertFact(tu)
		}
	}
	if cfg.Metrics != nil {
		n.nm = newNetMetrics(cfg.Metrics, n)
	}
	return n, nil
}

func (n *Network) addNode(name string, saysSemantics bool) error {
	store := provenance.NewStore(name)
	if n.cfg.Offline != nil {
		store.EnableOffline(*n.cfg.Offline)
	}
	self := name
	tcfg := provenance.TrackerConfig{
		Mode:        n.cfg.Prov,
		Self:        self,
		Store:       store,
		Clock:       func() float64 { return n.clock },
		SampleEvery: n.cfg.SampleEvery,
	}
	if n.cfg.AuthProv {
		if n.cfg.Prov != provenance.ModeLocal {
			return errors.New("core: AuthProv requires ModeLocal provenance")
		}
		tcfg.Signer = n.signer
	}
	tracker := provenance.NewTracker(tcfg)
	eng := engine.New(engine.Config{
		Self:          name,
		Authenticated: saysSemantics,
		Hook:          tracker,
		OnUpdate: func(t data.Tuple, kind engine.UpdateKind) {
			n.onEngineUpdate(name, t, kind)
		},
		Shards: n.cfg.EngineShards,
	})
	if err := eng.LoadProgram(n.prog); err != nil {
		return err
	}
	n.nodes[name] = &Node{Name: name, Engine: eng, Tracker: tracker, Store: store}
	n.idx[name] = len(n.order)
	n.order = append(n.order, name)
	n.net.AddNode(name)
	return nil
}

// onEngineUpdate observes every table change at a node: removals mark the
// tuple's provenance stale (the store keeps the history; the flag records
// that the network no longer derives the tuple — §4.2's offline story
// extended to churn), insertions/removals stream to live subscriptions,
// and every kind — including annotation-only merges — feeds the durable
// Store's event log. It is called from the owning node's scheduler task;
// the provenance store, the Store, and the driver's subscription registry
// are concurrency-safe.
func (n *Network) onEngineUpdate(name string, t data.Tuple, kind engine.UpdateKind) {
	nd := n.nodes[name]
	if nd != nil {
		switch {
		case kind.Entered():
			nd.Tracker.Restore(t)
		case kind.Left():
			nd.Tracker.Withdraw(t)
		}
	}
	n.mutGen.Add(1)
	if n.store != nil && n.storeErr.Load() == nil {
		ev := StoreEvent{Node: name, Tuple: t, At: n.clock}
		switch kind {
		case engine.UpdateAdded:
			ev.Kind = EvInsert
		case engine.UpdateRetracted:
			ev.Kind = EvRetract
		case engine.UpdateExpired:
			ev.Kind = EvExpire
		case engine.UpdateAnnotation:
			ev.Kind = EvProv
		}
		if nd != nil && (ev.Kind == EvInsert || ev.Kind == EvProv) {
			ev.Prov = nd.Tracker.ExprOf(nd.Engine.AnnotationOf(t))
		}
		if err := n.store.Append(ev); err != nil {
			n.storeErr.CompareAndSwap(nil, &err)
		}
	}
	if kind != engine.UpdateAnnotation {
		if d := n.drv; d != nil {
			d.publish(name, t, kind.Entered())
		}
	}
}

// FlushStore blocks until every appended store event is durable (no-op
// without a configured Store). It returns the first store error, if any.
func (n *Network) FlushStore() error {
	if n.store == nil {
		return nil
	}
	if err := n.store.Flush(); err != nil {
		n.storeErr.CompareAndSwap(nil, &err)
	}
	return n.StoreErr()
}

// sealStore marks a quiescent point on the configured Store and flushes
// it (no-op without one). Errors latch into storeErr.
func (n *Network) sealStore() error {
	if n.store == nil {
		return nil
	}
	var start time.Time
	if n.nm != nil {
		start = time.Now() //provlint:allow detpath metrics flush timing, outside the deterministic state
	}
	if err := n.store.Seal(); err != nil {
		n.storeErr.CompareAndSwap(nil, &err)
	}
	if err := n.store.Flush(); err != nil {
		n.storeErr.CompareAndSwap(nil, &err)
	}
	if n.nm != nil {
		n.nm.flushSec.Observe(time.Since(start).Nanoseconds()) //provlint:allow detpath metrics flush timing, outside the deterministic state
	}
	return n.StoreErr()
}

// StoreErr returns the first error the configured Store reported, or nil.
func (n *Network) StoreErr() error {
	if p := n.storeErr.Load(); p != nil {
		return *p
	}
	return nil
}

// StoreOf returns the configured Store (nil = in-memory only).
func (n *Network) StoreOf() Store { return n.store }

// ProvMode returns the network's provenance mode.
func (n *Network) ProvMode() provenance.Mode { return n.cfg.Prov }

// Report summarizes one Run.
type Report struct {
	// CompletionTime is the wall-clock time to the distributed fixpoint
	// (the paper's "query completion time").
	CompletionTime time.Duration
	// Rounds is the number of scheduler rounds.
	Rounds int
	// Messages and Bytes are the transport totals ("bandwidth usage").
	Messages int64
	Bytes    int64
	// Signed and Verified count asymmetric signature operations: one per
	// sealed/checked envelope under the per-envelope schemes, one per
	// handshake frame under the session transport — the cost the session
	// stack amortizes.
	Signed   int64
	Verified int64
	// Handshakes counts session handshake frames shipped; SealedMAC and
	// OpenedMAC count the symmetric session-MAC operations that replace
	// per-envelope signatures (session transport only).
	Handshakes int64
	SealedMAC  int64
	OpenedMAC  int64
	// HandshakeMessages and HandshakeBytes split the transport totals
	// into handshake vs data traffic (session transport only).
	HandshakeMessages int64
	HandshakeBytes    int64
	// RejectedSig counts envelopes dropped for bad signatures;
	// RejectedFilter counts tuples dropped by the trust filter.
	RejectedSig    int64
	RejectedFilter int64
	// Derivations and TuplesStored aggregate engine activity.
	Derivations  int64
	TuplesStored int64
	// Retracted counts tuples withdrawn by retraction cascades across all
	// nodes (live link churn only; zero on converge-once workloads).
	Retracted int64
	// Link-liveness counters from the transport (nonzero only on the TCP
	// backend): connections re-established after a drop, frames requeued
	// across a dropped connection, and inbound frames parked for
	// not-yet-registered nodes.
	Reconnects int64
	Requeues   int64
	Parked     int64
	// Reliability counters from the transport (nonzero only when the TCP
	// backend runs with acked delivery): ack frames shipped, sequenced
	// frames re-sent after an ack timeout or reconnect, and duplicate
	// frames suppressed by the receive window.
	Acks        int64
	Retransmits int64
	DupDropped  int64
}

// Run drives the network to a distributed fixpoint: every node evaluates
// to a local fixpoint, exports are shipped, and the loop ends when no
// exports or queued work remain. maxRounds bounds the loop (0 = 1e6).
//
// Run is a synchronous compatibility wrapper over the lifecycle Driver
// (see driver.go): it steps the driver's round loop to quiescence with a
// background context, which reproduces the pre-driver batch semantics
// bit for bit — same tables, rounds, and transport stats under every
// scheduler and transport knob. Long-running deployments use the Driver
// directly (Start / Inject / SetLink / Subscribe).
//
// Each round has two phases separated by a barrier: every node runs to
// its local fixpoint and ships its exports, then every node imports the
// messages queued for it. By default both phases run all nodes
// concurrently on a worker pool; cfg.Sequential runs them one after
// another. The phase structure makes the two schedules produce identical
// tables, rounds, and transport stats: within a phase nodes touch only
// their own engine plus the concurrency-safe fabric, and the fabric
// drains in deterministic order regardless of goroutine interleaving.
func (n *Network) Run(maxRounds int) (*Report, error) {
	return n.Driver().run(context.Background(), maxRounds)
}

// runRound executes one export phase and one import phase, reporting
// whether any node made progress. With PipelinedCrypto the sealing and
// verification halves of each phase run on a dedicated crypto stage
// overlapping rule evaluation; results are bit-identical either way.
// ctx is honored mid-round: both phases abort between node tasks when it
// is cancelled.
func (n *Network) runRound(ctx context.Context) (bool, error) {
	if n.nm == nil {
		return n.runRoundInner(ctx)
	}
	start := time.Now() //provlint:allow detpath metrics round timing, outside the deterministic state
	n.nm.roundStart()
	progress, err := n.runRoundInner(ctx)
	if err == nil {
		n.nm.roundEnd(n, "round", start)
	}
	return progress, err
}

func (n *Network) runRoundInner(ctx context.Context) (bool, error) {
	if n.session != nil {
		n.session.BeginRound()
	}
	if n.cfg.PipelinedCrypto {
		return n.runRoundPipelined(ctx)
	}
	exported, err := n.forEachNode(ctx, func(name string, node *Node) (bool, error) {
		retracts := node.takeRetracts()
		exports := node.Engine.RunToFixpoint()
		if len(retracts) == 0 && len(exports) == 0 {
			return false, nil
		}
		frames, err := n.buildRetractFrames(name, retracts)
		if err != nil {
			return false, err
		}
		dataFrames, err := n.buildExportFrames(name, exports)
		if err != nil {
			return false, err
		}
		return true, n.sealAndSend(name, append(frames, dataFrames...))
	})
	if err != nil {
		return false, err
	}
	imported, err := n.importPhase(ctx)
	if err != nil {
		return false, err
	}
	return exported || imported, nil
}

// importPhase drains and applies every node's inbox: the second half of
// a scheduler round, shared with the retraction-drain rounds.
func (n *Network) importPhase(ctx context.Context) (bool, error) {
	return n.forEachNode(ctx, func(name string, node *Node) (bool, error) {
		msgs := n.net.Drain(name)
		var ds []*delivery
		for _, msg := range msgs {
			d, err := n.decodeVerify(name, msg)
			if err != nil {
				return false, err
			}
			if d != nil {
				ds = append(ds, d)
			}
		}
		if err := n.deliverAll(name, node, ds); err != nil {
			return false, err
		}
		return len(msgs) > 0, nil
	})
}

// retractionInFlight reports whether any node holds unshipped
// withdrawals or over-deleted state awaiting repair.
func (n *Network) retractionInFlight() bool {
	for _, name := range n.order {
		nd := n.nodes[name]
		if len(nd.pendingRetract) > 0 || nd.Engine.HasPendingRetract() {
			return true
		}
	}
	return false
}

// drainRetractions propagates a retraction wave to global quiescence
// before any repair re-propagates: withdrawal-only rounds ship the
// queued retract frames hop by hop, and only when none is in flight
// anywhere does every node run its repair phase (shadow revival,
// restricted re-derivation, aggregate recomputation). Repair cascades
// can queue new withdrawals (vanished aggregate heads), so the whole
// sequence loops until quiet. Completing repair early — while a
// neighbor's withdrawal is still travelling — would briefly revive
// routes that neighbor is about to withdraw (zombie routes) and amplify
// churn traffic; the global drain is what makes incremental
// re-convergence strictly cheaper than a restart. Returns the number of
// scheduler rounds consumed.
func (n *Network) drainRetractions(ctx context.Context) (int, error) {
	rounds := 0
	n.draining = true
	defer func() { n.draining = false }()
	for {
		for {
			queued := false
			for _, name := range n.order {
				if len(n.nodes[name].pendingRetract) > 0 {
					queued = true
					break
				}
			}
			if !queued {
				break
			}
			if err := n.runRetractRound(ctx); err != nil {
				return rounds, err
			}
			rounds++
		}
		completed, err := n.forEachNode(ctx, func(name string, node *Node) (bool, error) {
			if !node.Engine.HasPendingRetract() {
				return false, nil
			}
			node.pendingRetract = append(node.pendingRetract, node.Engine.CompleteRetract()...)
			return true, nil
		})
		if err != nil {
			return rounds, err
		}
		if !completed {
			return rounds, nil
		}
		again := false
		for _, name := range n.order {
			if len(n.nodes[name].pendingRetract) > 0 {
				again = true
				break
			}
		}
		if !again {
			return rounds, nil
		}
	}
}

// runRetractRound runs one withdrawal-only round: queued retract frames
// ship, inboxes drain (withdrawals apply their over-delete phase; any
// in-flight data still lands), but no node evaluates — repair and
// re-propagation wait for the wave to quiesce.
func (n *Network) runRetractRound(ctx context.Context) error {
	if n.nm == nil {
		return n.runRetractRoundInner(ctx)
	}
	start := time.Now() //provlint:allow detpath metrics round timing, outside the deterministic state
	n.nm.roundStart()
	err := n.runRetractRoundInner(ctx)
	if err == nil {
		n.nm.roundEnd(n, "retract", start)
	}
	return err
}

func (n *Network) runRetractRoundInner(ctx context.Context) error {
	if n.session != nil {
		n.session.BeginRound()
	}
	_, err := n.forEachNode(ctx, func(name string, node *Node) (bool, error) {
		retracts := node.takeRetracts()
		if len(retracts) == 0 {
			return false, nil
		}
		frames, err := n.buildRetractFrames(name, retracts)
		if err != nil {
			return false, err
		}
		return true, n.sealAndSend(name, frames)
	})
	if err != nil {
		return err
	}
	_, err = n.importPhase(ctx)
	return err
}

// cryptoWorkers sizes the pipelined crypto stage's worker pool.
func (n *Network) cryptoWorkers() int {
	w := n.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(n.order) {
		w = len(n.order)
	}
	return w
}

// runRoundPipelined runs one round with sealing and verification off the
// evaluation path. The export phase is a two-stage pipeline: evaluation
// workers run nodes to their local fixpoints and hand prepared frames to
// crypto workers, which seal and ship them while other nodes are still
// evaluating. The import phase mirrors it: crypto workers drain and
// authenticate each node's inbox, handing verified deliveries to
// insertion workers as they complete. Determinism is preserved because
// each node's frames are sealed and sent by a single crypto task (the
// fabric orders concurrent senders), and errors/progress are collected
// per node and resolved in scheduler order.
func (n *Network) runRoundPipelined(ctx context.Context) (bool, error) {
	// Export: evaluation stage → sealing stage.
	type sealJob struct {
		idx    int
		name   string
		frames []outFrame
	}
	jobs := make(chan sealJob, len(n.order))
	sealErrs := make([]error, len(n.order))
	var sealWG sync.WaitGroup
	for w := 0; w < n.cryptoWorkers(); w++ {
		sealWG.Add(1)
		go func() {
			defer sealWG.Done()
			for j := range jobs {
				sealErrs[j.idx] = n.sealAndSend(j.name, j.frames)
			}
		}()
	}
	exported, evalErr := n.forEachNode(ctx, func(name string, node *Node) (bool, error) {
		retracts := node.takeRetracts()
		exports := node.Engine.RunToFixpoint()
		if len(retracts) == 0 && len(exports) == 0 {
			return false, nil
		}
		frames, err := n.buildRetractFrames(name, retracts)
		if err != nil {
			return false, err
		}
		dataFrames, err := n.buildExportFrames(name, exports)
		if err != nil {
			return false, err
		}
		jobs <- sealJob{idx: n.idx[name], name: name, frames: append(frames, dataFrames...)}
		return true, nil
	})
	close(jobs)
	sealWG.Wait()
	if evalErr != nil {
		return false, evalErr
	}
	for i := range n.order {
		if sealErrs[i] != nil {
			return false, sealErrs[i]
		}
	}

	// Import: verification stage → insertion stage.
	type insertJob struct {
		idx        int
		name       string
		deliveries []*delivery
	}
	inserts := make(chan insertJob, len(n.order))
	verifyErrs := make([]error, len(n.order))
	insertErrs := make([]error, len(n.order))
	imported := make([]bool, len(n.order))
	var verifyWG, insertWG sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < n.cryptoWorkers(); w++ {
		verifyWG.Add(1)
		go func() {
			defer verifyWG.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(n.order) || ctx.Err() != nil {
					return
				}
				name := n.order[i]
				msgs := n.net.Drain(name)
				imported[i] = len(msgs) > 0
				var ds []*delivery
				for _, msg := range msgs {
					d, err := n.decodeVerify(name, msg)
					if err != nil {
						verifyErrs[i] = err
						ds = nil
						break
					}
					if d != nil {
						ds = append(ds, d)
					}
				}
				if len(ds) > 0 {
					inserts <- insertJob{idx: i, name: name, deliveries: ds}
				}
			}
		}()
	}
	insertWorkers := n.cryptoWorkers()
	if n.cfg.Sequential {
		insertWorkers = 1
	}
	for w := 0; w < insertWorkers; w++ {
		insertWG.Add(1)
		go func() {
			defer insertWG.Done()
			for j := range inserts {
				insertErrs[j.idx] = n.deliverAll(j.name, n.nodes[j.name], j.deliveries)
			}
		}()
	}
	verifyWG.Wait()
	close(inserts)
	insertWG.Wait()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	progress := exported
	for i := range n.order {
		if verifyErrs[i] != nil {
			return false, verifyErrs[i]
		}
		if insertErrs[i] != nil {
			return false, insertErrs[i]
		}
		progress = progress || imported[i]
	}
	return progress, nil
}

// forEachNode applies f to every node, sequentially or on a worker pool
// per the configuration. It returns the OR of the progress flags and the
// first error in scheduler (node registration) order. A cancelled ctx
// aborts between node tasks (the mid-round cancellation point of the
// lifecycle API) and reports the context's error.
func (n *Network) forEachNode(ctx context.Context, f func(name string, node *Node) (bool, error)) (bool, error) {
	if n.cfg.Sequential || len(n.order) == 1 {
		progress := false
		for _, name := range n.order {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			p, err := f(name, n.nodes[name])
			if err != nil {
				return false, err
			}
			progress = progress || p
		}
		return progress, nil
	}
	workers := n.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(n.order) {
		workers = len(n.order)
	}
	prog := make([]bool, len(n.order))
	errs := make([]error, len(n.order))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(n.order) || failed.Load() || ctx.Err() != nil {
					return
				}
				name := n.order[i]
				prog[i], errs[i] = f(name, n.nodes[name])
				if errs[i] != nil {
					failed.Store(true) // fail fast: stop claiming more nodes
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	progress := false
	for i := range n.order {
		if errs[i] != nil {
			return false, errs[i]
		}
		progress = progress || prog[i]
	}
	return progress, nil
}

// outFrame is one outbound datagram prepared by the evaluation stage and
// sealed/shipped by the crypto stage. Exactly one of the frame kinds is
// set: a session handshake, a v1 envelope, a v2 batch, a v3 session data
// or retract frame, or a v4 retract envelope.
type outFrame struct {
	dst       string
	handshake bool
	epoch     uint64 // handshake frames only
	env       *Envelope
	batch     *BatchEnvelope
	sess      *SessionEnvelope
	retr      *RetractEnvelope
}

// buildRetractFrames turns a node's pending withdrawals into wire frames
// in deterministic (first-withdrawal per destination) order: one retract
// envelope per destination, ahead of the round's data frames so receivers
// withdraw before they integrate new state. Under the session transport
// the retract batch rides a session frame (reserving a handshake if the
// link has none yet); otherwise it is a signed v4 envelope.
func (n *Network) buildRetractFrames(from string, ws []engine.Withdrawal) ([]outFrame, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	groups := make(map[string][]data.Tuple)
	var dests []string
	node := n.nodes[from]
	for _, w := range ws {
		if _, ok := groups[w.Dest]; !ok {
			dests = append(dests, w.Dest)
		}
		groups[w.Dest] = append(groups[w.Dest], w.Tuple)
		if n.cfg.Resupply && node.exports != nil {
			delete(node.exports[w.Dest], w.Tuple.Key()) //provlint:allow keystring export-log key, resupply path only
		}
	}
	var frames []outFrame
	for _, dest := range dests {
		tuples := groups[dest]
		if n.session != nil {
			need, epoch, err := n.session.EnsureSession(from, dest)
			if err != nil {
				return nil, err
			}
			if need {
				frames = append(frames, outFrame{dst: dest, handshake: true, epoch: epoch})
			}
			env := &SessionEnvelope{From: from, ProvMode: n.cfg.Prov, Retract: true}
			for _, t := range tuples {
				env.Items = append(env.Items, BatchItem{Tuple: t})
			}
			frames = append(frames, outFrame{dst: dest, sess: env})
			continue
		}
		frames = append(frames, outFrame{dst: dest, retr: &RetractEnvelope{
			From: from, Scheme: n.cfg.Auth, Tuples: tuples,
		}})
	}
	return frames, nil
}

// buildExportFrames turns one node's round exports into wire frames in
// deterministic send order, deferring all cryptographic work (signing,
// MACing, handshake RSA) to sealAndSend. Under the session transport it
// also decides — and reserves — the handshake frames that must precede
// the first data frame on a new or rekeyed link.
func (n *Network) buildExportFrames(from string, exports []engine.Export) ([]outFrame, error) {
	node := n.nodes[from]
	item := func(ex engine.Export) BatchItem {
		it := BatchItem{Tuple: ex.Tuple, Prov: node.Tracker.Export(ex.Tuple, ex.Ann)}
		if n.cfg.Resupply {
			if node.exports == nil {
				node.exports = make(map[string]map[string]BatchItem)
			}
			perDest := node.exports[ex.Dest]
			if perDest == nil {
				perDest = make(map[string]BatchItem)
				node.exports[ex.Dest] = perDest
			}
			perDest[ex.Tuple.Key()] = it //provlint:allow keystring export-log key, resupply path only
		}
		return it
	}
	if n.session == nil && n.cfg.Unbatched {
		// Seed behavior: one v1 envelope per tuple, in export order.
		frames := make([]outFrame, 0, len(exports))
		for _, ex := range exports {
			it := item(ex)
			frames = append(frames, outFrame{dst: ex.Dest, env: &Envelope{
				From: from, Tuple: it.Tuple, ProvMode: n.cfg.Prov, Prov: it.Prov, Scheme: n.cfg.Auth,
			}})
		}
		return frames, nil
	}
	groups := make(map[string][]engine.Export)
	var dests []string // first-export order, for deterministic sends
	for _, ex := range exports {
		if _, ok := groups[ex.Dest]; !ok {
			dests = append(dests, ex.Dest)
		}
		groups[ex.Dest] = append(groups[ex.Dest], ex)
	}
	var frames []outFrame
	for _, dest := range dests {
		group := groups[dest]
		if n.session != nil {
			need, epoch, err := n.session.EnsureSession(from, dest)
			if err != nil {
				return nil, err
			}
			if need {
				frames = append(frames, outFrame{dst: dest, handshake: true, epoch: epoch})
			}
			if n.cfg.Unbatched {
				for _, ex := range group {
					frames = append(frames, outFrame{dst: dest, sess: &SessionEnvelope{
						From: from, ProvMode: n.cfg.Prov, Items: []BatchItem{item(ex)},
					}})
				}
				continue
			}
			env := &SessionEnvelope{From: from, ProvMode: n.cfg.Prov}
			for _, ex := range group {
				env.Items = append(env.Items, item(ex))
			}
			frames = append(frames, outFrame{dst: dest, sess: env})
			continue
		}
		if len(group) == 1 {
			// A one-tuple batch costs a byte more than the v1 envelope
			// (the item-count varint); ship the cheaper format so batching
			// is never worse than the baseline on sparse traffic.
			it := item(group[0])
			frames = append(frames, outFrame{dst: dest, env: &Envelope{
				From: from, Tuple: it.Tuple, ProvMode: n.cfg.Prov, Prov: it.Prov, Scheme: n.cfg.Auth,
			}})
			continue
		}
		env := &BatchEnvelope{From: from, ProvMode: n.cfg.Prov, Scheme: n.cfg.Auth}
		for _, ex := range group {
			env.Items = append(env.Items, item(ex))
		}
		frames = append(frames, outFrame{dst: dest, batch: env})
	}
	return frames, nil
}

// sealAndSend performs the cryptographic half of the export path: it
// seals each prepared frame (handshake RSA, per-envelope signature, or
// session MAC) and ships it. All of one sender's frames go through a
// single call, preserving per-sender send order however the crypto stage
// is scheduled.
func (n *Network) sealAndSend(from string, frames []outFrame) error {
	if n.nm == nil {
		return n.sealAndSendInner(from, frames)
	}
	start := time.Now() //provlint:allow detpath metrics seal timing, outside the deterministic state
	n.nm.deltasOut.Add(int64(len(frames)))
	err := n.sealAndSendInner(from, frames)
	n.nm.sealNanos.Add(time.Since(start).Nanoseconds()) //provlint:allow detpath metrics seal timing, outside the deterministic state
	return err
}

func (n *Network) sealAndSendInner(from string, frames []outFrame) error {
	if len(frames) > 0 {
		n.markActive(from)
	}
	for i := range frames {
		f := &frames[i]
		var payload []byte
		var err error
		handshake := false
		switch {
		case f.handshake:
			var blob []byte
			blob, err = n.session.SealHandshake(from, f.dst, f.epoch)
			if err == nil {
				payload = EncodeHandshakeFrame(blob)
				handshake = true
			}
		case f.env != nil:
			payload, err = f.env.Encode(n.sealer, f.dst)
			if err == nil && n.cfg.Auth != auth.SchemeNone {
				n.signed.Add(1)
			}
		case f.batch != nil:
			payload, err = f.batch.Encode(n.sealer, f.dst)
			if err == nil && n.cfg.Auth != auth.SchemeNone {
				n.signed.Add(1)
			}
		case f.sess != nil:
			payload, err = f.sess.Encode(n.sealer, f.dst)
		case f.retr != nil:
			payload, err = f.retr.Encode(n.sealer, f.dst)
			if err == nil && n.cfg.Auth != auth.SchemeNone {
				n.signed.Add(1)
			}
		default:
			err = errors.New("core: empty export frame")
		}
		if err != nil {
			return err
		}
		if err := n.net.SendTagged(from, f.dst, payload, handshake); err != nil {
			return err
		}
	}
	return nil
}

// delivery is one verified inbound payload awaiting engine insertion.
type delivery struct {
	// from is the authenticated sender, recorded as the support origin of
	// every inserted tuple (and the support a retraction removes).
	from  string
	items []BatchItem
	// batchable marks batch-layout arrivals (v2/v3), inserted through
	// InsertImportedBatch on the common path; v1 singles keep the seed's
	// per-tuple insert.
	batchable bool
	// retract marks a withdrawal batch: items name tuples losing the
	// sender's support instead of gaining it.
	retract bool
}

// decodeVerify decodes and authenticates one datagram at node name,
// dispatching on the wire version byte. Handshake frames are consumed
// here (installing the inbound session); unverifiable input is dropped
// and counted, as a router drops what it cannot authenticate. A nil
// delivery with nil error means the datagram was fully handled or
// dropped.
func (n *Network) decodeVerify(name string, msg netsim.Message) (*delivery, error) {
	if n.nm == nil {
		return n.decodeVerifyInner(name, msg)
	}
	start := time.Now() //provlint:allow detpath metrics verify timing, outside the deterministic state
	n.nm.deltasIn.Inc()
	d, err := n.decodeVerifyInner(name, msg)
	n.nm.verifyNanos.Add(time.Since(start).Nanoseconds()) //provlint:allow detpath metrics verify timing, outside the deterministic state
	return d, err
}

func (n *Network) decodeVerifyInner(name string, msg netsim.Message) (*delivery, error) {
	p := msg.Payload
	if len(p) == 0 {
		return nil, fmt.Errorf("%w: empty datagram", ErrBadEnvelope)
	}
	switch p[0] {
	case wireVersionSession:
		if n.session == nil {
			// Session frames without a session transport configured:
			// nothing can open them, drop.
			n.rejectedSig.Add(1)
			return nil, nil
		}
		if len(p) < 2 {
			return nil, fmt.Errorf("%w: truncated session frame", ErrBadEnvelope)
		}
		switch p[1] {
		case frameHandshake:
			blob, err := DecodeHandshakeFrame(p)
			if err == nil {
				_, err = n.session.AcceptHandshake(name, blob)
			}
			if err != nil {
				n.rejectedSig.Add(1) // corrupt or forged handshake: drop
			}
			return nil, nil
		case frameData, frameRetract:
			env, err := DecodeSessionEnvelope(p)
			if err != nil {
				return nil, err
			}
			if err := env.Open(n.session, name); err != nil {
				n.rejectedSig.Add(1) // bad MAC or no session: drop
				return nil, nil
			}
			return &delivery{from: env.From, items: env.Items, batchable: true, retract: env.Retract}, nil
		default:
			return nil, fmt.Errorf("%w: unknown session frame kind %d", ErrBadEnvelope, p[1])
		}
	case wireVersionBatch:
		env, err := DecodeBatchEnvelope(p)
		if err != nil {
			return nil, err
		}
		if n.cfg.Auth != auth.SchemeNone {
			n.checked.Add(1)
			if err := env.Verify(n.legacy, name); err != nil {
				n.rejectedSig.Add(1) // drop the whole batch: nothing in it is trustworthy
				return nil, nil
			}
		}
		return &delivery{from: env.From, items: env.Items, batchable: true}, nil
	case wireVersionControl:
		cf, err := DecodeControlFrame(p)
		if err != nil {
			return nil, err
		}
		// Control frames are always sealed with the legacy sealer (they
		// must verify across restarts, before any session exists).
		if n.cfg.Auth != auth.SchemeNone {
			if err := cf.Verify(n.legacy, name); err != nil {
				n.rejectedSig.Add(1) // a forged token could fake a fixpoint
				return nil, nil
			}
		}
		if td := n.term.Load(); td != nil {
			td.handleControl(name, cf)
		}
		return nil, nil
	case wireVersionRetract:
		env, err := DecodeRetractEnvelope(p)
		if err != nil {
			return nil, err
		}
		if n.cfg.Auth != auth.SchemeNone {
			n.checked.Add(1)
			if err := env.Verify(n.legacy, name); err != nil {
				n.rejectedSig.Add(1) // a forged withdrawal must not remove state
				return nil, nil
			}
		}
		items := make([]BatchItem, len(env.Tuples))
		for i, t := range env.Tuples {
			items[i] = BatchItem{Tuple: t}
		}
		return &delivery{from: env.From, items: items, batchable: true, retract: true}, nil
	default:
		env, err := DecodeEnvelope(p)
		if err != nil {
			return nil, err
		}
		if n.cfg.Auth != auth.SchemeNone {
			n.checked.Add(1)
			if err := env.Verify(n.legacy, name); err != nil {
				n.rejectedSig.Add(1)
				return nil, nil
			}
		}
		return &delivery{from: env.From, items: []BatchItem{{Tuple: env.Tuple, Prov: env.Prov}}, batchable: false}, nil
	}
}

// deliverAll applies one node's round deliveries: data deliveries insert
// in arrival order, and every retraction delivery of the round is
// batched into a single cascade at the end. Round-level batching keeps a
// candidate one sender is about to withdraw from briefly reviving off
// another frame (a zombie route) and amplifying churn traffic; the
// origin-support model makes insert-vs-retract of different senders
// commute, so deferring retractions does not change the fixpoint.
func (n *Network) deliverAll(name string, node *Node, ds []*delivery) error {
	if len(ds) > 0 {
		n.markActive(name)
	}
	var inbound []engine.InboundRetraction
	for _, d := range ds {
		if d.retract {
			for _, it := range d.items {
				inbound = append(inbound, engine.InboundRetraction{From: d.from, Tuple: it.Tuple})
			}
			continue
		}
		if err := n.deliver(name, node, d); err != nil {
			return err
		}
	}
	if len(inbound) > 0 {
		var ws []engine.Withdrawal
		if n.draining {
			// Over-delete only; repair runs when the wave quiesces.
			ws = node.Engine.BeginRetractInbound(inbound)
		} else {
			ws = node.Engine.RetractInbound(inbound)
		}
		node.pendingRetract = append(node.pendingRetract, ws...)
	}
	return nil
}

// deliver filters and inserts one verified data delivery at node name: a
// single engine batch on the common path, or per-tuple trust gating when
// an import filter is configured.
func (n *Network) deliver(name string, node *Node, d *delivery) error {
	if d.batchable && (n.cfg.ImportFilter == nil || n.cfg.Prov != provenance.ModeCondensed) {
		delta := make([]engine.Imported, len(d.items))
		for i, it := range d.items {
			delta[i] = engine.Imported{Tuple: it.Tuple, Prov: it.Prov}
		}
		return node.Engine.InsertImportedBatchFrom(d.from, delta)
	}
	for _, it := range d.items {
		if err := n.importTuple(name, node, d.from, it.Tuple, it.Prov); err != nil {
			return err
		}
	}
	return nil
}

// importTuple applies the trust gate (§3) and inserts one received
// tuple. When the gate is active the annotation reconstructed for the
// admission check is reused for the insert, so the provenance payload is
// deserialized only once.
func (n *Network) importTuple(name string, node *Node, from string, t data.Tuple, prov []byte) error {
	if n.cfg.ImportFilter == nil || n.cfg.Prov != provenance.ModeCondensed {
		return node.Engine.InsertImportedFrom(from, t, prov)
	}
	ann, err := node.Tracker.Import(t, prov)
	if err != nil {
		return err
	}
	if !n.cfg.ImportFilter(name, t, node.Tracker.PolyOf(ann)) {
		n.rejectedFilter.Add(1)
		return nil
	}
	node.Engine.InsertImportedAnnFrom(from, t, ann)
	return nil
}

func (n *Network) report(start time.Time, rounds int) *Report {
	stats := n.net.Stats()
	r := &Report{
		CompletionTime:    time.Since(start), //provlint:allow detpath report wall-clock, never feeds evaluation
		Rounds:            rounds,
		Messages:          stats.Messages,
		Bytes:             stats.Bytes,
		HandshakeMessages: stats.HandshakeMessages,
		HandshakeBytes:    stats.HandshakeBytes,
		Reconnects:        stats.Reconnects,
		Requeues:          stats.Requeues,
		Parked:            stats.Parked,
		Acks:              stats.AckMessages,
		Retransmits:       stats.Retransmits,
		DupDropped:        stats.DupDropped,
		Signed:            n.signed.Load(),
		Verified:          n.checked.Load(),
		RejectedSig:       n.rejectedSig.Load(),
		RejectedFilter:    n.rejectedFilter.Load(),
	}
	if n.session != nil {
		hs, acc, sealed, opened := n.session.SessionStats()
		r.Signed += hs
		r.Verified += acc
		r.Handshakes = hs
		r.SealedMAC = sealed
		r.OpenedMAC = opened
	}
	for _, node := range n.nodes { //provlint:allow mapiter commutative integer sums; order cannot escape
		r.Derivations += node.Engine.Stats.Derivations
		r.TuplesStored += node.Engine.Stats.TuplesStored
		r.Retracted += node.Engine.Stats.Retracted
	}
	return r
}

// markActive records activity at a node for the termination detector:
// any export shipped or delivery applied dirties the node, forcing the
// current detection wave to restart. One atomic load when no detector
// is installed.
func (n *Network) markActive(node string) {
	if td := n.term.Load(); td != nil {
		td.markDirty(node)
	}
}

// resupplyAll replays every hosted node's export log (Config.Resupply):
// the soft-state re-announcement after a peer process restart. Outbound
// sessions are reset first so session links re-handshake — the restarted
// peer lost its inbound session keys with its tables. Destinations and
// tuples replay in sorted order so the resupply traffic is deterministic
// for a given table state. Called between rounds by the driver.
func (n *Network) resupplyAll() error {
	if n.session != nil {
		n.session.ResetOutbound()
	}
	for _, name := range n.order {
		nd := n.nodes[name]
		if len(nd.exports) == 0 {
			continue
		}
		dests := make([]string, 0, len(nd.exports))
		for dest := range nd.exports {
			dests = append(dests, dest)
		}
		sort.Strings(dests)
		var frames []outFrame
		for _, dest := range dests {
			perDest := nd.exports[dest]
			if len(perDest) == 0 {
				continue
			}
			keys := make([]string, 0, len(perDest))
			for k := range perDest {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			if n.session != nil {
				need, epoch, err := n.session.EnsureSession(name, dest)
				if err != nil {
					return err
				}
				if need {
					frames = append(frames, outFrame{dst: dest, handshake: true, epoch: epoch})
				}
				env := &SessionEnvelope{From: name, ProvMode: n.cfg.Prov}
				for _, k := range keys {
					env.Items = append(env.Items, perDest[k])
				}
				frames = append(frames, outFrame{dst: dest, sess: env})
				continue
			}
			env := &BatchEnvelope{From: name, ProvMode: n.cfg.Prov, Scheme: n.cfg.Auth}
			for _, k := range keys {
				env.Items = append(env.Items, perDest[k])
			}
			frames = append(frames, outFrame{dst: dest, batch: env})
		}
		if len(frames) == 0 {
			continue
		}
		if err := n.sealAndSend(name, frames); err != nil {
			return err
		}
	}
	return nil
}

// --- runtime interaction ---

// Node returns a node's components.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Nodes returns node names in scheduler order.
func (n *Network) Nodes() []string {
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// Directory exposes the principal directory.
func (n *Network) Directory() *auth.Directory { return n.dir }

// Tuples returns the live tuples of a predicate at a node.
func (n *Network) Tuples(node, pred string) []data.Tuple {
	nd, ok := n.nodes[node]
	if !ok {
		return nil
	}
	return nd.Engine.Tuples(pred)
}

// InsertFact inserts a base tuple at a node at the current logical time
// (run Run afterwards to propagate).
func (n *Network) InsertFact(node string, t data.Tuple) error {
	nd, ok := n.nodes[node]
	if !ok {
		return fmt.Errorf("core: unknown node %q", node)
	}
	nd.Engine.InsertFact(t)
	return nil
}

// Clock returns the logical time (seconds).
func (n *Network) Clock() float64 { return n.clock }

// Advance moves logical time forward by dt seconds, expiring soft state
// everywhere, dropping the online provenance of expired tuples (offline
// copies persist, §4.2), and aging out offline provenance.
func (n *Network) Advance(dt float64) {
	n.clock += dt
	for _, name := range n.order {
		nd := n.nodes[name]
		nd.Engine.Expire(n.clock)
		// Online provenance follows its tuples: expired state loses its
		// online entries; the offline tier keeps them for forensics.
		for _, key := range nd.Store.Keys() {
			if e := nd.Store.Get(key); e != nil && !nd.Engine.Has(e.Tuple) {
				nd.Store.Forget(key)
			}
		}
		nd.Store.AgeOut(n.clock)
	}
}

// Resolver exposes all stores to the distributed provenance traceback.
func (n *Network) Resolver() provenance.Resolver {
	return provenance.ResolverFunc(func(name string) *provenance.Store {
		if nd, ok := n.nodes[name]; ok {
			return nd.Store
		}
		return nil
	})
}

// DerivationTree returns the derivation tree of a stored tuple. For
// ModeLocal it is read off the tuple's annotation; for ModeDistributed it
// is reconstructed by the traceback query; ModeCondensed keeps no trees.
func (n *Network) DerivationTree(node string, t data.Tuple, opts provenance.QueryOpts) (*provenance.Tree, *provenance.QueryStats, error) {
	nd, ok := n.nodes[node]
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown node %q", node)
	}
	switch n.cfg.Prov {
	case provenance.ModeLocal:
		ann := nd.Engine.AnnotationOf(t)
		tree, ok := ann.(*provenance.Tree)
		if !ok || tree == nil {
			return nil, nil, fmt.Errorf("core: no local provenance for %s at %s", t, node)
		}
		return tree, &provenance.QueryStats{}, nil
	case provenance.ModeDistributed:
		return provenance.Trace(n.Resolver(), node, provenance.KeyOf(t), opts)
	default:
		return nil, nil, fmt.Errorf("core: mode %v keeps no derivation trees", n.cfg.Prov)
	}
}

// CondensedExpr returns the paper-style <...> condensed provenance
// annotation of a stored tuple (ModeCondensed).
func (n *Network) CondensedExpr(node string, t data.Tuple) string {
	nd, ok := n.nodes[node]
	if !ok {
		return ""
	}
	return nd.Tracker.ExprOf(nd.Engine.AnnotationOf(t))
}

// Poly returns the provenance polynomial of a stored tuple
// (ModeCondensed), for quantifiable-trust evaluation.
func (n *Network) Poly(node string, t data.Tuple) semiring.Poly {
	nd, ok := n.nodes[node]
	if !ok {
		return semiring.Zero()
	}
	return nd.Tracker.PolyOf(nd.Engine.AnnotationOf(t))
}

// FactPoly returns the provenance polynomial of a logical fact at a node,
// combining (+) the annotations of every stored assertion of the fact
// regardless of asserting principal. This produces exactly the paper's
// Figure 2 annotation for reachable(a,c): node a holds "a says
// reachable(a,c)" with <a> and "b says reachable(a,c)" with <a*b>, and
// their union is <a + a*b>, condensing to <a>.
func (n *Network) FactPoly(node string, t data.Tuple) semiring.Poly {
	nd, ok := n.nodes[node]
	if !ok {
		return semiring.Zero()
	}
	sum := semiring.Zero()
	for _, stored := range nd.Engine.Tuples(t.Pred) {
		if !stored.WithoutAsserter().Equal(t.WithoutAsserter()) {
			continue
		}
		sum = sum.Add(nd.Tracker.PolyOf(nd.Engine.AnnotationOf(stored)))
	}
	return sum
}

// Transport exposes the message substrate (for traffic inspection). It
// is the in-memory netsim fabric unless Config.Transport overrode it.
func (n *Network) Transport() Transport { return n.net }
