package core

import (
	"os"
	"testing"
)

// TestMain lifts crypto/rsa's 1024-bit minimum: the package tests use
// 512-bit keys so deterministic key generation stays fast.
func TestMain(m *testing.M) {
	os.Setenv("GODEBUG", "rsa1024min=0")
	os.Exit(m.Run())
}
