package core

import (
	"fmt"
	"strconv"
	"strings"

	"provnet/internal/data"
)

// ParseTuple parses a tuple from command-line text such as
// "reachable(a, c)", "path(a, c, [a,b,c], 2)", or with an asserter prefix
// "b says reachable(a, c)". Bare lowercase identifiers are string
// constants, numbers are int/float, quoted strings are strings, and
// [...] are lists.
func ParseTuple(s string) (data.Tuple, error) {
	s = strings.TrimSpace(s)
	asserter := ""
	if i := strings.Index(s, " says "); i > 0 && !strings.Contains(s[:i], "(") {
		asserter = strings.TrimSpace(s[:i])
		s = strings.TrimSpace(s[i+len(" says "):])
	}
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return data.Tuple{}, fmt.Errorf("core: cannot parse tuple %q (want pred(arg, ...))", s)
	}
	pred := strings.TrimSpace(s[:open])
	body := s[open+1 : len(s)-1]
	args, err := parseValueList(body)
	if err != nil {
		return data.Tuple{}, fmt.Errorf("core: tuple %q: %w", s, err)
	}
	t := data.Tuple{Pred: pred, Args: args, Asserter: asserter}
	return t, nil
}

// parseValueList splits a comma-separated argument list, honouring
// brackets and quotes.
func parseValueList(s string) ([]data.Value, error) {
	var args []data.Value
	depth := 0
	inStr := false
	start := 0
	flush := func(end int) error {
		part := strings.TrimSpace(s[start:end])
		if part == "" {
			return nil
		}
		v, err := parseValue(part)
		if err != nil {
			return err
		}
		args = append(args, v)
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '"' && (i == 0 || s[i-1] != '\\') {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if inStr || depth != 0 {
		return nil, fmt.Errorf("unbalanced quotes or brackets in %q", s)
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return args, nil
}

func parseValue(s string) (data.Value, error) {
	switch {
	case s == "true":
		return data.Bool(true), nil
	case s == "false":
		return data.Bool(false), nil
	case strings.HasPrefix(s, `"`):
		u, err := strconv.Unquote(s)
		if err != nil {
			return data.Value{}, err
		}
		return data.Str(u), nil
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return data.Value{}, fmt.Errorf("bad list %q", s)
		}
		elems, err := parseValueList(s[1 : len(s)-1])
		if err != nil {
			return data.Value{}, err
		}
		return data.List(elems...), nil
	default:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return data.Int(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return data.Float(f), nil
		}
		if strings.ContainsAny(s, `()[]"`) {
			return data.Value{}, fmt.Errorf("bad value %q", s)
		}
		return data.Str(s), nil
	}
}
