package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"provnet/internal/auth"
	"provnet/internal/faultnet"
	"provnet/internal/netsim"
	"provnet/internal/topo"
)

// termCfg is the workload the termination protocol is tested on: small
// enough to converge in milliseconds, large enough that a run in
// progress always has frames in flight.
func termCfg() Config {
	return Config{
		Source: BestPath,
		Graph:  topo.RandomConnected(topo.Options{N: 8, AvgOutDegree: 3, MaxCost: 10, Seed: 9}),
		Auth:   auth.SchemeHMAC,
	}
}

// testTermConfig shrinks the protocol timers to test scale.
func testTermConfig() TermConfig {
	return TermConfig{WaveTimeout: 50 * time.Millisecond, PollEvery: time.Millisecond}
}

// startLive builds a network over the given transport (nil = fresh
// netsim), starts its driver, and registers cleanup.
func startLive(t *testing.T, cfg Config, tr Transport) *Network {
	t.Helper()
	cfg.Transport = tr
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// awaitDone fails the test unless the detector declares within the
// deadline.
func awaitDone(t *testing.T, td *TermDetector, deadline time.Duration) {
	t.Helper()
	select {
	case <-td.Done():
	case <-time.After(deadline):
		t.Fatalf("termination not declared within %v (waves completed: %d, sendErr: %v)",
			deadline, td.Waves(), td.Err())
	}
}

// TestTerminationDeclaresOnCleanRun is the liveness half of the
// protocol: over a fault-free fabric, the detector declares the
// fixpoint shortly after convergence, and the tables at declaration
// equal the batch reference.
func TestTerminationDeclaresOnCleanRun(t *testing.T) {
	cfg := termCfg()
	nRef, _ := mustRun(t, cfg)

	n := startLive(t, cfg, nil)
	td := n.StartTermination(context.Background(), testTermConfig())
	awaitDone(t, td, 30*time.Second)

	if !td.Terminated() {
		t.Fatal("Done closed without Terminated")
	}
	if td.Waves() < 2 {
		t.Fatalf("declared after %d waves; soundness needs two completed waves with equal sums", td.Waves())
	}
	if err := td.Err(); err != nil {
		t.Fatalf("control-frame send error: %v", err)
	}
	if a, b := snapshotPreds(n, "bestPath", "spCost"), snapshotPreds(nRef, "bestPath", "spCost"); a != b {
		t.Fatalf("tables at declaration differ from batch reference\n--- live ---\n%s--- batch ---\n%s", a, b)
	}
}

// TestTerminationNoFalseFixpoint is the soundness half, driven across
// three fault seeds: with every frame delayed into limbo (Delay 1.0),
// the run reaches a deceptive local quiescence — the driver pump is
// idle, receiver inboxes are empty — while undelivered frames sit on
// the wire. The detector must refuse to declare for as long as any
// frame is in flight, and still declare (with correct tables) once the
// limbo drains.
func TestTerminationNoFalseFixpoint(t *testing.T) {
	cfg := termCfg()
	nRef, _ := mustRun(t, cfg)
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Long holds (up to 500 transport ops) so the scheduler's own
			// drains cannot release the tail of the traffic: the run
			// strands frames in limbo when the pump goes idle.
			fn := faultnet.New(netsim.New(), faultnet.Config{Seed: seed, Delay: 1.0, DelayOps: 500})
			n := startLive(t, cfg, fn)
			td := n.StartTermination(context.Background(), testTermConfig())

			// Phase 1: reach the deceptive quiescence. The pump drains
			// to idle while the tail of the traffic is frozen in limbo
			// (the op clock stops with the last send).
			if _, err := n.Driver().AwaitQuiescence(context.Background()); err != nil {
				t.Fatal(err)
			}
			if fn.Faults().Limbo == 0 {
				t.Fatal("no frames in limbo at local quiescence; fault schedule injected nothing")
			}
			// Give the detector many wave timeouts to (wrongly) declare.
			time.Sleep(10 * testTermConfig().WaveTimeout)
			if td.Terminated() {
				t.Fatalf("declared termination with %d frames in flight", fn.Faults().Limbo)
			}

			// Phase 2: keep flushing the limbo (releases re-enter the
			// fault schedule, so new sends park again until the next
			// flush). The run must now finish and the detector declare.
			relCtx, relCancel := context.WithCancel(context.Background())
			defer relCancel()
			go func() {
				for {
					select {
					case <-relCtx.Done():
						return
					case <-time.After(time.Millisecond):
						fn.ReleaseAll()
					}
				}
			}()
			awaitDone(t, td, 60*time.Second)
			if fl := fn.Faults(); fl.Delayed == 0 {
				t.Fatalf("fault schedule injected no delays: %+v", fl)
			}
			// Compare spCost only: min-cost is delivery-order independent,
			// while the bestPath chosen between equal-cost ties is keyed
			// last-writer-wins and legitimately differs under reordering.
			if a, b := snapshotPreds(n, "spCost"), snapshotPreds(nRef, "spCost"); a != b {
				t.Fatalf("tables at declaration differ from reference\n--- live ---\n%s--- ref ---\n%s", a, b)
			}
		})
	}
}

// TestIdleHeuristicFalseFixpoint is the regression that justifies the
// credit protocol: under a scripted partition, the wall-clock idle
// heuristic (transport counters stable across an idle window, no
// pending datagrams — exactly what cliflags' -term idle mode samples)
// declares a fixpoint while frames are in flight and the tables are
// wrong, and the credit detector, watching the same run, refuses.
func TestIdleHeuristicFalseFixpoint(t *testing.T) {
	cfg := Config{
		Source: BestPath,
		Graph: topo.Custom([]topo.Link{
			{From: "a", To: "b", Cost: 1},
			{From: "b", To: "c", Cost: 1},
		}),
		Auth: auth.SchemeHMAC,
	}
	nRef, _ := mustRun(t, cfg)
	ref := snapshotPreds(nRef, "bestPath", "spCost")

	// Path facts flow against link direction (rule sp2 ships path(@Z,…)
	// to the link's source), so a never-healing b→a partition starves a
	// of every path through b: bestPath(a,c) cannot exist until the
	// test releases the held frames explicitly.
	fn := faultnet.New(netsim.New(), faultnet.Config{
		Partitions: []faultnet.Partition{{Src: "b", Dst: "a"}},
	})
	n := startLive(t, cfg, fn)
	td := n.StartTermination(context.Background(), testTermConfig())

	if _, err := n.Driver().AwaitQuiescence(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The idle heuristic: sample the transport counters across an idle
	// window; stable messages and an empty backlog mean "converged".
	idleWindow := 20
	base := fn.Stats().Messages
	fired := true
	for i := 0; i < idleWindow; i++ {
		time.Sleep(2 * time.Millisecond)
		if fn.Stats().Messages != base || fn.PendingCount() > 0 {
			fired = false
			break
		}
	}
	if !fired {
		t.Fatal("idle heuristic did not fire; the deceptive quiescence never stabilized")
	}
	// The heuristic just declared — over a live partition, with frames
	// in flight, and with tables missing everything b owed c.
	if fn.Faults().Limbo == 0 {
		t.Fatal("idle heuristic fired with no frames in flight; partition injected nothing")
	}
	if got := snapshotPreds(n, "bestPath", "spCost"); got == ref {
		t.Fatal("tables complete despite the partition; the false fixpoint is not false")
	}
	if td.Terminated() {
		t.Fatal("credit detector declared under the same schedule the idle heuristic fails on")
	}

	// Heal: flush the held frames until the run truly converges. The
	// credit detector now declares, over correct tables — proving the
	// run the heuristic gave up on was still in progress.
	relCtx, relCancel := context.WithCancel(context.Background())
	defer relCancel()
	go func() {
		for {
			select {
			case <-relCtx.Done():
				return
			case <-time.After(time.Millisecond):
				fn.ReleaseAll()
			}
		}
	}()
	awaitDone(t, td, 60*time.Second)
	if got := snapshotPreds(n, "bestPath", "spCost"); got != ref {
		t.Fatalf("tables after heal differ from reference\n--- live ---\n%s--- ref ---\n%s", got, ref)
	}
}

// TestResupplyReplaysExports pins the soft-state half of the restart
// story at the core layer: a driver-level Resupply replays every
// node's export log and the network re-converges to the same tables —
// the replay is idempotent. Run with sessions on, Resupply resets the
// outbound session state, so the replay also exercises the
// re-handshake path a restarted peer triggers.
func TestResupplyReplaysExports(t *testing.T) {
	for _, s := range []struct {
		name string
		mut  func(*Config)
	}{
		{"legacy", func(c *Config) {}},
		{"session", func(c *Config) { c.SessionAuth = true; c.Auth = auth.SchemeRSA; c.KeyBits = 512 }},
	} {
		t.Run(s.name, func(t *testing.T) {
			cfg := termCfg()
			cfg.Resupply = true
			s.mut(&cfg)
			n := startLive(t, cfg, nil)
			d := n.Driver()
			ctx := context.Background()
			if _, err := d.AwaitQuiescence(ctx); err != nil {
				t.Fatal(err)
			}
			before := snapshotPreds(n, "bestPath", "spCost")
			msgs := n.Transport().Stats().Messages

			if err := d.Resupply(); err != nil {
				t.Fatal(err)
			}
			if _, err := d.AwaitQuiescence(ctx); err != nil {
				t.Fatal(err)
			}
			if after := snapshotPreds(n, "bestPath", "spCost"); after != before {
				t.Fatalf("tables changed across resupply\n--- before ---\n%s--- after ---\n%s", before, after)
			}
			if n.Transport().Stats().Messages == msgs {
				t.Fatal("resupply shipped nothing; export log empty")
			}
		})
	}
}
