package core

import (
	"context"
	"io"

	"provnet/internal/netsim"
)

// Transport is the message substrate the scheduler runs over: named nodes
// exchange opaque datagrams (the wire v1–v4 frames of wire.go). Two
// implementations exist: internal/netsim, the in-memory fabric every
// single-process run uses, and internal/nettcp, a real TCP backend that
// lets N OS processes host one node each (see docs/ARCHITECTURE.md).
//
// Contract:
//
//   - Send/SendTagged enqueue one datagram for a destination node and
//     charge its bytes to the stats. Sends to unknown destinations are
//     counted as drops and return an error.
//   - Drain removes and returns everything queued for one node. Datagrams
//     from one sender MUST be delivered in send order (the session
//     handshake precedes the data frames it unlocks). The in-memory
//     fabric additionally guarantees the deterministic
//     (sender-registration, per-sender send) total order the
//     bit-equality pins rely on; a socket transport only promises the
//     per-sender order, which is enough for the fixpoint to converge to
//     the same tables (Datalog evaluation is confluent).
//   - Stats counters are cumulative and safe for concurrent use.
//
// A transport that holds OS resources should also implement io.Closer
// (Network.Close releases it), and one that receives datagrams
// asynchronously should implement Notifier so the lifecycle driver wakes
// when traffic arrives between rounds. Reliable or lossy transports
// additionally implement the optional gauges below: InFlighter is what
// lets the termination detector distinguish "quiet" from "done" — a
// datagram accepted by Send but not yet acknowledged (or still parked in
// a fault injector's limbo) is in flight, and no fixpoint may be
// declared over it.
type Transport interface {
	// AddNode registers a node hosted by this process. Register all local
	// nodes before running traffic.
	AddNode(name string)
	// Send enqueues a datagram, charging its bytes.
	Send(from, to string, payload []byte) error
	// SendTagged is Send with a traffic-class tag: handshake marks
	// control-plane datagrams so the stats split handshake from data.
	SendTagged(from, to string, payload []byte, handshake bool) error
	// Drain removes and returns all datagrams queued for a local node.
	Drain(to string) []netsim.Message
	// PendingFor reports the backlog queued for one local node.
	PendingFor(to string) int
	// PendingCount reports the total local backlog.
	PendingCount() int
	// Stats returns a copy of the transport counters.
	Stats() netsim.Stats
	// ResetStats zeroes the counters (per-experiment runs).
	ResetStats()
}

// Notifier is implemented by transports that receive datagrams
// asynchronously (sockets, not the round-driven in-memory fabric). The
// registered callback fires after every inbound enqueue; the lifecycle
// driver uses it to mark itself dirty so the pump re-enters the round
// loop when a remote peer ships work between rounds.
type Notifier interface {
	Notify(fn func())
}

// InFlighter is implemented by transports that can say how many locally
// originated datagrams are accepted but not yet safely delivered
// (unacknowledged reliability windows, fault-injector limbo). The
// termination detector refuses to pass a token while InFlight is
// nonzero: those datagrams will surface as future work somewhere.
type InFlighter interface {
	InFlight() int
}

// Flusher is implemented by transports that can block until every
// locally originated datagram is acknowledged. The termination detector
// flushes before the terminate broadcast so no process exits with
// undelivered frames in its window.
type Flusher interface {
	Flush(ctx context.Context) error
}

// RestartNotifier is implemented by transports that detect a peer
// process restarting (a new hello incarnation on a known link). The
// network uses it to trigger soft-state re-announcement: the restarted
// peer lost its tables, so every neighbour re-supplies its current
// exports.
type RestartNotifier interface {
	SetRestartHandler(fn func(process string))
}

// Close releases the network's resources: the lifecycle driver (pump,
// subscriptions), the configured Store (flushed and closed), and the
// transport, when it holds sockets. In-memory runs without a Store need
// no Close; TCP-backed or durable runs should defer it.
func (n *Network) Close() error {
	err := n.Driver().Close()
	if n.store != nil {
		if serr := n.store.Close(); serr != nil {
			n.storeErr.CompareAndSwap(nil, &serr)
		}
		if err == nil {
			err = n.StoreErr()
		}
	}
	if c, ok := n.net.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
