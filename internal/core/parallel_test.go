package core

import (
	"fmt"
	"strings"
	"testing"

	"provnet/internal/auth"
	"provnet/internal/provenance"
	"provnet/internal/topo"
)

// snapshot renders every node's live tables into one comparable string.
func snapshot(t *testing.T, n *Network) string {
	t.Helper()
	var b strings.Builder
	for _, name := range n.Nodes() {
		node := n.Node(name)
		for _, pred := range node.Engine.Predicates() {
			for _, tu := range node.Engine.Tuples(pred) {
				fmt.Fprintf(&b, "%s: %s\n", name, tu)
			}
		}
	}
	return b.String()
}

// TestParallelMatchesSequential asserts the tentpole invariant: the
// parallel worker-pool scheduler produces exactly the same fixpoint
// tables, round count, and transport stats as the sequential baseline,
// across program/topology/wire-format variants. Run with -race this also
// exercises the fabric and signer under concurrency.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"reachable-ndlog-paper", Config{
			Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		}},
		{"reachable-sendlog-rsa-condensed", Config{
			Source:     ReachableSeNDlog,
			Graph:      topo.RandomConnected(topo.Options{N: 10, AvgOutDegree: 3, Seed: 7}),
			LinkNoCost: true,
			Auth:       auth.SchemeRSA, Prov: provenance.ModeCondensed,
		}},
		{"bestpath-rsa", Config{
			Source: BestPath,
			Graph:  topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, MaxCost: 10, Seed: 4}),
			Auth:   auth.SchemeRSA,
		}},
		{"distance-vector-local-prov", Config{
			Source: DistanceVector,
			Graph:  topo.RandomConnected(topo.Options{N: 10, AvgOutDegree: 3, MaxCost: 10, Seed: 2}),
			Prov:   provenance.ModeLocal,
		}},
	}
	for _, tc := range cases {
		for _, unbatched := range []bool{false, true} {
			name := tc.name + "/batched"
			if unbatched {
				name = tc.name + "/unbatched"
			}
			t.Run(name, func(t *testing.T) {
				seq := tc.cfg
				seq.Sequential = true
				seq.Unbatched = unbatched
				nSeq, repSeq := mustRun(t, seq)

				par := tc.cfg
				par.Sequential = false
				par.Workers = 4
				par.Unbatched = unbatched
				nPar, repPar := mustRun(t, par)

				if a, b := snapshot(t, nSeq), snapshot(t, nPar); a != b {
					t.Fatalf("fixpoint tables differ\n--- sequential ---\n%s--- parallel ---\n%s", a, b)
				}
				if repSeq.Rounds != repPar.Rounds {
					t.Errorf("rounds: sequential %d, parallel %d", repSeq.Rounds, repPar.Rounds)
				}
				sSeq, sPar := nSeq.Transport().Stats(), nPar.Transport().Stats()
				if sSeq != sPar {
					t.Errorf("netsim stats: sequential %+v, parallel %+v", sSeq, sPar)
				}
				if repSeq.Signed != repPar.Signed || repSeq.Verified != repPar.Verified {
					t.Errorf("signature ops: sequential %d/%d, parallel %d/%d",
						repSeq.Signed, repSeq.Verified, repPar.Signed, repPar.Verified)
				}
				if repSeq.Derivations != repPar.Derivations || repSeq.TuplesStored != repPar.TuplesStored {
					t.Errorf("engine stats: sequential %d/%d, parallel %d/%d",
						repSeq.Derivations, repSeq.TuplesStored, repPar.Derivations, repPar.TuplesStored)
				}
			})
		}
	}
}

// TestBatchingReducesMessagesAndBytes checks the wire-level half of the
// tentpole: batch envelopes ship the same fixpoint in fewer messages
// (fewer netsim.HeaderOverhead charges) and fewer signatures.
func TestBatchingReducesMessagesAndBytes(t *testing.T) {
	g := topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, MaxCost: 10, Seed: 6})
	base := Config{Source: BestPath, Graph: g, Auth: auth.SchemeRSA}

	batched := base
	nB, repB := mustRun(t, batched)

	unbatched := base
	unbatched.Unbatched = true
	nU, repU := mustRun(t, unbatched)

	if a, b := snapshot(t, nB), snapshot(t, nU); a != b {
		t.Fatal("wire format must not change the fixpoint")
	}
	if repB.Messages >= repU.Messages {
		t.Errorf("batched messages = %d, want < unbatched %d", repB.Messages, repU.Messages)
	}
	if repB.Bytes >= repU.Bytes {
		t.Errorf("batched bytes = %d, want < unbatched %d", repB.Bytes, repU.Bytes)
	}
	if repB.Signed >= repU.Signed {
		t.Errorf("batched signatures = %d, want < unbatched %d", repB.Signed, repU.Signed)
	}
}

// TestParallelWorkerKnob pins down the Workers knob: any worker count
// produces the same result.
func TestParallelWorkerKnob(t *testing.T) {
	g := topo.RandomConnected(topo.Options{N: 8, AvgOutDegree: 3, MaxCost: 5, Seed: 11})
	var want string
	var wantRounds int
	for i, workers := range []int{1, 2, 8, 64} {
		cfg := Config{Source: BestPath, Graph: g, Workers: workers}
		n, rep := mustRun(t, cfg)
		got := snapshot(t, n)
		if i == 0 {
			want, wantRounds = got, rep.Rounds
			continue
		}
		if got != want || rep.Rounds != wantRounds {
			t.Fatalf("workers=%d diverged (rounds %d vs %d)", workers, rep.Rounds, wantRounds)
		}
	}
}
