package core

import (
	"testing"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
	"provnet/internal/topo"
)

// bestPathCfg is the §6 Best-Path workload the transport stack is
// A/B-tested on.
func bestPathCfg() Config {
	return Config{
		Source: BestPath,
		Graph:  topo.RandomConnected(topo.Options{N: 12, AvgOutDegree: 3, MaxCost: 10, Seed: 9}),
		Auth:   auth.SchemeRSA,
	}
}

// TestTransportSchedulesMatch pins the tentpole invariant across the
// whole transport-security stack: the sequential per-tuple-RSA baseline,
// the parallel session-MAC transport, and the pipelined-crypto schedule
// all produce bit-identical fixpoint tables and round counts on the §6
// Best-Path workload. (Bytes and signature counts legitimately differ
// across wire formats; TestPipelinedMatchesInline pins those for
// same-format pairs.)
func TestTransportSchedulesMatch(t *testing.T) {
	base := bestPathCfg()

	seqRSA := base
	seqRSA.Sequential = true
	seqRSA.Unbatched = true
	nBase, repBase := mustRun(t, seqRSA)
	want, wantRounds := snapshot(t, nBase), repBase.Rounds

	schedules := []struct {
		name string
		mut  func(*Config)
	}{
		{"parallel-rsa-batched", func(c *Config) {}},
		{"parallel-session", func(c *Config) { c.SessionAuth = true }},
		{"parallel-session-unbatched", func(c *Config) { c.SessionAuth = true; c.Unbatched = true }},
		{"pipelined-rsa", func(c *Config) { c.PipelinedCrypto = true }},
		{"pipelined-session", func(c *Config) { c.SessionAuth = true; c.PipelinedCrypto = true }},
		{"sequential-pipelined-session", func(c *Config) {
			c.Sequential = true
			c.SessionAuth = true
			c.PipelinedCrypto = true
		}},
		{"pipelined-session-rekey", func(c *Config) {
			c.SessionAuth = true
			c.PipelinedCrypto = true
			c.RekeyRounds = 2
		}},
	}
	for _, s := range schedules {
		t.Run(s.name, func(t *testing.T) {
			cfg := base
			cfg.Workers = 4
			s.mut(&cfg)
			n, rep := mustRun(t, cfg)
			if got := snapshot(t, n); got != want {
				t.Fatalf("fixpoint tables differ from sequential/per-tuple-RSA baseline\n--- want ---\n%s--- got ---\n%s", want, got)
			}
			if rep.Rounds != wantRounds {
				t.Errorf("rounds = %d, want %d", rep.Rounds, wantRounds)
			}
		})
	}
}

// TestPipelinedMatchesInline pins full-stats equality for the
// PipelinedCrypto knob: moving sealing/verification off the evaluation
// path must not change tables, rounds, transport stats, or operation
// counts — for both the per-envelope and the session transports.
func TestPipelinedMatchesInline(t *testing.T) {
	for _, session := range []bool{false, true} {
		name := "rsa"
		if session {
			name = "session"
		}
		t.Run(name, func(t *testing.T) {
			cfg := bestPathCfg()
			cfg.SessionAuth = session
			cfg.RekeyRounds = 3
			nIn, repIn := mustRun(t, cfg)

			piped := cfg
			piped.PipelinedCrypto = true
			piped.Workers = 4
			nPi, repPi := mustRun(t, piped)

			if a, b := snapshot(t, nIn), snapshot(t, nPi); a != b {
				t.Fatalf("tables differ\n--- inline ---\n%s--- pipelined ---\n%s", a, b)
			}
			if repIn.Rounds != repPi.Rounds {
				t.Errorf("rounds: inline %d, pipelined %d", repIn.Rounds, repPi.Rounds)
			}
			sIn, sPi := nIn.Transport().Stats(), nPi.Transport().Stats()
			if sIn != sPi {
				t.Errorf("netsim stats: inline %+v, pipelined %+v", sIn, sPi)
			}
			if repIn.Signed != repPi.Signed || repIn.Verified != repPi.Verified ||
				repIn.Handshakes != repPi.Handshakes ||
				repIn.SealedMAC != repPi.SealedMAC || repIn.OpenedMAC != repPi.OpenedMAC {
				t.Errorf("crypto ops: inline %+v, pipelined %+v", repIn, repPi)
			}
			if repIn.Derivations != repPi.Derivations || repIn.TuplesStored != repPi.TuplesStored {
				t.Errorf("engine stats: inline %d/%d, pipelined %d/%d",
					repIn.Derivations, repIn.TuplesStored, repPi.Derivations, repPi.TuplesStored)
			}
		})
	}
}

// TestSessionAmortizesSignatures checks the point of the session stack:
// RSA signature operations drop from one per batch to one per link
// handshake, with the per-envelope work done by session MACs instead.
func TestSessionAmortizesSignatures(t *testing.T) {
	rsa := bestPathCfg()
	_, repRSA := mustRun(t, rsa)

	session := bestPathCfg()
	session.SessionAuth = true
	nS, repS := mustRun(t, session)

	if repS.Signed >= repRSA.Signed {
		t.Errorf("session signatures = %d, want < per-batch RSA %d", repS.Signed, repRSA.Signed)
	}
	if repS.Handshakes == 0 || repS.Signed != repS.Handshakes {
		t.Errorf("session Signed = %d, Handshakes = %d: signatures should be exactly the handshakes",
			repS.Signed, repS.Handshakes)
	}
	if repS.SealedMAC == 0 || repS.OpenedMAC == 0 {
		t.Errorf("MAC ops = %d/%d, want > 0", repS.SealedMAC, repS.OpenedMAC)
	}
	// Without rekeying there is at most one handshake per directed pair
	// that carries traffic (localized rules ship tuples both along and
	// against topology links, so the bound is twice the link count).
	links := len(session.Graph.Links)
	if repS.Handshakes > int64(2*links) {
		t.Errorf("handshakes = %d, want <= %d directed pairs without rekey", repS.Handshakes, 2*links)
	}
	// The stats split handshake from data traffic.
	stats := nS.Transport().Stats()
	if stats.HandshakeMessages != repS.Handshakes {
		t.Errorf("handshake messages = %d, want %d", stats.HandshakeMessages, repS.Handshakes)
	}
	if stats.HandshakeBytes == 0 || stats.HandshakeBytes >= stats.Bytes {
		t.Errorf("handshake bytes = %d of %d total", stats.HandshakeBytes, stats.Bytes)
	}
	if repRSA.Handshakes != 0 || repRSA.SealedMAC != 0 {
		t.Errorf("per-envelope run reports session ops: %+v", repRSA)
	}
}

// TestSessionRekeyBoundaries checks that rekeying re-handshakes live
// links and everything still decodes across epoch boundaries.
func TestSessionRekeyBoundaries(t *testing.T) {
	noRekey := bestPathCfg()
	noRekey.SessionAuth = true
	nN, repN := mustRun(t, noRekey)

	rekey := bestPathCfg()
	rekey.SessionAuth = true
	rekey.RekeyRounds = 1 // fresh keys every round: every boundary is a rekey boundary
	nR, repR := mustRun(t, rekey)

	if a, b := snapshot(t, nN), snapshot(t, nR); a != b {
		t.Fatal("rekeying must not change the fixpoint")
	}
	if repR.Rounds != repN.Rounds {
		t.Errorf("rounds: no-rekey %d, rekey %d", repN.Rounds, repR.Rounds)
	}
	if repR.Handshakes <= repN.Handshakes {
		t.Errorf("rekey handshakes = %d, want > %d", repR.Handshakes, repN.Handshakes)
	}
	if repR.RejectedSig != 0 {
		t.Errorf("rekey run rejected %d envelopes", repR.RejectedSig)
	}
}

// TestSessionFallbackDecodesLegacy injects seed-era v1 and v2 datagrams
// into a session-mode network: the receiver must fall back to the
// per-envelope verifier and import them (the v3→v1/v2 negotiation path).
func TestSessionFallbackDecodesLegacy(t *testing.T) {
	cfg := Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		Auth: auth.SchemeRSA, KeyBits: 512, SessionAuth: true}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A legacy v1 envelope, properly signed under the says scheme.
	v1 := &Envelope{From: "b", Tuple: data.NewTuple("reachable", data.Str("b"), data.Str("legacy1")),
		Scheme: auth.SchemeRSA}
	p1, err := v1.Encode(n.legacy, "a")
	if err != nil {
		t.Fatal(err)
	}
	// A legacy v2 batch.
	v2 := &BatchEnvelope{From: "b", Scheme: auth.SchemeRSA, Items: []BatchItem{
		{Tuple: data.NewTuple("reachable", data.Str("b"), data.Str("legacy2"))},
	}}
	p2, err := v2.Encode(n.legacy, "a")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][]byte{p1, p2} {
		if err := n.Transport().Send("b", "a", p); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedSig != 0 {
		t.Errorf("rejected = %d, want 0", rep.RejectedSig)
	}
	found := map[string]bool{}
	for _, tu := range n.Tuples("a", "reachable") {
		found[tu.Args[1].Str] = true
	}
	if !found["legacy1"] || !found["legacy2"] {
		t.Errorf("legacy envelopes not imported; got %v", found)
	}
}

// TestSessionDropsUnverifiableInput floods a session-mode network with
// corrupted and truncated v3 frames: every one must be dropped cleanly
// (counted, no panic, no table pollution) and the run still completes.
func TestSessionDropsUnverifiableInput(t *testing.T) {
	cfg := Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		Auth: auth.SchemeRSA, KeyBits: 512, SessionAuth: true}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A forged handshake frame (garbage blob), a truncated handshake, and
	// a data frame for a link that never shook hands.
	orphan := &SessionEnvelope{From: "b",
		Items: []BatchItem{{Tuple: data.NewTuple("reachable", data.Str("b"), data.Str("forged"))}}}
	orphanPayload := append(orphan.sealedPrefix(), 0) // zero-length tag
	bad := [][]byte{
		EncodeHandshakeFrame([]byte{0xde, 0xad, 0xbe, 0xef}),
		EncodeHandshakeFrame([]byte{0x01})[:2],
		orphanPayload,
	}
	for _, p := range bad {
		if err := n.Transport().Send("b", "a", p); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// The truncated frame ([3] alone after cutting the kind byte's blob)
	// decodes as an empty handshake and is dropped; all three count.
	if rep.RejectedSig == 0 {
		t.Errorf("rejected = %d, want > 0", rep.RejectedSig)
	}
	for _, tu := range n.Tuples("a", "reachable") {
		if tu.Args[1].Str == "forged" {
			t.Fatal("forged session frame accepted")
		}
	}
}

// TestSessionFramesRejectedWithoutSessionAuth pins the downgrade path: a
// network running the per-envelope transport drops v3 frames it cannot
// open instead of erroring or panicking.
func TestSessionFramesRejectedWithoutSessionAuth(t *testing.T) {
	cfg := Config{Source: ReachableNDlog, Graph: paperGraph(), LinkNoCost: true,
		Auth: auth.SchemeRSA, KeyBits: 512}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Transport().Send("b", "a", EncodeHandshakeFrame([]byte{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RejectedSig == 0 {
		t.Error("v3 frame must be dropped and counted when session auth is off")
	}
}

// TestVariantConfigSessionKnobs sanity-checks provenance modes under the
// session transport: condensed provenance still ships and condenses.
func TestSessionWithCondensedProvenance(t *testing.T) {
	cfg := Config{
		Source:      ReachableSeNDlog,
		Graph:       paperGraph(),
		LinkNoCost:  true,
		Auth:        auth.SchemeRSA,
		Prov:        provenance.ModeCondensed,
		SessionAuth: true,
	}
	n, _ := mustRun(t, cfg)
	base := Config{
		Source:     ReachableSeNDlog,
		Graph:      paperGraph(),
		LinkNoCost: true,
		Auth:       auth.SchemeRSA,
		Prov:       provenance.ModeCondensed,
	}
	nB, _ := mustRun(t, base)
	if a, b := snapshot(t, n), snapshot(t, nB); a != b {
		t.Fatal("session transport must not change condensed-provenance fixpoint")
	}
}

// TestSchemeSessionNormalizes pins the Config sugar: Auth: SchemeSession
// configures exactly the RSA + SessionAuth stack.
func TestSchemeSessionNormalizes(t *testing.T) {
	sugar := bestPathCfg()
	sugar.Auth = auth.SchemeSession
	nSu, repSu := mustRun(t, sugar)

	explicit := bestPathCfg()
	explicit.SessionAuth = true
	nEx, repEx := mustRun(t, explicit)

	if a, b := snapshot(t, nSu), snapshot(t, nEx); a != b {
		t.Fatal("SchemeSession fixpoint differs from explicit SessionAuth")
	}
	if repSu.Signed != repEx.Signed || repSu.Handshakes != repEx.Handshakes ||
		repSu.SealedMAC != repEx.SealedMAC {
		t.Errorf("crypto ops: sugar %+v, explicit %+v", repSu, repEx)
	}
	if repSu.Handshakes == 0 {
		t.Error("SchemeSession must enable the session transport")
	}
}
