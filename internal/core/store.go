package core

import (
	"sort"
	"strings"
	"sync"

	"provnet/internal/data"
)

// The Store interface is the durability seam of the network: every table
// change at every hosted node is reported to the configured Store as an
// ordered event stream, and quiescence points seal/flush it. The default
// (Config.Store == nil) keeps the seed behavior — tables and provenance
// live only in the engines' in-memory maps — exactly as Transport == nil
// keeps the in-memory netsim fabric. internal/storelog supplies the
// durable append-only implementation; MemStore below materializes the
// stream in memory for tests and as the reference replay semantics.
//
// Events for one node arrive in that node's deterministic engine order
// (the scheduler serializes each node's evaluation), so a faithful Store
// replay reconstructs tables and condensed provenance bit-identical to
// the live run — pinned by storelog's TestStoreLogMatchesMemory.

// EventKind classifies one store event.
type EventKind uint8

const (
	// EvInsert: the tuple entered the node's table.
	EvInsert EventKind = iota
	// EvRetract: the tuple left the table via retraction (the row moves
	// to the stale tier, mirroring §4.2's offline provenance story).
	EvRetract
	// EvExpire: the tuple's soft-state TTL lapsed (no stale history —
	// expiry is the normal death of soft state, not a withdrawal).
	EvExpire
	// EvProv: the tuple stayed put but its provenance annotation absorbed
	// an alternative derivation; Prov carries the new condensed expression.
	EvProv
)

// String names the kind (used in logs and storelog's record layout docs).
func (k EventKind) String() string {
	switch k {
	case EvInsert:
		return "insert"
	case EvRetract:
		return "retract"
	case EvExpire:
		return "expire"
	case EvProv:
		return "prov"
	default:
		return "event?"
	}
}

// StoreEvent is one table change, as appended to a Store.
type StoreEvent struct {
	Kind EventKind
	// Node is the engine the change happened at.
	Node string
	// Tuple is the changed fact.
	Tuple data.Tuple
	// Prov is the condensed provenance expression of the tuple after the
	// change ("" unless the network runs ModeCondensed).
	Prov string
	// At is the logical clock at the time of the change.
	At float64
}

// Store persists the event stream. Append is called synchronously from
// the owning node's scheduler task (concurrently across nodes, never
// concurrently for one node); Seal/Flush/Pending/Close are called from
// the driver with no engine locks held. Implementations must be safe for
// that concurrency and should make Append cheap (buffer, hand off to a
// writer goroutine) — it sits on the evaluation path.
type Store interface {
	// Append records one event. Errors are sticky: the driver surfaces
	// the first failure and stops appending.
	Append(ev StoreEvent) error
	// Seal marks a quiescent point (a distributed fixpoint): a durable
	// backend may checkpoint a snapshot so recovery replays less log.
	Seal() error
	// Flush blocks until every appended event is durable.
	Flush() error
	// Pending reports buffered events not yet durable; the driver's
	// quiescence decision drains it to zero first (mirroring
	// Transport.PendingCount).
	Pending() int
	// Close flushes and releases resources.
	Close() error
}

// --- replay state (shared by MemStore and storelog recovery) ---

// StoredRow is one materialized fact in a StoreState.
type StoredRow struct {
	Tuple data.Tuple
	// Prov is the latest condensed provenance expression ("" when the
	// run kept none).
	Prov string
	// At is the logical clock of the insertion.
	At float64
	// StaleAt is the logical clock of the retraction (stale rows only).
	StaleAt float64
}

// NodeState is one node's materialized store: live rows plus the stale
// tier retaining retracted facts for forensics.
type NodeState struct {
	Rows  map[string]StoredRow // key: Tuple.Key()
	Stale map[string]StoredRow
}

// StoreState materializes a store event stream: the replay semantics a
// durable backend must reproduce. Apply is deterministic — two identical
// event streams yield identical states — which is what lets storelog pin
// recovery bit-identical to the in-memory run.
type StoreState struct {
	Nodes map[string]*NodeState
	// Clock is the logical time of the last applied event (or seal).
	Clock float64
}

// NewStoreState returns an empty state.
func NewStoreState() *StoreState {
	return &StoreState{Nodes: make(map[string]*NodeState)}
}

func (s *StoreState) node(name string) *NodeState {
	ns := s.Nodes[name]
	if ns == nil {
		ns = &NodeState{Rows: make(map[string]StoredRow), Stale: make(map[string]StoredRow)}
		s.Nodes[name] = ns
	}
	return ns
}

// Apply folds one event into the state.
func (s *StoreState) Apply(ev StoreEvent) {
	ns := s.node(ev.Node)
	key := ev.Tuple.Key() //provlint:allow keystring store-state rows are keyed on the canonical bytes; the replay contract storelog pins
	switch ev.Kind {
	case EvInsert:
		ns.Rows[key] = StoredRow{Tuple: ev.Tuple, Prov: ev.Prov, At: ev.At}
		// A re-derivation supersedes any stale record of the fact.
		delete(ns.Stale, key)
	case EvProv:
		if row, ok := ns.Rows[key]; ok {
			row.Prov = ev.Prov
			ns.Rows[key] = row
		}
	case EvRetract:
		if row, ok := ns.Rows[key]; ok {
			delete(ns.Rows, key)
			row.StaleAt = ev.At
			ns.Stale[key] = row
		}
	case EvExpire:
		delete(ns.Rows, key)
	}
	if ev.At > s.Clock {
		s.Clock = ev.At
	}
}

// LiveDump renders the live rows as sorted "node\ttuple\tprov" lines, the
// same shape ReadView.Dump produces — the two are compared verbatim by
// the storelog determinism pin.
func (s *StoreState) LiveDump() string {
	var lines []string
	for name, ns := range s.Nodes { //provlint:allow mapiter collected lines are sorted before joining
		for _, row := range ns.Rows {
			lines = append(lines, name+"\t"+row.Tuple.String()+"\t"+row.Prov)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Dump renders the full state — live rows plus the stale tier — as sorted
// lines, for whole-state comparisons across recovery runs.
func (s *StoreState) Dump() string {
	var lines []string
	for name, ns := range s.Nodes { //provlint:allow mapiter collected lines are sorted before joining
		for _, row := range ns.Rows {
			lines = append(lines, "live\t"+name+"\t"+row.Tuple.String()+"\t"+row.Prov)
		}
		for _, row := range ns.Stale {
			lines = append(lines, "stale\t"+name+"\t"+row.Tuple.String()+"\t"+row.Prov)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// --- in-memory reference implementation ---

// MemStore materializes the event stream in memory: the reference Store
// implementation (and the oracle half of TestStoreLogMatchesMemory). It
// is safe for concurrent appends from all scheduler tasks.
type MemStore struct {
	mu     sync.Mutex
	state  *StoreState
	events int
	seals  int
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{state: NewStoreState()} }

// Append folds the event into the materialized state.
func (m *MemStore) Append(ev StoreEvent) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state.Apply(ev)
	m.events++
	return nil
}

// Seal counts the quiescent point (memory needs no checkpoints).
func (m *MemStore) Seal() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seals++
	return nil
}

// Flush is a no-op: appends are immediately "durable" in memory.
func (m *MemStore) Flush() error { return nil }

// Pending is always zero.
func (m *MemStore) Pending() int { return 0 }

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

// Events returns the number of appended events.
func (m *MemStore) Events() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Seals returns the number of sealed quiescent points.
func (m *MemStore) Seals() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seals
}

// State returns a deep copy of the materialized state.
func (m *MemStore) State() *StoreState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewStoreState()
	out.Clock = m.state.Clock
	for name, ns := range m.state.Nodes { //provlint:allow mapiter map-to-map copy; order cannot escape
		cp := &NodeState{Rows: make(map[string]StoredRow, len(ns.Rows)), Stale: make(map[string]StoredRow, len(ns.Stale))}
		for k, v := range ns.Rows { //provlint:allow mapiter map-to-map copy; order cannot escape
			cp.Rows[k] = v
		}
		for k, v := range ns.Stale { //provlint:allow mapiter map-to-map copy; order cannot escape
			cp.Stale[k] = v
		}
		out.Nodes[name] = cp
	}
	return out
}
