package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"provnet/internal/auth"
	"provnet/internal/nettcp"
	"provnet/internal/provenance"
)

// snapshotNodeSorted renders one node's tables (with condensed
// annotations when available) as sorted lines, so runs whose arrival
// order differs can still be compared for set equality.
func snapshotNodeSorted(n *Network, name string) string {
	node := n.Node(name)
	if node == nil {
		return ""
	}
	var lines []string
	for _, pred := range node.Engine.Predicates() {
		for _, tu := range node.Engine.Tuples(pred) {
			line := fmt.Sprintf("%s: %s", name, tu)
			if n.cfg.Prov == provenance.ModeCondensed {
				line += "\t" + n.CondensedExpr(name, tu)
			}
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestTCPMatchesNetsim pins the multi-process story in-process: three
// core.Networks, each hosting one node of the paper topology over its
// own nettcp transport on loopback TCP, converge to the same tables and
// condensed provenance annotations as the single-process netsim run —
// under both per-envelope RSA and the session handshake transport.
// (cmd/provnet's TestMultiprocessMatchesSingleProcess repeats this with
// real OS processes.)
func TestTCPMatchesNetsim(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TCP convergence test")
	}
	schemes := []struct {
		name string
		mut  func(*Config)
	}{
		{"rsa", func(c *Config) {}},
		{"session", func(c *Config) { c.SessionAuth = true }},
	}
	for _, s := range schemes {
		t.Run(s.name, func(t *testing.T) {
			base := Config{
				Source:  BestPath,
				Graph:   paperGraph(),
				Auth:    auth.SchemeRSA,
				Prov:    provenance.ModeCondensed,
				KeyBits: 512,
			}
			s.mut(&base)
			ref, _ := mustRun(t, base)
			names := ref.Nodes()

			// One transport per "process", loopback listeners, full mesh.
			trs := make([]*nettcp.Transport, len(names))
			for i := range names {
				tr, err := nettcp.New(nettcp.Config{Listen: "127.0.0.1:0", Logf: t.Logf})
				if err != nil {
					t.Fatal(err)
				}
				trs[i] = tr
			}
			for i := range names {
				for j := range names {
					if i != j {
						trs[i].AddPeer(names[j], trs[j].Addr())
					}
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			nets := make([]*Network, len(names))
			for i, name := range names {
				cfg := base
				cfg.Transport = trs[i]
				cfg.LocalNodes = []string{name}
				n, err := NewNetwork(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer n.Close()
				nets[i] = n
				if err := n.Driver().Start(ctx); err != nil {
					t.Fatal(err)
				}
			}

			// Convergence: total message count stable across a settle
			// window with empty inboxes everywhere, then every driver
			// quiescent. Only stats (atomics) are read before that point,
			// so the table reads below cannot race the pumps.
			totals := func() (msgs int64, pending int) {
				for _, tr := range trs {
					msgs += tr.Stats().Messages
					pending += tr.PendingCount()
				}
				return
			}
			deadline := time.Now().Add(45 * time.Second)
			var last int64 = -1
			stable := 0
			for stable < 3 {
				if time.Now().After(deadline) {
					t.Fatal("no convergence within deadline")
				}
				time.Sleep(100 * time.Millisecond)
				msgs, pending := totals()
				if pending == 0 && msgs == last {
					stable++
				} else {
					stable = 0
				}
				last = msgs
			}
			for _, n := range nets {
				if _, err := n.Driver().AwaitQuiescence(ctx); err != nil {
					t.Fatal(err)
				}
			}

			for i, name := range names {
				want := snapshotNodeSorted(ref, name)
				got := snapshotNodeSorted(nets[i], name)
				if want != got {
					t.Errorf("node %s tables differ\n--- netsim ---\n%s--- tcp ---\n%s", name, want, got)
				}
			}
		})
	}
}
