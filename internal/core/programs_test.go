package core

import (
	"testing"

	"provnet/internal/provenance"
	"provnet/internal/semiring"
	"provnet/internal/topo"
)

func TestDistanceVectorMatchesDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := topo.RandomConnected(topo.Options{N: 10, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
		n, _ := mustRun(t, Config{Source: DistanceVector, Graph: g})
		for _, src := range g.Nodes {
			want := g.Dijkstra(src)
			got := map[string]int64{}
			for _, tu := range n.Tuples(src, "dvCost") {
				got[tu.Args[1].Str] = tu.Args[2].AsInt()
			}
			for dst, cost := range want {
				if dst == src {
					continue
				}
				if got[dst] != cost {
					t.Fatalf("seed %d: dvCost(%s,%s) = %d, oracle %d", seed, src, dst, got[dst], cost)
				}
			}
		}
	}
}

func TestPathVectorMatchesDijkstraAndCarriesPaths(t *testing.T) {
	g := topo.RandomConnected(topo.Options{N: 9, AvgOutDegree: 3, MaxCost: 10, Seed: 7})
	n, _ := mustRun(t, Config{Source: PathVector, Graph: g})
	adj := g.Adjacency()
	for _, src := range g.Nodes {
		want := g.Dijkstra(src)
		for _, tu := range n.Tuples(src, "bestRoute") {
			dst := tu.Args[1].Str
			path := tu.Args[2].List
			cost := tu.Args[3].AsInt()
			if want[dst] != cost {
				t.Fatalf("bestRoute(%s,%s) = %d, oracle %d", src, dst, cost, want[dst])
			}
			// The advertised path must be a real path with the claimed cost.
			var sum int64
			for i := 0; i+1 < len(path); i++ {
				c, ok := adj[path[i].Str][path[i+1].Str]
				if !ok {
					t.Fatalf("path uses missing link: %v", tu)
				}
				sum += c
			}
			if sum != cost {
				t.Fatalf("path sums to %d, claims %d: %v", sum, cost, tu)
			}
		}
	}
}

func TestASGranularityProvenance(t *testing.T) {
	// §5 "Provenance granularity": aggregate node-level provenance to the
	// AS level by renaming principals.
	g := topo.RandomConnected(topo.Options{N: 6, AvgOutDegree: 3, Seed: 4})
	n, _ := mustRun(t, Config{
		Source: ReachableNDlog, Graph: g, LinkNoCost: true,
		Prov: provenance.ModeCondensed,
	})
	asOf := func(node string) string {
		// n0..n2 are AS "as1", the rest "as2".
		if node < "n3" {
			return "as1"
		}
		return "as2"
	}
	src := g.Nodes[0]
	for _, tu := range n.Tuples(src, "reachable") {
		p := n.Poly(src, tu)
		asP := p.MapVars(asOf)
		for _, v := range asP.Support() {
			if v != "as1" && v != "as2" {
				t.Fatalf("AS-level provenance has node var %q: %s", v, asP)
			}
		}
		// AS-level provenance is coarser or equal: derivable node sets map
		// onto derivable AS sets.
		ok := semiring.Eval[bool](p, semiring.Bool{}, func(string) bool { return true })
		asOK := semiring.Eval[bool](asP, semiring.Bool{}, func(string) bool { return true })
		if ok != asOK {
			t.Fatal("granularity mapping must preserve derivability")
		}
	}
}
