package core

import (
	"provnet/internal/auth"
	"provnet/internal/provenance"
)

// Canonical programs from the paper.

// ReachableNDlog is the all-pairs reachability query of §2.1.
const ReachableNDlog = `
r1 reachable(@S,D) :- link(@S,D).
r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
`

// ReachableSeNDlog is the secure variant of §2.2, with Binder-style
// contexts and says.
const ReachableSeNDlog = `
At S:
  s1 reachable(S,D) :- link(S,D).
  s2 linkD(D,S)@D :- link(S,D).
  s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
`

// BestPath is the evaluation workload of §6: the recursive Best-Path
// query computing the shortest paths between all pairs of nodes, derived
// from the all-pairs reachability query with predicates for the actual
// path, its cost, and rules for selecting the best paths. The
// aggSelection pragma is the standard aggregate-selection optimization
// (only paths improving the current minimum propagate).
const BestPath = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3,4)).
materialize(spCost, infinity, infinity, keys(1,2)).
materialize(bestPath, infinity, infinity, keys(1,2)).
aggSelection(path, keys(1,2), min, 5).

sp1 path(@S,D,D,P,C) :- link(@S,D,C), P = f_init(S,D).
sp2 path(@S,D,Z,P,C) :- link(@S,Z,C1), path(@Z,D,W,P2,C2), C = C1 + C2,
    f_member(P2,S) == 0, P = f_concat(S,P2).
sp3 spCost(@S,D,min<C>) :- path(@S,D,Z,P,C).
sp4 bestPath(@S,D,P,C) :- spCost(@S,D,C), path(@S,D,Z,P,C).
`

// DistanceVector is the classic distance-vector routing protocol as an
// NDlog program (the paper notes traditional routing protocols are "a few
// lines" in NDlog, §2): each node advertises its best known costs to its
// neighbours; dvCost converges to the all-pairs shortest path costs.
const DistanceVector = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(dv, infinity, infinity, keys(1,2,3)).
materialize(dvCost, infinity, infinity, keys(1,2)).
aggSelection(dv, keys(1,2), min, 4).

dv1 dv(@S,D,D,C) :- link(@S,D,C).
dv2 dv(@S,D,Z,C) :- link(@S,Z,C1), dvCost(@Z,D,C2), C = C1 + C2.
dv3 dvCost(@S,D,min<C>) :- dv(@S,D,Z,C).
`

// PathVector is the path-vector protocol of BGP (§3 "Trust Management"):
// route advertisements carry the entire AS path, enabling policy
// enforcement on the path itself — the protocol the paper cites as
// provenance avant la lettre. Loops are suppressed with f_member.
const PathVector = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(route, infinity, infinity, keys(1,2,3)).
materialize(bestRoute, infinity, infinity, keys(1,2)).
aggSelection(route, keys(1,2), min, 4).

pv1 route(@S,D,P,C) :- link(@S,D,C), P = f_init(S,D).
pv2 route(@S,D,P,C) :- link(@S,Z,C1), bestRoute(@Z,D,P2,C2),
    f_member(P2,S) == 0, C = C1 + C2, P = f_concat(S,P2).
pv3 rCost(@S,D,min<C>) :- route(@S,D,P,C).
pv4 bestRoute(@S,D,P,C) :- rCost(@S,D,C), route(@S,D,P,C).
`

// VariantConfig returns the §6 experiment configuration for one of the
// paper's three system variants, over the given program source.
func VariantConfig(v Variant, source string) Config {
	cfg := Config{Source: source}
	switch v {
	case VariantNDlog:
		cfg.Auth = auth.SchemeNone
		cfg.Prov = provenance.ModeNone
	case VariantSeNDlog:
		cfg.Auth = auth.SchemeRSA
		cfg.Prov = provenance.ModeNone
	case VariantSeNDlogProv:
		cfg.Auth = auth.SchemeRSA
		cfg.Prov = provenance.ModeCondensed
	}
	return cfg
}
