package core

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
)

// Golden hex fixtures for every documented frame layout. Each fixture is
// the frozen byte-level encoding specified in docs/WIRE.md (the worked
// examples there are these exact strings): if an encoder or decoder
// drifts from the spec, this test fails before any cross-version
// deployment does. Tags/signatures are placeholder bytes — layout, not
// cryptography, is under test (wire_test.go and the auth package cover
// verification).
var goldenFrames = []struct {
	name   string
	hex    string
	decode func(t *testing.T, b []byte) any // decoded representation
	build  func() ([]byte, error)           // re-encode from struct
}{
	{
		name: "v1 envelope",
		hex:  "01016109726561636861626c65000203016103016200000102aabb",
		decode: func(t *testing.T, b []byte) any {
			e, err := DecodeEnvelope(b)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		build: func() ([]byte, error) {
			e := &Envelope{From: "a",
				Tuple:    data.NewTuple("reachable", data.Str("a"), data.Str("b")),
				ProvMode: provenance.ModeNone, Scheme: auth.SchemeHMAC,
				Sig: []byte{0xAA, 0xBB}}
			return data.AppendBytes(e.signedPrefix(), e.Sig), nil
		},
	},
	{
		name: "v2 batch envelope",
		hex:  "020162030202047061746800030301620301630006020102046c696e6b00020301620301630002c0de",
		decode: func(t *testing.T, b []byte) any {
			e, err := DecodeBatchEnvelope(b)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		build: func() ([]byte, error) {
			e := &BatchEnvelope{From: "b", ProvMode: provenance.ModeCondensed, Scheme: auth.SchemeRSA,
				Items: []BatchItem{
					{Tuple: data.NewTuple("path", data.Str("b"), data.Str("c"), data.Int(3)), Prov: []byte{0x01, 0x02}},
					{Tuple: data.NewTuple("link", data.Str("b"), data.Str("c"))},
				},
				Sig: []byte{0xC0, 0xDE}}
			return data.AppendBytes(e.signedPrefix(), e.Sig), nil
		},
	},
	{
		name: "v3 handshake frame",
		hex:  "0301010203",
		decode: func(t *testing.T, b []byte) any {
			blob, err := DecodeHandshakeFrame(b)
			if err != nil {
				t.Fatal(err)
			}
			return blob
		},
		build: func() ([]byte, error) {
			return EncodeHandshakeFrame([]byte{0x01, 0x02, 0x03}), nil
		},
	},
	{
		name: "v3 session data frame",
		hex:  "030201630001086265737450617468000403016303016104020301630301610002000300feed",
		decode: func(t *testing.T, b []byte) any {
			e, err := DecodeSessionEnvelope(b)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		build: func() ([]byte, error) {
			e := &SessionEnvelope{From: "c", ProvMode: provenance.ModeNone,
				Items: []BatchItem{{Tuple: data.NewTuple("bestPath",
					data.Str("c"), data.Str("a"), data.List(data.Str("c"), data.Str("a")), data.Int(1))}},
				Tag: []byte{0x00, 0xFE, 0xED}}
			return data.AppendBytes(e.sealedPrefix(), e.Tag), nil
		},
	},
	{
		name: "v3 session retract frame",
		hex:  "030301630001086265737450617468000403016303016104020301630301610002000300feed",
		decode: func(t *testing.T, b []byte) any {
			e, err := DecodeSessionEnvelope(b)
			if err != nil {
				t.Fatal(err)
			}
			if !e.Retract {
				t.Fatal("retract frame decoded with Retract=false")
			}
			return e
		},
		build: func() ([]byte, error) {
			e := &SessionEnvelope{From: "c", ProvMode: provenance.ModeNone, Retract: true,
				Items: []BatchItem{{Tuple: data.NewTuple("bestPath",
					data.Str("c"), data.Str("a"), data.List(data.Str("c"), data.Str("a")), data.Int(1))}},
				Tag: []byte{0x00, 0xFE, 0xED}}
			return data.AppendBytes(e.sealedPrefix(), e.Tag), nil
		},
	},
	{
		name: "v5 termination token",
		hex:  "0501016101050102aabb",
		decode: func(t *testing.T, b []byte) any {
			e, err := DecodeControlFrame(b)
			if err != nil {
				t.Fatal(err)
			}
			if e.Terminate {
				t.Fatal("token frame decoded with Terminate=true")
			}
			return e
		},
		build: func() ([]byte, error) {
			e := &ControlFrame{From: "a", Wave: 5, Acts: 1, Scheme: auth.SchemeHMAC,
				Sig: []byte{0xAA, 0xBB}}
			return data.AppendBytes(e.signedPrefix(), e.Sig), nil
		},
	},
	{
		name: "v5 terminate frame",
		hex:  "0502016102070002dead",
		decode: func(t *testing.T, b []byte) any {
			e, err := DecodeControlFrame(b)
			if err != nil {
				t.Fatal(err)
			}
			if !e.Terminate {
				t.Fatal("terminate frame decoded with Terminate=false")
			}
			return e
		},
		build: func() ([]byte, error) {
			e := &ControlFrame{From: "a", Terminate: true, Wave: 7, Scheme: auth.SchemeRSA,
				Sig: []byte{0xDE, 0xAD}}
			return data.AppendBytes(e.signedPrefix(), e.Sig), nil
		},
	},
	{
		name: "v4 retract envelope",
		hex:  "040161020108626573745061746800040301610301630403030161030162030163000402dead",
		decode: func(t *testing.T, b []byte) any {
			e, err := DecodeRetractEnvelope(b)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		build: func() ([]byte, error) {
			e := &RetractEnvelope{From: "a", Scheme: auth.SchemeRSA,
				Tuples: []data.Tuple{data.NewTuple("bestPath",
					data.Str("a"), data.Str("c"), data.List(data.Str("a"), data.Str("b"), data.Str("c")), data.Int(2))},
				Sig: []byte{0xDE, 0xAD}}
			return data.AppendBytes(e.signedPrefix(), e.Sig), nil
		},
	},
}

// TestWireGoldenFixtures pins the documented byte layouts both ways:
// re-encoding the struct reproduces the golden bytes, and decoding the
// golden bytes reproduces the struct (checked by decode-of-rebuild
// equality, so every field survives the round trip).
func TestWireGoldenFixtures(t *testing.T) {
	for _, g := range goldenFrames {
		t.Run(g.name, func(t *testing.T) {
			golden, err := hex.DecodeString(g.hex)
			if err != nil {
				t.Fatal(err)
			}
			rebuilt, err := g.build()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rebuilt, golden) {
				t.Errorf("encoder drifted from docs/WIRE.md\n golden: %x\nrebuilt: %x", golden, rebuilt)
			}
			got := g.decode(t, golden)
			want := g.decode(t, rebuilt)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("decode mismatch\n got: %#v\nwant: %#v", got, want)
			}
		})
	}
}

// TestWireGoldenVersionDispatch checks the receiver-side dispatch rule
// WIRE.md documents: the first byte selects the format, the second byte
// selects the v3 frame kind.
func TestWireGoldenVersionDispatch(t *testing.T) {
	for _, g := range goldenFrames {
		b, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatal(err)
		}
		switch g.name {
		case "v1 envelope":
			if b[0] != 1 {
				t.Errorf("%s: version byte %d", g.name, b[0])
			}
		case "v2 batch envelope":
			if b[0] != 2 {
				t.Errorf("%s: version byte %d", g.name, b[0])
			}
		case "v3 handshake frame":
			if b[0] != 3 || b[1] != 1 {
				t.Errorf("%s: header % x", g.name, b[:2])
			}
		case "v3 session data frame":
			if b[0] != 3 || b[1] != 2 {
				t.Errorf("%s: header % x", g.name, b[:2])
			}
		case "v3 session retract frame":
			if b[0] != 3 || b[1] != 3 {
				t.Errorf("%s: header % x", g.name, b[:2])
			}
		case "v4 retract envelope":
			if b[0] != 4 {
				t.Errorf("%s: version byte %d", g.name, b[0])
			}
		case "v5 termination token":
			if b[0] != 5 || b[1] != 1 {
				t.Errorf("%s: header % x", g.name, b[:2])
			}
		case "v5 terminate frame":
			if b[0] != 5 || b[1] != 2 {
				t.Errorf("%s: header % x", g.name, b[:2])
			}
		}
	}
}
