package core

import (
	"testing"

	"provnet/internal/data"
)

func TestParseTuple(t *testing.T) {
	cases := []struct {
		in   string
		want data.Tuple
	}{
		{"reachable(a, c)", data.NewTuple("reachable", data.Str("a"), data.Str("c"))},
		{"link(a,b,3)", data.NewTuple("link", data.Str("a"), data.Str("b"), data.Int(3))},
		{"metric(n1, 2.5)", data.NewTuple("metric", data.Str("n1"), data.Float(2.5))},
		{`label(n1, "hello, world")`, data.NewTuple("label", data.Str("n1"), data.Str("hello, world"))},
		{"path(a, c, [a,b,c], 2)", data.NewTuple("path", data.Str("a"), data.Str("c"), data.Strings("a", "b", "c"), data.Int(2))},
		{"b says reachable(a, c)", data.NewTuple("reachable", data.Str("a"), data.Str("c")).Says("b")},
		{"empty()", data.NewTuple("empty")},
		{"flags(true, false)", data.NewTuple("flags", data.Bool(true), data.Bool(false))},
		{"nested(p, [[a,b],c])", data.NewTuple("nested", data.Str("p"), data.List(data.Strings("a", "b"), data.Str("c")))},
	}
	for _, c := range cases {
		got, err := ParseTuple(c.in)
		if err != nil {
			t.Errorf("ParseTuple(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseTuple(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTupleErrors(t *testing.T) {
	for _, in := range []string{"", "nope", "p(a", "p(a))", `p("unterminated)`, "p([a)"} {
		if _, err := ParseTuple(in); err == nil {
			t.Errorf("ParseTuple(%q) should fail", in)
		}
	}
}

func TestParseTupleRoundTripsWithString(t *testing.T) {
	orig := data.NewTuple("path", data.Str("a"), data.Str("c"), data.Strings("a", "b"), data.Int(7)).Says("x")
	got, err := ParseTuple(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Errorf("round trip: %v != %v", got, orig)
	}
}
