package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"provnet/internal/data"
)

// Driver is the lifecycle execution surface of a Network: where Run
// drives a one-shot batch to its fixpoint, the driver keeps the same
// round scheduler resumable behind an event inbox, so a long-running
// network can absorb runtime mutations (Inject, SetLink, CutLink,
// Retract), re-converge incrementally (retraction cascades plus normal
// re-propagation instead of a restart), and stream table updates to
// subscribers while it runs.
//
// Two usage modes share one implementation:
//
//   - Synchronous: Step and AwaitQuiescence advance the network on the
//     caller's goroutine. Run(maxRounds) is exactly this mode, so every
//     batch guarantee (bit-identical tables, rounds, and transport stats
//     across the scheduler and transport knobs) carries over.
//   - Live: Start launches a pump goroutine that waits on the inbox and
//     steps the network whenever mutations arrive, until each burst
//     re-converges. AwaitQuiescence then blocks until the pump drains.
//
// All blocking entry points take a context and honor cancellation and
// deadlines mid-round (between node tasks of a phase).
type Driver struct {
	n *Network

	// runMu serializes round execution and engine mutations: the pump (or
	// the synchronous caller) holds it for every step.
	runMu sync.Mutex

	// mu guards the inbox and lifecycle state below; cond broadcasts
	// inbox arrivals, pump quiescence, errors, and shutdown.
	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []driverEvent
	started bool
	closed  bool
	// dirty is true while work may remain: events are queued or the pump
	// has not yet observed a no-progress round since the last arrival.
	dirty bool
	// err is the pump's sticky failure; once set the driver refuses
	// further work.
	err      error
	pumpDone chan struct{}

	// Epoch accounting: AwaitQuiescence reports rounds and wall-clock
	// time since the previous quiescence point (or Start/run entry), the
	// same window a batch Run reports.
	epochStart  time.Time
	epochRounds int

	// Subscriptions. nsubs lets the engines' update observers skip the
	// registry entirely when nobody listens (the common batch case).
	subMu sync.RWMutex
	subs  map[*Subscription]struct{}
	nsubs atomic.Int32

	// view is the latest published copy-on-write table snapshot; readers
	// (the HTTP query API) load it lock-free. viewSeq/viewGen track the
	// last published snapshot's sequence and the mutation generation it
	// captured (guarded by runMu) so content-identical republishes keep
	// their Seq.
	view    atomic.Pointer[ReadView]
	viewSeq uint64
	viewGen uint64
}

// driverEvent is one queued runtime mutation.
type driverEvent struct {
	kind    eventKind
	node    string
	tuples  []data.Tuple
	from    string
	to      string
	cost    int64
	hasCost bool
}

type eventKind uint8

const (
	evInject eventKind = iota
	evRetract
	evSetLink
	evCutLink
	// evResupply replays every hosted node's export log (soft-state
	// re-announcement after a peer process restart; Config.Resupply).
	evResupply
)

// Driver returns the network's lifecycle driver, creating it on first
// use. Run and the driver share one instance, so batch and live usage
// interleave on the same state.
func (n *Network) Driver() *Driver {
	n.drvOnce.Do(func() {
		d := &Driver{n: n, subs: make(map[*Subscription]struct{}), epochStart: time.Now()} //provlint:allow detpath report wall-clock epoch, never feeds evaluation
		d.cond = sync.NewCond(&d.mu)
		d.view.Store(&ReadView{nodes: map[string]*NodeView{}})
		n.drv = d
	})
	return n.drv
}

// Lifecycle errors.
var (
	// ErrClosed is returned by driver operations after Close.
	ErrClosed = errors.New("core: driver closed")
	// ErrLive is returned by synchronous stepping (Step, Run) while the
	// background pump owns the round loop.
	ErrLive = errors.New("core: driver is live; use Inject/AwaitQuiescence")
)

// Start launches the driver's pump: a background loop that applies queued
// mutations and steps the network until each burst of work re-converges.
// The initial base facts count as the first burst, so a started driver
// converges on its own; AwaitQuiescence observes the result. The pump
// stops when ctx is cancelled or Close is called.
func (d *Driver) Start(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.started {
		return errors.New("core: driver already started")
	}
	d.started = true
	d.dirty = true
	d.epochStart = time.Now() //provlint:allow detpath report wall-clock epoch, never feeds evaluation
	d.epochRounds = 0
	d.pumpDone = make(chan struct{})
	// A socket transport delivers datagrams between rounds; its arrival
	// callback marks the driver dirty so the pump re-enters the round
	// loop instead of sleeping on an apparently quiescent network. The
	// in-memory fabric only carries traffic the pump itself shipped, so
	// it never needs the wake-up.
	if tn, ok := d.n.net.(Notifier); ok {
		tn.Notify(func() {
			d.mu.Lock()
			if !d.closed && d.err == nil {
				d.dirty = true
				d.cond.Broadcast()
			}
			d.mu.Unlock()
		})
	}
	// Soft-state resupply: when the transport detects a peer process
	// restarting (a fresh hello incarnation), replay our export log so
	// the peer re-learns what it lost with its tables.
	if d.n.cfg.Resupply {
		if rn, ok := d.n.net.(RestartNotifier); ok {
			rn.SetRestartHandler(func(string) { _ = d.Resupply() })
		}
	}
	// Wake the cond when the context dies, so waiters and the pump notice.
	stop := context.AfterFunc(ctx, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	go func() {
		defer stop()
		d.pump(ctx)
	}()
	return nil
}

// pump is the live-mode round loop.
func (d *Driver) pump(ctx context.Context) {
	defer close(d.pumpDone)
	// If the pump dies with its context, the driver must not keep
	// accepting work it will never process, and waiters must not read
	// the un-converged state as quiescence: record the context's error
	// as the sticky failure (unless Close already ended the session).
	defer func() {
		d.mu.Lock()
		if d.err == nil && !d.closed && ctx.Err() != nil {
			d.err = ctx.Err()
		}
		d.dirty = false
		d.cond.Broadcast()
		d.mu.Unlock()
	}()
	for {
		d.mu.Lock()
		for !d.dirty && !d.closed && ctx.Err() == nil {
			d.cond.Wait()
		}
		if d.closed || ctx.Err() != nil {
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()

		// Work the burst down to quiescence: apply queued events with
		// each round until a round makes no progress and the inbox is
		// empty at the same instant.
		for {
			d.mu.Lock()
			stop := d.closed
			d.mu.Unlock()
			if stop || ctx.Err() != nil {
				return
			}
			progress, err := d.step(ctx)
			if err == nil && !progress {
				// The burst looks drained: publish the read snapshot and
				// seal/flush the durable store before declaring
				// quiescence, so observers of a quiet driver see the
				// converged view and a durable log. Events that arrive
				// during the flush are caught by the inbox/pending check
				// below.
				err = d.quiesce()
			}
			d.mu.Lock()
			if err != nil {
				isCtx := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
				if !isCtx {
					d.err = err // sticky: the driver refuses further work
				}
				d.dirty = false
				d.cond.Broadcast()
				d.mu.Unlock()
				if !isCtx {
					return
				}
				break
			}
			// Quiescent only if no round progress, no queued events, AND
			// nothing pending on the transport: a socket frame that
			// arrived after this round's drain already fired its notify,
			// which clearing dirty here would otherwise swallow (the
			// callback fires once per enqueue). On the in-memory fabric
			// the pending check is vacuous — a no-progress round means
			// the fabric is empty.
			if !progress && len(d.inbox) == 0 && d.n.net.PendingCount() == 0 {
				d.dirty = false
				d.cond.Broadcast()
				d.mu.Unlock()
				break
			}
			d.mu.Unlock()
		}
	}
}

// step applies queued mutations, drains any retraction wave to global
// quiescence, and executes one scheduler round, reporting whether
// anything happened (a mutation applied, a withdrawal shipped, an export
// shipped, or a message delivered).
func (d *Driver) step(ctx context.Context) (bool, error) {
	d.runMu.Lock()
	defer d.runMu.Unlock()
	mutated, err := d.applyEvents(d.takeEvents())
	if err != nil {
		return false, err
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if d.n.retractionInFlight() {
		waveRounds, err := d.n.drainRetractions(ctx)
		d.addRounds(waveRounds)
		if err != nil {
			return false, err
		}
		mutated = true
	}
	progress, err := d.n.runRound(ctx)
	if err != nil {
		return false, err
	}
	d.addRounds(1)
	return mutated || progress, nil
}

func (d *Driver) addRounds(r int) {
	d.mu.Lock()
	d.epochRounds += r
	d.mu.Unlock()
}

// Step advances the network one round synchronously: queued mutations are
// applied, every node evaluates and ships, every node imports. It returns
// whether the round made progress. Unavailable while the pump runs.
func (d *Driver) Step(ctx context.Context) (bool, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, ErrClosed
	}
	if d.err != nil {
		err := d.err
		d.mu.Unlock()
		return false, err
	}
	if d.started {
		d.mu.Unlock()
		return false, ErrLive
	}
	d.mu.Unlock()
	return d.step(ctx)
}

// run is the batch loop behind Network.Run: step to quiescence, bounded
// by maxRounds (0 = 1e6). On a capped run it reports exactly maxRounds
// rounds with ErrNoFixpoint.
func (d *Driver) run(ctx context.Context, maxRounds int) (*Report, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if d.started {
		d.mu.Unlock()
		return nil, ErrLive
	}
	d.epochStart = time.Now() //provlint:allow detpath report wall-clock epoch, never feeds evaluation
	d.epochRounds = 0
	d.mu.Unlock()
	if maxRounds <= 0 {
		maxRounds = 1000000
	}
	for r := 1; ; r++ {
		if r > maxRounds {
			return d.epochReport(), ErrNoFixpoint
		}
		progress, err := d.step(ctx)
		if err != nil {
			return nil, err
		}
		if !progress {
			break
		}
	}
	return d.epochReport(), nil
}

// epochReport snapshots the report for the current epoch and opens the
// next one. Every quiescence point funnels through here (or through the
// pump's quiesce), so it also publishes the read snapshot and seals the
// durable store; store errors surface through Network.StoreErr.
func (d *Driver) epochReport() *Report {
	d.mu.Lock()
	start, rounds := d.epochStart, d.epochRounds
	d.epochStart = time.Now() //provlint:allow detpath report wall-clock epoch, never feeds evaluation
	d.epochRounds = 0
	d.mu.Unlock()
	d.runMu.Lock()
	defer d.runMu.Unlock()
	qstart := time.Now() //provlint:allow detpath metrics quiesce timing, outside the deterministic state
	d.publishViewLocked()
	_ = d.n.sealStore()
	d.n.nm.observeQuiesce(d.n, qstart)
	return d.n.report(start, rounds)
}

// ReadView returns the latest published table snapshot: an immutable
// copy-on-write view readers use without touching the evaluation lock.
// Before the first convergence it is the empty Seq-0 view.
func (d *Driver) ReadView() *ReadView { return d.view.Load() }

// quiesce publishes the read snapshot and seals/flushes the store at a
// pump quiescence point.
func (d *Driver) quiesce() error {
	d.runMu.Lock()
	defer d.runMu.Unlock()
	start := time.Now() //provlint:allow detpath metrics quiesce timing, outside the deterministic state
	d.publishViewLocked()
	err := d.n.sealStore()
	d.n.nm.observeQuiesce(d.n, start)
	return err
}

// publishViewLocked rebuilds and publishes the read view if table content
// changed since the last publish (requires runMu). Content-identical
// republishes keep the existing view and its Seq, so a (Seq, body) pair
// identifies one snapshot.
func (d *Driver) publishViewLocked() {
	gen := d.n.mutGen.Load()
	if cur := d.view.Load(); cur.Seq != 0 && gen == d.viewGen {
		return
	}
	d.viewSeq++
	d.viewGen = gen
	d.view.Store(d.n.buildView(d.viewSeq, gen))
}

// AwaitQuiescence blocks until the network has re-converged: no queued
// mutations, no in-flight messages, and a round that made no progress. It
// returns the report for the epoch that just converged (rounds and
// wall-clock time since the previous quiescence point; transport and
// crypto counters are cumulative). Synchronous drivers step the loop on
// the caller's goroutine; live drivers wait for the pump.
func (d *Driver) AwaitQuiescence(ctx context.Context) (*Report, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if !d.started {
		d.mu.Unlock()
		for {
			progress, err := d.step(ctx)
			if err != nil {
				return nil, err
			}
			if !progress {
				d.mu.Lock()
				quiet := len(d.inbox) == 0
				d.mu.Unlock()
				if quiet && d.n.net.PendingCount() == 0 {
					return d.epochReport(), nil
				}
			}
		}
	}
	// Live mode: wait for the pump to drain. The context wake-up is
	// installed so cancellation interrupts the wait.
	stop := context.AfterFunc(ctx, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	defer stop()
	for d.dirty && d.err == nil && !d.closed && ctx.Err() == nil {
		d.cond.Wait()
	}
	err := d.err
	closed := d.closed
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if closed {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.epochReport(), nil
}

// Close stops the pump (if running), closes every subscription channel,
// and marks the driver unusable. It is idempotent and returns the pump's
// sticky error, if any.
func (d *Driver) Close() error {
	d.mu.Lock()
	if d.closed {
		err := d.err
		d.mu.Unlock()
		return err
	}
	d.closed = true
	done := d.pumpDone
	d.cond.Broadcast()
	d.mu.Unlock()
	if done != nil {
		<-done
	}
	d.subMu.Lock()
	for sub := range d.subs { //provlint:allow mapiter independent per-subscription channel closes; order unobservable
		close(sub.ch)
	}
	d.subs = make(map[*Subscription]struct{})
	d.nsubs.Store(0)
	d.subMu.Unlock()
	d.mu.Lock()
	err := d.err
	d.mu.Unlock()
	return err
}

// enqueue queues a mutation and wakes the pump.
func (d *Driver) enqueue(ev driverEvent) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.err != nil {
		return d.err
	}
	d.inbox = append(d.inbox, ev)
	d.dirty = true
	d.cond.Broadcast()
	return nil
}

// takeEvents drains the inbox (called under runMu).
func (d *Driver) takeEvents() []driverEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	evs := d.inbox
	d.inbox = nil
	return evs
}

// Inject inserts base tuples at a node at the current logical time. On a
// live driver the pump picks them up immediately; a synchronous driver
// applies them on the next Step/Run/AwaitQuiescence.
func (d *Driver) Inject(node string, tuples ...data.Tuple) error {
	if _, ok := d.n.nodes[node]; !ok {
		return fmt.Errorf("core: unknown node %q", node)
	}
	if len(tuples) == 0 {
		return nil
	}
	return d.enqueue(driverEvent{kind: evInject, node: node, tuples: tuples})
}

// Retract withdraws base tuples from a node, cascading through everything
// derived from them across the network (the engine's DRed retraction plus
// wire-level withdrawal frames).
func (d *Driver) Retract(node string, tuples ...data.Tuple) error {
	if _, ok := d.n.nodes[node]; !ok {
		return fmt.Errorf("core: unknown node %q", node)
	}
	if len(tuples) == 0 {
		return nil
	}
	return d.enqueue(driverEvent{kind: evRetract, node: node, tuples: tuples})
}

// SetLink installs (or re-costs) the directed link from→to. A changed
// cost retracts the old link fact first — withdrawing paths priced on it,
// cost increases included — then inserts the new one, and the network
// re-converges incrementally.
func (d *Driver) SetLink(from, to string, cost int64) error {
	if _, ok := d.n.nodes[from]; !ok {
		return fmt.Errorf("core: unknown node %q", from)
	}
	return d.enqueue(driverEvent{kind: evSetLink, from: from, to: to, cost: cost, hasCost: true})
}

// CutLink removes the directed link from→to: the link fact is retracted
// and every best path routed over it is withdrawn on every node as the
// retraction cascade propagates.
func (d *Driver) CutLink(from, to string) error {
	if _, ok := d.n.nodes[from]; !ok {
		return fmt.Errorf("core: unknown node %q", from)
	}
	return d.enqueue(driverEvent{kind: evCutLink, from: from, to: to})
}

// Resupply queues a soft-state re-announcement: every hosted node
// replays its export log (Config.Resupply) between rounds. The driver
// enqueues it automatically when the transport reports a peer restart.
func (d *Driver) Resupply() error {
	return d.enqueue(driverEvent{kind: evResupply})
}

// Nudge marks a live pump dirty so it runs a drain round even though no
// local mutation arrived. The termination detector uses it to get
// queued control frames imported: the in-memory fabric has no Notifier,
// so nothing else would announce them to a sleeping pump. A synchronous,
// closed, or failed driver ignores the nudge.
func (d *Driver) Nudge() {
	d.mu.Lock()
	if d.started && !d.closed && d.err == nil {
		d.dirty = true
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// Quiet reports whether the live driver is at a quiescence point: the
// pump has observed a no-progress round, no events are queued, and the
// transport holds no undrained datagrams. It is the local-work half of
// the termination detector's token-passing condition (the other half is
// the transport's in-flight gauge). A synchronous or failed driver is
// never quiet.
func (d *Driver) Quiet() bool {
	d.mu.Lock()
	quiet := d.started && !d.dirty && !d.closed && d.err == nil && len(d.inbox) == 0
	d.mu.Unlock()
	return quiet && d.n.net.PendingCount() == 0
}

// applyEvents applies queued mutations to the engines (called under
// runMu, between rounds). It reports whether anything changed.
func (d *Driver) applyEvents(evs []driverEvent) (bool, error) {
	mutated := false
	for _, ev := range evs {
		if ev.kind == evResupply {
			if err := d.n.resupplyAll(); err != nil {
				return mutated, err
			}
			mutated = true
			continue
		}
		nd, ok := d.n.nodes[eventNode(ev)]
		if !ok {
			return mutated, fmt.Errorf("core: unknown node %q", eventNode(ev))
		}
		d.n.markActive(eventNode(ev))
		switch ev.kind {
		case evInject:
			for _, t := range ev.tuples {
				nd.Engine.InsertFact(t)
			}
			mutated = true
		case evRetract:
			// Over-delete now; repair runs when step drains the wave.
			ws := nd.Engine.BeginRetractFacts(ev.tuples...)
			nd.pendingRetract = append(nd.pendingRetract, ws...)
			mutated = true
		case evSetLink, evCutLink:
			changed, err := d.applyLink(nd, ev)
			if err != nil {
				return mutated, err
			}
			mutated = mutated || changed
		}
	}
	return mutated, nil
}

func eventNode(ev driverEvent) string {
	if ev.kind == evSetLink || ev.kind == evCutLink {
		return ev.from
	}
	return ev.node
}

// applyLink performs link churn at the link's owning node: existing link
// facts for the (from,to) pair are retracted (cascading), and SetLink
// inserts the replacement fact.
func (d *Driver) applyLink(nd *Node, ev driverEvent) (bool, error) {
	var fresh data.Tuple
	if ev.kind == evSetLink {
		if d.n.cfg.LinkNoCost {
			fresh = data.NewTuple("link", data.Str(ev.from), data.Str(ev.to))
		} else {
			fresh = data.NewTuple("link", data.Str(ev.from), data.Str(ev.to), data.Int(ev.cost))
		}
	}
	var stale []data.Tuple
	keep := false
	for _, t := range nd.Engine.Tuples("link") {
		if len(t.Args) < 2 || t.Args[0].Str != ev.from || t.Args[1].Str != ev.to {
			continue
		}
		if ev.kind == evSetLink && t.WithoutAsserter().Equal(fresh) {
			keep = true // identical link already installed: no-op
			continue
		}
		stale = append(stale, t)
	}
	changed := false
	if len(stale) > 0 {
		// Over-delete now; repair runs when step drains the wave.
		ws := nd.Engine.BeginRetractFacts(stale...)
		nd.pendingRetract = append(nd.pendingRetract, ws...)
		changed = true
	}
	if ev.kind == evSetLink && !keep {
		nd.Engine.InsertFact(fresh)
		changed = true
	}
	return changed, nil
}

// --- subscriptions ---

// Update is one table change streamed to a subscription.
type Update struct {
	// Node is where the change happened.
	Node string
	// Tuple is the changed fact.
	Tuple data.Tuple
	// Added is true when the tuple entered the table, false when it was
	// withdrawn (retraction, keyed replacement, or expiry).
	Added bool
}

// Subscription streams table updates for one (node, predicate) filter.
type Subscription struct {
	d       *Driver
	node    string
	pred    string
	ch      chan Update
	dropped atomic.Int64
	once    sync.Once
}

// Updates is the subscription's channel. It closes when the subscription
// or the driver closes.
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Dropped reports updates discarded because the channel buffer was full:
// the engines never block on slow consumers.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close unsubscribes and closes the channel.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.d.subMu.Lock()
		if _, ok := s.d.subs[s]; ok {
			delete(s.d.subs, s)
			s.d.nsubs.Add(-1)
			close(s.ch)
		}
		s.d.subMu.Unlock()
	})
}

// subscriptionBuffer is the per-subscription channel capacity. Full
// buffers drop (counted): a slow consumer must never stall the network.
const subscriptionBuffer = 256

// Subscribe streams table updates for pred at node ("" matches every
// predicate; node "" matches every node). Updates for one (node, pred)
// arrive in table order; a full buffer drops updates rather than blocking
// the scheduler (see Subscription.Dropped).
func (d *Driver) Subscribe(node, pred string) (*Subscription, error) {
	if node != "" {
		if _, ok := d.n.nodes[node]; !ok {
			return nil, fmt.Errorf("core: unknown node %q", node)
		}
	}
	sub := &Subscription{d: d, node: node, pred: pred, ch: make(chan Update, subscriptionBuffer)}
	// The closed check and the registration share the subMu critical
	// section: Close closes every registered channel under subMu, so a
	// Subscribe racing Close either loses (ErrClosed) or registers in
	// time for Close to close its channel — never a leaked-open channel.
	d.subMu.Lock()
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		d.subMu.Unlock()
		return nil, ErrClosed
	}
	d.subs[sub] = struct{}{}
	d.nsubs.Add(1)
	d.subMu.Unlock()
	return sub, nil
}

// Subscribers reports the number of live subscriptions — the leak
// check for transports that tie a Subscription to a connection (the
// query API's SSE endpoint).
func (d *Driver) Subscribers() int { return int(d.nsubs.Load()) }

// publish fans a table change out to matching subscriptions. Called from
// engine update observers on scheduler goroutines; it never blocks.
func (d *Driver) publish(node string, t data.Tuple, added bool) {
	if d.nsubs.Load() == 0 {
		return
	}
	u := Update{Node: node, Tuple: t, Added: added}
	d.subMu.RLock()
	for sub := range d.subs { //provlint:allow mapiter independent per-subscription sends; order unobservable
		if sub.node != "" && sub.node != node {
			continue
		}
		if sub.pred != "" && sub.pred != t.Pred {
			continue
		}
		select {
		case sub.ch <- u:
		default:
			sub.dropped.Add(1)
		}
	}
	d.subMu.RUnlock()
}
