package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
)

// wireBufs pools the prefix scratch buffers used by envelope encoding
// and verification: every Encode/Verify serializes the authenticated
// prefix, seals or checks it, and throws it away. Sealers hash the
// prefix without retaining it, so the buffer can be recycled; only the
// final datagram is freshly sized, because transports retain it.
var wireBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

func getWireBuf() *[]byte { return wireBufs.Get().(*[]byte) }

// putWireBuf returns a (possibly regrown) prefix to the pool. Oversized
// one-off batches are dropped so the pool cannot hoard them.
func putWireBuf(bp *[]byte, grown []byte) {
	if cap(grown) > 1<<20 {
		return
	}
	*bp = grown[:0]
	wireBufs.Put(bp)
}

// sealDatagram is the shared tail of every Encode: seal the prefix,
// materialize the exact-size datagram, and recycle the scratch.
func sealDatagram(sealer auth.Sealer, from, to string, bp *[]byte, prefix []byte, what string) ([]byte, []byte, error) {
	sig, err := sealer.Seal(from, to, prefix)
	if err != nil {
		putWireBuf(bp, prefix)
		return nil, nil, fmt.Errorf("core: sealing %s from %s: %w", what, from, err)
	}
	out := make([]byte, 0, len(prefix)+len(sig)+binary.MaxVarintLen64)
	out = append(out, prefix...)
	out = data.AppendBytes(out, sig)
	putWireBuf(bp, prefix)
	return out, sig, nil
}

// This file defines the wire formats, all built around auth.Sealer: every
// datagram is a sealed payload whose tag is produced by the configured
// Sealer on export and checked on import. Three versions coexist:
//
//	v1  one tuple per datagram, per-envelope tag (the seed format)
//	v2  one batch per (src,dst) pair per round, one tag per batch
//	v3  session transport: handshake frames carrying RSA-wrapped session
//	    keys, and session-MAC data envelopes (same batch layout as v2,
//	    sealed with the per-link session key instead of a signature)
//
// Receivers dispatch on the version byte, so a v3 deployment still
// decodes v1/v2 datagrams from older senders.

// Envelope is the v1 on-the-wire unit: one derived tuple shipped to
// another node, with its provenance payload and the sender's seal. Its
// encoded size is what the bandwidth metrics charge, so the envelope
// carries exactly what the paper's modified P2 shipped: the tuple, the
// (optional) condensed or full provenance, and the (optional) tag.
type Envelope struct {
	// From is the sending node / principal.
	From string
	// Tuple is the shipped fact.
	Tuple data.Tuple
	// ProvMode tags the provenance payload encoding.
	ProvMode provenance.Mode
	// Prov is the mode-specific provenance payload (may be empty).
	Prov []byte
	// Scheme identifies the says implementation used.
	Scheme auth.Scheme
	// Sig authenticates everything before it, sealed by From.
	Sig []byte
}

// Wire format tags (first byte of every datagram). Version 1 is the
// seed's one-tuple-per-datagram envelope; version 2 packs every tuple a
// node exports to one destination in a round under a single seal; version
// 3 is the session transport (handshake and session-MAC frames,
// distinguished by a kind byte); version 4 is the retraction envelope of
// the live-network lifecycle — a signed batch of tuples the sender
// withdraws after link churn.
const (
	wireVersion        = 1
	wireVersionBatch   = 2
	wireVersionSession = 3
	wireVersionRetract = 4
	// wireVersionControl carries the distributed-termination protocol:
	// clean-wave tokens circulating the node ring and the final
	// terminate broadcast. Control frames never carry tuples and never
	// mark activity — they are the quiet channel the detector listens on.
	wireVersionControl = 5
)

// v3 frame kinds (second byte of a v3 datagram).
const (
	frameHandshake byte = 1
	frameData      byte = 2
	// frameRetract is a session-sealed withdrawal batch: the v3 carrier
	// of the retractions that v4 envelopes ship on the legacy transport.
	frameRetract byte = 3
)

// v5 control frame kinds (second byte of a v5 datagram).
const (
	// ctrlToken is a circulating termination-wave token.
	ctrlToken byte = 1
	// ctrlTerminate is the root's fixpoint declaration broadcast.
	ctrlTerminate byte = 2
)

// Errors from envelope decoding and verification.
var (
	ErrBadEnvelope = errors.New("core: bad envelope")
)

// signedPrefix encodes the authenticated portion of the envelope.
func (e *Envelope) signedPrefix() []byte { return e.appendSignedPrefix(nil) }

func (e *Envelope) appendSignedPrefix(b []byte) []byte {
	b = append(b, wireVersion)
	b = data.AppendString(b, e.From)
	b = data.AppendTuple(b, e.Tuple)
	b = append(b, byte(e.ProvMode))
	b = data.AppendBytes(b, e.Prov)
	b = append(b, byte(e.Scheme))
	return b
}

// Encode serializes the envelope, sealing it for the from→to link when
// the scheme requires it.
func (e *Envelope) Encode(sealer auth.Sealer, to string) ([]byte, error) {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	out, sig, err := sealDatagram(sealer, e.From, to, bp, prefix, "envelope")
	if err != nil {
		return nil, err
	}
	e.Sig = sig
	return out, nil
}

// DecodeEnvelope parses an envelope without verifying it.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	if len(b) < 2 || b[0] != wireVersion {
		return nil, fmt.Errorf("%w: version", ErrBadEnvelope)
	}
	n := 1
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	tu, m, err := data.DecodeTuple(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: tuple: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated", ErrBadEnvelope)
	}
	mode := provenance.Mode(b[n])
	n++
	prov, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: provenance: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated scheme", ErrBadEnvelope)
	}
	scheme := auth.Scheme(b[n])
	n++
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	env := &Envelope{From: from, Tuple: tu, ProvMode: mode, Scheme: scheme}
	if len(prov) > 0 {
		env.Prov = append([]byte{}, prov...)
	}
	if len(sig) > 0 {
		env.Sig = append([]byte{}, sig...)
	}
	return env, nil
}

// Verify checks the envelope seal for the from→to link.
func (e *Envelope) Verify(sealer auth.Sealer, to string) error {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	err := sealer.Open(e.From, to, prefix, e.Sig)
	putWireBuf(bp, prefix)
	return err
}

// --- batched envelopes ---

// BatchItem is one tuple inside a batch or session envelope, with its
// mode-specific provenance payload.
type BatchItem struct {
	Tuple data.Tuple
	Prov  []byte
}

// BatchEnvelope packs every tuple a node exports to one destination in a
// round under one seal. Compared to shipping the items as individual
// envelopes it saves one signature, one From header, and one per-message
// framing charge (netsim.HeaderOverhead) per item beyond the first — the
// batching half of the Figure 4 bandwidth story.
type BatchEnvelope struct {
	// From is the sending node / principal.
	From string
	// ProvMode tags the provenance payload encoding of every item.
	ProvMode provenance.Mode
	// Scheme identifies the says implementation used.
	Scheme auth.Scheme
	// Items are the shipped tuples in export order.
	Items []BatchItem
	// Sig authenticates everything before it, sealed by From.
	Sig []byte
}

// signedPrefix encodes the authenticated portion of the batch envelope.
func (e *BatchEnvelope) signedPrefix() []byte { return e.appendSignedPrefix(nil) }

func (e *BatchEnvelope) appendSignedPrefix(b []byte) []byte {
	b = append(b, wireVersionBatch)
	b = data.AppendString(b, e.From)
	b = append(b, byte(e.ProvMode))
	b = append(b, byte(e.Scheme))
	b = binary.AppendUvarint(b, uint64(len(e.Items)))
	for _, it := range e.Items {
		b = data.AppendTuple(b, it.Tuple)
		b = data.AppendBytes(b, it.Prov)
	}
	return b
}

// Encode serializes the batch, sealing it once for the from→to link when
// the scheme requires it.
func (e *BatchEnvelope) Encode(sealer auth.Sealer, to string) ([]byte, error) {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	out, sig, err := sealDatagram(sealer, e.From, to, bp, prefix, "batch")
	if err != nil {
		return nil, err
	}
	e.Sig = sig
	return out, nil
}

// decodeItems parses the shared item list layout of batch and session
// envelopes, returning the items and the bytes consumed.
func decodeItems(b []byte) ([]BatchItem, int, error) {
	n := 0
	count, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, 0, fmt.Errorf("%w: item count", ErrBadEnvelope)
	}
	n += m
	if count > uint64(len(b)) { // each item takes at least one byte
		return nil, 0, fmt.Errorf("%w: item count %d exceeds payload", ErrBadEnvelope, count)
	}
	items := make([]BatchItem, 0, count)
	for i := uint64(0); i < count; i++ {
		tu, m, err := data.DecodeTuple(b[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("%w: item %d tuple: %v", ErrBadEnvelope, i, err)
		}
		n += m
		prov, m, err := data.DecodeBytes(b[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("%w: item %d provenance: %v", ErrBadEnvelope, i, err)
		}
		n += m
		it := BatchItem{Tuple: tu}
		if len(prov) > 0 {
			it.Prov = append([]byte{}, prov...)
		}
		items = append(items, it)
	}
	return items, n, nil
}

// DecodeBatchEnvelope parses a batch envelope without verifying it.
func DecodeBatchEnvelope(b []byte) (*BatchEnvelope, error) {
	if len(b) < 2 || b[0] != wireVersionBatch {
		return nil, fmt.Errorf("%w: batch version", ErrBadEnvelope)
	}
	n := 1
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	if n+2 > len(b) {
		return nil, fmt.Errorf("%w: truncated header", ErrBadEnvelope)
	}
	mode := provenance.Mode(b[n])
	scheme := auth.Scheme(b[n+1])
	n += 2
	items, m, err := decodeItems(b[n:])
	if err != nil {
		return nil, err
	}
	n += m
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	env := &BatchEnvelope{From: from, ProvMode: mode, Scheme: scheme, Items: items}
	if len(sig) > 0 {
		env.Sig = append([]byte{}, sig...)
	}
	return env, nil
}

// Verify checks the batch seal for the from→to link. One check covers
// every item.
func (e *BatchEnvelope) Verify(sealer auth.Sealer, to string) error {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	err := sealer.Open(e.From, to, prefix, e.Sig)
	putWireBuf(bp, prefix)
	return err
}

// --- retraction envelopes (wire v4) ---

// RetractEnvelope ships a batch of withdrawn tuples from one node to one
// destination: link churn cut their derivations, and the destination must
// remove the sender's support for them. It is sealed exactly like a v2
// batch (one signature per envelope under the legacy schemes); retraction
// traffic only exists after churn, so the batch formats stay bit-for-bit
// unchanged on converge-once workloads.
type RetractEnvelope struct {
	// From is the sending node / principal.
	From string
	// Scheme identifies the says implementation used.
	Scheme auth.Scheme
	// Tuples are the withdrawn facts in cascade order.
	Tuples []data.Tuple
	// Sig authenticates everything before it, sealed by From.
	Sig []byte
}

// signedPrefix encodes the authenticated portion of the retract envelope.
func (e *RetractEnvelope) signedPrefix() []byte { return e.appendSignedPrefix(nil) }

func (e *RetractEnvelope) appendSignedPrefix(b []byte) []byte {
	b = append(b, wireVersionRetract)
	b = data.AppendString(b, e.From)
	b = append(b, byte(e.Scheme))
	b = binary.AppendUvarint(b, uint64(len(e.Tuples)))
	for _, t := range e.Tuples {
		b = data.AppendTuple(b, t)
	}
	return b
}

// Encode serializes the envelope, sealing it for the from→to link when
// the scheme requires it.
func (e *RetractEnvelope) Encode(sealer auth.Sealer, to string) ([]byte, error) {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	out, sig, err := sealDatagram(sealer, e.From, to, bp, prefix, "retract envelope")
	if err != nil {
		return nil, err
	}
	e.Sig = sig
	return out, nil
}

// DecodeRetractEnvelope parses a retract envelope without verifying it.
func DecodeRetractEnvelope(b []byte) (*RetractEnvelope, error) {
	if len(b) < 2 || b[0] != wireVersionRetract {
		return nil, fmt.Errorf("%w: retract version", ErrBadEnvelope)
	}
	n := 1
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated header", ErrBadEnvelope)
	}
	scheme := auth.Scheme(b[n])
	n++
	count, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return nil, fmt.Errorf("%w: tuple count", ErrBadEnvelope)
	}
	n += m
	if count > uint64(len(b)) { // each tuple takes at least one byte
		return nil, fmt.Errorf("%w: tuple count %d exceeds payload", ErrBadEnvelope, count)
	}
	tuples := make([]data.Tuple, 0, count)
	for i := uint64(0); i < count; i++ {
		tu, m, err := data.DecodeTuple(b[n:])
		if err != nil {
			return nil, fmt.Errorf("%w: tuple %d: %v", ErrBadEnvelope, i, err)
		}
		n += m
		tuples = append(tuples, tu)
	}
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	env := &RetractEnvelope{From: from, Scheme: scheme, Tuples: tuples}
	if len(sig) > 0 {
		env.Sig = append([]byte{}, sig...)
	}
	return env, nil
}

// Verify checks the retract envelope seal for the from→to link.
func (e *RetractEnvelope) Verify(sealer auth.Sealer, to string) error {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	err := sealer.Open(e.From, to, prefix, e.Sig)
	putWireBuf(bp, prefix)
	return err
}

// --- termination control frames (wire v5) ---

// ControlFrame is the v5 datagram of the distributed termination
// protocol. A token (Terminate false) circulates the sorted node ring
// once per wave: each node holds it until locally quiescent, adds its
// cumulative activity counter to Acts, and forwards it. When two
// consecutive completed waves return the same activity sum to the ring
// root, no node did any work between its two stamps and no frame was in
// flight — the root broadcasts a terminate frame (Terminate true) to
// every other node. The counters are cumulative (never reset), so a
// lost or duplicated token costs a wave restart, never a false
// fixpoint. Control frames are sealed with the legacy (signature)
// sealer regardless of the data-path transport: they predate session
// establishment on restarted links and must stay verifiable across
// incarnations.
type ControlFrame struct {
	// From is the node forwarding (token) or declaring (terminate).
	From string
	// Terminate distinguishes the fixpoint broadcast from a token.
	Terminate bool
	// Wave numbers the detection attempt; stale waves are discarded.
	Wave uint64
	// Acts is the running sum of cumulative per-node activity counters
	// stamped by the nodes the token has visited this wave. Zero on
	// terminate frames.
	Acts uint64
	// Scheme identifies the says implementation used.
	Scheme auth.Scheme
	// Sig authenticates everything before it, sealed by From.
	Sig []byte
}

// signedPrefix encodes the authenticated portion of the control frame.
func (e *ControlFrame) signedPrefix() []byte { return e.appendSignedPrefix(nil) }

func (e *ControlFrame) appendSignedPrefix(b []byte) []byte {
	kind := ctrlToken
	if e.Terminate {
		kind = ctrlTerminate
	}
	b = append(b, wireVersionControl, kind)
	b = data.AppendString(b, e.From)
	b = append(b, byte(e.Scheme))
	b = binary.AppendUvarint(b, e.Wave)
	b = binary.AppendUvarint(b, e.Acts)
	return b
}

// Encode serializes the control frame, sealing it for the from→to link
// when the scheme requires it.
func (e *ControlFrame) Encode(sealer auth.Sealer, to string) ([]byte, error) {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	out, sig, err := sealDatagram(sealer, e.From, to, bp, prefix, "control frame")
	if err != nil {
		return nil, err
	}
	e.Sig = sig
	return out, nil
}

// DecodeControlFrame parses a control frame without verifying it.
func DecodeControlFrame(b []byte) (*ControlFrame, error) {
	if len(b) < 2 || b[0] != wireVersionControl || (b[1] != ctrlToken && b[1] != ctrlTerminate) {
		return nil, fmt.Errorf("%w: control frame header", ErrBadEnvelope)
	}
	terminate := b[1] == ctrlTerminate
	n := 2
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated scheme", ErrBadEnvelope)
	}
	scheme := auth.Scheme(b[n])
	n++
	wave, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return nil, fmt.Errorf("%w: wave", ErrBadEnvelope)
	}
	n += m
	acts, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return nil, fmt.Errorf("%w: acts", ErrBadEnvelope)
	}
	n += m
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	cf := &ControlFrame{From: from, Terminate: terminate, Wave: wave, Acts: acts, Scheme: scheme}
	if len(sig) > 0 {
		cf.Sig = append([]byte{}, sig...)
	}
	return cf, nil
}

// Verify checks the control frame seal for the from→to link.
func (e *ControlFrame) Verify(sealer auth.Sealer, to string) error {
	bp := getWireBuf()
	prefix := e.appendSignedPrefix(*bp)
	err := sealer.Open(e.From, to, prefix, e.Sig)
	putWireBuf(bp, prefix)
	return err
}

// --- session transport (wire v3) ---

// EncodeHandshakeFrame wraps an auth.SessionSealer handshake blob into a
// v3 wire frame.
func EncodeHandshakeFrame(blob []byte) []byte {
	out := make([]byte, 0, 2+len(blob))
	out = append(out, wireVersionSession, frameHandshake)
	return append(out, blob...)
}

// DecodeHandshakeFrame unwraps a v3 handshake frame, returning the
// sealer-level handshake blob.
func DecodeHandshakeFrame(b []byte) ([]byte, error) {
	if len(b) < 2 || b[0] != wireVersionSession || b[1] != frameHandshake {
		return nil, fmt.Errorf("%w: handshake frame header", ErrBadEnvelope)
	}
	if len(b) == 2 {
		return nil, fmt.Errorf("%w: empty handshake frame", ErrBadEnvelope)
	}
	return b[2:], nil
}

// SessionEnvelope is the v3 data frame: the batch layout of v2, sealed
// with the per-link session MAC (tag = key epoch + HMAC) instead of a
// per-envelope signature. One handshake per link amortizes the RSA cost
// the v1/v2 formats pay per datagram.
type SessionEnvelope struct {
	// From is the sending node / principal.
	From string
	// ProvMode tags the provenance payload encoding of every item.
	ProvMode provenance.Mode
	// Retract marks a withdrawal batch (frame kind frameRetract): the
	// items name tuples the sender no longer derives. Item provenance is
	// empty on retract frames.
	Retract bool
	// Items are the shipped tuples in export order.
	Items []BatchItem
	// Tag is the session seal (epoch + MAC) over everything before it.
	Tag []byte
}

// sealedPrefix encodes the authenticated portion of the session frame.
func (e *SessionEnvelope) sealedPrefix() []byte { return e.appendSealedPrefix(nil) }

func (e *SessionEnvelope) appendSealedPrefix(b []byte) []byte {
	kind := frameData
	if e.Retract {
		kind = frameRetract
	}
	b = append(b, wireVersionSession, kind)
	b = data.AppendString(b, e.From)
	b = append(b, byte(e.ProvMode))
	b = binary.AppendUvarint(b, uint64(len(e.Items)))
	for _, it := range e.Items {
		b = data.AppendTuple(b, it.Tuple)
		b = data.AppendBytes(b, it.Prov)
	}
	return b
}

// Encode serializes the frame, sealing it for the from→to link with the
// session sealer.
func (e *SessionEnvelope) Encode(sealer auth.Sealer, to string) ([]byte, error) {
	bp := getWireBuf()
	prefix := e.appendSealedPrefix(*bp)
	out, tag, err := sealDatagram(sealer, e.From, to, bp, prefix, "session frame")
	if err != nil {
		return nil, err
	}
	e.Tag = tag
	return out, nil
}

// DecodeSessionEnvelope parses a session data or retract frame without
// opening it.
func DecodeSessionEnvelope(b []byte) (*SessionEnvelope, error) {
	if len(b) < 2 || b[0] != wireVersionSession || (b[1] != frameData && b[1] != frameRetract) {
		return nil, fmt.Errorf("%w: session frame header", ErrBadEnvelope)
	}
	retract := b[1] == frameRetract
	n := 2
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated header", ErrBadEnvelope)
	}
	mode := provenance.Mode(b[n])
	n++
	items, m, err := decodeItems(b[n:])
	if err != nil {
		return nil, err
	}
	n += m
	tag, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: tag: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	env := &SessionEnvelope{From: from, ProvMode: mode, Retract: retract, Items: items}
	if len(tag) > 0 {
		env.Tag = append([]byte{}, tag...)
	}
	return env, nil
}

// Open checks the session seal for the from→to link.
func (e *SessionEnvelope) Open(sealer auth.Sealer, to string) error {
	bp := getWireBuf()
	prefix := e.appendSealedPrefix(*bp)
	err := sealer.Open(e.From, to, prefix, e.Tag)
	putWireBuf(bp, prefix)
	return err
}
