package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
)

// Envelope is the on-the-wire unit: one derived tuple shipped to another
// node, with its provenance payload and the sender's signature. Its
// encoded size is what the bandwidth metrics charge, so the envelope
// carries exactly what the paper's modified P2 shipped: the tuple, the
// (optional) condensed or full provenance, and the (optional) RSA
// signature.
type Envelope struct {
	// From is the sending node / principal.
	From string
	// Tuple is the shipped fact.
	Tuple data.Tuple
	// ProvMode tags the provenance payload encoding.
	ProvMode provenance.Mode
	// Prov is the mode-specific provenance payload (may be empty).
	Prov []byte
	// Scheme identifies the says implementation used.
	Scheme auth.Scheme
	// Sig authenticates everything before it, signed by From.
	Sig []byte
}

// Wire format tags (first byte of every datagram). Version 1 is the
// seed's one-tuple-per-datagram envelope; version 2 packs every tuple a
// node exports to one destination in a round under a single signature and
// a single framing charge.
const (
	wireVersion      = 1
	wireVersionBatch = 2
)

// Errors from envelope decoding and verification.
var (
	ErrBadEnvelope = errors.New("core: bad envelope")
)

// signedPrefix encodes the authenticated portion of the envelope.
func (e *Envelope) signedPrefix() []byte {
	b := []byte{wireVersion}
	b = data.AppendString(b, e.From)
	b = data.AppendTuple(b, e.Tuple)
	b = append(b, byte(e.ProvMode))
	b = data.AppendBytes(b, e.Prov)
	b = append(b, byte(e.Scheme))
	return b
}

// Encode serializes the envelope, signing it with signer when the scheme
// requires it.
func (e *Envelope) Encode(signer auth.Signer) ([]byte, error) {
	prefix := e.signedPrefix()
	sig, err := signer.Sign(e.From, prefix)
	if err != nil {
		return nil, fmt.Errorf("core: signing envelope from %s: %w", e.From, err)
	}
	e.Sig = sig
	return data.AppendBytes(prefix, sig), nil
}

// DecodeEnvelope parses an envelope without verifying it.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	if len(b) < 2 || b[0] != wireVersion {
		return nil, fmt.Errorf("%w: version", ErrBadEnvelope)
	}
	n := 1
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	tu, m, err := data.DecodeTuple(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: tuple: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated", ErrBadEnvelope)
	}
	mode := provenance.Mode(b[n])
	n++
	prov, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: provenance: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated scheme", ErrBadEnvelope)
	}
	scheme := auth.Scheme(b[n])
	n++
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	env := &Envelope{From: from, Tuple: tu, ProvMode: mode, Scheme: scheme}
	if len(prov) > 0 {
		env.Prov = append([]byte{}, prov...)
	}
	if len(sig) > 0 {
		env.Sig = append([]byte{}, sig...)
	}
	return env, nil
}

// Verify checks the envelope signature against the sender's identity.
func (e *Envelope) Verify(verifier auth.Signer) error {
	return verifier.Verify(e.From, e.signedPrefix(), e.Sig)
}

// --- batched envelopes ---

// BatchItem is one tuple inside a batch envelope, with its mode-specific
// provenance payload.
type BatchItem struct {
	Tuple data.Tuple
	Prov  []byte
}

// BatchEnvelope packs every tuple a node exports to one destination in a
// round under one signature. Compared to shipping the items as individual
// envelopes it saves one signature, one From header, and one per-message
// framing charge (netsim.HeaderOverhead) per item beyond the first — the
// batching half of the Figure 4 bandwidth story.
type BatchEnvelope struct {
	// From is the sending node / principal.
	From string
	// ProvMode tags the provenance payload encoding of every item.
	ProvMode provenance.Mode
	// Scheme identifies the says implementation used.
	Scheme auth.Scheme
	// Items are the shipped tuples in export order.
	Items []BatchItem
	// Sig authenticates everything before it, signed by From.
	Sig []byte
}

// signedPrefix encodes the authenticated portion of the batch envelope.
func (e *BatchEnvelope) signedPrefix() []byte {
	b := []byte{wireVersionBatch}
	b = data.AppendString(b, e.From)
	b = append(b, byte(e.ProvMode))
	b = append(b, byte(e.Scheme))
	b = binary.AppendUvarint(b, uint64(len(e.Items)))
	for _, it := range e.Items {
		b = data.AppendTuple(b, it.Tuple)
		b = data.AppendBytes(b, it.Prov)
	}
	return b
}

// Encode serializes the batch, signing it once with signer when the
// scheme requires it.
func (e *BatchEnvelope) Encode(signer auth.Signer) ([]byte, error) {
	prefix := e.signedPrefix()
	sig, err := signer.Sign(e.From, prefix)
	if err != nil {
		return nil, fmt.Errorf("core: signing batch from %s: %w", e.From, err)
	}
	e.Sig = sig
	return data.AppendBytes(prefix, sig), nil
}

// DecodeBatchEnvelope parses a batch envelope without verifying it.
func DecodeBatchEnvelope(b []byte) (*BatchEnvelope, error) {
	if len(b) < 2 || b[0] != wireVersionBatch {
		return nil, fmt.Errorf("%w: batch version", ErrBadEnvelope)
	}
	n := 1
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	if n+2 > len(b) {
		return nil, fmt.Errorf("%w: truncated header", ErrBadEnvelope)
	}
	mode := provenance.Mode(b[n])
	scheme := auth.Scheme(b[n+1])
	n += 2
	count, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return nil, fmt.Errorf("%w: item count", ErrBadEnvelope)
	}
	n += m
	if count > uint64(len(b)) { // each item takes at least one byte
		return nil, fmt.Errorf("%w: item count %d exceeds payload", ErrBadEnvelope, count)
	}
	items := make([]BatchItem, 0, count)
	for i := uint64(0); i < count; i++ {
		tu, m, err := data.DecodeTuple(b[n:])
		if err != nil {
			return nil, fmt.Errorf("%w: item %d tuple: %v", ErrBadEnvelope, i, err)
		}
		n += m
		prov, m, err := data.DecodeBytes(b[n:])
		if err != nil {
			return nil, fmt.Errorf("%w: item %d provenance: %v", ErrBadEnvelope, i, err)
		}
		n += m
		it := BatchItem{Tuple: tu}
		if len(prov) > 0 {
			it.Prov = append([]byte{}, prov...)
		}
		items = append(items, it)
	}
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	env := &BatchEnvelope{From: from, ProvMode: mode, Scheme: scheme, Items: items}
	if len(sig) > 0 {
		env.Sig = append([]byte{}, sig...)
	}
	return env, nil
}

// Verify checks the batch signature against the sender's identity. One
// verification covers every item.
func (e *BatchEnvelope) Verify(verifier auth.Signer) error {
	return verifier.Verify(e.From, e.signedPrefix(), e.Sig)
}
