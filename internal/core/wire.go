package core

import (
	"errors"
	"fmt"

	"provnet/internal/auth"
	"provnet/internal/data"
	"provnet/internal/provenance"
)

// Envelope is the on-the-wire unit: one derived tuple shipped to another
// node, with its provenance payload and the sender's signature. Its
// encoded size is what the bandwidth metrics charge, so the envelope
// carries exactly what the paper's modified P2 shipped: the tuple, the
// (optional) condensed or full provenance, and the (optional) RSA
// signature.
type Envelope struct {
	// From is the sending node / principal.
	From string
	// Tuple is the shipped fact.
	Tuple data.Tuple
	// ProvMode tags the provenance payload encoding.
	ProvMode provenance.Mode
	// Prov is the mode-specific provenance payload (may be empty).
	Prov []byte
	// Scheme identifies the says implementation used.
	Scheme auth.Scheme
	// Sig authenticates everything before it, signed by From.
	Sig []byte
}

const wireVersion = 1

// Errors from envelope decoding and verification.
var (
	ErrBadEnvelope = errors.New("core: bad envelope")
)

// signedPrefix encodes the authenticated portion of the envelope.
func (e *Envelope) signedPrefix() []byte {
	b := []byte{wireVersion}
	b = data.AppendString(b, e.From)
	b = data.AppendTuple(b, e.Tuple)
	b = append(b, byte(e.ProvMode))
	b = data.AppendBytes(b, e.Prov)
	b = append(b, byte(e.Scheme))
	return b
}

// Encode serializes the envelope, signing it with signer when the scheme
// requires it.
func (e *Envelope) Encode(signer auth.Signer) ([]byte, error) {
	prefix := e.signedPrefix()
	sig, err := signer.Sign(e.From, prefix)
	if err != nil {
		return nil, fmt.Errorf("core: signing envelope from %s: %w", e.From, err)
	}
	e.Sig = sig
	return data.AppendBytes(prefix, sig), nil
}

// DecodeEnvelope parses an envelope without verifying it.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	if len(b) < 2 || b[0] != wireVersion {
		return nil, fmt.Errorf("%w: version", ErrBadEnvelope)
	}
	n := 1
	from, m, err := data.DecodeString(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrBadEnvelope, err)
	}
	n += m
	tu, m, err := data.DecodeTuple(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: tuple: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated", ErrBadEnvelope)
	}
	mode := provenance.Mode(b[n])
	n++
	prov, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: provenance: %v", ErrBadEnvelope, err)
	}
	n += m
	if n >= len(b) {
		return nil, fmt.Errorf("%w: truncated scheme", ErrBadEnvelope)
	}
	scheme := auth.Scheme(b[n])
	n++
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadEnvelope, err)
	}
	n += m
	if n != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEnvelope, len(b)-n)
	}
	env := &Envelope{From: from, Tuple: tu, ProvMode: mode, Scheme: scheme}
	if len(prov) > 0 {
		env.Prov = append([]byte{}, prov...)
	}
	if len(sig) > 0 {
		env.Sig = append([]byte{}, sig...)
	}
	return env, nil
}

// Verify checks the envelope signature against the sender's identity.
func (e *Envelope) Verify(verifier auth.Signer) error {
	return verifier.Verify(e.From, e.signedPrefix(), e.Sig)
}
