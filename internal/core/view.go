package core

import (
	"sort"
	"strings"

	"provnet/internal/data"
	"provnet/internal/provenance"
)

// ReadView is an immutable copy-on-write snapshot of every hosted node's
// live tables (and, under ModeCondensed, their provenance expressions),
// published by the Driver at quiescence points. Readers — the HTTP query
// API above all — serve from the latest view with no locks at all:
// thousands of concurrent queries never touch the evaluation lock, and a
// query that overlaps live churn sees either the pre-churn or the
// post-churn snapshot, never a torn mix.
//
// Seq increments only when table content actually changed since the
// previous view (content-identical republishes keep their Seq), so a
// (Seq, body) pair identifies a consistent snapshot byte-for-byte.
type ReadView struct {
	// Seq is the snapshot generation (0 = empty pre-convergence view).
	Seq uint64
	// Clock is the network's logical time when the view was built.
	Clock float64

	nodes map[string]*NodeView
	// gen is the mutation generation the view was built at (internal
	// change detection for Seq stability).
	gen uint64
}

// NodeView is one node's slice of a ReadView.
type NodeView struct {
	tables map[string][]ViewRow // predicate → sorted rows
}

// ViewRow is one fact in a view, with its condensed provenance
// expression ("" outside ModeCondensed).
type ViewRow struct {
	Tuple data.Tuple
	Prov  string
}

// Nodes returns the hosted node names, sorted.
func (v *ReadView) Nodes() []string {
	out := make([]string, 0, len(v.nodes))
	for name := range v.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Predicates returns the predicates with live rows at a node, sorted.
func (v *ReadView) Predicates(node string) []string {
	nv := v.nodes[node]
	if nv == nil {
		return nil
	}
	out := make([]string, 0, len(nv.tables))
	for pred := range nv.tables {
		out = append(out, pred)
	}
	sort.Strings(out)
	return out
}

// Rows returns a node's rows for a predicate, sorted by tuple order. The
// returned slice is shared with the immutable view: callers must not
// mutate it.
func (v *ReadView) Rows(node, pred string) []ViewRow {
	nv := v.nodes[node]
	if nv == nil {
		return nil
	}
	return nv.tables[pred]
}

// HasNode reports whether the view covers a node.
func (v *ReadView) HasNode(node string) bool { return v.nodes[node] != nil }

// Dump renders the whole view as sorted "node\ttuple\tprov" lines — the
// shape StoreState.LiveDump produces, compared verbatim by the storelog
// determinism pin.
func (v *ReadView) Dump() string {
	var lines []string
	for name, nv := range v.nodes { //provlint:allow mapiter collected lines are sorted before joining
		for _, rows := range nv.tables { //provlint:allow mapiter collected lines are sorted before joining
			for _, r := range rows {
				lines = append(lines, name+"\t"+r.Tuple.String()+"\t"+r.Prov)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// buildView snapshots every hosted engine's live tables. Callers must
// hold the driver's evaluation lock (runMu) so no engine mutates
// concurrently.
func (n *Network) buildView(seq, gen uint64) *ReadView {
	v := &ReadView{Seq: seq, Clock: n.clock, gen: gen, nodes: make(map[string]*NodeView, len(n.order))}
	condensed := n.cfg.Prov == provenance.ModeCondensed
	for _, name := range n.order {
		nd := n.nodes[name]
		nv := &NodeView{tables: make(map[string][]ViewRow)}
		for _, pred := range nd.Engine.Predicates() {
			tuples := nd.Engine.Tuples(pred) // sorted
			rows := make([]ViewRow, len(tuples))
			for i, tu := range tuples {
				row := ViewRow{Tuple: tu}
				if condensed {
					row.Prov = nd.Tracker.ExprOf(nd.Engine.AnnotationOf(tu))
				}
				rows[i] = row
			}
			nv.tables[pred] = rows
		}
		v.nodes[name] = nv
	}
	return v
}
