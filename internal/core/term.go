package core

// Distributed termination detection: the credit/clean-wave protocol that
// replaces the wall-clock idle heuristic for multi-process deployments.
//
// The problem: a process cannot conclude "the distributed fixpoint is
// reached" from its own silence. Its links may be quiet while a frame is
// still in flight to it, or while a remote process is mid-evaluation —
// the idle heuristic (no messages for -idle) declares exactly such false
// fixpoints under delay or partition (see
// TestIdleHeuristicFalseFixpoint).
//
// The protocol: every node keeps a cumulative activity counter,
// incremented on every export shipped, delivery applied, and mutation
// event. A token circulates the sorted ring of ALL nodes (hosted and
// remote — every process derives the same ring from the shared
// program). Each node holds the token until it is locally quiescent —
// the driver pump is idle with nothing queued or pending, and the
// transport reports zero in-flight (unacked) frames — then adds its
// counter to the token's running sum and forwards it to its ring
// successor. When the token returns to the ring root (the first node in
// sort order), the wave is complete.
//
// The root declares termination when two consecutive completed waves
// return the same activity sum. Equal sums mean no node did any work
// between its two stamps; the stamp condition (quiescent, zero
// in-flight) then excludes any frame being in flight at completion: a
// frame acked before the sender's first stamp must have been drained —
// and counted — by the receiver before its second stamp, and a frame
// sent after the first stamp bumped the sender's counter between
// stamps. Either way the sums differ. This is the counter variant of
// the classic dirty-bit token ring; cumulative counters are what make
// token loss safe. Nothing is ever reset, so a token dropped, delayed,
// or duplicated by a lossy link (or internal/faultnet) costs a wave
// restart — the root times out and launches the next wave — never a
// false fixpoint. TestTerminationNoFalseFixpoint drives exactly those
// schedules.
//
// On declaration the root broadcasts a terminate frame to every other
// node and flushes its transport so the broadcast outlives the process.
// All control traffic rides wire v5 frames (docs/WIRE.md) sealed with
// the legacy signature sealer — session keys may not exist yet on a
// restarted link, signatures always verify.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// TermConfig configures the termination detector.
type TermConfig struct {
	// WaveTimeout bounds how long the root waits for a launched wave to
	// return before restarting it (token lost or a node stalled).
	// Default 2s.
	WaveTimeout time.Duration
	// PollEvery is the detector's quiescence polling interval.
	// Default 2ms.
	PollEvery time.Duration
}

// TermDetector runs the clean-wave termination protocol for the nodes
// this process hosts. Create one per process with
// Network.StartTermination; Done closes when some root declares the
// distributed fixpoint.
type TermDetector struct {
	n    *Network
	cfg  TermConfig
	ring []string // all nodes, sorted; ring[0] is the root

	// acts holds the cumulative activity counter per hosted node,
	// bumped by Network.markActive from scheduler goroutines.
	acts map[string]*atomic.Uint64

	mu sync.Mutex
	// tokens holds at most one received token per hosted node, awaiting
	// quiescence to forward. Keyed by the node the token arrived at.
	tokens map[string]*ControlFrame
	// lastWave tracks the highest wave each hosted node forwarded;
	// stale and duplicate tokens are dropped (safe: counters are
	// cumulative, a dropped token destroys no state).
	lastWave map[string]uint64
	// Root state (only used when this process hosts ring[0]).
	rootWave  uint64    // wave number of the current attempt
	launched  bool      // a wave is in flight
	waveStart time.Time // when it launched, for the timeout
	lastTotal uint64    // previous completed wave's activity sum
	haveTotal bool      // lastTotal is valid
	sendErr   error     // first control-frame send failure (sticky)

	waves      atomic.Uint64 // completed waves (root only)
	terminated atomic.Bool
	done       chan struct{}
	doneOnce   sync.Once
	stopped    chan struct{}
}

// StartTermination installs and starts a termination detector over the
// network's node ring. The driver must be live (Start) for quiescence
// to be observable; the detector's goroutine stops with ctx. The
// returned detector's Done channel closes when the distributed fixpoint
// is declared — by this process's root or by a remote root's terminate
// broadcast.
func (n *Network) StartTermination(ctx context.Context, cfg TermConfig) *TermDetector {
	if cfg.WaveTimeout <= 0 {
		cfg.WaveTimeout = 2 * time.Second
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 2 * time.Millisecond
	}
	td := &TermDetector{
		n:        n,
		cfg:      cfg,
		ring:     n.allNodes,
		acts:     make(map[string]*atomic.Uint64, len(n.order)),
		tokens:   make(map[string]*ControlFrame),
		lastWave: make(map[string]uint64),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	for _, name := range n.order {
		td.acts[name] = &atomic.Uint64{}
	}
	n.term.Store(td)
	m := n.Metrics()
	m.CounterFunc("provnet_term_waves_total", "Termination-detection waves completed at the ring root.", func() int64 { return int64(td.waves.Load()) })
	m.GaugeFunc("provnet_term_terminated", "1 after the distributed fixpoint was declared.", func() int64 {
		if td.terminated.Load() {
			return 1
		}
		return 0
	})
	go td.loop(ctx)
	return td
}

// Done closes when termination is declared.
func (td *TermDetector) Done() <-chan struct{} { return td.done }

// Waves reports completed detection waves (nonzero only at the process
// hosting the ring root).
func (td *TermDetector) Waves() uint64 { return td.waves.Load() }

// Terminated reports whether the fixpoint has been declared.
func (td *TermDetector) Terminated() bool { return td.terminated.Load() }

// Err returns the first control-frame send failure, if any.
func (td *TermDetector) Err() error {
	td.mu.Lock()
	defer td.mu.Unlock()
	return td.sendErr
}

// markDirty bumps a hosted node's cumulative activity counter. Called
// from Network.markActive on scheduler goroutines; must stay
// allocation-free.
func (td *TermDetector) markDirty(node string) {
	if c, ok := td.acts[node]; ok {
		c.Add(1)
	}
}

// root reports whether this process hosts the ring root.
func (td *TermDetector) root() (string, bool) {
	name := td.ring[0]
	_, hosted := td.acts[name]
	return name, hosted
}

// succ returns the ring successor of node.
func (td *TermDetector) succ(node string) string {
	for i, name := range td.ring {
		if name == node {
			return td.ring[(i+1)%len(td.ring)]
		}
	}
	return td.ring[0]
}

// quiescent reports local quiescence: the driver pump is idle with
// nothing queued or pending, and the transport has no unacknowledged
// outbound frames. This is the token-holding condition.
func (td *TermDetector) quiescent() bool {
	// Check order matters: a frame moves in-flight → receiver backlog
	// monotonically (limbo, retransmit window, then inbox), so sampling
	// InFlight first and PendingCount second can never miss a frame mid
	// hand-off. The reverse order could: a frame released between the
	// two samples would be counted by neither gauge, and a stamp over it
	// would be a false fixpoint waiting to happen.
	if inf, ok := td.n.net.(InFlighter); ok && inf.InFlight() > 0 {
		return false
	}
	if td.n.net.PendingCount() > 0 {
		// The queued datagrams may be control frames nobody announces
		// (the in-memory fabric has no Notifier): have the pump drain
		// them, then re-check on the next poll.
		td.n.Driver().Nudge()
		return false
	}
	return td.n.Driver().Quiet()
}

// handleControl routes a verified v5 frame received at hosted node `at`.
// Called from import-phase goroutines.
func (td *TermDetector) handleControl(at string, cf *ControlFrame) {
	if cf.Terminate {
		td.declareLocal()
		return
	}
	td.mu.Lock()
	defer td.mu.Unlock()
	if root, hosted := td.root(); hosted && at == root {
		// A token returning to the root completes (or is stale for) a
		// wave; it is never re-forwarded.
		td.completeWaveLocked(cf)
		return
	}
	if cf.Wave <= td.lastWave[at] {
		return // stale or duplicate: counters are cumulative, drop is safe
	}
	td.tokens[at] = cf
}

// completeWaveLocked processes a token arriving back at the root.
func (td *TermDetector) completeWaveLocked(cf *ControlFrame) {
	if !td.launched || cf.Wave != td.rootWave {
		return // a wave we already timed out and restarted
	}
	td.launched = false
	td.waves.Add(1)
	total := cf.Acts
	same := td.haveTotal && total == td.lastTotal
	td.lastTotal, td.haveTotal = total, true
	if same {
		// Two consecutive completed waves with equal activity sums: no
		// node worked between its stamps, no frame was in flight. The
		// wave number is captured here, under mu — the detector loop
		// keeps advancing rootWave while the broadcast goroutine runs.
		go td.broadcastTerminate(td.rootWave)
	}
}

// loop is the detector goroutine: it forwards held tokens and launches
// root waves whenever the process is locally quiescent, and restarts
// waves the root has given up on.
func (td *TermDetector) loop(ctx context.Context) {
	defer close(td.stopped)
	tick := time.NewTicker(td.cfg.PollEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-td.done:
			return
		case <-tick.C:
		}
		td.step()
	}
}

// step runs one detector iteration.
func (td *TermDetector) step() {
	now := time.Now() //provlint:allow detpath wave timeout clock; control plane only, never feeds evaluation
	td.mu.Lock()
	root, hostsRoot := td.root()
	// Root timeout: the token is lost or a node is stalled; restart the
	// wave. Cumulative counters make the abandoned token harmless.
	if hostsRoot && td.launched && now.Sub(td.waveStart) > td.cfg.WaveTimeout {
		td.launched = false
	}
	td.mu.Unlock()

	if !td.quiescent() {
		return
	}

	// Forward every held token: stamp the hosted node's counter into
	// the running sum and pass it on.
	td.mu.Lock()
	var sends []*ControlFrame
	var froms []string
	for _, at := range td.n.order { // deterministic order; n.order is fixed
		cf, ok := td.tokens[at]
		if !ok {
			continue
		}
		delete(td.tokens, at)
		td.lastWave[at] = cf.Wave
		out := &ControlFrame{From: at, Wave: cf.Wave, Acts: cf.Acts + td.acts[at].Load(), Scheme: td.n.cfg.Auth}
		sends = append(sends, out)
		froms = append(froms, at)
	}
	// Root launch: no wave outstanding, start the next one with the
	// root's own stamp.
	if hostsRoot && !td.launched && !td.terminated.Load() {
		td.rootWave++
		td.launched = true
		td.waveStart = now
		out := &ControlFrame{From: root, Wave: td.rootWave, Acts: td.acts[root].Load(), Scheme: td.n.cfg.Auth}
		sends = append(sends, out)
		froms = append(froms, root)
	}
	td.mu.Unlock()

	for i, cf := range sends {
		td.sendControl(cf, froms[i], td.succ(froms[i]))
	}
}

// sendControl seals and ships one control frame.
func (td *TermDetector) sendControl(cf *ControlFrame, from, to string) {
	payload, err := cf.Encode(td.n.legacy, to)
	if err == nil {
		err = td.n.net.Send(from, to, payload)
	}
	if err != nil {
		td.mu.Lock()
		if td.sendErr == nil {
			td.sendErr = err
		}
		td.mu.Unlock()
	}
}

// broadcastTerminate ships the terminate frame from the root to every
// other node, flushes the transport so the frames outlive this process,
// and closes Done.
func (td *TermDetector) broadcastTerminate(wave uint64) {
	td.terminated.Store(true)
	root := td.ring[0]
	for _, name := range td.ring[1:] {
		if _, hosted := td.acts[name]; hosted {
			continue // co-hosted nodes learn via declareLocal below
		}
		cf := &ControlFrame{From: root, Terminate: true, Wave: wave, Scheme: td.n.cfg.Auth}
		td.sendControl(cf, root, name)
	}
	if fl, ok := td.n.net.(Flusher); ok {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = fl.Flush(ctx)
		cancel()
	}
	td.declareLocal()
}

// declareLocal marks termination for this process.
func (td *TermDetector) declareLocal() {
	td.terminated.Store(true)
	td.doneOnce.Do(func() { close(td.done) })
}
