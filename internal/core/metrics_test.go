package core

import (
	"strings"
	"testing"

	"provnet/internal/obs"
	"provnet/internal/provenance"
	"provnet/internal/topo"
)

// TestMetricsDoNotPerturb is the determinism pin for instrumentation:
// an identical run with and without a Metrics registry must produce
// byte-identical tables and the same report counters — observing the
// system must not change what it computes.
func TestMetricsDoNotPerturb(t *testing.T) {
	run := func(m *obs.Metrics) (string, *Report) {
		n, err := NewNetwork(Config{
			Source:  BestPath,
			Graph:   topo.Line(5),
			Prov:    provenance.ModeDistributed,
			Metrics: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return n.Driver().ReadView().Dump(), rep
	}

	baseDump, baseRep := run(nil)
	m := obs.New()
	gotDump, gotRep := run(m)

	if gotDump != baseDump {
		t.Errorf("tables diverge with metrics enabled:\n--- without ---\n%s\n--- with ---\n%s", baseDump, gotDump)
	}
	if gotRep.Rounds != baseRep.Rounds || gotRep.Derivations != baseRep.Derivations ||
		gotRep.Messages != baseRep.Messages || gotRep.Bytes != baseRep.Bytes {
		t.Errorf("report diverges with metrics enabled: rounds %d/%d derivations %d/%d messages %d/%d bytes %d/%d",
			baseRep.Rounds, gotRep.Rounds, baseRep.Derivations, gotRep.Derivations,
			baseRep.Messages, gotRep.Messages, baseRep.Bytes, gotRep.Bytes)
	}

	// The run must have populated the scheduler, engine, and transport
	// families plus the flight recorder.
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, series := range []string{
		"provnet_scheduler_rounds_total",
		"provnet_scheduler_round_seconds_count",
		"provnet_engine_firings_total",
		"provnet_engine_waves_total",
		"provnet_engine_dep_index_size",
		"provnet_transport_messages_total",
		"provnet_transport_bytes_total",
		"provnet_crypto_verify_seconds_count",
		"provnet_scheduler_deltas_in_total",
		"provnet_scheduler_deltas_out_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing series %s in exposition:\n%s", series, text)
		}
	}
	if m.Counter("provnet_scheduler_rounds_total", "").Value() != int64(gotRep.Rounds) {
		t.Errorf("rounds counter %d != report rounds %d",
			m.Counter("provnet_scheduler_rounds_total", "").Value(), gotRep.Rounds)
	}
	if m.Counter("provnet_engine_firings_total", "").Value() != gotRep.Derivations {
		t.Errorf("firings counter %d != report derivations %d",
			m.Counter("provnet_engine_firings_total", "").Value(), gotRep.Derivations)
	}

	recs := m.Flight.Snapshot()
	if len(recs) == 0 {
		t.Fatal("flight recorder empty after a full run")
	}
	var firings int64
	sawQuiesce := false
	for _, r := range recs {
		firings += r.Firings
		if r.Kind == "quiesce" {
			sawQuiesce = true
		}
	}
	if firings != gotRep.Derivations {
		t.Errorf("flight-record firings sum %d != report derivations %d", firings, gotRep.Derivations)
	}
	if !sawQuiesce {
		t.Error("no quiesce record in flight recorder")
	}
}

// TestMetricsRetractionRounds pins retract-phase instrumentation: link
// churn through the driver must produce retract-kind rounds and a
// nonzero retracted counter.
func TestMetricsRetractionRounds(t *testing.T) {
	m := obs.New()
	n, err := NewNetwork(Config{
		Source:  BestPath,
		Graph:   topo.Line(4),
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	ctx := t.Context()
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.CutLink("n1", "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("provnet_scheduler_retract_rounds_total", "").Value(); got == 0 {
		t.Error("no retract rounds counted after a link cut")
	}
	if got := m.Counter("provnet_engine_retracted_total", "").Value(); got == 0 {
		t.Error("no retracted tuples counted after a link cut")
	}
	sawRetract := false
	for _, r := range m.Flight.Snapshot() {
		if r.Kind == "retract" {
			sawRetract = true
			break
		}
	}
	if !sawRetract {
		t.Error("no retract-kind flight record after a link cut")
	}
}
