// Package trace implements packet-level traceback substrates referenced by
// the paper (§3 "Forensics", §5 "Sampling"):
//
//   - probabilistic packet marking in the style of Savage et al.'s IP
//     traceback (each router marks a passing packet with small
//     probability; the victim reconstructs the attack path from the marks
//     of many packets);
//   - ForNet-style router digests (each router keeps a Bloom filter of
//     the traffic it forwarded; an offline traceback walks the digests
//     backwards from the victim).
//
// Both trade accuracy for storage/overhead, complementing the exact
// tuple-level provenance of internal/provenance.
package trace

import (
	"math/rand"
	"sort"

	"provnet/internal/bloom"
)

// --- probabilistic packet marking ---

// Mark is the single marking field carried by a packet (node sampling):
// the last router that chose to mark, and how many hops ago it did.
type Mark struct {
	Router   string
	Distance int
}

// Marker simulates probabilistic packet marking with marking probability
// P at every router.
type Marker struct {
	// P is the per-router marking probability (IP traceback's classic
	// value is 1/20000 for edge marking; node sampling typically uses
	// larger values such as 0.04).
	P   float64
	Rng *rand.Rand
}

// Traverse simulates one packet travelling through path (attacker first,
// victim last, routers in between) and returns the mark the victim
// observes, if any.
func (m *Marker) Traverse(path []string) (Mark, bool) {
	var mark Mark
	have := false
	for _, router := range path {
		if m.Rng.Float64() < m.P {
			mark = Mark{Router: router, Distance: 0}
			have = true
		} else if have {
			mark.Distance++
		}
	}
	return mark, have
}

// Collect runs n packets over path and returns the observed marks.
func (m *Marker) Collect(path []string, n int) []Mark {
	var out []Mark
	for i := 0; i < n; i++ {
		if mk, ok := m.Traverse(path); ok {
			out = append(out, mk)
		}
	}
	return out
}

// ReconstructPath orders the marked routers by their minimum observed
// distance from the victim, the standard node-sampling reconstruction.
// With enough packets this recovers the traversed path (victim-nearest
// first).
func ReconstructPath(marks []Mark) []string {
	minDist := map[string]int{}
	for _, mk := range marks {
		if d, ok := minDist[mk.Router]; !ok || mk.Distance < d {
			minDist[mk.Router] = mk.Distance
		}
	}
	type rd struct {
		router string
		dist   int
	}
	rds := make([]rd, 0, len(minDist))
	for r, d := range minDist {
		rds = append(rds, rd{r, d})
	}
	sort.Slice(rds, func(i, j int) bool {
		if rds[i].dist != rds[j].dist {
			return rds[i].dist < rds[j].dist
		}
		return rds[i].router < rds[j].router
	})
	out := make([]string, len(rds))
	for i, x := range rds {
		out[i] = x.router
	}
	return out
}

// --- ForNet-style router digests ---

// Digest is one router's Bloom-filter summary of forwarded traffic.
type Digest struct {
	Node   string
	filter *bloom.Filter
}

// NewDigest creates a digest sized for n expected items at false-positive
// rate p.
func NewDigest(node string, n uint64, p float64) *Digest {
	return &Digest{Node: node, filter: bloom.NewWithEstimates(n, p)}
}

// Record notes that traffic identified by key passed through this router.
func (d *Digest) Record(key string) { d.filter.AddString(key) }

// Seen reports whether traffic with this key may have passed through.
func (d *Digest) Seen(key string) bool { return d.filter.ContainsString(key) }

// SizeBytes returns the digest's storage footprint.
func (d *Digest) SizeBytes() int { return d.filter.SizeBytes() }

// TracebackResult is the outcome of a digest walk.
type TracebackResult struct {
	// Nodes lists the routers implicated, in BFS order from the victim.
	Nodes []string
	// Probes counts digest membership tests performed.
	Probes int
}

// TracebackDigests walks backwards from victim along the reversed
// topology, following routers whose digests contain key. reverseAdj maps
// each node to the nodes with links INTO it (upstream neighbours).
func TracebackDigests(reverseAdj map[string][]string, digests map[string]*Digest, victim, key string) TracebackResult {
	res := TracebackResult{}
	seen := map[string]bool{victim: true}
	queue := []string{victim}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Deterministic exploration order.
		ups := append([]string{}, reverseAdj[cur]...)
		sort.Strings(ups)
		for _, up := range ups {
			if seen[up] {
				continue
			}
			d, ok := digests[up]
			if !ok {
				continue
			}
			res.Probes++
			if d.Seen(key) {
				seen[up] = true
				res.Nodes = append(res.Nodes, up)
				queue = append(queue, up)
			}
		}
	}
	return res
}
