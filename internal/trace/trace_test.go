package trace

import (
	"math/rand"
	"testing"
)

func TestMarkerTraverse(t *testing.T) {
	// With P=1 every router marks; the last router on the path wins with
	// distance counted from it to the victim end.
	m := &Marker{P: 1, Rng: rand.New(rand.NewSource(1))}
	mark, ok := m.Traverse([]string{"r1", "r2", "r3"})
	if !ok || mark.Router != "r3" || mark.Distance != 0 {
		t.Fatalf("mark = %+v ok=%v", mark, ok)
	}
	// With P=0 no packet is ever marked.
	m0 := &Marker{P: 0, Rng: rand.New(rand.NewSource(1))}
	if _, ok := m0.Traverse([]string{"r1", "r2"}); ok {
		t.Fatal("P=0 must not mark")
	}
}

func TestReconstructPathConverges(t *testing.T) {
	// Node sampling with p=0.2 over a 5-router path; enough packets
	// recover the full path in order (victim-nearest first).
	path := []string{"attacker", "r1", "r2", "r3", "victimEdge"}
	m := &Marker{P: 0.2, Rng: rand.New(rand.NewSource(42))}
	marks := m.Collect(path, 20000)
	got := ReconstructPath(marks)
	if len(got) != len(path) {
		t.Fatalf("reconstructed %v", got)
	}
	// Distance ordering: victimEdge (closest) first, attacker last.
	for i, want := range []string{"victimEdge", "r3", "r2", "r1", "attacker"} {
		if got[i] != want {
			t.Fatalf("reconstructed order = %v", got)
		}
	}
}

func TestReconstructEmpty(t *testing.T) {
	if got := ReconstructPath(nil); len(got) != 0 {
		t.Errorf("empty marks = %v", got)
	}
}

func TestSamplingRateControlsOverhead(t *testing.T) {
	// The classic IP-traceback sampling rate 1/20000 marks almost
	// nothing per packet — the storage/accuracy trade-off of §5.
	path := []string{"r1", "r2", "r3"}
	m := &Marker{P: 1.0 / 20000, Rng: rand.New(rand.NewSource(7))}
	marks := m.Collect(path, 10000)
	if len(marks) > 50 {
		t.Errorf("marks = %d, expected very few at 1/20000", len(marks))
	}
}

func TestDigestTraceback(t *testing.T) {
	// Topology: attacker -> r1 -> r2 -> victim, with a side branch
	// r3 -> r2 that did NOT carry the attack traffic.
	reverse := map[string][]string{
		"victim": {"r2"},
		"r2":     {"r1", "r3"},
		"r1":     {"attacker"},
	}
	digests := map[string]*Digest{
		"r1":       NewDigest("r1", 1000, 0.001),
		"r2":       NewDigest("r2", 1000, 0.001),
		"r3":       NewDigest("r3", 1000, 0.001),
		"attacker": NewDigest("attacker", 1000, 0.001),
	}
	key := "attack-flow-xyz"
	for _, r := range []string{"attacker", "r1", "r2"} {
		digests[r].Record(key)
	}
	// r3 carried unrelated traffic.
	digests["r3"].Record("benign-flow")

	res := TracebackDigests(reverse, digests, "victim", key)
	if len(res.Nodes) != 3 {
		t.Fatalf("implicated = %v", res.Nodes)
	}
	want := []string{"r2", "r1", "attacker"}
	for i := range want {
		if res.Nodes[i] != want[i] {
			t.Fatalf("implicated order = %v, want %v", res.Nodes, want)
		}
	}
	if res.Probes < 3 {
		t.Errorf("probes = %d", res.Probes)
	}
}

func TestDigestTracebackMissingDigest(t *testing.T) {
	reverse := map[string][]string{"victim": {"r1"}}
	res := TracebackDigests(reverse, map[string]*Digest{}, "victim", "k")
	if len(res.Nodes) != 0 {
		t.Errorf("no digests: %v", res.Nodes)
	}
}

func TestDigestSize(t *testing.T) {
	d := NewDigest("r", 10000, 0.01)
	if d.SizeBytes() <= 0 || d.SizeBytes() > 64*1024 {
		t.Errorf("digest size = %d", d.SizeBytes())
	}
	d.Record("x")
	if !d.Seen("x") {
		t.Error("recorded key must be seen")
	}
	if d.Seen("never-recorded-key-123456") {
		t.Log("false positive (acceptable at configured rate)")
	}
}
