// Package bdd implements reduced ordered binary decision diagrams (ROBDDs).
//
// The paper encodes condensed provenance expressions (provenance-semiring
// polynomials over the principals asserting base tuples) in BDDs using the
// Buddy library; BDD reduction performs the algebraic simplification the
// paper describes — e.g. a + a·b collapses to a by absorption. This package
// is a from-scratch replacement: hash-consed nodes, an ITE operation cache,
// satisfiability counting, cube (DNF) extraction for monotone functions, and
// a compact serialization used to ship provenance across the simulated
// network.
//
// A Manager owns all nodes; Node values are indices into the manager and
// are only meaningful with the manager that produced them. Managers are not
// safe for concurrent use.
package bdd

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Node references a BDD node inside a Manager. The terminals are False (0)
// and True (1).
type Node int32

// Terminal nodes, identical across all managers.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level  int32 // variable order position; terminals use maxLevel
	lo, hi Node
}

const maxLevel = int32(1<<31 - 1)

type tripleKey struct {
	a, b, c int32
}

// Manager owns a shared node store for a family of BDDs. Nodes are
// hash-consed: structurally identical subgraphs are represented once, so
// equality of boolean functions is pointer (Node) equality.
type Manager struct {
	nodes    []nodeData
	unique   map[tripleKey]Node
	iteCache map[tripleKey]Node

	varNames []string
	varIdx   map[string]int32
}

// New returns an empty manager with no variables registered.
func New() *Manager {
	m := &Manager{
		unique:   make(map[tripleKey]Node),
		iteCache: make(map[tripleKey]Node),
		varIdx:   make(map[string]int32),
	}
	// nodes[0] = False, nodes[1] = True.
	m.nodes = append(m.nodes, nodeData{level: maxLevel}, nodeData{level: maxLevel})
	return m
}

// NumVars returns the number of registered variables.
func (m *Manager) NumVars() int { return len(m.varNames) }

// NumNodes returns the total number of allocated nodes including terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// VarNames returns the registered variable names in order.
func (m *Manager) VarNames() []string {
	out := make([]string, len(m.varNames))
	copy(out, m.varNames)
	return out
}

// varLevel registers name if new and returns its order position.
func (m *Manager) varLevel(name string) int32 {
	if lv, ok := m.varIdx[name]; ok {
		return lv
	}
	lv := int32(len(m.varNames))
	m.varNames = append(m.varNames, name)
	m.varIdx[name] = lv
	return lv
}

// Var returns the BDD for the variable name, registering it (appending to
// the variable order) on first use.
func (m *Manager) Var(name string) Node {
	lv := m.varLevel(name)
	return m.mk(lv, False, True)
}

// DeclareOrder registers variables in the given order. Variables already
// registered keep their position.
func (m *Manager) DeclareOrder(names ...string) {
	for _, n := range names {
		m.varLevel(n)
	}
}

// mk returns the canonical node for (level, lo, hi), applying the ROBDD
// reduction rules.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	k := tripleKey{level, int32(lo), int32(hi)}
	if n, ok := m.unique[k]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	m.unique[k] = n
	return n
}

func (m *Manager) level(n Node) int32 { return m.nodes[n].level }

// ITE computes if-then-else: f·g + ¬f·h. It is the core operation all
// binary connectives are built from.
func (m *Manager) ITE(f, g, h Node) Node {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := tripleKey{int32(f), int32(g), int32(h)}
	if r, ok := m.iteCache[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.iteCache[key] = r
	return r
}

// cofactors returns the negative and positive cofactors of n with respect
// to the variable at the given level.
func (m *Manager) cofactors(n Node, level int32) (lo, hi Node) {
	d := m.nodes[n]
	if d.level != level {
		return n, n
	}
	return d.lo, d.hi
}

// And returns the conjunction of its arguments (True for no arguments).
func (m *Manager) And(ns ...Node) Node {
	r := True
	for _, n := range ns {
		r = m.ITE(r, n, False)
		if r == False {
			return False
		}
	}
	return r
}

// Or returns the disjunction of its arguments (False for no arguments).
func (m *Manager) Or(ns ...Node) Node {
	r := False
	for _, n := range ns {
		r = m.ITE(n, True, r)
		if r == True {
			return True
		}
	}
	return r
}

// Not returns the complement of n.
func (m *Manager) Not(n Node) Node { return m.ITE(n, False, True) }

// Xor returns exclusive-or.
func (m *Manager) Xor(a, b Node) Node { return m.ITE(a, m.Not(b), b) }

// Implies returns a → b.
func (m *Manager) Implies(a, b Node) Node { return m.ITE(a, b, True) }

// Cube returns the conjunction of the named positive literals.
func (m *Manager) Cube(vars ...string) Node {
	r := True
	for _, v := range vars {
		r = m.And(r, m.Var(v))
	}
	return r
}

// Eval evaluates n under the assignment (missing variables are false).
func (m *Manager) Eval(n Node, assign map[string]bool) bool {
	for n != True && n != False {
		d := m.nodes[n]
		if assign[m.varNames[d.level]] {
			n = d.hi
		} else {
			n = d.lo
		}
	}
	return n == True
}

// Restrict fixes variable name to val in n.
func (m *Manager) Restrict(n Node, name string, val bool) Node {
	lv, ok := m.varIdx[name]
	if !ok {
		return n
	}
	memo := make(map[Node]Node)
	var rec func(Node) Node
	rec = func(x Node) Node {
		if x == True || x == False {
			return x
		}
		d := m.nodes[x]
		if d.level > lv {
			return x
		}
		if r, ok := memo[x]; ok {
			return r
		}
		var r Node
		if d.level == lv {
			if val {
				r = d.hi
			} else {
				r = d.lo
			}
		} else {
			r = m.mk(d.level, rec(d.lo), rec(d.hi))
		}
		memo[x] = r
		return r
	}
	return rec(n)
}

// Exists existentially quantifies variable name out of n.
func (m *Manager) Exists(n Node, name string) Node {
	return m.Or(m.Restrict(n, name, false), m.Restrict(n, name, true))
}

// Support returns the sorted names of variables n depends on.
func (m *Manager) Support(n Node) []string {
	seen := make(map[int32]bool)
	visited := make(map[Node]bool)
	var rec func(Node)
	rec = func(x Node) {
		if x == True || x == False || visited[x] {
			return
		}
		visited[x] = true
		d := m.nodes[x]
		seen[d.level] = true
		rec(d.lo)
		rec(d.hi)
	}
	rec(n)
	out := make([]string, 0, len(seen))
	for lv := range seen {
		out = append(out, m.varNames[lv])
	}
	sort.Strings(out)
	return out
}

// NodeCount returns the number of non-terminal nodes in the BDD rooted at n.
func (m *Manager) NodeCount(n Node) int {
	visited := make(map[Node]bool)
	var rec func(Node)
	rec = func(x Node) {
		if x == True || x == False || visited[x] {
			return
		}
		visited[x] = true
		rec(m.nodes[x].lo)
		rec(m.nodes[x].hi)
	}
	rec(n)
	return len(visited)
}

// SatCount returns the number of satisfying assignments of n over all
// currently registered variables.
func (m *Manager) SatCount(n Node) float64 {
	memo := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(x Node) float64 {
		if x == False {
			return 0
		}
		if x == True {
			return 1
		}
		if c, ok := memo[x]; ok {
			return c
		}
		d := m.nodes[x]
		lo, hi := rec(d.lo), rec(d.hi)
		// Scale by skipped levels below this node.
		c := lo*pow2(m.below(d.lo)-d.level-1) + hi*pow2(m.below(d.hi)-d.level-1)
		memo[x] = c
		return c
	}
	if n == False {
		return 0
	}
	root := rec(n)
	return root * pow2(m.levelOf(n))
}

// levelOf returns the level of n, treating terminals as NumVars.
func (m *Manager) levelOf(n Node) int32 {
	if n == True || n == False {
		return int32(len(m.varNames))
	}
	return m.nodes[n].level
}

func (m *Manager) below(n Node) int32 { return m.levelOf(n) }

func pow2(k int32) float64 {
	r := 1.0
	for ; k > 0; k-- {
		r *= 2
	}
	return r
}

// Cubes returns the DNF of n as a list of cubes; each cube lists the
// variables taken positively along a path from the root to True. Variables
// absent from a cube are don't-cares on that path; for the monotone
// functions produced by provenance polynomials (no negation), this is a
// disjunction of conjunctions of positive literals, and BDD reduction has
// already applied absorption (a + a·b = a yields the single cube {a}).
// Cubes are sorted and deduplicated for deterministic output.
func (m *Manager) Cubes(n Node) [][]string {
	var out [][]string
	var path []string
	var rec func(Node)
	rec = func(x Node) {
		if x == False {
			return
		}
		if x == True {
			cube := make([]string, len(path))
			copy(cube, path)
			sort.Strings(cube)
			out = append(out, cube)
			return
		}
		d := m.nodes[x]
		rec(d.lo)
		path = append(path, m.varNames[d.level])
		rec(d.hi)
		path = path[:len(path)-1]
	}
	rec(n)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	// Path enumeration can emit redundant cubes (a path taking the lo edge
	// of one variable and the hi edge of a later one yields a superset of a
	// shorter cube). For monotone functions the subset-minimal path cubes
	// are exactly the prime implicants, so prune any cube that contains
	// another. Cubes are sorted by length, so each cube need only be
	// checked against the shorter ones already kept.
	var kept [][]string
	for _, c := range out {
		redundant := false
		for _, k := range kept {
			if equalCube(k, c) || cubeSubset(k, c) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, c)
		}
	}
	return kept
}

// cubeSubset reports whether sorted cube a is a strict subset of sorted
// cube b.
func cubeSubset(a, b []string) bool {
	if len(a) >= len(b) {
		return false
	}
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

func equalCube(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Expr renders n as a provenance-style expression over positive cubes, e.g.
// "a + b*c", matching the paper's <...> annotations. True renders as "1"
// and False as "0".
func (m *Manager) Expr(n Node) string {
	if n == True {
		return "1"
	}
	if n == False {
		return "0"
	}
	cubes := m.Cubes(n)
	parts := make([]string, len(cubes))
	for i, c := range cubes {
		if len(c) == 0 {
			parts[i] = "1"
			continue
		}
		parts[i] = strings.Join(c, "*")
	}
	return strings.Join(parts, " + ")
}

// --- Serialization ---

// Errors returned by Deserialize.
var (
	ErrBadEncoding = errors.New("bdd: bad encoding")
)

// Serialize encodes the BDD rooted at n, including the names of the
// variables it depends on, so it can be reconstructed in a different manager
// (possibly with a different global variable order).
//
// Layout: uvarint nodeCount, then per node (in a bottom-up order):
// string varName, uvarint loRef, uvarint hiRef, finally uvarint rootRef.
// Refs: 0 = False, 1 = True, k+2 = k-th serialized node.
func (m *Manager) Serialize(n Node) []byte {
	order := make([]Node, 0)
	index := map[Node]int{}
	var visit func(Node)
	visit = func(x Node) {
		if x == True || x == False {
			return
		}
		if _, ok := index[x]; ok {
			return
		}
		d := m.nodes[x]
		visit(d.lo)
		visit(d.hi)
		index[x] = len(order)
		order = append(order, x)
	}
	visit(n)

	ref := func(x Node) uint64 {
		switch x {
		case False:
			return 0
		case True:
			return 1
		default:
			return uint64(index[x]) + 2
		}
	}

	var b []byte
	b = appendUvarint(b, uint64(len(order)))
	for _, x := range order {
		d := m.nodes[x]
		b = appendUvarint(b, uint64(len(m.varNames[d.level])))
		b = append(b, m.varNames[d.level]...)
		b = appendUvarint(b, ref(d.lo))
		b = appendUvarint(b, ref(d.hi))
	}
	b = appendUvarint(b, ref(n))
	return b
}

// Deserialize reconstructs a serialized BDD inside this manager. Variables
// are matched by name; because reconstruction rebuilds the function with
// ITE, it is correct even if this manager uses a different variable order
// than the serializing manager.
func (m *Manager) Deserialize(b []byte) (Node, error) {
	cnt, n, err := readUvarint(b)
	if err != nil {
		return False, err
	}
	if cnt > uint64(len(b)) {
		return False, ErrBadEncoding
	}
	nodes := make([]Node, cnt)
	resolve := func(r uint64, upto uint64) (Node, error) {
		switch {
		case r == 0:
			return False, nil
		case r == 1:
			return True, nil
		case r-2 < upto:
			return nodes[r-2], nil
		default:
			return False, ErrBadEncoding
		}
	}
	for i := uint64(0); i < cnt; i++ {
		nameLen, k, err := readUvarint(b[n:])
		if err != nil {
			return False, err
		}
		n += k
		if uint64(len(b)-n) < nameLen {
			return False, ErrBadEncoding
		}
		name := string(b[n : n+int(nameLen)])
		n += int(nameLen)
		loRef, k, err := readUvarint(b[n:])
		if err != nil {
			return False, err
		}
		n += k
		hiRef, k, err := readUvarint(b[n:])
		if err != nil {
			return False, err
		}
		n += k
		lo, err := resolve(loRef, i)
		if err != nil {
			return False, err
		}
		hi, err := resolve(hiRef, i)
		if err != nil {
			return False, err
		}
		v := m.Var(name)
		nodes[i] = m.ITE(v, hi, lo)
	}
	rootRef, k, err := readUvarint(b[n:])
	if err != nil {
		return False, err
	}
	n += k
	if n != len(b) {
		return False, ErrBadEncoding
	}
	return resolve(rootRef, cnt)
}

func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

func readUvarint(b []byte) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i > 9 || i == 9 && c > 1 {
				return 0, 0, ErrBadEncoding
			}
			return x | uint64(c)<<s, i + 1, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0, ErrBadEncoding
}

// String renders a short description of the manager, for debugging.
func (m *Manager) String() string {
	return fmt.Sprintf("bdd.Manager{vars: %d, nodes: %d}", len(m.varNames), len(m.nodes))
}
