package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New()
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("Not on terminals")
	}
	if m.And() != True || m.Or() != False {
		t.Fatal("empty And/Or identities")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("And/Or terminals")
	}
}

func TestVarIdempotent(t *testing.T) {
	m := New()
	a1 := m.Var("a")
	a2 := m.Var("a")
	if a1 != a2 {
		t.Fatal("Var must be hash-consed")
	}
	if m.NumVars() != 1 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
}

func TestBasicLaws(t *testing.T) {
	m := New()
	a, b := m.Var("a"), m.Var("b")
	if m.And(a, a) != a {
		t.Error("idempotence of And")
	}
	if m.Or(a, a) != a {
		t.Error("idempotence of Or")
	}
	if m.And(a, m.Not(a)) != False {
		t.Error("contradiction")
	}
	if m.Or(a, m.Not(a)) != True {
		t.Error("excluded middle")
	}
	if m.And(a, b) != m.And(b, a) {
		t.Error("commutativity of And")
	}
	if m.Or(a, b) != m.Or(b, a) {
		t.Error("commutativity of Or")
	}
	if m.Not(m.Not(a)) != a {
		t.Error("double negation")
	}
}

// TestAbsorption checks the paper's §4.4 condensation example: the
// provenance expression a + a*b for reachable(a,c) condenses to just a.
func TestAbsorption(t *testing.T) {
	m := New()
	a, b := m.Var("a"), m.Var("b")
	expr := m.Or(a, m.And(a, b))
	if expr != a {
		t.Fatalf("a + a*b should reduce to a; Expr = %s", m.Expr(expr))
	}
	if got := m.Expr(expr); got != "a" {
		t.Fatalf("Expr = %q, want %q", got, "a")
	}
}

func TestExprRendering(t *testing.T) {
	m := New()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	cases := []struct {
		n    Node
		want string
	}{
		{True, "1"},
		{False, "0"},
		{a, "a"},
		{m.And(a, b), "a*b"},
		{m.Or(m.And(a, b), c), "c + a*b"},
		{m.Or(a, m.And(b, c)), "a + b*c"},
	}
	for _, cse := range cases {
		if got := m.Expr(cse.n); got != cse.want {
			t.Errorf("Expr = %q, want %q", got, cse.want)
		}
	}
}

func TestEval(t *testing.T) {
	m := New()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	cases := []struct {
		assign map[string]bool
		want   bool
	}{
		{map[string]bool{"a": true, "b": true}, true},
		{map[string]bool{"a": true, "b": false}, false},
		{map[string]bool{"a": false, "c": true}, true},
		{map[string]bool{"a": false, "c": false}, false},
		{map[string]bool{}, false},
	}
	for i, cse := range cases {
		if got := m.Eval(f, cse.assign); got != cse.want {
			t.Errorf("case %d: Eval = %v", i, got)
		}
	}
}

func TestRestrictAndExists(t *testing.T) {
	m := New()
	a, b := m.Var("a"), m.Var("b")
	f := m.And(a, b)
	if m.Restrict(f, "a", true) != b {
		t.Error("restrict a=1 of a*b should be b")
	}
	if m.Restrict(f, "a", false) != False {
		t.Error("restrict a=0 of a*b should be 0")
	}
	if m.Restrict(f, "zz", true) != f {
		t.Error("restrict of unknown var should be identity")
	}
	if m.Exists(f, "a") != b {
		t.Error("∃a. a*b should be b")
	}
	g := m.Or(a, b)
	if m.Exists(g, "a") != True {
		t.Error("∃a. a+b should be 1")
	}
}

func TestSupport(t *testing.T) {
	m := New()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	f := m.Or(m.And(a, b), m.And(a, c))
	got := m.Support(f)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Support = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	// a + a*b has support {a} only after reduction.
	g := m.Or(a, m.And(a, b))
	if s := m.Support(g); len(s) != 1 || s[0] != "a" {
		t.Fatalf("Support(a+a*b) = %v", s)
	}
}

func TestSatCount(t *testing.T) {
	m := New()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	if got := m.SatCount(True); got != 8 {
		t.Errorf("SatCount(True) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("SatCount(False) = %v", got)
	}
	if got := m.SatCount(a); got != 4 {
		t.Errorf("SatCount(a) = %v, want 4", got)
	}
	if got := m.SatCount(m.And(a, b)); got != 2 {
		t.Errorf("SatCount(a*b) = %v, want 2", got)
	}
	if got := m.SatCount(m.Or(m.And(a, b), c)); got != 5 {
		t.Errorf("SatCount(a*b+c) = %v, want 5", got)
	}
}

func TestCubesMonotone(t *testing.T) {
	m := New()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	f := m.Or(m.And(a, b), c)
	cubes := m.Cubes(f)
	if len(cubes) != 2 {
		t.Fatalf("Cubes = %v", cubes)
	}
	// Sorted by length: [c] then [a b].
	if len(cubes[0]) != 1 || cubes[0][0] != "c" {
		t.Errorf("cube 0 = %v", cubes[0])
	}
	if len(cubes[1]) != 2 || cubes[1][0] != "a" || cubes[1][1] != "b" {
		t.Errorf("cube 1 = %v", cubes[1])
	}
}

func TestNodeCount(t *testing.T) {
	m := New()
	a, b := m.Var("a"), m.Var("b")
	if m.NodeCount(True) != 0 {
		t.Error("terminal has no internal nodes")
	}
	if m.NodeCount(a) != 1 {
		t.Error("single variable has one node")
	}
	f := m.And(a, b)
	if m.NodeCount(f) != 2 {
		t.Errorf("NodeCount(a*b) = %d", m.NodeCount(f))
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := New()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	fns := []Node{True, False, a, m.And(a, b), m.Or(m.And(a, b), m.And(m.Not(a), c)), m.Xor(b, c)}
	for _, f := range fns {
		enc := m.Serialize(f)
		m2 := New()
		g, err := m2.Deserialize(enc)
		if err != nil {
			t.Fatalf("Deserialize: %v", err)
		}
		// Compare by truth table over the support vars.
		assertSameFunction(t, m, f, m2, g, []string{"a", "b", "c"})
	}
}

func TestSerializeAcrossDifferentOrders(t *testing.T) {
	m := New()
	m.DeclareOrder("a", "b", "c")
	f := m.Or(m.And(m.Var("a"), m.Var("b")), m.Var("c"))

	m2 := New()
	m2.DeclareOrder("c", "b", "a") // reversed order
	g, err := m2.Deserialize(m.Serialize(f))
	if err != nil {
		t.Fatal(err)
	}
	assertSameFunction(t, m, f, m2, g, []string{"a", "b", "c"})
}

func TestDeserializeErrors(t *testing.T) {
	m := New()
	if _, err := m.Deserialize(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := m.Deserialize([]byte{5}); err == nil {
		t.Error("count with no nodes should fail")
	}
	f := m.And(m.Var("a"), m.Var("b"))
	enc := m.Serialize(f)
	if _, err := m.Deserialize(enc[:len(enc)-1]); err == nil {
		t.Error("truncated input should fail")
	}
	if _, err := m.Deserialize(append(enc, 0)); err == nil {
		t.Error("trailing garbage should fail")
	}
}

func assertSameFunction(t *testing.T, m1 *Manager, f Node, m2 *Manager, g Node, vars []string) {
	t.Helper()
	n := len(vars)
	for mask := 0; mask < 1<<n; mask++ {
		assign := make(map[string]bool)
		for i, v := range vars {
			assign[v] = mask&(1<<i) != 0
		}
		if m1.Eval(f, assign) != m2.Eval(g, assign) {
			t.Fatalf("functions differ under %v", assign)
		}
	}
}

// --- randomized properties ---

// expr is a random boolean expression evaluated both directly and via BDD.
type expr struct {
	op       byte // 'v', '&', '|', '!', '^'
	v        int
	lhs, rhs *expr
}

func randExpr(r *rand.Rand, depth, nvars int) *expr {
	if depth == 0 || r.Intn(3) == 0 {
		return &expr{op: 'v', v: r.Intn(nvars)}
	}
	switch r.Intn(4) {
	case 0:
		return &expr{op: '&', lhs: randExpr(r, depth-1, nvars), rhs: randExpr(r, depth-1, nvars)}
	case 1:
		return &expr{op: '|', lhs: randExpr(r, depth-1, nvars), rhs: randExpr(r, depth-1, nvars)}
	case 2:
		return &expr{op: '^', lhs: randExpr(r, depth-1, nvars), rhs: randExpr(r, depth-1, nvars)}
	default:
		return &expr{op: '!', lhs: randExpr(r, depth-1, nvars)}
	}
}

func (e *expr) eval(assign []bool) bool {
	switch e.op {
	case 'v':
		return assign[e.v]
	case '&':
		return e.lhs.eval(assign) && e.rhs.eval(assign)
	case '|':
		return e.lhs.eval(assign) || e.rhs.eval(assign)
	case '^':
		return e.lhs.eval(assign) != e.rhs.eval(assign)
	default:
		return !e.lhs.eval(assign)
	}
}

func (e *expr) build(m *Manager, vars []string) Node {
	switch e.op {
	case 'v':
		return m.Var(vars[e.v])
	case '&':
		return m.And(e.lhs.build(m, vars), e.rhs.build(m, vars))
	case '|':
		return m.Or(e.lhs.build(m, vars), e.rhs.build(m, vars))
	case '^':
		return m.Xor(e.lhs.build(m, vars), e.rhs.build(m, vars))
	default:
		return m.Not(e.lhs.build(m, vars))
	}
}

var testVars = []string{"v0", "v1", "v2", "v3", "v4"}

func TestQuickBDDMatchesTruthTable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 5, len(testVars))
		m := New()
		m.DeclareOrder(testVars...)
		n := e.build(m, testVars)
		for mask := 0; mask < 1<<len(testVars); mask++ {
			assign := make([]bool, len(testVars))
			am := make(map[string]bool)
			for i := range testVars {
				assign[i] = mask&(1<<i) != 0
				am[testVars[i]] = assign[i]
			}
			if e.eval(assign) != m.Eval(n, am) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCanonicity(t *testing.T) {
	// Two structurally different but equivalent expressions must produce
	// the identical node (canonicity of ROBDDs).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4, 3)
		m := New()
		m.DeclareOrder(testVars[:3]...)
		n1 := e.build(m, testVars[:3])
		// Rebuild the same expression: must be the same node.
		n2 := e.build(m, testVars[:3])
		// De Morgan on a conjunction wrapper: !(!e1 | !e2) == e1 & e2.
		n3 := m.Not(m.Or(m.Not(n1), m.Not(n1)))
		return n1 == n2 && n3 == n1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 5, len(testVars))
		m := New()
		m.DeclareOrder(testVars...)
		n := e.build(m, testVars)
		m2 := New()
		// Random variable order on the receiving side.
		perm := r.Perm(len(testVars))
		for _, i := range perm {
			m2.Var(testVars[i])
		}
		g, err := m2.Deserialize(m.Serialize(n))
		if err != nil {
			return false
		}
		for mask := 0; mask < 1<<len(testVars); mask++ {
			am := make(map[string]bool)
			for i := range testVars {
				am[testVars[i]] = mask&(1<<i) != 0
			}
			if m.Eval(n, am) != m2.Eval(g, am) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCubesEquivalentForMonotone(t *testing.T) {
	// For negation-free expressions, the DNF from Cubes must evaluate to
	// the same function.
	var mono func(r *rand.Rand, depth int) *expr
	mono = func(r *rand.Rand, depth int) *expr {
		if depth == 0 || r.Intn(3) == 0 {
			return &expr{op: 'v', v: r.Intn(len(testVars))}
		}
		if r.Intn(2) == 0 {
			return &expr{op: '&', lhs: mono(r, depth-1), rhs: mono(r, depth-1)}
		}
		return &expr{op: '|', lhs: mono(r, depth-1), rhs: mono(r, depth-1)}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := mono(r, 5)
		m := New()
		m.DeclareOrder(testVars...)
		n := e.build(m, testVars)
		cubes := m.Cubes(n)
		for mask := 0; mask < 1<<len(testVars); mask++ {
			am := make(map[string]bool)
			for i := range testVars {
				am[testVars[i]] = mask&(1<<i) != 0
			}
			dnf := false
			for _, cube := range cubes {
				all := true
				for _, v := range cube {
					if !am[v] {
						all = false
						break
					}
				}
				if all {
					dnf = true
					break
				}
			}
			if dnf != m.Eval(n, am) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnd(b *testing.B) {
	m := New()
	vars := make([]Node, 16)
	for i := range vars {
		vars[i] = m.Var(string(rune('a' + i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := True
		for _, v := range vars {
			f = m.And(f, v)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	m := New()
	f := False
	for i := 0; i < 12; i++ {
		f = m.Or(f, m.And(m.Var(string(rune('a'+i))), m.Var(string(rune('a'+(i+1)%12)))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Serialize(f)
	}
}
