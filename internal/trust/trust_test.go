package trust

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"provnet/internal/bdd"
	"provnet/internal/semiring"
)

var paperPoly = semiring.Var("a").Add(semiring.Var("a").Mul(semiring.Var("b")))

func levels(m map[string]int64) Levels { return LevelMap(m) }

func TestMinLevelPaperExample(t *testing.T) {
	m := bdd.New()
	lv := levels(map[string]int64{"a": 2, "b": 1})
	d := MinLevel{Threshold: 2}.Evaluate(paperPoly, m, lv)
	if !d.Accept || d.Trust != 2 {
		t.Fatalf("decision = %+v", d)
	}
	d = MinLevel{Threshold: 3}.Evaluate(paperPoly, m, lv)
	if d.Accept {
		t.Fatalf("threshold 3 must reject: %+v", d)
	}
	// Zero polynomial (no derivation) always rejects.
	d = MinLevel{Threshold: -100}.Evaluate(semiring.Zero(), m, lv)
	if d.Accept {
		t.Fatal("zero provenance must reject")
	}
}

func TestKVotes(t *testing.T) {
	m := bdd.New()
	// a + b*c has two independent minimal derivations.
	p := semiring.Var("a").Add(semiring.Var("b").Mul(semiring.Var("c")))
	if d := (KVotes{K: 2}).Evaluate(p, m, nil); !d.Accept || d.Votes != 2 {
		t.Fatalf("decision = %+v", d)
	}
	if d := (KVotes{K: 3}).Evaluate(p, m, nil); d.Accept {
		t.Fatalf("3 votes must reject: %+v", d)
	}
	// a + a*b has only one minimal derivation (absorption).
	if d := (KVotes{K: 2}).Evaluate(paperPoly, m, nil); d.Accept || d.Votes != 1 {
		t.Fatalf("paper poly votes = %+v", d)
	}
}

func TestWhitelist(t *testing.T) {
	m := bdd.New()
	p := semiring.Var("a").Mul(semiring.Var("b")).Add(semiring.Var("c"))
	wl := Whitelist{Allowed: map[string]bool{"a": true, "b": true}}
	if d := wl.Evaluate(p, m, nil); !d.Accept {
		t.Fatalf("a*b derivation is whitelisted: %+v", d)
	}
	wl2 := Whitelist{Allowed: map[string]bool{"a": true}}
	if d := wl2.Evaluate(p, m, nil); d.Accept {
		t.Fatalf("no derivation uses only a: %+v", d)
	}
}

func TestBlacklist(t *testing.T) {
	m := bdd.New()
	p := semiring.Var("a").Mul(semiring.Var("b")).Add(semiring.Var("c"))
	// Banning c still leaves a*b.
	if d := (Blacklist{Banned: map[string]bool{"c": true}}).Evaluate(p, m, nil); !d.Accept {
		t.Fatalf("decision = %+v", d)
	}
	// Banning a and c kills every derivation.
	if d := (Blacklist{Banned: map[string]bool{"a": true, "c": true}}).Evaluate(p, m, nil); d.Accept {
		t.Fatalf("decision = %+v", d)
	}
	// The paper's condensation insight: <a+a*b> condenses to <a>, so
	// banning b is inconsequential given a.
	if d := (Blacklist{Banned: map[string]bool{"b": true}}).Evaluate(paperPoly, m, nil); !d.Accept {
		t.Fatalf("banning b must not matter: %+v", d)
	}
}

func TestAllAny(t *testing.T) {
	m := bdd.New()
	lv := levels(map[string]int64{"a": 2, "b": 1})
	both := All{MinLevel{Threshold: 2}, KVotes{K: 1}}
	if d := both.Evaluate(paperPoly, m, lv); !d.Accept {
		t.Fatalf("all: %+v", d)
	}
	strict := All{MinLevel{Threshold: 2}, KVotes{K: 5}}
	if d := strict.Evaluate(paperPoly, m, lv); d.Accept || !strings.Contains(d.Reason, "kvotes") {
		t.Fatalf("all strict: %+v", d)
	}
	either := Any{MinLevel{Threshold: 99}, KVotes{K: 1}}
	if d := either.Evaluate(paperPoly, m, lv); !d.Accept {
		t.Fatalf("any: %+v", d)
	}
	neither := Any{MinLevel{Threshold: 99}, KVotes{K: 9}}
	if d := neither.Evaluate(paperPoly, m, lv); d.Accept {
		t.Fatalf("any neither: %+v", d)
	}
	if (All{}).Name() == "" || (Any{}).Name() == "" {
		t.Error("names")
	}
}

func TestGateAuditing(t *testing.T) {
	g := NewGate(MinLevel{Threshold: 2}, levels(map[string]int64{"a": 2, "b": 1}), 10)
	if d := g.Consider("update1", paperPoly); !d.Accept {
		t.Fatal("update1 accepted")
	}
	weak := semiring.Var("b")
	if d := g.Consider("update2", weak); d.Accept {
		t.Fatal("update2 rejected")
	}
	acc, rej := g.Counts()
	if acc != 1 || rej != 1 {
		t.Errorf("counts = %d/%d", acc, rej)
	}
	audit := g.Audit()
	if len(audit) != 2 || audit[0].Update != "update1" || !audit[0].Decision.Accept {
		t.Errorf("audit = %+v", audit)
	}
}

func TestGateLogLimit(t *testing.T) {
	g := NewGate(KVotes{K: 1}, nil, 2)
	for i := 0; i < 5; i++ {
		g.Consider("u", semiring.Var("a"))
	}
	if len(g.Audit()) != 2 {
		t.Errorf("audit len = %d, want 2", len(g.Audit()))
	}
	acc, _ := g.Counts()
	if acc != 5 {
		t.Errorf("accepted = %d", acc)
	}
}

func TestPrincipals(t *testing.T) {
	ps := Principals(paperPoly)
	if len(ps) != 2 || ps[0] != "a" || ps[1] != "b" {
		t.Errorf("principals = %v", ps)
	}
}

// TestGateConcurrentConsider admits updates from many goroutines at once:
// the gate's tallies and audit log must stay consistent (and the run must
// be clean under -race — the parallel import workers of internal/core
// share one gate exactly like this).
func TestGateConcurrentConsider(t *testing.T) {
	const workers = 8
	const perWorker = 50
	g := NewGate(MinLevel{Threshold: 2}, levels(map[string]int64{"a": 2, "b": 1}), workers*perWorker)
	accept := semiring.Var("a")                        // trust 2: accepted
	reject := semiring.Var("a").Mul(semiring.Var("b")) // trust 1: rejected
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					g.Consider(fmt.Sprintf("w%d-accept-%d", w, i), accept)
				} else {
					g.Consider(fmt.Sprintf("w%d-reject-%d", w, i), reject)
				}
			}
		}(w)
	}
	wg.Wait()
	acc, rej := g.Counts()
	if acc != workers*perWorker/2 || rej != workers*perWorker/2 {
		t.Fatalf("counts = %d/%d, want %d/%d", acc, rej, workers*perWorker/2, workers*perWorker/2)
	}
	audit := g.Audit()
	if len(audit) != workers*perWorker {
		t.Fatalf("audit log = %d records, want %d", len(audit), workers*perWorker)
	}
	for _, r := range audit {
		wantAccept := strings.Contains(r.Update, "accept")
		if r.Decision.Accept != wantAccept {
			t.Fatalf("record %q decided %v", r.Update, r.Decision.Accept)
		}
	}
}
