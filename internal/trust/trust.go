// Package trust implements trust-management policies over network
// provenance (paper §3 "Trust Management", §4.5): a node examines the
// provenance of an incoming update and accepts or rejects it based on the
// principals it derives from — the Orchestra-style use of provenance. The
// policies operate on condensed provenance (provenance polynomials over
// principals), so they can be enforced locally from what arrives with each
// tuple.
package trust

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"provnet/internal/bdd"
	"provnet/internal/semiring"
)

// Levels maps principals to their security levels (higher = more
// trusted). Unknown principals default to 0.
type Levels func(principal string) int64

// LevelMap adapts a map to Levels.
func LevelMap(m map[string]int64) Levels {
	return func(p string) int64 { return m[p] }
}

// Decision is the outcome of a policy evaluation.
type Decision struct {
	Accept bool
	// Reason explains the outcome for audit logs.
	Reason string
	// Trust is the max/min trust level of the provenance, when the
	// policy computed it.
	Trust int64
	// Votes is the number of independent minimal derivations, when the
	// policy computed it.
	Votes int
}

// Policy decides whether a tuple with the given provenance polynomial is
// acceptable.
type Policy interface {
	// Name identifies the policy in audit output.
	Name() string
	// Evaluate inspects the provenance polynomial. The manager provides
	// BDD condensation for vote counting and witness extraction.
	Evaluate(p semiring.Poly, m *bdd.Manager, levels Levels) Decision
}

// MinLevel accepts updates whose provenance trust — the maximum over
// alternative derivations of the minimum principal level within each —
// meets a threshold. This is the paper's §4.5 quantifiable provenance:
// <a+a*b> with level(a)=2, level(b)=1 has trust max(2, min(2,1)) = 2.
type MinLevel struct {
	Threshold int64
}

// Name returns the policy name.
func (p MinLevel) Name() string { return fmt.Sprintf("minlevel(%d)", p.Threshold) }

// Evaluate computes the trust level under the Trust semiring.
func (p MinLevel) Evaluate(poly semiring.Poly, m *bdd.Manager, levels Levels) Decision {
	tr := semiring.Eval[int64](poly, semiring.Trust{}, func(v string) int64 { return levels(v) })
	d := Decision{Trust: tr}
	if poly.IsZero() {
		d.Reason = "no derivation"
		return d
	}
	if tr >= p.Threshold {
		d.Accept = true
		d.Reason = fmt.Sprintf("trust %d >= %d", tr, p.Threshold)
	} else {
		d.Reason = fmt.Sprintf("trust %d < %d", tr, p.Threshold)
	}
	return d
}

// KVotes accepts updates asserted through at least K independent minimal
// derivations ("accepting an update only if over K principals assert the
// update", §3).
type KVotes struct {
	K int
}

// Name returns the policy name.
func (p KVotes) Name() string { return fmt.Sprintf("kvotes(%d)", p.K) }

// Evaluate counts the minimal cubes of the condensed provenance.
func (p KVotes) Evaluate(poly semiring.Poly, m *bdd.Manager, _ Levels) Decision {
	votes := poly.Votes(m)
	d := Decision{Votes: votes}
	if votes >= p.K {
		d.Accept = true
		d.Reason = fmt.Sprintf("%d votes >= %d", votes, p.K)
	} else {
		d.Reason = fmt.Sprintf("%d votes < %d", votes, p.K)
	}
	return d
}

// Whitelist accepts an update only if some derivation uses exclusively
// whitelisted principals.
type Whitelist struct {
	Allowed map[string]bool
}

// Name returns the policy name.
func (p Whitelist) Name() string { return "whitelist" }

// Evaluate scans the minimal cubes for one fully whitelisted derivation.
func (p Whitelist) Evaluate(poly semiring.Poly, m *bdd.Manager, _ Levels) Decision {
	cubes := m.Cubes(poly.ToBDD(m))
	for _, cube := range cubes {
		ok := true
		for _, v := range cube {
			if !p.Allowed[v] {
				ok = false
				break
			}
		}
		if ok {
			return Decision{Accept: true, Reason: "derivation via " + strings.Join(cube, ",")}
		}
	}
	return Decision{Reason: "no fully whitelisted derivation"}
}

// Blacklist rejects an update whose every derivation involves a
// blacklisted principal. A single clean derivation suffices to accept —
// this is exactly what condensation preserves: whether the tuple is
// derivable without the distrusted principals.
type Blacklist struct {
	Banned map[string]bool
}

// Name returns the policy name.
func (p Blacklist) Name() string { return "blacklist" }

// Evaluate restricts the condensed provenance by setting banned
// principals to false and checks satisfiability.
func (p Blacklist) Evaluate(poly semiring.Poly, m *bdd.Manager, _ Levels) Decision {
	n := poly.ToBDD(m)
	for b := range p.Banned {
		n = m.Restrict(n, b, false)
	}
	if n != bdd.False {
		return Decision{Accept: true, Reason: "derivable without banned principals"}
	}
	return Decision{Reason: "all derivations involve banned principals"}
}

// All accepts only if every sub-policy accepts.
type All []Policy

// Name returns the policy name.
func (p All) Name() string {
	names := make([]string, len(p))
	for i, q := range p {
		names[i] = q.Name()
	}
	return "all(" + strings.Join(names, ",") + ")"
}

// Evaluate evaluates conjunctively.
func (p All) Evaluate(poly semiring.Poly, m *bdd.Manager, levels Levels) Decision {
	agg := Decision{Accept: true, Reason: "all passed"}
	for _, q := range p {
		d := q.Evaluate(poly, m, levels)
		if d.Trust != 0 {
			agg.Trust = d.Trust
		}
		if d.Votes != 0 {
			agg.Votes = d.Votes
		}
		if !d.Accept {
			return Decision{Reason: q.Name() + ": " + d.Reason, Trust: agg.Trust, Votes: agg.Votes}
		}
	}
	return agg
}

// Any accepts if some sub-policy accepts.
type Any []Policy

// Name returns the policy name.
func (p Any) Name() string {
	names := make([]string, len(p))
	for i, q := range p {
		names[i] = q.Name()
	}
	return "any(" + strings.Join(names, ",") + ")"
}

// Evaluate evaluates disjunctively.
func (p Any) Evaluate(poly semiring.Poly, m *bdd.Manager, levels Levels) Decision {
	var reasons []string
	for _, q := range p {
		d := q.Evaluate(poly, m, levels)
		if d.Accept {
			d.Reason = q.Name() + ": " + d.Reason
			return d
		}
		reasons = append(reasons, q.Name()+": "+d.Reason)
	}
	return Decision{Reason: strings.Join(reasons, "; ")}
}

// Gate audits a stream of updates against one policy — the building block
// of the Orchestra-style update filter. It is safe for concurrent use:
// the parallel import workers of internal/core may consult one gate from
// many goroutines at once, so Consider serializes policy evaluation (the
// BDD manager is shared mutable state) and the audit log.
type Gate struct {
	policy Policy
	levels Levels

	mu                 sync.Mutex
	mgr                *bdd.Manager
	accepted, rejected int
	log                []AuditRecord
	logLimit           int
}

// AuditRecord is one gate decision.
type AuditRecord struct {
	Update   string
	Decision Decision
}

// NewGate builds a gate with an audit log bounded at limit records
// (<=0: 1024).
func NewGate(policy Policy, levels Levels, limit int) *Gate {
	if limit <= 0 {
		limit = 1024
	}
	return &Gate{policy: policy, mgr: bdd.New(), levels: levels, logLimit: limit}
}

// Consider evaluates an update's provenance, records the decision, and
// returns it.
func (g *Gate) Consider(update string, p semiring.Poly) Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.policy.Evaluate(p, g.mgr, g.levels)
	if d.Accept {
		g.accepted++
	} else {
		g.rejected++
	}
	if len(g.log) < g.logLimit {
		g.log = append(g.log, AuditRecord{Update: update, Decision: d})
	}
	return d
}

// Counts returns the accept/reject tallies.
func (g *Gate) Counts() (accepted, rejected int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.accepted, g.rejected
}

// Audit returns the recorded decisions.
func (g *Gate) Audit() []AuditRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]AuditRecord, len(g.log))
	copy(out, g.log)
	return out
}

// Principals returns the sorted principals named by a polynomial (for
// audit display).
func Principals(p semiring.Poly) []string {
	s := p.Support()
	sort.Strings(s)
	return s
}
