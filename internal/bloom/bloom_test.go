package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("elem-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.ContainsString(fmt.Sprintf("elem-%d", i)) {
			t.Fatalf("false negative for elem-%d", i)
		}
	}
	if f.Count() != 1000 {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.ContainsString(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false positive rate %.4f too high for target 0.01", rate)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(256, 3)
	if f.ContainsString("anything") {
		t.Error("empty filter must contain nothing")
	}
	if f.FillRatio() != 0 {
		t.Error("empty fill ratio")
	}
	if f.EstimatedFPP() != 0 {
		t.Error("empty FPP")
	}
}

func TestGeometryClamping(t *testing.T) {
	f := New(1, 0)
	if f.Bits() != 64 || f.k != 1 {
		t.Errorf("clamped geometry: m=%d k=%d", f.Bits(), f.k)
	}
	f2 := New(65, 2)
	if f2.Bits() != 128 {
		t.Errorf("rounded bits = %d", f2.Bits())
	}
	if NewWithEstimates(0, -1) == nil {
		t.Error("degenerate estimates must still build")
	}
}

func TestReset(t *testing.T) {
	f := New(256, 3)
	f.AddString("x")
	f.Reset()
	if f.ContainsString("x") || f.Count() != 0 {
		t.Error("reset must clear")
	}
}

func TestUnion(t *testing.T) {
	a, b := New(256, 3), New(256, 3)
	a.AddString("left")
	b.AddString("right")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.ContainsString("left") || !a.ContainsString("right") {
		t.Error("union must contain both")
	}
	c := New(512, 3)
	if err := a.Union(c); err == nil {
		t.Error("incompatible union must fail")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(256, 4)
	for i := 0; i < 50; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Count() != f.Count() {
		t.Error("geometry mismatch after round trip")
	}
	for i := 0; i < 50; i++ {
		if !g.ContainsString(fmt.Sprintf("k%d", i)) {
			t.Fatalf("lost element k%d", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil should fail")
	}
	if _, err := Unmarshal(make([]byte, 19)); err == nil {
		t.Error("short should fail")
	}
	f := New(128, 2)
	b := f.Marshal()
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Error("truncated should fail")
	}
	b[0] = 1 // corrupt m to a non-multiple of 64
	if _, err := Unmarshal(b); err == nil {
		t.Error("corrupt header should fail")
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fl := New(uint64(64+r.Intn(1024)), uint32(1+r.Intn(6)))
		var keys []string
		for i := 0; i < 1+r.Intn(100); i++ {
			k := fmt.Sprintf("key-%d-%d", seed, r.Int63())
			keys = append(keys, k)
			fl.AddString(k)
		}
		for _, k := range keys {
			if !fl.ContainsString(k) {
				return false
			}
		}
		g, err := Unmarshal(fl.Marshal())
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !g.ContainsString(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
