// Package bloom implements Bloom filters as used by ForNet-style network
// forensics (paper §3, §5): routers keep compact digests of the tuples or
// packets that passed through them, trading accuracy for storage, and
// offline traceback queries test digest membership hop by hop.
package bloom

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
)

// Filter is a Bloom filter using the standard double-hashing scheme
// (Kirsch–Mitzenmacher): k indexes derived from two independent 64-bit
// hashes of the element.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint32 // number of hash functions
	n    uint64 // elements added
}

// New creates a filter with m bits (rounded up to a multiple of 64, minimum
// 64) and k hash functions (minimum 1).
func New(m uint64, k uint32) *Filter {
	if m < 64 {
		m = 64
	}
	m = (m + 63) / 64 * 64
	if k < 1 {
		k = 1
	}
	return &Filter{bits: make([]uint64, m/64), m: m, k: k}
}

// NewWithEstimates creates a filter sized for n expected elements at the
// given target false-positive probability p.
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// hash2 returns two independent 64-bit hashes of p, taken from disjoint
// halves of a SHA-256 digest. SHA-256 is stable across processes (digests
// can be persisted) and distributes far better than multiplicative hashes,
// which matters for hitting the configured false-positive rate.
func hash2(p []byte) (uint64, uint64) {
	sum := sha256.Sum256(p)
	h1 := binary.LittleEndian.Uint64(sum[0:8])
	h2 := binary.LittleEndian.Uint64(sum[8:16])
	if h2 == 0 { // ensure stride is non-zero
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// Add inserts p into the filter.
func (f *Filter) Add(p []byte) {
	h1, h2 := hash2(p)
	for i := uint32(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// AddString inserts the string s.
func (f *Filter) AddString(s string) { f.Add([]byte(s)) }

// Contains reports whether p may have been added. False positives occur
// with the configured probability; false negatives never.
func (f *Filter) Contains(p []byte) bool {
	h1, h2 := hash2(p)
	for i := uint32(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsString reports membership of the string s.
func (f *Filter) ContainsString(s string) bool { return f.Contains([]byte(s)) }

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.n }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// SizeBytes returns the storage footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// FillRatio returns the fraction of bits set.
func (f *Filter) FillRatio() float64 {
	ones := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	return float64(ones) / float64(f.m)
}

// EstimatedFPP returns the expected false-positive probability given the
// current fill ratio.
func (f *Filter) EstimatedFPP() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Union merges other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return errors.New("bloom: incompatible filter geometry")
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Marshal serializes the filter.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 0, 20+len(f.bits)*8)
	out = binary.LittleEndian.AppendUint64(out, f.m)
	out = binary.LittleEndian.AppendUint32(out, f.k)
	out = binary.LittleEndian.AppendUint64(out, f.n)
	for _, w := range f.bits {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(b []byte) (*Filter, error) {
	if len(b) < 20 {
		return nil, errors.New("bloom: short buffer")
	}
	m := binary.LittleEndian.Uint64(b)
	k := binary.LittleEndian.Uint32(b[8:])
	n := binary.LittleEndian.Uint64(b[12:])
	if m == 0 || m%64 != 0 || m/64 > uint64(len(b)) {
		return nil, errors.New("bloom: corrupt header")
	}
	words := int(m / 64)
	if len(b) != 20+words*8 {
		return nil, errors.New("bloom: wrong payload length")
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, n: n}
	for i := 0; i < words; i++ {
		f.bits[i] = binary.LittleEndian.Uint64(b[20+i*8:])
	}
	return f, nil
}
