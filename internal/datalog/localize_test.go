package datalog

import (
	"strings"
	"testing"
)

func TestLocalizeSingleLocationUnchanged(t *testing.T) {
	prog := MustParse(`r1 reachable(@S,D) :- link(@S,D).`)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 1 || out.Rules[0] != prog.Rules[0] {
		t.Errorf("single-location rule should pass through unchanged")
	}
}

func TestLocalizeTransitiveClosure(t *testing.T) {
	prog := MustParse(reachableNDlog)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	// r1 unchanged; r2 splits into a shipping rule plus a local rule.
	if len(out.Rules) != 3 {
		t.Fatalf("rules after localize = %d:\n%s", len(out.Rules), out)
	}
	ship := out.Rules[1]
	local := out.Rules[2]
	// The shipping rule sends link bindings to Z.
	if ship.Head.LocIdx != 0 {
		t.Errorf("ship head loc = %d", ship.Head.LocIdx)
	}
	if v, ok := ship.Head.Args[0].(Variable); !ok || v.Name != "Z" {
		t.Errorf("ship destination = %v", ship.Head.Args[0])
	}
	if len(ship.Body) != 1 || ship.Body[0].Atom.Pred != "link" {
		t.Errorf("ship body = %v", ship.Body)
	}
	// The local rule evaluates at Z only.
	locs := BodyLocations(local)
	if len(locs) != 1 || locs[0] != "Z" {
		t.Errorf("local rule locations = %v\n%s", locs, local)
	}
	if local.Head.Pred != "reachable" {
		t.Errorf("local head = %s", local.Head.Pred)
	}
	// Both derived rules must be safe.
	if err := Validate(out); err != nil {
		t.Errorf("Validate after localize: %v", err)
	}
}

func TestLocalizeKeepsAssignsAndConds(t *testing.T) {
	prog := MustParse(`
sp2 path(@S,D,Z,P,C) :- link(@S,Z,C1), path(@Z,D,W,P2,C2), C = C1 + C2,
    f_member(P2,S) == 0, P = f_concat(S,P2).
`)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 2 {
		t.Fatalf("rules = %d", len(out.Rules))
	}
	final := out.Rules[1]
	var kinds []LiteralKind
	for _, l := range final.Body {
		kinds = append(kinds, l.Kind)
	}
	// tmp atom + path atom + assign + cond + assign.
	want := []LiteralKind{LitAtom, LitAtom, LitAssign, LitCond, LitAssign}
	if len(kinds) != len(want) {
		t.Fatalf("final body = %v", final.Body)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("final body[%d] = %s (kind %d, want %d)", i, final.Body[i], kinds[i], want[i])
		}
	}
	// The shipping rule must carry C1 (needed by the assignment) and S.
	ship := out.Rules[0]
	shipStr := ship.String()
	for _, v := range []string{"C1", "S"} {
		if !strings.Contains(shipStr, v) {
			t.Errorf("shipping rule %s must carry %s", shipStr, v)
		}
	}
	if err := Validate(out); err != nil {
		t.Errorf("Validate after localize: %v", err)
	}
}

func TestLocalizeThreeLocations(t *testing.T) {
	prog := MustParse(`r t(@X,W) :- a(@X,Y), b(@Y,Z), c(@Z,W).`)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 3 {
		t.Fatalf("rules = %d:\n%s", len(out.Rules), out)
	}
	for i, r := range out.Rules {
		if locs := BodyLocations(r); len(locs) != 1 {
			t.Errorf("rule %d body spans %v", i, locs)
		}
	}
	if err := Validate(out); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLocalizeUnreachableLocationFails(t *testing.T) {
	// Y's location never appears in the first group's bindings.
	prog := MustParse(`r t(@X,W) :- a(@X,X2), b(@Y,W).`)
	_, err := Localize(prog)
	if err == nil || !strings.Contains(err.Error(), "cannot localize") {
		t.Fatalf("expected localization failure, got %v", err)
	}
}

func TestLocalizeSeNDlogPassThrough(t *testing.T) {
	prog := MustParse(reachableSeNDlog)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != len(prog.Rules) {
		t.Errorf("SeNDlog rules must pass through unchanged")
	}
}

func TestLocalizePreservesDecls(t *testing.T) {
	prog := MustParse(`
materialize(link, infinity, infinity, keys(1,2)).
aggSelection(path, keys(1,2), min, 5).
link(@a,b).
r1 reachable(@S,D) :- link(@S,D).
`)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if out.Materialize["link"] == nil || len(out.Prunes) != 1 || len(out.Facts) != 1 {
		t.Error("Localize must preserve declarations and facts")
	}
}
