package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVariable
	tokNumber
	tokString
	tokPunct // one of the punctuation/operator spellings
)

type token struct {
	kind tokenKind
	text string
	// numeric payload for tokNumber
	isFloat  bool
	intVal   int64
	floatVal float64
	line     int
	col      int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return strconv.Quote(t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("datalog: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

// peekRune decodes the rune at the current position, returning size 0 at
// end of input.
func (lx *lexer) peekRune() (rune, int) {
	if lx.pos >= len(lx.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(lx.src[lx.pos:])
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipSpace consumes whitespace and comments (// line and /* block */).
func (lx *lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '%': // P2-style % comments
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos+1 < len(lx.src) {
				if lx.peekByte() == '*' && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// punctuation spellings, longest first so the scanner is greedy.
var puncts = []string{
	":-", "==", "!=", "<=", ">=", "&&", "||", ":=",
	"(", ")", ",", ".", "@", "=", "<", ">", "+", "-", "*", "/", ":", "!", "[", "]",
}

func (lx *lexer) next() (token, error) {
	if err := lx.skipSpace(); err != nil {
		return token{}, err
	}
	startLine, startCol := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: startLine, col: startCol}, nil
	}
	c := lx.peekByte()

	// String literal.
	if c == '"' {
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated string"}
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated escape"}
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(esc)
				default:
					return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: fmt.Sprintf("bad escape \\%c", esc)}
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return token{kind: tokString, text: sb.String(), line: startLine, col: startCol}, nil
	}

	// Number.
	if c >= '0' && c <= '9' {
		start := lx.pos
		isFloat := false
		for lx.pos < len(lx.src) {
			ch := lx.peekByte()
			if ch >= '0' && ch <= '9' {
				lx.advance()
				continue
			}
			if ch == '.' && !isFloat && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
				isFloat = true
				lx.advance()
				continue
			}
			break
		}
		text := lx.src[start:lx.pos]
		tok := token{kind: tokNumber, text: text, isFloat: isFloat, line: startLine, col: startCol}
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "bad number " + text}
			}
			tok.floatVal = f
		} else {
			i, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "bad number " + text}
			}
			tok.intVal = i
		}
		return tok, nil
	}

	// Identifier or variable (full UTF-8 identifiers supported).
	if r, _ := lx.peekRune(); isIdentStart(r) {
		start := lx.pos
		first := r
		for {
			r, sz := lx.peekRune()
			if sz == 0 || !isIdentCont(r) {
				break
			}
			for i := 0; i < sz; i++ {
				lx.advance()
			}
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if text == "_" || unicode.IsUpper(first) {
			kind = tokVariable
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil
	}

	// Punctuation.
	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			for range p {
				lx.advance()
			}
			return token{kind: tokPunct, text: p, line: startLine, col: startCol}, nil
		}
	}
	return token{}, lx.errorf("unexpected character %q", string(c))
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole input (used by the parser and by tests).
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
