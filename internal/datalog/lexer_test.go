package datalog

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lexAll(%q): %v", src, err)
	}
	return toks
}

func TestLexerTokenKinds(t *testing.T) {
	toks := kinds(t, `r1 reachable(@S, D) :- link(@S, "x y"), C = 3 + 4.5, _.`)
	var got []tokenKind
	for _, tk := range toks {
		got = append(got, tk.kind)
	}
	want := []tokenKind{
		tokIdent, tokIdent, tokPunct, tokPunct, tokVariable, tokPunct, tokVariable, tokPunct,
		tokPunct, tokIdent, tokPunct, tokPunct, tokVariable, tokPunct, tokString, tokPunct, tokPunct,
		tokVariable, tokPunct, tokNumber, tokPunct, tokNumber, tokPunct, tokVariable, tokPunct,
		tokEOF,
	}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d (%s) kind = %d, want %d", i, toks[i], got[i], want[i])
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	toks := kinds(t, "42 3.75 0 10.0")
	if toks[0].intVal != 42 || toks[0].isFloat {
		t.Error("42")
	}
	if !toks[1].isFloat || toks[1].floatVal != 3.75 {
		t.Error("3.75")
	}
	if toks[3].floatVal != 10.0 || !toks[3].isFloat {
		t.Error("10.0")
	}
	// A trailing period after digits is clause punctuation, not a float.
	toks = kinds(t, "p(1).")
	if toks[2].kind != tokNumber || toks[2].isFloat {
		t.Errorf("1 should be int: %v", toks[2])
	}
	if toks[4].kind != tokPunct || toks[4].text != "." {
		t.Errorf("expected period, got %v", toks[4])
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks := kinds(t, `"a\nb\t\"c\\"`)
	if toks[0].text != "a\nb\t\"c\\" {
		t.Errorf("escapes = %q", toks[0].text)
	}
	if _, err := lexAll(`"bad \q escape"`); err == nil {
		t.Error("bad escape must fail")
	}
	if _, err := lexAll(`"unterminated \`); err == nil {
		t.Error("unterminated escape must fail")
	}
}

func TestLexerGreedyPunct(t *testing.T) {
	toks := kinds(t, ":- == != <= >= && || := < = :")
	want := []string{":-", "==", "!=", "<=", ">=", "&&", "||", ":=", "<", "=", ":"}
	for i, w := range want {
		if toks[i].text != w {
			t.Errorf("punct %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexerCommentsAndPositions(t *testing.T) {
	toks := kinds(t, "// c1\n% c2\n/* c3\nc4 */ abc")
	if toks[0].kind != tokIdent || toks[0].text != "abc" {
		t.Fatalf("token = %v", toks[0])
	}
	if toks[0].line != 4 {
		t.Errorf("line = %d, want 4", toks[0].line)
	}
	if _, err := lexAll("@@@ \x01"); err == nil {
		t.Error("control char must fail")
	}
}

func TestLexerUnicodeIdentifiers(t *testing.T) {
	toks := kinds(t, "réseau Ŝource")
	if toks[0].kind != tokIdent {
		t.Errorf("lowercase unicode ident: %v", toks[0])
	}
	if toks[1].kind != tokVariable {
		t.Errorf("uppercase unicode variable: %v", toks[1])
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	err := &SyntaxError{Line: 3, Col: 7, Msg: "boom"}
	if !strings.Contains(err.Error(), "3:7") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error = %q", err.Error())
	}
}
