package datalog

import (
	"fmt"
)

// Validate checks a program for the safety conditions the engine relies
// on:
//
//   - every head variable (including location, destination, and aggregate
//     variables) is bound in the body;
//   - assignment and condition expressions only reference variables bound
//     by body atoms or earlier assignments;
//   - NDlog rules carry location specifiers on every atom and contain no
//     says; SeNDlog rules have purely local bodies (no @ in body atoms)
//     and export with a head destination;
//   - facts are ground and placed.
//
// It returns the first problem found.
func Validate(prog *Program) error {
	for _, r := range prog.Rules {
		if err := validateRule(r); err != nil {
			return err
		}
	}
	for _, f := range prog.Facts {
		if f.Node == "" {
			return fmt.Errorf("datalog: line %d: fact %s has no placement", f.Line, f.Tuple)
		}
	}
	for _, pr := range prog.Prunes {
		if pr.Pred == "" || pr.Col < 1 || len(pr.KeyCols) == 0 {
			return fmt.Errorf("datalog: invalid aggSelection for %q", pr.Pred)
		}
	}
	return nil
}

func validateRule(r *Rule) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("datalog: line %d: rule %s: %s", r.Line, ruleName(r), fmt.Sprintf(format, args...))
	}

	if len(r.Body) == 0 {
		return fail("empty body")
	}
	atomCount := 0
	bound := map[string]bool{}

	// Context variable (SeNDlog) is bound to the local principal.
	if r.Context != nil {
		if v, ok := r.Context.(Variable); ok {
			if v.Blank() {
				return fail("context cannot be the blank variable")
			}
			bound[v.Name] = true
		}
	}

	// Pass 1: atoms bind their variables regardless of position.
	for _, l := range r.Body {
		if l.Kind != LitAtom {
			continue
		}
		atomCount++
		a := l.Atom
		if r.Context == nil {
			// NDlog rule.
			if a.Says != nil {
				return fail("says requires an At context (SeNDlog)")
			}
			if a.LocIdx < 0 {
				return fail("NDlog body atom %s needs a location specifier", a)
			}
		} else if a.LocIdx >= 0 {
			return fail("SeNDlog body atom %s cannot carry a location specifier", a)
		}
		for _, t := range a.Args {
			if v, ok := t.(Variable); ok && !v.Blank() {
				bound[v.Name] = true
			}
		}
		if a.Says != nil {
			if v, ok := a.Says.(Variable); ok {
				if v.Blank() {
					return fail("says principal cannot be blank")
				}
				bound[v.Name] = true
			}
		}
	}
	if atomCount == 0 {
		return fail("body needs at least one atom")
	}

	// Pass 2: assignments and conditions in order.
	for _, l := range r.Body {
		switch l.Kind {
		case LitAssign:
			for _, v := range exprVars(l.Expr) {
				if !bound[v] {
					return fail("variable %s used before binding in %s", v, l)
				}
			}
			bound[l.AssignVar] = true
		case LitCond:
			for _, v := range exprVars(l.Expr) {
				if !bound[v] {
					return fail("variable %s used before binding in condition %s", v, l)
				}
			}
		}
	}

	// Head checks.
	h := &r.Head
	if r.Context == nil {
		if h.LocIdx < 0 {
			return fail("NDlog head needs a location specifier")
		}
		if h.Dest != nil {
			return fail("NDlog heads use @ on an argument, not a destination suffix")
		}
	} else if h.LocIdx >= 0 {
		return fail("SeNDlog heads use a destination suffix (@Node), not argument location specifiers")
	}
	for i, t := range h.Args {
		v, ok := t.(Variable)
		if !ok {
			continue
		}
		if v.Blank() {
			return fail("blank variable in head")
		}
		if i == h.AggIdx && v.Name == "*" {
			continue // count<*>
		}
		if !bound[v.Name] {
			return fail("head variable %s is unbound", v.Name)
		}
	}
	if h.Dest != nil {
		if v, ok := h.Dest.(Variable); ok {
			if v.Blank() || !bound[v.Name] {
				return fail("destination variable %s is unbound", v.Name)
			}
		}
	}
	if h.HasAgg() {
		if h.AggFunc == AggNone {
			return fail("aggregate without function")
		}
		if h.AggIdx >= len(h.Args) {
			return fail("aggregate index out of range")
		}
	}
	return nil
}

func ruleName(r *Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return r.Head.Pred
}

// exprVars returns the variables referenced by e, in first-appearance
// order.
func exprVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var rec func(Expr)
	rec = func(e Expr) {
		switch x := e.(type) {
		case VarExpr:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case BinExpr:
			rec(x.L)
			rec(x.R)
		case UnaryExpr:
			rec(x.X)
		case CallExpr:
			for _, a := range x.Args {
				rec(a)
			}
		}
	}
	rec(e)
	return out
}

// atomVars returns the variables of a body atom (arguments and says term),
// in first-appearance order.
func atomVars(a *BodyAtom) []string {
	var out []string
	seen := map[string]bool{}
	add := func(t Term) {
		if v, ok := t.(Variable); ok && !v.Blank() && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	}
	for _, t := range a.Args {
		add(t)
	}
	if a.Says != nil {
		add(a.Says)
	}
	return out
}

// headVars returns the variables of a head atom, in first-appearance
// order, excluding the count<*> placeholder.
func headVars(h *Atom) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && name != "*" && name != "_" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, t := range h.Args {
		if v, ok := t.(Variable); ok {
			add(v.Name)
		}
	}
	if h.Dest != nil {
		if v, ok := h.Dest.(Variable); ok {
			add(v.Name)
		}
	}
	return out
}
