// Package datalog implements the NDlog and SeNDlog languages of the paper
// (§2.1, §2.2): lexer, parser, AST, program analysis (safety checking), and
// the localization rewrite that turns rules spanning several nodes into
// rules whose bodies execute at a single location.
//
// NDlog example (paper §2.1):
//
//	r1 reachable(@S,D) :- link(@S,D).
//	r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
//
// SeNDlog example (paper §2.2):
//
//	At S:
//	  s1 reachable(S,D) :- link(S,D).
//	  s2 linkD(D,S)@D :- link(S,D).
//	  s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
package datalog

import (
	"fmt"
	"strings"

	"provnet/internal/data"
)

// Program is a parsed NDlog/SeNDlog program.
type Program struct {
	// Rules in source order (after parsing; Localize may add more).
	Rules []*Rule
	// Facts are ground base tuples declared in the program, each placed at
	// a node.
	Facts []Fact
	// Materialize declarations, keyed by predicate.
	Materialize map[string]*MaterializeDecl
	// Prunes are aggregate-selection pragmas.
	Prunes []*PruneDecl
}

// MaterializeDecl mirrors P2's materialize(pred, ttl, maxSize, keys(...))
// statement: it declares table properties for a predicate.
type MaterializeDecl struct {
	Pred string
	// TTLSeconds is the soft-state lifetime; <0 means infinity.
	TTLSeconds float64
	// MaxSize bounds the table (<0 means unbounded).
	MaxSize int
	// KeyCols are 1-based attribute positions forming the primary key;
	// empty means all columns.
	KeyCols []int
}

// PruneDecl is the aggregate-selection optimization pragma
// aggSelection(pred, keys(...), min, col): only tuples that improve the
// current minimum of column col within their key group are stored and
// propagated. This is the standard declarative-networking optimization that
// keeps Best-Path polynomial.
type PruneDecl struct {
	Pred string
	// KeyCols are 1-based group columns.
	KeyCols []int
	// Func is the selection aggregate (AggMin or AggMax).
	Func AggFunc
	// Col is the 1-based value column.
	Col int
}

// Fact is a ground tuple placed at a node.
type Fact struct {
	// Node is the placement: the location-specifier constant of the tuple.
	Node string
	// Tuple is the base tuple (without asserter).
	Tuple data.Tuple
	// Line is the source line, for error messages.
	Line int
}

// Rule is one NDlog or SeNDlog rule.
type Rule struct {
	// Label is the rule name, e.g. "r1" ("" if unnamed).
	Label string
	// Context is the SeNDlog principal context term ("At S:"); nil for
	// plain NDlog rules.
	Context Term
	// Head is the rule head.
	Head Atom
	// Body is the ordered list of body literals.
	Body []Literal
	// Line is the source line.
	Line int
}

// IsSeNDlog reports whether the rule was declared inside an At block.
func (r *Rule) IsSeNDlog() bool { return r.Context != nil }

// Atom is a predicate applied to terms, possibly with a location specifier
// (@ on an argument, NDlog style), a destination (trailing @Term, SeNDlog
// style), and at most one aggregate argument in rule heads.
type Atom struct {
	Pred string
	Args []Term
	// LocIdx is the index of the argument carrying the @ location
	// specifier, or -1.
	LocIdx int
	// Dest is the SeNDlog head destination (p(...)@Z), or nil.
	Dest Term
	// AggIdx is the index of the aggregated argument in a head atom, or
	// -1; AggFunc is its aggregate.
	AggIdx  int
	AggFunc AggFunc
}

// HasAgg reports whether the head atom contains an aggregate.
func (a *Atom) HasAgg() bool { return a.AggIdx >= 0 }

// AggFunc enumerates head aggregates.
type AggFunc uint8

// Supported aggregates.
const (
	AggNone AggFunc = iota
	AggMin
	AggMax
	AggCount
	AggSum
)

// String returns the NDlog spelling of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	default:
		return "none"
	}
}

// LiteralKind discriminates body literals.
type LiteralKind uint8

// Body literal kinds: a predicate atom, an assignment (X = expr binding a
// new variable), or a boolean condition.
const (
	LitAtom LiteralKind = iota
	LitAssign
	LitCond
)

// Literal is one element of a rule body.
type Literal struct {
	Kind LiteralKind
	// Atom fields (Kind == LitAtom).
	Atom *BodyAtom
	// Assign fields (Kind == LitAssign): Var := Expr.
	AssignVar string
	Expr      Expr // also the condition expression for LitCond
}

// BodyAtom is a predicate occurrence in a rule body, optionally asserted
// via says and optionally located (NDlog).
type BodyAtom struct {
	Pred string
	Args []Term
	// LocIdx is the @ argument index, or -1 (SeNDlog bodies are local).
	LocIdx int
	// Says is the asserting-principal term of "P says pred(...)", or nil.
	Says Term
}

// Term is a pattern element in an atom: a variable or a constant.
type Term interface {
	isTerm()
	String() string
}

// Variable is a term bound by matching ("S", "D"). The blank variable "_"
// matches anything without binding.
type Variable struct{ Name string }

func (Variable) isTerm() {}

// String returns the variable name.
func (v Variable) String() string { return v.Name }

// Blank reports whether v is the anonymous variable.
func (v Variable) Blank() bool { return v.Name == "_" }

// Constant is a literal term.
type Constant struct{ Value data.Value }

func (Constant) isTerm() {}

// String renders the constant.
func (c Constant) String() string { return c.Value.String() }

// Expr is an expression used in assignments and conditions.
type Expr interface {
	isExpr()
	String() string
}

// ConstExpr is a literal.
type ConstExpr struct{ Value data.Value }

func (ConstExpr) isExpr() {}

// String renders the literal.
func (e ConstExpr) String() string { return e.Value.String() }

// VarExpr references a variable.
type VarExpr struct{ Name string }

func (VarExpr) isExpr() {}

// String returns the variable name.
func (e VarExpr) String() string { return e.Name }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // + - * / == != < <= > >= && ||
	L, R Expr
}

func (BinExpr) isExpr() {}

// String renders the operation parenthesised.
func (e BinExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// UnaryExpr is a unary operation (negation or logical not).
type UnaryExpr struct {
	Op string // - !
	X  Expr
}

func (UnaryExpr) isExpr() {}

// String renders the operation.
func (e UnaryExpr) String() string { return e.Op + e.X.String() }

// CallExpr is a builtin function call, e.g. f_concat(S, P).
type CallExpr struct {
	Name string
	Args []Expr
}

func (CallExpr) isExpr() {}

// String renders the call.
func (e CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// --- pretty printing ---

// String renders the atom in NDlog syntax.
func (a *Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i == a.LocIdx {
			sb.WriteByte('@')
		}
		if i == a.AggIdx {
			sb.WriteString(a.AggFunc.String())
			sb.WriteByte('<')
			sb.WriteString(t.String())
			sb.WriteByte('>')
		} else {
			sb.WriteString(t.String())
		}
	}
	sb.WriteByte(')')
	if a.Dest != nil {
		sb.WriteByte('@')
		sb.WriteString(a.Dest.String())
	}
	return sb.String()
}

// String renders the body atom in NDlog syntax.
func (a *BodyAtom) String() string {
	var sb strings.Builder
	if a.Says != nil {
		sb.WriteString(a.Says.String())
		sb.WriteString(" says ")
	}
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i == a.LocIdx {
			sb.WriteByte('@')
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// String renders the literal.
func (l Literal) String() string {
	switch l.Kind {
	case LitAtom:
		return l.Atom.String()
	case LitAssign:
		return l.AssignVar + " = " + l.Expr.String()
	default:
		return l.Expr.String()
	}
}

// String renders the rule in NDlog/SeNDlog syntax.
func (r *Rule) String() string {
	var sb strings.Builder
	if r.Label != "" {
		sb.WriteString(r.Label)
		sb.WriteByte(' ')
	}
	sb.WriteString(r.Head.String())
	sb.WriteString(" :- ")
	for i, l := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(l.String())
	}
	sb.WriteByte('.')
	return sb.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	var ctx Term
	first := true
	for _, r := range p.Rules {
		if r.Context != nil && (ctx == nil || ctx.String() != r.Context.String()) {
			if !first {
				sb.WriteByte('\n')
			}
			fmt.Fprintf(&sb, "At %s:\n", r.Context)
			ctx = r.Context
		}
		if r.Context != nil {
			sb.WriteString("  ")
		}
		sb.WriteString(r.String())
		sb.WriteByte('\n')
		first = false
	}
	return sb.String()
}

// PredicatesUsed returns the sorted set of predicate names appearing in the
// program (heads, bodies and facts).
func (p *Program) PredicatesUsed() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
		for _, l := range r.Body {
			if l.Kind == LitAtom {
				set[l.Atom.Pred] = true
			}
		}
	}
	for _, f := range p.Facts {
		set[f.Tuple.Pred] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
