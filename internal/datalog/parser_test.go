package datalog

import (
	"strings"
	"testing"

	"provnet/internal/data"
)

const reachableNDlog = `
r1 reachable(@S,D) :- link(@S,D).
r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
`

const reachableSeNDlog = `
At S:
  s1 reachable(S,D) :- link(S,D).
  s2 linkD(D,S)@D :- link(S,D).
  s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
`

func TestParseReachableNDlog(t *testing.T) {
	prog, err := Parse(reachableNDlog)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	r1 := prog.Rules[0]
	if r1.Label != "r1" || r1.Head.Pred != "reachable" || r1.Head.LocIdx != 0 {
		t.Errorf("r1 = %s", r1)
	}
	if r1.IsSeNDlog() {
		t.Error("r1 should be NDlog")
	}
	if len(r1.Body) != 1 || r1.Body[0].Atom.Pred != "link" || r1.Body[0].Atom.LocIdx != 0 {
		t.Errorf("r1 body = %v", r1.Body)
	}
	r2 := prog.Rules[1]
	if len(r2.Body) != 2 {
		t.Fatalf("r2 body = %v", r2.Body)
	}
	if got := r2.String(); got != "r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D)." {
		t.Errorf("r2 renders as %q", got)
	}
	if err := Validate(prog); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseReachableSeNDlog(t *testing.T) {
	prog, err := Parse(reachableSeNDlog)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	for _, r := range prog.Rules {
		if !r.IsSeNDlog() {
			t.Errorf("rule %s should carry the At context", r.Label)
		}
		if v, ok := r.Context.(Variable); !ok || v.Name != "S" {
			t.Errorf("rule %s context = %v", r.Label, r.Context)
		}
	}
	s2 := prog.Rules[1]
	if s2.Head.Dest == nil {
		t.Fatal("s2 head needs destination @D")
	}
	if v, ok := s2.Head.Dest.(Variable); !ok || v.Name != "D" {
		t.Errorf("s2 dest = %v", s2.Head.Dest)
	}
	s3 := prog.Rules[2]
	if len(s3.Body) != 2 {
		t.Fatalf("s3 body = %v", s3.Body)
	}
	if s3.Body[0].Atom.Says == nil || s3.Body[1].Atom.Says == nil {
		t.Fatal("s3 body atoms must carry says")
	}
	if v, ok := s3.Body[0].Atom.Says.(Variable); !ok || v.Name != "Z" {
		t.Errorf("s3 first says = %v", s3.Body[0].Atom.Says)
	}
	if err := Validate(prog); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseFacts(t *testing.T) {
	prog, err := Parse(`
link(@a, b, 1).
link(@a, c, 5).
link(@b, c, 1).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 3 {
		t.Fatalf("facts = %d", len(prog.Facts))
	}
	f := prog.Facts[0]
	if f.Node != "a" || f.Tuple.Pred != "link" {
		t.Errorf("fact = %+v", f)
	}
	if !f.Tuple.Args[2].Equal(data.Int(1)) {
		t.Errorf("fact cost = %v", f.Tuple.Args[2])
	}
}

func TestParseFactInContext(t *testing.T) {
	prog, err := Parse(`
At a:
  link(a, b).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 1 || prog.Facts[0].Node != "a" {
		t.Fatalf("facts = %+v", prog.Facts)
	}
}

func TestParseMaterialize(t *testing.T) {
	prog, err := Parse(`
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, 30, 1000, keys(1,2,3)).
`)
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Materialize["link"]
	if l == nil || l.TTLSeconds >= 0 || l.MaxSize >= 0 || len(l.KeyCols) != 2 {
		t.Errorf("link decl = %+v", l)
	}
	p := prog.Materialize["path"]
	if p == nil || p.TTLSeconds != 30 || p.MaxSize != 1000 || len(p.KeyCols) != 3 {
		t.Errorf("path decl = %+v", p)
	}
}

func TestParseAggSelection(t *testing.T) {
	prog, err := Parse(`aggSelection(path, keys(1,2), min, 5).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Prunes) != 1 {
		t.Fatalf("prunes = %v", prog.Prunes)
	}
	pr := prog.Prunes[0]
	if pr.Pred != "path" || pr.Func != AggMin || pr.Col != 5 || len(pr.KeyCols) != 2 {
		t.Errorf("prune = %+v", pr)
	}
}

func TestParseAggregateHead(t *testing.T) {
	prog, err := Parse(`sp3 spCost(@S,D,min<C>) :- path(@S,D,Z,P,C).`)
	if err != nil {
		t.Fatal(err)
	}
	h := prog.Rules[0].Head
	if !h.HasAgg() || h.AggFunc != AggMin || h.AggIdx != 2 {
		t.Errorf("head = %+v", h)
	}
	if err := Validate(prog); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// count<*>
	prog2, err := Parse(`c1 total(@S, count<*>) :- path(@S,D,Z,P,C).`)
	if err != nil {
		t.Fatal(err)
	}
	h2 := prog2.Rules[0].Head
	if !h2.HasAgg() || h2.AggFunc != AggCount {
		t.Errorf("count head = %+v", h2)
	}
	if err := Validate(prog2); err != nil {
		t.Errorf("Validate count<*>: %v", err)
	}
}

func TestParseBestPath(t *testing.T) {
	prog, err := Parse(`
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,4)).
aggSelection(path, keys(1,2), min, 5).

sp1 path(@S,D,D,P,C) :- link(@S,D,C), P = f_init(S,D).
sp2 path(@S,D,Z,P,C) :- link(@S,Z,C1), path(@Z,D,W,P2,C2), C = C1 + C2,
    f_member(P2,S) == 0, P = f_concat(S,P2).
sp3 spCost(@S,D,min<C>) :- path(@S,D,Z,P,C).
sp4 bestPath(@S,D,P,C) :- spCost(@S,D,C), path(@S,D,Z,P,C).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	sp1 := prog.Rules[0]
	if len(sp1.Body) != 2 || sp1.Body[1].Kind != LitAssign || sp1.Body[1].AssignVar != "P" {
		t.Errorf("sp1 body = %v", sp1.Body)
	}
	sp2 := prog.Rules[1]
	kinds := []LiteralKind{LitAtom, LitAtom, LitAssign, LitCond, LitAssign}
	if len(sp2.Body) != len(kinds) {
		t.Fatalf("sp2 body = %v", sp2.Body)
	}
	for i, k := range kinds {
		if sp2.Body[i].Kind != k {
			t.Errorf("sp2 body[%d] kind = %d, want %d (%s)", i, sp2.Body[i].Kind, k, sp2.Body[i])
		}
	}
	if err := Validate(prog); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseExpressions(t *testing.T) {
	prog, err := Parse(`r x(@S,C) :- y(@S,A,B), C = (A + B) * 2 - 1, A * 2 >= B || A == 0.`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Rules[0].Body
	if body[1].Kind != LitAssign {
		t.Fatalf("expected assignment, got %s", body[1])
	}
	if got := body[1].Expr.String(); got != "(((A + B) * 2) - 1)" {
		t.Errorf("assign expr = %q", got)
	}
	if body[2].Kind != LitCond {
		t.Fatalf("expected condition, got %s", body[2])
	}
	if got := body[2].Expr.String(); got != "(((A * 2) >= B) || (A == 0))" {
		t.Errorf("cond expr = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	prog, err := Parse(`
// line comment
/* block
   comment */
% p2-style comment
r1 reachable(@S,D) :- link(@S,D). // trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
}

func TestParseListLiteral(t *testing.T) {
	prog, err := Parse(`path(@a, c, [a, b, c], 2).`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Facts[0]
	want := data.Strings("a", "b", "c")
	if !f.Tuple.Args[2].Equal(want) {
		t.Errorf("list = %v", f.Tuple.Args[2])
	}
}

func TestParseStringAndNegativeConstants(t *testing.T) {
	prog, err := Parse(`metric(@a, "some label", -5).`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Facts[0]
	if !f.Tuple.Args[1].Equal(data.Str("some label")) || !f.Tuple.Args[2].Equal(data.Int(-5)) {
		t.Errorf("fact = %v", f.Tuple)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`r1 reachable(@S,D) :- link(@S,D)`, "expected"},          // missing period
		{`r1 reachable(@S,D :- link(@S,D).`, "expected"},          // bad paren
		{`reachable(@S,D).`, "constants"},                         // non-ground fact
		{`"unterminated`, "unterminated string"},                  // lexer
		{`/* unterminated`, "unterminated block comment"},         // lexer
		{`r1 p(@@S) :- q(@S).`, "expected term"},                  // double @
		{`r1 p(@S, min<C>, max<D>) :- q(@S,C,D).`, "at most one"}, // two aggs
		{`materialize(link, x, infinity, keys(1)).`, "ttl"},
		{`aggSelection(path, keys(1), sum, 5).`, "min/max"},
		{`r1 p(X) :- q(X).`, "$$$fact"}, // placeholder replaced below
	}
	for i, c := range cases {
		if c.wantSub == "$$$fact" {
			continue // covered by Validate tests
		}
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("case %d: expected error for %q", i, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.wantSub)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("\n\nr1 p(@S :- q(@S).")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected SyntaxError, got %T: %v", err, err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3", se.Line)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("not a program @@@")
}

func TestProgramString(t *testing.T) {
	prog := MustParse(reachableSeNDlog)
	s := prog.String()
	if !strings.Contains(s, "At S:") {
		t.Errorf("program string missing context:\n%s", s)
	}
	// Re-parse the printed program: it must round trip.
	prog2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if len(prog2.Rules) != len(prog.Rules) {
		t.Errorf("round trip rules = %d, want %d", len(prog2.Rules), len(prog.Rules))
	}
}

func TestPredicatesUsed(t *testing.T) {
	prog := MustParse(reachableNDlog + "\nlink(@a,b).\n")
	got := prog.PredicatesUsed()
	want := []string{"link", "reachable"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("PredicatesUsed = %v", got)
	}
}
