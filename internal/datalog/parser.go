package datalog

import (
	"fmt"
	"strings"

	"provnet/internal/data"
)

// Parse parses an NDlog/SeNDlog program from source text.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Materialize: make(map[string]*MaterializeDecl)}
	for !p.at(tokEOF) {
		if err := p.clause(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
	// ctx is the current SeNDlog At-context (nil outside At blocks).
	ctx Term
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(kind tokenKind) bool { return p.cur().kind == kind }

func (p *parser) atPunct(text string) bool {
	return p.cur().kind == tokPunct && p.cur().text == text
}

func (p *parser) advance() token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) acceptPunct(text string) bool {
	if p.atPunct(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		return p.errorf("expected %q, found %s", text, p.cur())
	}
	return nil
}

// clause parses one top-level construct.
func (p *parser) clause(prog *Program) error {
	t := p.cur()
	// At <term> : — context switch.
	if t.kind == tokVariable && t.text == "At" || t.kind == tokIdent && t.text == "at" {
		return p.atBlock()
	}
	if t.kind == tokIdent {
		switch t.text {
		case "materialize":
			return p.materialize(prog)
		case "aggSelection":
			return p.aggSelection(prog)
		}
	}
	return p.ruleOrFact(prog)
}

// atBlock parses "At S:" and switches the parser context.
func (p *parser) atBlock() error {
	p.advance() // At
	term, err := p.term()
	if err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	p.ctx = term
	return nil
}

// materialize parses materialize(pred, ttl, maxSize, keys(...)).
func (p *parser) materialize(prog *Program) error {
	p.advance() // materialize
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if !p.at(tokIdent) {
		return p.errorf("expected predicate name, found %s", p.cur())
	}
	pred := p.advance().text
	if err := p.expectPunct(","); err != nil {
		return err
	}
	ttl, err := p.ttlValue()
	if err != nil {
		return err
	}
	if err := p.expectPunct(","); err != nil {
		return err
	}
	size, err := p.sizeValue()
	if err != nil {
		return err
	}
	if err := p.expectPunct(","); err != nil {
		return err
	}
	cols, err := p.keysClause()
	if err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectPunct("."); err != nil {
		return err
	}
	prog.Materialize[pred] = &MaterializeDecl{Pred: pred, TTLSeconds: ttl, MaxSize: size, KeyCols: cols}
	return nil
}

func (p *parser) ttlValue() (float64, error) {
	t := p.cur()
	if t.kind == tokIdent && t.text == "infinity" {
		p.advance()
		return -1, nil
	}
	if t.kind == tokNumber {
		p.advance()
		if t.isFloat {
			return t.floatVal, nil
		}
		return float64(t.intVal), nil
	}
	return 0, p.errorf("expected ttl (number or infinity), found %s", t)
}

func (p *parser) sizeValue() (int, error) {
	t := p.cur()
	if t.kind == tokIdent && t.text == "infinity" {
		p.advance()
		return -1, nil
	}
	if t.kind == tokNumber && !t.isFloat {
		p.advance()
		return int(t.intVal), nil
	}
	return 0, p.errorf("expected size (integer or infinity), found %s", t)
}

// keysClause parses keys(1,2,...).
func (p *parser) keysClause() ([]int, error) {
	if !(p.at(tokIdent) && p.cur().text == "keys") {
		return nil, p.errorf("expected keys(...), found %s", p.cur())
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []int
	for !p.atPunct(")") {
		t := p.cur()
		if t.kind != tokNumber || t.isFloat || t.intVal < 1 {
			return nil, p.errorf("expected positive column index, found %s", t)
		}
		p.advance()
		cols = append(cols, int(t.intVal))
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

// aggSelection parses aggSelection(pred, keys(...), min, col).
func (p *parser) aggSelection(prog *Program) error {
	p.advance() // aggSelection
	if err := p.expectPunct("("); err != nil {
		return err
	}
	if !p.at(tokIdent) {
		return p.errorf("expected predicate name, found %s", p.cur())
	}
	pred := p.advance().text
	if err := p.expectPunct(","); err != nil {
		return err
	}
	cols, err := p.keysClause()
	if err != nil {
		return err
	}
	if err := p.expectPunct(","); err != nil {
		return err
	}
	if !p.at(tokIdent) {
		return p.errorf("expected aggregate name, found %s", p.cur())
	}
	var fn AggFunc
	switch p.cur().text {
	case "min":
		fn = AggMin
	case "max":
		fn = AggMax
	default:
		return p.errorf("aggSelection supports min/max, found %q", p.cur().text)
	}
	p.advance()
	if err := p.expectPunct(","); err != nil {
		return err
	}
	t := p.cur()
	if t.kind != tokNumber || t.isFloat || t.intVal < 1 {
		return p.errorf("expected value column index, found %s", t)
	}
	p.advance()
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectPunct("."); err != nil {
		return err
	}
	prog.Prunes = append(prog.Prunes, &PruneDecl{Pred: pred, KeyCols: cols, Func: fn, Col: int(t.intVal)})
	return nil
}

// ruleOrFact parses either "label head :- body." / "head :- body." or a
// ground fact "pred(args)."
func (p *parser) ruleOrFact(prog *Program) error {
	line := p.cur().line
	label := ""
	// A label is an identifier immediately followed by another identifier
	// (the head predicate).
	if p.at(tokIdent) && p.peek().kind == tokIdent {
		label = p.advance().text
	}
	head, err := p.headAtom()
	if err != nil {
		return err
	}
	if p.atPunct(".") {
		p.advance()
		// A fact.
		if label != "" {
			return p.errorf("facts cannot carry rule labels")
		}
		return p.addFact(prog, head, line)
	}
	if err := p.expectPunct(":-"); err != nil {
		return err
	}
	var body []Literal
	for {
		lit, err := p.literal()
		if err != nil {
			return err
		}
		body = append(body, lit)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct("."); err != nil {
		return err
	}
	prog.Rules = append(prog.Rules, &Rule{
		Label:   label,
		Context: p.ctx,
		Head:    head,
		Body:    body,
		Line:    line,
	})
	return nil
}

func (p *parser) addFact(prog *Program, head Atom, line int) error {
	if head.HasAgg() {
		return p.errorf("facts cannot contain aggregates")
	}
	args := make([]data.Value, len(head.Args))
	for i, t := range head.Args {
		c, ok := t.(Constant)
		if !ok {
			return p.errorf("fact arguments must be constants, found %s", t)
		}
		args[i] = c.Value
	}
	node := ""
	switch {
	case head.LocIdx >= 0:
		if args[head.LocIdx].Kind != data.KindString {
			return p.errorf("fact location specifier must be a node name")
		}
		node = args[head.LocIdx].Str
	case head.Dest != nil:
		c, ok := head.Dest.(Constant)
		if !ok || c.Value.Kind != data.KindString {
			return p.errorf("fact destination must be a node name")
		}
		node = c.Value.Str
	case p.ctx != nil:
		c, ok := p.ctx.(Constant)
		if !ok {
			return p.errorf("facts inside a variable At-context need an explicit location")
		}
		node = c.Value.Str
	default:
		return p.errorf("fact needs a location specifier (@node)")
	}
	prog.Facts = append(prog.Facts, Fact{
		Node:  node,
		Tuple: data.Tuple{Pred: head.Pred, Args: args},
		Line:  line,
	})
	return nil
}

// headAtom parses pred(args...)[@Dest] with optional @ location and one
// optional aggregate argument.
func (p *parser) headAtom() (Atom, error) {
	if !p.at(tokIdent) {
		return Atom{}, p.errorf("expected predicate name, found %s", p.cur())
	}
	a := Atom{Pred: p.advance().text, LocIdx: -1, AggIdx: -1}
	if err := p.expectPunct("("); err != nil {
		return Atom{}, err
	}
	for !p.atPunct(")") {
		loc := p.acceptPunct("@")
		// Aggregate argument: min/max/count/sum '<' var '>' .
		if p.at(tokIdent) && isAggName(p.cur().text) && p.peek().kind == tokPunct && p.peek().text == "<" {
			if a.AggIdx >= 0 {
				return Atom{}, p.errorf("at most one aggregate per head")
			}
			fn := aggByName(p.cur().text)
			p.advance() // agg name
			p.advance() // <
			var v Term
			if p.atPunct("*") {
				p.advance()
				v = Variable{Name: "*"}
			} else {
				t, err := p.term()
				if err != nil {
					return Atom{}, err
				}
				v = t
			}
			if err := p.expectPunct(">"); err != nil {
				return Atom{}, err
			}
			a.AggIdx = len(a.Args)
			a.AggFunc = fn
			a.Args = append(a.Args, v)
		} else {
			t, err := p.term()
			if err != nil {
				return Atom{}, err
			}
			a.Args = append(a.Args, t)
		}
		if loc {
			if a.LocIdx >= 0 {
				return Atom{}, p.errorf("duplicate location specifier")
			}
			a.LocIdx = len(a.Args) - 1
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return Atom{}, err
	}
	if p.acceptPunct("@") {
		d, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		a.Dest = d
	}
	return a, nil
}

func isAggName(s string) bool {
	switch s {
	case "min", "max", "count", "sum":
		return true
	}
	return false
}

func aggByName(s string) AggFunc {
	switch s {
	case "min":
		return AggMin
	case "max":
		return AggMax
	case "count":
		return AggCount
	case "sum":
		return AggSum
	}
	return AggNone
}

// literal parses one body literal: an atom (optionally "P says"), an
// assignment Var = expr, or a boolean condition.
func (p *parser) literal() (Literal, error) {
	t := p.cur()
	// "term says pred(...)": variable-or-ident followed by the keyword.
	if (t.kind == tokVariable || t.kind == tokIdent) && p.peek().kind == tokIdent && p.peek().text == "says" {
		var says Term
		if t.kind == tokVariable {
			says = Variable{Name: t.text}
		} else {
			says = Constant{Value: data.Str(t.text)}
		}
		p.advance() // principal
		p.advance() // says
		atom, err := p.bodyAtom()
		if err != nil {
			return Literal{}, err
		}
		atom.Says = says
		return Literal{Kind: LitAtom, Atom: atom}, nil
	}
	// Plain atom: identifier followed by "(" — unless it is a builtin
	// function (f_-prefixed), which starts a condition expression.
	if t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "(" && !strings.HasPrefix(t.text, "f_") {
		atom, err := p.bodyAtom()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Kind: LitAtom, Atom: atom}, nil
	}
	// Assignment: Variable = expr or Variable := expr.
	if t.kind == tokVariable && p.peek().kind == tokPunct && (p.peek().text == "=" || p.peek().text == ":=") {
		name := p.advance().text
		p.advance() // = or :=
		e, err := p.expr()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Kind: LitAssign, AssignVar: name, Expr: e}, nil
	}
	// Otherwise a boolean condition expression.
	e, err := p.expr()
	if err != nil {
		return Literal{}, err
	}
	return Literal{Kind: LitCond, Expr: e}, nil
}

// bodyAtom parses pred(args...) with optional @ markers.
func (p *parser) bodyAtom() (*BodyAtom, error) {
	if !p.at(tokIdent) {
		return nil, p.errorf("expected predicate name, found %s", p.cur())
	}
	a := &BodyAtom{Pred: p.advance().text, LocIdx: -1}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		loc := p.acceptPunct("@")
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, t)
		if loc {
			if a.LocIdx >= 0 {
				return nil, p.errorf("duplicate location specifier")
			}
			a.LocIdx = len(a.Args) - 1
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return a, nil
}

// term parses a variable or constant.
func (p *parser) term() (Term, error) {
	t := p.cur()
	switch {
	case t.kind == tokVariable:
		p.advance()
		return Variable{Name: t.text}, nil
	case t.kind == tokIdent:
		// Lowercase identifiers denote symbolic string constants (node
		// names, principals), as in the paper's examples link(a,b).
		p.advance()
		return Constant{Value: data.Str(t.text)}, nil
	case t.kind == tokString:
		p.advance()
		return Constant{Value: data.Str(t.text)}, nil
	case t.kind == tokNumber:
		p.advance()
		if t.isFloat {
			return Constant{Value: data.Float(t.floatVal)}, nil
		}
		return Constant{Value: data.Int(t.intVal)}, nil
	case t.kind == tokPunct && t.text == "-" && p.peek().kind == tokNumber:
		p.advance()
		n := p.advance()
		if n.isFloat {
			return Constant{Value: data.Float(-n.floatVal)}, nil
		}
		return Constant{Value: data.Int(-n.intVal)}, nil
	case t.kind == tokPunct && t.text == "[":
		v, err := p.listConst()
		if err != nil {
			return nil, err
		}
		return Constant{Value: v}, nil
	default:
		return nil, p.errorf("expected term, found %s", t)
	}
}

// listConst parses a constant list literal [e1, e2, ...].
func (p *parser) listConst() (data.Value, error) {
	if err := p.expectPunct("["); err != nil {
		return data.Value{}, err
	}
	var elems []data.Value
	for !p.atPunct("]") {
		t, err := p.term()
		if err != nil {
			return data.Value{}, err
		}
		c, ok := t.(Constant)
		if !ok {
			return data.Value{}, p.errorf("list literals must be constant")
		}
		elems = append(elems, c.Value)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct("]"); err != nil {
		return data.Value{}, err
	}
	return data.List(elems...), nil
}

// --- expressions ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("||") {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("&&") {
		p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true, "=": true}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct && cmpOps[p.cur().text] {
		op := p.advance().text
		if op == "=" {
			op = "==" // tolerate single = in conditions
		}
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.advance().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") {
		op := p.advance().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.atPunct("-") || p.atPunct("!") {
		op := p.advance().text
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: op, X: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if t.isFloat {
			return ConstExpr{Value: data.Float(t.floatVal)}, nil
		}
		return ConstExpr{Value: data.Int(t.intVal)}, nil
	case t.kind == tokString:
		p.advance()
		return ConstExpr{Value: data.Str(t.text)}, nil
	case t.kind == tokVariable:
		p.advance()
		return VarExpr{Name: t.text}, nil
	case t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "(":
		name := p.advance().text
		p.advance() // (
		var args []Expr
		for !p.atPunct(")") {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return CallExpr{Name: name, Args: args}, nil
	case t.kind == tokIdent:
		// Symbolic constant.
		p.advance()
		return ConstExpr{Value: data.Str(t.text)}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "[":
		v, err := p.listConst()
		if err != nil {
			return nil, err
		}
		return ConstExpr{Value: v}, nil
	default:
		return nil, p.errorf("expected expression, found %s", t)
	}
}
