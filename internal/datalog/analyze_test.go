package datalog

import (
	"strings"
	"testing"
)

func mustRule(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return prog
}

func TestValidateAcceptsGoodPrograms(t *testing.T) {
	good := []string{
		reachableNDlog,
		reachableSeNDlog,
		`r p(@S,C) :- q(@S,A), C = A + 1.`,
		`r p(@S,min<C>) :- q(@S,C).`,
		`At alice: r p(D)@D :- q(D).`,
	}
	for _, src := range good {
		if err := Validate(mustRule(t, src)); err != nil {
			t.Errorf("Validate(%q): %v", src, err)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`r p(@S,X) :- q(@S,D).`, "unbound"},                    // head var unbound
		{`r p(@S,D) :- q(@S,A), C = X + 1.`, "before binding"},  // assign uses unbound
		{`r p(@S,D) :- q(@S,D), X > 3.`, "before binding"},      // cond uses unbound
		{`r p(@S,D) :- q(S,D).`, "location specifier"},          // NDlog body without @
		{`r p(S,D) :- q(@S,D).`, "location specifier"},          // NDlog head without @
		{`r p(@S,D) :- W says q(@S,D).`, "says requires"},       // says outside context
		{`At S: r p(S,D) :- q(@S,D).`, "cannot carry"},          // @ inside SeNDlog body
		{`At S: r p(@S,D) :- q(S,D).`, "destination suffix"},    // @ in SeNDlog head arg
		{`r p(@S,_) :- q(@S,D).`, "blank variable in head"},     // blank in head
		{`r p(@S,D) :- C = 1 + 2.`, "at least one atom"},        // no atoms
		{`At S: r p(S,D)@X :- q(S,D).`, "destination variable"}, // unbound dest
	}
	for i, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Errorf("case %d: parse error: %v", i, err)
			continue
		}
		err = Validate(prog)
		if err == nil {
			t.Errorf("case %d: Validate(%q) should fail", i, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.wantSub)
		}
	}
}

func TestExprVars(t *testing.T) {
	prog := mustRule(t, `r p(@S,C) :- q(@S,A,B), C = f_min(A, B + A) * 2.`)
	vars := exprVars(prog.Rules[0].Body[1].Expr)
	if len(vars) != 2 || vars[0] != "A" || vars[1] != "B" {
		t.Errorf("exprVars = %v", vars)
	}
}

func TestAtomVars(t *testing.T) {
	prog := mustRule(t, `At S: r p(S) :- W says q(S, X, X, _, 5).`)
	a := prog.Rules[0].Body[0].Atom
	vars := atomVars(a)
	// S, X (deduped), W — blank and constants excluded.
	if len(vars) != 3 || vars[0] != "S" || vars[1] != "X" || vars[2] != "W" {
		t.Errorf("atomVars = %v", vars)
	}
}

func TestHeadVars(t *testing.T) {
	prog := mustRule(t, `At S: r p(S, D, count<*>)@D :- q(S, D).`)
	vars := headVars(&prog.Rules[0].Head)
	if len(vars) != 2 || vars[0] != "S" || vars[1] != "D" {
		t.Errorf("headVars = %v", vars)
	}
}
