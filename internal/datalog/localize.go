package datalog

import (
	"fmt"
)

// Localize applies the localization rewrite of declarative networking (Loo
// et al., SIGMOD 2006; paper §2.2) to NDlog rules whose bodies span more
// than one location. The result is an equivalent program in which every
// rule body is evaluated at a single node, with intermediate "shipping"
// predicates carrying bindings between locations.
//
// The canonical example is the transitive-closure rule
//
//	r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
//
// whose body spans S and Z. It rewrites to
//
//	r2_l1 reachable_r2_tmp1(@Z,S) :- link(@S,Z).
//	r2    reachable(@S,D) :- reachable_r2_tmp1(@Z,S), reachable(@Z,D).
//
// where the first rule ships link bindings to Z and the second evaluates
// entirely at Z, exporting its head back to S.
//
// SeNDlog rules are localized by construction (bodies have no location
// specifiers) and pass through unchanged.
func Localize(prog *Program) (*Program, error) {
	out := &Program{
		Facts:       prog.Facts,
		Materialize: prog.Materialize,
		Prunes:      prog.Prunes,
	}
	for _, r := range prog.Rules {
		rules, err := localizeRule(r)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, rules...)
	}
	return out, nil
}

// locGroup is a run of body atoms sharing one location term.
type locGroup struct {
	key   string // canonical spelling of the location term
	term  Term
	atoms []*BodyAtom
}

func localizeRule(r *Rule) ([]*Rule, error) {
	if r.IsSeNDlog() {
		return []*Rule{r}, nil
	}
	var atoms []*BodyAtom
	var rest []Literal // assignments and conditions, kept in order
	for _, l := range r.Body {
		if l.Kind == LitAtom {
			atoms = append(atoms, l.Atom)
		} else {
			rest = append(rest, l)
		}
	}
	// Group atoms by location term, preserving first-appearance order.
	var groups []*locGroup
	byKey := map[string]*locGroup{}
	for _, a := range atoms {
		lt := a.Args[a.LocIdx]
		key := lt.String()
		g, ok := byKey[key]
		if !ok {
			g = &locGroup{key: key, term: lt}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.atoms = append(g.atoms, a)
	}
	if len(groups) <= 1 {
		return []*Rule{r}, nil
	}

	// Variables needed by groups i.. plus the rule tail and head.
	neededFrom := make([]map[string]bool, len(groups)+1)
	neededFrom[len(groups)] = map[string]bool{}
	for _, l := range rest {
		for _, v := range exprVars(l.Expr) {
			neededFrom[len(groups)][v] = true
		}
	}
	for _, v := range headVars(&r.Head) {
		neededFrom[len(groups)][v] = true
	}
	if v, ok := r.Head.Args[r.Head.LocIdx].(Variable); ok {
		neededFrom[len(groups)][v.Name] = true
	}
	for i := len(groups) - 1; i >= 0; i-- {
		m := map[string]bool{}
		for k := range neededFrom[i+1] {
			m[k] = true
		}
		for _, a := range groups[i].atoms {
			for _, v := range atomVars(a) {
				m[v] = true
			}
		}
		neededFrom[i] = m
	}

	var outRules []*Rule
	cur := groups[0].atoms
	accVars := []string{}
	accSet := map[string]bool{}
	addVars := func(vs []string) {
		for _, v := range vs {
			if !accSet[v] {
				accSet[v] = true
				accVars = append(accVars, v)
			}
		}
	}
	for _, a := range cur {
		addVars(atomVars(a))
	}

	for i := 1; i < len(groups); i++ {
		g := groups[i]
		// The shipping destination must be derivable from current
		// bindings.
		if v, ok := g.term.(Variable); ok && !accSet[v.Name] {
			return nil, fmt.Errorf("datalog: line %d: rule %s: cannot localize: location %s is not bound before it is needed", r.Line, ruleName(r), v.Name)
		}
		// Project the accumulated variables still needed downstream.
		var proj []string
		for _, v := range accVars {
			if neededFrom[i][v] {
				proj = append(proj, v)
			}
		}
		tmpPred := fmt.Sprintf("%s_%s_tmp%d", r.Head.Pred, ruleTag(r), i)
		// Shipping rule: tmp(@Dest, proj...) :- current atoms.
		tmpHeadArgs := make([]Term, 0, len(proj)+1)
		tmpHeadArgs = append(tmpHeadArgs, g.term)
		for _, v := range proj {
			tmpHeadArgs = append(tmpHeadArgs, Variable{Name: v})
		}
		ship := &Rule{
			Label: fmt.Sprintf("%s_l%d", ruleTag(r), i),
			Head:  Atom{Pred: tmpPred, Args: tmpHeadArgs, LocIdx: 0, AggIdx: -1},
			Line:  r.Line,
		}
		for _, a := range cur {
			ship.Body = append(ship.Body, Literal{Kind: LitAtom, Atom: a})
		}
		outRules = append(outRules, ship)

		// Continue with the shipped predicate joined against this group.
		tmpAtom := &BodyAtom{Pred: tmpPred, Args: tmpHeadArgs, LocIdx: 0}
		cur = append([]*BodyAtom{tmpAtom}, g.atoms...)
		addVars(proj)
		for _, a := range g.atoms {
			addVars(atomVars(a))
		}
	}

	final := &Rule{
		Label: r.Label,
		Head:  r.Head,
		Line:  r.Line,
	}
	for _, a := range cur {
		final.Body = append(final.Body, Literal{Kind: LitAtom, Atom: a})
	}
	final.Body = append(final.Body, rest...)
	outRules = append(outRules, final)
	return outRules, nil
}

func ruleTag(r *Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return fmt.Sprintf("line%d", r.Line)
}

// BodyLocations returns the distinct location-term spellings in a rule
// body (for tests and diagnostics).
func BodyLocations(r *Rule) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range r.Body {
		if l.Kind != LitAtom || l.Atom.LocIdx < 0 {
			continue
		}
		k := l.Atom.Args[l.Atom.LocIdx].String()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
