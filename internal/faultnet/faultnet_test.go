package faultnet

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"provnet/internal/netsim"
)

// newNet builds a faultnet over a fresh in-memory fabric with nodes a,b,c.
func newNet(cfg Config) (*Net, *netsim.Network) {
	inner := netsim.New()
	for _, n := range []string{"a", "b", "c"} {
		inner.AddNode(n)
	}
	return New(inner, cfg), inner
}

// drainAll collects every payload currently deliverable at to.
func drainAll(n *Net, to string) []string {
	var out []string
	for _, m := range n.Drain(to) {
		out = append(out, string(m.Payload))
	}
	return out
}

func TestPassthroughWithoutFaults(t *testing.T) {
	n, _ := newNet(Config{Seed: 1})
	for i := 0; i < 10; i++ {
		if err := n.Send("a", "b", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.PendingCount(); got != 10 {
		t.Fatalf("PendingCount = %d, want 10", got)
	}
	msgs := drainAll(n, "b")
	if len(msgs) != 10 {
		t.Fatalf("delivered %d, want 10: %v", len(msgs), msgs)
	}
	if f := n.Faults(); f != (Faults{}) {
		t.Fatalf("faults injected with zero probabilities: %+v", f)
	}
}

func TestDropLosesFramesForever(t *testing.T) {
	n, _ := newNet(Config{Seed: 7, Drop: 1})
	for i := 0; i < 5; i++ {
		if err := n.Send("a", "b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainAll(n, "b"); len(got) != 0 {
		t.Fatalf("dropped frames delivered: %v", got)
	}
	if f := n.Faults(); f.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", f.Dropped)
	}
	if got := n.PendingCount(); got != 0 {
		t.Fatalf("dropped frames still pending: %d", got)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	n, _ := newNet(Config{Seed: 7, Dup: 1})
	if err := n.Send("a", "b", []byte("twin")); err != nil {
		t.Fatal(err)
	}
	got := drainAll(n, "b")
	if len(got) != 2 || got[0] != "twin" || got[1] != "twin" {
		t.Fatalf("duplicated frame delivered as %v, want [twin twin]", got)
	}
	if f := n.Faults(); f.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", f.Duplicated)
	}
}

// TestDelayedFrameStaysInFlight is the property the termination protocol
// depends on: a frame in limbo is in flight (the sender is unacked) but
// invisible to receiver-side gauges (PendingCount/PendingFor/Drain) —
// exactly the window where an idle heuristic falsely fires and the
// credit protocol must not.
func TestDelayedFrameStaysInFlight(t *testing.T) {
	n, _ := newNet(Config{Seed: 3, Delay: 1, DelayOps: 4})
	if err := n.Send("a", "b", []byte("late")); err != nil {
		t.Fatal(err)
	}
	if f := n.Faults(); f.Delayed != 1 || f.Limbo != 1 {
		t.Fatalf("faults = %+v, want one delayed frame in limbo", f)
	}
	if got := n.PendingCount(); got != 0 {
		t.Fatalf("PendingCount = %d, want 0 (limbo is on the wire, not in an inbox)", got)
	}
	if got := n.PendingFor("b"); got != 0 {
		t.Fatalf("PendingFor(b) = %d, want 0 (limbo is on the wire, not in an inbox)", got)
	}
	if got := n.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1 (limbo counts on the sender side)", got)
	}
	// The hold is at most DelayOps+1 ops; tick past it.
	for i := 0; i < 6 && n.Faults().Limbo > 0; i++ {
		n.Tick()
	}
	got := drainAll(n, "b")
	if len(got) != 1 || got[0] != "late" {
		t.Fatalf("released frame delivered as %v, want [late]", got)
	}
	if n.PendingCount() != 0 || n.InFlight() != 0 {
		t.Fatalf("gauges nonzero after release: pending=%d inflight=%d", n.PendingCount(), n.InFlight())
	}
}

func TestReleaseAllFlushesLimbo(t *testing.T) {
	n, _ := newNet(Config{Seed: 3, Delay: 1, DelayOps: 1 << 20})
	for i := 0; i < 4; i++ {
		if err := n.Send("a", "b", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainAll(n, "b"); len(got) != 0 {
		t.Fatalf("limbo leaked before ReleaseAll: %v", got)
	}
	n.ReleaseAll()
	got := drainAll(n, "b")
	sort.Strings(got)
	if len(got) != 4 {
		t.Fatalf("ReleaseAll delivered %d frames, want 4: %v", len(got), got)
	}
	if f := n.Faults(); f.Limbo != 0 {
		t.Fatalf("limbo nonempty after ReleaseAll: %+v", f)
	}
}

// TestPartitionHoldsUntilHeal scripts an outage on the a->b link: frames
// sent during the window are held (still in flight), frames on other
// links pass, and healing releases the held frames.
func TestPartitionHoldsUntilHeal(t *testing.T) {
	n, _ := newNet(Config{
		Seed:       5,
		Partitions: []Partition{{Src: "a", Dst: "b", From: 0, To: 10}},
	})
	if err := n.Send("a", "b", []byte("held")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "c", []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if got := drainAll(n, "c"); len(got) != 1 || got[0] != "fine" {
		t.Fatalf("unpartitioned link delivered %v, want [fine]", got)
	}
	if got := drainAll(n, "b"); len(got) != 0 {
		t.Fatalf("partitioned frame leaked: %v", got)
	}
	if got := n.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1 (partition holds count)", got)
	}
	// Advance the op clock past the heal point.
	for i := 0; i < 12; i++ {
		n.Tick()
	}
	if got := drainAll(n, "b"); len(got) != 1 || got[0] != "held" {
		t.Fatalf("healed partition delivered %v, want [held]", got)
	}
}

// TestSeedReplay pins determinism: equal seeds and equal operation
// sequences produce identical fault schedules; a different seed does not.
func TestSeedReplay(t *testing.T) {
	run := func(seed int64) (Faults, []string) {
		n, _ := newNet(Config{Seed: seed, Drop: 0.3, Dup: 0.2, Delay: 0.2, DelayOps: 3})
		for i := 0; i < 40; i++ {
			if err := n.Send("a", "b", []byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		n.ReleaseAll()
		f := n.Faults()
		return f, drainAll(n, "b")
	}
	f1, d1 := run(42)
	f2, d2 := run(42)
	if f1 != f2 {
		t.Fatalf("same seed, different fault counts: %+v vs %+v", f1, f2)
	}
	if fmt.Sprint(d1) != fmt.Sprint(d2) {
		t.Fatalf("same seed, different deliveries:\n%v\n%v", d1, d2)
	}
	if f1.Dropped == 0 || f1.Duplicated == 0 || f1.Delayed == 0 {
		t.Fatalf("schedule exercised no faults: %+v", f1)
	}
	f3, _ := run(43)
	if f1 == f3 {
		t.Fatalf("different seeds produced identical schedules: %+v", f1)
	}
}

// TestNotifyFiresOnRelease pins the scheduler wake-up: releasing limbo
// frames must fire the registered arrival callback.
func TestNotifyFiresOnRelease(t *testing.T) {
	n, _ := newNet(Config{Seed: 3, Delay: 1, DelayOps: 1 << 20})
	fired := 0
	n.Notify(func() { fired++ })
	if err := n.Send("a", "b", []byte("wake")); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("notify fired before release")
	}
	n.ReleaseAll()
	if fired == 0 {
		t.Fatal("notify did not fire on ReleaseAll")
	}
}

// TestAutoReleaseDrainsLimbo pins the live-run escape hatch: with
// AutoReleaseEvery set, limbo drains without any explicit Tick.
func TestAutoReleaseDrainsLimbo(t *testing.T) {
	inner := netsim.New()
	inner.AddNode("a")
	inner.AddNode("b")
	n := New(inner, Config{Seed: 3, Delay: 1, DelayOps: 2, AutoReleaseEvery: time.Millisecond})
	defer n.Close()
	if err := n.Send("a", "b", []byte("late")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for inner.PendingFor("b") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("limbo never auto-released: %+v", n.Faults())
		}
		time.Sleep(time.Millisecond)
	}
	if got := drainAll(n, "b"); len(got) != 1 || got[0] != "late" {
		t.Fatalf("auto-released delivery = %v, want [late]", got)
	}
}

func TestStatsPassthroughAndReset(t *testing.T) {
	n, inner := newNet(Config{Seed: 1})
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.Messages != inner.Stats().Messages || s.Messages != 1 {
		t.Fatalf("stats passthrough broken: %+v", s)
	}
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 {
		t.Fatalf("ResetStats did not reach inner transport: %+v", s)
	}
}
