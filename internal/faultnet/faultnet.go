// Package faultnet is a deterministic fault-injecting wrapper around a
// transport: it drops, duplicates, delays, and partitions frames under
// a seeded RNG, so convergence and termination tests can script the
// network weather and replay it exactly. It satisfies core.Transport
// structurally (the same Send/Drain/Stats surface as internal/netsim
// and internal/nettcp) and wraps either.
//
// # Fault model
//
// Faults are decided per outbound frame at SendTagged time, in frame
// order, from one seeded RNG — the schedule is a pure function of the
// seed and the operation sequence, so a failing run replays from its
// seed (drive the scheduler with -sequential for a strictly
// reproducible operation order).
//
//   - drop: the frame is silently discarded above the transport. This
//     models loss before the reliability layer ever sees the frame, so
//     nothing retransmits it — only application-level soft-state
//     refresh can re-supply the contents.
//   - duplicate: the frame is forwarded twice. Over a raw transport
//     both copies surface; receivers must be idempotent (provnet
//     engines are: set semantics, per-sender support merging).
//   - delay: the frame is parked in limbo and released after a seeded
//     number of transport operations (any Send/Drain/Tick advances the
//     clock). Limbo frames count in InFlight but NOT in
//     PendingCount/PendingFor: a delayed frame is on the wire — the
//     sender has not been acknowledged, but no receiver inbox can see
//     it yet. A termination detector that consults InFlight refuses to
//     declare; a receiver-side idle heuristic sees silence and falsely
//     fires. That asymmetry is the point.
//   - partition: frames on a partitioned directed link are held and
//     released when the partition heals (modelling a connectivity
//     outage that TCP outlives), or dropped if the partition never
//     heals before Close.
//
// The operation clock only advances when the wrapper is used; an idle
// system keeps its limbo frozen, which is exactly what the
// no-false-fixpoint tests need (ReleaseAll unfreezes explicitly, Tick
// advances one step). Live deployments set Config.AutoReleaseEvery so
// a background ticker keeps the clock moving while the system idles.
package faultnet

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"provnet/internal/netsim"
)

// Transport is the surface faultnet wraps — structurally identical to
// core.Transport, so both netsim.Network and nettcp.Transport satisfy
// it without this package importing core.
type Transport interface {
	AddNode(name string)
	Send(from, to string, payload []byte) error
	SendTagged(from, to string, payload []byte, handshake bool) error
	Drain(to string) []netsim.Message
	PendingFor(to string) int
	PendingCount() int
	Stats() netsim.Stats
	ResetStats()
}

// Partition is one scripted directed-link outage, active while the
// operation clock is in [From, To): frames sent on matching links
// during that window are held until the clock reaches To.
type Partition struct {
	// Src/Dst match the directed link; empty matches any node.
	Src, Dst string
	// From/To bound the outage on the operation clock; To == 0 means
	// the partition never heals (held frames drop at Close).
	From, To int64
}

// Config configures the fault schedule.
type Config struct {
	// Seed seeds the fault RNG. Runs with equal seeds and equal
	// operation sequences inject identical faults.
	Seed int64
	// Drop, Dup, Delay are per-frame probabilities in [0,1).
	Drop, Dup, Delay float64
	// DelayOps bounds how many transport operations a delayed frame
	// waits in limbo (default 8; the actual hold is seeded per frame).
	DelayOps int
	// Partitions scripts directed-link outages on the operation clock.
	Partitions []Partition
	// AutoReleaseEvery, when positive, runs a background ticker that
	// advances the op clock (one Tick per period) so limbo frames
	// eventually release even while the system is idle. Tests leave it
	// zero for a fully scripted clock; live runs want ~10ms.
	AutoReleaseEvery time.Duration
}

// Faults counts injected faults (distinct from the transport's own
// Stats, which only see what faultnet lets through).
type Faults struct {
	Dropped     int64 // frames discarded
	Duplicated  int64 // extra copies forwarded
	Delayed     int64 // frames that entered limbo
	Partitioned int64 // frames held by a partition
	Limbo       int64 // frames currently held (limbo + partitions)
}

// limboFrame is one held frame and its release condition.
type limboFrame struct {
	from, to  string
	payload   []byte
	handshake bool
	dueOp     int64 // release when the op clock reaches this
}

// Net wraps an inner transport with the fault schedule. Safe for
// concurrent use; the RNG draws are serialized in operation order.
type Net struct {
	inner Transport
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	ops   int64
	limbo []limboFrame
	// fwd counts frames taken out of limbo but not yet handed to the
	// inner transport (forwarding happens outside mu because the inner
	// send may block). Without it a released frame would be invisible
	// to both InFlight and the inner PendingCount for a moment — a gap
	// a termination detector could declare a false fixpoint through.
	fwd int
	f   Faults

	notify func()

	stop     chan struct{}
	stopOnce sync.Once
}

// New wraps inner under cfg's fault schedule.
func New(inner Transport, cfg Config) *Net {
	if cfg.DelayOps <= 0 {
		cfg.DelayOps = 8
	}
	n := &Net{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		stop:  make(chan struct{}),
	}
	if cfg.AutoReleaseEvery > 0 {
		go n.autoRelease(cfg.AutoReleaseEvery)
	}
	return n
}

// autoRelease advances the op clock on a wall-clock ticker so limbo
// drains even while the system is otherwise idle.
func (n *Net) autoRelease(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.Tick()
		}
	}
}

// AddNode registers a node on the inner transport.
func (n *Net) AddNode(name string) { n.inner.AddNode(name) }

// Notify registers the arrival callback: inner arrivals fire it via the
// inner transport's own notifier (when it has one), and limbo releases
// fire it directly so a woken frame wakes the scheduler.
func (n *Net) Notify(fn func()) {
	n.mu.Lock()
	n.notify = fn
	n.mu.Unlock()
	if in, ok := n.inner.(interface{ Notify(func()) }); ok {
		in.Notify(fn)
	}
}

// Send forwards a frame through the fault schedule.
func (n *Net) Send(from, to string, payload []byte) error {
	return n.SendTagged(from, to, payload, false)
}

// SendTagged rolls the fault dice for one frame: it may be dropped,
// duplicated, delayed, or held by a partition; otherwise it forwards
// unharmed. The roll order is deterministic per (seed, operation
// sequence).
func (n *Net) SendTagged(from, to string, payload []byte, handshake bool) error {
	n.mu.Lock()
	n.ops++
	n.releaseDueLocked()
	if p, held := n.partitionedLocked(from, to); held {
		n.f.Partitioned++
		n.limbo = append(n.limbo, limboFrame{from: from, to: to, payload: payload, handshake: handshake, dueOp: p.To})
		n.mu.Unlock()
		return nil
	}
	roll := n.rng.Float64()
	switch {
	case roll < n.cfg.Drop:
		n.f.Dropped++
		n.mu.Unlock()
		return nil
	case roll < n.cfg.Drop+n.cfg.Dup:
		n.f.Duplicated++
		n.mu.Unlock()
		if err := n.inner.SendTagged(from, to, payload, handshake); err != nil {
			return err
		}
		return n.inner.SendTagged(from, to, payload, handshake)
	case roll < n.cfg.Drop+n.cfg.Dup+n.cfg.Delay:
		n.f.Delayed++
		hold := int64(n.rng.Intn(n.cfg.DelayOps)) + 1
		n.limbo = append(n.limbo, limboFrame{from: from, to: to, payload: payload, handshake: handshake, dueOp: n.ops + hold})
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	return n.inner.SendTagged(from, to, payload, handshake)
}

// partitionedLocked reports whether the (from,to) link is inside an
// active partition window at the current op clock.
func (n *Net) partitionedLocked(from, to string) (Partition, bool) {
	for _, p := range n.cfg.Partitions {
		if p.Src != "" && p.Src != from {
			continue
		}
		if p.Dst != "" && p.Dst != to {
			continue
		}
		if n.ops >= p.From && (p.To == 0 || n.ops < p.To) {
			return p, true
		}
	}
	return Partition{}, false
}

// releaseDueLocked forwards limbo frames whose due op has passed.
// Frames held by a never-healing partition (dueOp 0) stay. Caller holds
// n.mu; inner sends and the notify fire after unlock via the returned
// closure pattern below — here we collect and forward inline after
// swapping, so callers must not hold inner locks.
func (n *Net) releaseDueLocked() {
	if len(n.limbo) == 0 {
		return
	}
	var due []limboFrame
	kept := n.limbo[:0]
	for _, lf := range n.limbo {
		if lf.dueOp != 0 && n.ops >= lf.dueOp {
			due = append(due, lf)
		} else {
			kept = append(kept, lf)
		}
	}
	n.limbo = kept
	if len(due) == 0 {
		return
	}
	fn := n.notify
	n.fwd += len(due)
	// Forward outside the lock: inner.SendTagged may block (nettcp
	// backpressure) and the notify may re-enter the wrapper. fwd keeps
	// the frames visible to InFlight until the inner transport has them.
	n.mu.Unlock()
	for _, lf := range due {
		_ = n.inner.SendTagged(lf.from, lf.to, lf.payload, lf.handshake)
	}
	if fn != nil {
		fn()
	}
	n.mu.Lock()
	n.fwd -= len(due)
}

// Tick advances the operation clock by one and releases due limbo
// frames — the test harness's way to move scripted time forward while
// the system itself is idle.
func (n *Net) Tick() {
	n.mu.Lock()
	n.ops++
	n.releaseDueLocked()
	n.mu.Unlock()
}

// ReleaseAll flushes every held frame (limbo and partitions) to the
// inner transport immediately, regardless of schedule.
func (n *Net) ReleaseAll() {
	n.mu.Lock()
	due := n.limbo
	n.limbo = nil
	fn := n.notify
	n.fwd += len(due)
	n.mu.Unlock()
	for _, lf := range due {
		_ = n.inner.SendTagged(lf.from, lf.to, lf.payload, lf.handshake)
	}
	n.mu.Lock()
	n.fwd -= len(due)
	n.mu.Unlock()
	if fn != nil && len(due) > 0 {
		fn()
	}
}

// Drain advances the op clock, releases due limbo frames, and drains
// the inner transport.
func (n *Net) Drain(to string) []netsim.Message {
	n.mu.Lock()
	n.ops++
	n.releaseDueLocked()
	n.mu.Unlock()
	return n.inner.Drain(to)
}

// PendingFor reports the inner backlog only: limbo frames are on the
// wire, invisible to any receiver inbox until released.
func (n *Net) PendingFor(to string) int { return n.inner.PendingFor(to) }

// PendingCount reports the inner backlog only; limbo frames show up in
// InFlight, the sender-side gauge.
func (n *Net) PendingCount() int { return n.inner.PendingCount() }

// InFlight sums the inner transport's in-flight gauge (when it has one)
// with the limbo population — the wrapper's contribution to the
// distributed termination gauge.
func (n *Net) InFlight() int {
	n.mu.Lock()
	held := len(n.limbo) + n.fwd
	n.mu.Unlock()
	if in, ok := n.inner.(interface{ InFlight() int }); ok {
		held += in.InFlight()
	}
	return held
}

// Flush waits for the limbo to drain (the auto-release ticker or the
// test harness must be advancing the clock), then flushes the inner
// transport when it can. Held frames outrank a flush on purpose: a
// fault schedule models the network, and the network does not hurry
// because a process wants to exit.
func (n *Net) Flush(ctx context.Context) error {
	for {
		n.mu.Lock()
		empty := len(n.limbo) == 0 && n.fwd == 0
		n.mu.Unlock()
		if empty {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	if fl, ok := n.inner.(interface{ Flush(context.Context) error }); ok {
		return fl.Flush(ctx)
	}
	return nil
}

// SetRestartHandler forwards peer-restart detection from the inner
// transport (nettcp) so soft-state resupply works under fault injection.
func (n *Net) SetRestartHandler(fn func(process string)) {
	if rn, ok := n.inner.(interface{ SetRestartHandler(func(string)) }); ok {
		rn.SetRestartHandler(fn)
	}
}

// Stats passes the inner counters through.
func (n *Net) Stats() netsim.Stats { return n.inner.Stats() }

// ResetStats zeroes the inner counters and the fault counters.
func (n *Net) ResetStats() {
	n.inner.ResetStats()
	n.mu.Lock()
	n.f = Faults{}
	n.mu.Unlock()
}

// Faults reports the injected-fault counters.
func (n *Net) Faults() Faults {
	n.mu.Lock()
	defer n.mu.Unlock()
	f := n.f
	f.Limbo = int64(len(n.limbo))
	return f
}

// Close stops the auto-release ticker and closes the inner transport
// when it is closable; frames still held by never-healing partitions
// are dropped with it.
func (n *Net) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	if c, ok := n.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
