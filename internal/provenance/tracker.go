package provenance

import (
	"fmt"

	"provnet/internal/auth"
	"provnet/internal/bdd"
	"provnet/internal/data"
	"provnet/internal/engine"
	"provnet/internal/semiring"
)

// Mode selects the provenance representation of the taxonomy (§4.1, §4.4).
type Mode uint8

// Provenance modes.
const (
	// ModeNone records nothing (the NDlog / SeNDlog baselines).
	ModeNone Mode = iota
	// ModeLocal ships the full derivation tree with every tuple: cheap
	// querying and local trust enforcement, expensive communication.
	ModeLocal
	// ModeDistributed ships nothing and stores per-node derivation
	// pointers; provenance is reconstructed on demand by a distributed
	// traceback query.
	ModeDistributed
	// ModeCondensed ships a BDD-encoded provenance-semiring expression
	// over asserting principals — the paper's SeNDlogProv configuration.
	ModeCondensed
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeLocal:
		return "local"
	case ModeDistributed:
		return "distributed"
	case ModeCondensed:
		return "condensed"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// TrackerConfig configures a node's provenance tracker.
type TrackerConfig struct {
	Mode Mode
	// Self is the node / principal name.
	Self string
	// Store receives derivation records for distributed provenance and
	// the online/offline tiers; required for ModeDistributed, optional
	// (recommended) for other modes.
	Store *Store
	// Clock supplies logical timestamps for store records.
	Clock func() float64
	// Signer, when set with ModeLocal, signs every tree node it creates
	// and verifies imported trees (authenticated provenance, §4.3).
	Signer auth.Signer
	// SampleEvery records only every k-th derivation into the Store (the
	// IP-traceback-style sampling optimization of §5). 0 or 1 records
	// everything.
	SampleEvery int
}

// Tracker implements engine.ProvHook for one node in one mode.
type Tracker struct {
	cfg TrackerConfig
	// mgr is the node's BDD manager for condensed provenance.
	mgr *bdd.Manager
	// derivCounter drives sampling.
	derivCounter int
}

var _ engine.ProvHook = (*Tracker)(nil)

// NewTracker builds a tracker. ModeNone trackers are valid and record
// nothing.
func NewTracker(cfg TrackerConfig) *Tracker {
	t := &Tracker{cfg: cfg}
	if cfg.Mode == ModeCondensed {
		t.mgr = bdd.New()
	}
	return t
}

// Manager exposes the node's BDD manager (condensed mode).
func (tr *Tracker) Manager() *bdd.Manager { return tr.mgr }

// Mode returns the tracker's mode.
func (tr *Tracker) Mode() Mode { return tr.cfg.Mode }

func (tr *Tracker) now() float64 {
	if tr.cfg.Clock != nil {
		return tr.cfg.Clock()
	}
	return 0
}

// sampled reports whether this derivation should be recorded under the
// sampling optimization.
func (tr *Tracker) sampled() bool {
	if tr.cfg.SampleEvery <= 1 {
		return true
	}
	tr.derivCounter++
	return tr.derivCounter%tr.cfg.SampleEvery == 0
}

// principalVar names the semiring variable of a base tuple: its asserting
// principal in SeNDlog mode (matching Figure 2's <a>, <b> annotations), or
// the tuple key itself in unauthenticated runs (base-tuple provenance).
func principalVar(t data.Tuple, self string) string {
	if t.Asserter != "" {
		return t.Asserter
	}
	if self != "" {
		return self
	}
	return t.Key() //provlint:allow keystring the canonical bytes name the semiring variable of an unauthenticated base tuple; part of the provenance expression contract
}

// --- engine.ProvHook ---

// Base annotates a locally inserted base tuple.
func (tr *Tracker) Base(t data.Tuple) engine.Annotation {
	if tr.cfg.Store != nil && tr.cfg.Mode != ModeNone {
		tr.cfg.Store.RecordBase(t, tr.now())
	}
	switch tr.cfg.Mode {
	case ModeLocal:
		leaf := NewLeaf(t)
		tr.sign(leaf)
		return leaf
	case ModeDistributed:
		return Ref{Node: tr.cfg.Self, Key: KeyOf(t)}
	case ModeCondensed:
		return tr.mgr.Var(principalVar(t, tr.cfg.Self))
	default:
		return nil
	}
}

// Import reconstructs the annotation of a tuple received from the network.
func (tr *Tracker) Import(t data.Tuple, payload []byte) (engine.Annotation, error) {
	switch tr.cfg.Mode {
	case ModeLocal:
		if len(payload) == 0 {
			// Sender had no provenance for it; treat as opaque leaf.
			return NewLeaf(t), nil
		}
		tree, err := UnmarshalTree(payload)
		if err != nil {
			return nil, err
		}
		if err := tr.verify(tree); err != nil {
			return nil, err
		}
		return tree, nil
	case ModeDistributed:
		// Payload is the sender's pointer: node + key.
		if len(payload) == 0 {
			return Ref{Node: tr.cfg.Self, Key: KeyOf(t)}, nil
		}
		node, n, err := data.DecodeString(payload)
		if err != nil {
			return nil, err
		}
		key, _, err := data.DecodeString(payload[n:])
		if err != nil {
			return nil, err
		}
		ref := Ref{Node: node, Key: key}
		if tr.cfg.Store != nil {
			tr.cfg.Store.RecordOrigin(t, ref, tr.now())
		}
		return ref, nil
	case ModeCondensed:
		if len(payload) == 0 {
			return tr.mgr.Var(principalVar(t, "")), nil
		}
		node, err := tr.mgr.Deserialize(payload)
		if err != nil {
			return nil, err
		}
		return node, nil
	default:
		return nil, nil
	}
}

// Derive combines body annotations for a rule firing.
func (tr *Tracker) Derive(rule, node string, head data.Tuple, body []engine.AnnTuple) engine.Annotation {
	if tr.cfg.Mode != ModeNone && tr.cfg.Store != nil && tr.sampled() {
		children := make([]Ref, 0, len(body))
		for _, b := range body {
			if r, ok := b.Ann.(Ref); ok {
				children = append(children, r)
			} else {
				children = append(children, Ref{Node: tr.cfg.Self, Key: KeyOf(b.Tuple)})
			}
		}
		tr.cfg.Store.RecordDeriv(head, rule, children, tr.now())
	}
	switch tr.cfg.Mode {
	case ModeLocal:
		children := make([]*Tree, 0, len(body))
		for _, b := range body {
			if t, ok := b.Ann.(*Tree); ok && t != nil {
				children = append(children, t)
			} else {
				children = append(children, NewLeaf(b.Tuple))
			}
		}
		t := NewDerived(head, rule, node, children)
		tr.sign(t)
		return t
	case ModeDistributed:
		return Ref{Node: tr.cfg.Self, Key: KeyOf(head)}
	case ModeCondensed:
		acc := bdd.True
		for _, b := range body {
			if n, ok := b.Ann.(bdd.Node); ok {
				acc = tr.mgr.And(acc, n)
			} else {
				acc = tr.mgr.And(acc, tr.mgr.Var(principalVar(b.Tuple, tr.cfg.Self)))
			}
		}
		return acc
	default:
		return nil
	}
}

// Merge combines an alternative derivation into an existing annotation.
func (tr *Tracker) Merge(existing, incoming engine.Annotation) (engine.Annotation, bool) {
	switch tr.cfg.Mode {
	case ModeLocal:
		et, ok1 := existing.(*Tree)
		it, ok2 := incoming.(*Tree)
		if !ok1 || !ok2 {
			return existing, false
		}
		changed := et.Merge(it)
		return et, changed
	case ModeDistributed:
		// Alternative derivations were already recorded in the store by
		// Derive/Import; nothing is shipped, so nothing re-propagates.
		// This is the paper's trade-off: no communication overhead, more
		// expensive querying.
		return existing, false
	case ModeCondensed:
		en, ok1 := existing.(bdd.Node)
		in, ok2 := incoming.(bdd.Node)
		if !ok1 || !ok2 {
			return existing, false
		}
		merged := tr.mgr.Or(en, in)
		return merged, merged != en
	default:
		return existing, false
	}
}

// Export serializes the annotation for shipment with its tuple.
func (tr *Tracker) Export(t data.Tuple, ann engine.Annotation) []byte {
	switch tr.cfg.Mode {
	case ModeLocal:
		if tree, ok := ann.(*Tree); ok && tree != nil {
			return tree.Marshal()
		}
		return nil
	case ModeDistributed:
		// Ship only the pointer (no communication overhead beyond it).
		ref, ok := ann.(Ref)
		if !ok {
			ref = Ref{Node: tr.cfg.Self, Key: KeyOf(t)}
		}
		var b []byte
		b = data.AppendString(b, ref.Node)
		b = data.AppendString(b, ref.Key)
		return b
	case ModeCondensed:
		if n, ok := ann.(bdd.Node); ok {
			return tr.mgr.Serialize(n)
		}
		return nil
	default:
		return nil
	}
}

// Withdraw marks a withdrawn tuple's provenance stale in the store (live
// link churn retracted the tuple). The record remains queryable.
func (tr *Tracker) Withdraw(t data.Tuple) {
	if tr.cfg.Store == nil || tr.cfg.Mode == ModeNone {
		return
	}
	tr.cfg.Store.MarkStale(KeyOf(t), tr.now())
}

// Restore clears the stale flag of a re-derived tuple's provenance.
func (tr *Tracker) Restore(t data.Tuple) {
	if tr.cfg.Store == nil || tr.cfg.Mode == ModeNone {
		return
	}
	tr.cfg.Store.ClearStale(KeyOf(t))
}

// --- authenticated provenance (§4.3) ---

// sign attaches the asserting principal's signature to a tree node (its
// immediate tuple only; children carry their own signatures).
func (tr *Tracker) sign(t *Tree) {
	if tr.cfg.Signer == nil {
		return
	}
	principal := t.Tuple.Asserter
	if principal == "" {
		principal = tr.cfg.Self
	}
	sig, err := tr.cfg.Signer.Sign(principal, data.EncodeTuple(t.Tuple))
	if err == nil {
		t.Sig = sig
	}
}

// verify checks every signed node of an imported tree. Unsigned nodes are
// rejected when a signer is configured: in an untrusted environment every
// provenance node must validate (§4.3).
func (tr *Tracker) verify(t *Tree) error {
	if tr.cfg.Signer == nil {
		return nil
	}
	var rec func(*Tree) error
	rec = func(n *Tree) error {
		principal := n.Tuple.Asserter
		if principal == "" {
			principal = tr.cfg.Self
		}
		if err := tr.cfg.Signer.Verify(principal, data.EncodeTuple(n.Tuple), n.Sig); err != nil {
			return fmt.Errorf("provenance: node %s: %w", n.Tuple, err)
		}
		for _, d := range n.Derivs {
			for _, c := range d.Children {
				if err := rec(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return rec(t)
}

// --- quantifiable provenance (§4.5) ---

// PolyOf converts a condensed annotation back into a provenance
// polynomial over principals (B[X] form), for evaluation under other
// semirings.
func (tr *Tracker) PolyOf(ann engine.Annotation) semiring.Poly {
	n, ok := ann.(bdd.Node)
	if !ok || tr.mgr == nil {
		return semiring.Zero()
	}
	return semiring.FromCubes(tr.mgr.Cubes(n))
}

// ExprOf renders a condensed annotation in the paper's <...> style.
func (tr *Tracker) ExprOf(ann engine.Annotation) string {
	n, ok := ann.(bdd.Node)
	if !ok || tr.mgr == nil {
		return ""
	}
	return "<" + tr.mgr.Expr(n) + ">"
}

// TreePoly computes the provenance polynomial of a derivation tree
// (ModeLocal), attributing leaves to their asserting principals; it
// produces the uncondensed expressions of Figure 2 such as a + a*b.
func TreePoly(t *Tree, self string) semiring.Poly {
	if len(t.Derivs) == 0 {
		return semiring.Var(principalVar(t.Tuple, self))
	}
	sum := semiring.Zero()
	for _, d := range t.Derivs {
		prod := semiring.One()
		for _, c := range d.Children {
			prod = prod.Mul(TreePoly(c, self))
		}
		sum = sum.Add(prod)
	}
	return sum
}
