package provenance

import (
	"strings"
	"testing"

	"provnet/internal/data"
	"provnet/internal/semiring"
)

// paperTree builds the Figure 1 derivation tree for reachable(a,c):
// union of r1 over link(a,c) and r2 over link(a,b), reachable(b,c).
func paperTree() *Tree {
	linkAB := NewLeaf(data.NewTuple("link", data.Str("a"), data.Str("b")).Says("a"))
	linkAC := NewLeaf(data.NewTuple("link", data.Str("a"), data.Str("c")).Says("a"))
	linkBC := NewLeaf(data.NewTuple("link", data.Str("b"), data.Str("c")).Says("b"))
	reachBC := NewDerived(data.NewTuple("reachable", data.Str("b"), data.Str("c")).Says("b"),
		"r1", "b", []*Tree{linkBC})
	root := NewDerived(data.NewTuple("reachable", data.Str("a"), data.Str("c")).Says("a"),
		"r1", "a", []*Tree{linkAC})
	root.Merge(NewDerived(root.Tuple, "r2", "a", []*Tree{linkAB, reachBC}))
	return root
}

func TestTreeBasics(t *testing.T) {
	tr := paperTree()
	if len(tr.Derivs) != 2 {
		t.Fatalf("derivs = %d", len(tr.Derivs))
	}
	// Nodes: root, link(a,c), link(a,b), reachable(b,c), link(b,c).
	if tr.Size() != 5 {
		t.Errorf("size = %d, want 5", tr.Size())
	}
	if tr.Depth() != 3 {
		t.Errorf("depth = %d, want 3", tr.Depth())
	}
}

func TestMergeDedup(t *testing.T) {
	tr := paperTree()
	// Re-merging the same derivation is a no-op.
	dup := NewDerived(tr.Tuple, "r1", "a",
		[]*Tree{NewLeaf(data.NewTuple("link", data.Str("a"), data.Str("c")).Says("a"))})
	if tr.Merge(dup) {
		t.Error("duplicate derivation must not change the tree")
	}
	if len(tr.Derivs) != 2 {
		t.Errorf("derivs = %d", len(tr.Derivs))
	}
	// A genuinely new derivation changes it.
	novel := NewDerived(tr.Tuple, "r9", "a",
		[]*Tree{NewLeaf(data.NewTuple("link", data.Str("a"), data.Str("c")).Says("a"))})
	if !tr.Merge(novel) {
		t.Error("new derivation must register")
	}
	if tr.Merge(nil) {
		t.Error("merging nil is a no-op")
	}
}

func TestLeaves(t *testing.T) {
	leaves := paperTree().Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %v", leaves)
	}
	// All leaves are link tuples — the "initial input base tuples".
	for _, l := range leaves {
		if l.Pred != "link" {
			t.Errorf("leaf %v is not a base link", l)
		}
	}
}

func TestRenderFigure1Shape(t *testing.T) {
	out := paperTree().Render(nil)
	for _, want := range []string{"union", "r1 @a", "r2 @a", "a says link(a, c)", "b says reachable(b, c)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Single-derivation nodes render without a union.
	sub := NewDerived(data.NewTuple("p", data.Int(1)), "r", "a", []*Tree{NewLeaf(data.NewTuple("q", data.Int(2)))})
	if strings.Contains(sub.Render(nil), "union") {
		t.Error("single derivation must not print union")
	}
}

func TestRenderAnnotated(t *testing.T) {
	tr := paperTree()
	out := tr.Render(func(n *Tree) string {
		if n.Tuple.Pred == "reachable" && n.Tuple.Args[0].Str == "a" {
			return "<a+a*b>"
		}
		return ""
	})
	if !strings.Contains(out, "<a+a*b>") {
		t.Errorf("annotation missing:\n%s", out)
	}
}

func TestTreeMarshalRoundTrip(t *testing.T) {
	tr := paperTree()
	tr.Sig = []byte{1, 2, 3}
	tr.Derivs[0].Children[0].Truncated = true
	b := tr.Marshal()
	got, err := UnmarshalTree(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != tr.Size() || len(got.Derivs) != len(tr.Derivs) {
		t.Fatalf("round trip mismatch: %v", got)
	}
	if string(got.Sig) != string(tr.Sig) {
		t.Error("sig lost")
	}
	if !got.Derivs[0].Children[0].Truncated {
		t.Error("truncated flag lost")
	}
	if !got.Tuple.Equal(tr.Tuple) {
		t.Error("tuple mismatch")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalTree(nil); err == nil {
		t.Error("nil should fail")
	}
	b := paperTree().Marshal()
	if _, err := UnmarshalTree(b[:len(b)-2]); err == nil {
		t.Error("truncated should fail")
	}
	if _, err := UnmarshalTree(append(b, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestTreePolyPaperExample(t *testing.T) {
	// Figure 2: reachable(a,c) has provenance a + a*b.
	p := TreePoly(paperTree(), "")
	if got := p.String(); got != "a + a*b" {
		t.Fatalf("tree poly = %q, want a + a*b", got)
	}
	// Under the trust semiring with level(a)=2, level(b)=1: trust 2.
	levels := map[string]int64{"a": 2, "b": 1}
	trust := semiring.Eval[int64](p, semiring.Trust{}, func(v string) int64 { return levels[v] })
	if trust != 2 {
		t.Errorf("trust = %d, want 2", trust)
	}
}
