package provenance

import (
	"testing"

	"provnet/internal/data"
)

func TestStoreRecordAndGet(t *testing.T) {
	s := NewStore("a")
	tu := data.NewTuple("link", data.Str("a"), data.Str("b"))
	s.RecordBase(tu, 1)
	e := s.Get(KeyOf(tu))
	if e == nil || !e.Tuple.Equal(tu) || len(e.Derivs) != 0 {
		t.Fatalf("entry = %+v", e)
	}
	head := data.NewTuple("reachable", data.Str("a"), data.Str("b"))
	if !s.RecordDeriv(head, "r1", []Ref{{Node: "a", Key: KeyOf(tu)}}, 2) {
		t.Fatal("first deriv must register")
	}
	// Duplicate derivation dedups.
	if s.RecordDeriv(head, "r1", []Ref{{Node: "a", Key: KeyOf(tu)}}, 3) {
		t.Fatal("duplicate deriv must not register")
	}
	if got := s.Get(KeyOf(head)); len(got.Derivs) != 1 {
		t.Fatalf("derivs = %d", len(got.Derivs))
	}
	if s.OnlineCount() != 2 {
		t.Errorf("online count = %d", s.OnlineCount())
	}
}

func TestStoreOrigins(t *testing.T) {
	s := NewStore("b")
	tu := data.NewTuple("reachable", data.Str("a"), data.Str("c"))
	ref := Ref{Node: "a", Key: KeyOf(tu)}
	if !s.RecordOrigin(tu, ref, 1) {
		t.Fatal("origin must register")
	}
	if s.RecordOrigin(tu, ref, 2) {
		t.Fatal("duplicate origin dedups")
	}
	if e := s.Get(KeyOf(tu)); len(e.Origins) != 1 || e.Origins[0] != ref {
		t.Fatalf("origins = %v", e.Origins)
	}
}

func TestOfflineSurvivesForget(t *testing.T) {
	s := NewStore("a")
	s.EnableOffline(-1)
	tu := data.NewTuple("event", data.Str("a"), data.Int(1))
	s.RecordBase(tu, 5)
	s.Forget(KeyOf(tu))
	if s.Get(KeyOf(tu)) != nil {
		t.Fatal("online entry must be gone")
	}
	if s.GetOffline(KeyOf(tu)) == nil {
		t.Fatal("offline entry must survive")
	}
	if s.GetAny(KeyOf(tu)) == nil {
		t.Fatal("GetAny must fall back to offline")
	}
}

func TestOfflineDisabledByDefault(t *testing.T) {
	s := NewStore("a")
	tu := data.NewTuple("event", data.Str("a"), data.Int(1))
	s.RecordBase(tu, 5)
	s.Forget(KeyOf(tu))
	if s.GetAny(KeyOf(tu)) != nil {
		t.Fatal("no offline tier: entry should be gone")
	}
}

func TestAgeOutAndPin(t *testing.T) {
	s := NewStore("a")
	s.EnableOffline(10)
	t1 := data.NewTuple("event", data.Str("a"), data.Int(1))
	t2 := data.NewTuple("event", data.Str("a"), data.Int(2))
	s.RecordBase(t1, 0)
	s.RecordBase(t2, 0)
	s.Pin(KeyOf(t2))
	if n := s.AgeOut(5); n != 0 {
		t.Fatalf("premature age-out: %d", n)
	}
	if n := s.AgeOut(20); n != 1 {
		t.Fatalf("aged = %d, want 1 (pinned survives)", n)
	}
	if s.GetOffline(KeyOf(t1)) != nil {
		t.Error("t1 must be aged out")
	}
	if s.GetOffline(KeyOf(t2)) == nil {
		t.Error("pinned t2 must survive")
	}
	if s.OfflineCount() != 1 {
		t.Errorf("offline count = %d", s.OfflineCount())
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore("a")
	s.RecordBase(data.NewTuple("b", data.Int(1)), 0)
	s.RecordBase(data.NewTuple("a", data.Int(1)), 0)
	ks := s.Keys()
	if len(ks) != 2 || ks[0] > ks[1] {
		t.Errorf("keys = %v", ks)
	}
}

func TestOfflineSnapshotIsolation(t *testing.T) {
	// The offline copy must not alias online mutations after Forget.
	s := NewStore("a")
	s.EnableOffline(-1)
	head := data.NewTuple("p", data.Int(1))
	s.RecordDeriv(head, "r1", nil, 0)
	off := s.GetOffline(KeyOf(head))
	nDerivs := len(off.Derivs)
	s.RecordDeriv(head, "r2", nil, 1) // mirrors again
	if got := s.GetOffline(KeyOf(head)); len(got.Derivs) != nDerivs+1 {
		t.Fatalf("offline should track while online lives: %d", len(got.Derivs))
	}
	s.Forget(KeyOf(head))
	// Mutating a fresh online entry must not disturb the offline copy.
	s.RecordDeriv(head, "r3", nil, 2)
	if got := s.GetOffline(KeyOf(head)); len(got.Derivs) != nDerivs+2 {
		t.Fatalf("offline entry re-mirrored after forget: %d derivs", len(got.Derivs))
	}
}

func TestMarkStaleAndClear(t *testing.T) {
	s := NewStore("a")
	s.EnableOffline(-1)
	tu := data.NewTuple("bestPath", data.Str("a"), data.Str("c"))
	key := KeyOf(tu)
	s.RecordBase(tu, 1)

	s.MarkStale(key, 7)
	for tier, e := range map[string]*Entry{"online": s.Get(key), "offline": s.GetOffline(key)} {
		if e == nil || !e.Stale || e.StaleAt != 7 {
			t.Fatalf("%s entry = %+v, want stale at 7", tier, e)
		}
	}
	// The history survives the withdrawal: stale is a flag, not a delete.
	if s.Get(key) == nil {
		t.Fatal("stale entry must stay queryable")
	}

	s.ClearStale(key)
	if e := s.Get(key); e == nil || e.Stale {
		t.Fatalf("online entry after ClearStale = %+v, want fresh", e)
	}
	if e := s.GetOffline(key); e == nil || e.Stale {
		t.Fatalf("offline entry after ClearStale = %+v, want fresh", e)
	}

	// Marking a key the store never saw is a no-op, not a crash.
	s.MarkStale("missing", 9)
	s.ClearStale("missing")
}

func TestStaleSurvivesOfflineClone(t *testing.T) {
	s := NewStore("a")
	tu := data.NewTuple("link", data.Str("a"), data.Str("b"))
	key := KeyOf(tu)
	s.RecordBase(tu, 1)
	s.MarkStale(key, 3)
	// Enabling the offline tier after the fact clones the stale flag.
	s.EnableOffline(-1)
	s.RecordBase(tu, 4) // mirror triggers the offline clone
	if e := s.GetOffline(key); e == nil || !e.Stale {
		t.Fatalf("offline clone = %+v, want stale carried over", e)
	}
}
