// Package provenance implements the paper's network provenance taxonomy
// (§4): local vs distributed provenance, online vs offline stores,
// authenticated provenance, condensed (BDD-encoded semiring) provenance,
// and quantifiable provenance, together with the distributed traceback
// query and the random-moonwalk sampling optimization (§5).
package provenance

import (
	"fmt"
	"sort"
	"strings"

	"provnet/internal/data"
)

// Tree is a derivation tree, the provenance representation of Figures 1
// and 2: the root is a tuple; each alternative derivation (combined by
// "union" in the figures) applies a rule at a location to child tuples;
// leaves (no derivations) are base tuples.
type Tree struct {
	// Tuple is the derived fact. Its Asserter is the principal that says
	// it (authenticated provenance, §4.3).
	Tuple data.Tuple
	// Derivs are the alternative derivations; empty marks a base tuple.
	Derivs []*Deriv
	// Sig is the asserting principal's signature over the tuple encoding
	// (authenticated provenance); nil when authentication is off.
	Sig []byte
	// Truncated marks nodes cut off by cycle detection or depth limits
	// during distributed reconstruction.
	Truncated bool
}

// Deriv is one derivation step: a rule fired at a location over children.
type Deriv struct {
	Rule     string
	Loc      string
	Children []*Tree
}

// NewLeaf builds a base-tuple tree node.
func NewLeaf(t data.Tuple) *Tree { return &Tree{Tuple: t} }

// NewDerived builds a tree node with one derivation.
func NewDerived(t data.Tuple, rule, loc string, children []*Tree) *Tree {
	return &Tree{Tuple: t, Derivs: []*Deriv{{Rule: rule, Loc: loc, Children: children}}}
}

// derivSig identifies a derivation for deduplication: the rule, location
// and the keys of its children.
func (d *Deriv) derivSig() string {
	var sb strings.Builder
	sb.WriteString(d.Rule)
	sb.WriteByte('@')
	sb.WriteString(d.Loc)
	for _, c := range d.Children {
		sb.WriteByte('|')
		sb.WriteString(c.Tuple.Key()) //provlint:allow keystring derivation signatures dedupe on the canonical bytes; part of the provenance tree contract
	}
	return sb.String()
}

// Merge adds the derivations of other into t (same tuple), returning
// whether anything new was added. It implements the "union" node of the
// figures.
func (t *Tree) Merge(other *Tree) bool {
	if other == nil {
		return false
	}
	have := make(map[string]bool, len(t.Derivs))
	for _, d := range t.Derivs {
		have[d.derivSig()] = true
	}
	changed := false
	for _, d := range other.Derivs {
		if !have[d.derivSig()] {
			have[d.derivSig()] = true
			t.Derivs = append(t.Derivs, d)
			changed = true
		}
	}
	return changed
}

// Leaves returns the base tuples at the leaves of the tree (the "initial
// input base tuples" the paper's Figure 1 explanation refers to),
// deduplicated and sorted.
func (t *Tree) Leaves() []data.Tuple {
	seen := map[string]data.Tuple{}
	var rec func(*Tree)
	rec = func(n *Tree) {
		if len(n.Derivs) == 0 {
			seen[n.Tuple.Key()] = n.Tuple //provlint:allow keystring leaf dedup keys on the canonical bytes; cold traceback path
			return
		}
		for _, d := range n.Derivs {
			for _, c := range d.Children {
				rec(c)
			}
		}
	}
	rec(t)
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]data.Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// Size returns the number of tree nodes (tuples, counting repeats).
func (t *Tree) Size() int {
	n := 1
	for _, d := range t.Derivs {
		for _, c := range d.Children {
			n += c.Size()
		}
	}
	return n
}

// Depth returns the height of the tree (a leaf has depth 1).
func (t *Tree) Depth() int {
	max := 0
	for _, d := range t.Derivs {
		for _, c := range d.Children {
			if h := c.Depth(); h > max {
				max = h
			}
		}
	}
	return max + 1
}

// Render pretty-prints the tree in the style of the paper's figures, with
// rule ovals annotated by their execution location and union nodes for
// alternative derivations:
//
//	reachable(a, c)
//	└─ union
//	   ├─ r1 @a
//	   │  └─ link(a, c)
//	   └─ r2 @a
//	      ├─ link(a, b)
//	      └─ b says reachable(b, c)
//
// annotate, if non-nil, appends per-tuple suffixes (e.g. condensed
// provenance expressions for Figure 2).
func (t *Tree) Render(annotate func(*Tree) string) string {
	var sb strings.Builder
	t.render(&sb, "", "", annotate)
	return sb.String()
}

func (t *Tree) render(sb *strings.Builder, prefix, childPrefix string, annotate func(*Tree) string) {
	sb.WriteString(prefix)
	sb.WriteString(t.Tuple.String())
	if annotate != nil {
		if s := annotate(t); s != "" {
			sb.WriteString("  ")
			sb.WriteString(s)
		}
	}
	if t.Truncated {
		sb.WriteString("  (truncated)")
	}
	sb.WriteByte('\n')

	writeDeriv := func(d *Deriv, pre, childPre string) {
		fmt.Fprintf(sb, "%s%s @%s\n", pre, d.Rule, d.Loc)
		for i, c := range d.Children {
			last := i == len(d.Children)-1
			if last {
				c.render(sb, childPre+"└─ ", childPre+"   ", annotate)
			} else {
				c.render(sb, childPre+"├─ ", childPre+"│  ", annotate)
			}
		}
	}

	switch len(t.Derivs) {
	case 0:
		return
	case 1:
		writeDeriv(t.Derivs[0], childPrefix+"└─ ", childPrefix+"   ")
	default:
		sb.WriteString(childPrefix + "└─ union\n")
		base := childPrefix + "   "
		for i, d := range t.Derivs {
			last := i == len(t.Derivs)-1
			if last {
				writeDeriv(d, base+"└─ ", base+"   ")
			} else {
				writeDeriv(d, base+"├─ ", base+"│  ")
			}
		}
	}
}

// --- serialization (local provenance is shipped with each tuple, §4.1) ---

// Marshal encodes the tree for shipment.
func (t *Tree) Marshal() []byte { return t.appendTo(nil) }

func (t *Tree) appendTo(b []byte) []byte {
	b = data.AppendTuple(b, t.Tuple)
	b = data.AppendBytes(b, t.Sig)
	flags := byte(0)
	if t.Truncated {
		flags = 1
	}
	b = append(b, flags)
	b = appendUvarint(b, uint64(len(t.Derivs)))
	for _, d := range t.Derivs {
		b = data.AppendString(b, d.Rule)
		b = data.AppendString(b, d.Loc)
		b = appendUvarint(b, uint64(len(d.Children)))
		for _, c := range d.Children {
			b = c.appendTo(b)
		}
	}
	return b
}

// UnmarshalTree decodes a tree encoded by Marshal.
func UnmarshalTree(b []byte) (*Tree, error) {
	t, n, err := decodeTree(b, 0)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, fmt.Errorf("provenance: %d trailing bytes", len(b)-n)
	}
	return t, nil
}

func decodeTree(b []byte, depth int) (*Tree, int, error) {
	if depth > 10000 {
		return nil, 0, fmt.Errorf("provenance: tree too deep")
	}
	tu, n, err := data.DecodeTuple(b)
	if err != nil {
		return nil, 0, err
	}
	sig, m, err := data.DecodeBytes(b[n:])
	if err != nil {
		return nil, 0, err
	}
	n += m
	if n >= len(b) {
		return nil, 0, fmt.Errorf("provenance: truncated tree")
	}
	flags := b[n]
	n++
	nd, m, err := readUvarint(b[n:])
	if err != nil {
		return nil, 0, err
	}
	n += m
	t := &Tree{Tuple: tu, Truncated: flags&1 != 0}
	if len(sig) > 0 {
		t.Sig = append([]byte{}, sig...)
	}
	if nd > uint64(len(b)) {
		return nil, 0, fmt.Errorf("provenance: corrupt deriv count")
	}
	for i := uint64(0); i < nd; i++ {
		rule, m, err := data.DecodeString(b[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		loc, m, err := data.DecodeString(b[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		nc, m, err := readUvarint(b[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		if nc > uint64(len(b)) {
			return nil, 0, fmt.Errorf("provenance: corrupt child count")
		}
		d := &Deriv{Rule: rule, Loc: loc}
		for j := uint64(0); j < nc; j++ {
			c, m, err := decodeTree(b[n:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			n += m
			d.Children = append(d.Children, c)
		}
		t.Derivs = append(t.Derivs, d)
	}
	return t, n, nil
}

func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

func readUvarint(b []byte) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i > 9 || i == 9 && c > 1 {
				return 0, 0, fmt.Errorf("provenance: uvarint overflow")
			}
			return x | uint64(c)<<s, i + 1, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0, fmt.Errorf("provenance: short uvarint")
}
