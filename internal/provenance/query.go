package provenance

import (
	"fmt"
	"math/rand"

	"provnet/internal/data"
)

// Distributed provenance querying (§4.1): with ModeDistributed each node
// stores only pointers, and reconstructing a derivation tree walks them —
// a "distributed recursive query" in the paper's terms. Each hop to
// another node is charged as query traffic, which is what makes
// distributed provenance cheap to maintain but expensive to query.

// Resolver gives the traceback query access to per-node stores. The core
// layer implements it over the simulated network.
type Resolver interface {
	StoreOf(node string) *Store
}

// ResolverFunc adapts a function to Resolver.
type ResolverFunc func(node string) *Store

// StoreOf calls f.
func (f ResolverFunc) StoreOf(node string) *Store { return f(node) }

// QueryOpts configures a traceback.
type QueryOpts struct {
	// MaxDepth bounds recursion (0 = 64).
	MaxDepth int
	// Moonwalk samples a single random backward path instead of the full
	// tree (the random-moonwalk optimization of §5).
	Moonwalk bool
	// Rng drives moonwalk choices; required when Moonwalk is set.
	Rng *rand.Rand
	// Offline consults offline stores as a fallback, for forensics over
	// expired state (§4.2).
	Offline bool
}

// QueryStats meters a traceback.
type QueryStats struct {
	// Messages counts inter-node hops (request/response pairs).
	Messages int
	// Bytes estimates response traffic (encoded subtree sizes).
	Bytes int64
	// NodesVisited counts distinct nodes touched.
	NodesVisited int
	// Entries counts provenance entries read.
	Entries int
}

// Trace reconstructs the derivation tree of the tuple with the given key,
// starting at node start, by walking distributed provenance pointers. It
// returns the tree and the query's cost.
func Trace(res Resolver, start, key string, opts QueryOpts) (*Tree, *QueryStats, error) {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 64
	}
	if opts.Moonwalk && opts.Rng == nil {
		return nil, nil, fmt.Errorf("provenance: moonwalk requires an Rng")
	}
	st := &QueryStats{}
	visitedNodes := map[string]bool{}
	q := &querier{res: res, opts: opts, stats: st, visitedNodes: visitedNodes}
	tree, err := q.walk(start, key, map[string]bool{}, 0)
	if err != nil {
		return nil, st, err
	}
	st.NodesVisited = len(visitedNodes)
	return tree, st, nil
}

type querier struct {
	res          Resolver
	opts         QueryOpts
	stats        *QueryStats
	visitedNodes map[string]bool
}

func (q *querier) lookup(node, key string) *Entry {
	q.visitedNodes[node] = true
	s := q.res.StoreOf(node)
	if s == nil {
		return nil
	}
	if q.opts.Offline {
		return s.GetAny(key)
	}
	return s.Get(key)
}

// walk reconstructs the subtree of key at node. seen guards against
// cyclic derivations ((node,key) pairs on the current path).
func (q *querier) walk(node, key string, seen map[string]bool, depth int) (*Tree, error) {
	e := q.lookup(node, key)
	if e == nil {
		return nil, fmt.Errorf("provenance: no entry for key at node %s", node)
	}
	q.stats.Entries++
	t := &Tree{Tuple: e.Tuple}
	pathKey := node + "\x00" + key
	if depth >= q.opts.MaxDepth || seen[pathKey] {
		t.Truncated = true
		return t, nil
	}
	seen[pathKey] = true
	defer delete(seen, pathKey)

	type branch struct {
		deriv *Derivation
		via   *Ref // origin pointer instead of a local derivation
	}
	var branches []branch
	for i := range e.Derivs {
		branches = append(branches, branch{deriv: &e.Derivs[i]})
	}
	for i := range e.Origins {
		branches = append(branches, branch{via: &e.Origins[i]})
	}
	if len(branches) == 0 {
		return t, nil // base tuple
	}
	if q.opts.Moonwalk {
		branches = branches[q.opts.Rng.Intn(len(branches)):][:1]
	}
	for _, br := range branches {
		if br.via != nil {
			// Follow the origin pointer to the node that derived it.
			sub, err := q.follow(node, *br.via, seen, depth+1)
			if err != nil {
				return nil, err
			}
			t.Merge(&Tree{Tuple: e.Tuple, Derivs: []*Deriv{{Rule: "@recv", Loc: node, Children: []*Tree{sub}}}})
			continue
		}
		d := &Deriv{Rule: br.deriv.Rule, Loc: br.deriv.Loc}
		children := br.deriv.Children
		if q.opts.Moonwalk && len(children) > 1 {
			children = children[q.opts.Rng.Intn(len(children)):][:1]
		}
		for _, c := range children {
			sub, err := q.follow(node, c, seen, depth+1)
			if err != nil {
				return nil, err
			}
			d.Children = append(d.Children, sub)
		}
		t.Derivs = append(t.Derivs, d)
	}
	return t, nil
}

// follow resolves a child reference, charging a message when it crosses to
// another node.
func (q *querier) follow(from string, ref Ref, seen map[string]bool, depth int) (*Tree, error) {
	if ref.Node != from {
		q.stats.Messages++
	}
	sub, err := q.walk(ref.Node, ref.Key, seen, depth)
	if err != nil {
		// A missing remote entry (sampled out, or aged out of the offline
		// store) becomes a truncated leaf rather than failing the whole
		// query: partial provenance is still useful for forensics.
		return &Tree{Tuple: stubTuple(ref), Truncated: true}, nil
	}
	if ref.Node != from {
		q.stats.Bytes += int64(len(sub.Marshal()))
	}
	return sub, nil
}

// stubTuple stands in for an unresolvable reference.
func stubTuple(ref Ref) data.Tuple {
	return data.Tuple{Pred: "unknown", Args: []data.Value{data.Str(ref.Node)}}
}
