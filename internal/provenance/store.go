package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"

	"provnet/internal/data"
)

// KeyOf returns the compact provenance key of a tuple: a truncated hash
// of its canonical encoding. Distributed provenance ships (node, key)
// pointers with every tuple, so the key is fixed-size to keep the
// paper's "no extra communication overhead" property of the mode.
//
// The sha256-over-Key() construction is the wire format and cannot
// change, but recomputing it for every derivation made it the hot
// path's single most expensive call. KeyOf therefore memoizes: lookups
// run on the tuple's 64-bit structural hash with an equality-checked
// chain (so forced hash collisions stay correct), and the memo resets
// wholesale at a size cap so adversarial tuple streams cannot balloon
// it. The memo is a pure cache — its hits and misses return identical
// strings — so test hash masks only change hit rates, never keys.
func KeyOf(t data.Tuple) string {
	h := t.Hash()
	keyMemo.mu.RLock()
	for i := range keyMemo.m[h] {
		e := &keyMemo.m[h][i]
		if e.t.Equal(t) {
			key := e.key
			keyMemo.mu.RUnlock()
			return key
		}
	}
	keyMemo.mu.RUnlock()

	sum := sha256.Sum256([]byte(t.Key()))
	key := hex.EncodeToString(sum[:12])

	keyMemo.mu.Lock()
	if keyMemo.n >= keyMemoCap {
		keyMemo.m = make(map[uint64][]keyMemoEntry, 1024)
		keyMemo.n = 0
	}
	chain := keyMemo.m[h]
	dup := false
	for i := range chain {
		if chain[i].t.Equal(t) {
			dup = true
			break
		}
	}
	if !dup {
		keyMemo.m[h] = append(chain, keyMemoEntry{t: t, key: key})
		keyMemo.n++
	}
	keyMemo.mu.Unlock()
	return key
}

// keyMemo caches KeyOf results process-wide (KeyOf is a pure function of
// the tuple). Entries retain their tuples, so the cap bounds memory.
type keyMemoEntry struct {
	t   data.Tuple
	key string
}

var keyMemo = struct {
	mu sync.RWMutex
	m  map[uint64][]keyMemoEntry
	n  int
}{m: make(map[uint64][]keyMemoEntry, 1024)}

const keyMemoCap = 1 << 16

// Ref points to a tuple's provenance at a node: the pointer of distributed
// provenance (§4.1). Instead of shipping derivation trees, each node keeps
// its own derivations and remote children are chased on demand during a
// traceback query — the analogy the paper draws to IP traceback state kept
// at routers.
type Ref struct {
	Node string
	Key  string
}

// Derivation is one locally recorded rule firing.
type Derivation struct {
	Rule string
	Loc  string
	// Children reference the body tuples; remote children carry the node
	// that shipped them.
	Children []Ref
	// At is the logical time of the firing.
	At float64
}

func (d Derivation) sig() string {
	s := d.Rule + "@" + d.Loc
	for _, c := range d.Children {
		s += "|" + c.Node + "/" + c.Key
	}
	return s
}

// Entry is a tuple's locally known provenance.
type Entry struct {
	Key   string
	Tuple data.Tuple
	// Derivs are local rule firings that produced the tuple.
	Derivs []Derivation
	// Origins are remote nodes that shipped the tuple here (each with the
	// key to continue the traceback at that node).
	Origins []Ref
	// Pinned entries survive age-out (marked to persist after a network
	// anomaly, §5).
	Pinned bool
	// At is the first time the tuple's provenance was recorded.
	At float64
	// Stale marks provenance of a withdrawn tuple: the network no longer
	// derives it (link churn retracted it or a keyed update replaced it),
	// but the recorded history remains queryable — the forensic record of
	// what the network used to believe and why. StaleAt is the logical
	// time of the withdrawal. A re-derivation clears the flag.
	Stale   bool
	StaleAt float64
}

func (e *Entry) addDeriv(d Derivation) bool {
	sig := d.sig()
	for _, x := range e.Derivs {
		if x.sig() == sig {
			return false
		}
	}
	e.Derivs = append(e.Derivs, d)
	return true
}

func (e *Entry) addOrigin(r Ref) bool {
	for _, x := range e.Origins {
		if x == r {
			return false
		}
	}
	e.Origins = append(e.Origins, r)
	return true
}

// clone returns a deep-enough copy for offline archival.
func (e *Entry) clone() *Entry {
	cp := &Entry{Key: e.Key, Tuple: e.Tuple, Pinned: e.Pinned, At: e.At, Stale: e.Stale, StaleAt: e.StaleAt}
	cp.Derivs = append([]Derivation{}, e.Derivs...)
	cp.Origins = append([]Ref{}, e.Origins...)
	return cp
}

// Store is one node's provenance state, split into the online store
// (provenance of currently valid tuples) and an optional offline store
// retaining provenance past expiry for forensics and accountability
// (§4.2). It is safe for concurrent readers and writers, since traceback
// queries may run while the network executes.
type Store struct {
	mu     sync.RWMutex
	self   string
	online map[string]*Entry

	offline        map[string]*Entry
	offlineEnabled bool
	offlineMaxAge  float64 // <0: keep forever
}

// NewStore creates a store for node self with the offline tier disabled.
func NewStore(self string) *Store {
	return &Store{
		self:          self,
		online:        make(map[string]*Entry),
		offline:       make(map[string]*Entry),
		offlineMaxAge: -1,
	}
}

// EnableOffline turns on the offline tier; maxAge < 0 keeps entries
// forever, otherwise AgeOut(now) drops unpinned entries older than maxAge.
func (s *Store) EnableOffline(maxAge float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offlineEnabled = true
	s.offlineMaxAge = maxAge
}

// Self returns the owning node.
func (s *Store) Self() string { return s.self }

func (s *Store) entryLocked(key string, t data.Tuple, at float64) *Entry {
	e, ok := s.online[key]
	if !ok {
		e = &Entry{Key: key, Tuple: t, At: at}
		s.online[key] = e
	}
	return e
}

// RecordBase notes a base tuple inserted at this node.
func (s *Store) RecordBase(t data.Tuple, at float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entryLocked(KeyOf(t), t, at)
	s.mirrorOffline(e)
}

// RecordDeriv notes a local rule firing.
func (s *Store) RecordDeriv(head data.Tuple, rule string, children []Ref, at float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entryLocked(KeyOf(head), head, at)
	changed := e.addDeriv(Derivation{Rule: rule, Loc: s.self, Children: children, At: at})
	// Mirror even when unchanged: the offline tier may have been enabled
	// after the first recording.
	s.mirrorOffline(e)
	return changed
}

// RecordOrigin notes that a tuple arrived from a remote node.
func (s *Store) RecordOrigin(t data.Tuple, from Ref, at float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entryLocked(KeyOf(t), t, at)
	changed := e.addOrigin(from)
	s.mirrorOffline(e)
	return changed
}

// mirrorOffline merges an entry into the offline tier (caller holds
// lock). Merging rather than replacing preserves history across tuple
// expiry and re-derivation: the offline store accumulates everything ever
// known about the tuple.
func (s *Store) mirrorOffline(e *Entry) {
	if !s.offlineEnabled {
		return
	}
	off, ok := s.offline[e.Key]
	if !ok {
		s.offline[e.Key] = e.clone()
		return
	}
	for _, d := range e.Derivs {
		off.addDeriv(d)
	}
	for _, o := range e.Origins {
		off.addOrigin(o)
	}
	off.Pinned = off.Pinned || e.Pinned
}

// Get returns the online entry for a tuple key, or nil.
func (s *Store) Get(key string) *Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.online[key]
}

// GetOffline returns the offline entry for a tuple key, or nil. Offline
// entries survive Forget (tuple expiry).
func (s *Store) GetOffline(key string) *Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.offline[key]
}

// GetAny prefers the online entry and falls back to offline (the paper's
// "in practice, [forensics] would be used in conjunction with online
// provenance").
func (s *Store) GetAny(key string) *Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.online[key]; ok {
		return e
	}
	return s.offline[key]
}

// Forget drops a tuple's online provenance (called when its soft state
// expires). The offline copy, if enabled, remains.
func (s *Store) Forget(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.online, key)
}

// MarkStale flags a withdrawn tuple's provenance, online and offline, at
// logical time at. The record stays queryable (live traceback during a
// churning run sees what the network used to derive); fresh support
// recorded later clears the flag via ClearStale.
func (s *Store) MarkStale(key string, at float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.online[key]; ok {
		e.Stale = true
		e.StaleAt = at
	}
	if e, ok := s.offline[key]; ok {
		e.Stale = true
		e.StaleAt = at
	}
}

// ClearStale unmarks a re-derived tuple's provenance.
func (s *Store) ClearStale(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.online[key]; ok {
		e.Stale = false
	}
	if e, ok := s.offline[key]; ok {
		e.Stale = false
	}
}

// Pin marks a tuple's provenance to persist through age-out (e.g. flagged
// during an anomaly for later forensics, §5).
func (s *Store) Pin(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.online[key]; ok {
		e.Pinned = true
	}
	if e, ok := s.offline[key]; ok {
		e.Pinned = true
	}
}

// AgeOut drops unpinned offline entries recorded before now-maxAge,
// returning how many were dropped.
func (s *Store) AgeOut(now float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.offlineEnabled || s.offlineMaxAge < 0 {
		return 0
	}
	n := 0
	for k, e := range s.offline {
		if !e.Pinned && now-e.At > s.offlineMaxAge {
			delete(s.offline, k)
			n++
		}
	}
	return n
}

// OnlineCount and OfflineCount report store sizes.
func (s *Store) OnlineCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.online)
}

// OfflineCount reports the offline tier size.
func (s *Store) OfflineCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.offline)
}

// Keys returns the online keys sorted (for deterministic iteration in
// tools).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.online))
	for k := range s.online {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FindByTuple returns the online entry whose tuple equals t, or nil.
func (s *Store) FindByTuple(t data.Tuple) *Entry { return s.Get(KeyOf(t)) }
