package provenance

import (
	"strings"
	"testing"

	"provnet/internal/auth"
	"provnet/internal/bdd"
	"provnet/internal/data"
	"provnet/internal/datalog"
	"provnet/internal/engine"
	"provnet/internal/semiring"
)

func linkT(a, b string) data.Tuple {
	return data.NewTuple("link", data.Str(a), data.Str(b)).Says(a)
}

func TestCondensedPaperExample(t *testing.T) {
	// Reproduce Figure 2's condensation at node a: reachable(a,c) has
	// provenance <a + a*b>, condensed to <a>.
	trA := NewTracker(TrackerConfig{Mode: ModeCondensed, Self: "a"})
	trB := NewTracker(TrackerConfig{Mode: ModeCondensed, Self: "b"})

	// At b: link(b,c) base → reachable(b,c) via s1, shipped to a.
	linkBC := trB.Base(linkT("b", "c"))
	reachBC := data.NewTuple("reachable", data.Str("b"), data.Str("c")).Says("b")
	annBC := trB.Derive("s1", "b", reachBC, []engine.AnnTuple{{Tuple: linkT("b", "c"), Ann: linkBC}})
	payload := trB.Export(reachBC, annBC)
	if len(payload) == 0 {
		t.Fatal("condensed export must carry a payload")
	}

	// At a: base links, r1 derivation, import of b's tuple, r2 derivation.
	annLinkAC := trA.Base(linkT("a", "c"))
	annLinkAB := trA.Base(linkT("a", "b"))
	reachAC := data.NewTuple("reachable", data.Str("a"), data.Str("c")).Says("a")
	d1 := trA.Derive("r1", "a", reachAC, []engine.AnnTuple{{Tuple: linkT("a", "c"), Ann: annLinkAC}})

	imported, err := trA.Import(reachBC, payload)
	if err != nil {
		t.Fatal(err)
	}
	d2 := trA.Derive("r2", "a", reachAC, []engine.AnnTuple{
		{Tuple: linkT("a", "b"), Ann: annLinkAB},
		{Tuple: reachBC, Ann: imported},
	})
	merged, changed := trA.Merge(d1, d2)
	// Absorption at work: a + a*b = a, so the merged annotation is
	// UNCHANGED — condensation saves the re-propagation entirely. Whether
	// b is trusted is inconsequential given a (§4.4).
	if changed {
		t.Fatal("a + a*b should not change an existing <a> annotation")
	}
	if got := trA.ExprOf(merged); got != "<a>" {
		t.Fatalf("condensed = %q, want <a>", got)
	}
	// A genuinely new alternative (via a different principal) does change
	// the annotation.
	trC := NewTracker(TrackerConfig{Mode: ModeCondensed, Self: "c"})
	_ = trC
	dOther := trA.Manager().Var("c")
	m2, changed2 := trA.Merge(merged, dOther)
	if !changed2 || trA.ExprOf(m2) != "<a + c>" {
		t.Fatalf("merge with c: changed=%v expr=%s", changed2, trA.ExprOf(m2))
	}
	// Merging the same derivation again changes nothing.
	if _, again := trA.Merge(merged, d2); again {
		t.Error("idempotent merge")
	}
	// Quantifiable: evaluate the polynomial under Trust.
	p := trA.PolyOf(merged)
	levels := map[string]int64{"a": 2, "b": 1}
	if got := semiring.Eval[int64](p, semiring.Trust{}, func(v string) int64 { return levels[v] }); got != 2 {
		t.Errorf("trust = %d, want 2", got)
	}
}

func TestCondensedImportAcrossManagers(t *testing.T) {
	// Receiving managers may have different variable orders.
	trA := NewTracker(TrackerConfig{Mode: ModeCondensed, Self: "a"})
	trB := NewTracker(TrackerConfig{Mode: ModeCondensed, Self: "b"})
	trB.Manager().DeclareOrder("z9", "a", "b") // deliberately different order
	ann := trA.Base(linkT("a", "b"))
	tu := linkT("a", "b")
	got, err := trB.Import(tu, trA.Export(tu, ann))
	if err != nil {
		t.Fatal(err)
	}
	if trB.ExprOf(got) != "<a>" {
		t.Errorf("imported expr = %s", trB.ExprOf(got))
	}
}

func TestLocalModeTreeShipping(t *testing.T) {
	trB := NewTracker(TrackerConfig{Mode: ModeLocal, Self: "b"})
	linkBC := trB.Base(linkT("b", "c"))
	reachBC := data.NewTuple("reachable", data.Str("b"), data.Str("c")).Says("b")
	ann := trB.Derive("s1", "b", reachBC, []engine.AnnTuple{{Tuple: linkT("b", "c"), Ann: linkBC}})
	payload := trB.Export(reachBC, ann)

	trA := NewTracker(TrackerConfig{Mode: ModeLocal, Self: "a"})
	imported, err := trA.Import(reachBC, payload)
	if err != nil {
		t.Fatal(err)
	}
	tree, ok := imported.(*Tree)
	if !ok {
		t.Fatalf("imported type %T", imported)
	}
	// The complete derivation tree arrived: leaf is link(b,c).
	leaves := tree.Leaves()
	if len(leaves) != 1 || leaves[0].Pred != "link" {
		t.Fatalf("leaves = %v", leaves)
	}
	if tree.Derivs[0].Rule != "s1" || tree.Derivs[0].Loc != "b" {
		t.Errorf("deriv = %+v", tree.Derivs[0])
	}
}

func TestLocalModeMergeAlternatives(t *testing.T) {
	tr := NewTracker(TrackerConfig{Mode: ModeLocal, Self: "a"})
	head := data.NewTuple("reachable", data.Str("a"), data.Str("c"))
	// Derivation 1 (r1): from link(a,c) said by a.
	a1 := tr.Derive("r1", "a", head, []engine.AnnTuple{{Tuple: linkT("a", "c"), Ann: tr.Base(linkT("a", "c"))}})
	// Derivation 2 (r2): from link(a,b) said by a joined with
	// reachable(b,c) said by b — Figure 2's second branch.
	reachBC := NewLeaf(data.NewTuple("reachable", data.Str("b"), data.Str("c")).Says("b"))
	a2 := tr.Derive("r2", "a", head, []engine.AnnTuple{
		{Tuple: linkT("a", "b"), Ann: tr.Base(linkT("a", "b"))},
		{Tuple: reachBC.Tuple, Ann: reachBC},
	})
	merged, changed := tr.Merge(a1, a2)
	if !changed {
		t.Fatal("alternative derivation must merge")
	}
	tree := merged.(*Tree)
	if len(tree.Derivs) != 2 {
		t.Fatalf("derivs = %d", len(tree.Derivs))
	}
	// The uncondensed tree provenance is the paper's a + a*b.
	if got := TreePoly(tree, "a").String(); got != "a + a*b" {
		t.Errorf("poly = %s, want a + a*b", got)
	}
}

func TestAuthenticatedProvenanceVerifies(t *testing.T) {
	dir := auth.NewDeterministicDirectory(3)
	dir.SetKeyBits(512)
	for _, p := range []string{"a", "b"} {
		if err := dir.AddPrincipal(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	signer := auth.NewRSASigner(dir)
	trB := NewTracker(TrackerConfig{Mode: ModeLocal, Self: "b", Signer: signer})
	linkAnn := trB.Base(linkT("b", "c"))
	reachBC := data.NewTuple("reachable", data.Str("b"), data.Str("c")).Says("b")
	ann := trB.Derive("s1", "b", reachBC, []engine.AnnTuple{{Tuple: linkT("b", "c"), Ann: linkAnn}})
	payload := trB.Export(reachBC, ann)

	trA := NewTracker(TrackerConfig{Mode: ModeLocal, Self: "a", Signer: signer})
	if _, err := trA.Import(reachBC, payload); err != nil {
		t.Fatalf("valid provenance must verify: %v", err)
	}

	// Tamper with an inner node: replace the leaf's tuple.
	tree, _ := UnmarshalTree(payload)
	tree.Derivs[0].Children[0].Tuple = linkT("b", "zz")
	_, impErr := trA.Import(reachBC, tree.Marshal())
	if impErr == nil {
		t.Fatal("tampered inner node must be rejected")
	}
	if !strings.Contains(impErr.Error(), "signature") {
		t.Errorf("error should mention signature: %v", impErr)
	}
}

func TestDistributedModeRecordsPointers(t *testing.T) {
	storeA := NewStore("a")
	trA := NewTracker(TrackerConfig{Mode: ModeDistributed, Self: "a", Store: storeA})
	la := linkT("a", "b")
	annL := trA.Base(la)
	if r, ok := annL.(Ref); !ok || r.Node != "a" {
		t.Fatalf("base ann = %v", annL)
	}
	head := data.NewTuple("reachable", data.Str("a"), data.Str("b")).Says("a")
	annH := trA.Derive("r1", "a", head, []engine.AnnTuple{{Tuple: la, Ann: annL}})
	payload := trA.Export(head, annH)

	// The payload is just the pointer — tiny.
	if len(payload) == 0 || len(payload) > 200 {
		t.Fatalf("pointer payload size = %d", len(payload))
	}
	// Receiving side records the origin.
	storeB := NewStore("b")
	trB := NewTracker(TrackerConfig{Mode: ModeDistributed, Self: "b", Store: storeB})
	if _, e := trB.Import(head, payload); e != nil {
		t.Fatal(e)
	}
	entry := storeB.Get(KeyOf(head))
	if entry == nil || len(entry.Origins) != 1 || entry.Origins[0].Node != "a" {
		t.Fatalf("origin entry = %+v", entry)
	}
	// And a's store has the derivation.
	ea := storeA.Get(KeyOf(head))
	if ea == nil || len(ea.Derivs) != 1 || ea.Derivs[0].Rule != "r1" {
		t.Fatalf("a's entry = %+v", ea)
	}
}

func TestSamplingRecordsFraction(t *testing.T) {
	store := NewStore("a")
	tr := NewTracker(TrackerConfig{Mode: ModeDistributed, Self: "a", Store: store, SampleEvery: 10})
	for i := 0; i < 100; i++ {
		head := data.NewTuple("p", data.Int(int64(i)))
		tr.Derive("r", "a", head, nil)
	}
	// Exactly 1 in 10 derivations recorded.
	n := 0
	for i := 0; i < 100; i++ {
		if store.Get(KeyOf(data.NewTuple("p", data.Int(int64(i))))) != nil {
			n++
		}
	}
	if n != 10 {
		t.Errorf("sampled entries = %d, want 10", n)
	}
}

func TestModeNoneIsInert(t *testing.T) {
	tr := NewTracker(TrackerConfig{Mode: ModeNone, Self: "a"})
	tu := linkT("a", "b")
	if tr.Base(tu) != nil {
		t.Error("none base")
	}
	if got := tr.Export(tu, nil); got != nil {
		t.Error("none export")
	}
	ann, e := tr.Import(tu, nil)
	if e != nil || ann != nil {
		t.Error("none import")
	}
	if _, changed := tr.Merge(nil, nil); changed {
		t.Error("none merge")
	}
}

func TestTrackerAsEngineHook(t *testing.T) {
	// Integration: run the engine with a condensed tracker and check the
	// stored annotation.
	tr := NewTracker(TrackerConfig{Mode: ModeCondensed, Self: "a"})
	e := engine.New(engine.Config{Self: "a", Authenticated: true, Hook: tr})
	prog := mustLocalized(t, `
s1 reachable(S,D) :- link(S,D).
`)
	if err := e.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	e.InsertFact(data.NewTuple("link", data.Str("a"), data.Str("b")))
	e.RunToFixpoint()
	got := e.Tuples("reachable")
	if len(got) != 1 {
		t.Fatalf("reachable = %v", got)
	}
	ann := e.AnnotationOf(got[0])
	if tr.ExprOf(ann) != "<a>" {
		t.Errorf("annotation = %s", tr.ExprOf(ann))
	}
	if _, ok := ann.(bdd.Node); !ok {
		t.Errorf("annotation type %T", ann)
	}
}

func mustLocalized(t *testing.T, src string) *datalog.Program {
	t.Helper()
	prog, e1 := datalog.Parse("At S:\n" + src)
	if e1 != nil {
		t.Fatal(e1)
	}
	out, e2 := datalog.Localize(prog)
	if e2 != nil {
		t.Fatal(e2)
	}
	return out
}
