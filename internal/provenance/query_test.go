package provenance

import (
	"math/rand"
	"strings"
	"testing"

	"provnet/internal/data"
)

// buildDistributedScenario wires stores for the paper's 3-node example
// with distributed provenance: reachable(a,c) derived at a via r1 and r2,
// where the r2 child reachable(b,c) was derived at b and shipped to a.
func buildDistributedScenario() (map[string]*Store, string) {
	stores := map[string]*Store{
		"a": NewStore("a"),
		"b": NewStore("b"),
	}
	linkAB := data.NewTuple("link", data.Str("a"), data.Str("b")).Says("a")
	linkAC := data.NewTuple("link", data.Str("a"), data.Str("c")).Says("a")
	linkBC := data.NewTuple("link", data.Str("b"), data.Str("c")).Says("b")
	reachBCb := data.NewTuple("reachable", data.Str("b"), data.Str("c")).Says("b")
	reachAC := data.NewTuple("reachable", data.Str("a"), data.Str("c")).Says("a")

	stores["a"].RecordBase(linkAB, 0)
	stores["a"].RecordBase(linkAC, 0)
	stores["b"].RecordBase(linkBC, 0)
	// b derives reachable(b,c) locally.
	stores["b"].RecordDeriv(reachBCb, "s1", []Ref{{Node: "b", Key: KeyOf(linkBC)}}, 1)
	// a received reachable(b,c) from b.
	stores["a"].RecordOrigin(reachBCb, Ref{Node: "b", Key: KeyOf(reachBCb)}, 2)
	// a derives reachable(a,c) two ways.
	stores["a"].RecordDeriv(reachAC, "r1", []Ref{{Node: "a", Key: KeyOf(linkAC)}}, 3)
	stores["a"].RecordDeriv(reachAC, "r2", []Ref{
		{Node: "a", Key: KeyOf(linkAB)},
		{Node: "a", Key: KeyOf(reachBCb)},
	}, 3)
	return stores, KeyOf(reachAC)
}

func resolver(stores map[string]*Store) Resolver {
	return ResolverFunc(func(n string) *Store { return stores[n] })
}

func TestTraceFullTree(t *testing.T) {
	stores, key := buildDistributedScenario()
	tree, stats, err := Trace(resolver(stores), "a", key, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Derivs) != 2 {
		t.Fatalf("derivs = %d\n%s", len(tree.Derivs), tree.Render(nil))
	}
	// The traceback crossed to node b exactly once (for reachable(b,c)).
	if stats.Messages != 1 {
		t.Errorf("messages = %d, want 1", stats.Messages)
	}
	if stats.NodesVisited != 2 {
		t.Errorf("nodes visited = %d, want 2", stats.NodesVisited)
	}
	if stats.Bytes <= 0 {
		t.Error("remote hop must charge bytes")
	}
	// The reconstructed tree bottoms out at the three base links.
	leaves := tree.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %v\n%s", leaves, tree.Render(nil))
	}
	out := tree.Render(nil)
	for _, want := range []string{"r1 @a", "r2 @a", "s1 @b", "@recv @a"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceMissingEntry(t *testing.T) {
	stores, _ := buildDistributedScenario()
	if _, _, err := Trace(resolver(stores), "a", "nonsense-key", QueryOpts{}); err == nil {
		t.Fatal("missing root entry must fail")
	}
	if _, _, err := Trace(resolver(stores), "ghost", "k", QueryOpts{}); err == nil {
		t.Fatal("unknown node must fail")
	}
}

func TestTraceBrokenPointerTruncates(t *testing.T) {
	stores, key := buildDistributedScenario()
	// Damage: b forgets everything (e.g. aged out). The trace still
	// returns, with the remote subtree truncated.
	stores["b"] = NewStore("b")
	tree, _, err := Trace(resolver(stores), "a", key, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.Render(nil), "(truncated)") {
		t.Errorf("expected truncated marker:\n%s", tree.Render(nil))
	}
}

func TestTraceOfflineFallback(t *testing.T) {
	stores, key := buildDistributedScenario()
	stores["b"].EnableOffline(-1)
	// Re-record to mirror into offline, then expire the online state.
	linkBC := data.NewTuple("link", data.Str("b"), data.Str("c")).Says("b")
	reachBCb := data.NewTuple("reachable", data.Str("b"), data.Str("c")).Says("b")
	stores["b"].RecordBase(linkBC, 0)
	stores["b"].RecordDeriv(reachBCb, "s1", []Ref{{Node: "b", Key: KeyOf(linkBC)}}, 1)
	stores["b"].Forget(KeyOf(linkBC))
	stores["b"].Forget(KeyOf(reachBCb))

	// Online-only trace truncates at b.
	tree, _, err := Trace(resolver(stores), "a", key, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.Render(nil), "(truncated)") {
		t.Error("online trace should truncate at expired state")
	}
	// Offline trace reconstructs fully — the forensics use case (§4.2).
	tree2, _, err := Trace(resolver(stores), "a", key, QueryOpts{Offline: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tree2.Render(nil), "(truncated)") {
		t.Errorf("offline trace should be complete:\n%s", tree2.Render(nil))
	}
	if len(tree2.Leaves()) != 3 {
		t.Errorf("offline leaves = %v", tree2.Leaves())
	}
}

func TestMoonwalkSamplesOnePath(t *testing.T) {
	stores, key := buildDistributedScenario()
	rng := rand.New(rand.NewSource(1))
	tree, stats, err := Trace(resolver(stores), "a", key, QueryOpts{Moonwalk: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// A moonwalk keeps exactly one derivation per node and one child per
	// derivation: the tree is a path.
	cur := tree
	for len(cur.Derivs) > 0 {
		if len(cur.Derivs) != 1 || len(cur.Derivs[0].Children) != 1 {
			t.Fatalf("moonwalk produced branching:\n%s", tree.Render(nil))
		}
		cur = cur.Derivs[0].Children[0]
	}
	// It ends at a base tuple and costs at most the full trace.
	if cur.Tuple.Pred != "link" && !cur.Truncated {
		t.Errorf("moonwalk end = %v", cur.Tuple)
	}
	if stats.Entries > 5 {
		t.Errorf("moonwalk read %d entries", stats.Entries)
	}
	// Requires an Rng.
	if _, _, err := Trace(resolver(stores), "a", key, QueryOpts{Moonwalk: true}); err == nil {
		t.Error("moonwalk without rng must fail")
	}
}

func TestTraceCycleTerminates(t *testing.T) {
	// Mutually derived tuples (possible with cyclic rules) must not hang.
	s := NewStore("a")
	p := data.NewTuple("p", data.Int(1))
	q := data.NewTuple("q", data.Int(1))
	s.RecordDeriv(p, "r1", []Ref{{Node: "a", Key: KeyOf(q)}}, 0)
	s.RecordDeriv(q, "r2", []Ref{{Node: "a", Key: KeyOf(p)}}, 0)
	tree, _, err := Trace(resolver(map[string]*Store{"a": s}), "a", KeyOf(p), QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.Render(nil), "(truncated)") {
		t.Error("cycle must truncate")
	}
}

func TestTraceDepthLimit(t *testing.T) {
	// A chain longer than MaxDepth truncates.
	s := NewStore("a")
	var prev data.Tuple
	for i := 0; i < 30; i++ {
		cur := data.NewTuple("c", data.Int(int64(i)))
		if i > 0 {
			s.RecordDeriv(cur, "step", []Ref{{Node: "a", Key: KeyOf(prev)}}, 0)
		} else {
			s.RecordBase(cur, 0)
		}
		prev = cur
	}
	tree, _, err := Trace(resolver(map[string]*Store{"a": s}), "a", KeyOf(prev), QueryOpts{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 7 {
		t.Errorf("depth = %d exceeds limit", tree.Depth())
	}
	if !strings.Contains(tree.Render(nil), "(truncated)") {
		t.Error("deep chain must truncate")
	}
}
