package lint

// Config scopes the analyzers. DefaultConfig encodes this repo's
// invariants (docs/LINTING.md); tests substitute configs that point
// the same analyzers at testdata packages.
type Config struct {
	// Module is the module path ("provnet").
	Module string

	// MapIterPkgs are the packages whose output feeds a determinism
	// pin (ordered commit/export, seal/send, store append, wire
	// encode): every range over a map there must be provably
	// order-insensitive (collect-then-sort) or annotated.
	MapIterPkgs []string

	// DetPathPkgs are the packages that must be free of wall-clock
	// and randomness reads (time.Now/Since, math/rand) and of
	// formatting map values directly.
	DetPathPkgs []string

	// DataPkg is the package defining Tuple.Key/Value.Key ("the wire
	// codec"); KeyString flags calls to those methods anywhere else.
	DataPkg string

	// KeyStringPkgs are additional packages where Key() bytes are the
	// contract (none by default: the store-state and provenance
	// callers carry per-site annotations instead, so each use states
	// its reason).
	KeyStringPkgs []string

	// KeyStringFuncs maps package path -> function names allowed to
	// call Key() (provenance.KeyOf: sha256 over the canonical bytes
	// IS the wire-format provenance pointer).
	KeyStringFuncs map[string][]string

	// Layers are the import-boundary rules from docs/ARCHITECTURE.md's
	// package map.
	Layers []LayerRule

	// ObsPkg is the metrics package; NilMetrics forbids bypassing its
	// nil-safe method surface (field access or dereference of an
	// instrument) everywhere outside it.
	ObsPkg string
}

// A LayerRule forbids a package from importing certain paths. A Deny
// entry ending in "/" is a prefix; Except carves exact paths back out.
type LayerRule struct {
	Pkg    string
	Deny   []string
	Except []string
	Why    string
}

// DefaultConfig returns the rule tables for this repository.
func DefaultConfig() *Config {
	const m = "provnet"
	return &Config{
		Module: m,
		MapIterPkgs: []string{
			m + "/internal/engine",   // ordered-commit/export stage
			m + "/internal/core",     // seal/send + wire encode
			m + "/internal/storelog", // store append/snapshot
			m + "/internal/data",     // wire codec
		},
		DetPathPkgs: []string{
			m + "/internal/engine",
			m + "/internal/data",
			m + "/internal/core", // round functions; metrics/driver timing sites are annotated
		},
		DataPkg: m + "/internal/data",
		KeyStringFuncs: map[string][]string{
			m + "/internal/provenance": {"KeyOf"},
		},
		Layers: []LayerRule{
			{
				Pkg:  m + "/internal/engine",
				Deny: []string{m + "/internal/obs", m + "/internal/core"},
				Why:  "engine is instrumented from core via sampling, never imports obs or its caller",
			},
			{
				Pkg:  m + "/internal/nettcp",
				Deny: []string{m + "/internal/obs", m + "/internal/core"},
				Why:  "transports implement core.Transport structurally; obs reads netsim.Stats from outside",
			},
			{
				Pkg:    m + "/internal/data",
				Deny:   []string{m + "/internal/"},
				Except: nil,
				Why:    "the tuple/value model and wire codec sit at the bottom of the package map",
			},
			{
				Pkg:  m + "/internal/queryapi",
				Deny: []string{m + "/internal/engine"},
				Why:  "the query API reads published ReadView snapshots, never the live engines",
			},
		},
		ObsPkg: m + "/internal/obs",
	}
}
