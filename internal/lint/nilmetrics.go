package lint

import (
	"go/ast"
	"go/types"
)

// NilMetrics protects the zero-cost-when-disabled contract of the obs
// package: a nil *obs.Counter/Gauge/Histogram/Metrics IS the no-op
// implementation, so instrumented code must touch instruments only
// through their nil-safe methods. Dereferencing one (*c) or reaching
// into its fields panics the first time metrics are left disabled —
// which is the default, so the panic ships. The check applies
// everywhere outside the obs package itself.
var NilMetrics = &Analyzer{
	Name: "nilmetrics",
	Doc:  "obs instrument used outside its nil-safe method surface",
	Run:  runNilMetrics,
}

// obsInstruments are the nil-safe types; the registry (obs.Metrics)
// and flight recorder carry the same contract as the leaf instruments.
var obsInstruments = []string{"Counter", "Gauge", "Histogram", "Metrics", "Flight"}

func runNilMetrics(p *Pass) {
	cfg := p.Config
	if p.Path == cfg.ObsPkg {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				// Distinguish a dereference from the type expression
				// *obs.Counter: only flag when the operand is a value
				// of pointer-to-instrument type.
				t := p.Info.TypeOf(n.X)
				ptr, ok := t.(*types.Pointer)
				if !ok || !namedIn(ptr, cfg.ObsPkg, obsInstruments...) {
					return true
				}
				if _, isType := p.Info.Types[n.X]; isType && p.Info.Types[n.X].IsType() {
					return true
				}
				p.Reportf(n.Pos(), "nilmetrics",
					"dereference of %s: nil is the disabled instrument; use its nil-safe methods",
					types.TypeString(t, types.RelativeTo(p.Pkg)))
			case *ast.SelectorExpr:
				selInfo, ok := p.Info.Selections[n]
				if !ok || selInfo.Kind() != types.FieldVal {
					return true
				}
				if !namedIn(selInfo.Recv(), cfg.ObsPkg, obsInstruments...) {
					return true
				}
				p.Reportf(n.Pos(), "nilmetrics",
					"field access on %s bypasses the nil-safe method surface",
					types.TypeString(selInfo.Recv(), types.RelativeTo(p.Pkg)))
			}
			return true
		})
	}
}
