package lint

import (
	"go/ast"
	"go/types"
)

// KeyString enforces PR 7's contract on the canonical string
// encoding: Tuple.Key()/Value.Key() allocate and exist only where
// their bytes ARE the contract — the wire codec (the data package
// itself) and the provenance pointer (provenance.KeyOf, sha256 over
// those bytes, frozen by docs/WIRE.md). Everywhere else comparisons
// and indexing must go through cached structural hashes + Equal;
// before PR 7 stray Key() callers were the dominant allocation source
// in the evaluation window, and this check was a code comment.
var KeyString = &Analyzer{
	Name: "keystring",
	Doc:  "Tuple.Key()/Value.Key() outside the wire/provenance contract",
	Run:  runKeyString,
}

func runKeyString(p *Pass) {
	cfg := p.Config
	if p.Path == cfg.DataPkg || p.inScope(cfg.KeyStringPkgs) {
		return
	}
	allowedFuncs := make(map[string]bool)
	for _, fn := range cfg.KeyStringFuncs[p.Path] {
		allowedFuncs[fn] = true
	}
	eachFunc(p, func(funcName string, body *ast.BlockStmt) {
		if allowedFuncs[funcName] {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Name() != "Key" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if !namedIn(sig.Recv().Type(), cfg.DataPkg, "Tuple", "Value") {
				return true
			}
			p.Reportf(sel.Pos(), "keystring",
				"%s.Key() outside the wire codec and provenance.KeyOf: compare with Equal/Hash instead, or annotate the contract site //provlint:allow keystring <reason>",
				types.TypeString(sig.Recv().Type(), types.RelativeTo(p.Pkg)))
			return true
		})
	})
}
