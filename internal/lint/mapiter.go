package lint

import (
	"go/ast"
	"go/types"
)

// MapIter flags iteration over map types inside the packages whose
// outputs are pinned bit-identical across schedules (engine ordered
// commit/export, core seal/send and wire encode, storelog append,
// data codec). Go randomizes map iteration order per run, so any map
// range on those paths is a latent determinism bug — the exact class
// PR 4 hunted by hand before the ordered-commit stage existed.
//
// One shape is recognized as safe without annotation: a loop whose
// body only appends to slices, at least one of which the enclosing
// function also sorts (collect-then-sort). Everything else needs
// either a refactor or a //provlint:allow mapiter <reason> stating
// why order cannot escape.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "range over a map on an order-pinned path",
	Run:  runMapIter,
}

func runMapIter(p *Pass) {
	if !p.inScope(p.Config.MapIterPkgs) {
		return
	}
	eachFunc(p, func(name string, body *ast.BlockStmt) {
		sorted := sortedObjects(p, body)
		ast.Inspect(body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectThenSort(p, rs, sorted) {
				return true
			}
			p.Reportf(rs.For, "mapiter",
				"range over map %s: iteration order is randomized; sort keys first or annotate //provlint:allow mapiter <reason>",
				types.TypeString(t, types.RelativeTo(p.Pkg)))
			return true
		})
	})
}

// sortedObjects collects every object passed to a sort.*/slices.Sort*
// call anywhere in the function: the candidates a collect-then-sort
// loop may append into.
func sortedObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil {
			if pn, ok := obj.(*types.PkgName); !ok || (pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
				return true
			}
		} else {
			return true
		}
		for _, arg := range call.Args {
			if obj := exprObject(p, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isCollectThenSort reports whether the range body consists solely of
// `s = append(s, ...)` statements and at least one such s is sorted
// somewhere in the enclosing function.
func isCollectThenSort(p *Pass, rs *ast.RangeStmt, sorted map[types.Object]bool) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	anySorted := false
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if obj, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin || obj == nil {
			return false
		}
		if obj := exprObject(p, as.Lhs[0]); obj != nil && sorted[obj] {
			anySorted = true
		}
	}
	return anySorted
}

// exprObject resolves an identifier (possibly behind a selector, for
// struct fields) to its object.
func exprObject(p *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}
