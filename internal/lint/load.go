package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked unit handed to the analyzers.
type Package struct {
	Path  string // import path (rule matching keys on this)
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	fset  *token.FileSet
}

// Loader resolves and type-checks packages without any dependency
// beyond the go toolchain itself: one `go list -export -deps` run
// yields compiled export data for every import (stdlib included), and
// module packages are re-parsed from source so the analyzers get
// syntax trees with comments.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod
	Fset   *token.FileSet

	exports map[string]string   // import path -> export data file
	goFiles map[string][]string // module import path -> absolute GoFiles
	dirs    map[string]string   // module import path -> directory
	imp     types.Importer
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// extraStdlib is type-check support for ad-hoc directories (lint
// testdata): packages a testdata file may import even though the
// module proper does not depend on them.
var extraStdlib = []string{"fmt", "math/rand", "sort", "strings", "time"}

// NewLoader finds the module root at or above startDir and indexes the
// build via `go list`. The tree must compile: lint runs after build in
// CI, and a non-compiling tree is reported here rather than half-
// analyzed.
func NewLoader(startDir string) (*Loader, error) {
	root, err := findModuleRoot(startDir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	args := []string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module", "./..."}
	args = append(args, extraStdlib...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export failed: %v\n%s", err, stderr.String())
	}

	l := &Loader{
		Root:    root,
		Module:  module,
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
		goFiles: make(map[string][]string),
		dirs:    make(map[string]string),
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil && p.Module.Path == module {
			files := make([]string, 0, len(p.GoFiles))
			for _, f := range p.GoFiles {
				files = append(files, filepath.Join(p.Dir, f))
			}
			l.goFiles[p.ImportPath] = files
			l.dirs[p.ImportPath] = p.Dir
		}
	}

	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not a dependency of %s)", path, module)
		}
		return os.Open(exp)
	})
	return l, nil
}

// ModulePaths returns every package path in the module, sorted.
func (l *Loader) ModulePaths() []string {
	paths := make([]string, 0, len(l.goFiles))
	for p := range l.goFiles {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// LoadModulePackages parses and type-checks every package in the
// module (non-test files; testdata directories are invisible to the
// go tool and are loaded explicitly with LoadDir).
func (l *Loader) LoadModulePackages() ([]*Package, error) {
	var pkgs []*Package
	for _, path := range l.ModulePaths() {
		pkg, err := l.load(path, l.dirs[path], l.goFiles[path])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks one directory as an ad-hoc package
// under the given import path. Used for lint's own testdata packages
// and for explicit directory arguments to cmd/provlint.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.load(asPath, dir, files)
}

func (l *Loader) load(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info, fset: l.Fset}, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}
