// Package lint is provlint's analysis kit: a dependency-free static
// analyzer suite (stdlib go/parser + go/types over export data from
// one `go list -export` run) that mechanically enforces the repo's
// determinism, layering, and hot-path invariants — the properties the
// runtime determinism pins (docs/ARCHITECTURE.md) can only spot-check
// after the fact. docs/LINTING.md documents each check, the runtime
// pin it backs up, and the `//provlint:allow <check> <reason>` escape
// hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, DetPath, KeyString, Layering, NilMetrics}
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Path   string
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Config *Config

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// inScope reports whether the pass's package is in the given
// exact-path scope list.
func (p *Pass) inScope(paths []string) bool {
	for _, s := range paths {
		if p.Path == s {
			return true
		}
	}
	return false
}

// allowDirective is the comment prefix of the escape hatch:
//
//	//provlint:allow <check> <reason>
//
// placed on the flagged line or the line directly above it. Every
// allow must name the check it suppresses and give a reason; an allow
// that suppresses nothing is itself a finding (stale annotations rot
// into silent holes).
const allowDirective = "//provlint:allow"

type allowEntry struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// collectAllows indexes every allow directive in the package by
// (filename, target line): a directive trailing code suppresses its
// own line, one on a line of its own suppresses the next line —
// never both, so an allow can't silently swallow the finding on an
// adjacent statement. Malformed directives are reported immediately.
func collectAllows(pkg *Package, diags *[]Diagnostic) map[string]map[int][]*allowEntry {
	idx := make(map[string]map[int][]*allowEntry)
	srcLines := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				pos := pkg.fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowDirective))
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Pos:     pos,
						Check:   "allow",
						Message: "malformed directive: want //provlint:allow <check> <reason>",
					})
					continue
				}
				target := pos.Line
				if ownLine(srcLines, pos) {
					target = pos.Line + 1
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowEntry)
					idx[pos.Filename] = byLine
				}
				byLine[target] = append(byLine[target], &allowEntry{
					pos:    pos,
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return idx
}

// ownLine reports whether only whitespace precedes the comment at pos.
func ownLine(cache map[string][]string, pos token.Position) bool {
	lines, ok := cache[pos.Filename]
	if !ok {
		b, err := os.ReadFile(pos.Filename)
		if err == nil {
			lines = strings.Split(string(b), "\n")
		}
		cache[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) || pos.Column-1 > len(lines[pos.Line-1]) {
		return false
	}
	return strings.TrimSpace(lines[pos.Line-1][:pos.Column-1]) == ""
}

// Run applies the analyzers to each package, resolves allow
// directives (a directive on the flagged line or the line above
// suppresses matching findings), reports unused directives, and
// returns all surviving diagnostics sorted by position.
//
// An unused directive is only reported when the check it names was
// actually part of this run — under a -checks subset, allows for the
// skipped checks are dormant, not stale. A directive naming a check
// that does not exist at all is always reported (typos must not rot
// into silent holes).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		pass := &Pass{
			Path:   pkg.Path,
			Fset:   fset,
			Files:  pkg.Files,
			Pkg:    pkg.Pkg,
			Info:   pkg.Info,
			Config: cfg,
			diags:  &raw,
		}
		for _, a := range analyzers {
			a.Run(pass)
		}

		var kept []Diagnostic
		allows := collectAllows(pkg, &kept)
		for _, d := range raw {
			if e := matchAllow(allows, d); e != nil {
				e.used = true
				continue
			}
			kept = append(kept, d)
		}
		for _, byLine := range allows {
			for _, entries := range byLine {
				for _, e := range entries {
					switch {
					case e.used:
					case !known[e.check]:
						kept = append(kept, Diagnostic{
							Pos:     e.pos,
							Check:   "allow",
							Message: fmt.Sprintf("//provlint:allow names unknown check %q", e.check),
						})
					case ran[e.check]:
						kept = append(kept, Diagnostic{
							Pos:     e.pos,
							Check:   "allow",
							Message: fmt.Sprintf("unused //provlint:allow %s directive (suppresses nothing; remove it)", e.check),
						})
					}
				}
			}
		}
		out = append(out, kept...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

func matchAllow(idx map[string]map[int][]*allowEntry, d Diagnostic) *allowEntry {
	for _, e := range idx[d.Pos.Filename][d.Pos.Line] {
		if e.check == d.Check {
			return e
		}
	}
	return nil
}

// --- shared type helpers ---

// namedIn dereferences pointers and reports whether t is the named
// type pkgPath.name (or one of names when several are given).
func namedIn(t types.Type, pkgPath string, names ...string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// funcObjIs reports whether obj is the function pkgPath.name.
func funcObjIs(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// eachFunc walks every function (decl or literal body is walked by
// the visitor itself) in the pass, handing the enclosing FuncDecl
// name ("" at file scope) to the visitor.
func eachFunc(p *Pass, visit func(funcName string, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd.Name.Name, fd.Body)
		}
	}
}
