package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetPath keeps the deterministic evaluation core free of hidden
// nondeterminism inputs: reading the wall clock (time.Now/Since),
// randomness (any math/rand import), or formatting a map value
// directly (fmt sorts keys since Go 1.12, but pointer- and NaN-keyed
// maps still render run-dependent bytes). Bit-identical replay —
// parallel ≡ sequential ≡ sharded ≡ TCP, and storelog recovery ≡ the
// live run — only holds if every input reaches the engine through the
// explicit event stream. Timing for metrics is legitimate and lives
// behind per-site annotations (the scheduler's instrumented wrappers,
// the driver's epoch clock).
var DetPath = &Analyzer{
	Name: "detpath",
	Doc:  "wall clock, randomness, or map formatting in the deterministic core",
	Run:  runDetPath,
}

func runDetPath(p *Pass) {
	if !p.inScope(p.Config.DetPathPkgs) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "detpath",
					"import of %s in a deterministic package: derive pseudo-randomness from Config.Seed instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := p.Info.Uses[n.Sel]
				if funcObjIs(obj, "time", "Now") || funcObjIs(obj, "time", "Since") {
					p.Reportf(n.Pos(), "detpath",
						"time.%s on a deterministic path: wall-clock reads diverge across schedules; thread logical time through the event stream or annotate the timing site", obj.Name())
				}
			case *ast.CallExpr:
				checkMapFormat(p, n)
			}
			return true
		})
	}
}

// checkMapFormat flags fmt verbs applied to map-typed arguments.
func checkMapFormat(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	name := fn.Name()
	if !strings.Contains(name, "Print") && !strings.Contains(name, "print") &&
		name != "Errorf" && name != "Sprintf" && name != "Fprintf" && name != "Appendf" {
		return
	}
	for _, arg := range call.Args {
		t := p.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			p.Reportf(arg.Pos(), "detpath",
				"formatting a map (%s) with fmt.%s: rendered bytes can depend on key representation; print sorted entries explicitly",
				types.TypeString(t, types.RelativeTo(p.Pkg)), name)
		}
	}
}
