package lint

import "strings"

// Layering enforces the import boundaries of docs/ARCHITECTURE.md's
// package map: engine and nettcp never import obs or core (they are
// observed and driven from above, through sampling and structural
// interfaces), data imports no other internal package (it is the
// bottom of the map), and queryapi never touches engine directly (it
// reads published ReadView snapshots). These boundaries are what let
// PR 8 instrument four layers without entangling them; until now they
// held by review only.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "import crosses a package boundary from the architecture map",
	Run:  runLayering,
}

func runLayering(p *Pass) {
	var rule *LayerRule
	for i := range p.Config.Layers {
		if p.Config.Layers[i].Pkg == p.Path {
			rule = &p.Config.Layers[i]
			break
		}
	}
	if rule == nil {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !denied(rule, path) {
				continue
			}
			why := rule.Why
			if why != "" {
				why = " (" + why + ")"
			}
			p.Reportf(imp.Pos(), "layering",
				"%s must not import %s%s", p.Path, path, why)
		}
	}
}

func denied(rule *LayerRule, path string) bool {
	for _, ex := range rule.Except {
		if path == ex {
			return false
		}
	}
	for _, d := range rule.Deny {
		if strings.HasSuffix(d, "/") {
			if strings.HasPrefix(path, d) && path != rule.Pkg {
				return true
			}
		} else if path == d {
			return true
		}
	}
	return false
}
