package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// testLoader shares one Loader (one `go list -export` run) across the
// package's tests.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// tdPath is the import path testdata packages are analyzed under; the
// per-test configs scope the analyzers to these paths.
func tdPath(name string) string { return "provnet/internal/lint/testdata/src/" + name }

func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), tdPath(name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return pkg
}

func runTestdata(t *testing.T, name string, a *Analyzer, cfg *Config) []Diagnostic {
	t.Helper()
	pkg := loadTestdata(t, name)
	return Run(testLoader(t).Fset, []*Package{pkg}, []*Analyzer{a}, cfg)
}

// wantRe matches the golden expectation comments: // want "regexp"
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// checkWants compares diagnostics against the // want comments in
// every file of the testdata directory: each want must be matched by a
// diagnostic on its line, and every diagnostic must be wanted.
func checkWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func goldenConfig(name string) *Config {
	cfg := DefaultConfig()
	switch name {
	case "mapiter":
		cfg.MapIterPkgs = []string{tdPath(name)}
	case "detpath":
		cfg.DetPathPkgs = []string{tdPath(name)}
	case "keystring":
		cfg.KeyStringFuncs = map[string][]string{tdPath(name): {"KeyOf"}}
	case "layering":
		cfg.Layers = []LayerRule{{
			Pkg:    tdPath(name),
			Deny:   []string{"provnet/internal/"},
			Except: []string{"provnet/internal/obs"},
			Why:    "fixture boundary",
		}}
	}
	return cfg
}

func TestGoldenDiagnostics(t *testing.T) {
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	for _, name := range []string{"mapiter", "detpath", "keystring", "layering", "nilmetrics"} {
		t.Run(name, func(t *testing.T) {
			diags := runTestdata(t, name, byName[name], goldenConfig(name))
			checkWants(t, filepath.Join("testdata", "src", name), diags)
		})
	}
}

// TestAllowSemantics pins the escape hatch: a directive suppresses
// exactly the one finding at its site, an unused directive is itself
// reported, and a reason-less directive is malformed.
func TestAllowSemantics(t *testing.T) {
	diags := runTestdata(t, "allow", KeyString, DefaultConfig())
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Check))
	}
	// annotatedOnce: the call on the directive's line is suppressed;
	// the identical call two lines below still reports.
	want := []string{
		"15:keystring", // second Key() in annotatedOnce
		"19:allow",     // unused directive above cleanButAnnotated
		"25:allow",     // missing reason -> malformed
		"26:keystring", // the reason-less directive suppresses nothing
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("allow semantics mismatch:\n got  %v\n want %v\ndiags:\n%s", got, want, diagText(diags))
	}
	// Exactly one keystring finding was suppressed: the fixture has
	// three Key() calls and two survive.
	keyFindings := 0
	for _, d := range diags {
		if d.Check == "keystring" {
			keyFindings++
		}
	}
	if keyFindings != 2 {
		t.Fatalf("want exactly 2 surviving keystring findings (1 of 3 suppressed), got %d", keyFindings)
	}
}

// TestAllowSubsetRun pins that a -checks subset does not report
// allows for the skipped checks as unused: the allow fixture's
// keystring directives are dormant when only mapiter runs, and the
// only surviving diagnostic is the malformed (reason-less) one.
func TestAllowSubsetRun(t *testing.T) {
	diags := runTestdata(t, "allow", MapIter, DefaultConfig())
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Check))
	}
	want := []string{"25:allow"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("subset run mismatch:\n got  %v\n want %v\ndiags:\n%s", got, want, diagText(diags))
	}
}

func diagText(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestModuleIsLintClean is the tree gate: the full suite over every
// package in the module must report nothing. A new violation fails
// here (and in make lint / the CI lint job) until it is fixed or
// carries an annotation stating its reason.
func TestModuleIsLintClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadModulePackages()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags := Run(l.Fset, pkgs, Analyzers(), DefaultConfig())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestConfigPathsExist guards the rule tables against package renames
// rotting them into silent no-ops: every scoped path must name a real
// package in the module.
func TestConfigPathsExist(t *testing.T) {
	l := testLoader(t)
	real := map[string]bool{}
	for _, p := range l.ModulePaths() {
		real[p] = true
	}
	cfg := DefaultConfig()
	var scoped []string
	scoped = append(scoped, cfg.MapIterPkgs...)
	scoped = append(scoped, cfg.DetPathPkgs...)
	scoped = append(scoped, cfg.DataPkg, cfg.ObsPkg)
	for _, r := range cfg.Layers {
		scoped = append(scoped, r.Pkg)
	}
	for p := range cfg.KeyStringFuncs {
		scoped = append(scoped, p)
	}
	for _, p := range scoped {
		if !real[p] {
			t.Errorf("config names package %q, which does not exist in the module", p)
		}
	}
}
