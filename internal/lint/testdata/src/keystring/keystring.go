// Package keystringtest exercises the keystring analyzer: Tuple.Key
// and Value.Key calls are flagged outside the configured contract
// functions.
package keystringtest

import "provnet/internal/data"

func badTuple(t data.Tuple) string {
	return t.Key() // want "outside the wire codec"
}

func badValue(v data.Value) string {
	return v.Key() // want "outside the wire codec"
}

// KeyOf is allowed by the test config's KeyStringFuncs entry, the same
// shape that admits provenance.KeyOf in the repo config.
func KeyOf(t data.Tuple) string {
	return t.Key()
}

func equalFine(a, b data.Tuple) bool { return a.Equal(b) }

func hashFine(t data.Tuple) uint64 { return t.Hash() }

func otherKeyFine(m interface{ Key() string }) string {
	return m.Key()
}
