// Package allowtest exercises the escape-hatch semantics directly (no
// want comments; lint_test asserts on the diagnostic list): a
// directive suppresses exactly the finding at its site, an unused
// directive is reported, and a directive without a reason is
// malformed.
package allowtest

import "provnet/internal/data"

// annotatedOnce has two identical violations; only the annotated one
// is suppressed.
func annotatedOnce(t data.Tuple) string {
	s := t.Key() //provlint:allow keystring canonical bytes are this fixture's point

	s += t.Key()
	return s
}

//provlint:allow keystring nothing on the next line violates anything
func cleanButAnnotated(a, b data.Tuple) bool {
	return a.Equal(b)
}

func missingReason(t data.Tuple) string {
	//provlint:allow keystring
	return t.Key()
}
