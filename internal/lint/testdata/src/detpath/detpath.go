// Package detpathtest exercises the detpath analyzer: wall-clock
// reads, math/rand imports, and map formatting are flagged.
package detpathtest

import (
	"fmt"
	"math/rand" // want "import of math/rand"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since"
}

func formatMap(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want "formatting a map"
}

func printlnMap(m map[int]string) {
	fmt.Println(m) // want "formatting a map"
}

func timeValueFine(t time.Time) int64 { return t.UnixNano() }

func formatScalarFine(x int) string { return fmt.Sprintf("%d", x) }

func randUseIsImportFinding() int { return rand.Intn(10) }

func annotated() int64 {
	start := time.Now() //provlint:allow detpath timing a test fixture
	return start.UnixNano()
}
