// Package mapitertest exercises the mapiter analyzer: raw map ranges
// are flagged, collect-then-sort is recognized, annotations suppress.
package mapitertest

import "sort"

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

func nestedFlagged(mm map[string]map[string]int) {
	for _, inner := range mm { // want "range over map"
		for k := range inner { // want "range over map"
			_ = k
		}
	}
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeFine(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}

func annotated(m map[string]int) {
	//provlint:allow mapiter clearing the map; order cannot escape
	for k := range m {
		delete(m, k)
	}
}
