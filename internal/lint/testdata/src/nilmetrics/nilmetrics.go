// Package nilmetricstest exercises the nilmetrics analyzer:
// dereferencing an instrument or reaching into its fields bypasses the
// nil-safe method surface; chained method use is the supported form.
package nilmetricstest

import "provnet/internal/obs"

func derefCounter(c *obs.Counter) obs.Counter {
	return *c // want "dereference"
}

func derefRegistry(m *obs.Metrics) {
	_ = *m // want "dereference"
}

func fieldAccess(m *obs.Metrics) {
	m.Flight.Record(obs.RoundRecord{}) // want "field access"
}

func chainedFine(m *obs.Metrics) {
	m.Counter("x", "help").Inc()
	m.Gauge("y", "help").Set(1)
	m.FlightRecorder().Record(obs.RoundRecord{})
}

func storedInstrumentFine(m *obs.Metrics) *obs.Counter {
	c := m.Counter("x", "help")
	c.Add(2)
	return c
}

func typeExprFine() {
	var c *obs.Counter
	c.Inc()
	_ = c
}
