// Package layeringtest exercises the layering analyzer: the test
// config denies the provnet/internal/ prefix with obs excepted, so the
// data import below is a boundary violation and the obs import is not.
package layeringtest

import (
	"sort"

	_ "provnet/internal/data" // want "must not import"
	"provnet/internal/obs"
)

func useSort(s []string) { sort.Strings(s) }

func useObs(m *obs.Metrics) { m.Counter("x", "help").Inc() }
