// Package cliflags defines the flag set shared by every provnet command
// — scheduler, transport-security, live-churn, and multi-process
// transport knobs — once, so cmd/provnet, cmd/bestpath, cmd/traceq, and
// cmd/benchjson cannot drift apart. It also hosts the
// topology/auth/provenance spec parsers the commands used to copy, and
// the distributed-run helpers behind -listen/-self/-peers (see
// docs/ARCHITECTURE.md for the multi-process deployment model) and the
// provenance-as-a-service knobs -store (durable store log) and -http
// (query API), served by cmd/provnet only (see docs/API.md).
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"provnet"
	"provnet/internal/faultnet"
	"provnet/internal/netsim"
	"provnet/internal/nettcp"
)

// Flags is the shared knob set. Register binds it to a FlagSet; Apply
// copies it onto a provnet.Config.
type Flags struct {
	// Transport security.
	Auth    string
	KeyBits int
	Session bool
	Rekey   int

	// Scheduler.
	Sequential   bool
	Unbatched    bool
	Workers      int
	Pipelined    bool
	EngineShards int

	// Live churn scenario: cut Churn random links (seeded by ChurnSeed)
	// after initial convergence and re-converge incrementally.
	Churn     int
	ChurnSeed int64

	// Provenance-as-a-service: Store is the durable store-log directory
	// (empty = in-memory only) and HTTP the query-API listen address
	// (empty = no server). Only cmd/provnet serves them; other commands
	// reject the pair via ServiceFlagsSet.
	Store string
	HTTP  string

	// Observability: Metrics attaches a registry to the network
	// (Config.Metrics) — scraped at GET /metrics when -http serves, or
	// dumped to stderr at exit otherwise. PProf additionally mounts
	// net/http/pprof under the -http server (cmd/provnet only).
	Metrics bool
	PProf   bool

	// Multi-process TCP transport: this process hosts the node(s) in
	// Self (comma-separated), listens on Listen, and reaches the other
	// processes through the Peers map. Term picks the termination mode:
	// "credit" (default) runs the distributed clean-wave fixpoint
	// detector; "idle" is the legacy wall-clock heuristic, kept as an
	// opt-in fallback. Idle is the quiet window the heuristic samples —
	// and, in credit mode, the base unit of the safety timeout that
	// falls back to the heuristic if the wave protocol stalls.
	Listen string
	Self   string
	Peers  string
	Idle   time.Duration
	Term   string

	// Fault injection: Fault is a drop=P,dup=P,delay=P[,delayops=N]
	// spec wrapping the transport in internal/faultnet under FaultSeed
	// (see ParseFault). Works on both the in-memory fabric and the TCP
	// transport; empty = no injection.
	Fault     string
	FaultSeed int64
}

// Register binds the shared flags to fs (flag.CommandLine when nil) with
// the canonical names and help strings.
func Register(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Flags{}
	fs.StringVar(&f.Auth, "auth", "none", "says implementation: none, hmac, rsa, session (= rsa + -session)")
	fs.IntVar(&f.KeyBits, "keybits", 1024, "RSA modulus size")
	fs.BoolVar(&f.Session, "session", false, "session transport: one RSA handshake per link, then HMAC session MACs (wire v3)")
	fs.IntVar(&f.Rekey, "rekey", 0, "rotate session keys every N rounds (0 = never; needs -session)")
	fs.BoolVar(&f.Sequential, "sequential", false, "run nodes sequentially within each round (A/B baseline)")
	fs.BoolVar(&f.Unbatched, "unbatched", false, "ship one signed envelope per tuple instead of per-round batches")
	fs.IntVar(&f.Workers, "workers", 0, "scheduler worker goroutines per phase (0 = GOMAXPROCS)")
	fs.BoolVar(&f.Pipelined, "pipelined", false, "seal/verify on a crypto stage overlapping rule evaluation")
	fs.IntVar(&f.EngineShards, "engineshards", 0, "shard each node's delta queue across N intra-node eval workers (0/1 = serial; results identical)")
	fs.IntVar(&f.Churn, "churn", 0, "after convergence, cut this many random links and re-converge incrementally")
	fs.Int64Var(&f.ChurnSeed, "churnseed", 1, "rng seed for -churn link selection")
	fs.StringVar(&f.Store, "store", "", "durable store-log directory: append every table change, recoverable after a crash")
	fs.StringVar(&f.HTTP, "http", "", "serve the /v1 query API (traceback, tables, bestpath, subscribe) on this address")
	fs.BoolVar(&f.Metrics, "metrics", false, "record scheduler/engine/crypto/transport metrics; served at /metrics with -http, dumped to stderr at exit otherwise")
	fs.BoolVar(&f.PProf, "pprof", false, "mount net/http/pprof under the -http server (cmd/provnet only; needs -http)")
	fs.StringVar(&f.Listen, "listen", "", "host nodes over TCP: listen address (turns on the nettcp transport; needs -self and -peers)")
	fs.StringVar(&f.Self, "self", "", "comma-separated node name(s) this process hosts (TCP transport)")
	fs.StringVar(&f.Peers, "peers", "", "comma-separated name=host:port peer map (TCP transport)")
	fs.DurationVar(&f.Idle, "idle", 750*time.Millisecond, "quiet window of the -term idle heuristic (and the safety-fallback unit in credit mode)")
	fs.StringVar(&f.Term, "term", "credit", "distributed termination mode: credit (clean-wave fixpoint detector) or idle (wall-clock heuristic)")
	fs.StringVar(&f.Fault, "fault", "", "fault-injection spec drop=P,dup=P,delay=P[,delayops=N]: wrap the transport in a seeded fault schedule")
	fs.Int64Var(&f.FaultSeed, "faultseed", 1, "rng seed for the -fault schedule")
	return f
}

// SelfNodes returns the node names this process hosts (-self, comma
// separated).
func (f *Flags) SelfNodes() []string {
	var out []string
	for _, s := range strings.Split(f.Self, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Distributed reports whether the flags select the multi-process TCP
// transport.
func (f *Flags) Distributed() bool { return f.Listen != "" }

// TransportFlagsSet reports whether any multi-process transport flag
// was given — commands that do not support the TCP transport use it to
// reject the whole flag family instead of silently ignoring
// -self/-peers given without -listen.
func (f *Flags) TransportFlagsSet() bool {
	return f.Listen != "" || f.Self != "" || f.Peers != ""
}

// ServiceFlagsSet reports whether -store, -http, or -pprof was given —
// commands other than cmd/provnet use it to reject the service flags
// instead of silently ignoring them (same pattern as TransportFlagsSet).
// -metrics is not a service flag: every command honors it.
func (f *Flags) ServiceFlagsSet() bool { return f.Store != "" || f.HTTP != "" || f.PProf }

// SetupStore opens the durable store log in the -store directory (first
// recovering any state a previous run left there) and attaches it to
// cfg. No-op without -store.
func (f *Flags) SetupStore(cfg *provnet.Config) error {
	if f.Store == "" {
		return nil
	}
	log, err := provnet.OpenStoreLog(f.Store, provnet.StoreLogOptions{})
	if err != nil {
		return err
	}
	cfg.Store = log
	return nil
}

// ParsePeers parses the -peers spec: comma-separated name=host:port.
func ParsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("cliflags: bad -peers entry %q (want name=host:port)", part)
		}
		peers[name] = addr
	}
	return peers, nil
}

// ParseFault parses the -fault spec: comma-separated key=value pairs
// with keys drop, dup, delay (probabilities in [0,1)) and delayops (max
// limbo hold in transport operations).
func ParseFault(spec string) (faultnet.Config, error) {
	var fc faultnet.Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fc, fmt.Errorf("cliflags: bad -fault entry %q (want key=value)", part)
		}
		switch key {
		case "drop", "dup", "delay":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p >= 1 {
				return fc, fmt.Errorf("cliflags: -fault %s wants a probability in [0,1), got %q", key, val)
			}
			switch key {
			case "drop":
				fc.Drop = p
			case "dup":
				fc.Dup = p
			case "delay":
				fc.Delay = p
			}
		case "delayops":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fc, fmt.Errorf("cliflags: -fault delayops wants a positive int, got %q", val)
			}
			fc.DelayOps = n
		default:
			return fc, fmt.Errorf("cliflags: unknown -fault key %q (want drop, dup, delay, delayops)", key)
		}
	}
	return fc, nil
}

// faultAutoRelease keeps a live run's limbo draining: scripted test
// clocks advance manually, but a CLI run needs delayed frames to
// surface without waiting for the next send.
const faultAutoRelease = 10 * time.Millisecond

// wrapFault wraps tr in the -fault schedule when one is given.
func (f *Flags) wrapFault(tr faultnet.Transport) (provnet.Transport, error) {
	if f.Fault == "" {
		return tr.(provnet.Transport), nil
	}
	fc, err := ParseFault(f.Fault)
	if err != nil {
		return nil, err
	}
	fc.Seed = f.FaultSeed
	fc.AutoReleaseEvery = faultAutoRelease
	return faultnet.New(tr, fc), nil
}

// SetupTransport wires the message substrate into cfg. With -listen the
// process joins a multi-process deployment: it hosts the -self node(s),
// reaches every -peers entry over reliable TCP (acked, retransmitted,
// deduplicated frames), and re-announces its soft state when a peer
// restarts. A -fault spec wraps whichever transport results — the TCP
// backend, or an explicit in-memory fabric for single-process chaos
// runs. The returned closer (non-nil only for TCP runs) releases the
// listener and connections; Network.Close also closes it.
func (f *Flags) SetupTransport(ctx context.Context, cfg *provnet.Config) (io.Closer, error) {
	if !f.Distributed() {
		if f.Self != "" || f.Peers != "" {
			return nil, fmt.Errorf("cliflags: -self/-peers require -listen")
		}
		if f.Fault != "" {
			tr, err := f.wrapFault(netsim.New())
			if err != nil {
				return nil, err
			}
			cfg.Transport = tr
		}
		return nil, nil
	}
	locals := f.SelfNodes()
	if len(locals) == 0 {
		return nil, fmt.Errorf("cliflags: -listen requires -self (the node(s) this process hosts)")
	}
	peers, err := ParsePeers(f.Peers)
	if err != nil {
		return nil, err
	}
	tcp, err := nettcp.New(nettcp.Config{Listen: f.Listen, Peers: peers, Context: ctx, Reliable: true})
	if err != nil {
		return nil, err
	}
	tr, err := f.wrapFault(tcp)
	if err != nil {
		tcp.Close()
		return nil, err
	}
	cfg.Transport = tr
	cfg.LocalNodes = locals
	cfg.Resupply = true
	if c, ok := tr.(io.Closer); ok {
		return c, nil
	}
	return tcp, nil
}

// RunDistributed drives one process of a multi-process deployment to
// convergence. The lifecycle driver runs live (remote arrivals wake it
// between rounds); what ends the run is the -term mode:
//
//   - credit (default): the distributed clean-wave fixpoint detector —
//     a token circulates the full node ring, carrying cumulative
//     activity counters, and the ring root declares termination when
//     two consecutive waves return equal sums (sound under loss, delay,
//     and reordering; see docs/ARCHITECTURE.md). A generous safety
//     timeout falls back to the idle heuristic if the protocol stalls
//     (a peer that never comes up would otherwise hold the token
//     forever).
//   - idle: the legacy wall-clock heuristic — the run ends after the
//     process has been locally quiescent with no transport activity for
//     the -idle window. Unsound under delay or partition (a frame on
//     the wire is silent); kept as an explicit opt-in.
//
// The returned report spans the whole run.
func (f *Flags) RunDistributed(ctx context.Context, n *provnet.Network) (*provnet.Report, error) {
	switch f.Term {
	case "", "credit":
	case "idle":
		return f.runDistributedIdle(ctx, n)
	default:
		return nil, fmt.Errorf("cliflags: unknown -term mode %q (want credit or idle)", f.Term)
	}
	d := n.Driver()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	td := n.StartTermination(tctx, provnet.TermConfig{})
	safety := 40 * f.idleWindow()
	if safety < 30*time.Second {
		safety = 30 * time.Second
	}
	select {
	case <-td.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(safety):
		// The wave protocol stalled — a peer is down or unreachable for
		// good. Degrade to the heuristic rather than hang forever.
		n.Metrics().Counter("provnet_scheduler_term_safety_fallbacks_total", "").Inc()
		return f.idleLoop(ctx, n, d)
	}
	n.Metrics().Counter("provnet_scheduler_credit_terminations_total", "").Inc()
	rep, err := d.AwaitQuiescence(ctx)
	if err != nil {
		return nil, err
	}
	if err := n.FlushStore(); err != nil {
		return nil, err
	}
	return rep, nil
}

func (f *Flags) idleWindow() time.Duration {
	if f.Idle > 0 {
		return f.Idle
	}
	return 750 * time.Millisecond
}

// runDistributedIdle is the -term idle path: start the driver, then
// sample the heuristic.
func (f *Flags) runDistributedIdle(ctx context.Context, n *provnet.Network) (*provnet.Report, error) {
	d := n.Driver()
	if err := d.Start(ctx); err != nil {
		return nil, err
	}
	return f.idleLoop(ctx, n, d)
}

// idleLoop is the wall-clock idle heuristic: the run ends when local
// quiescence coincides with a full -idle window of transport silence.
// TestIdleHeuristicFalseFixpoint (internal/core) pins why this is a
// heuristic, not a detector: a frame delayed on the wire is silent, so
// the loop can declare while the fixpoint is still in flight.
func (f *Flags) idleLoop(ctx context.Context, n *provnet.Network, d *provnet.Driver) (*provnet.Report, error) {
	window := f.idleWindow()
	var last int64 = -1
	rounds := 0
	var rep *provnet.Report
	for {
		r, err := d.AwaitQuiescence(ctx)
		if err != nil {
			return nil, err
		}
		rounds += r.Rounds
		rep = r
		// Drain the store before the termination decision: a slow flush
		// must not let the process exit with buffered events, and a flush
		// error must surface here rather than be dropped at Close.
		if err := n.FlushStore(); err != nil {
			return nil, err
		}
		cur := n.Transport().Stats().Messages
		if cur == last {
			// A full idle window with no traffic and no work: terminate.
			// The chain is a no-op without -metrics (nil registry).
			n.Metrics().Counter("provnet_scheduler_idle_terminations_total", "").Inc()
			break
		}
		last = cur
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(window):
		}
	}
	rep.Rounds = rounds
	return rep, nil
}

// Apply copies the shared knobs onto cfg, parsing the auth scheme.
func (f *Flags) Apply(cfg *provnet.Config) error {
	scheme, err := ParseAuth(f.Auth)
	if err != nil {
		return err
	}
	cfg.Auth = scheme
	cfg.KeyBits = f.KeyBits
	cfg.SessionAuth = f.Session
	cfg.RekeyRounds = f.Rekey
	cfg.Sequential = f.Sequential
	cfg.Unbatched = f.Unbatched
	cfg.Workers = f.Workers
	cfg.PipelinedCrypto = f.Pipelined
	cfg.EngineShards = f.EngineShards
	if f.Metrics {
		cfg.Metrics = provnet.NewMetrics()
	}
	return nil
}

// DumpMetrics writes the registry's Prometheus text exposition to w —
// the exit-time metrics surface for commands that run no HTTP server.
// No-op when the network has no registry (-metrics not given).
func DumpMetrics(w io.Writer, n *provnet.Network) error {
	m := n.Metrics()
	if m == nil {
		return nil
	}
	return m.WritePrometheus(w)
}

// ChurnResult summarizes one -churn scenario run.
type ChurnResult struct {
	// Cut lists the links removed.
	Cut []provnet.GraphLink
	// Rounds and Bytes are the incremental re-convergence cost (rounds of
	// the re-convergence epoch; transport bytes added by it).
	Rounds int
	Bytes  int64
	// Retracted counts tuples withdrawn across all nodes.
	Retracted int64
}

// RunChurn executes the -churn scenario on a converged network: it cuts
// f.Churn random links of g (seeded by f.ChurnSeed) through the live
// driver and waits for incremental re-convergence.
func (f *Flags) RunChurn(ctx context.Context, n *provnet.Network, g *provnet.Graph) (*ChurnResult, error) {
	if f.Churn <= 0 {
		return nil, nil
	}
	if g == nil || len(g.Links) == 0 {
		return nil, fmt.Errorf("cliflags: -churn needs a generated topology")
	}
	rng := rand.New(rand.NewSource(f.ChurnSeed))
	perm := rng.Perm(len(g.Links))
	count := f.Churn
	if count > len(g.Links) {
		count = len(g.Links)
	}
	d := n.Driver()
	before := n.Transport().Stats()
	res := &ChurnResult{}
	for _, i := range perm[:count] {
		l := g.Links[i]
		if err := d.CutLink(l.From, l.To); err != nil {
			return nil, err
		}
		res.Cut = append(res.Cut, l)
	}
	rep, err := d.AwaitQuiescence(ctx)
	if err != nil {
		return nil, err
	}
	after := n.Transport().Stats()
	res.Rounds = rep.Rounds
	res.Bytes = after.Bytes - before.Bytes
	res.Retracted = rep.Retracted
	return res, nil
}

// String renders the churn summary for CLI output.
func (r *ChurnResult) String() string {
	var cuts []string
	for _, l := range r.Cut {
		cuts = append(cuts, l.From+"->"+l.To)
	}
	return fmt.Sprintf("churn: cut %s; re-converged in %d rounds, %d bytes, %d tuples withdrawn",
		strings.Join(cuts, ","), r.Rounds, r.Bytes, r.Retracted)
}

// ParseAuth parses the -auth flag value.
func ParseAuth(s string) (provnet.AuthScheme, error) {
	switch s {
	case "none":
		return provnet.AuthNone, nil
	case "hmac":
		return provnet.AuthHMAC, nil
	case "rsa":
		return provnet.AuthRSA, nil
	case "session":
		return provnet.AuthSession, nil
	default:
		return 0, fmt.Errorf("unknown auth scheme %q", s)
	}
}

// ParseProv parses the -prov flag value.
func ParseProv(s string) (provnet.ProvMode, error) {
	switch s {
	case "none":
		return provnet.ProvNone, nil
	case "local":
		return provnet.ProvLocal, nil
	case "distributed":
		return provnet.ProvDistributed, nil
	case "condensed":
		return provnet.ProvCondensed, nil
	default:
		return 0, fmt.Errorf("unknown provenance mode %q", s)
	}
}

// ParseTopo parses the -topo spec shared by the commands:
// random:N[:deg[:maxcost[:seed]]], line:N, ring:N, star:N, or none.
func ParseTopo(spec string) (*provnet.Graph, error) {
	if spec == "none" || spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	num := func(i, def int) int {
		if i < len(parts) {
			if v, err := strconv.Atoi(parts[i]); err == nil {
				return v
			}
		}
		return def
	}
	switch parts[0] {
	case "random":
		return provnet.RandomGraph(provnet.TopoOptions{
			N:            num(1, 10),
			AvgOutDegree: num(2, 3),
			MaxCost:      int64(num(3, 1)),
			Seed:         int64(num(4, 1)),
		}), nil
	case "line":
		return provnet.LineGraph(num(1, 4)), nil
	case "ring":
		return provnet.RingGraph(num(1, 4)), nil
	case "star":
		return provnet.StarGraph(num(1, 4)), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", spec)
	}
}
