package nettcp

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"provnet/internal/netsim"
)

func newT(t *testing.T, peers map[string]string) *Transport {
	t.Helper()
	tr, err := New(Config{Listen: "127.0.0.1:0", Peers: peers, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// waitDrain polls until to's inbox yields messages or the deadline hits.
func waitDrain(t *testing.T, tr *Transport, to string, want int) []netsim.Message {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var msgs []netsim.Message
	for len(msgs) < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages at %q, have %v", want, to, msgs)
		}
		msgs = append(msgs, tr.Drain(to)...)
		time.Sleep(5 * time.Millisecond)
	}
	return msgs
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{src: "a", dst: "b", payload: []byte{1, 2, 3}},
		{src: "", dst: "b", payload: nil, handshake: true},
		{src: "node-with-a-long-name", dst: "x", payload: bytes.Repeat([]byte{0xAB}, 300)},
		{src: "a", dst: "b", payload: []byte{9}, seq: 7},
		{src: "a", dst: "b", payload: []byte("hs"), seq: 300, handshake: true},
		{src: "b", dst: "a", seq: 42, ack: true},
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	for _, f := range frames {
		if err := writeFrame(bw, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	for i, want := range frames {
		body, err := readLengthPrefixed(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := len(body) + uvarintLen(uint64(len(body))); got != frameWireSize(want.src, want.dst, want.payload, want.seq) {
			t.Errorf("frame %d: wire size %d, frameWireSize %d", i, got, frameWireSize(want.src, want.dst, want.payload, want.seq))
		}
		flags, src, dst, seq, payload, err := parseFrame(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		hs, ack := flags&flagHandshake != 0, flags&flagAck != 0
		if hs != want.handshake || ack != want.ack || src != want.src || dst != want.dst || seq != want.seq || !bytes.Equal(payload, want.payload) {
			t.Errorf("frame %d: got (%v,%v,%q,%q,%d,%x), want (%v,%v,%q,%q,%d,%x)",
				i, hs, ack, src, dst, seq, payload, want.handshake, want.ack, want.src, want.dst, want.seq, want.payload)
		}
	}
}

// TestAckFrameGolden pins the exact bytes of an ack control frame — the
// layout documented in docs/WIRE.md ("TCP stream framing"). An ack from
// node "b" acknowledging frames 1..5 on the a→b link:
//
//	06        flags: bit1 sequenced + bit2 ack
//	01 62     src "b" (the acking node)
//	01 61     dst "a" (the original sender)
//	05        cumulative acknowledged sequence number
//
// prefixed by the body length (06).
func TestAckFrameGolden(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, frame{src: "b", dst: "a", seq: 5, ack: true}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x06, 0x06, 0x01, 0x62, 0x01, 0x61, 0x05}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("ack frame bytes = % x, want % x", buf.Bytes(), want)
	}
}

func TestParseFrameCorrupt(t *testing.T) {
	for _, body := range [][]byte{
		nil,
		{0},
		{0, 5},
		{0, 200, 1},
		{flagSequenced, 1, 'a', 1, 'b'},    // sequenced but no seq bytes
		{flagSequenced, 1, 'a', 1, 'b', 0}, // sequence number zero
	} {
		if _, _, _, _, _, err := parseFrame(body); err == nil {
			t.Errorf("parseFrame(%x): expected error", body)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	tr := newT(t, nil)
	tr.AddNode("a")
	tr.AddNode("b")
	if err := tr.Send("a", "b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if n := tr.PendingFor("b"); n != 1 {
		t.Fatalf("PendingFor(b) = %d", n)
	}
	msgs := tr.Drain("b")
	if len(msgs) != 1 || msgs[0].From != "a" || string(msgs[0].Payload) != "hi" {
		t.Fatalf("Drain = %v", msgs)
	}
	if s := tr.Stats(); s.Messages != 1 || s.Bytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRemoteDelivery(t *testing.T) {
	trB := newT(t, nil)
	trB.AddNode("b")
	trA := newT(t, map[string]string{"b": trB.Addr()})
	trA.AddNode("a")

	if err := trA.SendTagged("a", "b", []byte("data"), false); err != nil {
		t.Fatal(err)
	}
	if err := trA.SendTagged("a", "b", []byte("hs"), true); err != nil {
		t.Fatal(err)
	}
	msgs := waitDrain(t, trB, "b", 2)
	if msgs[0].From != "a" || string(msgs[0].Payload) != "data" || string(msgs[1].Payload) != "hs" {
		t.Fatalf("msgs = %v", msgs)
	}
	if s := trB.Stats(); s.Messages != 2 || s.HandshakeMessages != 1 || s.HandshakeBytes == 0 {
		t.Fatalf("receiver stats = %+v", s)
	}
	if s := trA.Stats(); s.Messages != 2 || s.HandshakeMessages != 1 {
		t.Fatalf("sender stats = %+v", s)
	}
}

func TestOrphanAdoptedOnAddNode(t *testing.T) {
	trB := newT(t, nil) // nothing registered yet
	trA := newT(t, map[string]string{"b": trB.Addr()})
	trA.AddNode("a")
	if err := trA.Send("a", "b", []byte("early")); err != nil {
		t.Fatal(err)
	}
	// Wait for the frame to land in the orphan buffer, then register.
	deadline := time.Now().Add(10 * time.Second)
	for trB.Stats().Messages == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	trB.AddNode("b")
	msgs := waitDrain(t, trB, "b", 1)
	if string(msgs[0].Payload) != "early" {
		t.Fatalf("msgs = %v", msgs)
	}
}

func TestDialRetryBeforeListenerUp(t *testing.T) {
	// Reserve a port, close it, point a sender at it: the writer must
	// retry until a listener appears there and then deliver.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	trA, err := New(Config{Listen: "127.0.0.1:0", Peers: map[string]string{"b": addr}, Logf: t.Logf, RetryMin: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trA.AddNode("a")
	if err := trA.Send("a", "b", []byte("patience")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let a few dials fail
	trB, err := New(Config{Listen: addr, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	trB.AddNode("b")
	msgs := waitDrain(t, trB, "b", 1)
	if string(msgs[0].Payload) != "patience" {
		t.Fatalf("msgs = %v", msgs)
	}
}

func TestSendUnknownNode(t *testing.T) {
	tr := newT(t, nil)
	tr.AddNode("a")
	if err := tr.Send("a", "nowhere", []byte("x")); err == nil {
		t.Fatal("expected error")
	}
	if s := tr.Stats(); s.DroppedMsg != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNotifyFiresOnArrival(t *testing.T) {
	trB := newT(t, nil)
	trB.AddNode("b")
	var fired atomic.Int64
	trB.Notify(func() { fired.Add(1) })
	trA := newT(t, map[string]string{"b": trB.Addr()})
	trA.AddNode("a")
	if err := trA.Send("a", "b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	waitDrain(t, trB, "b", 1)
	if fired.Load() == 0 {
		t.Fatal("notify callback never fired")
	}
}

func TestCloseIdempotentAndContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr, err := New(Config{Listen: "127.0.0.1:0", Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	tr.AddNode("a")
	cancel() // context-aware shutdown
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := tr.Send("a", "a", nil); err != nil {
			break // closed
		}
		if time.Now().After(deadline) {
			t.Fatal("context cancellation never closed the transport")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
