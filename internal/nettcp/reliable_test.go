package nettcp

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tCtx returns a context that expires after d or when the test ends.
func tCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// newReliable builds a reliable transport with a short retransmit
// timeout, applying mut to the config before New.
func newReliable(t *testing.T, peers map[string]string, mut func(*Config)) *Transport {
	t.Helper()
	cfg := Config{
		Listen:            "127.0.0.1:0",
		Peers:             peers,
		Logf:              t.Logf,
		Reliable:          true,
		RetransmitTimeout: 30 * time.Millisecond,
		RetryMin:          10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// sendSeq ships n numbered payloads a->b and returns the payloads sent.
func sendSeq(t *testing.T, tr *Transport, n int) []string {
	t.Helper()
	var sent []string
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("m-%03d", i)
		if err := tr.Send("a", "b", []byte(p)); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, p)
	}
	return sent
}

// assertDelivered drains b until want payloads arrive and asserts exact
// in-order, duplicate-free delivery; any extra arrival afterwards fails.
func assertDelivered(t *testing.T, tr *Transport, want []string) {
	t.Helper()
	msgs := waitDrain(t, tr, "b", len(want))
	if len(msgs) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(msgs), len(want))
	}
	for i, m := range msgs {
		if string(m.Payload) != want[i] {
			t.Fatalf("message %d = %q, want %q (order or dedup broken)", i, m.Payload, want[i])
		}
	}
	// The window must settle without re-delivering anything.
	time.Sleep(100 * time.Millisecond)
	if extra := tr.Drain("b"); len(extra) != 0 {
		t.Fatalf("duplicate deliveries after settle: %v", extra)
	}
}

// TestReliableDeliveryUnderLoss drops the first write of every data
// frame: each must come back via the retransmit window, in order,
// without duplicates reaching the inbox.
func TestReliableDeliveryUnderLoss(t *testing.T) {
	trB := newReliable(t, nil, nil)
	trB.AddNode("b")
	trA := newReliable(t, map[string]string{"b": trB.Addr()}, func(c *Config) {
		var mu sync.Mutex
		seen := make(map[uint64]bool)
		c.DropWrite = func(peer string, seq uint64, ack bool) bool {
			if ack || seq == 0 {
				return false
			}
			mu.Lock()
			defer mu.Unlock()
			first := !seen[seq]
			seen[seq] = true
			return first // lose every frame's first transmission
		}
	})
	trA.AddNode("a")
	trB.AddPeer("a", trA.Addr()) // return path for acks
	sent := sendSeq(t, trA, 20)
	assertDelivered(t, trB, sent)
	if s := trA.Stats(); s.Retransmits == 0 {
		t.Fatalf("expected retransmits after scripted loss, stats = %+v", s)
	}
	if err := trA.Flush(tCtx(t, 5*time.Second)); err != nil {
		t.Fatalf("window never cleared: %v", err)
	}
	if n := trA.InFlight(); n != 0 {
		t.Fatalf("InFlight = %d after Flush", n)
	}
}

// TestLostAcksForceDupSuppression drops every ack once: the sender
// retransmits already-delivered frames, and the receive window must
// swallow them (DupDropped counts, the inbox sees each payload once).
func TestLostAcksForceDupSuppression(t *testing.T) {
	var dropped atomic.Int64
	trB := newReliable(t, nil, func(c *Config) {
		// The receiver loses its first few outbound acks.
		c.DropWrite = func(peer string, seq uint64, ack bool) bool {
			return ack && dropped.Add(1) <= 5
		}
	})
	trB.AddNode("b")
	trA := newReliable(t, map[string]string{"b": trB.Addr()}, nil)
	trA.AddNode("a")
	trB.AddPeer("a", trA.Addr()) // return path for acks
	sent := sendSeq(t, trA, 10)
	assertDelivered(t, trB, sent)
	if err := trA.Flush(tCtx(t, 5*time.Second)); err != nil {
		t.Fatalf("window never cleared (acks lost for good): %v", err)
	}
	if s := trB.Stats(); s.DupDropped == 0 {
		t.Fatalf("expected duplicate suppression after lost acks, receiver stats = %+v", s)
	}
}

// TestCrashedReceiverFramesRetransmitted is the headline reliability
// property: frames the peer's kernel accepted but its process never
// read are NOT lost. A raw listener swallows the first connection
// without reading past the kernel buffer, then dies; a real transport
// takes over the same address and must receive every frame via the
// replayed window.
func TestCrashedReceiverFramesRetransmitted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	trA := newReliable(t, map[string]string{"b": addr}, nil)
	trA.AddNode("a")
	sent := sendSeq(t, trA, 5)

	// The "crashed" peer: kernel took the bytes, the process never did.
	select {
	case c := <-accepted:
		time.Sleep(50 * time.Millisecond) // let the writes land in the kernel
		c.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("sender never dialed")
	}
	ln.Close()

	// Restart: a real transport on the same address.
	var trB *Transport
	deadline := time.Now().Add(10 * time.Second)
	for {
		trB, err = New(Config{Listen: addr, Logf: t.Logf, Reliable: true})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() { trB.Close() })
	trB.AddNode("b")
	trB.AddPeer("a", trA.Addr())
	assertDelivered(t, trB, sent)
	if s := trA.Stats(); s.Retransmits == 0 {
		t.Fatalf("recovery without retransmits? stats = %+v", s)
	}
}

// TestBackpressureBoundsQueue pins the bounded-window contract: with the
// peer unreachable, at most Window frames are accepted and the next send
// blocks (observable via the Backpressured counter) until Close fails it.
func TestBackpressureBoundsQueue(t *testing.T) {
	// A dead address: reserve a port and close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	const window = 4
	trA := newReliable(t, map[string]string{"b": dead}, func(c *Config) { c.Window = window })
	trA.AddNode("a")

	var accepted atomic.Int64
	done := make(chan error, 1)
	go func() {
		for i := 0; i < window+3; i++ {
			if err := trA.Send("a", "b", []byte{byte(i)}); err != nil {
				done <- err
				return
			}
			accepted.Add(1)
		}
		done <- nil
	}()

	deadline := time.Now().Add(10 * time.Second)
	for accepted.Load() < window {
		if time.Now().After(deadline) {
			t.Fatalf("only %d sends accepted", accepted.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // would-be window+1'th send must stay blocked
	if n := accepted.Load(); n != window {
		t.Fatalf("%d sends accepted, want exactly %d (window)", n, window)
	}
	if n := trA.InFlight(); n > window {
		t.Fatalf("InFlight = %d exceeds window %d", n, window)
	}
	if s := trA.Stats(); s.Backpressured == 0 {
		t.Fatalf("blocked send not counted, stats = %+v", s)
	}
	trA.Close()
	if err := <-done; err == nil {
		t.Fatal("blocked send should fail once the transport closes")
	}
}

// TestPeerRestartDetection pins the join/leave hook: a peer process
// fires the restart handler once when its name first appears (join) and
// again when it reappears with a larger hello incarnation (restart) —
// first sight must fire too, or a peer killed before its hello ever
// arrived would come back undetected and never be resupplied.
func TestPeerRestartDetection(t *testing.T) {
	trA := newReliable(t, nil, nil)
	trA.AddNode("a")
	restarted := make(chan string, 4)
	trA.SetRestartHandler(func(process string) { restarted <- process })

	await := func(what string) {
		t.Helper()
		select {
		case p := <-restarted:
			if p != "b" {
				t.Fatalf("%s handler got %q, want %q", what, p, "b")
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("handler never fired for the %s", what)
		}
	}

	trB1 := newReliable(t, map[string]string{"a": trA.Addr()}, nil)
	trB1.AddNode("b")
	if err := trB1.Send("b", "a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	waitDrain(t, trA, "a", 1)
	await("join")
	select {
	case p := <-restarted:
		t.Fatalf("handler fired twice for one incarnation of %q", p)
	default:
	}
	trB1.Close()

	trB2 := newReliable(t, map[string]string{"a": trA.Addr()}, nil)
	trB2.AddNode("b")
	if err := trB2.Send("b", "a", []byte("two")); err != nil {
		t.Fatal(err)
	}
	waitDrain(t, trA, "a", 1)
	await("restart")
}

// FuzzAckRetransmit replays arbitrary loss scripts over the ack and
// retransmit path: whatever the script drops, every payload must arrive
// exactly once and in order, and the window must eventually clear. The
// seed corpus covers no loss, data-only loss, ack-only loss, and mixed
// bursts.
func FuzzAckRetransmit(f *testing.F) {
	f.Add([]byte{0x00}, uint8(4))
	f.Add([]byte{0xaa, 0x55}, uint8(6))
	f.Add([]byte{0xff, 0x00, 0xff}, uint8(5))
	f.Add([]byte{0x0f, 0xf0}, uint8(8))
	f.Fuzz(func(t *testing.T, script []byte, n uint8) {
		if len(script) == 0 {
			script = []byte{0}
		}
		count := int(n)%8 + 1
		var attempt atomic.Int64
		drop := func(peer string, seq uint64, ack bool) bool {
			i := attempt.Add(1) - 1
			if i%11 == 10 {
				return false // guarantee progress under all-ones scripts
			}
			bit := script[int(i)%len(script)] >> (uint(i) % 8) & 1
			return bit == 1
		}
		trB := newReliable(t, nil, func(c *Config) { c.DropWrite = drop })
		trB.AddNode("b")
		trA := newReliable(t, map[string]string{"b": trB.Addr()}, func(c *Config) { c.DropWrite = drop })
		trA.AddNode("a")
		trB.AddPeer("a", trA.Addr())
		sent := sendSeq(t, trA, count)
		assertDelivered(t, trB, sent)
		if err := trA.Flush(tCtx(t, 10*time.Second)); err != nil {
			t.Fatalf("window never cleared: %v", err)
		}
	})
}
