// Package nettcp is the socket-backed transport: the same
// Send/Drain/Stats surface as internal/netsim, carried over real TCP
// connections so N OS processes can each host one node (or a few) of a
// provnet network. internal/core stays transport-agnostic — the wire
// v1–v4 envelopes it seals are shipped here as opaque payloads, so the
// signature, session-handshake, and retraction machinery work unchanged
// across process boundaries.
//
// # Stream protocol
//
// Each direction of traffic between two processes is one TCP connection,
// opened lazily by the sending side and re-opened (with exponential
// backoff) if it drops. The byte stream is:
//
//	preamble  "PNT1" (4 bytes: magic + stream version)
//	hello     uvarint n, n bytes — a name identifying the sending
//	          process (its first registered node), used only for
//	          diagnostics
//	frame*    uvarint len, len bytes of body, where
//	          body = flags (1 byte; bit0 = handshake traffic class)
//	               + uvarint s, s bytes — source node name
//	               + uvarint d, d bytes — destination node name
//	               + payload (one wire v1–v4 datagram, opaque here)
//
// See docs/WIRE.md for the datagram formats riding inside the frames.
//
// # Ordering and determinism
//
// One connection per (sender process → receiver process) direction means
// frames from one sender arrive in send order — the property the session
// security stack needs (a handshake frame must precede the data frames
// it unlocks). Interleaving *between* senders is real network
// nondeterminism; unlike netsim there is no global deterministic drain
// order. The distributed fixpoint still converges to the same tables and
// provenance as the in-memory run because evaluation is confluent — see
// docs/ARCHITECTURE.md and core.TestTCPMatchesNetsim.
//
// # Accounting
//
// Stats counters are per process: a frame is charged once on the sending
// side (at enqueue) and once on the receiving side (at arrival), each
// charging the actual framed size (length prefix + flags + source +
// destination + payload). Local deliveries between co-hosted nodes are
// charged once, like netsim's.
package nettcp

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"provnet/internal/netsim"
)

// magic is the stream preamble: protocol magic plus stream version.
var magic = [4]byte{'P', 'N', 'T', '1'}

// Defaults for Config's zero values.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultRetryMin    = 50 * time.Millisecond
	DefaultRetryMax    = 2 * time.Second
	DefaultMaxFrame    = 1 << 24 // 16 MiB: far above any real envelope
)

// Config configures a Transport.
type Config struct {
	// Listen is the TCP address to accept peer connections on
	// (e.g. "127.0.0.1:7001"; ":0" picks a free port — see Addr).
	Listen string
	// Peers maps remote node names to their dial addresses. Sends to a
	// node that is neither local (AddNode) nor a peer are dropped.
	Peers map[string]string
	// Context, when non-nil, bounds the transport's lifetime: its
	// cancellation closes the transport, aborting in-flight dials and
	// reads (the context-aware shutdown the lifecycle driver composes
	// with). Close works regardless.
	Context context.Context
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default 50ms..2s).
	RetryMin, RetryMax time.Duration
	// MaxFrame caps accepted frame sizes (default 16 MiB); larger frames
	// poison the connection (it is closed and the dialer re-opens it).
	MaxFrame int
	// Logf, when set, receives connection lifecycle diagnostics (dial
	// failures, dropped frames, protocol errors). Default: silent.
	Logf func(format string, args ...any)
}

// Transport is the TCP implementation of core.Transport. Create one per
// process with New, register the locally hosted node(s) with AddNode,
// and hand it to core via Config.Transport + Config.LocalNodes.
type Transport struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	ln     net.Listener

	mu     sync.Mutex
	local  map[string]*inbox
	peers  map[string]*peer
	conns  map[net.Conn]struct{}
	closed bool
	// orphans parks inbound frames for local names not yet registered:
	// processes of one deployment start at different times, and a frame
	// that raced a slow process's AddNode must not be lost (there is no
	// retransmit above this layer). AddNode adopts them.
	orphans map[string][]netsim.Message

	notify atomic.Pointer[func()]
	wg     sync.WaitGroup

	messages   atomic.Int64
	bytes      atomic.Int64
	dropped    atomic.Int64
	hsMsgs     atomic.Int64
	hsBytes    atomic.Int64
	reconnects atomic.Int64
	requeues   atomic.Int64
	parked     atomic.Int64
}

// inbox queues inbound datagrams for one locally hosted node.
type inbox struct {
	mu    sync.Mutex
	queue []netsim.Message
}

// frame is one outbound datagram awaiting shipment to a peer.
type frame struct {
	src, dst  string
	payload   []byte
	handshake bool
}

// peer is one remote process: a pending queue drained by a dedicated
// reconnecting writer goroutine.
type peer struct {
	name, addr string

	mu      sync.Mutex
	cond    *sync.Cond
	pending []frame
	closed  bool
}

// New creates a Transport listening on cfg.Listen and starts one writer
// goroutine per configured peer. The listener is live on return (Addr
// reports the bound address); peer connections are dialed lazily on
// first send.
func New(cfg Config) (*Transport, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = DefaultRetryMin
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("nettcp: listen %s: %w", cfg.Listen, err)
	}
	ctx, cancel := context.WithCancel(parent)
	t := &Transport{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		ln:      ln,
		local:   make(map[string]*inbox),
		peers:   make(map[string]*peer),
		conns:   make(map[net.Conn]struct{}),
		orphans: make(map[string][]netsim.Message),
	}
	for name, addr := range cfg.Peers {
		t.AddPeer(name, addr)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	if cfg.Context != nil {
		go func() {
			<-ctx.Done()
			t.Close()
		}()
	}
	return t, nil
}

// Addr returns the bound listen address (useful with Listen ":0").
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// AddNode registers a locally hosted node, adopting any inbound frames
// that arrived for it before registration (the startup race between
// processes of one deployment).
func (t *Transport) AddNode(name string) {
	t.mu.Lock()
	if _, ok := t.local[name]; ok {
		t.mu.Unlock()
		return
	}
	box := &inbox{queue: t.orphans[name]}
	delete(t.orphans, name)
	t.local[name] = box
	adopted := len(box.queue) > 0
	t.mu.Unlock()
	if adopted {
		if fn := t.notify.Load(); fn != nil {
			(*fn)()
		}
	}
}

// AddPeer registers (or re-addresses) a remote node and starts its
// writer. Registering before traffic flows is the caller's job; sends to
// unregistered names error. Re-registering an existing peer name with a
// new address only takes effect on the next reconnect.
func (t *Transport) AddPeer(name, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if p, ok := t.peers[name]; ok {
		p.mu.Lock()
		p.addr = addr
		p.mu.Unlock()
		return
	}
	p := &peer{name: name, addr: addr}
	p.cond = sync.NewCond(&p.mu)
	t.peers[name] = p
	t.wg.Add(1)
	go t.writerLoop(p)
}

// Notify registers fn to run after every inbound enqueue (core.Notifier:
// the lifecycle driver's wake-up for datagrams arriving between rounds).
func (t *Transport) Notify(fn func()) { t.notify.Store(&fn) }

// Send enqueues a datagram, charging its bytes.
func (t *Transport) Send(from, to string, payload []byte) error {
	return t.SendTagged(from, to, payload, false)
}

// SendTagged is Send with the handshake traffic-class tag. Local
// destinations deliver in process; remote ones are handed to the peer's
// writer (charged now, shipped as the connection allows — TCP delivery
// is asynchronous, unlike netsim's synchronous enqueue).
func (t *Transport) SendTagged(from, to string, payload []byte, handshake bool) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("nettcp: transport closed")
	}
	box := t.local[to]
	p := t.peers[to]
	t.mu.Unlock()

	if box != nil {
		t.enqueue(box, from, to, payload, handshake)
		return nil
	}
	if p == nil {
		t.dropped.Add(1)
		return fmt.Errorf("nettcp: send to unknown node %q (not local, no peer address)", to)
	}
	t.charge(from, to, payload, handshake)
	p.mu.Lock()
	p.pending = append(p.pending, frame{src: from, dst: to, payload: payload, handshake: handshake})
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// charge records one frame in the stats counters.
func (t *Transport) charge(src, dst string, payload []byte, handshake bool) {
	size := int64(frameWireSize(src, dst, payload))
	t.messages.Add(1)
	t.bytes.Add(size)
	if handshake {
		t.hsMsgs.Add(1)
		t.hsBytes.Add(size)
	}
}

// enqueue delivers one datagram into a local inbox and fires the arrival
// notifier.
func (t *Transport) enqueue(box *inbox, from, to string, payload []byte, handshake bool) {
	t.charge(from, to, payload, handshake)
	box.mu.Lock()
	box.queue = append(box.queue, netsim.Message{From: from, To: to, Payload: payload})
	box.mu.Unlock()
	if fn := t.notify.Load(); fn != nil {
		(*fn)()
	}
}

// Drain removes and returns all datagrams queued for a local node, in
// arrival order (per-sender send order is preserved by the per-direction
// connections; interleaving between senders is arrival order).
func (t *Transport) Drain(to string) []netsim.Message {
	t.mu.Lock()
	box := t.local[to]
	t.mu.Unlock()
	if box == nil {
		return nil
	}
	box.mu.Lock()
	msgs := box.queue
	box.queue = nil
	box.mu.Unlock()
	return msgs
}

// PendingFor reports the inbound backlog queued for one local node.
func (t *Transport) PendingFor(to string) int {
	t.mu.Lock()
	box := t.local[to]
	t.mu.Unlock()
	if box == nil {
		return 0
	}
	box.mu.Lock()
	defer box.mu.Unlock()
	return len(box.queue)
}

// PendingCount reports the total inbound backlog across local nodes.
func (t *Transport) PendingCount() int {
	t.mu.Lock()
	boxes := make([]*inbox, 0, len(t.local))
	for _, box := range t.local {
		boxes = append(boxes, box)
	}
	t.mu.Unlock()
	total := 0
	for _, box := range boxes {
		box.mu.Lock()
		total += len(box.queue)
		box.mu.Unlock()
	}
	return total
}

// Stats returns a copy of this process's transport counters.
func (t *Transport) Stats() netsim.Stats {
	return netsim.Stats{
		Messages:          t.messages.Load(),
		Bytes:             t.bytes.Load(),
		DroppedMsg:        t.dropped.Load(),
		HandshakeMessages: t.hsMsgs.Load(),
		HandshakeBytes:    t.hsBytes.Load(),
		Reconnects:        t.reconnects.Load(),
		Requeues:          t.requeues.Load(),
		Parked:            t.parked.Load(),
	}
}

// ResetStats zeroes the counters.
func (t *Transport) ResetStats() {
	t.messages.Store(0)
	t.bytes.Store(0)
	t.dropped.Store(0)
	t.hsMsgs.Store(0)
	t.hsBytes.Store(0)
	t.reconnects.Store(0)
	t.requeues.Store(0)
	t.parked.Store(0)
}

// QueueDepths reports the outbound backlog per peer: frames accepted by
// SendTagged that the peer's writer has not yet shipped. The map is
// freshly allocated (scrape-time cost, not hot-path).
func (t *Transport) QueueDepths() map[string]int {
	t.mu.Lock()
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	out := make(map[string]int, len(peers))
	for _, p := range peers {
		p.mu.Lock()
		out[p.name] = len(p.pending)
		p.mu.Unlock()
	}
	return out
}

// Close shuts the transport down: the listener stops, writer goroutines
// exit (undelivered frames are discarded), and open connections close.
// Idempotent; also triggered by Config.Context cancellation.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	t.cancel()
	err := t.ln.Close()
	for _, p := range t.peers {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// track registers a live connection for Close; it reports false when the
// transport is already closing (the caller must close the conn itself).
func (t *Transport) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *Transport) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

// --- outbound path ---

// next blocks until a frame is pending or the peer is closed.
func (p *peer) next() (frame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.pending) == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		return frame{}, false
	}
	f := p.pending[0]
	p.pending = p.pending[1:]
	return f, true
}

// writerLoop ships one peer's frames over a lazily dialed, reconnecting
// connection. A failed write keeps the frame, drops the connection, and
// retries with exponential backoff. Frames go out in send order. The
// delivery guarantee is TCP's, no more: a frame whose write failure is
// detected after the peer already consumed it is re-sent on reconnect
// (duplicates are idempotent at the receiving engine — set semantics,
// per-sender support merging), but frames the kernel accepted that the
// peer never read (peer crash, or a frame the receiver rejects for
// exceeding MaxFrame) are lost — there is no application-level ack or
// retransmit yet (ROADMAP open item). Soft-state refresh re-supplies
// lost tuples on the sender's next re-propagation.
func (t *Transport) writerLoop(p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	connected := false // a successful dial after the first is a reconnect
	backoff := t.cfg.RetryMin
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		f, ok := p.next()
		if !ok {
			return
		}
		for {
			if conn == nil {
				c, err := t.dial(p)
				if err != nil {
					if t.ctx.Err() != nil {
						return
					}
					t.cfg.Logf("nettcp: dial %s: %v; retrying in %v", p.name, err, backoff)
					if !t.sleep(backoff) {
						return
					}
					backoff = min(backoff*2, t.cfg.RetryMax)
					continue
				}
				conn, bw = c, bufio.NewWriter(c)
				backoff = t.cfg.RetryMin
				if connected {
					t.reconnects.Add(1)
				}
				connected = true
			}
			if err := writeFrame(bw, f); err == nil {
				if err = bw.Flush(); err == nil {
					break
				}
			} else if t.ctx.Err() != nil {
				return
			} else {
				t.cfg.Logf("nettcp: write to %s: %v; reconnecting", p.name, err)
			}
			t.requeues.Add(1) // f survives the dropped conn; retried above
			t.untrack(conn)
			conn.Close()
			conn = nil
			if !t.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, t.cfg.RetryMax)
		}
	}
}

// dial opens, tracks, and primes (preamble + hello) a connection to p.
func (t *Transport) dial(p *peer) (net.Conn, error) {
	p.mu.Lock()
	addr := p.addr
	p.mu.Unlock()
	d := net.Dialer{Timeout: t.cfg.DialTimeout}
	conn, err := d.DialContext(t.ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if !t.track(conn) {
		conn.Close()
		return nil, errors.New("transport closed")
	}
	hello := append([]byte{}, magic[:]...)
	// The hello names the sending *process*; each frame names its own
	// sending node, so one process can host several.
	hello = binary.AppendUvarint(hello, uint64(len(t.helloName())))
	hello = append(hello, t.helloName()...)
	if _, err := conn.Write(hello); err != nil {
		t.untrack(conn)
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// helloName identifies this process on the wire: its first local node
// (registration order), or "?" before any AddNode.
func (t *Transport) helloName() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	for name := range t.local {
		return name
	}
	return "?"
}

// sleep waits d or until shutdown, reporting whether to continue.
func (t *Transport) sleep(d time.Duration) bool {
	select {
	case <-t.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// frameWireSize is the framed size of one datagram: length prefix,
// flags byte, source, destination, payload.
func frameWireSize(src, dst string, payload []byte) int {
	body := 1 + uvarintLen(uint64(len(src))) + len(src) +
		uvarintLen(uint64(len(dst))) + len(dst) + len(payload)
	return uvarintLen(uint64(body)) + body
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// writeFrame writes one length-prefixed frame. Source and destination
// node names ride in the frame header (not per connection) so one
// process can host several nodes and the receiver learns From without
// decoding the payload.
func writeFrame(w *bufio.Writer, f frame) error {
	var hdr [binary.MaxVarintLen64]byte
	body := 1 + uvarintLen(uint64(len(f.src))) + len(f.src) +
		uvarintLen(uint64(len(f.dst))) + len(f.dst) + len(f.payload)
	n := binary.PutUvarint(hdr[:], uint64(body))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	flags := byte(0)
	if f.handshake {
		flags |= 1
	}
	if err := w.WriteByte(flags); err != nil {
		return err
	}
	for _, s := range []string{f.src, f.dst} {
		n = binary.PutUvarint(hdr[:], uint64(len(s)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := w.WriteString(s); err != nil {
			return err
		}
	}
	_, err := w.Write(f.payload)
	return err
}

// --- inbound path ---

// acceptLoop admits peer connections until the listener closes.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		if !t.track(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes one inbound connection: preamble, hello, then frames
// delivered to local inboxes. Protocol errors poison only this
// connection; the peer's dialer re-opens it.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer conn.Close()
	br := bufio.NewReader(conn)
	var pre [4]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != magic {
		t.cfg.Logf("nettcp: bad preamble from %s", conn.RemoteAddr())
		return
	}
	hello, err := readLengthPrefixed(br, t.cfg.MaxFrame)
	if err != nil {
		t.cfg.Logf("nettcp: bad hello from %s: %v", conn.RemoteAddr(), err)
		return
	}
	from := string(hello)
	for {
		body, err := readLengthPrefixed(br, t.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF && t.ctx.Err() == nil {
				t.cfg.Logf("nettcp: read from %s: %v", from, err)
			}
			return
		}
		handshake, src, dst, payload, err := parseFrame(body)
		if err != nil {
			t.cfg.Logf("nettcp: corrupt frame from %s: %v", from, err)
			return
		}
		t.mu.Lock()
		box := t.local[dst]
		if box == nil {
			// Not registered (yet): park the frame for AddNode. A name
			// this process will never host leaks its backlog here; the
			// log line is the operator's clue to a peer-map typo.
			t.charge(src, dst, payload, handshake)
			t.parked.Add(1)
			t.orphans[dst] = append(t.orphans[dst], netsim.Message{From: src, To: dst, Payload: payload})
			t.mu.Unlock()
			t.cfg.Logf("nettcp: frame from %s parked for unregistered node %q", src, dst)
			continue
		}
		t.mu.Unlock()
		t.enqueue(box, src, dst, payload, handshake)
	}
}

// readLengthPrefixed reads one uvarint-length-prefixed block.
func readLengthPrefixed(br *bufio.Reader, max int) ([]byte, error) {
	l, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if l > uint64(max) {
		return nil, fmt.Errorf("block of %d bytes exceeds cap %d", l, max)
	}
	buf := make([]byte, l)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// parseFrame splits a frame body into traffic class, source,
// destination, and payload.
func parseFrame(body []byte) (handshake bool, src, dst string, payload []byte, err error) {
	if len(body) < 1 {
		return false, "", "", nil, errors.New("empty frame")
	}
	handshake = body[0]&1 != 0
	rest := body[1:]
	names := [2]string{}
	for i := range names {
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return false, "", "", nil, errors.New("bad name length")
		}
		names[i] = string(rest[n : n+int(l)])
		rest = rest[n+int(l):]
	}
	return handshake, names[0], names[1], rest, nil
}
